// Package thermal simulates the temperature-control rig of the paper's
// testing infrastructure (§3.1): heater pads pressed against the DRAM
// chips, a thermocouple sensor, and a PID controller (the MaxWell FT200)
// that holds the chips at a target temperature. Experiments ask the
// controller to settle at a setpoint before testing, exactly as the real
// infrastructure does.
package thermal

import (
	"fmt"
	"math"
)

// Plant is a first-order thermal model of the DIMM + heater-pad assembly:
//
//	dT/dt = (Gain·power − (T − Ambient)) / Tau
type Plant struct {
	Ambient float64 // °C
	Gain    float64 // °C above ambient at full power, steady state
	Tau     float64 // time constant, seconds
	Temp    float64 // current chip temperature, °C
}

// DefaultPlant models a heater pad able to reach ~110 °C in a ~22 °C lab,
// with a time constant of half a minute.
func DefaultPlant() *Plant {
	return &Plant{Ambient: 22, Gain: 90, Tau: 30, Temp: 22}
}

// Step advances the plant by dt seconds with the given heater power
// (clamped to [0, 1]) and returns the new temperature.
func (p *Plant) Step(dt, power float64) float64 {
	power = clamp(power, 0, 1)
	target := p.Ambient + p.Gain*power
	// Exact integration of the linear ODE over dt.
	alpha := 1 - math.Exp(-dt/p.Tau)
	p.Temp += (target - p.Temp) * alpha
	return p.Temp
}

// PID is a standard discrete PID controller with anti-windup via
// integrator clamping.
type PID struct {
	Kp, Ki, Kd float64
	integral   float64
	lastErr    float64
	hasLast    bool
}

// DefaultPID returns gains tuned for DefaultPlant.
func DefaultPID() *PID { return &PID{Kp: 0.08, Ki: 0.004, Kd: 0.10} }

// Output computes the control output for the given error over dt seconds.
func (c *PID) Output(err, dt float64) float64 {
	c.integral = clamp(c.integral+err*dt, -300, 300)
	deriv := 0.0
	if c.hasLast && dt > 0 {
		deriv = (err - c.lastErr) / dt
	}
	c.lastErr = err
	c.hasLast = true
	return c.Kp*err + c.Ki*c.integral + c.Kd*deriv
}

// Reset clears controller state (for a new setpoint).
func (c *PID) Reset() {
	c.integral = 0
	c.lastErr = 0
	c.hasLast = false
}

// Controller couples a PID loop to a plant, mirroring the FT200 + heater
// pads. The zero value is not usable; use NewController.
type Controller struct {
	Plant *Plant
	PID   *PID
	// StepSeconds is the control period (default 0.5 s).
	StepSeconds float64
}

// NewController returns a controller with default plant and gains.
func NewController() *Controller {
	return &Controller{Plant: DefaultPlant(), PID: DefaultPID(), StepSeconds: 0.5}
}

// Settle drives the plant to target ± tol °C and holds it there for
// holdSeconds. It returns the simulated seconds elapsed, or an error if the
// loop cannot settle within a generous bound (a mis-tuned controller or an
// unreachable setpoint).
func (c *Controller) Settle(target, tol, holdSeconds float64) (float64, error) {
	if target > c.Plant.Ambient+c.Plant.Gain {
		return 0, fmt.Errorf("thermal: target %.1f°C exceeds heater capability %.1f°C",
			target, c.Plant.Ambient+c.Plant.Gain)
	}
	if target < c.Plant.Ambient {
		return 0, fmt.Errorf("thermal: target %.1f°C below ambient %.1f°C (no cooling)",
			target, c.Plant.Ambient)
	}
	c.PID.Reset()
	const maxSeconds = 4 * 3600
	elapsed, inBand := 0.0, 0.0
	for elapsed < maxSeconds {
		err := target - c.Plant.Temp
		power := c.PID.Output(err, c.StepSeconds)
		c.Plant.Step(c.StepSeconds, power)
		elapsed += c.StepSeconds
		if math.Abs(target-c.Plant.Temp) <= tol {
			inBand += c.StepSeconds
			if inBand >= holdSeconds {
				return elapsed, nil
			}
		} else {
			inBand = 0
		}
	}
	return elapsed, fmt.Errorf("thermal: failed to settle at %.1f°C within %d s", target, int(maxSeconds))
}

// Temperature returns the current chip temperature.
func (c *Controller) Temperature() float64 { return c.Plant.Temp }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
