package thermal

import (
	"math"
	"testing"
)

func TestPlantConvergesToSteadyState(t *testing.T) {
	p := DefaultPlant()
	for i := 0; i < 10000; i++ {
		p.Step(1, 1)
	}
	want := p.Ambient + p.Gain
	if math.Abs(p.Temp-want) > 0.1 {
		t.Fatalf("full-power steady state = %v, want %v", p.Temp, want)
	}
}

func TestPlantCoolsToAmbient(t *testing.T) {
	p := DefaultPlant()
	p.Temp = 90
	for i := 0; i < 10000; i++ {
		p.Step(1, 0)
	}
	if math.Abs(p.Temp-p.Ambient) > 0.1 {
		t.Fatalf("zero-power steady state = %v, want ambient %v", p.Temp, p.Ambient)
	}
}

func TestPlantPowerClamped(t *testing.T) {
	p := DefaultPlant()
	for i := 0; i < 10000; i++ {
		p.Step(1, 5) // over-driving must clamp to 1
	}
	if p.Temp > p.Ambient+p.Gain+0.1 {
		t.Fatalf("plant exceeded full-power steady state: %v", p.Temp)
	}
}

func TestSettleAtPaperTemperatures(t *testing.T) {
	// The paper tests at 50, 65, and 80 °C (and sweeps 50–80 in 5° steps).
	for _, target := range []float64{50, 65, 80} {
		c := NewController()
		elapsed, err := c.Settle(target, 0.5, 10)
		if err != nil {
			t.Fatalf("settle at %v: %v", target, err)
		}
		if math.Abs(c.Temperature()-target) > 0.5 {
			t.Fatalf("settled at %v, want %v", c.Temperature(), target)
		}
		if elapsed <= 0 || elapsed > 3600 {
			t.Fatalf("settle took %v s", elapsed)
		}
	}
}

func TestSettleSweep(t *testing.T) {
	// 50 → 80 °C in 5 °C steps without resetting the plant (Fig. 15).
	c := NewController()
	for target := 50.0; target <= 80; target += 5 {
		if _, err := c.Settle(target, 0.5, 5); err != nil {
			t.Fatalf("sweep settle at %v: %v", target, err)
		}
	}
}

func TestSettleRejectsUnreachable(t *testing.T) {
	c := NewController()
	if _, err := c.Settle(200, 0.5, 5); err == nil {
		t.Fatal("200°C should be unreachable")
	}
	if _, err := c.Settle(10, 0.5, 5); err == nil {
		t.Fatal("below-ambient target should be rejected (no cooling)")
	}
}

func TestPIDOutputResponds(t *testing.T) {
	pid := DefaultPID()
	out1 := pid.Output(10, 1)
	if out1 <= 0 {
		t.Fatalf("positive error should produce positive output, got %v", out1)
	}
	pid.Reset()
	if pid.integral != 0 || pid.hasLast {
		t.Fatal("reset did not clear state")
	}
}
