package characterize

import (
	"sort"

	"repro/internal/bender"
	"repro/internal/chipgen"
	"repro/internal/dram"
)

// BERResult is one bit-error-rate measurement: the maximum fraction of
// flipped cells across victim rows and trials, as §5.4 reports.
type BERResult struct {
	TAggON   dram.TimePS
	TAggOFF  dram.TimePS
	Count    int // activations issued
	MaxBER   float64
	MeanBER  float64
	StdBER   float64
	AllFlips int
}

// MeasureBER hammers the site with as many activations as fit in the time
// budget at the given on/extra-off times and reports the bit error rate
// over the distance-1 victim rows, repeated over trials (max taken).
//
// This is the per-command reference path, retained so the differential
// tests can pin the replay-free prober conversion (measureBERProbed)
// bit-identical to executed commands; the experiments themselves run
// through BERGrid/ONOFFSweep on the prober.
func MeasureBER(b *bender.Bench, s site, onTime, extraOff dram.TimePS, cfg Config) (BERResult, error) {
	slot := onTime + b.Mod.Timing.TRP + extraOff
	count := maxActivations(cfg.TimeBudget, slot, len(s.aggressors))
	bitsPerRow := float64(b.Mod.Geo.BitsPerRow())

	res := BERResult{
		TAggON:  onTime,
		TAggOFF: b.Mod.Timing.TRP + extraOff,
		Count:   count,
	}
	var bers []float64
	for trial := 1; trial <= cfg.Trials; trial++ {
		b.SetTrial(uint64(trial))
		if err := s.prepare(b, cfg.Pattern); err != nil {
			return BERResult{}, err
		}
		if err := s.hammer(b, count, onTime, extraOff); err != nil {
			return BERResult{}, err
		}
		flips, err := s.check(b, cfg.Pattern)
		if err != nil {
			return BERResult{}, err
		}
		res.AllFlips += len(flips)
		// Per-victim-row BER; the paper reports the per-row fraction.
		perRow := make(map[int]int)
		for _, f := range flips {
			perRow[f.LogicalRow]++
		}
		// Accumulate per-row BERs in row order: MeanBER is a float sum
		// over bers, and float addition is not associative, so map
		// iteration order would leak into the reported value.
		rows := make([]int, 0, len(perRow))
		for r := range perRow {
			rows = append(rows, r)
		}
		sort.Ints(rows)
		for _, r := range rows {
			bers = append(bers, float64(perRow[r])/bitsPerRow)
		}
		if len(perRow) == 0 {
			bers = append(bers, 0)
		}
	}
	b.SetTrial(0)
	for _, v := range bers {
		if v > res.MaxBER {
			res.MaxBER = v
		}
		res.MeanBER += v
	}
	res.MeanBER /= float64(len(bers))
	return res, nil
}

// MeasureBERAt measures BER for the access pattern anchored at one tested
// location (public wrapper over the site machinery; per-command
// reference path, like MeasureBER).
func MeasureBERAt(b *bender.Bench, loc int, onTime, extraOff dram.TimePS, cfg Config) (BERResult, error) {
	return MeasureBER(b, siteFor(loc, cfg.Sided), onTime, extraOff, cfg)
}

// measureBERProbed is MeasureBER on the replay-free prober: every trial
// is a closed-form probe instead of an executed prepare/hammer/check
// stream, so a measurement costs O(site) regardless of the activation
// count. Threading one prober through a sequence of measurements
// reproduces the command path's bench-state threading bit for bit
// (TestMeasureBERProbedMatchesCommandPath).
func measureBERProbed(p *prober, s site, onTime, extraOff dram.TimePS) (BERResult, error) {
	slot := onTime + p.b.Mod.Timing.TRP + extraOff
	count := maxActivations(p.cfg.TimeBudget, slot, len(s.aggressors))
	bitsPerRow := float64(p.b.Mod.Geo.BitsPerRow())

	res := BERResult{
		TAggON:  onTime,
		TAggOFF: p.b.Mod.Timing.TRP + extraOff,
		Count:   count,
	}
	var bers []float64
	for trial := 1; trial <= p.cfg.Trials; trial++ {
		p.b.SetTrial(uint64(trial))
		flips, err := p.probe(s, count, onTime, extraOff)
		if err != nil {
			return BERResult{}, err
		}
		res.AllFlips += len(flips)
		perRow := make(map[int]int)
		for _, f := range flips {
			perRow[f.LogicalRow]++
		}
		// Row-order accumulation, exactly as MeasureBER: MeanBER is a float
		// sum over bers and float addition is not associative.
		rows := make([]int, 0, len(perRow))
		for r := range perRow {
			rows = append(rows, r)
		}
		sort.Ints(rows)
		for _, r := range rows {
			bers = append(bers, float64(perRow[r])/bitsPerRow)
		}
		if len(perRow) == 0 {
			bers = append(bers, 0)
		}
	}
	p.b.SetTrial(0)
	for _, v := range bers {
		if v > res.MaxBER {
			res.MaxBER = v
		}
		res.MeanBER += v
	}
	res.MeanBER /= float64(len(bers))
	return res, nil
}

// BERGrid measures BER at every (tAggON, location) cell — tAggON outer,
// location inner, one prober threaded through the whole grid, matching
// the command path's bench threading. It is the replay-free measurement
// behind Table 6.
func BERGrid(spec chipgen.ModuleSpec, cfg Config, tempC float64, tAggONs []dram.TimePS, locs []int) ([][]BERResult, error) {
	b, err := NewBench(spec, cfg, tempC)
	if err != nil {
		return nil, err
	}
	p := newProber(b, cfg)
	out := make([][]BERResult, len(tAggONs))
	for ti, on := range tAggONs {
		row := make([]BERResult, 0, len(locs))
		for _, loc := range locs {
			r, err := measureBERProbed(p, siteFor(loc, cfg.Sided), on, 0)
			if err != nil {
				return nil, err
			}
			row = append(row, r)
		}
		out[ti] = row
	}
	return out, nil
}

// ONOFFPoint is one cell of the Fig. 22 grid: a ΔtA2A value and the
// fraction of it contributing to tAggON.
type ONOFFPoint struct {
	DeltaA2A dram.TimePS
	OnFrac   float64 // 0, 0.25, 0.5, 0.75, 1.0
	BER      BERResult
}

// DeltaA2As is the §5.4 lattice of extra activation-to-activation times.
var DeltaA2As = []dram.TimePS{
	240 * dram.Nanosecond,
	600 * dram.Nanosecond,
	1200 * dram.Nanosecond,
	2400 * dram.Nanosecond,
	6000 * dram.Nanosecond,
}

// OnFracs is the §5.4 split lattice.
var OnFracs = []float64{0, 0.25, 0.5, 0.75, 1.0}

// ONOFFSweep runs the RowPress-ONOFF experiment (Fig. 21/22, Appendix C):
// fix tA2A = tRC + ΔtA2A, sweep the fraction of ΔtA2A that extends the
// row-open time (the rest extends the off time), and measure BER with the
// maximum activation count that fits the budget. Measurements run
// replay-free on one threaded prober; onoffSweepReplay is the retained
// per-command reference the differential tests pin this against.
func ONOFFSweep(spec chipgen.ModuleSpec, cfg Config, tempC float64) ([]ONOFFPoint, error) {
	b, err := NewBench(spec, cfg, tempC)
	if err != nil {
		return nil, err
	}
	p := newProber(b, cfg)
	return onoffSweep(cfg, b.Mod.Timing.TRAS, func(s site, onTime, extraOff dram.TimePS) (BERResult, error) {
		return measureBERProbed(p, s, onTime, extraOff)
	})
}

// onoffSweepReplay is ONOFFSweep on the per-command path: every trial
// executes the full prepare/hammer/check stream. Retained as the
// reference implementation for the differential tests.
func onoffSweepReplay(spec chipgen.ModuleSpec, cfg Config, tempC float64) ([]ONOFFPoint, error) {
	b, err := NewBench(spec, cfg, tempC)
	if err != nil {
		return nil, err
	}
	return onoffSweep(cfg, b.Mod.Timing.TRAS, func(s site, onTime, extraOff dram.TimePS) (BERResult, error) {
		return MeasureBER(b, s, onTime, extraOff, cfg)
	})
}

// onoffSweep is the shared ONOFF grid walk over a BER measurement
// function; the prober and replay paths differ only in measure.
func onoffSweep(cfg Config, tRAS dram.TimePS, measure func(s site, onTime, extraOff dram.TimePS) (BERResult, error)) ([]ONOFFPoint, error) {
	locs := testedLocations(cfg.Geometry, min(cfg.RowsToTest, 8))
	var out []ONOFFPoint
	for _, delta := range DeltaA2As {
		for _, frac := range OnFracs {
			onTime := tRAS + dram.TimePS(frac*float64(delta))
			extraOff := delta - (onTime - tRAS)
			// Aggregate the worst BER across the sampled locations.
			var agg BERResult
			for _, loc := range locs {
				r, err := measure(siteFor(loc, cfg.Sided), onTime, extraOff)
				if err != nil {
					return nil, err
				}
				if r.MaxBER > agg.MaxBER {
					agg.MaxBER = r.MaxBER
				}
				agg.MeanBER += r.MeanBER
				agg.AllFlips += r.AllFlips
				agg.TAggON, agg.TAggOFF, agg.Count = r.TAggON, r.TAggOFF, r.Count
			}
			agg.MeanBER /= float64(len(locs))
			out = append(out, ONOFFPoint{DeltaA2A: delta, OnFrac: frac, BER: agg})
		}
	}
	return out, nil
}
