package characterize

import (
	"repro/internal/bender"
	"repro/internal/dram"
)

// prober evaluates one characterization probe — prepare the site's data
// pattern, run the hammer loop, check the victims — analytically instead
// of through the module's command path.
//
// The old probe cost was dominated not by the hammer loop (already
// batched) but by re-initializing every site row (8 KiB fills) and
// fetching every victim (8 KiB copies plus exposure bookkeeping) for each
// of the O(log N) bisection probes. The prober keeps the handful of site
// rows as scratch buffers and tracks the only cross-probe state the
// command path threads between probes — the bench clock, each row's last
// precharge instant (the off time preceding its next first activation),
// and each row's last charge restore (its retention window). Victim
// exposure comes from the closed form (dram.HammerExposures) plus the
// check stream's own self-disturbance, and flips materialize through the
// very same Disturber evaluation the module would run — so a probe's
// outcome is bit-identical to executing the commands, at O(site) cost
// independent of the activation count. The golden-report suite and
// TestProberMatchesCommandPath enforce that equivalence.
//
// A prober owns its site rows' virtual state for the lifetime of a sweep:
// interleaving command-path operations on the same rows of the same bench
// would fork history. Sweeps create one prober and route every search
// through it; independent flows (BER, repeatability, retention) use their
// own benches as before.
type prober struct {
	b   *bender.Bench
	cfg Config

	lastPre     map[int]dram.TimePS    // row → last PRE instant
	lastRestore map[int]dram.TimePS    // row → last charge restore
	scratch     map[int][]byte         // row → current contents
	fill        map[int]int            // row → fill byte in scratch, -1 once flipped
	exp         map[int]*dram.Exposure // row → pending exposure within the current probe
}

func newProber(b *bender.Bench, cfg Config) *prober {
	return &prober{
		b:           b,
		cfg:         cfg,
		lastPre:     make(map[int]dram.TimePS),
		lastRestore: make(map[int]dram.TimePS),
		scratch:     make(map[int][]byte),
		fill:        make(map[int]int),
	}
}

// prevOff mirrors the module's per-row off-time rule on the virtual PRE
// history: time since the row's last precharge, capped at the fully
// recovered bound; a row never precharged starts fully recovered.
func (p *prober) prevOff(row int, actAt dram.TimePS) dram.TimePS {
	pre, ok := p.lastPre[row]
	if !ok {
		return dram.RecoveredOff
	}
	off := actAt - pre
	if off > dram.RecoveredOff {
		off = dram.RecoveredOff
	}
	return off
}

// initRow is the virtual InitRow: contents reset to the fill byte, pending
// exposure cleared, retention window restarted. The buffer is refilled
// only when its current contents differ — the common no-flip probe leaves
// it untouched, which is where the prepare phase's 8 KiB-per-row cost
// goes away.
func (p *prober) initRow(row int, fillByte byte) {
	buf := p.scratch[row]
	if buf == nil {
		buf = make([]byte, p.b.Mod.Geo.RowBytes)
		p.scratch[row] = buf
	}
	if p.fill[row] != int(fillByte) {
		dram.Fill(buf, fillByte)
		p.fill[row] = int(fillByte)
	}
	p.lastRestore[row] = p.b.Now()
	p.b.Advance(dram.Microsecond) // WriteRow's per-row setup time
}

// prepare resets the site's rows to the data pattern, victims first, like
// site.prepare.
func (p *prober) prepare(s site) {
	p.exp = make(map[int]*dram.Exposure, len(s.victims)+len(s.aggressors))
	for _, v := range s.victims {
		p.initRow(v, p.cfg.Pattern.VictimByte())
	}
	for _, a := range s.aggressors {
		p.initRow(a, p.cfg.Pattern.AggressorByte())
	}
}

// expOf returns the row's pending-exposure slot, creating it at zero.
func (p *prober) expOf(row int) *dram.Exposure {
	e := p.exp[row]
	if e == nil {
		e = &dram.Exposure{}
		p.exp[row] = e
	}
	return e
}

// restore is the virtual charge restore (the module's restoreRow): pending
// exposure plus the retention accumulated since the last restore
// materializes into the scratch contents through the model's own flip
// evaluation, then resets.
func (p *prober) restore(row int, at dram.TimePS) {
	e := dram.Exposure{}
	if pe := p.exp[row]; pe != nil {
		e = *pe
	}
	e.Retention = p.b.Mod.RetentionStress(p.lastRestore[row], at)
	buf := p.scratch[row]
	if buf != nil && (!e.IsZero() || e.Retention > 0) {
		nb := dram.NeighborData{Above: p.scratch[row+1], Below: p.scratch[row-1]}
		if p.b.Model.ApplyFlips(p.b.Bank(), row, buf, nb, e) > 0 {
			p.fill[row] = -1
		}
	}
	if pe := p.exp[row]; pe != nil {
		*pe = dram.Exposure{}
	}
	p.lastRestore[row] = at
}

// hammer applies the loop's effect in closed form: aggressor first-ACT
// restores (phase 1 of HammerBatch), per-victim exposure deltas via the
// shared calculator (phase 2), and the aggressors' final restore/PRE
// bookkeeping (phases 3–4). Aggressor-mutual tail exposure is not
// tracked: the next prepare clears it before anything can observe it.
func (p *prober) hammer(s site, count int, onTime, extraOff dram.TimePS) error {
	spec := dram.HammerSpec{
		Bank: p.b.Bank(), Rows: s.aggressors, Count: count, OnTime: onTime, ExtraOff: extraOff,
	}
	if err := spec.Validate(p.b.Mod); err != nil {
		return err
	}
	at := p.b.Now()
	slot := spec.SlotTime(p.b.Mod.Timing)
	sched := spec.Schedule()

	for idx, ag := range sched {
		if ag.Acts > 0 {
			p.restore(ag.Row, at+dram.TimePS(idx)*slot)
		}
	}
	for _, ve := range p.b.Mod.HammerExposures(at, spec, p.prevOff) {
		// Victim exposure is zero after prepare, so the closed-form delta —
		// accumulated inside HammerExposures in executor order — is the
		// row's exposure, bit for bit.
		cp := ve.Exp
		p.exp[ve.Row] = &cp
	}
	for _, ag := range sched {
		if ag.Acts == 0 {
			continue
		}
		lastAct := at + dram.TimePS(ag.LastSlot)*slot
		if pe := p.exp[ag.Row]; pe != nil {
			*pe = dram.Exposure{}
		}
		p.lastRestore[ag.Row] = lastAct
		p.lastPre[ag.Row] = lastAct + onTime
	}
	p.b.Advance(dram.TimePS(count) * slot)
	return nil
}

// check fetches every victim virtually, in order: materialize pending
// disturbance, diff against the expected fill, and deliver the fetch's own
// activation disturbance to the neighborhood — the self-disturbance the
// real check stream's ACT/PRE pairs cause, which later-checked victims
// observe.
func (p *prober) check(s site) []bender.Flip {
	t := p.b.Mod.Timing
	expect := p.cfg.Pattern.VictimByte()
	var all []bender.Flip
	for _, v := range s.victims {
		now := p.b.Now()
		p.restore(v, now)
		// A row still holding its expected fill byte cannot diff; only rows
		// whose scratch was dirtied by materialized flips need the scan.
		if p.fill[v] != int(expect) {
			for i, got := range p.scratch[v] {
				diff := got ^ expect
				if diff == 0 {
					continue
				}
				for bit := uint8(0); bit < 8; bit++ {
					if diff&(1<<bit) != 0 {
						all = append(all, bender.Flip{
							LogicalRow: v, // physical coordinates, as site.check reports
							Byte:       i,
							Bit:        bit,
							From:       expect&(1<<bit) != 0,
						})
					}
				}
			}
		}
		// The fetch's PRE delivers one tRAS activation's disturbance,
		// through the shared accrual walk (dram/accrual.go).
		preAt := now + t.TRAS
		off := p.prevOff(v, now)
		p.b.Mod.AccrueOne(v, t.TRAS, off, p.b.Mod.TemperatureAt(preAt),
			func(victim int, above bool, h, pr float64) {
				e := p.expOf(victim)
				if above {
					e.HammerAbove += h
					e.PressAbove += pr
				} else {
					e.HammerBelow += h
					e.PressBelow += pr
				}
			})
		p.lastPre[v] = preAt
		p.b.Advance(t.TRAS + t.TRP)
	}
	return all
}

// probe runs one full prepare → hammer → check measurement.
func (p *prober) probe(s site, count int, onTime, extraOff dram.TimePS) ([]bender.Flip, error) {
	p.prepare(s)
	if err := p.hammer(s, count, onTime, extraOff); err != nil {
		return nil, err
	}
	return p.check(s), nil
}
