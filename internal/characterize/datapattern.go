package characterize

import (
	"math"

	"repro/internal/chipgen"
	"repro/internal/dram"
	"repro/internal/stats"
)

// PatternCell is one cell of the Fig. 19/20 heatmaps: the average ACmin of
// a data pattern at one tAggON, normalized to the CheckerBoard pattern.
// NoBitflip marks patterns that cannot flip anything within the budget.
type PatternCell struct {
	Pattern    dram.DataPattern
	TAggON     dram.TimePS
	Normalized float64
	NoBitflip  bool
}

// DataPatternStudy measures the §5.3 data-pattern sensitivity for one
// module: average ACmin per (pattern, tAggON), normalized to CheckerBoard.
// A value below 1 means the pattern is more effective than CB.
func DataPatternStudy(spec chipgen.ModuleSpec, cfg Config, tempC float64, tAggONs []dram.TimePS) ([]PatternCell, error) {
	// Baseline CB means per tAggON.
	base := cfg
	base.Pattern = dram.CheckerBoard
	cbSweep, err := ACminSweep(spec, base, tempC, tAggONs)
	if err != nil {
		return nil, err
	}
	cbMean := make(map[dram.TimePS]float64, len(cbSweep))
	for _, pt := range cbSweep {
		cbMean[pt.TAggON] = stats.Mean(pt.ACminValues())
	}

	var out []PatternCell
	appendSweep := func(p dram.DataPattern, sweep []SweepPoint) {
		for _, pt := range sweep {
			cell := PatternCell{Pattern: p, TAggON: pt.TAggON}
			mean := stats.Mean(pt.ACminValues())
			cb := cbMean[pt.TAggON]
			switch {
			case math.IsNaN(mean):
				cell.NoBitflip = true
			case math.IsNaN(cb) || cb == 0:
				cell.NoBitflip = true
			default:
				cell.Normalized = mean / cb
			}
			out = append(out, cell)
		}
	}
	appendSweep(dram.CheckerBoard, cbSweep)
	for _, p := range dram.AllDataPatterns {
		if p == dram.CheckerBoard {
			continue
		}
		c := cfg
		c.Pattern = p
		sweep, err := ACminSweep(spec, c, tempC, tAggONs)
		if err != nil {
			return nil, err
		}
		appendSweep(p, sweep)
	}
	return out, nil
}
