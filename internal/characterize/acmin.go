package characterize

import (
	"fmt"

	"repro/internal/bender"
	"repro/internal/chipgen"
	"repro/internal/dram"
)

// RowResult is the outcome of an ACmin search at one tested location.
type RowResult struct {
	Loc   int  // tested physical location
	ACmin int  // minimum total aggressor activations causing ≥1 bitflip
	Found bool // false: no bitflip within the time budget
	Flips []bender.Flip
}

// SweepPoint aggregates the per-row results at one tAggON value.
type SweepPoint struct {
	TAggON  dram.TimePS
	Results []RowResult
}

// ACminValues returns the ACmin of every row that flipped.
func (p SweepPoint) ACminValues() []float64 {
	var vs []float64
	for _, r := range p.Results {
		if r.Found {
			vs = append(vs, float64(r.ACmin))
		}
	}
	return vs
}

// FractionWithFlips returns the fraction of tested rows with ≥1 bitflip
// (the y-axis of Figs. 8/14).
func (p SweepPoint) FractionWithFlips() float64 {
	if len(p.Results) == 0 {
		return 0
	}
	n := 0
	for _, r := range p.Results {
		if r.Found {
			n++
		}
	}
	return float64(n) / float64(len(p.Results))
}

// FractionOneToZero returns the fraction of 1→0 bitflips among all flips
// at this point (the y-axis of Fig. 12).
func (p SweepPoint) FractionOneToZero() float64 {
	ones, total := 0, 0
	for _, r := range p.Results {
		for _, f := range r.Flips {
			total++
			if f.From {
				ones++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ones) / float64(total)
}

// maxActivations is the largest total activation count that fits the time
// budget at the given slot time, never below one slot per aggressor so the
// pattern is at least executable.
func maxActivations(budget dram.TimePS, slot dram.TimePS, aggressors int) int {
	n := int(budget / slot)
	if n < aggressors {
		n = aggressors
	}
	return n
}

// SearchACmin finds the minimum total aggressor activation count that
// induces at least one bitflip at the site, with the paper's modified
// bisection (§4.1): terminate when the bracket is within Accuracy of the
// current estimate; report not-found when even the budget-limited maximum
// produces no flips. One trial, on a fresh probe harness; sweeps thread
// one prober through all their searches instead.
func SearchACmin(b *bender.Bench, s site, onTime dram.TimePS, cfg Config) (RowResult, error) {
	return newProber(b, cfg).searchACmin(s, onTime)
}

// searchACmin runs the doubling-free probe(hi) + bisection of §4.1 on the
// replay-free prober: every probe is a closed-form exposure evaluation
// plus a pure flip check, so the search costs O(site × log N) cell
// evaluations instead of O(N log N) simulated commands.
func (p *prober) searchACmin(s site, onTime dram.TimePS) (RowResult, error) {
	slot := onTime + p.b.Mod.Timing.TRP
	hi := maxActivations(p.cfg.TimeBudget, slot, len(s.aggressors))

	flips, err := p.probe(s, hi, onTime, 0)
	if err != nil {
		return RowResult{}, fmt.Errorf("characterize: probe(%d): %w", hi, err)
	}
	if len(flips) == 0 {
		return RowResult{Loc: s.loc}, nil
	}
	lo := 0
	best := flips
	for hi-lo > 1 && float64(hi-lo) > p.cfg.Accuracy*float64(hi) {
		mid := lo + (hi-lo)/2
		flips, err := p.probe(s, mid, onTime, 0)
		if err != nil {
			return RowResult{}, fmt.Errorf("characterize: probe(%d): %w", mid, err)
		}
		if len(flips) > 0 {
			hi, best = mid, flips
		} else {
			lo = mid
		}
	}
	return RowResult{Loc: s.loc, ACmin: hi, Found: true, Flips: best}, nil
}

// searchACminTrials repeats the search over cfg.Trials measurement
// repetitions and keeps the minimum observed ACmin, as the paper does.
func searchACminTrials(p *prober, s site, onTime dram.TimePS) (RowResult, error) {
	result := RowResult{Loc: s.loc}
	for trial := 1; trial <= p.cfg.Trials; trial++ {
		p.b.SetTrial(uint64(trial))
		r, err := p.searchACmin(s, onTime)
		if err != nil {
			return RowResult{}, err
		}
		if r.Found && (!result.Found || r.ACmin < result.ACmin) {
			result = r
		}
	}
	p.b.SetTrial(0)
	return result, nil
}

// NewBench builds the standard characterization bench for a module spec.
func NewBench(spec chipgen.ModuleSpec, cfg Config, tempC float64) (*bender.Bench, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return bender.New(spec,
		bender.WithGeometry(cfg.Geometry),
		bender.WithBank(cfg.Bank),
		bender.WithTemperature(tempC),
	)
}

// ACminSweep measures the ACmin distribution of one module over the given
// tAggON values at temperature tempC — the core experiment behind
// Figs. 1, 6, 7, 13, 17, and 18.
func ACminSweep(spec chipgen.ModuleSpec, cfg Config, tempC float64, tAggONs []dram.TimePS) ([]SweepPoint, error) {
	b, err := NewBench(spec, cfg, tempC)
	if err != nil {
		return nil, err
	}
	p := newProber(b, cfg)
	locs := testedLocations(cfg.Geometry, cfg.RowsToTest)
	points := make([]SweepPoint, 0, len(tAggONs))
	for _, on := range tAggONs {
		pt := SweepPoint{TAggON: on}
		for _, loc := range locs {
			r, err := searchACminTrials(p, siteFor(loc, cfg.Sided), on)
			if err != nil {
				return nil, err
			}
			pt.Results = append(pt.Results, r)
		}
		points = append(points, pt)
	}
	return points, nil
}

// ACminColumns runs the slice of an ACminSweep covering only the given
// tested locations: per location, the full tAggON lattice of searches,
// on a private bench. Results are indexed [location][tAggON]. Running
// every location of TestedLocations through ACminColumns (in any
// partition) and stitching with AssembleACminSweep reproduces
// ACminSweep's output bit for bit — this is the sub-shard work function
// behind the split ACmin experiments.
//
// Equivalence with the threaded sweep hinges on the off-time profile:
// there, consecutive search groups at one location are separated by the
// other locations' groups, each advancing the shared bench clock by at
// least ~30 ms (the first budget-bounded probe of any group), so every
// group past a location's first starts beyond dram.RecoveredOff and its
// first-activation off time caps there. A column reproduces that cap in
// closed form by advancing its private clock by RecoveredOff between
// groups. gap must be true exactly when the full sweep tests more than
// one location; with a single location no groups intervene in the
// threaded order and the advance must not be inserted.
func ACminColumns(spec chipgen.ModuleSpec, cfg Config, tempC float64, tAggONs []dram.TimePS, locs []int, gap bool) ([][]RowResult, error) {
	b, err := NewBench(spec, cfg, tempC)
	if err != nil {
		return nil, err
	}
	p := newProber(b, cfg)
	out := make([][]RowResult, len(locs))
	for li, loc := range locs {
		s := siteFor(loc, cfg.Sided)
		col := make([]RowResult, 0, len(tAggONs))
		for gi, on := range tAggONs {
			if gap && gi > 0 {
				b.Advance(dram.RecoveredOff)
			}
			r, err := searchACminTrials(p, s, on)
			if err != nil {
				return nil, err
			}
			col = append(col, r)
		}
		out[li] = col
	}
	return out, nil
}

// AssembleACminSweep stitches per-location columns — ACminColumns
// results concatenated over a partition of the sweep's locations, in
// location order — back into ACminSweep's point layout.
func AssembleACminSweep(tAggONs []dram.TimePS, cols [][]RowResult) []SweepPoint {
	points := make([]SweepPoint, len(tAggONs))
	for ti, on := range tAggONs {
		pt := SweepPoint{TAggON: on, Results: make([]RowResult, 0, len(cols))}
		for _, col := range cols {
			pt.Results = append(pt.Results, col[ti])
		}
		points[ti] = pt
	}
	return points
}
