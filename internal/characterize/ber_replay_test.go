package characterize

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/dram"
)

// These differential tests pin the replay-free BER/ONOFF/repeatability
// conversions bit-identical to the retained per-command reference
// paths, threading state across whole measurement sequences (single
// probes are pinned by TestProberMatchesCommandPath).

func TestONOFFSweepMatchesReplay(t *testing.T) {
	for _, tc := range []struct {
		id    string
		sided Sidedness
		tempC float64
	}{
		{"S3", SingleSided, 50},
		{"S3", DoubleSided, 80},
		{"H0", SingleSided, 50},
	} {
		cfg := quickConfig(3)
		cfg.Trials = 2
		cfg.Sided = tc.sided
		spec := mustSpec(t, tc.id)
		want, err := onoffSweepReplay(spec, cfg, tc.tempC)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ONOFFSweep(spec, cfg, tc.tempC)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s/%s/%g: replay-free ONOFF sweep diverges from command path:\n got %+v\nwant %+v",
				tc.id, tc.sided, tc.tempC, got, want)
		}
		// Float results must be exactly equal, not approximately: DeepEqual
		// on NaN-free floats above is the bit-identity claim.
		for i := range got {
			if math.IsNaN(got[i].BER.MeanBER) {
				t.Fatalf("NaN MeanBER at point %d", i)
			}
		}
	}
}

func TestRepeatabilityStudyMatchesReplay(t *testing.T) {
	cfg := quickConfig(4)
	cfg.Trials = 3
	spec := mustSpec(t, "S3")
	taggons := []dram.TimePS{36 * dram.Nanosecond, 7800 * dram.Nanosecond, 30 * dram.Millisecond}
	want, err := repeatabilityStudyReplay(spec, cfg, 50, taggons)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RepeatabilityStudy(spec, cfg, 50, taggons)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("replay-free repeatability study diverges from command path:\n got %+v\nwant %+v", got, want)
	}
}

// TestBERGridMatchesCommandPath pins BERGrid (Table 6's replay-free
// path) against the same grid walked with MeasureBERAt on one bench.
func TestBERGridMatchesCommandPath(t *testing.T) {
	cfg := quickConfig(4)
	cfg.Trials = 2
	spec := mustSpec(t, "S0")
	taggons := []dram.TimePS{36 * dram.Nanosecond, 7800 * dram.Nanosecond, 70200 * dram.Nanosecond}
	locs := testedLocations(cfg.Geometry, min(cfg.RowsToTest, 8))

	b, err := NewBench(spec, cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]BERResult, len(taggons))
	for ti, tg := range taggons {
		for _, loc := range locs {
			r, err := MeasureBERAt(b, loc, tg, 0, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want[ti] = append(want[ti], r)
		}
	}

	got, err := BERGrid(spec, cfg, 50, taggons, locs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("BERGrid diverges from threaded MeasureBERAt:\n got %+v\nwant %+v", got, want)
	}
}
