package characterize

import (
	"repro/internal/bender"
	"repro/internal/chipgen"
	"repro/internal/dram"
)

// RepeatabilityResult is the Appendix E histogram: how many observed
// bitflips occurred in exactly k of the repeated trials (k = 1..Trials).
type RepeatabilityResult struct {
	TAggON      dram.TimePS
	Occurrences []int // index k-1: flips seen in exactly k trials
	TotalFlips  int
}

// Percent returns the percentage of flips with exactly k occurrences.
func (r RepeatabilityResult) Percent(k int) float64 {
	if r.TotalFlips == 0 || k < 1 || k > len(r.Occurrences) {
		return 0
	}
	return 100 * float64(r.Occurrences[k-1]) / float64(r.TotalFlips)
}

// RepeatabilityStudy hammers each tested location cfg.Trials times at a
// fixed activation count (the budget-limited maximum, as the bitflip-
// coverage experiments use) and histograms per-cell occurrence counts
// (Figs. 42–45). Trials run replay-free on one threaded prober;
// repeatabilityStudyReplay is the retained per-command reference the
// differential tests pin this against.
func RepeatabilityStudy(spec chipgen.ModuleSpec, cfg Config, tempC float64, tAggONs []dram.TimePS) ([]RepeatabilityResult, error) {
	b, err := NewBench(spec, cfg, tempC)
	if err != nil {
		return nil, err
	}
	p := newProber(b, cfg)
	return repeatabilityStudy(b, cfg, tAggONs, func(s site, count int, on dram.TimePS) ([]bender.Flip, error) {
		return p.probe(s, count, on, 0)
	})
}

// repeatabilityStudyReplay is RepeatabilityStudy on the per-command
// path: every trial executes the full prepare/hammer/check stream.
// Retained as the reference implementation for the differential tests.
func repeatabilityStudyReplay(spec chipgen.ModuleSpec, cfg Config, tempC float64, tAggONs []dram.TimePS) ([]RepeatabilityResult, error) {
	b, err := NewBench(spec, cfg, tempC)
	if err != nil {
		return nil, err
	}
	return repeatabilityStudy(b, cfg, tAggONs, func(s site, count int, on dram.TimePS) ([]bender.Flip, error) {
		if err := s.prepare(b, cfg.Pattern); err != nil {
			return nil, err
		}
		if err := s.hammer(b, count, on, 0); err != nil {
			return nil, err
		}
		return s.check(b, cfg.Pattern)
	})
}

// repeatabilityStudy is the shared trial walk over a probe function; the
// prober and replay paths differ only in how one trial measures.
func repeatabilityStudy(b *bender.Bench, cfg Config, tAggONs []dram.TimePS,
	probe func(s site, count int, on dram.TimePS) ([]bender.Flip, error)) ([]RepeatabilityResult, error) {
	locs := testedLocations(cfg.Geometry, cfg.RowsToTest)
	out := make([]RepeatabilityResult, 0, len(tAggONs))
	for _, on := range tAggONs {
		res := RepeatabilityResult{TAggON: on, Occurrences: make([]int, cfg.Trials)}
		counts := make(map[CellKey]int)
		slot := on + b.Mod.Timing.TRP
		for _, loc := range locs {
			s := siteFor(loc, cfg.Sided)
			count := maxActivations(cfg.TimeBudget, slot, len(s.aggressors))
			for trial := 1; trial <= cfg.Trials; trial++ {
				b.SetTrial(uint64(trial))
				flips, err := probe(s, count, on)
				if err != nil {
					return nil, err
				}
				for k := range cellSet(flips) {
					counts[k]++
				}
			}
		}
		b.SetTrial(0)
		for _, n := range counts {
			if n >= 1 && n <= cfg.Trials {
				res.Occurrences[n-1]++
				res.TotalFlips++
			}
		}
		out = append(out, res)
	}
	return out, nil
}
