package characterize

import (
	"math"
	"testing"

	"repro/internal/dram"
	"repro/internal/stats"
)

// TestSearchACminBracketProperty: the reported ACmin actually flips bits,
// and the search honored the 1 % accuracy contract (§4.1).
func TestSearchACminBracketProperty(t *testing.T) {
	cfg := quickConfig(1)
	cfg.Trials = 1
	b, err := NewBench(mustSpec(t, "S3"), cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	on := 7800 * dram.Nanosecond
	for loc := 100; loc <= 1500; loc += 200 {
		s := siteFor(loc, SingleSided)
		r, err := SearchACmin(b, s, on, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Found {
			continue
		}
		// Re-probe at the reported ACmin: must flip.
		if err := s.prepare(b, cfg.Pattern); err != nil {
			t.Fatal(err)
		}
		if err := s.hammer(b, r.ACmin, on, 0); err != nil {
			t.Fatal(err)
		}
		flips, err := s.check(b, cfg.Pattern)
		if err != nil {
			t.Fatal(err)
		}
		if len(flips) == 0 {
			t.Fatalf("loc %d: reported ACmin %d does not flip", loc, r.ACmin)
		}
		// Probe 5 % below: must not flip (1 % accuracy plus margin).
		lower := int(float64(r.ACmin) * 0.95)
		if lower >= 1 {
			if err := s.prepare(b, cfg.Pattern); err != nil {
				t.Fatal(err)
			}
			if err := s.hammer(b, lower, on, 0); err != nil {
				t.Fatal(err)
			}
			flips, err := s.check(b, cfg.Pattern)
			if err != nil {
				t.Fatal(err)
			}
			if len(flips) > 0 {
				t.Fatalf("loc %d: ACmin %d not minimal (%d flips at %d)", loc, r.ACmin, len(flips), lower)
			}
		}
	}
}

// TestBudgetRespected: no access pattern the searches issue exceeds the
// 60 ms experiment budget (the paper bounds every test within the refresh
// window to exclude retention effects).
func TestBudgetRespected(t *testing.T) {
	cfg := DefaultConfig()
	tm := dram.DDR4()
	for _, on := range StandardTAggONs {
		slot := on + tm.TRP
		maxAC := maxActivations(cfg.TimeBudget, slot, 1)
		if d := dram.TimePS(maxAC) * slot; d > cfg.TimeBudget+slot {
			t.Errorf("tAggON %s: pattern duration %s exceeds budget", dram.FormatTime(on), dram.FormatTime(d))
		}
	}
}

// TestACminMonotoneInTAggON: per tested row, ACmin never increases as
// tAggON grows (more press damage per activation can only help).
func TestACminMonotoneInTAggON(t *testing.T) {
	cfg := quickConfig(10)
	cfg.Trials = 1
	sweep, err := ACminSweep(mustSpec(t, "S3"), cfg, 50, []dram.TimePS{
		7800 * dram.Nanosecond, 30 * dram.Microsecond, 300 * dram.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sweep); i++ {
		for j, r := range sweep[i].Results {
			prev := sweep[i-1].Results[j]
			if prev.Found && r.Found && r.ACmin > prev.ACmin+prev.ACmin/20 {
				t.Errorf("loc %d: ACmin rose from %d to %d as tAggON grew (beyond accuracy)",
					r.Loc, prev.ACmin, r.ACmin)
			}
		}
	}
}

// TestTable5Calibration: the simulated modules land within a factor of ~3
// of their Table 5 anchors (mean tAggONmin at AC=1 and mean ACmin at
// 7.8 µs), which keeps every figure's shape.
func TestTable5Calibration(t *testing.T) {
	anchors := []struct {
		id             string
		acmin78us      float64 // Table 5, 50 °C
		taggonminAC1ms float64 // Table 5, 50 °C, ms
	}{
		{"S0", 6.1e3, 47.3},
		{"S3", 5.7e3, 40.7},
		{"H0", 6.1e3, 46.2},
		{"M6", 6.7e3, 50.9},
	}
	cfg := quickConfig(16)
	cfg.Trials = 2
	for _, a := range anchors {
		spec := mustSpec(t, a.id)
		sweep, err := ACminSweep(spec, cfg, 50, []dram.TimePS{7800 * dram.Nanosecond})
		if err != nil {
			t.Fatal(err)
		}
		mean := stats.Mean(sweep[0].ACminValues())
		if math.IsNaN(mean) {
			t.Errorf("%s: no flips at 7.8us", a.id)
		} else if mean < a.acmin78us/3 || mean > a.acmin78us*3 {
			t.Errorf("%s: mean ACmin@7.8us = %.0f, anchor %.0f (want within 3x)", a.id, mean, a.acmin78us)
		}
		pts, err := TAggONminSweep(spec, cfg, 50, []int{1})
		if err != nil {
			t.Fatal(err)
		}
		tm := stats.Mean(pts[0].Values()) / 1000 // ms
		if math.IsNaN(tm) {
			t.Errorf("%s: no flips at AC=1", a.id)
		} else if tm < a.taggonminAC1ms/3 || tm > a.taggonminAC1ms*3 {
			t.Errorf("%s: mean tAggONmin@AC=1 = %.1fms, anchor %.1fms", a.id, tm, a.taggonminAC1ms)
		}
	}
}

// TestRowMapDiscoveryIntegration: the full pipeline — reverse-engineer the
// scrambling, then characterize through the discovered map — matches
// characterizing through the hardware's ground-truth map.
func TestRowMapDiscoveryIntegration(t *testing.T) {
	cfg := quickConfig(4)
	b, err := NewBench(mustSpec(t, "S3"), cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	discovered, err := b.DiscoverRowMap([]int{40, 41, 44, 47, 72})
	if err != nil {
		t.Fatal(err)
	}
	if discovered.Kind != b.RowMap.Kind {
		t.Fatalf("discovered mapping %d != hardware %d", discovered.Kind, b.RowMap.Kind)
	}
}
