package characterize

import (
	"reflect"
	"testing"

	"repro/internal/dram"
)

// These tests pin the per-location column decomposition (the sub-shard
// work functions of the split experiments) bit-identical to the
// threaded sweeps the golden reports were generated from. They are the
// unit-level half of the equivalence argument; the golden suite holds
// the report level.

var columnTAggONs = []dram.TimePS{
	36 * dram.Nanosecond,
	7800 * dram.Nanosecond,
	300 * dram.Microsecond,
	30 * dram.Millisecond,
}

func TestACminColumnsMatchSweep(t *testing.T) {
	cfg := quickConfig(6)
	spec := mustSpec(t, "S3")
	want, err := ACminSweep(spec, cfg, 50, columnTAggONs)
	if err != nil {
		t.Fatal(err)
	}
	locs := testedLocations(cfg.Geometry, cfg.RowsToTest)
	if len(locs) < 2 {
		t.Fatalf("want ≥2 tested locations, got %d", len(locs))
	}

	// Per-location partition: one column per site, as the finest split.
	var cols [][]RowResult
	for _, loc := range locs {
		c, err := ACminColumns(spec, cfg, 50, columnTAggONs, []int{loc}, true)
		if err != nil {
			t.Fatal(err)
		}
		cols = append(cols, c...)
	}
	if got := AssembleACminSweep(columnTAggONs, cols); !reflect.DeepEqual(got, want) {
		t.Errorf("per-location columns diverge from threaded sweep:\n got %+v\nwant %+v", got, want)
	}

	// Chunked partition: several sites per column, as the sizing
	// heuristic produces at paper scale.
	chunked, err := ACminColumns(spec, cfg, 50, columnTAggONs, locs[:2], true)
	if err != nil {
		t.Fatal(err)
	}
	rest, err := ACminColumns(spec, cfg, 50, columnTAggONs, locs[2:], true)
	if err != nil {
		t.Fatal(err)
	}
	if got := AssembleACminSweep(columnTAggONs, append(chunked, rest...)); !reflect.DeepEqual(got, want) {
		t.Errorf("chunked columns diverge from threaded sweep")
	}
}

// TestACminColumnsSingleLocation: with one tested location no other
// groups intervene in the threaded order, so the column must not insert
// the recovered-off advance (gap=false) to stay identical.
func TestACminColumnsSingleLocation(t *testing.T) {
	cfg := quickConfig(1)
	spec := mustSpec(t, "S3")
	want, err := ACminSweep(spec, cfg, 50, columnTAggONs)
	if err != nil {
		t.Fatal(err)
	}
	locs := testedLocations(cfg.Geometry, cfg.RowsToTest)
	if len(locs) != 1 {
		t.Fatalf("want exactly 1 tested location, got %d", len(locs))
	}
	cols, err := ACminColumns(spec, cfg, 50, columnTAggONs, locs, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := AssembleACminSweep(columnTAggONs, cols); !reflect.DeepEqual(got, want) {
		t.Errorf("single-location column diverges from threaded sweep")
	}
}

func TestTAggONminColumnsMatchSweep(t *testing.T) {
	cfg := quickConfig(5)
	spec := mustSpec(t, "S0")
	acs := []int{1, 10, 100, 1000, 10000}
	want, err := TAggONminSweep(spec, cfg, 50, acs)
	if err != nil {
		t.Fatal(err)
	}
	locs := testedLocations(cfg.Geometry, cfg.RowsToTest)
	if len(locs) < 2 {
		t.Fatalf("want ≥2 tested locations, got %d", len(locs))
	}
	var cols [][]TAggONminResult
	for _, loc := range locs {
		c, err := TAggONminColumns(spec, cfg, 50, acs, []int{loc}, true)
		if err != nil {
			t.Fatal(err)
		}
		cols = append(cols, c...)
	}
	if got := AssembleTAggONminSweep(acs, cols); !reflect.DeepEqual(got, want) {
		t.Errorf("per-location columns diverge from threaded tAggONmin sweep")
	}
}

func TestACminColumnsDoubleSided(t *testing.T) {
	cfg := quickConfig(4)
	cfg.Sided = DoubleSided
	spec := mustSpec(t, "H0")
	want, err := ACminSweep(spec, cfg, 80, columnTAggONs)
	if err != nil {
		t.Fatal(err)
	}
	locs := testedLocations(cfg.Geometry, cfg.RowsToTest)
	var cols [][]RowResult
	for _, loc := range locs {
		c, err := ACminColumns(spec, cfg, 80, columnTAggONs, []int{loc}, true)
		if err != nil {
			t.Fatal(err)
		}
		cols = append(cols, c...)
	}
	if got := AssembleACminSweep(columnTAggONs, cols); !reflect.DeepEqual(got, want) {
		t.Errorf("double-sided columns diverge from threaded sweep")
	}
}
