// Package characterize implements the paper's RowPress/RowHammer
// characterization methodology (§4, §5): the 1 %-accuracy bisection search
// for ACmin, the tAggONmin search, bit-error-rate measurements for the
// RowPress-ONOFF pattern, vulnerable-cell overlap analysis against
// RowHammer and retention failures, bitflip directionality, data-pattern
// sensitivity, and repeatability — everything the evaluation figures are
// built from.
package characterize

import (
	"fmt"

	"repro/internal/bender"
	"repro/internal/dram"
)

// Sidedness selects the access pattern family.
type Sidedness int

// Single-sided (Fig. 5) and double-sided (Fig. 16) access patterns.
const (
	SingleSided Sidedness = iota
	DoubleSided
)

// String returns the paper's label.
func (s Sidedness) String() string {
	if s == DoubleSided {
		return "Double-Sided"
	}
	return "Single-Sided"
}

// Config controls a characterization run. The defaults mirror §4.1 at a
// scale that completes quickly; the paper-scale values are in comments.
type Config struct {
	Geometry   dram.Geometry
	Bank       int
	RowsToTest int              // tested row locations (paper: 3072)
	TimeBudget dram.TimePS      // per-measurement command-stream budget (paper: 60 ms)
	Pattern    dram.DataPattern // §4.1: checkerboard by default
	Trials     int              // repetitions, min taken (paper: 5)
	Accuracy   float64          // bisection termination, fraction (paper: 0.01)
	Sided      Sidedness
}

// DefaultConfig returns the scaled default configuration.
func DefaultConfig() Config {
	return Config{
		Geometry:   dram.DefaultGeometry(),
		Bank:       1,
		RowsToTest: 48,
		TimeBudget: 60 * dram.Millisecond,
		Pattern:    dram.CheckerBoard,
		Trials:     5,
		Accuracy:   0.01,
		Sided:      SingleSided,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	switch {
	case c.RowsToTest <= 0:
		return fmt.Errorf("characterize: RowsToTest must be positive")
	case c.TimeBudget <= 0:
		return fmt.Errorf("characterize: TimeBudget must be positive")
	case c.Trials <= 0:
		return fmt.Errorf("characterize: Trials must be positive")
	case c.Accuracy <= 0 || c.Accuracy >= 1:
		return fmt.Errorf("characterize: Accuracy must be in (0,1)")
	}
	return nil
}

// StandardTAggONs is the sweep lattice used across the paper's figures,
// from tRAS (conventional RowHammer) up to the extreme 30 ms.
var StandardTAggONs = []dram.TimePS{
	36 * dram.Nanosecond,
	66 * dram.Nanosecond,
	96 * dram.Nanosecond,
	186 * dram.Nanosecond,
	336 * dram.Nanosecond,
	636 * dram.Nanosecond,
	1536 * dram.Nanosecond,
	7800 * dram.Nanosecond, // tREFI
	15 * dram.Microsecond,
	30 * dram.Microsecond,
	70200 * dram.Nanosecond, // 9 × tREFI
	300 * dram.Microsecond,
	1500 * dram.Microsecond,
	6 * dram.Millisecond,
	30 * dram.Millisecond,
}

// DataPatternTAggONs is the reduced lattice of §5.3 (Fig. 19/20).
var DataPatternTAggONs = []dram.TimePS{
	36 * dram.Nanosecond,
	66 * dram.Nanosecond,
	636 * dram.Nanosecond,
	7800 * dram.Nanosecond,
	70200 * dram.Nanosecond,
	300 * dram.Microsecond,
	6 * dram.Millisecond,
}

// testedLocations spreads n tested row locations across the bank, keeping
// enough spacing that the blast radii of neighboring locations never
// interact, and staying clear of the array edges.
func testedLocations(geo dram.Geometry, n int) []int {
	const margin = 8
	usable := geo.RowsPerBank - 2*margin
	if usable <= 0 {
		return nil
	}
	if n > usable/16 {
		n = usable / 16
	}
	if n <= 0 {
		n = 1
	}
	locs := make([]int, 0, n)
	step := usable / n
	if step < 16 {
		step = 16
	}
	for i := 0; i < n; i++ {
		loc := margin + i*step
		if loc >= geo.RowsPerBank-margin {
			break
		}
		locs = append(locs, loc)
	}
	return locs
}

// TestedLocations exposes the location picker for callers composing their
// own experiments (the ECC analysis, examples).
func TestedLocations(geo dram.Geometry, n int) []int {
	return testedLocations(geo, n)
}

// site describes one tested location's aggressor and victim rows, all in
// physical row coordinates.
type site struct {
	loc        int
	aggressors []int
	victims    []int
}

// siteFor constructs the access-pattern geometry of §4.1/§5.2 around a
// physical location: single-sided hammers the location itself and checks
// ±1..3; double-sided hammers loc±1 and checks the middle row plus three
// rows beyond each aggressor.
func siteFor(loc int, sided Sidedness) site {
	s := site{loc: loc}
	switch sided {
	case SingleSided:
		s.aggressors = []int{loc}
		for d := 1; d <= dram.BlastRadius; d++ {
			s.victims = append(s.victims, loc-d, loc+d)
		}
	case DoubleSided:
		s.aggressors = []int{loc - 1, loc + 1}
		s.victims = append(s.victims, loc)
		for d := 2; d <= dram.BlastRadius+1; d++ {
			s.victims = append(s.victims, loc-d, loc+d)
		}
	}
	return s
}

// prepare writes the data pattern into the site's rows (victims get the
// victim byte, aggressors the aggressor byte), resetting their state.
func (s site) prepare(b *bender.Bench, p dram.DataPattern) error {
	for _, v := range s.victims {
		if err := b.WriteRow(b.RowMap.Logical(v), p.VictimByte()); err != nil {
			return err
		}
	}
	for _, a := range s.aggressors {
		if err := b.WriteRow(b.RowMap.Logical(a), p.AggressorByte()); err != nil {
			return err
		}
	}
	return nil
}

// check reads all victims and returns every bitflip, tagging flips with
// physical row coordinates.
func (s site) check(b *bender.Bench, p dram.DataPattern) ([]bender.Flip, error) {
	var all []bender.Flip
	for _, v := range s.victims {
		flips, err := b.CheckRow(b.RowMap.Logical(v), p.VictimByte())
		if err != nil {
			return nil, err
		}
		for _, f := range flips {
			f.LogicalRow = v // report in physical coordinates
			all = append(all, f)
		}
	}
	return all, nil
}

// hammer runs count total activations over the site's aggressors.
func (s site) hammer(b *bender.Bench, count int, onTime, extraOff dram.TimePS) error {
	logical := make([]int, len(s.aggressors))
	for i, a := range s.aggressors {
		logical[i] = b.RowMap.Logical(a)
	}
	return b.Hammer(logical, count, onTime, extraOff)
}
