package characterize

import (
	"math"
	"testing"

	"repro/internal/dram"
	"repro/internal/stats"
)

// TestTAggONminDecreasesWithAC checks Obsv. 5: tAggONmin falls roughly as
// 1/AC (slope ≈ −1 in log-log).
func TestTAggONminDecreasesWithAC(t *testing.T) {
	cfg := quickConfig(8)
	points, err := TAggONminSweep(mustSpec(t, "S3"), cfg, 50, []int{1, 10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	var xs, ys []float64
	for _, pt := range points {
		if m := stats.Mean(pt.Values()); !math.IsNaN(m) && m > 0 {
			xs = append(xs, float64(pt.AC))
			ys = append(ys, m)
		}
	}
	if len(xs) < 3 {
		t.Fatalf("too few flipping points: %d", len(xs))
	}
	fit := stats.FitLogLog(xs, ys)
	if fit.Slope < -1.1 || fit.Slope > -0.9 {
		t.Errorf("tAggONmin slope = %.3f, want ≈ −1 (paper: −1.000)", fit.Slope)
	}
	// Obsv. 5 magnitude: ~43 ms at AC=1 down to microseconds at large AC.
	first := stats.Mean(points[0].Values()) // µs at AC=1
	if first < 5e3 || first > 1e5 {
		t.Errorf("tAggONmin @AC=1 = %.0f µs, want tens of ms", first)
	}
}

// TestTAggONminTempSweep checks Obsv. 11: tAggONmin at AC=1 decreases as
// temperature rises from 50 to 80 °C.
func TestTAggONminTempSweep(t *testing.T) {
	cfg := quickConfig(6)
	out, err := TAggONminTempSweep(mustSpec(t, "H0"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m50 := stats.Mean(out[50].Values())
	m80 := stats.Mean(out[80].Values())
	if math.IsNaN(m80) {
		t.Fatal("no flips at 80C")
	}
	if !math.IsNaN(m50) && m80 >= m50 {
		t.Errorf("tAggONmin did not decrease with temperature: 50C=%.0fus 80C=%.0fus", m50, m80)
	}
	// H 16Gb A: avg 47.4 ms at 50 °C → 13.0 ms at 80 °C (≈3.6x).
	if !math.IsNaN(m50) {
		ratio := m50 / m80
		if ratio < 1.5 {
			t.Errorf("tAggONmin 50C/80C ratio = %.2f, want > 1.5 (paper H: ~3.6)", ratio)
		}
	}
}

// TestONOFFTrends checks Obsv. 16/18 on the representative S 8Gb D-die:
// single-sided BER falls with %on at small ΔtA2A and rises at large
// ΔtA2A; double-sided BER rises with %on everywhere.
func TestONOFFTrends(t *testing.T) {
	cfg := quickConfig(4)
	cfg.Trials = 2
	pts, err := ONOFFSweep(mustSpec(t, "S3"), cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	ber := make(map[[2]int64]float64) // {delta, frac*100} -> max BER
	for _, p := range pts {
		ber[[2]int64{int64(p.DeltaA2A), int64(p.OnFrac * 100)}] = p.BER.MaxBER
	}
	small := int64(240 * dram.Nanosecond)
	large := int64(6000 * dram.Nanosecond)
	if ber[[2]int64{small, 0}] < ber[[2]int64{small, 100}] {
		t.Errorf("small ΔtA2A: BER should fall as on-time grows: %g -> %g",
			ber[[2]int64{small, 0}], ber[[2]int64{small, 100}])
	}
	if ber[[2]int64{large, 100}] <= ber[[2]int64{large, 0}] {
		t.Errorf("large ΔtA2A: BER should rise as on-time grows: %g -> %g",
			ber[[2]int64{large, 0}], ber[[2]int64{large, 100}])
	}
}

// TestOverlapSweep checks Obsv. 7: at tAggON = tRAS the RowPress set IS the
// RowHammer set (overlap 1); at large tAggON the overlap collapses.
func TestOverlapSweep(t *testing.T) {
	cfg := quickConfig(12)
	pts, err := OverlapSweep(mustSpec(t, "S3"), cfg, 50, []dram.TimePS{
		36 * dram.Nanosecond, 70200 * dram.Nanosecond, 30 * dram.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].WithHammer < 0.99 {
		t.Errorf("overlap at tRAS = %.3f, want 1.0 (same experiment)", pts[0].WithHammer)
	}
	for _, pt := range pts[1:] {
		if pt.Cells == 0 {
			t.Errorf("no cells at %s", dram.FormatTime(pt.TAggON))
			continue
		}
		if pt.WithHammer > 0.05 {
			t.Errorf("overlap with RowHammer at %s = %.3f, want ≈0 (paper <0.013%%)",
				dram.FormatTime(pt.TAggON), pt.WithHammer)
		}
		if pt.WithRetention > 0.05 {
			t.Errorf("overlap with retention at %s = %.3f, want ≈0 (paper <0.34%%)",
				dram.FormatTime(pt.TAggON), pt.WithRetention)
		}
	}
}

// TestRetentionTestProducesFlips: the 4 s @80 °C refresh-off experiment
// flips the retention-weak population.
func TestRetentionTestProducesFlips(t *testing.T) {
	cfg := quickConfig(16)
	b, err := NewBench(mustSpec(t, "S0"), cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	set, err := RetentionTest(b, testedLocations(cfg.Geometry, 16), cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) == 0 {
		t.Fatal("no retention failures after 4s @ 80C")
	}
}

// TestDataPatternStudy checks Obsv. 14/15 essentials: RowStripe cannot
// flip anything at large tAggON (no charged victim cells on a true-cell
// die), while CheckerBoard always can.
func TestDataPatternStudy(t *testing.T) {
	cfg := quickConfig(8)
	cells, err := DataPatternStudy(mustSpec(t, "S3"), cfg, 50, []dram.TimePS{
		36 * dram.Nanosecond, 7800 * dram.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]PatternCell)
	for _, c := range cells {
		byKey[c.Pattern.String()+"@"+dram.FormatTime(c.TAggON)] = c
	}
	if c := byKey["RS@7.8us"]; !c.NoBitflip {
		t.Errorf("RowStripe at 7.8us should be NoBitflip, got %.2f", c.Normalized)
	}
	if c := byKey["CB@7.8us"]; c.NoBitflip || math.Abs(c.Normalized-1) > 1e-9 {
		t.Errorf("CB at 7.8us should normalize to 1.0, got %+v", c)
	}
	if c := byKey["RS@36ns"]; c.NoBitflip {
		t.Error("RowStripe at 36ns (RowHammer) should flip")
	}
	if c := byKey["CSI@7.8us"]; c.NoBitflip {
		t.Error("CSI at 7.8us should flip")
	}
}

// TestRepeatability checks Appendix E: the majority of flips recur in all
// trials.
func TestRepeatability(t *testing.T) {
	cfg := quickConfig(8)
	cfg.Trials = 5
	res, err := RepeatabilityStudy(mustSpec(t, "S3"), cfg, 50, []dram.TimePS{7800 * dram.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.TotalFlips == 0 {
		t.Fatal("no flips observed")
	}
	if p := r.Percent(5); p < 50 {
		t.Errorf("only %.1f%% of flips occurred in all 5 trials, want ≥50%% (Obsv. 22)", p)
	}
	if p := r.Percent(1) + r.Percent(2); p > 40 {
		t.Errorf("%.1f%% of flips are low-repeatability, too noisy", p)
	}
}

// TestAntiCellDieDirection checks the Mfr. M 16Gb E-die exception of
// Obsv. 8: with anti-cell-dominant layout the 1→0 fraction decreases as
// tAggON grows.
func TestAntiCellDieDirection(t *testing.T) {
	cfg := quickConfig(10)
	sweep, err := ACminSweep(mustSpec(t, "M3"), cfg, 50, []dram.TimePS{
		36 * dram.Nanosecond, 70200 * dram.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rh := sweep[0].FractionOneToZero()
	rp := sweep[1].FractionOneToZero()
	if rp >= rh {
		t.Errorf("anti-cell die: 1→0 fraction should drop with tAggON (got %.2f -> %.2f)", rh, rp)
	}
}
