package characterize

import (
	"math"
	"testing"

	"repro/internal/chipgen"
	"repro/internal/dram"
	"repro/internal/stats"
)

// quickConfig is a scaled-down configuration for fast tests.
func quickConfig(rows int) Config {
	cfg := DefaultConfig()
	cfg.Geometry = dram.Geometry{Banks: 2, RowsPerBank: 2048, RowBytes: 8192}
	cfg.RowsToTest = rows
	cfg.Trials = 2
	return cfg
}

func mustSpec(t *testing.T, id string) chipgen.ModuleSpec {
	t.Helper()
	spec, ok := chipgen.ByID(id)
	if !ok {
		t.Fatalf("unknown module %s", id)
	}
	return spec
}

func TestTestedLocationsSpacing(t *testing.T) {
	geo := dram.Geometry{Banks: 1, RowsPerBank: 4096, RowBytes: 8192}
	locs := testedLocations(geo, 64)
	if len(locs) == 0 {
		t.Fatal("no locations")
	}
	for i := 1; i < len(locs); i++ {
		if locs[i]-locs[i-1] < 16 {
			t.Fatalf("locations %d and %d too close", locs[i-1], locs[i])
		}
	}
	for _, l := range locs {
		if l < 8 || l >= geo.RowsPerBank-8 {
			t.Fatalf("location %d too close to array edge", l)
		}
	}
}

func TestSiteGeometry(t *testing.T) {
	ss := siteFor(100, SingleSided)
	if len(ss.aggressors) != 1 || ss.aggressors[0] != 100 {
		t.Fatalf("single-sided aggressors = %v", ss.aggressors)
	}
	if len(ss.victims) != 6 {
		t.Fatalf("single-sided victims = %v", ss.victims)
	}
	ds := siteFor(100, DoubleSided)
	if len(ds.aggressors) != 2 || ds.aggressors[0] != 99 || ds.aggressors[1] != 101 {
		t.Fatalf("double-sided aggressors = %v", ds.aggressors)
	}
	if len(ds.victims) != 7 || ds.victims[0] != 100 {
		t.Fatalf("double-sided victims = %v", ds.victims)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mod := range []func(*Config){
		func(c *Config) { c.RowsToTest = 0 },
		func(c *Config) { c.TimeBudget = 0 },
		func(c *Config) { c.Trials = 0 },
		func(c *Config) { c.Accuracy = 0 },
		func(c *Config) { c.Accuracy = 1 },
	} {
		c := DefaultConfig()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
}

// TestACminDecreasesWithTAggON checks the paper's central result (Obsv. 1):
// ACmin reduces by orders of magnitude as tAggON grows.
func TestACminDecreasesWithTAggON(t *testing.T) {
	cfg := quickConfig(10)
	sweep, err := ACminSweep(mustSpec(t, "S3"), cfg, 50, []dram.TimePS{
		36 * dram.Nanosecond, 7800 * dram.Nanosecond, 70200 * dram.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	means := make([]float64, len(sweep))
	for i, pt := range sweep {
		vs := pt.ACminValues()
		if len(vs) == 0 {
			t.Fatalf("no rows flipped at %s", dram.FormatTime(pt.TAggON))
		}
		means[i] = stats.Mean(vs)
	}
	// Obsv. 1: ~21x reduction from 36 ns to 7.8 µs, ~190x to 70.2 µs.
	if r := means[0] / means[1]; r < 4 || r > 100 {
		t.Errorf("ACmin(36ns)/ACmin(7.8us) = %.1f, want order ~21x", r)
	}
	if r := means[0] / means[2]; r < 40 || r > 1000 {
		t.Errorf("ACmin(36ns)/ACmin(70.2us) = %.1f, want order ~190x", r)
	}
}

// TestACminLogLogSlope checks Obsv. 3: for tAggON ≥ 7.8 µs the ACmin trend
// in log-log space has slope ≈ −1.
func TestACminLogLogSlope(t *testing.T) {
	cfg := quickConfig(8)
	taggons := []dram.TimePS{
		7800 * dram.Nanosecond, 15 * dram.Microsecond, 30 * dram.Microsecond,
		70200 * dram.Nanosecond, 300 * dram.Microsecond,
	}
	sweep, err := ACminSweep(mustSpec(t, "S0"), cfg, 50, taggons)
	if err != nil {
		t.Fatal(err)
	}
	var xs, ys []float64
	for _, pt := range sweep {
		if m := stats.Mean(pt.ACminValues()); !math.IsNaN(m) {
			xs = append(xs, dram.Seconds(pt.TAggON))
			ys = append(ys, m)
		}
	}
	fit := stats.FitLogLog(xs, ys)
	if fit.Slope < -1.15 || fit.Slope > -0.85 {
		t.Errorf("log-log slope = %.3f, want ≈ −1 (paper: −1.02)", fit.Slope)
	}
}

// TestACminSingleActivationAt30ms checks Obsv. 2: at tAggON = 30 ms some
// rows need only one activation.
func TestACminSingleActivationAt30ms(t *testing.T) {
	cfg := quickConfig(24)
	sweep, err := ACminSweep(mustSpec(t, "S3"), cfg, 50, []dram.TimePS{30 * dram.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	oneCount, flipped := 0, 0
	for _, r := range sweep[0].Results {
		if r.Found {
			flipped++
			if r.ACmin == 1 {
				oneCount++
			}
		}
	}
	if flipped == 0 {
		t.Fatal("no rows flipped at 30ms")
	}
	if oneCount == 0 {
		t.Errorf("no rows with ACmin=1 at 30ms (paper: 13.1%% of rows at 50C)")
	}
}

// TestACminTemperatureEffect checks Obsv. 9: ACmin at 80 °C is lower than
// at 50 °C for the same tAggON.
func TestACminTemperatureEffect(t *testing.T) {
	cfg := quickConfig(8)
	spec := mustSpec(t, "H0")
	on := []dram.TimePS{7800 * dram.Nanosecond}
	s50, err := ACminSweep(spec, cfg, 50, on)
	if err != nil {
		t.Fatal(err)
	}
	s80, err := ACminSweep(spec, cfg, 80, on)
	if err != nil {
		t.Fatal(err)
	}
	m50 := stats.Mean(s50[0].ACminValues())
	m80 := stats.Mean(s80[0].ACminValues())
	if math.IsNaN(m50) || math.IsNaN(m80) {
		t.Fatal("missing data")
	}
	ratio := m80 / m50
	if ratio >= 0.9 {
		t.Errorf("ACmin(80C)/ACmin(50C) = %.2f, want < 0.9 (paper H: 0.32)", ratio)
	}
}

// TestACminDirectionality checks Obsv. 8: with the checkerboard pattern,
// RowHammer flips are predominantly 0→1 and RowPress flips 1→0 on
// true-cell dies.
func TestACminDirectionality(t *testing.T) {
	cfg := quickConfig(10)
	sweep, err := ACminSweep(mustSpec(t, "S3"), cfg, 50, []dram.TimePS{
		36 * dram.Nanosecond, 70200 * dram.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rhOneToZero := sweep[0].FractionOneToZero()
	rpOneToZero := sweep[1].FractionOneToZero()
	if rhOneToZero > 0.2 {
		t.Errorf("RowHammer 1→0 fraction = %.2f, want ≈0", rhOneToZero)
	}
	if rpOneToZero < 0.8 {
		t.Errorf("RowPress 1→0 fraction = %.2f, want ≈1", rpOneToZero)
	}
}

// TestDoubleSidedCrossover checks Obsv. 13: double-sided wins at RowHammer
// conditions; single-sided wins at large tAggON.
func TestDoubleSidedCrossover(t *testing.T) {
	spec := mustSpec(t, "S0")
	small := []dram.TimePS{36 * dram.Nanosecond}
	large := []dram.TimePS{70200 * dram.Nanosecond}

	run := func(sided Sidedness, ts []dram.TimePS) float64 {
		cfg := quickConfig(8)
		cfg.Sided = sided
		sweep, err := ACminSweep(spec, cfg, 50, ts)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Mean(sweep[0].ACminValues())
	}

	ssSmall := run(SingleSided, small)
	dsSmall := run(DoubleSided, small)
	if !(dsSmall < ssSmall) {
		t.Errorf("at 36ns double-sided (%.0f) should beat single-sided (%.0f)", dsSmall, ssSmall)
	}
	ssLarge := run(SingleSided, large)
	dsLarge := run(DoubleSided, large)
	if !(ssLarge < dsLarge) {
		t.Errorf("at 70.2us single-sided (%.0f) should beat double-sided (%.0f)", ssLarge, dsLarge)
	}
}

func TestPressImmuneModuleNoFlips(t *testing.T) {
	cfg := quickConfig(6)
	sweep, err := ACminSweep(mustSpec(t, "M0"), cfg, 50, []dram.TimePS{30 * dram.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(sweep[0].ACminValues()); n != 0 {
		t.Errorf("M0 (press-immune) flipped %d rows at 30ms", n)
	}
}
