package characterize

import (
	"testing"

	"repro/internal/bender"
	"repro/internal/dram"
)

// commandPathSearchACmin is the pre-refactor search, retained verbatim as
// the reference implementation: every probe prepares, hammers, and checks
// through the bench's command path.
func commandPathSearchACmin(p *prober, s site, onTime dram.TimePS) (RowResult, error) {
	b, cfg := p.b, p.cfg
	slot := onTime + b.Mod.Timing.TRP
	hi := maxActivations(cfg.TimeBudget, slot, len(s.aggressors))

	probe := func(ac int) ([]bender.Flip, error) {
		if err := s.prepare(b, cfg.Pattern); err != nil {
			return nil, err
		}
		if err := s.hammer(b, ac, onTime, 0); err != nil {
			return nil, err
		}
		return s.check(b, cfg.Pattern)
	}

	flips, err := probe(hi)
	if err != nil {
		return RowResult{}, err
	}
	if len(flips) == 0 {
		return RowResult{Loc: s.loc}, nil
	}
	lo := 0
	best := flips
	for hi-lo > 1 && float64(hi-lo) > cfg.Accuracy*float64(hi) {
		mid := lo + (hi-lo)/2
		flips, err := probe(mid)
		if err != nil {
			return RowResult{}, err
		}
		if len(flips) > 0 {
			hi, best = mid, flips
		} else {
			lo = mid
		}
	}
	return RowResult{Loc: s.loc, ACmin: hi, Found: true, Flips: best}, nil
}

// TestProberMatchesCommandPath is the fast-path equivalence contract for
// the characterization searches: the replay-free prober must return the
// same ACmin, the same found/not-found outcome, and the same flip list as
// the per-command reference, across modules, sidedness, dwell lengths,
// trials, and back-to-back searches that thread state from one to the
// next.
func TestProberMatchesCommandPath(t *testing.T) {
	taggons := []dram.TimePS{
		36 * dram.Nanosecond,
		636 * dram.Nanosecond,
		7800 * dram.Nanosecond,
		70200 * dram.Nanosecond,
		6 * dram.Millisecond,
	}
	for _, id := range []string{"S3", "H0", "M3"} {
		for _, sided := range []Sidedness{SingleSided, DoubleSided} {
			cfg := quickConfig(3)
			cfg.Sided = sided
			cfg.Trials = 2

			// Two identically-built benches: one drives the reference
			// command path, one the prober. Both must see the same
			// bench-sequence history across every (taggon, loc, trial).
			bRef, err := NewBench(mustSpec(t, id), cfg, 50)
			if err != nil {
				t.Fatal(err)
			}
			bNew, err := NewBench(mustSpec(t, id), cfg, 50)
			if err != nil {
				t.Fatal(err)
			}
			pRef := newProber(bRef, cfg) // carries bench + cfg for the reference
			pNew := newProber(bNew, cfg)

			for _, on := range taggons {
				for _, loc := range testedLocations(cfg.Geometry, cfg.RowsToTest) {
					s := siteFor(loc, sided)
					for trial := uint64(1); trial <= uint64(cfg.Trials); trial++ {
						bRef.SetTrial(trial)
						bNew.SetTrial(trial)
						want, err := commandPathSearchACmin(pRef, s, on)
						if err != nil {
							t.Fatal(err)
						}
						got, err := pNew.searchACmin(s, on)
						if err != nil {
							t.Fatal(err)
						}
						if want.Found != got.Found || want.ACmin != got.ACmin {
							t.Fatalf("%s %s %s loc %d trial %d: command path (found=%v ACmin=%d) != prober (found=%v ACmin=%d)",
								id, sided, dram.FormatTime(on), loc, trial,
								want.Found, want.ACmin, got.Found, got.ACmin)
						}
						if len(want.Flips) != len(got.Flips) {
							t.Fatalf("%s %s %s loc %d: flip count %d != %d",
								id, sided, dram.FormatTime(on), loc, len(want.Flips), len(got.Flips))
						}
						for i := range want.Flips {
							if want.Flips[i] != got.Flips[i] {
								t.Fatalf("%s %s %s loc %d: flip %d differs: %+v != %+v",
									id, sided, dram.FormatTime(on), loc, i, want.Flips[i], got.Flips[i])
							}
						}
						if bRef.Now() != bNew.Now() {
							t.Fatalf("%s %s %s loc %d: bench clocks diverged: %d != %d",
								id, sided, dram.FormatTime(on), loc, bRef.Now(), bNew.Now())
						}
					}
					bRef.SetTrial(0)
					bNew.SetTrial(0)
				}
			}
		}
	}
}
