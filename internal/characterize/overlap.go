package characterize

import (
	"repro/internal/bender"
	"repro/internal/chipgen"
	"repro/internal/dram"
)

// CellKey identifies one DRAM cell within the bank under test.
type CellKey struct {
	Row  int // physical row
	Byte int
	Bit  uint8
}

// cellSet collects flips into a set of cells.
func cellSet(flips []bender.Flip) map[CellKey]bool {
	s := make(map[CellKey]bool, len(flips))
	for _, f := range flips {
		s[CellKey{Row: f.LogicalRow, Byte: f.Byte, Bit: f.Bit}] = true
	}
	return s
}

// OverlapRatio returns |a ∩ b| / |a| (zero when a is empty).
func OverlapRatio(a, b map[CellKey]bool) float64 {
	if len(a) == 0 {
		return 0
	}
	n := 0
	for k := range a {
		if b[k] {
			n++
		}
	}
	return float64(n) / float64(len(a))
}

// OverlapPoint reports, at one tAggON, the fraction of RowPress-vulnerable
// cells that also appear in the RowHammer set (tAggON = tRAS) and in the
// retention-failure set (Fig. 10/11).
type OverlapPoint struct {
	TAggON        dram.TimePS
	Cells         int
	WithHammer    float64
	WithRetention float64
}

// RetentionTest reproduces the §4.3 retention experiment: initialize the
// tested rows with the data pattern, disable refresh for holdSeconds at
// 80 °C, and collect the cells that flipped.
func RetentionTest(b *bender.Bench, locs []int, cfg Config, holdSeconds float64) (map[CellKey]bool, error) {
	if err := b.SetTemperature(80); err != nil {
		return nil, err
	}
	sites := make([]site, 0, len(locs))
	for _, loc := range locs {
		s := siteFor(loc, cfg.Sided)
		if err := s.prepare(b, cfg.Pattern); err != nil {
			return nil, err
		}
		sites = append(sites, s)
	}
	b.Advance(dram.FromSeconds(holdSeconds))
	set := make(map[CellKey]bool)
	for _, s := range sites {
		flips, err := s.check(b, cfg.Pattern)
		if err != nil {
			return nil, err
		}
		for k := range cellSet(flips) {
			set[k] = true
		}
	}
	return set, nil
}

// OverlapSweep runs the Fig. 10 experiment for one module: for each
// tAggON, collect the cells that flip at ACmin, and compare against the
// RowHammer-vulnerable set (the tAggON = tRAS column of the same sweep)
// and the retention-failure set.
func OverlapSweep(spec chipgen.ModuleSpec, cfg Config, tempC float64, tAggONs []dram.TimePS) ([]OverlapPoint, error) {
	sweep, err := ACminSweep(spec, cfg, tempC, tAggONs)
	if err != nil {
		return nil, err
	}
	// Retention set on a fresh bench of the same module.
	bret, err := NewBench(spec, cfg, tempC)
	if err != nil {
		return nil, err
	}
	retSet, err := RetentionTest(bret, testedLocations(cfg.Geometry, cfg.RowsToTest), cfg, 4)
	if err != nil {
		return nil, err
	}

	// RowHammer set: flips observed at the smallest tAggON (= tRAS).
	hammerSet := make(map[CellKey]bool)
	if len(sweep) > 0 {
		for _, r := range sweep[0].Results {
			for k := range cellSet(r.Flips) {
				hammerSet[k] = true
			}
		}
	}
	out := make([]OverlapPoint, 0, len(sweep))
	for _, pt := range sweep {
		set := make(map[CellKey]bool)
		for _, r := range pt.Results {
			for k := range cellSet(r.Flips) {
				set[k] = true
			}
		}
		out = append(out, OverlapPoint{
			TAggON:        pt.TAggON,
			Cells:         len(set),
			WithHammer:    OverlapRatio(set, hammerSet),
			WithRetention: OverlapRatio(set, retSet),
		})
	}
	return out, nil
}

// MaxACFlips collects the cells that flip when the aggressors are
// activated as many times as the budget allows (the @ACmax variant of
// Fig. 11 and the ECC analysis of §7.1). It returns the flip list so
// callers can analyze per-word error multiplicities.
func MaxACFlips(b *bender.Bench, locs []int, onTime dram.TimePS, cfg Config) ([]bender.Flip, error) {
	slot := onTime + b.Mod.Timing.TRP
	var all []bender.Flip
	for _, loc := range locs {
		s := siteFor(loc, cfg.Sided)
		count := maxActivations(cfg.TimeBudget, slot, len(s.aggressors))
		if err := s.prepare(b, cfg.Pattern); err != nil {
			return nil, err
		}
		if err := s.hammer(b, count, onTime, 0); err != nil {
			return nil, err
		}
		flips, err := s.check(b, cfg.Pattern)
		if err != nil {
			return nil, err
		}
		all = append(all, flips...)
	}
	return all, nil
}
