package characterize

import (
	"testing"

	"repro/internal/chipgen"
	"repro/internal/dram"
)

// Search-path benchmarks: the replay-free prober against the retained
// per-command reference, over the same sweep shape the fig6 experiment
// runs per module. The ratio between the two is the payoff of the
// closed-form accrual + pure-probe rework; CI records both in the
// BENCH_4.json artifact.

var benchTaggons = []dram.TimePS{
	36 * dram.Nanosecond,
	7800 * dram.Nanosecond,
	70200 * dram.Nanosecond,
	6 * dram.Millisecond,
}

func benchSpec(b *testing.B) chipgen.ModuleSpec {
	b.Helper()
	spec, ok := chipgen.ByID("S3")
	if !ok {
		b.Fatal("unknown module S3")
	}
	return spec
}

// BenchmarkACminSearchProbe measures the production path: virtual
// prepare/hammer/check probes.
func BenchmarkACminSearchProbe(b *testing.B) {
	spec := benchSpec(b)
	cfg := quickConfig(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ACminSweep(spec, cfg, 50, benchTaggons); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkACminSearchCommandPath measures the same sweep driven through
// the per-command reference probes (prepare/hammer/check on the module).
func BenchmarkACminSearchCommandPath(b *testing.B) {
	spec := benchSpec(b)
	cfg := quickConfig(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bench, err := NewBench(spec, cfg, 50)
		if err != nil {
			b.Fatal(err)
		}
		p := newProber(bench, cfg)
		locs := testedLocations(cfg.Geometry, cfg.RowsToTest)
		for _, on := range benchTaggons {
			for _, loc := range locs {
				s := siteFor(loc, cfg.Sided)
				for trial := uint64(1); trial <= uint64(cfg.Trials); trial++ {
					bench.SetTrial(trial)
					if _, err := commandPathSearchACmin(p, s, on); err != nil {
						b.Fatal(err)
					}
				}
				bench.SetTrial(0)
			}
		}
	}
}
