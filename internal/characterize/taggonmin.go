package characterize

import (
	"fmt"

	"repro/internal/bender"
	"repro/internal/chipgen"
	"repro/internal/dram"
)

// TAggONminResult is the outcome of a tAggONmin search at one location.
type TAggONminResult struct {
	Loc       int
	TAggONmin dram.TimePS // minimum per-activation row-open time causing ≥1 bitflip
	Found     bool
}

// TAggONminPoint aggregates the per-row tAggONmin results at one
// activation count (Fig. 9's x-axis).
type TAggONminPoint struct {
	AC      int
	Results []TAggONminResult
}

// Values returns the tAggONmin of every row that flipped, in microseconds.
func (p TAggONminPoint) Values() []float64 {
	var vs []float64
	for _, r := range p.Results {
		if r.Found {
			vs = append(vs, dram.Seconds(r.TAggONmin)*1e6)
		}
	}
	return vs
}

// SearchTAggONmin bisects over the row-open time to find the minimum
// tAggON that induces at least one bitflip at the given total activation
// count. The upper bound is the time budget divided across the activations
// (the paper bounds every measurement within the refresh window). One
// search on a fresh probe harness; sweeps thread one prober through all
// their searches instead.
func SearchTAggONmin(b *bender.Bench, s site, ac int, cfg Config) (TAggONminResult, error) {
	return newProber(b, cfg).searchTAggONmin(s, ac)
}

// searchTAggONmin is the replay-free bisection over the row-open time:
// probes are closed-form exposure evaluations, so widening or narrowing
// the dwell costs the same O(site) work regardless of the dwell length.
func (p *prober) searchTAggONmin(s site, ac int) (TAggONminResult, error) {
	tRAS, tRP := p.b.Mod.Timing.TRAS, p.b.Mod.Timing.TRP
	hi := p.cfg.TimeBudget/dram.TimePS(ac) - tRP
	if hi <= tRAS {
		return TAggONminResult{Loc: s.loc}, nil
	}

	probe := func(on dram.TimePS) (bool, error) {
		flips, err := p.probe(s, ac, on, 0)
		return len(flips) > 0, err
	}

	ok, err := probe(hi)
	if err != nil {
		return TAggONminResult{}, fmt.Errorf("characterize: tAggONmin probe(%s): %w", dram.FormatTime(hi), err)
	}
	if !ok {
		return TAggONminResult{Loc: s.loc}, nil
	}
	lo := tRAS
	for hi-lo > 1 && float64(hi-lo) > p.cfg.Accuracy*float64(hi) {
		mid := lo + (hi-lo)/2
		ok, err := probe(mid)
		if err != nil {
			return TAggONminResult{}, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return TAggONminResult{Loc: s.loc, TAggONmin: hi, Found: true}, nil
}

func searchTAggONminTrials(p *prober, s site, ac int) (TAggONminResult, error) {
	result := TAggONminResult{Loc: s.loc}
	for trial := 1; trial <= p.cfg.Trials; trial++ {
		p.b.SetTrial(uint64(trial))
		r, err := p.searchTAggONmin(s, ac)
		if err != nil {
			return TAggONminResult{}, err
		}
		if r.Found && (!result.Found || r.TAggONmin < result.TAggONmin) {
			result = r
		}
	}
	p.b.SetTrial(0)
	return result, nil
}

// StandardACs is the activation-count lattice of Fig. 9 (1 to 10 K).
var StandardACs = []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}

// TAggONminSweep measures tAggONmin as the activation count grows (Fig. 9)
// or, with acs = {1} and several temperatures, the Fig. 15 temperature
// sweep.
func TAggONminSweep(spec chipgen.ModuleSpec, cfg Config, tempC float64, acs []int) ([]TAggONminPoint, error) {
	b, err := NewBench(spec, cfg, tempC)
	if err != nil {
		return nil, err
	}
	p := newProber(b, cfg)
	locs := testedLocations(cfg.Geometry, cfg.RowsToTest)
	points := make([]TAggONminPoint, 0, len(acs))
	for _, ac := range acs {
		pt := TAggONminPoint{AC: ac}
		for _, loc := range locs {
			r, err := searchTAggONminTrials(p, siteFor(loc, cfg.Sided), ac)
			if err != nil {
				return nil, err
			}
			pt.Results = append(pt.Results, r)
		}
		points = append(points, pt)
	}
	return points, nil
}

// TAggONminColumns is ACminColumns' counterpart for the tAggONmin
// search: the slice of a TAggONminSweep covering only the given tested
// locations, indexed [location][ac]. The same off-time equivalence and
// gap rule apply (see ACminColumns); it additionally requires every
// activation count to leave a probe-able dwell window (budget/ac − tRP
// > tRAS, true for every lattice the experiments use), since a
// degenerate group advances no clock in the threaded order.
func TAggONminColumns(spec chipgen.ModuleSpec, cfg Config, tempC float64, acs []int, locs []int, gap bool) ([][]TAggONminResult, error) {
	b, err := NewBench(spec, cfg, tempC)
	if err != nil {
		return nil, err
	}
	p := newProber(b, cfg)
	out := make([][]TAggONminResult, len(locs))
	for li, loc := range locs {
		s := siteFor(loc, cfg.Sided)
		col := make([]TAggONminResult, 0, len(acs))
		for gi, ac := range acs {
			if gap && gi > 0 {
				b.Advance(dram.RecoveredOff)
			}
			r, err := searchTAggONminTrials(p, s, ac)
			if err != nil {
				return nil, err
			}
			col = append(col, r)
		}
		out[li] = col
	}
	return out, nil
}

// AssembleTAggONminSweep stitches per-location columns (concatenated in
// location order) back into TAggONminSweep's point layout.
func AssembleTAggONminSweep(acs []int, cols [][]TAggONminResult) []TAggONminPoint {
	points := make([]TAggONminPoint, len(acs))
	for ai, ac := range acs {
		pt := TAggONminPoint{AC: ac, Results: make([]TAggONminResult, 0, len(cols))}
		for _, col := range cols {
			pt.Results = append(pt.Results, col[ai])
		}
		points[ai] = pt
	}
	return points
}

// TAggONminTempSweep runs the Fig. 15 experiment: tAggONmin at AC = 1 as
// the chip temperature steps from 50 °C to 80 °C in 5 °C increments, on a
// single bench whose heater rig is re-settled between steps.
func TAggONminTempSweep(spec chipgen.ModuleSpec, cfg Config) (map[float64]TAggONminPoint, error) {
	b, err := NewBench(spec, cfg, 50)
	if err != nil {
		return nil, err
	}
	p := newProber(b, cfg)
	locs := testedLocations(cfg.Geometry, cfg.RowsToTest)
	out := make(map[float64]TAggONminPoint)
	for temp := 50.0; temp <= 80; temp += 5 {
		// The prober keeps the bench clock current, so the heater-rig
		// settle lands at the right simulated time.
		if err := b.SetTemperature(temp); err != nil {
			return nil, err
		}
		pt := TAggONminPoint{AC: 1}
		for _, loc := range locs {
			r, err := searchTAggONminTrials(p, siteFor(loc, cfg.Sided), 1)
			if err != nil {
				return nil, err
			}
			pt.Results = append(pt.Results, r)
		}
		out[temp] = pt
	}
	return out, nil
}
