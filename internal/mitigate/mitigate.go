// Package mitigate implements the read-disturb mitigation mechanisms the
// paper builds on and extends (§6, §7): the in-DRAM target row refresh
// (TRR) samplers the attack must bypass, the PARA and Graphene RowHammer
// mitigations, the paper's adaptation methodology that re-configures
// them (tighter threshold + capped row-open time) to also stop RowPress,
// and an ImPress-style implicit RowPress mitigation (arXiv:2407.16006)
// that charges long row-open times as extra tracked activations.
package mitigate

import "repro/internal/dram"

// Mitigation observes row activations in one bank and decides which rows
// to preventively refresh. Implementations are per-bank; callers own one
// instance per bank.
type Mitigation interface {
	// Name identifies the mechanism in reports.
	Name() string
	// OnActivate records an activation of row and returns the rows to
	// preventively refresh right now (empty for most activations).
	OnActivate(row int) []int
	// OnRefreshWindow notifies that a refresh window (tREFW) completed;
	// counter-based mechanisms reset here.
	OnRefreshWindow()
}

// TimedMitigation is implemented by mechanisms whose bookkeeping depends
// on how long an activation kept the row open (ImPress). Callers that
// know the open time (the scenario playback harness, a memory controller)
// should prefer OnActivateTimed over OnActivate; plain OnActivate remains
// correct but sees every activation as a minimum-length one.
type TimedMitigation interface {
	Mitigation
	// OnActivateTimed records an activation of row that kept it open for
	// openFor and returns the rows to preventively refresh right now.
	OnActivateTimed(row int, openFor dram.TimePS) []int
}

// Observe feeds one activation to a mitigation, routing through the
// open-time-aware hook when the mechanism has one.
func Observe(m Mitigation, row int, openFor dram.TimePS) []int {
	if tm, ok := m.(TimedMitigation); ok {
		return tm.OnActivateTimed(row, openFor)
	}
	return m.OnActivate(row)
}

// None is the no-mitigation baseline.
type None struct{}

// Name implements Mitigation.
func (None) Name() string { return "none" }

// OnActivate implements Mitigation.
func (None) OnActivate(int) []int { return nil }

// OnRefreshWindow implements Mitigation.
func (None) OnRefreshWindow() {}

// victimsOf returns the blast-radius-1..2 neighbors a preventive refresh
// targets for an aggressor row.
func victimsOf(row int) []int {
	return []int{row - 2, row - 1, row + 1, row + 2}
}
