// Package mitigate implements the read-disturb mitigation mechanisms the
// paper builds on and extends (§6, §7): the in-DRAM target row refresh
// (TRR) samplers the attack must bypass, the PARA and Graphene RowHammer
// mitigations, and the paper's adaptation methodology that re-configures
// them (tighter threshold + capped row-open time) to also stop RowPress.
package mitigate

// Mitigation observes row activations in one bank and decides which rows
// to preventively refresh. Implementations are per-bank; callers own one
// instance per bank.
type Mitigation interface {
	// Name identifies the mechanism in reports.
	Name() string
	// OnActivate records an activation of row and returns the rows to
	// preventively refresh right now (empty for most activations).
	OnActivate(row int) []int
	// OnRefreshWindow notifies that a refresh window (tREFW) completed;
	// counter-based mechanisms reset here.
	OnRefreshWindow()
}

// None is the no-mitigation baseline.
type None struct{}

// Name implements Mitigation.
func (None) Name() string { return "none" }

// OnActivate implements Mitigation.
func (None) OnActivate(int) []int { return nil }

// OnRefreshWindow implements Mitigation.
func (None) OnRefreshWindow() {}

// victimsOf returns the blast-radius-1..2 neighbors a preventive refresh
// targets for an aggressor row.
func victimsOf(row int) []int {
	return []int{row - 2, row - 1, row + 1, row + 2}
}
