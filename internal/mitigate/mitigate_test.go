package mitigate

import (
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/stats"
)

func TestGrapheneTriggersAtThreshold(t *testing.T) {
	g := NewGraphene(100, 8)
	var refreshed []int
	for i := 0; i < 100; i++ {
		refreshed = g.OnActivate(42)
	}
	if len(refreshed) == 0 {
		t.Fatal("Graphene did not trigger at threshold")
	}
	want := map[int]bool{40: true, 41: true, 43: true, 44: true}
	for _, v := range refreshed {
		if !want[v] {
			t.Errorf("unexpected preventive-refresh target %d", v)
		}
	}
	if g.PreventiveRefreshes() != 1 {
		t.Fatalf("refresh count = %d", g.PreventiveRefreshes())
	}
}

// TestGrapheneMisraGriesBound: the estimate never undercounts by more than
// (total activations)/(tableSize+1) — the guarantee Graphene's security
// argument rests on.
func TestGrapheneMisraGriesBound(t *testing.T) {
	f := func(seed uint64) bool {
		const tableSize = 4
		g := NewGraphene(1<<30, tableSize) // huge threshold: count only
		rng := stats.NewRNG(seed)
		truth := make(map[int]int)
		total := 0
		for i := 0; i < 2000; i++ {
			row := rng.Intn(12)
			truth[row]++
			total++
			g.OnActivate(row)
		}
		bound := total / (tableSize + 1)
		for row, actual := range truth {
			est := g.EstimatedCount(row)
			// Two-sided bound: the spillover both caps undercounting (a row
			// can lose at most `spillover` increments) and caps
			// overcounting (re-inserted rows start at spillover+1), and the
			// spillover itself is bounded by total/(k+1).
			if actual-est > bound || est-actual > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGrapheneWindowReset(t *testing.T) {
	g := NewGraphene(10, 4)
	for i := 0; i < 9; i++ {
		g.OnActivate(7)
	}
	g.OnRefreshWindow()
	if out := g.OnActivate(7); len(out) != 0 {
		t.Fatal("counter survived window reset")
	}
}

func TestGraphenePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGraphene(0, 4)
}

func TestPARARate(t *testing.T) {
	pa := NewPARA(0.05, 7)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if len(pa.OnActivate(100)) > 0 {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.045 || rate > 0.055 {
		t.Fatalf("PARA refresh rate = %v, want ≈0.05", rate)
	}
	if pa.PreventiveRefreshes() != uint64(hits) {
		t.Fatal("refresh counter mismatch")
	}
}

func TestPARARefreshesNeighbors(t *testing.T) {
	pa := NewPARA(1.0, 3)
	for i := 0; i < 100; i++ {
		out := pa.OnActivate(50)
		if len(out) != 1 || (out[0] != 49 && out[0] != 51) {
			t.Fatalf("PARA target = %v", out)
		}
	}
}

func TestTRRTracksRecentDistinctRows(t *testing.T) {
	trr := NewTRR(4)
	for _, r := range []int{1, 2, 3, 4, 5, 6} {
		trr.OnActivate(r)
	}
	got := trr.Tracked()
	want := []int{3, 4, 5, 6}
	if len(got) != 4 {
		t.Fatalf("tracked = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tracked = %v, want %v", got, want)
		}
	}
}

// TestTRRDummyRowBypass is the §6.2 attack mechanism: activating enough
// dummy rows after the real aggressors evicts them from the sampler, so
// the REF-time preventive refreshes miss the real victims.
func TestTRRDummyRowBypass(t *testing.T) {
	trr := NewTRR(4)
	trr.OnActivate(1000) // real aggressor
	trr.OnActivate(1002) // real aggressor
	for d := 0; d < 16; d++ {
		trr.OnActivate(2000 + d*10) // dummies ≥100 rows away
	}
	for _, v := range trr.OnRefresh() {
		if v >= 998 && v <= 1004 {
			t.Fatalf("TRR refreshed real victim %d despite dummy flood", v)
		}
	}
}

func TestTRRCatchesUndisguisedAggressor(t *testing.T) {
	trr := NewTRR(4)
	trr.OnActivate(1000)
	trr.OnActivate(1002)
	victims := trr.OnRefresh()
	found := false
	for _, v := range victims {
		if v == 1001 {
			found = true
		}
	}
	if !found {
		t.Fatal("TRR missed the victim of an undisguised aggressor pair")
	}
	if len(trr.Tracked()) != 0 {
		t.Fatal("REF should clear the tracker")
	}
}

func TestAdaptMatchesTable3(t *testing.T) {
	// Table 3: T_RH = 1000; tmro 36→1000, 66→809, 96→724, 186→619,
	// 336→555, 636→419.
	want := map[dram.TimePS]int{
		36 * dram.Nanosecond:  1000,
		66 * dram.Nanosecond:  809,
		96 * dram.Nanosecond:  724,
		186 * dram.Nanosecond: 619,
		336 * dram.Nanosecond: 555,
		636 * dram.Nanosecond: 419,
	}
	for tmro, wantT := range want {
		cfg, err := Adapt(1000, SamsungBDieCurve, tmro)
		if err != nil {
			t.Fatalf("tmro %s: %v", dram.FormatTime(tmro), err)
		}
		if cfg.TPrimeRH != wantT {
			t.Errorf("tmro %s: T' = %d, want %d", dram.FormatTime(tmro), cfg.TPrimeRH, wantT)
		}
	}
}

func TestAdaptRejectsOutOfRange(t *testing.T) {
	if _, err := Adapt(1000, SamsungBDieCurve, 10*dram.Nanosecond); err == nil {
		t.Error("below-range tmro should fail")
	}
	if _, err := Adapt(1000, SamsungBDieCurve, dram.Millisecond); err == nil {
		t.Error("beyond-range tmro should fail")
	}
	if _, err := Adapt(0, SamsungBDieCurve, 96*dram.Nanosecond); err == nil {
		t.Error("zero T_RH should fail")
	}
	if _, err := Adapt(1000, nil, 96*dram.Nanosecond); err == nil {
		t.Error("empty curve should fail")
	}
}

func TestGrapheneRPAndPARARPDerivation(t *testing.T) {
	cfg, err := Adapt(1000, SamsungBDieCurve, 636*dram.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	g := GrapheneRP(cfg, 64)
	if g.Threshold != 139 { // Table 3: T = 139 at tmro 636 ns
		t.Errorf("Graphene-RP T = %d, want 139", g.Threshold)
	}
	pa := PARARP(cfg, 1)
	if pa.P < 0.075 || pa.P > 0.085 { // Table 3: p = 0.079
		t.Errorf("PARA-RP p = %v, want ≈0.079", pa.P)
	}
}
