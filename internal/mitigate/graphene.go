package mitigate

import "fmt"

// Graphene is the Misra-Gries-based RowHammer mitigation of Park et al.
// [109]: a per-bank table of (row, counter) entries plus a spillover
// counter. When a row's estimated count reaches the table threshold T, its
// neighbors are preventively refreshed and the counter rebases on the
// spillover value. The Misra-Gries guarantee bounds undercounting by
// (total activations)/(table size + 1), which sizes T = T_RH/(4·...) in
// the original paper; here T is supplied by the configuration (Table 3).
type Graphene struct {
	Threshold int // T: estimated count triggering a preventive refresh
	TableSize int

	counts    map[int]int
	spillover int
	refreshes uint64
}

// NewGraphene builds a tracker with the given trigger threshold and table
// size. It panics on non-positive parameters (configuration bug).
func NewGraphene(threshold, tableSize int) *Graphene {
	if threshold <= 0 || tableSize <= 0 {
		panic(fmt.Sprintf("mitigate: bad Graphene config T=%d size=%d", threshold, tableSize))
	}
	return &Graphene{
		Threshold: threshold,
		TableSize: tableSize,
		counts:    make(map[int]int, tableSize),
	}
}

// Name implements Mitigation.
func (g *Graphene) Name() string { return "Graphene" }

// OnActivate implements Mitigation with the Misra-Gries update rule.
func (g *Graphene) OnActivate(row int) []int {
	if c, ok := g.counts[row]; ok {
		c++
		g.counts[row] = c
		if c >= g.Threshold {
			// Preventive refresh; rebase so continued hammering must earn
			// another full threshold's worth of activations.
			g.counts[row] = g.spillover
			g.refreshes++
			return victimsOf(row)
		}
		return nil
	}
	if len(g.counts) < g.TableSize {
		g.counts[row] = g.spillover + 1
		if g.counts[row] >= g.Threshold {
			g.counts[row] = g.spillover
			g.refreshes++
			return victimsOf(row)
		}
		return nil
	}
	// Table full: Misra-Gries decrement — increment the spillover and evict
	// any entry that falls to it.
	g.spillover++
	for r, c := range g.counts {
		if c <= g.spillover {
			delete(g.counts, r)
		}
	}
	return nil
}

// OnRefreshWindow implements Mitigation: counters reset every tREFW.
func (g *Graphene) OnRefreshWindow() {
	clear(g.counts)
	g.spillover = 0
}

// PreventiveRefreshes returns the cumulative preventive refresh count.
func (g *Graphene) PreventiveRefreshes() uint64 { return g.refreshes }

// EstimatedCount returns the Misra-Gries estimate for a row (for tests of
// the undercount bound).
func (g *Graphene) EstimatedCount(row int) int {
	if c, ok := g.counts[row]; ok {
		return c
	}
	return g.spillover
}
