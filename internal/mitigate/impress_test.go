package mitigate

import (
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/stats"
)

// TestImPressWeightsOpenTime pins the implicit-press core: a dwell of k
// quanta consumes k+1 activations' worth of the tracking threshold, so
// long-open activations trigger a preventive refresh far sooner than a
// plain activation counter would.
func TestImPressWeightsOpenTime(t *testing.T) {
	const quantum = 250 * dram.Nanosecond
	im := NewImPress(100, 8, quantum)
	// 9 dwells of 11 quanta each: weighted 9 × 12 = 108 ≥ 100.
	var refreshed []int
	for i := 0; i < 9; i++ {
		if len(refreshed) > 0 {
			t.Fatalf("triggered after %d dwells", i)
		}
		refreshed = im.OnActivateTimed(42, 11*quantum)
	}
	if len(refreshed) == 0 {
		t.Fatal("ImPress did not trigger on weighted dwells")
	}
	want := map[int]bool{40: true, 41: true, 43: true, 44: true}
	for _, v := range refreshed {
		if !want[v] {
			t.Errorf("unexpected preventive-refresh target %d", v)
		}
	}
	if im.PreventiveRefreshes() != 1 {
		t.Fatalf("refresh count = %d", im.PreventiveRefreshes())
	}

	// A plain Graphene at the same threshold sees the same 9 activations
	// as weight 9 and stays silent — the gap ImPress exists to close.
	g := NewGraphene(100, 8)
	for i := 0; i < 9; i++ {
		if out := g.OnActivate(42); len(out) != 0 {
			t.Fatal("Graphene should not trigger on 9 unweighted activations")
		}
	}
}

// TestImPressMinimumWeight: tRAS-length (and untimed) activations cost
// exactly 1, so on a pure RowHammer stream ImPress behaves like the
// unweighted tracker.
func TestImPressMinimumWeight(t *testing.T) {
	im := NewImPress(50, 8, DefaultImPressQuantum)
	g := NewGraphene(50, 8)
	for i := 0; i < 49; i++ {
		if out := im.OnActivateTimed(7, 36*dram.Nanosecond); len(out) != 0 {
			t.Fatalf("ImPress triggered at %d short activations", i+1)
		}
		g.OnActivate(7)
	}
	ri, rg := im.OnActivateTimed(7, 36*dram.Nanosecond), g.OnActivate(7)
	if len(ri) == 0 || len(rg) == 0 {
		t.Fatal("both trackers should trigger at the 50th short activation")
	}
	if im.EstimatedCount(7) != g.EstimatedCount(7) {
		t.Fatalf("post-trigger estimates differ: impress=%d graphene=%d",
			im.EstimatedCount(7), g.EstimatedCount(7))
	}
}

// TestImPressWindowReset: OnRefreshWindow clears all tracking state.
func TestImPressWindowReset(t *testing.T) {
	im := NewImPress(100, 4, DefaultImPressQuantum)
	im.OnActivateTimed(3, 20*dram.Microsecond)
	if im.EstimatedCount(3) == 0 {
		t.Fatal("expected nonzero estimate before reset")
	}
	im.OnRefreshWindow()
	if im.EstimatedCount(3) != 0 {
		t.Fatal("estimate survived the refresh window")
	}
}

// TestImPressWeightedMisraGriesBound: the weighted estimate never
// deviates from the true weighted count by more than (total weighted
// activations)/(tableSize+1) — the weighted analogue of the Graphene
// bound, which is what keeps long dwells from hiding in the spillover.
func TestImPressWeightedMisraGriesBound(t *testing.T) {
	const quantum = 250 * dram.Nanosecond
	f := func(seed uint64) bool {
		const tableSize = 4
		im := NewImPress(1<<30, tableSize, quantum) // huge threshold: count only
		rng := stats.NewRNG(seed)
		truth := make(map[int]int)
		total := 0
		for i := 0; i < 2000; i++ {
			row := rng.Intn(12)
			quanta := rng.Intn(8)
			w := 1 + quanta
			truth[row] += w
			total += w
			im.OnActivateTimed(row, dram.TimePS(quanta)*quantum)
		}
		bound := total / (tableSize + 1)
		for row, actual := range truth {
			est := im.EstimatedCount(row)
			if actual-est > bound || est-actual > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestObserveRouting: Observe prefers the timed hook when present.
func TestObserveRouting(t *testing.T) {
	im := NewImPress(10, 4, 250*dram.Nanosecond)
	// One 3-quantum dwell (weight 4) + untimed path on a plain tracker.
	Observe(im, 5, 750*dram.Nanosecond)
	if got := im.EstimatedCount(5); got != 4 {
		t.Fatalf("timed observation weighted %d, want 4", got)
	}
	g := NewGraphene(10, 4)
	Observe(g, 5, 750*dram.Nanosecond) // no timed hook: weight 1
	if got := g.EstimatedCount(5); got != 1 {
		t.Fatalf("untimed observation counted %d, want 1", got)
	}
}
