package mitigate

import (
	"fmt"
	"sort"

	"repro/internal/dram"
)

// ReductionPoint is one point of the device-characterized ACmin-reduction
// curve: at row-open times up to TMro, ACmin is at most Factor of the
// RowHammer baseline (Factor ≤ 1).
type ReductionPoint struct {
	TMro   dram.TimePS
	Factor float64
}

// SamsungBDieCurve is the reduction curve of the Mfr. S 8Gb B-die the
// paper uses to configure Graphene-RP and PARA-RP (Table 3): T'_RH/T_RH at
// each evaluated tmro.
var SamsungBDieCurve = []ReductionPoint{
	{36 * dram.Nanosecond, 1.000},
	{66 * dram.Nanosecond, 0.809},
	{96 * dram.Nanosecond, 0.724},
	{186 * dram.Nanosecond, 0.619},
	{336 * dram.Nanosecond, 0.555},
	{636 * dram.Nanosecond, 0.419},
}

// AdaptConfig is the output of the paper's adaptation methodology (§7.4):
// run the original mitigation with a reduced threshold T' and have the
// memory controller force rows closed after TMro.
type AdaptConfig struct {
	TMro      dram.TimePS
	TPrimeRH  int
	BaseTRH   int
	Reduction float64
}

// Adapt applies the methodology: given the baseline RowHammer threshold
// T_RH, the characterized reduction curve, and the chosen maximum row-open
// time, compute T' = (1 − Y%)·T_RH where Y is the worst-case ACmin
// reduction at tmro. The curve must cover tmro.
func Adapt(baseTRH int, curve []ReductionPoint, tmro dram.TimePS) (AdaptConfig, error) {
	if baseTRH <= 0 {
		return AdaptConfig{}, fmt.Errorf("mitigate: baseline T_RH must be positive")
	}
	if len(curve) == 0 {
		return AdaptConfig{}, fmt.Errorf("mitigate: empty reduction curve")
	}
	sorted := append([]ReductionPoint(nil), curve...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].TMro < sorted[j].TMro })
	if tmro < sorted[0].TMro {
		return AdaptConfig{}, fmt.Errorf("mitigate: tmro %s below characterized range", dram.FormatTime(tmro))
	}
	factor := 0.0
	found := false
	for _, p := range sorted {
		if p.TMro <= tmro {
			factor = p.Factor
			found = true
		}
	}
	if !found || tmro > sorted[len(sorted)-1].TMro {
		return AdaptConfig{}, fmt.Errorf("mitigate: tmro %s beyond characterized range (max %s)",
			dram.FormatTime(tmro), dram.FormatTime(sorted[len(sorted)-1].TMro))
	}
	tPrime := int(float64(baseTRH) * factor)
	if tPrime < 1 {
		tPrime = 1
	}
	return AdaptConfig{TMro: tmro, TPrimeRH: tPrime, BaseTRH: baseTRH, Reduction: factor}, nil
}

// GrapheneRP builds the adapted Graphene of Table 3: the tracker threshold
// T follows the original sizing rule (T = T'/3, as the paper's Table 3
// shows 1000→333, 809→269, …) against the reduced threshold.
func GrapheneRP(cfg AdaptConfig, tableSize int) *Graphene {
	return NewGraphene(cfg.TPrimeRH/3, tableSize)
}

// PARARP builds the adapted PARA of Table 3: the refresh probability p is
// re-derived from T' using the original PARA sizing so the protection
// guarantee holds at the reduced threshold (p grows as T' shrinks:
// Table 3 shows 0.034 at T'=1000 up to 0.079 at T'=419).
func PARARP(cfg AdaptConfig, seed uint64) *PARA {
	p := 34.0 / float64(cfg.TPrimeRH)
	if p > 1 {
		p = 1
	}
	return NewPARA(p, seed)
}
