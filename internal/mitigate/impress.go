package mitigate

import (
	"fmt"

	"repro/internal/dram"
)

// ImPress is an implicit row-press mitigation in the style of Qureshi et
// al. (arXiv:2407.16006): instead of deploying a separate RowPress
// defense, an existing activation-counting tracker charges each
// activation a weight proportional to how long it kept the row open, so a
// long press dwell consumes as much tracking budget as the many short
// activations it is disturbance-equivalent to. The tracker itself is a
// weighted Misra-Gries table (the same structure as Graphene); when a
// row's weighted estimate reaches Threshold its neighbors are
// preventively refreshed and the counter rebases on the spillover value.
//
// The weight of an activation open for t is 1 + floor(t/Quantum): a
// minimum-length (tRAS) activation costs 1, like any RowHammer tracker,
// and every further Quantum of open time costs one more equivalent
// activation. Quantum is the implicit exchange rate between open-time and
// activation-count damage; DefaultImPressQuantum calibrates it against
// this reproduction's disturbance model.
type ImPress struct {
	Threshold int // weighted estimate triggering a preventive refresh
	TableSize int
	Quantum   dram.TimePS // open time charged as one extra activation

	counts    map[int]int
	spillover int
	refreshes uint64
}

// DefaultImPressQuantum is the default open-time-to-activation exchange
// rate: the calibrated disturbance model puts one reference activation's
// RowHammer damage at roughly 250 ns of effective press time (per-row
// minimum press threshold ≈ 47 ms vs minimum hammer threshold ≈ 2×10⁵
// activations), so a 7.8 µs dwell is charged ≈ 32 activations.
const DefaultImPressQuantum = 250 * dram.Nanosecond

// NewImPress builds an ImPress tracker. It panics on non-positive
// parameters (configuration bug), mirroring NewGraphene.
func NewImPress(threshold, tableSize int, quantum dram.TimePS) *ImPress {
	if threshold <= 0 || tableSize <= 0 || quantum <= 0 {
		panic(fmt.Sprintf("mitigate: bad ImPress config T=%d size=%d quantum=%d",
			threshold, tableSize, quantum))
	}
	return &ImPress{
		Threshold: threshold,
		TableSize: tableSize,
		Quantum:   quantum,
		counts:    make(map[int]int, tableSize),
	}
}

// Name implements Mitigation.
func (im *ImPress) Name() string { return "ImPress" }

// weight converts an activation's open time into equivalent activations.
func (im *ImPress) weight(openFor dram.TimePS) int {
	if openFor <= 0 {
		return 1
	}
	return 1 + int(openFor/im.Quantum)
}

// OnActivate implements Mitigation: with no open-time information the
// activation is charged the minimum weight, degrading ImPress to a plain
// Graphene-style tracker.
func (im *ImPress) OnActivate(row int) []int { return im.OnActivateTimed(row, 0) }

// OnActivateTimed implements TimedMitigation with the weighted
// Misra-Gries update rule.
func (im *ImPress) OnActivateTimed(row int, openFor dram.TimePS) []int {
	w := im.weight(openFor)
	if c, ok := im.counts[row]; ok {
		c += w
		im.counts[row] = c
		if c >= im.Threshold {
			im.counts[row] = im.spillover
			im.refreshes++
			return victimsOf(row)
		}
		return nil
	}
	if len(im.counts) < im.TableSize {
		im.counts[row] = im.spillover + w
		if im.counts[row] >= im.Threshold {
			im.counts[row] = im.spillover
			im.refreshes++
			return victimsOf(row)
		}
		return nil
	}
	// Table full: weighted Misra-Gries decrement — raise the spillover by
	// the unmatched activation's full weight and evict entries that fall
	// to it. This keeps the undercount bound proportional to total
	// weighted activations, so long dwells cannot hide in the spillover.
	im.spillover += w
	for r, c := range im.counts {
		if c <= im.spillover {
			delete(im.counts, r)
		}
	}
	return nil
}

// OnRefreshWindow implements Mitigation: counters reset every tREFW.
func (im *ImPress) OnRefreshWindow() {
	clear(im.counts)
	im.spillover = 0
}

// PreventiveRefreshes returns the cumulative preventive refresh count.
func (im *ImPress) PreventiveRefreshes() uint64 { return im.refreshes }

// EstimatedCount returns the weighted Misra-Gries estimate for a row.
func (im *ImPress) EstimatedCount(row int) int {
	if c, ok := im.counts[row]; ok {
		return c
	}
	return im.spillover
}
