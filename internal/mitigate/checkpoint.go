package mitigate

// Checkpointer is implemented by mitigations whose internal state can be
// captured and restored. Replay-free searches (the scenario min-exposure
// bisection) checkpoint the mitigation together with the DRAM module so a
// probe can roll the whole play back to the bracket's lower bound instead
// of replaying the pattern from scratch; a mechanism without the
// interface forces the caller back onto the replay path.
//
// CheckpointState must return a self-contained snapshot: mutating the
// mitigation afterwards must not change the snapshot, and RestoreState
// must accept any value the same instance previously returned.
type Checkpointer interface {
	CheckpointState() any
	RestoreState(st any)
}

// CheckpointState implements Checkpointer. None carries no state.
func (None) CheckpointState() any { return nil }

// RestoreState implements Checkpointer.
func (None) RestoreState(any) {}

type paraState struct {
	rng       uint64
	refreshes uint64
}

// CheckpointState implements Checkpointer: PARA's only state is its RNG
// position (and the refresh counter).
func (pa *PARA) CheckpointState() any {
	return paraState{rng: pa.rng.State(), refreshes: pa.refreshes}
}

// RestoreState implements Checkpointer.
func (pa *PARA) RestoreState(st any) {
	s := st.(paraState)
	pa.rng.SetState(s.rng)
	pa.refreshes = s.refreshes
}

// tableState snapshots a Misra-Gries tracker (Graphene, ImPress).
type tableState struct {
	counts    map[int]int
	spillover int
	refreshes uint64
}

func snapshotTable(counts map[int]int, spillover int, refreshes uint64) tableState {
	// Audited for the maprange contract: a map-to-map copy is
	// order-insensitive — the result is the same set of key/value pairs
	// whatever order the source is walked in, and nothing here observes
	// the walk itself.
	cp := make(map[int]int, len(counts))
	for r, c := range counts {
		cp[r] = c
	}
	return tableState{counts: cp, spillover: spillover, refreshes: refreshes}
}

func (s tableState) restore(counts map[int]int) (map[int]int, int, uint64) {
	clear(counts)
	for r, c := range s.counts {
		counts[r] = c
	}
	return counts, s.spillover, s.refreshes
}

// CheckpointState implements Checkpointer.
func (g *Graphene) CheckpointState() any {
	return snapshotTable(g.counts, g.spillover, g.refreshes)
}

// RestoreState implements Checkpointer.
func (g *Graphene) RestoreState(st any) {
	g.counts, g.spillover, g.refreshes = st.(tableState).restore(g.counts)
}

// CheckpointState implements Checkpointer.
func (im *ImPress) CheckpointState() any {
	return snapshotTable(im.counts, im.spillover, im.refreshes)
}

// RestoreState implements Checkpointer.
func (im *ImPress) RestoreState(st any) {
	im.counts, im.spillover, im.refreshes = st.(tableState).restore(im.counts)
}

type trrState struct {
	recent []int
}

// CheckpointState implements Checkpointer.
func (t *TRR) CheckpointState() any {
	return trrState{recent: append([]int(nil), t.recent...)}
}

// RestoreState implements Checkpointer.
func (t *TRR) RestoreState(st any) {
	t.recent = append(t.recent[:0], st.(trrState).recent...)
}
