package mitigate

import (
	"fmt"

	"repro/internal/stats"
)

// PARA is the probabilistic RowHammer mitigation of Kim et al. [68]: on
// every activation, with probability p, preventively refresh one adjacent
// row. Stateless (no tracking tables), so its protection-vs-overhead
// trade-off is set entirely by p (Table 3 row "PARA-RP p").
type PARA struct {
	P   float64
	rng *stats.RNG

	refreshes uint64
}

// NewPARA builds a PARA instance with refresh probability p and a
// deterministic RNG seed.
func NewPARA(p float64, seed uint64) *PARA {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("mitigate: bad PARA probability %v", p))
	}
	return &PARA{P: p, rng: stats.NewRNG(seed)}
}

// Name implements Mitigation.
func (pa *PARA) Name() string { return "PARA" }

// OnActivate implements Mitigation.
func (pa *PARA) OnActivate(row int) []int {
	if pa.rng.Float64() >= pa.P {
		return nil
	}
	pa.refreshes++
	if pa.rng.Float64() < 0.5 {
		return []int{row - 1}
	}
	return []int{row + 1}
}

// OnRefreshWindow implements Mitigation (PARA is stateless).
func (pa *PARA) OnRefreshWindow() {}

// PreventiveRefreshes returns the cumulative preventive refresh count.
func (pa *PARA) PreventiveRefreshes() uint64 { return pa.refreshes }
