package mitigate

// TRR models the in-DRAM target row refresh samplers DRAM vendors ship
// (§6.2): a small table of candidate aggressor rows maintained between
// REF commands; each REF preventively refreshes the neighbors of the
// tracked rows and clears the table. Real TRR implementations track only a
// few rows and favor the most recent distinct activations before the REF —
// exactly the weakness the U-TRR-style dummy-row patterns exploit: flood
// the sampler with dummies after the real aggressors so the aggressors are
// evicted by the time REF arrives.
type TRR struct {
	Entries int // tracked rows (typical: 2–4)

	recent []int // most recent distinct rows, newest last
}

// NewTRR builds a sampler with the given table size.
func NewTRR(entries int) *TRR {
	if entries <= 0 {
		panic("mitigate: TRR needs at least one entry")
	}
	return &TRR{Entries: entries}
}

// Name implements Mitigation.
func (t *TRR) Name() string { return "TRR" }

// OnActivate implements Mitigation: TRR never refreshes mid-window; it
// only updates its recency table.
func (t *TRR) OnActivate(row int) []int {
	for i, r := range t.recent {
		if r == row {
			t.recent = append(t.recent[:i], t.recent[i+1:]...)
			break
		}
	}
	t.recent = append(t.recent, row)
	if len(t.recent) > t.Entries {
		t.recent = t.recent[len(t.recent)-t.Entries:]
	}
	return nil
}

// OnRefresh is TRR's REF hook: it returns the victims of every tracked
// row and clears the table. (This is distinct from OnRefreshWindow, which
// fires once per tREFW.)
func (t *TRR) OnRefresh() []int {
	var out []int
	for _, r := range t.recent {
		out = append(out, victimsOf(r)...)
	}
	t.recent = t.recent[:0]
	return out
}

// Tracked returns a copy of the currently tracked rows (tests).
func (t *TRR) Tracked() []int {
	return append([]int(nil), t.recent...)
}

// OnRefreshWindow implements Mitigation.
func (t *TRR) OnRefreshWindow() { t.recent = t.recent[:0] }
