package chipgen

import "repro/internal/disturb"

// dieAnchor is the compact calibration record for one die revision,
// transcribed from Table 5 of the paper (50 °C columns; thresholds in the
// model's native units — activations for hammer, seconds of effective
// on-time for press).
type dieAnchor struct {
	mfr       Manufacturer
	densityGb int
	rev       string

	hammerAvgMin    float64 // mean per-row ACmin at tAggON = 36 ns
	hammerGlobalMin float64 // min across characterized rows
	hammerLambda    float64 // vulnerable cells per 8 KiB row
	hammerTemp30    float64 // hammer damage multiplier per +30 °C

	pressAvgK    float64 // mean per-row min press threshold (s) ≈ avg tAggONmin @AC=1
	pressMinK    float64 // global min press threshold (s)
	pressLambda  float64 // press-vulnerable cells per 8 KiB row
	pressTemp30  float64 // press damage multiplier per +30 °C (Obsv. 9/11)
	trueCellFrac float64 // Fig. 12 directionality

	pressCplCharged80 float64 // 80 °C charged-aggressor coupling (Fig. 19 heatmaps)
}

// dieAnchors: twelve die revisions of Table 1. Newer revisions (later
// letters) have denser, weaker cells — RowPress worsens with technology
// scaling (Obsv. 4).
var dieAnchors = []dieAnchor{
	// Mfr. S (Samsung)
	{mfr: MfrS, densityGb: 8, rev: "B", hammerAvgMin: 270e3, hammerGlobalMin: 38e3, hammerLambda: 48, hammerTemp30: 0.95,
		pressAvgK: 48e-3, pressMinK: 12.4e-3, pressLambda: 15, pressTemp30: 1.9, trueCellFrac: 1.0, pressCplCharged80: 0.55},
	{mfr: MfrS, densityGb: 8, rev: "C", hammerAvgMin: 110e3, hammerGlobalMin: 23e3, hammerLambda: 52, hammerTemp30: 0.95,
		pressAvgK: 49e-3, pressMinK: 13e-3, pressLambda: 25, pressTemp30: 1.7, trueCellFrac: 1.0, pressCplCharged80: 0.55},
	{mfr: MfrS, densityGb: 8, rev: "D", hammerAvgMin: 42e3, hammerGlobalMin: 12e3, hammerLambda: 60, hammerTemp30: 0.95,
		pressAvgK: 39e-3, pressMinK: 9.2e-3, pressLambda: 60, pressTemp30: 1.75, trueCellFrac: 1.0, pressCplCharged80: 0.55},
	{mfr: MfrS, densityGb: 4, rev: "F", hammerAvgMin: 122e3, hammerGlobalMin: 20e3, hammerLambda: 50, hammerTemp30: 0.95,
		pressAvgK: 45e-3, pressMinK: 13.5e-3, pressLambda: 30, pressTemp30: 2.7, trueCellFrac: 1.0, pressCplCharged80: 0.55},

	// Mfr. H (SK Hynix)
	{mfr: MfrH, densityGb: 4, rev: "A", hammerAvgMin: 382e3, hammerGlobalMin: 83e3, hammerLambda: 40, hammerTemp30: 1.05,
		// No press bitflips at 50 °C within the 60 ms window (Obsv. 3
		// footnote 8): thresholds sit beyond the window and only the 80 °C
		// temperature factor brings a sliver of cells in reach (Obsv. 10).
		pressAvgK: 144e-3, pressMinK: 80e-3, pressLambda: 10, pressTemp30: 2.8, trueCellFrac: 1.0, pressCplCharged80: 0.30},
	{mfr: MfrH, densityGb: 4, rev: "X", hammerAvgMin: 119e3, hammerGlobalMin: 20e3, hammerLambda: 45, hammerTemp30: 1.05,
		pressAvgK: 53.5e-3, pressMinK: 21.8e-3, pressLambda: 35, pressTemp30: 3.8, trueCellFrac: 1.0, pressCplCharged80: 0.30},
	{mfr: MfrH, densityGb: 16, rev: "A", hammerAvgMin: 117e3, hammerGlobalMin: 21e3, hammerLambda: 45, hammerTemp30: 1.05,
		pressAvgK: 50e-3, pressMinK: 14.3e-3, pressLambda: 40, pressTemp30: 4.0, trueCellFrac: 1.0, pressCplCharged80: 0.30},
	{mfr: MfrH, densityGb: 16, rev: "C", hammerAvgMin: 77e3, hammerGlobalMin: 14e3, hammerLambda: 48, hammerTemp30: 1.05,
		pressAvgK: 51.6e-3, pressMinK: 9.8e-3, pressLambda: 45, pressTemp30: 2.3, trueCellFrac: 1.0, pressCplCharged80: 0.30},

	// Mfr. M (Micron)
	{mfr: MfrM, densityGb: 8, rev: "B", hammerAvgMin: 386e3, hammerGlobalMin: 87e3, hammerLambda: 40, hammerTemp30: 1.05,
		// Immune to RowPress at both temperatures (Table 5 "No Bitflip").
		pressAvgK: 20, pressMinK: 8, pressLambda: 5, pressTemp30: 1.5, trueCellFrac: 0.75, pressCplCharged80: 0.60},
	{mfr: MfrM, densityGb: 16, rev: "B", hammerAvgMin: 116e3, hammerGlobalMin: 24e3, hammerLambda: 42, hammerTemp30: 1.05,
		pressAvgK: 56.7e-3, pressMinK: 35.2e-3, pressLambda: 20, pressTemp30: 1.25, trueCellFrac: 0.75, pressCplCharged80: 0.60},
	{mfr: MfrM, densityGb: 16, rev: "E", hammerAvgMin: 39e3, hammerGlobalMin: 10.5e3, hammerLambda: 55, hammerTemp30: 1.05,
		// Anti-cell-dominant layout: press flips read as 0→1 (Obsv. 8).
		pressAvgK: 46.7e-3, pressMinK: 9e-3, pressLambda: 50, pressTemp30: 2.0, trueCellFrac: 0.25, pressCplCharged80: 0.60},
	{mfr: MfrM, densityGb: 16, rev: "F", hammerAvgMin: 31e3, hammerGlobalMin: 8.7e3, hammerLambda: 55, hammerTemp30: 1.05,
		pressAvgK: 50.9e-3, pressMinK: 17.9e-3, pressLambda: 45, pressTemp30: 2.7, trueCellFrac: 0.75, pressCplCharged80: 0.60},
}

// buildParams expands an anchor into the full model parameter set.
func (a dieAnchor) buildParams() disturb.Params {
	p := disturb.DefaultParams()
	p.HammerTempFactor30 = a.hammerTemp30
	p.HammerCellsPerRow = a.hammerLambda
	p.HammerLogMedian, p.HammerLogSigma = calibrateLogNormal(a.hammerAvgMin, a.hammerGlobalMin, a.hammerLambda)
	p.PressTempFactor30 = a.pressTemp30
	p.PressCellsPerRow = a.pressLambda
	p.PressLogMedian, p.PressLogSigma = calibrateLogNormal(a.pressAvgK, a.pressMinK, a.pressLambda)
	p.PressCplCharged80 = a.pressCplCharged80
	p.TrueCellFraction = a.trueCellFrac
	return p
}

// DieRevisions returns the twelve calibrated die revisions of Table 1.
func DieRevisions() []DieRevision {
	out := make([]DieRevision, 0, len(dieAnchors))
	for _, a := range dieAnchors {
		out = append(out, DieRevision{
			Mfr:       a.mfr,
			DensityGb: a.densityGb,
			Rev:       a.rev,
			Params:    a.buildParams(),
		})
	}
	return out
}

// FindDie returns the die revision for (mfr, densityGb, rev); ok reports
// whether it exists.
func FindDie(mfr Manufacturer, densityGb int, rev string) (DieRevision, bool) {
	for _, d := range DieRevisions() {
		if d.Mfr == mfr && d.DensityGb == densityGb && d.Rev == rev {
			return d, true
		}
	}
	return DieRevision{}, false
}

// moduleRecord mirrors one row of Table 5.
type moduleRecord struct {
	id, dimmPart, dramPart string
	mfr                    Manufacturer
	densityGb              int
	rev, org, dateCode     string
}

var moduleRecords = []moduleRecord{
	{"S0", "M393A1K43BB1-CTD", "K4A8G085WB-BCTD", MfrS, 8, "B", "x8", "20-53"},
	{"S1", "M393A1K43BB1-CTD", "K4A8G085WB-BCTD", MfrS, 8, "B", "x8", "20-53"},
	{"S2", "M378A2K43CB1-CTD", "K4A8G085WC-BCTD", MfrS, 8, "C", "x8", "N/A"},
	{"S3", "M378A1K43DB2-CTD", "K4A8G085WD-BCTD", MfrS, 8, "D", "x8", "21-10"},
	{"S4", "M378A1K43DB2-CTD", "K4A8G085WD-BCTD", MfrS, 8, "D", "x8", "21-10"},
	{"S5", "M378A1K43DB2-CTD", "K4A8G085WD-BCTD", MfrS, 8, "D", "x8", "21-10"},
	{"S6", "F4-2400C17S-8GNT", "K4A4G085WF-BCTD", MfrS, 4, "F", "x8", "Mar-21"},
	{"S7", "F4-2400C17S-8GNT", "K4A4G085WF-BCTD", MfrS, 4, "F", "x8", "Mar-21"},
	{"H0", "HMAA4GU6AJR8N-XN", "H5ANAG8NAJR-XN", MfrH, 16, "A", "x8", "20-51"},
	{"H1", "HMAA4GU6AJR8N-XN", "H5ANAG8NAJR-XN", MfrH, 16, "A", "x8", "20-51"},
	{"H2", "HMAA4GU7CJR8N-XN", "H5ANAG8NCJR-XN", MfrH, 16, "C", "x8", "21-36"},
	{"H3", "HMAA4GU7CJR8N-XN", "H5ANAG8NCJR-XN", MfrH, 16, "C", "x8", "21-36"},
	{"H4", "KVR24R17S8/4", "H5AN4G8NAFR-UHC", MfrH, 4, "A", "x8", "19-46"},
	{"H5", "CMV4GX4M1A2133C15", "N/A", MfrH, 4, "X", "x8", "N/A"},
	{"M0", "MTA18ASF2G72PZ-2G3B1", "MT40A2G4WE-083E:B", MfrM, 8, "B", "x4", "N/A"},
	{"M1", "MTA4ATF1G64HZ-3G2B2", "MT40A1G16RC-062E:B", MfrM, 16, "B", "x16", "21-26"},
	{"M2", "MTA4ATF1G64HZ-3G2B2", "MT40A1G16RC-062E:B", MfrM, 16, "B", "x16", "21-26"},
	{"M3", "MTA36ASF8G72PZ-2G9E1", "MT40A4G4JC-062E:E", MfrM, 16, "E", "x4", "20-14"},
	{"M4", "MTA4ATF1G64HZ-3G2E1", "MT40A1G16KD-062E:E", MfrM, 16, "E", "x16", "20-46"},
	{"M5", "MTA4ATF1G64HZ-3G2E1", "MT40A1G16KD-062E:E", MfrM, 16, "E", "x16", "20-46"},
	{"M6", "MTA4ATF1G64HZ-3G2F1", "MT40A1G16TB-062E:F", MfrM, 16, "F", "x16", "21-50"},
}

// Catalog returns the 21 module specs of Table 5, each bound to its die
// revision's calibrated parameters and a module-unique seed.
func Catalog() []ModuleSpec {
	out := make([]ModuleSpec, 0, len(moduleRecords))
	for _, r := range moduleRecords {
		die, ok := FindDie(r.mfr, r.densityGb, r.rev)
		if !ok {
			panic("chipgen: module references unknown die " + r.id)
		}
		out = append(out, ModuleSpec{
			ID:       r.id,
			DIMMPart: r.dimmPart,
			DRAMPart: r.dramPart,
			Die:      die,
			Org:      r.org,
			DateCode: r.dateCode,
		})
	}
	return out
}

// ByID returns the module spec with the given Table 5 id.
func ByID(id string) (ModuleSpec, bool) {
	for _, s := range Catalog() {
		if s.ID == id {
			return s, true
		}
	}
	return ModuleSpec{}, false
}

// Representative returns one module per die revision (the first in catalog
// order), the set most figure sweeps iterate over.
func Representative() []ModuleSpec {
	seen := make(map[string]bool)
	var out []ModuleSpec
	for _, s := range Catalog() {
		key := string(s.Die.Mfr) + s.Die.Name()
		if !seen[key] {
			seen[key] = true
			out = append(out, s)
		}
	}
	return out
}
