package chipgen

import (
	"math"
	"testing"

	"repro/internal/dram"
)

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) != 21 {
		t.Fatalf("catalog has %d modules, want 21 (Table 5)", len(cat))
	}
	ids := make(map[string]bool)
	perMfr := map[Manufacturer]int{}
	for _, s := range cat {
		if ids[s.ID] {
			t.Errorf("duplicate module id %s", s.ID)
		}
		ids[s.ID] = true
		perMfr[s.Die.Mfr]++
	}
	if perMfr[MfrS] != 8 || perMfr[MfrH] != 6 || perMfr[MfrM] != 7 {
		t.Errorf("per-mfr module counts = %v, want S:8 H:6 M:7", perMfr)
	}
}

func TestDieRevisionCount(t *testing.T) {
	dies := DieRevisions()
	if len(dies) != 12 {
		t.Fatalf("%d die revisions, want 12 (Table 1)", len(dies))
	}
	for _, d := range dies {
		if err := d.Params.Validate(); err != nil {
			t.Errorf("die %s/%s params invalid: %v", d.Mfr, d.Name(), err)
		}
	}
}

func TestFindDie(t *testing.T) {
	d, ok := FindDie(MfrS, 8, "B")
	if !ok || d.Name() != "8Gb B-Die" {
		t.Fatalf("FindDie(S,8,B) = %+v, %v", d, ok)
	}
	if _, ok := FindDie(MfrS, 2, "Z"); ok {
		t.Fatal("nonexistent die found")
	}
}

func TestByID(t *testing.T) {
	s, ok := ByID("H4")
	if !ok || s.Die.Mfr != MfrH || s.Die.DensityGb != 4 {
		t.Fatalf("ByID(H4) = %+v, %v", s, ok)
	}
	if _, ok := ByID("Z9"); ok {
		t.Fatal("nonexistent module found")
	}
}

func TestRepresentativeCoversAllDies(t *testing.T) {
	reps := Representative()
	if len(reps) != 12 {
		t.Fatalf("%d representative modules, want 12", len(reps))
	}
}

func TestSeedsDiffer(t *testing.T) {
	seen := make(map[uint64]string)
	for _, s := range Catalog() {
		if prev, ok := seen[s.Seed()]; ok {
			t.Fatalf("modules %s and %s share a seed", prev, s.ID)
		}
		seen[s.Seed()] = s.ID
	}
}

func TestCalibrateLogNormalRoundTrip(t *testing.T) {
	// The calibrated distribution must place its 1/(lambda+1) quantile at
	// the average per-row minimum anchor.
	logMed, logSig := calibrateLogNormal(48e-3, 12.4e-3, 15)
	q := math.Exp(logMed + invPhi(1.0/16)*logSig)
	if math.Abs(q-48e-3)/48e-3 > 1e-9 {
		t.Fatalf("per-row-min quantile = %v, want 0.048", q)
	}
	qMin := math.Exp(logMed + invPhi(1.0/(3072*15))*logSig)
	if math.Abs(qMin-12.4e-3)/12.4e-3 > 1e-9 {
		t.Fatalf("global-min quantile = %v, want 0.0124", qMin)
	}
}

func TestCalibratePanicsOnBadAnchors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for min >= avg")
		}
	}()
	calibrateLogNormal(1, 2, 10)
}

func TestInvPhi(t *testing.T) {
	cases := map[float64]float64{
		0.5:    0,
		0.8413: 1.0,
		0.0228: -2.0,
	}
	for p, want := range cases {
		if got := invPhi(p); math.Abs(got-want) > 5e-3 {
			t.Errorf("invPhi(%v) = %v, want %v", p, got, want)
		}
	}
}

// TestModuleEndToEndHammer: hammering a calibrated weak die at RowHammer
// conditions far beyond its ACmin must flip victim bits; a press-immune die
// must not flip under long tAggON within the test window.
func TestModuleEndToEndHammer(t *testing.T) {
	geo := dram.Geometry{Banks: 1, RowsPerBank: 128, RowBytes: 1024}

	weak, _ := ByID("S3") // 8Gb D-die: avg hammer ACmin 42K
	mod, _ := weak.NewModule(geo, 50)
	for r := 40; r <= 46; r++ {
		if err := mod.InitRow(0, 0, r, 0x00); err != nil { // discharged: hammer-eligible
			t.Fatal(err)
		}
	}
	end, err := mod.HammerBatch(dram.Microsecond, dram.HammerSpec{
		Bank: 0, Rows: []int{43}, Count: 600000, OnTime: 36 * dram.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	flips := 0
	for _, r := range []int{42, 44} {
		data, _, err := mod.FetchRow(end+dram.Microsecond, 0, r)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range data {
			for i := 0; i < 8; i++ {
				if b&(1<<i) != 0 {
					flips++
				}
			}
		}
		end = mod.Now()
	}
	if flips == 0 {
		t.Error("600K hammer activations on an 8Gb D-die produced no flips")
	}
}

func TestPressImmuneDie(t *testing.T) {
	geo := dram.Geometry{Banks: 1, RowsPerBank: 128, RowBytes: 1024}
	immune, _ := ByID("M0") // 8Gb B-die from Mfr. M: no RowPress bitflips
	mod, _ := immune.NewModule(geo, 50)
	for r := 40; r <= 46; r++ {
		if err := mod.InitRow(0, 0, r, 0xFF); err != nil { // charged: press-eligible
			t.Fatal(err)
		}
	}
	// AC=1 with tAggON = 50 ms (within a refresh-window-scale budget).
	end, err := mod.HammerBatch(dram.Microsecond, dram.HammerSpec{
		Bank: 0, Rows: []int{43}, Count: 1, OnTime: 50 * dram.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{42, 44} {
		data, _, err := mod.FetchRow(end+dram.Microsecond, 0, r)
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range data {
			if b != 0xFF {
				t.Fatalf("press-immune die flipped row %d byte %d: %#x", r, i, b)
			}
		}
		end = mod.Now()
	}
}

// TestPressSingleActivation: on a vulnerable die a single 50 ms activation
// flips bits in some rows (Obsv. 2: ACmin = 1 in extreme cases).
func TestPressSingleActivation(t *testing.T) {
	geo := dram.Geometry{Banks: 1, RowsPerBank: 512, RowBytes: 1024}
	spec, _ := ByID("S3")
	mod, _ := spec.NewModule(geo, 50)
	flips := 0
	now := dram.TimePS(dram.Microsecond)
	for agg := 10; agg < 500; agg += 10 {
		for d := -1; d <= 1; d++ {
			if err := mod.InitRow(now, 0, agg+d, 0xFF); err != nil {
				t.Fatal(err)
			}
		}
		end, err := mod.HammerBatch(now, dram.HammerSpec{
			Bank: 0, Rows: []int{agg}, Count: 1, OnTime: 50 * dram.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range []int{agg - 1, agg + 1} {
			data, _, err := mod.FetchRow(end, 0, r)
			if err != nil {
				t.Fatal(err)
			}
			end = mod.Now() + dram.Microsecond
			for _, b := range data {
				if b != 0xFF {
					flips++
				}
			}
		}
		now = end + dram.Microsecond
	}
	if flips == 0 {
		t.Error("no rows with ACmin=1 at tAggON=50ms on a vulnerable die")
	}
}
