// Package chipgen materializes the paper's tested DRAM chip population
// (Table 1 / Table 5): three manufacturers, twelve die revisions, and
// twenty-one DIMMs, each with a disturbance-model parameter set calibrated
// so the simulated modules land near the paper's per-module RowHammer and
// RowPress summary numbers (ACmin at representative tAggON values,
// tAggONmin at AC = 1, at 50 °C and 80 °C).
package chipgen

import (
	"fmt"
	"math"

	"repro/internal/disturb"
	"repro/internal/dram"
	"repro/internal/stats"
)

// Manufacturer is one of the three major DRAM manufacturers the paper
// anonymizes as S, H, and M.
type Manufacturer string

// The three manufacturers.
const (
	MfrS Manufacturer = "S" // Samsung
	MfrH Manufacturer = "H" // SK Hynix
	MfrM Manufacturer = "M" // Micron
)

// AllManufacturers in the paper's presentation order.
var AllManufacturers = []Manufacturer{MfrS, MfrH, MfrM}

// DieRevision identifies one (manufacturer, density, revision) technology
// point and carries its calibrated disturbance parameters.
type DieRevision struct {
	Mfr       Manufacturer
	DensityGb int
	Rev       string // die revision letter; "X" = unknown (removed markings)
	Params    disturb.Params
}

// Name returns the paper's die label, e.g. "8Gb B-Die".
func (d DieRevision) Name() string {
	return fmt.Sprintf("%dGb %s-Die", d.DensityGb, d.Rev)
}

// ModuleSpec describes one tested DIMM of Table 5.
type ModuleSpec struct {
	ID       string // paper module id: S0..S7, H0..H5, M0..M6
	DIMMPart string
	DRAMPart string
	Die      DieRevision
	Org      string // chip organization (x4/x8/x16)
	DateCode string
}

// Seed returns the deterministic per-module seed (chip-to-chip variation).
func (s ModuleSpec) Seed() uint64 {
	h := uint64(0)
	for _, c := range s.ID {
		h = stats.Combine(h, uint64(c))
	}
	return h
}

// NewModule instantiates the simulated module at the given geometry and
// initial temperature, wired to its calibrated disturbance model.
func (s ModuleSpec) NewModule(geo dram.Geometry, tempC float64) (*dram.Module, *disturb.Model) {
	model := disturb.NewModel(s.Die.Params, geo, s.Seed())
	model.SetEvalTemperature(tempC)
	mod := dram.NewModule(geo, dram.DDR4(), tempC, model)
	return mod, model
}

// rowsCharacterized is the paper's tested-row count per module (the first,
// middle, and last 1024 rows of bank 1, §4.1). The global-minimum
// calibration quantile is anchored to it.
const rowsCharacterized = 3072

// calibrateLogNormal inverts two observed order statistics of a per-row
// minimum into log-normal parameters: avgMin is the mean per-row minimum
// threshold and globalMin the minimum across all characterized rows, for a
// population with lambda vulnerable cells per (reference-size) row.
func calibrateLogNormal(avgMin, globalMin, lambda float64) (logMedian, logSigma float64) {
	if avgMin <= 0 || globalMin <= 0 || globalMin >= avgMin {
		panic(fmt.Sprintf("chipgen: bad calibration anchors avg=%v min=%v", avgMin, globalMin))
	}
	// The per-row minimum of ~lambda draws sits near the 1/(lambda+1)
	// quantile; the global minimum across R rows near 1/(R*lambda).
	z1 := invPhi(1 / (lambda + 1))
	z2 := invPhi(1 / (rowsCharacterized * lambda))
	logSigma = math.Log(avgMin/globalMin) / (z1 - z2)
	logMedian = math.Log(avgMin) - z1*logSigma
	return logMedian, logSigma
}

// invPhi is the inverse standard normal CDF (Acklam's rational
// approximation; |relative error| < 1.2e-9, far beyond calibration needs).
func invPhi(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("chipgen: invPhi domain")
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > pHigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
