package core

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/report"
)

// TestRendererEquivalence is the renderer contract for the typed result
// model, checked for every registered experiment:
//
//   - report.Text(doc) is byte-identical to the pre-refactor merge
//     output (the checked-in golden files, which predate the Doc model);
//   - the canonical JSON encoding is deterministic (two encodes agree),
//     round-trips through encoding/json losslessly, and re-renders to
//     the same text after the round trip;
//   - the CSV rendering is non-empty and every non-comment line parses
//     as RFC 4180 CSV.
//
// Runs on the default engine with the golden options, so shards are
// shared with the smoke suite instead of recomputed.
func TestRendererEquivalence(t *testing.T) {
	o := goldenOptions()
	for _, e := range List() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			doc, err := Run(e.ID, o)
			if err != nil {
				t.Fatalf("run: %v", err)
			}

			want, err := os.ReadFile(filepath.Join("testdata", "golden", e.ID+".golden"))
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			text := report.Text(doc)
			if text != string(want) {
				t.Errorf("report.Text differs from pre-refactor golden output")
			}

			j1, err := report.JSON(doc)
			if err != nil {
				t.Fatalf("JSON: %v", err)
			}
			j2, _ := report.JSON(doc)
			if !bytes.Equal(j1, j2) {
				t.Error("canonical JSON is not deterministic across encodes")
			}
			var round report.Doc
			if err := json.Unmarshal(j1, &round); err != nil {
				t.Fatalf("JSON does not round-trip: %v", err)
			}
			j3, err := report.JSON(&round)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(j1, j3) {
				t.Error("JSON round trip changed the canonical encoding")
			}
			if report.Text(&round) != text {
				t.Error("text rendering changed after a JSON round trip")
			}

			csvOut := report.CSV(doc)
			if csvOut == "" || !strings.HasPrefix(csvOut, "# experiment: "+e.ID+"\n") {
				t.Fatalf("CSV rendering malformed: %q", firstLine(csvOut))
			}
			var data strings.Builder
			for _, line := range strings.Split(csvOut, "\n") {
				if line == "" || strings.HasPrefix(line, "# ") {
					continue
				}
				data.WriteString(line)
				data.WriteByte('\n')
			}
			r := csv.NewReader(strings.NewReader(data.String()))
			r.FieldsPerRecord = -1 // sections have different widths
			if _, err := r.ReadAll(); err != nil {
				t.Fatalf("CSV data rows do not parse: %v", err)
			}
		})
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
