package core

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/memctrl"
	"repro/internal/report"
	"repro/internal/simperf"
	"repro/internal/workload"
)

func init() {
	register("sec72", "Row-buffer decoupling as a RowPress mitigation (§7.2)", runSec72)
}

// runSec72 evaluates the §7.2 candidate mitigation the paper discusses but
// leaves to future work: (1) on the real-system model, decoupling the row
// buffer from the wordline defeats the RowPress attack at its peak
// configuration without touching the program's timing; (2) on the
// performance simulator, the policy keeps open-row performance (hits still
// hit the decoupled buffer). The paper's caveats stand: it needs DRAM chip
// changes and does not mitigate RowHammer.
func runSec72(o Options) (*report.Doc, error) {
	// Part 1: attack with and without decoupling at the peak configuration.
	var rows [][]string
	for _, decoupled := range []bool{false, true} {
		sys, err := demoSystem(o)
		if err != nil {
			return nil, err
		}
		cfg := attackConfig(o)
		cfg.NumAggrActs = 4
		cfg.NumReads = 16
		cfg.RowBufferDecoupled = decoupled
		r, err := attack.Run(sys, cfg)
		if err != nil {
			return nil, err
		}
		mode := "conventional open-row"
		if decoupled {
			mode = "row-buffer decoupled"
		}
		rows = append(rows, []string{mode, fmt.Sprint(r.Bitflips), fmt.Sprint(r.RowsWithFlips)})
	}

	// Part 2: performance parity with open-row.
	cfg := perfConfig(o)
	p, _ := workload.ByName("462.libquantum") // the most row-locality-bound workload
	open := cfg
	open.Policy = memctrl.OpenRow()
	ro, err := simperf.RunMix(open, []workload.Profile{p}, o.Seed)
	if err != nil {
		return nil, err
	}
	dec := cfg
	dec.Policy = memctrl.Decoupled()
	rd, err := simperf.RunMix(dec, []workload.Profile{p}, o.Seed)
	if err != nil {
		return nil, err
	}
	return report.NewDoc(
		report.TableSection("Row-buffer decoupling (§7.2): stops RowPress at zero row-locality cost",
			[]string{"wordline policy", "RowPress bitflips", "rows w/ flips"}, rows),
		report.TableSection("Performance parity on the most locality-bound workload",
			[]string{"policy", "IPC", "row-hit rate"}, [][]string{
				{"open-row", report.Num(ro.Cores[0].IPC()), report.Pct(ro.Cores[0].RowHitRate())},
				{"row-buffer-decoupled", report.Num(rd.Cores[0].IPC()), report.Pct(rd.Cores[0].RowHitRate())},
			})), nil
}
