// Package core is the public façade of the RowPress reproduction: a
// registry of experiment regenerators, one per table and figure of the
// paper, each returning a rendered textual report. The CLI
// (cmd/rowpress), the examples, and the benchmark harness all go through
// this package.
//
// Usage:
//
//	out, err := core.Run("fig6", core.Options{Scale: 0.5})
package core

import (
	"fmt"
	"sort"

	"repro/internal/characterize"
	"repro/internal/chipgen"
	"repro/internal/dram"
)

// Options scales and seeds an experiment run. The zero value is not
// valid; start from DefaultOptions.
type Options struct {
	// Scale in (0, 1] multiplies the expensive dimensions (tested rows,
	// victim counts, simulated instructions). 1.0 is the full configured
	// run; benches use small scales.
	Scale float64
	// Modules restricts characterization experiments to the given Table 5
	// module IDs; empty = one representative module per die revision.
	Modules []string
	// Seed perturbs randomized components (PARA, workload mixes).
	Seed uint64
}

// DefaultOptions returns the full-scale configuration.
func DefaultOptions() Options { return Options{Scale: 1, Seed: 1} }

func (o Options) validate() error {
	if o.Scale <= 0 || o.Scale > 1 {
		return fmt.Errorf("core: Scale must be in (0,1], got %v", o.Scale)
	}
	return nil
}

// scaled returns max(lo, round(n*Scale)).
func (o Options) scaled(n, lo int) int {
	v := int(float64(n) * o.Scale)
	if v < lo {
		return lo
	}
	return v
}

// modules resolves the module set for characterization experiments.
func (o Options) modules() ([]chipgen.ModuleSpec, error) {
	if len(o.Modules) == 0 {
		return chipgen.Representative(), nil
	}
	var out []chipgen.ModuleSpec
	for _, id := range o.Modules {
		spec, ok := chipgen.ByID(id)
		if !ok {
			return nil, fmt.Errorf("core: unknown module id %q", id)
		}
		out = append(out, spec)
	}
	return out, nil
}

// charConfig derives the characterization config at this scale.
func (o Options) charConfig() characterize.Config {
	cfg := characterize.DefaultConfig()
	cfg.RowsToTest = o.scaled(cfg.RowsToTest, 3)
	cfg.Trials = o.scaled(cfg.Trials, 2)
	return cfg
}

// Experiment is one registered regenerator.
type Experiment struct {
	ID    string // figure/table id, e.g. "fig6", "table3"
	Title string
	Run   func(Options) (string, error)
}

var registry = map[string]Experiment{}

func register(id, title string, run func(Options) (string, error)) {
	if _, dup := registry[id]; dup {
		panic("core: duplicate experiment id " + id)
	}
	registry[id] = Experiment{ID: id, Title: title, Run: run}
}

// List returns all experiments sorted by id.
func List() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Run executes the experiment with the given id.
func Run(id string, o Options) (string, error) {
	if err := o.validate(); err != nil {
		return "", err
	}
	e, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("core: unknown experiment %q (use List)", id)
	}
	return e.Run(o)
}

// sweepTAggONs trims the standard lattice at small scales so quick runs
// stay quick but always keep the anchor points (36 ns, 7.8 µs, 70.2 µs,
// 30 ms).
func sweepTAggONs(o Options) []dram.TimePS {
	if o.Scale >= 0.5 {
		return characterize.StandardTAggONs
	}
	return []dram.TimePS{
		36 * dram.Nanosecond,
		186 * dram.Nanosecond,
		1536 * dram.Nanosecond,
		7800 * dram.Nanosecond,
		70200 * dram.Nanosecond,
		6 * dram.Millisecond,
		30 * dram.Millisecond,
	}
}
