// Package core is the public façade of the RowPress reproduction: a
// registry of experiment regenerators, one per table and figure of the
// paper, each producing a typed result document (report.Doc). The CLI
// (cmd/rowpress), the serving daemon (cmd/rowpressd), the examples, and
// the benchmark harness all go through this package and render the
// document through internal/report (Text, JSON, CSV).
//
// Experiments no longer register opaque closures: each registers a
// planner that decomposes its run into deterministic engine shards
// (per-module or per-configuration slices of the characterize/simperf
// sweeps) plus a merge that assembles the shards into the result
// document — report.Text of which is byte-identical to the historical
// serial report. Plans execute on an engine.Engine — concurrently when
// the engine has more than one worker, and served from its
// content-addressed cache tiers when the same (experiment, Options,
// shard) has completed before, in this process or (with a disk cache
// attached) a previous one.
//
// Usage:
//
//	doc, err := core.Run("fig6", core.Options{Scale: 0.5})      // default engine
//	doc, err = core.RunWith(engine.New(8, 0), "fig6", opts)     // explicit engine
//	fmt.Print(report.Text(doc))
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/characterize"
	"repro/internal/chipgen"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/report"
)

// Options scales and seeds an experiment run. The zero value is not
// valid; start from DefaultOptions.
type Options struct {
	// Scale in (0, 1] multiplies the expensive dimensions (tested rows,
	// victim counts, simulated instructions). 1.0 is the full configured
	// run; benches use small scales.
	Scale float64
	// Modules restricts characterization experiments to the given Table 5
	// module IDs; empty = one representative module per die revision.
	Modules []string
	// Seed perturbs randomized components (PARA, workload mixes).
	Seed uint64
}

// DefaultOptions returns the full-scale configuration.
func DefaultOptions() Options { return Options{Scale: 1, Seed: 1} }

func (o Options) validate() error {
	if o.Scale <= 0 || o.Scale > 1 {
		return fmt.Errorf("core: Scale must be in (0,1], got %v", o.Scale)
	}
	return nil
}

// fingerprint canonically encodes the options every shard depends on:
// scale and seed. The module list is deliberately excluded — per-module
// shards carry their module in the shard key instead, so overlapping
// requests (e.g. modules=S0,S3 then modules=S0,S3,M3) share cached
// shards. Plans whose work reads o.Modules wholesale must fold the list
// into their shard keys (see register).
func (o Options) fingerprint() string {
	return fmt.Sprintf("scale=%g;seed=%d", o.Scale, o.Seed)
}

// Hash canonically addresses the full option set. Unlike fingerprint
// (which deliberately drops the module list so per-module shards can be
// shared across overlapping requests), Hash folds the normalized
// modules in: two runs carry the same Hash exactly when they answer the
// identical request. The run ledger's determinism check keys on it —
// equal hashes must yield equal document hashes.
func (o Options) Hash() string {
	mods, err := NormalizeModules(o.Modules)
	if err != nil {
		// A non-normalizable module list never plans, but hash it
		// faithfully so a failed run's record still has an identity.
		mods = o.Modules
	}
	return engine.Key("options", o.fingerprint(), strings.Join(mods, ","))
}

// scaled returns max(lo, round(n*Scale)).
func (o Options) scaled(n, lo int) int {
	v := int(float64(n) * o.Scale)
	if v < lo {
		return lo
	}
	return v
}

// NormalizeModules canonicalizes a user-supplied module-id list: ids are
// whitespace-trimmed and empty entries dropped (so "S0, S3" and "S0,,S3"
// mean S0+S3), and duplicate ids are rejected — a duplicate would plan
// two shards with the same key, violating the engine's key-uniqueness
// contract. A nil result selects the representative module set. Every
// plan entry point (PlanFor, and therefore Run, the HTTP layer, and the
// sweep subsystem) normalizes through here, so equal logical module
// lists always address the same cached shards.
func NormalizeModules(ids []string) ([]string, error) {
	var out []string
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if seen[id] {
			return nil, fmt.Errorf("core: duplicate module id %q", id)
		}
		seen[id] = true
		out = append(out, id)
	}
	return out, nil
}

// modules resolves the module set for characterization experiments.
func (o Options) modules() ([]chipgen.ModuleSpec, error) {
	if len(o.Modules) == 0 {
		return chipgen.Representative(), nil
	}
	var out []chipgen.ModuleSpec
	for _, id := range o.Modules {
		spec, ok := chipgen.ByID(id)
		if !ok {
			return nil, fmt.Errorf("core: unknown module id %q", id)
		}
		out = append(out, spec)
	}
	return out, nil
}

// charConfig derives the characterization config at this scale.
func (o Options) charConfig() characterize.Config {
	cfg := characterize.DefaultConfig()
	cfg.RowsToTest = o.scaled(cfg.RowsToTest, 3)
	cfg.Trials = o.scaled(cfg.Trials, 2)
	return cfg
}

// planner decomposes one experiment at the given options into shards and
// a merge. The returned plan's Experiment/Fingerprint fields are filled
// in by PlanFor.
type planner func(Options) (engine.Plan, error)

// Experiment is one registered regenerator.
type Experiment struct {
	ID    string // figure/table id, e.g. "fig6", "table3"
	Title string
	plan  planner
}

// Run executes the experiment on the default engine.
func (e Experiment) Run(o Options) (*report.Doc, error) { return RunWith(defaultEngine, e.ID, o) }

// ErrUnknownExperiment reports an id not present in the registry;
// callers (the HTTP layer) match it with errors.Is.
var ErrUnknownExperiment = errors.New("unknown experiment")

var registry = map[string]Experiment{}

// registerPlan is the root registration hook: every experiment is a
// planner producing shardable units.
func registerPlan(id, title string, plan planner) {
	if _, dup := registry[id]; dup {
		panic("core: duplicate experiment id " + id)
	}
	registry[id] = Experiment{ID: id, Title: title, plan: plan}
}

// register registers a monolithic experiment as a single-shard plan, for
// regenerators whose work does not decompose (demo-system grids, catalog
// walks). The run closure receives the full Options, so the module list
// is folded into the shard key. The cached payload is the document
// itself; the merge hands out a shallow copy so PlanFor's metadata
// stamping never mutates a value other runs share through the cache.
func register(id, title string, run func(Options) (*report.Doc, error)) {
	registerPlan(id, title, func(o Options) (engine.Plan, error) {
		key := "all;modules=" + strings.Join(o.Modules, ",")
		return engine.Plan{
			Shards: []engine.Shard{{Key: key, Run: func() (any, error) { return run(o) }}},
			Merge: func(parts []any) (*report.Doc, error) {
				d, ok := parts[0].(*report.Doc)
				if !ok {
					return nil, fmt.Errorf("core: shard %q payload is %T, want *report.Doc", key, parts[0])
				}
				cp := *d
				return &cp, nil
			},
		}, nil
	})
}

// Get returns the experiment registered under id.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// List returns all experiments sorted by id.
func List() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PlanFor validates the options and returns the executable engine plan
// for one experiment. Callers that want per-run cache statistics hand the
// plan to engine.Engine.Execute themselves; everyone else uses Run.
func PlanFor(id string, o Options) (engine.Plan, error) {
	if err := o.validate(); err != nil {
		return engine.Plan{}, err
	}
	mods, err := NormalizeModules(o.Modules)
	if err != nil {
		return engine.Plan{}, err
	}
	o.Modules = mods
	e, ok := registry[id]
	if !ok {
		return engine.Plan{}, fmt.Errorf("core: %w %q (use List)", ErrUnknownExperiment, id)
	}
	p, err := e.plan(o)
	if err != nil {
		return engine.Plan{}, err
	}
	p.Experiment = id
	p.Fingerprint = o.fingerprint()
	// The normalized options are the plan's remote metadata: they are
	// everything a fabric peer needs to rebuild this exact plan (and
	// re-derive the same shard addresses) from its own registry.
	p.Remote = o
	// Stamp the document's identity and run parameters after the merge:
	// merges only build sections, so every experiment's metadata is
	// uniform and the text rendering (sections only) stays byte-stable.
	inner := p.Merge
	p.Merge = func(parts []any) (*report.Doc, error) {
		d, err := inner(parts)
		if err != nil {
			return nil, err
		}
		d.Experiment = id
		d.Title = e.Title
		d.Params = o.params()
		return d, nil
	}
	return p, nil
}

// params renders the normalized run options as document metadata.
func (o Options) params() []report.Param {
	mods := "representative"
	if len(o.Modules) > 0 {
		mods = strings.Join(o.Modules, ",")
	}
	return []report.Param{
		{Key: "scale", Value: fmt.Sprintf("%g", o.Scale)},
		{Key: "seed", Value: fmt.Sprintf("%d", o.Seed)},
		{Key: "modules", Value: mods},
	}
}

// defaultEngine backs Run: process-wide, so repeated runs within one
// process (tests, examples, benches) share the shard cache.
var defaultEngine = engine.New(0, 0)

// DefaultEngine returns the process-wide engine used by Run.
func DefaultEngine() *engine.Engine { return defaultEngine }

// Run executes the experiment with the given id on the default engine.
func Run(id string, o Options) (*report.Doc, error) {
	return RunWith(defaultEngine, id, o)
}

// RunWith executes the experiment on the given engine. The resulting
// document — and therefore report.Text of it — is byte-identical across
// worker counts: shards are deterministic and the merge consumes them
// in plan order. When the engine has a span recorder attached, plan
// decomposition is recorded as a plan_build span so traced runs show
// the full lifecycle, not just shard execution.
func RunWith(eng *engine.Engine, id string, o Options) (*report.Doc, error) {
	out, _, err := RunObserved(eng, id, o, nil)
	return out, err
}

// RunObserved is RunWith for callers that also need the engine's
// per-run statistics and per-shard resolution events — the run ledger
// uses the events to split the shard count by answering cache tier.
// onShard (may be nil) is chained onto the plan exactly like
// engine.Plan.OnShard: invoked concurrently from worker goroutines.
func RunObserved(eng *engine.Engine, id string, o Options, onShard func(engine.ShardEvent)) (*report.Doc, engine.RunStats, error) {
	var t0 time.Time
	rec := eng.Recorder()
	if rec != nil {
		t0 = time.Now() //lint:ignore rowpressvet/wallclock span timestamp for the plan_build trace; recorder-gated and never feeds the report document
	}
	p, err := PlanFor(id, o)
	if err != nil {
		return nil, engine.RunStats{}, err
	}
	if rec != nil {
		//lint:ignore rowpressvet/wallclock span duration for the plan_build trace; recorder-gated and never feeds the report document
		rec.Record(obs.PlanBuild, -1, -1, id, "", t0, time.Since(t0), 0)
	}
	p.OnShard = onShard
	return eng.Execute(p)
}

// sweepTAggONs trims the standard lattice at small scales so quick runs
// stay quick but always keep the anchor points (36 ns, 7.8 µs, 70.2 µs,
// 30 ms).
func sweepTAggONs(o Options) []dram.TimePS {
	if o.Scale >= 0.5 {
		return characterize.StandardTAggONs
	}
	return []dram.TimePS{
		36 * dram.Nanosecond,
		186 * dram.Nanosecond,
		1536 * dram.Nanosecond,
		7800 * dram.Nanosecond,
		70200 * dram.Nanosecond,
		6 * dram.Millisecond,
		30 * dram.Millisecond,
	}
}
