package core

import (
	"strings"
	"testing"
)

func TestListIsSortedAndComplete(t *testing.T) {
	es := List()
	if len(es) < 30 {
		t.Fatalf("only %d experiments registered", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i-1].ID >= es[i].ID {
			t.Fatalf("list not sorted: %s >= %s", es[i-1].ID, es[i].ID)
		}
	}
	want := []string{
		"fig1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig17", "fig18", "fig19", "fig20",
		"fig22", "fig23", "fig24", "fig25", "fig26", "fig38", "fig39",
		"fig40", "fig41", "fig49", "table1", "table3", "table5", "table6",
		"appC", "appE", "appF", "sec63", "sec72",
	}
	ids := map[string]bool{}
	for _, e := range es {
		ids[e.ID] = true
		if e.Title == "" {
			t.Errorf("experiment %s has no title", e.ID)
		}
	}
	for _, id := range want {
		if !ids[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("fig999", DefaultOptions()); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestRunValidatesOptions(t *testing.T) {
	if _, err := Run("table1", Options{Scale: 0}); err == nil {
		t.Fatal("zero scale should error")
	}
	if _, err := Run("table1", Options{Scale: 2}); err == nil {
		t.Fatal("scale > 1 should error")
	}
}

func TestRunUnknownModule(t *testing.T) {
	_, err := Run("fig6", Options{Scale: 0.05, Modules: []string{"Z9"}})
	if err == nil || !strings.Contains(err.Error(), "Z9") {
		t.Fatalf("unknown module should be named in error: %v", err)
	}
}

func TestScaledHelper(t *testing.T) {
	o := Options{Scale: 0.1}
	if got := o.scaled(100, 3); got != 10 {
		t.Errorf("scaled(100) = %d", got)
	}
	if got := o.scaled(10, 3); got != 3 {
		t.Errorf("scaled floor = %d", got)
	}
}

func TestSweepTrimsAtSmallScale(t *testing.T) {
	small := sweepTAggONs(Options{Scale: 0.1})
	full := sweepTAggONs(Options{Scale: 1})
	if len(small) >= len(full) {
		t.Fatal("small scale should trim the lattice")
	}
	// Anchor points stay.
	for _, anchor := range []int64{36_000, 7_800_000, 70_200_000, 30_000_000_000} {
		found := false
		for _, t2 := range small {
			if int64(t2) == anchor*1 {
				found = true
			}
		}
		if !found {
			t.Errorf("anchor %d ps missing from trimmed lattice", anchor)
		}
	}
}

func TestNormalizeModules(t *testing.T) {
	got, err := NormalizeModules([]string{" S0 ", "", "S3", "  "})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "S0" || got[1] != "S3" {
		t.Fatalf("normalized=%v", got)
	}
	if got, err := NormalizeModules(nil); err != nil || got != nil {
		t.Fatalf("nil list: got=%v err=%v", got, err)
	}
	if _, err := NormalizeModules([]string{"S0", "S0"}); err == nil {
		t.Fatal("duplicate ids must be rejected")
	}
	if _, err := NormalizeModules([]string{"S0", " S0"}); err == nil {
		t.Fatal("duplicate-after-trim ids must be rejected")
	}
}

// TestPlanForNormalizesModules pins the contract that padded module
// lists address the same cached shards as their canonical form, and
// that duplicates never reach the engine as duplicate shard keys.
func TestPlanForNormalizesModules(t *testing.T) {
	o := DefaultOptions()
	o.Scale = 0.05
	o.Modules = []string{" S0", "S3 "}
	p, err := PlanFor("fig7", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Shards) != 2 || p.Shards[0].Key != "module/S0" || p.Shards[1].Key != "module/S3" {
		t.Fatalf("shard keys: %+v", p.Shards)
	}
	o.Modules = []string{"S0", "S0"}
	if _, err := PlanFor("fig7", o); err == nil {
		t.Fatal("duplicate modules must not plan")
	}
}
