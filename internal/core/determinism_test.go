package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/scenario"
)

// TestEngineDeterminismAndCache is the engine's core contract: for every
// registered experiment, the same (experiment, Options) must produce
// byte-identical reports at -workers=1 and -workers=8, and a repeated run
// on the same engine must be served entirely from the shard cache.
func TestEngineDeterminismAndCache(t *testing.T) {
	o := Options{Scale: 0.05, Seed: 1, Modules: []string{"S0", "S3", "M3"}}
	serial := engine.New(1, 0)
	wide := engine.New(8, 0)
	for _, e := range List() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			p, err := PlanFor(e.ID, o)
			if err != nil {
				t.Fatal(err)
			}
			doc1, stats1, err := serial.Execute(p)
			if err != nil {
				t.Fatalf("workers=1: %v", err)
			}
			doc8, stats8, err := wide.Execute(p)
			if err != nil {
				t.Fatalf("workers=8: %v", err)
			}
			got1, got8 := report.Text(doc1), report.Text(doc8)
			if got1 != got8 {
				t.Fatalf("workers=1 and workers=8 reports differ:\n--- w1 ---\n%s\n--- w8 ---\n%s", got1, got8)
			}
			if stats1.Executed != stats1.Shards || stats8.Executed != stats8.Shards {
				t.Fatalf("cold runs should execute every shard: w1=%+v w8=%+v", stats1, stats8)
			}
			warm, warmStats, err := wide.Execute(p)
			if err != nil {
				t.Fatalf("warm: %v", err)
			}
			if warmStats.Executed != 0 || warmStats.CacheHits != warmStats.Shards {
				t.Fatalf("warm run re-executed shards: %+v", warmStats)
			}
			if report.Text(warm) != got8 {
				t.Fatal("cached report differs from computed report")
			}
		})
	}
}

// TestCharacterizationShardsPerModule pins the decomposition: selecting
// n modules must plan n shards for per-module experiments.
func TestCharacterizationShardsPerModule(t *testing.T) {
	for _, id := range []string{"fig6", "fig8", "table5", "table6", "appC", "summary"} {
		p, err := PlanFor(id, Options{Scale: 0.05, Seed: 1, Modules: []string{"S0", "S3", "M3"}})
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Shards) != 3 {
			t.Errorf("%s: %d shards for 3 modules", id, len(p.Shards))
		}
	}
}

// TestShardCacheSharedAcrossModuleSubsets pins the addressing scheme:
// a request for a superset of modules reuses the subset's cached shards.
func TestShardCacheSharedAcrossModuleSubsets(t *testing.T) {
	eng := engine.New(2, 0)
	sub := Options{Scale: 0.05, Seed: 1, Modules: []string{"S0"}}
	super := Options{Scale: 0.05, Seed: 1, Modules: []string{"S0", "S3"}}
	if _, err := RunWith(eng, "fig7", sub); err != nil {
		t.Fatal(err)
	}
	p, err := PlanFor("fig7", super)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := eng.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 1 || stats.Executed != 1 {
		t.Fatalf("superset run should reuse the S0 shard: %+v", stats)
	}
	// Different scale or seed must not hit the cache.
	p2, err := PlanFor("fig7", Options{Scale: 0.06, Seed: 1, Modules: []string{"S0"}})
	if err != nil {
		t.Fatal(err)
	}
	_, stats2, err := eng.Execute(p2)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.CacheHits != 0 {
		t.Fatalf("scale change must miss the cache: %+v", stats2)
	}
}

// TestRunMatchesRunWithSerial pins the public entry point: Run (default
// engine) and an explicit single-worker engine agree.
func TestRunMatchesRunWithSerial(t *testing.T) {
	o := Options{Scale: 0.05, Seed: 1, Modules: []string{"S0"}}
	a, err := Run("fig12", o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWith(engine.New(1, 0), "fig12", o)
	if err != nil {
		t.Fatal(err)
	}
	if report.Text(a) != report.Text(b) {
		t.Fatal("default engine and serial engine reports differ")
	}
}

// TestMitigationMergeShuffledCompletion pins the merge contract for the
// mitigation experiments (the satellite of the maprange audit on
// fourCoreMixes): shard *completion* order is a scheduling accident, and
// the merged document must not depend on it. The engine already hands
// Merge the payloads in plan order whatever order workers finish in, so
// the test drives the plan by hand — executing shard Runs in several
// adversarial completion orders (reversed, interleaved) before merging —
// and requires the rendered report to stay byte-identical to the
// serial engine's.
func TestMitigationMergeShuffledCompletion(t *testing.T) {
	o := Options{Scale: 0.05, Seed: 1, Modules: []string{"S0"}}
	for _, id := range []string{"table3", "fig40", "fig41"} {
		id := id
		t.Run(id, func(t *testing.T) {
			want, err := RunWith(engine.New(1, 0), id, o)
			if err != nil {
				t.Fatal(err)
			}
			wantText := report.Text(want)
			p, err := PlanFor(id, o)
			if err != nil {
				t.Fatal(err)
			}
			n := len(p.Shards)
			if n < 2 {
				t.Fatalf("%s plans %d shard(s); need at least 2 to permute", id, n)
			}
			reversed := make([]int, n)
			for i := 0; i < n; i++ {
				reversed[i] = n - 1 - i
			}
			// Odd indices first, then even: an interleaving no worker
			// pool would produce by accident.
			var interleaved []int
			for i := 1; i < n; i += 2 {
				interleaved = append(interleaved, i)
			}
			for i := 0; i < n; i += 2 {
				interleaved = append(interleaved, i)
			}
			orders := [][]int{reversed, interleaved}
			for _, order := range orders {
				parts := make([]any, n)
				for _, i := range order {
					v, err := p.Shards[i].Run()
					if err != nil {
						t.Fatalf("shard %d (%s): %v", i, p.Shards[i].Key, err)
					}
					parts[i] = v
				}
				doc, err := p.Merge(parts)
				if err != nil {
					t.Fatal(err)
				}
				if got := report.Text(doc); got != wantText {
					t.Fatalf("completion order %v changed the %s report:\n--- want ---\n%s\n--- got ---\n%s", order, id, wantText, got)
				}
			}
		})
	}
}

// TestSubShardShuffledCompletion is the two-level twin of
// TestMitigationMergeShuffledCompletion: for experiments whose shards
// declare sub-shard splits, sub-shard *completion* order is a
// scheduling accident, and the gathered unit payload — and therefore
// the merged document — must not depend on it. The engine stores each
// sub's payload at its declared index whatever order workers finish
// in, so the test drives the split by hand: every shard's sub-shards
// execute in reverse declaration order before Gather folds them, and
// the rendered report must stay byte-identical to the serial engine's.
func TestSubShardShuffledCompletion(t *testing.T) {
	o := Options{Scale: 0.05, Seed: 1, Modules: []string{"S0"}}
	for _, id := range []string{"fig7", "fig9", "fig18", "scenario-grid"} {
		id := id
		t.Run(id, func(t *testing.T) {
			want, err := RunWith(engine.New(1, 0), id, o)
			if err != nil {
				t.Fatal(err)
			}
			wantText := report.Text(want)
			p, err := PlanFor(id, o)
			if err != nil {
				t.Fatal(err)
			}
			parts := make([]any, len(p.Shards))
			split := 0
			for i, s := range p.Shards {
				if len(s.Subs) == 0 {
					if parts[i], err = s.Run(); err != nil {
						t.Fatalf("shard %q: %v", s.Key, err)
					}
					continue
				}
				split++
				subParts := make([]any, len(s.Subs))
				for j := len(s.Subs) - 1; j >= 0; j-- {
					if subParts[j], err = s.Subs[j].Run(); err != nil {
						t.Fatalf("shard %q sub %q: %v", s.Key, s.Subs[j].Key, err)
					}
				}
				if parts[i], err = s.Gather(subParts); err != nil {
					t.Fatalf("shard %q gather: %v", s.Key, err)
				}
			}
			if split == 0 {
				t.Fatalf("%s plans no split shards; the test exercises nothing", id)
			}
			doc, err := p.Merge(parts)
			if err != nil {
				t.Fatal(err)
			}
			if got := report.Text(doc); got != wantText {
				t.Fatalf("reverse sub-shard completion changed the %s report:\n--- want ---\n%s\n--- got ---\n%s", id, wantText, got)
			}
		})
	}
}

// TestScenarioShardDecomposition pins the scenario experiments' shard
// lattice: one shard per (module, scenario) for the grid and one per
// (module, scenario, mitigation) for the comparison, so overlapping
// module selections share cached scenario cells exactly like the
// characterization experiments do.
func TestScenarioShardDecomposition(t *testing.T) {
	o := Options{Scale: 0.05, Seed: 1, Modules: []string{"S0", "H0"}}
	nScen := len(scenario.Names())
	nMits := len(scenario.AllMitigations())
	grid, err := PlanFor("scenario-grid", o)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * nScen; len(grid.Shards) != want {
		t.Fatalf("scenario-grid: %d shards, want %d", len(grid.Shards), want)
	}
	mit, err := PlanFor("scenario-mitigation", o)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * nScen * nMits; len(mit.Shards) != want {
		t.Fatalf("scenario-mitigation: %d shards, want %d", len(mit.Shards), want)
	}
	// Shard keys carry the module id, so a single-module run addresses a
	// subset of the two-module run's cache entries.
	sub, err := PlanFor("scenario-grid", Options{Scale: 0.05, Seed: 1, Modules: []string{"S0"}})
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[string]bool, len(grid.Shards))
	for _, s := range grid.Shards {
		keys[s.Key] = true
	}
	for _, s := range sub.Shards {
		if !keys[s.Key] {
			t.Fatalf("subset shard %q not addressed by the superset plan", s.Key)
		}
	}
}
