package core

import (
	"fmt"

	"repro/internal/chipgen"
	"repro/internal/dram"
	"repro/internal/report"
	"repro/internal/scenario"
)

// The attack-scenario experiments go beyond the paper's fixed figures:
// the composable access-pattern matrix of internal/scenario — pure
// RowHammer, pure RowPress, the combined hammer×tAggON interleavings of
// arXiv:2406.13080, and decoy-decorated TRR-bypass variants — is played
// against each selected module, both unmitigated (scenario-grid, with a
// minimum-exposure search) and under every evaluated mitigation
// including the ImPress-style implicit one (scenario-mitigation).
//
// Each (module, scenario[, mitigation]) cell is one engine shard, so
// scenario runs flow through the worker pool, the shard cache, sweep
// batching, and the HTTP layer exactly like every paper experiment.
func init() {
	registerKeyedSplit("scenario-grid",
		"Attack-scenario characterization: min exposure to flip per pattern (unmitigated)",
		scenGridKeys, splitScenGrid, mergeScenGrid)
	registerKeyedSplit("scenario-mitigation",
		"Attack scenarios vs mitigations: bitflips and preventive-refresh overhead",
		scenMitKeys, splitScenMit, mergeScenMit)
}

// scenConfig derives the scenario playback methodology at this scale:
// the activation budget shrinks with Scale, the simulated-time cap does
// not (long-dwell patterns flip within a few refresh windows regardless
// of scale), and mitigation sizing is scale-independent hardware
// configuration.
func scenConfig(o Options) scenario.Config {
	cfg := scenario.DefaultConfig()
	cfg.MaxActs = o.scaled(cfg.MaxActs, 20_000)
	cfg.Sites = o.scaled(cfg.Sites, 2)
	cfg.Seed = o.Seed
	return cfg
}

func scenGridKeys(o Options) ([]string, error) {
	specs, err := o.modules()
	if err != nil {
		return nil, err
	}
	var ks []string
	for _, m := range specs {
		for _, name := range scenario.Names() {
			ks = append(ks, "module/"+m.ID+"/scenario/"+name)
		}
	}
	return ks, nil
}

// scenSites declares the per-victim-site split of one (module, scenario,
// mitigation) cell: sites play on fresh modules with independent
// deterministic seeds, so each is its own cache-keyed sub-shard and
// scenario.FoldSites reassembles the cell Result bit-identically to the
// serial Characterize/Evaluate loop.
func scenSites(mod chipgen.ModuleSpec, sc scenario.Spec, kind scenario.MitigationKind,
	cfg scenario.Config, search bool) split[scenario.Result, scenario.SiteResult] {
	n := scenario.SiteCount(sc, cfg)
	if n == 0 {
		return errScenSplit(fmt.Errorf("scenario: geometry with %d rows/bank cannot host a %d-sided site",
			cfg.Geometry.RowsPerBank, sc.Sides))
	}
	keys := make([]string, n)
	for j := range keys {
		keys[j] = fmt.Sprintf("site/%d", j)
	}
	return split[scenario.Result, scenario.SiteResult]{
		keys: keys,
		work: func(j int) (scenario.SiteResult, error) {
			if search {
				return scenario.CharacterizeSite(mod, sc, kind, cfg, j)
			}
			return scenario.EvaluateSite(mod, sc, kind, cfg, j)
		},
		gather: func(parts []scenario.SiteResult) (scenario.Result, error) {
			return scenario.FoldSites(mod, sc, kind, parts, search), nil
		},
	}
}

// errScenSplit surfaces a resolution error through a single sub-shard
// (splitOf itself cannot fail; the key builders resolve the same state
// first, so this is a defensive path).
func errScenSplit(err error) split[scenario.Result, scenario.SiteResult] {
	return split[scenario.Result, scenario.SiteResult]{
		keys:   []string{"error"},
		work:   func(int) (scenario.SiteResult, error) { return scenario.SiteResult{}, err },
		gather: func([]scenario.SiteResult) (scenario.Result, error) { return scenario.Result{}, err },
	}
}

// splitScenGrid characterizes one (module, scenario) cell unmitigated —
// the doubling+bisection minimum-exposure search included — split one
// sub-shard per victim site.
func splitScenGrid(o Options, i int, key string) split[scenario.Result, scenario.SiteResult] {
	specs, err := o.modules()
	if err != nil {
		return errScenSplit(err)
	}
	names := scenario.Names()
	mod := specs[i/len(names)]
	sc, _ := scenario.ByName(names[i%len(names)])
	return scenSites(mod, sc, scenario.MitNone, scenConfig(o), true)
}

func mergeScenGrid(o Options, parts []scenario.Result) (*report.Doc, error) {
	specs, err := o.modules()
	if err != nil {
		return nil, err
	}
	cat := scenario.Catalog()
	doc := report.NewDoc()
	for mi, mod := range specs {
		headers := []string{"scenario", "pattern", "min ACs to flip", "time to flip", "flips@budget", "budget ACs"}
		var rows [][]string
		byName := map[string]scenario.Result{}
		for si, sc := range cat {
			r := parts[mi*len(cat)+si]
			byName[sc.Name] = r
			minActs, minTime := "-", "-"
			if r.FlipFound && r.MinActs > 0 {
				minActs = fmt.Sprint(r.MinActs)
				minTime = dram.FormatTime(r.MinTime)
			}
			rows = append(rows, []string{
				sc.Name, sc.Pattern(), minActs, minTime,
				fmt.Sprint(r.BitFlips), fmt.Sprint(r.BudgetActs),
			})
		}
		doc.Add(report.TableSection(
			fmt.Sprintf("Attack-scenario grid — module %s (%s %s)", mod.ID, mod.Die.Mfr, mod.Die.Name()),
			headers, rows))
		if plane, ok := scenPlaneFinding(mod, byName); ok {
			doc.Add(plane)
		}
	}
	return doc, nil
}

// scenPlaneFinding renders the arXiv:2406.13080 headline per module: the
// best combined (interleaved) pattern reaches its first bitflip with
// fewer activations than pure double-sided RowHammer, while pure
// RowPress patterns need several-fold more attack time — the threat
// surface is the whole hammer-count × row-open-time plane.
func scenPlaneFinding(mod chipgen.ModuleSpec, byName map[string]scenario.Result) (report.DocSection, bool) {
	hammer, okH := byName["ds-hammer"]
	if !okH || !hammer.FlipFound {
		return report.DocSection{}, false
	}
	// Catalog order keeps the tie-break deterministic (map iteration is
	// not), which the byte-identical-across-workers contract requires.
	var bestC, bestP scenario.Result
	var bestCName, bestPName string
	for _, sc := range scenario.Catalog() {
		r, ok := byName[sc.Name]
		if !ok || !r.FlipFound {
			continue
		}
		switch sc.Kind {
		case scenario.Combined:
			if bestCName == "" || r.MinActs < bestC.MinActs {
				bestC, bestCName = r, sc.Name
			}
		case scenario.Press:
			if bestPName == "" || r.MinTime < bestP.MinTime {
				bestP, bestPName = r, sc.Name
			}
		}
	}
	if bestCName == "" {
		return report.DocSection{}, false
	}
	lines := []string{
		fmt.Sprintf("best combined pattern %s: first flip at %d ACs in %s",
			bestCName, bestC.MinActs, dram.FormatTime(bestC.MinTime)),
		fmt.Sprintf("vs pure ds-hammer: %d ACs (%s of pure RowHammer's activation count)",
			hammer.MinActs, report.Pct(float64(bestC.MinActs)/float64(hammer.MinActs))),
	}
	if bestPName != "" {
		lines = append(lines, fmt.Sprintf(
			"vs fastest pure press %s: %s to flip (combined interleaving reaches the plane between both pure patterns)",
			bestPName, dram.FormatTime(bestP.MinTime)))
	}
	return report.FindingsSection(
		fmt.Sprintf("Combined-plane finding (arXiv:2406.13080) — module %s", mod.ID), lines...), true
}

func scenMitKeys(o Options) ([]string, error) {
	specs, err := o.modules()
	if err != nil {
		return nil, err
	}
	var ks []string
	for _, m := range specs {
		for _, name := range scenario.Names() {
			for _, mk := range scenario.AllMitigations() {
				ks = append(ks, "module/"+m.ID+"/scenario/"+name+"/mit/"+string(mk))
			}
		}
	}
	return ks, nil
}

// splitScenMit evaluates one (module, scenario, mitigation) cell at the
// full activation budget (no search — the comparison wants flip counts
// and preventive-refresh overhead at equal exposure), split one
// sub-shard per victim site.
func splitScenMit(o Options, i int, key string) split[scenario.Result, scenario.SiteResult] {
	specs, err := o.modules()
	if err != nil {
		return errScenSplit(err)
	}
	names := scenario.Names()
	mits := scenario.AllMitigations()
	perModule := len(names) * len(mits)
	mod := specs[i/perModule]
	sc, _ := scenario.ByName(names[(i%perModule)/len(mits)])
	return scenSites(mod, sc, mits[i%len(mits)], scenConfig(o), false)
}

func mergeScenMit(o Options, parts []scenario.Result) (*report.Doc, error) {
	specs, err := o.modules()
	if err != nil {
		return nil, err
	}
	names := scenario.Names()
	mits := scenario.AllMitigations()
	perModule := len(names) * len(mits)
	doc := report.NewDoc()
	for mi, mod := range specs {
		headers := []string{"scenario"}
		for _, mk := range mits {
			headers = append(headers, string(mk))
		}
		flipRows := make([][]string, len(names))
		ovhRows := make([][]string, len(names))
		totals := make([]int, len(mits))
		for si, name := range names {
			flipRows[si] = []string{name}
			ovhRows[si] = []string{name}
			for ki := range mits {
				r := parts[mi*perModule+si*len(mits)+ki]
				flipRows[si] = append(flipRows[si], fmt.Sprint(r.BitFlips))
				ovhRows[si] = append(ovhRows[si], report.Num(r.RefreshOverhead))
				totals[ki] += r.BitFlips
			}
		}
		totalRow := []string{"TOTAL"}
		for _, v := range totals {
			totalRow = append(totalRow, fmt.Sprint(v))
		}
		flipRows = append(flipRows, totalRow)
		doc.Add(report.TableSection(
			fmt.Sprintf("Bitflips per scenario × mitigation — module %s", mod.ID),
			headers, flipRows))
		doc.Add(report.TableSection(
			fmt.Sprintf("Preventive refreshes per 1000 aggressor ACTs — module %s", mod.ID),
			headers, ovhRows))
	}
	return doc, nil
}
