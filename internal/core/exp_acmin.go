package core

import (
	"fmt"
	"math"

	"repro/internal/characterize"
	"repro/internal/chipgen"
	"repro/internal/dram"
	"repro/internal/report"
	"repro/internal/stats"
)

func init() {
	registerPerModule("fig1", "ACmin of RowHammer vs RowPress, single/double-sided, 80°C", workFig1, mergeFig1)
	registerSweep("fig6", "ACmin vs tAggON, single-sided, 50°C, per die revision", characterize.SingleSided, 50)
	registerPerModule("fig7", "ACmin 7.8–70.2µs, linear scale, 50°C", workFig7, mergeFig7)
	registerFraction("fig8", "Fraction of rows with ≥1 bitflip vs tAggON, 50°C", 50)
	registerPerModule("fig9", "tAggONmin vs activation count, 50°C", workFig9, mergeFig9)
	registerPerModule("fig12", "Fraction of 1→0 bitflips vs tAggON", workFig12, mergeFig12)
	registerPerModule("fig13", "ACmin at 80°C normalized to 50°C", workFig13, mergeFig13)
	registerFraction("fig14", "Fraction of rows with ≥1 bitflip vs tAggON, 80°C", 80)
	registerPerModule("fig15", "tAggONmin @AC=1 vs temperature (50–80°C)", workFig15, mergeFig15)
	registerSweep("fig17", "ACmin vs tAggON, double-sided, 50°C", characterize.DoubleSided, 50)
	registerSingleMinusDouble("fig18", "Single-sided minus double-sided ACmin, 50°C and 80°C", []float64{50, 80})
	registerSingleMinusDouble("appF", "ACmin at 65°C (normalized) and 3-temperature single-double gap", []float64{50, 65, 80})
}

// taggonHeaders is the shared "module, die, <one column per tAggON>"
// header prefix of the sweep tables.
func taggonHeaders(taggons []dram.TimePS) []string {
	headers := []string{"module", "die"}
	for _, t := range taggons {
		headers = append(headers, dram.FormatTime(t))
	}
	return headers
}

// registerSweep renders mean/min/max ACmin per module per tAggON plus the
// log-log slope of the ≥7.8 µs tail (the paper's −1 signature). Each
// module's sweep is one shard.
func registerSweep(id, title string, sided characterize.Sidedness, tempC float64) {
	work := func(o Options, spec chipgen.ModuleSpec) ([]string, error) {
		taggons := sweepTAggONs(o)
		cfg := o.charConfig()
		cfg.Sided = sided
		pts, err := characterize.ACminSweep(spec, cfg, tempC, taggons)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.ID, err)
		}
		row := []string{spec.ID, spec.Die.Name()}
		var xs, ys []float64
		for _, pt := range pts {
			m := stats.Mean(pt.ACminValues())
			row = append(row, report.Num(m))
			if pt.TAggON >= 7800*dram.Nanosecond && !math.IsNaN(m) {
				xs = append(xs, dram.Seconds(pt.TAggON))
				ys = append(ys, m)
			}
		}
		return append(row, report.Num(stats.FitLogLog(xs, ys).Slope)), nil
	}
	merge := func(o Options, specs []chipgen.ModuleSpec, parts [][]string) (*report.Doc, error) {
		headers := append(taggonHeaders(sweepTAggONs(o)), "slope(log-log,≥7.8us)")
		title2 := fmt.Sprintf("Mean ACmin per module (%s, %g°C)", sided, tempC)
		return report.NewDoc(report.TableSection(title2, headers, parts)), nil
	}
	registerPerModule(id, title, work, merge)
}

// fig7Taggons is the linear-region lattice of Fig. 7.
var fig7Taggons = []dram.TimePS{7800 * dram.Nanosecond, 15 * dram.Microsecond, 30 * dram.Microsecond, 70200 * dram.Nanosecond}

func workFig7(o Options, spec chipgen.ModuleSpec) ([]string, error) {
	cfg := o.charConfig()
	cfg.Sided = characterize.SingleSided
	pts, err := characterize.ACminSweep(spec, cfg, 50, fig7Taggons)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", spec.ID, err)
	}
	row := []string{spec.ID, spec.Die.Name()}
	for _, pt := range pts {
		row = append(row, report.Num(stats.Mean(pt.ACminValues())))
	}
	return row, nil
}

func mergeFig7(o Options, specs []chipgen.ModuleSpec, parts [][]string) (*report.Doc, error) {
	return report.NewDoc(report.TableSection("ACmin in the linear region (Fig. 7): note the decreasing reduction rate",
		taggonHeaders(fig7Taggons), parts)), nil
}

func registerFraction(id, title string, tempC float64) {
	work := func(o Options, spec chipgen.ModuleSpec) ([]string, error) {
		cfg := o.charConfig()
		cfg.Sided = characterize.SingleSided
		pts, err := characterize.ACminSweep(spec, cfg, tempC, sweepTAggONs(o))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.ID, err)
		}
		row := []string{spec.ID, spec.Die.Name()}
		for _, pt := range pts {
			row = append(row, report.Pct(pt.FractionWithFlips()))
		}
		return row, nil
	}
	merge := func(o Options, specs []chipgen.ModuleSpec, parts [][]string) (*report.Doc, error) {
		title2 := fmt.Sprintf("Fraction of tested rows with ≥1 bitflip (%g°C)", tempC)
		return report.NewDoc(report.TableSection(title2, taggonHeaders(sweepTAggONs(o)), parts)), nil
	}
	registerPerModule(id, title, work, merge)
}

func workFig12(o Options, spec chipgen.ModuleSpec) ([]string, error) {
	cfg := o.charConfig()
	cfg.Sided = characterize.SingleSided
	pts, err := characterize.ACminSweep(spec, cfg, 50, sweepTAggONs(o))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", spec.ID, err)
	}
	row := []string{spec.ID, spec.Die.Name()}
	for _, pt := range pts {
		row = append(row, report.Pct(pt.FractionOneToZero()))
	}
	return row, nil
}

func mergeFig12(o Options, specs []chipgen.ModuleSpec, parts [][]string) (*report.Doc, error) {
	return report.NewDoc(report.TableSection("Fraction of 1→0 bitflips (Fig. 12): RowHammer ≈0%, RowPress ≈100% on true-cell dies",
		taggonHeaders(sweepTAggONs(o)), parts)), nil
}

func workFig13(o Options, spec chipgen.ModuleSpec) ([]string, error) {
	taggons := sweepTAggONs(o)
	cfg := o.charConfig()
	p50, err := characterize.ACminSweep(spec, cfg, 50, taggons)
	if err != nil {
		return nil, err
	}
	p80, err := characterize.ACminSweep(spec, cfg, 80, taggons)
	if err != nil {
		return nil, err
	}
	row := []string{spec.ID, spec.Die.Name()}
	for i := range taggons {
		a, b := stats.Mean(p80[i].ACminValues()), stats.Mean(p50[i].ACminValues())
		if math.IsNaN(a) || math.IsNaN(b) || b == 0 {
			row = append(row, "-")
		} else {
			row = append(row, report.Num(a/b))
		}
	}
	return row, nil
}

func mergeFig13(o Options, specs []chipgen.ModuleSpec, parts [][]string) (*report.Doc, error) {
	return report.NewDoc(report.TableSection("ACmin at 80°C normalized to 50°C (Fig. 13): < 1 everywhere RowPress acts",
		taggonHeaders(sweepTAggONs(o)), parts)), nil
}

// fig9ACs is the activation-count lattice at this scale.
func fig9ACs(o Options) []int {
	if o.Scale < 0.5 {
		return []int{1, 10, 100, 1000, 10000}
	}
	return characterize.StandardACs
}

func workFig9(o Options, spec chipgen.ModuleSpec) ([]string, error) {
	pts, err := characterize.TAggONminSweep(spec, o.charConfig(), 50, fig9ACs(o))
	if err != nil {
		return nil, err
	}
	row := []string{spec.ID, spec.Die.Name()}
	var xs, ys []float64
	for _, pt := range pts {
		m := stats.Mean(pt.Values())
		row = append(row, report.Num(m)+"us")
		if !math.IsNaN(m) {
			xs = append(xs, float64(pt.AC))
			ys = append(ys, m)
		}
	}
	return append(row, report.Num(stats.FitLogLog(xs, ys).Slope)), nil
}

func mergeFig9(o Options, specs []chipgen.ModuleSpec, parts [][]string) (*report.Doc, error) {
	headers := []string{"module", "die"}
	for _, ac := range fig9ACs(o) {
		headers = append(headers, fmt.Sprintf("AC=%d", ac))
	}
	headers = append(headers, "slope")
	return report.NewDoc(report.TableSection("Mean tAggONmin vs activation count (Fig. 9), 50°C; paper slope ≈ −1.000",
		headers, parts)), nil
}

// fig15Temps is the Fig. 15 temperature lattice.
func fig15Temps() []float64 {
	var temps []float64
	for t := 50.0; t <= 80; t += 5 {
		temps = append(temps, t)
	}
	return temps
}

func workFig15(o Options, spec chipgen.ModuleSpec) ([]string, error) {
	out, err := characterize.TAggONminTempSweep(spec, o.charConfig())
	if err != nil {
		return nil, err
	}
	row := []string{spec.ID, spec.Die.Name()}
	for _, t := range fig15Temps() {
		m := stats.Mean(out[t].Values())
		if math.IsNaN(m) {
			row = append(row, "-")
		} else {
			row = append(row, report.Num(m/1000)+"ms")
		}
	}
	return row, nil
}

func mergeFig15(o Options, specs []chipgen.ModuleSpec, parts [][]string) (*report.Doc, error) {
	headers := []string{"module", "die"}
	for _, t := range fig15Temps() {
		headers = append(headers, fmt.Sprintf("%g°C", t))
	}
	return report.NewDoc(report.TableSection("Mean tAggONmin @AC=1 vs temperature (Fig. 15)",
		headers, parts)), nil
}

// registerSingleMinusDouble shards Fig. 18 / Appendix F per module: each
// shard computes the single-vs-double gap row for every temperature, and
// the merge lays the rows out one section per temperature.
func registerSingleMinusDouble(id, title string, temps []float64) {
	work := func(o Options, spec chipgen.ModuleSpec) ([][]string, error) {
		taggons := sweepTAggONs(o)
		perTemp := make([][]string, 0, len(temps))
		for _, tempC := range temps {
			cfgS := o.charConfig()
			cfgS.Sided = characterize.SingleSided
			single, err := characterize.ACminSweep(spec, cfgS, tempC, taggons)
			if err != nil {
				return nil, err
			}
			cfgD := o.charConfig()
			cfgD.Sided = characterize.DoubleSided
			double, err := characterize.ACminSweep(spec, cfgD, tempC, taggons)
			if err != nil {
				return nil, err
			}
			row := []string{spec.ID, spec.Die.Name()}
			for i := range taggons {
				s, d := stats.Mean(single[i].ACminValues()), stats.Mean(double[i].ACminValues())
				if math.IsNaN(s) || math.IsNaN(d) {
					row = append(row, "-")
				} else {
					row = append(row, report.Num(s-d))
				}
			}
			perTemp = append(perTemp, row)
		}
		return perTemp, nil
	}
	merge := func(o Options, specs []chipgen.ModuleSpec, parts [][][]string) (*report.Doc, error) {
		headers := taggonHeaders(sweepTAggONs(o))
		doc := report.NewDoc()
		for ti, tempC := range temps {
			var rows [][]string
			for si := range specs {
				rows = append(rows, parts[si][ti])
			}
			doc.Add(report.TableSection(
				fmt.Sprintf("Single-sided minus double-sided mean ACmin at %g°C (negative: single better)", tempC),
				headers, rows))
		}
		return doc, nil
	}
	registerPerModule(id, title, work, merge)
}

// fig1Taggons are the four anchor points of Fig. 1.
var fig1Taggons = []dram.TimePS{36 * dram.Nanosecond, 7800 * dram.Nanosecond, 70200 * dram.Nanosecond, 30 * dram.Millisecond}

// fig1Sides orders the two Fig. 1 panels.
var fig1Sides = []characterize.Sidedness{characterize.SingleSided, characterize.DoubleSided}

// workFig1 sweeps one module at 80°C for both sidedness panels.
func workFig1(o Options, spec chipgen.ModuleSpec) ([][]characterize.SweepPoint, error) {
	perSided := make([][]characterize.SweepPoint, 0, len(fig1Sides))
	for _, sided := range fig1Sides {
		cfg := o.charConfig()
		cfg.Sided = sided
		pts, err := characterize.ACminSweep(spec, cfg, 80, fig1Taggons)
		if err != nil {
			return nil, err
		}
		perSided = append(perSided, pts)
	}
	return perSided, nil
}

// mergeFig1 pools the per-module sweeps per manufacturer and renders the
// ACmin distribution boxes.
func mergeFig1(o Options, specs []chipgen.ModuleSpec, parts [][][]characterize.SweepPoint) (*report.Doc, error) {
	doc := report.NewDoc()
	for si, sided := range fig1Sides {
		var rows [][]string
		perMfr := map[chipgen.Manufacturer]map[dram.TimePS][]float64{}
		for i, spec := range specs {
			mfr := spec.Die.Mfr
			if perMfr[mfr] == nil {
				perMfr[mfr] = map[dram.TimePS][]float64{}
			}
			for _, pt := range parts[i][si] {
				perMfr[mfr][pt.TAggON] = append(perMfr[mfr][pt.TAggON], pt.ACminValues()...)
			}
		}
		for _, mfr := range chipgen.AllManufacturers {
			for _, tg := range fig1Taggons {
				vs := perMfr[mfr][tg]
				rows = append(rows, []string{
					"Mfr. " + string(mfr), dram.FormatTime(tg), report.Box(stats.Describe(vs)),
				})
			}
		}
		doc.Add(report.TableSection(
			fmt.Sprintf("ACmin distributions at 80°C, %s (Fig. 1)", sided),
			[]string{"mfr", "tAggON", "ACmin distribution"}, rows))
	}
	return doc, nil
}
