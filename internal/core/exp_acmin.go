package core

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/characterize"
	"repro/internal/chipgen"
	"repro/internal/dram"
	"repro/internal/report"
	"repro/internal/stats"
)

func init() {
	register("fig1", "ACmin of RowHammer vs RowPress, single/double-sided, 80°C", runFig1)
	register("fig6", "ACmin vs tAggON, single-sided, 50°C, per die revision", sweepRunner(characterize.SingleSided, 50, false))
	register("fig7", "ACmin 7.8–70.2µs, linear scale, 50°C", runFig7)
	register("fig8", "Fraction of rows with ≥1 bitflip vs tAggON, 50°C", fractionRunner(50))
	register("fig9", "tAggONmin vs activation count, 50°C", runFig9)
	register("fig12", "Fraction of 1→0 bitflips vs tAggON", runFig12)
	register("fig13", "ACmin at 80°C normalized to 50°C", runFig13)
	register("fig14", "Fraction of rows with ≥1 bitflip vs tAggON, 80°C", fractionRunner(80))
	register("fig15", "tAggONmin @AC=1 vs temperature (50–80°C)", runFig15)
	register("fig17", "ACmin vs tAggON, double-sided, 50°C", sweepRunner(characterize.DoubleSided, 50, false))
	register("fig18", "Single-sided minus double-sided ACmin, 50°C and 80°C", runFig18)
	register("appF", "ACmin at 65°C (normalized) and 3-temperature single-double gap", runAppF)
}

// moduleSweep runs an ACmin sweep for every selected module and hands each
// to collect.
func moduleSweep(o Options, sided characterize.Sidedness, tempC float64, taggons []dram.TimePS,
	collect func(spec chipgen.ModuleSpec, pts []characterize.SweepPoint) error) error {
	specs, err := o.modules()
	if err != nil {
		return err
	}
	cfg := o.charConfig()
	cfg.Sided = sided
	for _, spec := range specs {
		pts, err := characterize.ACminSweep(spec, cfg, tempC, taggons)
		if err != nil {
			return fmt.Errorf("%s: %w", spec.ID, err)
		}
		if err := collect(spec, pts); err != nil {
			return err
		}
	}
	return nil
}

// sweepRunner renders mean/min/max ACmin per module per tAggON plus the
// log-log slope of the ≥7.8 µs tail (the paper's −1 signature).
func sweepRunner(sided characterize.Sidedness, tempC float64, linearSub bool) func(Options) (string, error) {
	return func(o Options) (string, error) {
		taggons := sweepTAggONs(o)
		headers := []string{"module", "die"}
		for _, t := range taggons {
			headers = append(headers, dram.FormatTime(t))
		}
		headers = append(headers, "slope(log-log,≥7.8us)")
		var rows [][]string
		err := moduleSweep(o, sided, tempC, taggons, func(spec chipgen.ModuleSpec, pts []characterize.SweepPoint) error {
			row := []string{spec.ID, spec.Die.Name()}
			var xs, ys []float64
			for _, pt := range pts {
				m := stats.Mean(pt.ACminValues())
				row = append(row, report.Num(m))
				if pt.TAggON >= 7800*dram.Nanosecond && !math.IsNaN(m) {
					xs = append(xs, dram.Seconds(pt.TAggON))
					ys = append(ys, m)
				}
			}
			row = append(row, report.Num(stats.FitLogLog(xs, ys).Slope))
			rows = append(rows, row)
			return nil
		})
		if err != nil {
			return "", err
		}
		title := fmt.Sprintf("Mean ACmin per module (%s, %g°C)", sided, tempC)
		return report.Section(title, report.Table(headers, rows)), nil
	}
}

func runFig7(o Options) (string, error) {
	taggons := []dram.TimePS{7800 * dram.Nanosecond, 15 * dram.Microsecond, 30 * dram.Microsecond, 70200 * dram.Nanosecond}
	headers := []string{"module", "die"}
	for _, t := range taggons {
		headers = append(headers, dram.FormatTime(t))
	}
	var rows [][]string
	err := moduleSweep(o, characterize.SingleSided, 50, taggons, func(spec chipgen.ModuleSpec, pts []characterize.SweepPoint) error {
		row := []string{spec.ID, spec.Die.Name()}
		for _, pt := range pts {
			row = append(row, report.Num(stats.Mean(pt.ACminValues())))
		}
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		return "", err
	}
	return report.Section("ACmin in the linear region (Fig. 7): note the decreasing reduction rate",
		report.Table(headers, rows)), nil
}

func fractionRunner(tempC float64) func(Options) (string, error) {
	return func(o Options) (string, error) {
		taggons := sweepTAggONs(o)
		headers := []string{"module", "die"}
		for _, t := range taggons {
			headers = append(headers, dram.FormatTime(t))
		}
		var rows [][]string
		err := moduleSweep(o, characterize.SingleSided, tempC, taggons, func(spec chipgen.ModuleSpec, pts []characterize.SweepPoint) error {
			row := []string{spec.ID, spec.Die.Name()}
			for _, pt := range pts {
				row = append(row, report.Pct(pt.FractionWithFlips()))
			}
			rows = append(rows, row)
			return nil
		})
		if err != nil {
			return "", err
		}
		title := fmt.Sprintf("Fraction of tested rows with ≥1 bitflip (%g°C)", tempC)
		return report.Section(title, report.Table(headers, rows)), nil
	}
}

func runFig12(o Options) (string, error) {
	taggons := sweepTAggONs(o)
	headers := []string{"module", "die"}
	for _, t := range taggons {
		headers = append(headers, dram.FormatTime(t))
	}
	var rows [][]string
	err := moduleSweep(o, characterize.SingleSided, 50, taggons, func(spec chipgen.ModuleSpec, pts []characterize.SweepPoint) error {
		row := []string{spec.ID, spec.Die.Name()}
		for _, pt := range pts {
			row = append(row, report.Pct(pt.FractionOneToZero()))
		}
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		return "", err
	}
	return report.Section("Fraction of 1→0 bitflips (Fig. 12): RowHammer ≈0%, RowPress ≈100% on true-cell dies",
		report.Table(headers, rows)), nil
}

func runFig13(o Options) (string, error) {
	taggons := sweepTAggONs(o)
	specs, err := o.modules()
	if err != nil {
		return "", err
	}
	cfg := o.charConfig()
	headers := []string{"module", "die"}
	for _, t := range taggons {
		headers = append(headers, dram.FormatTime(t))
	}
	var rows [][]string
	for _, spec := range specs {
		p50, err := characterize.ACminSweep(spec, cfg, 50, taggons)
		if err != nil {
			return "", err
		}
		p80, err := characterize.ACminSweep(spec, cfg, 80, taggons)
		if err != nil {
			return "", err
		}
		row := []string{spec.ID, spec.Die.Name()}
		for i := range taggons {
			a, b := stats.Mean(p80[i].ACminValues()), stats.Mean(p50[i].ACminValues())
			if math.IsNaN(a) || math.IsNaN(b) || b == 0 {
				row = append(row, "-")
			} else {
				row = append(row, report.Num(a/b))
			}
		}
		rows = append(rows, row)
	}
	return report.Section("ACmin at 80°C normalized to 50°C (Fig. 13): < 1 everywhere RowPress acts",
		report.Table(headers, rows)), nil
}

func runFig9(o Options) (string, error) {
	specs, err := o.modules()
	if err != nil {
		return "", err
	}
	cfg := o.charConfig()
	acs := characterize.StandardACs
	if o.Scale < 0.5 {
		acs = []int{1, 10, 100, 1000, 10000}
	}
	headers := []string{"module", "die"}
	for _, ac := range acs {
		headers = append(headers, fmt.Sprintf("AC=%d", ac))
	}
	headers = append(headers, "slope")
	var rows [][]string
	for _, spec := range specs {
		pts, err := characterize.TAggONminSweep(spec, cfg, 50, acs)
		if err != nil {
			return "", err
		}
		row := []string{spec.ID, spec.Die.Name()}
		var xs, ys []float64
		for _, pt := range pts {
			m := stats.Mean(pt.Values())
			row = append(row, report.Num(m)+"us")
			if !math.IsNaN(m) {
				xs = append(xs, float64(pt.AC))
				ys = append(ys, m)
			}
		}
		row = append(row, report.Num(stats.FitLogLog(xs, ys).Slope))
		rows = append(rows, row)
	}
	return report.Section("Mean tAggONmin vs activation count (Fig. 9), 50°C; paper slope ≈ −1.000",
		report.Table(headers, rows)), nil
}

func runFig15(o Options) (string, error) {
	specs, err := o.modules()
	if err != nil {
		return "", err
	}
	cfg := o.charConfig()
	var temps []float64
	for t := 50.0; t <= 80; t += 5 {
		temps = append(temps, t)
	}
	headers := []string{"module", "die"}
	for _, t := range temps {
		headers = append(headers, fmt.Sprintf("%g°C", t))
	}
	var rows [][]string
	for _, spec := range specs {
		out, err := characterize.TAggONminTempSweep(spec, cfg)
		if err != nil {
			return "", err
		}
		row := []string{spec.ID, spec.Die.Name()}
		for _, t := range temps {
			m := stats.Mean(out[t].Values())
			if math.IsNaN(m) {
				row = append(row, "-")
			} else {
				row = append(row, report.Num(m/1000)+"ms")
			}
		}
		rows = append(rows, row)
	}
	return report.Section("Mean tAggONmin @AC=1 vs temperature (Fig. 15)",
		report.Table(headers, rows)), nil
}

func runFig18(o Options) (string, error) {
	return singleMinusDouble(o, []float64{50, 80})
}

func singleMinusDouble(o Options, temps []float64) (string, error) {
	specs, err := o.modules()
	if err != nil {
		return "", err
	}
	taggons := sweepTAggONs(o)
	var sections []string
	for _, tempC := range temps {
		headers := []string{"module", "die"}
		for _, t := range taggons {
			headers = append(headers, dram.FormatTime(t))
		}
		var rows [][]string
		for _, spec := range specs {
			cfgS := o.charConfig()
			cfgS.Sided = characterize.SingleSided
			single, err := characterize.ACminSweep(spec, cfgS, tempC, taggons)
			if err != nil {
				return "", err
			}
			cfgD := o.charConfig()
			cfgD.Sided = characterize.DoubleSided
			double, err := characterize.ACminSweep(spec, cfgD, tempC, taggons)
			if err != nil {
				return "", err
			}
			row := []string{spec.ID, spec.Die.Name()}
			for i := range taggons {
				s, d := stats.Mean(single[i].ACminValues()), stats.Mean(double[i].ACminValues())
				if math.IsNaN(s) || math.IsNaN(d) {
					row = append(row, "-")
				} else {
					row = append(row, report.Num(s-d))
				}
			}
			rows = append(rows, row)
		}
		sections = append(sections, report.Section(
			fmt.Sprintf("Single-sided minus double-sided mean ACmin at %g°C (negative: single better)", tempC),
			report.Table(headers, rows)))
	}
	return strings.Join(sections, "\n"), nil
}

func runAppF(o Options) (string, error) {
	return singleMinusDouble(o, []float64{50, 65, 80})
}

func runFig1(o Options) (string, error) {
	taggons := []dram.TimePS{36 * dram.Nanosecond, 7800 * dram.Nanosecond, 70200 * dram.Nanosecond, 30 * dram.Millisecond}
	specs, err := o.modules()
	if err != nil {
		return "", err
	}
	var sections []string
	for _, sided := range []characterize.Sidedness{SingleSidedAlias, DoubleSidedAlias} {
		var rows [][]string
		perMfr := map[chipgen.Manufacturer]map[dram.TimePS][]float64{}
		cfg := o.charConfig()
		cfg.Sided = sided
		for _, spec := range specs {
			pts, err := characterize.ACminSweep(spec, cfg, 80, taggons)
			if err != nil {
				return "", err
			}
			mfr := spec.Die.Mfr
			if perMfr[mfr] == nil {
				perMfr[mfr] = map[dram.TimePS][]float64{}
			}
			for _, pt := range pts {
				perMfr[mfr][pt.TAggON] = append(perMfr[mfr][pt.TAggON], pt.ACminValues()...)
			}
		}
		for _, mfr := range chipgen.AllManufacturers {
			for _, tg := range taggons {
				vs := perMfr[mfr][tg]
				rows = append(rows, []string{
					"Mfr. " + string(mfr), dram.FormatTime(tg), report.Box(stats.Describe(vs)),
				})
			}
		}
		sections = append(sections, report.Section(
			fmt.Sprintf("ACmin distributions at 80°C, %s (Fig. 1)", sided),
			report.Table([]string{"mfr", "tAggON", "ACmin distribution"}, rows)))
	}
	return strings.Join(sections, "\n"), nil
}

// Aliases keep runFig1's loop readable.
const (
	SingleSidedAlias = characterize.SingleSided
	DoubleSidedAlias = characterize.DoubleSided
)
