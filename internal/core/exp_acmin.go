package core

import (
	"fmt"
	"math"

	"repro/internal/characterize"
	"repro/internal/chipgen"
	"repro/internal/dram"
	"repro/internal/report"
	"repro/internal/stats"
)

func init() {
	registerPerModuleSplit("fig1", "ACmin of RowHammer vs RowPress, single/double-sided, 80°C", splitFig1, mergeFig1)
	registerSweep("fig6", "ACmin vs tAggON, single-sided, 50°C, per die revision", characterize.SingleSided, 50)
	registerPerModuleSplit("fig7", "ACmin 7.8–70.2µs, linear scale, 50°C", splitFig7, mergeFig7)
	registerFraction("fig8", "Fraction of rows with ≥1 bitflip vs tAggON, 50°C", 50)
	registerPerModuleSplit("fig9", "tAggONmin vs activation count, 50°C", splitFig9, mergeFig9)
	registerPerModuleSplit("fig12", "Fraction of 1→0 bitflips vs tAggON", splitFig12, mergeFig12)
	registerPerModuleSplit("fig13", "ACmin at 80°C normalized to 50°C", splitFig13, mergeFig13)
	registerFraction("fig14", "Fraction of rows with ≥1 bitflip vs tAggON, 80°C", 80)
	registerPerModule("fig15", "tAggONmin @AC=1 vs temperature (50–80°C)", workFig15, mergeFig15)
	registerSweep("fig17", "ACmin vs tAggON, double-sided, 50°C", characterize.DoubleSided, 50)
	registerSingleMinusDouble("fig18", "Single-sided minus double-sided ACmin, 50°C and 80°C", []float64{50, 80})
	registerSingleMinusDouble("appF", "ACmin at 65°C (normalized) and 3-temperature single-double gap", []float64{50, 65, 80})
}

// taggonHeaders is the shared "module, die, <one column per tAggON>"
// header prefix of the sweep tables.
func taggonHeaders(taggons []dram.TimePS) []string {
	headers := []string{"module", "die"}
	for _, t := range taggons {
		headers = append(headers, dram.FormatTime(t))
	}
	return headers
}

// acminVariant is one (sidedness, temperature) slice of a module's
// ACmin work: experiments that sweep several panels (Fig. 1's two
// sidednesses, Fig. 13's two temperatures, Fig. 18's temperature ×
// sidedness lattice) split every panel into its own row-site sub-shards.
type acminVariant struct {
	key   string // sub-key prefix; "" for single-variant experiments
	sided characterize.Sidedness
	tempC float64
}

// acminSplit builds one module's declared split for ACmin experiments:
// the tested locations are chunked per the sizing heuristic
// (subShardTarget), each (variant, chunk) pair becomes one sub-shard
// running characterize.ACminColumns, and gather stitches the columns
// back into per-variant sweep points — bit-identical to running
// characterize.ACminSweep per variant — before handing them to finish.
func acminSplit[T any](o Options, spec chipgen.ModuleSpec, variants []acminVariant,
	taggons []dram.TimePS, finish func(perVariant [][]characterize.SweepPoint) (T, error)) split[T, [][]characterize.RowResult] {
	cfg0 := o.charConfig()
	locs := characterize.TestedLocations(cfg0.Geometry, cfg0.RowsToTest)
	chunks := chunkRanges(len(locs), subShardTarget)
	gap := len(locs) > 1

	type subOf struct{ vi, ci int }
	var keys []string
	var subs []subOf
	for vi, v := range variants {
		for ci, ch := range chunks {
			key := fmt.Sprintf("locs/%d-%d", locs[ch[0]], locs[ch[1]-1])
			if v.key != "" {
				key = v.key + "/" + key
			}
			keys = append(keys, key)
			subs = append(subs, subOf{vi, ci})
		}
	}
	return split[T, [][]characterize.RowResult]{
		keys: keys,
		work: func(j int) ([][]characterize.RowResult, error) {
			v, ch := variants[subs[j].vi], chunks[subs[j].ci]
			cfg := o.charConfig()
			cfg.Sided = v.sided
			cols, err := characterize.ACminColumns(spec, cfg, v.tempC, taggons, locs[ch[0]:ch[1]], gap)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", spec.ID, keys[j], err)
			}
			return cols, nil
		},
		gather: func(parts [][][]characterize.RowResult) (T, error) {
			perVariant := make([][]characterize.SweepPoint, len(variants))
			for vi := range variants {
				cols := make([][]characterize.RowResult, 0, len(locs))
				for j, part := range parts {
					if subs[j].vi == vi {
						cols = append(cols, part...)
					}
				}
				perVariant[vi] = characterize.AssembleACminSweep(taggons, cols)
			}
			return finish(perVariant)
		},
	}
}

// oneACminSweep adapts a single-variant finish to acminSplit.
func oneACminSweep[T any](o Options, spec chipgen.ModuleSpec, sided characterize.Sidedness, tempC float64,
	taggons []dram.TimePS, finish func(pts []characterize.SweepPoint) (T, error)) split[T, [][]characterize.RowResult] {
	return acminSplit(o, spec, []acminVariant{{"", sided, tempC}}, taggons,
		func(perVariant [][]characterize.SweepPoint) (T, error) { return finish(perVariant[0]) })
}

// registerSweep renders mean/min/max ACmin per module per tAggON plus the
// log-log slope of the ≥7.8 µs tail (the paper's −1 signature). Each
// module is one shard, split into per-row-site sub-shards.
func registerSweep(id, title string, sided characterize.Sidedness, tempC float64) {
	splitOf := func(o Options, spec chipgen.ModuleSpec) split[[]string, [][]characterize.RowResult] {
		return oneACminSweep(o, spec, sided, tempC, sweepTAggONs(o), func(pts []characterize.SweepPoint) ([]string, error) {
			row := []string{spec.ID, spec.Die.Name()}
			var xs, ys []float64
			for _, pt := range pts {
				m := stats.Mean(pt.ACminValues())
				row = append(row, report.Num(m))
				if pt.TAggON >= 7800*dram.Nanosecond && !math.IsNaN(m) {
					xs = append(xs, dram.Seconds(pt.TAggON))
					ys = append(ys, m)
				}
			}
			return append(row, report.Num(stats.FitLogLog(xs, ys).Slope)), nil
		})
	}
	merge := func(o Options, specs []chipgen.ModuleSpec, parts [][]string) (*report.Doc, error) {
		headers := append(taggonHeaders(sweepTAggONs(o)), "slope(log-log,≥7.8us)")
		title2 := fmt.Sprintf("Mean ACmin per module (%s, %g°C)", sided, tempC)
		return report.NewDoc(report.TableSection(title2, headers, parts)), nil
	}
	registerPerModuleSplit(id, title, splitOf, merge)
}

// fig7Taggons is the linear-region lattice of Fig. 7.
var fig7Taggons = []dram.TimePS{7800 * dram.Nanosecond, 15 * dram.Microsecond, 30 * dram.Microsecond, 70200 * dram.Nanosecond}

func splitFig7(o Options, spec chipgen.ModuleSpec) split[[]string, [][]characterize.RowResult] {
	return oneACminSweep(o, spec, characterize.SingleSided, 50, fig7Taggons, func(pts []characterize.SweepPoint) ([]string, error) {
		row := []string{spec.ID, spec.Die.Name()}
		for _, pt := range pts {
			row = append(row, report.Num(stats.Mean(pt.ACminValues())))
		}
		return row, nil
	})
}

func mergeFig7(o Options, specs []chipgen.ModuleSpec, parts [][]string) (*report.Doc, error) {
	return report.NewDoc(report.TableSection("ACmin in the linear region (Fig. 7): note the decreasing reduction rate",
		taggonHeaders(fig7Taggons), parts)), nil
}

func registerFraction(id, title string, tempC float64) {
	splitOf := func(o Options, spec chipgen.ModuleSpec) split[[]string, [][]characterize.RowResult] {
		return oneACminSweep(o, spec, characterize.SingleSided, tempC, sweepTAggONs(o), func(pts []characterize.SweepPoint) ([]string, error) {
			row := []string{spec.ID, spec.Die.Name()}
			for _, pt := range pts {
				row = append(row, report.Pct(pt.FractionWithFlips()))
			}
			return row, nil
		})
	}
	merge := func(o Options, specs []chipgen.ModuleSpec, parts [][]string) (*report.Doc, error) {
		title2 := fmt.Sprintf("Fraction of tested rows with ≥1 bitflip (%g°C)", tempC)
		return report.NewDoc(report.TableSection(title2, taggonHeaders(sweepTAggONs(o)), parts)), nil
	}
	registerPerModuleSplit(id, title, splitOf, merge)
}

func splitFig12(o Options, spec chipgen.ModuleSpec) split[[]string, [][]characterize.RowResult] {
	return oneACminSweep(o, spec, characterize.SingleSided, 50, sweepTAggONs(o), func(pts []characterize.SweepPoint) ([]string, error) {
		row := []string{spec.ID, spec.Die.Name()}
		for _, pt := range pts {
			row = append(row, report.Pct(pt.FractionOneToZero()))
		}
		return row, nil
	})
}

func mergeFig12(o Options, specs []chipgen.ModuleSpec, parts [][]string) (*report.Doc, error) {
	return report.NewDoc(report.TableSection("Fraction of 1→0 bitflips (Fig. 12): RowHammer ≈0%, RowPress ≈100% on true-cell dies",
		taggonHeaders(sweepTAggONs(o)), parts)), nil
}

func splitFig13(o Options, spec chipgen.ModuleSpec) split[[]string, [][]characterize.RowResult] {
	taggons := sweepTAggONs(o)
	variants := []acminVariant{
		{"t50", characterize.SingleSided, 50},
		{"t80", characterize.SingleSided, 80},
	}
	return acminSplit(o, spec, variants, taggons, func(perVariant [][]characterize.SweepPoint) ([]string, error) {
		p50, p80 := perVariant[0], perVariant[1]
		row := []string{spec.ID, spec.Die.Name()}
		for i := range taggons {
			a, b := stats.Mean(p80[i].ACminValues()), stats.Mean(p50[i].ACminValues())
			if math.IsNaN(a) || math.IsNaN(b) || b == 0 {
				row = append(row, "-")
			} else {
				row = append(row, report.Num(a/b))
			}
		}
		return row, nil
	})
}

func mergeFig13(o Options, specs []chipgen.ModuleSpec, parts [][]string) (*report.Doc, error) {
	return report.NewDoc(report.TableSection("ACmin at 80°C normalized to 50°C (Fig. 13): < 1 everywhere RowPress acts",
		taggonHeaders(sweepTAggONs(o)), parts)), nil
}

// fig9ACs is the activation-count lattice at this scale.
func fig9ACs(o Options) []int {
	if o.Scale < 0.5 {
		return []int{1, 10, 100, 1000, 10000}
	}
	return characterize.StandardACs
}

// splitFig9 is the tAggONmin counterpart of acminSplit: per-row-site
// sub-shards over characterize.TAggONminColumns.
func splitFig9(o Options, spec chipgen.ModuleSpec) split[[]string, [][]characterize.TAggONminResult] {
	acs := fig9ACs(o)
	cfg := o.charConfig()
	locs := characterize.TestedLocations(cfg.Geometry, cfg.RowsToTest)
	chunks := chunkRanges(len(locs), subShardTarget)
	gap := len(locs) > 1
	keys := make([]string, len(chunks))
	for ci, ch := range chunks {
		keys[ci] = fmt.Sprintf("locs/%d-%d", locs[ch[0]], locs[ch[1]-1])
	}
	return split[[]string, [][]characterize.TAggONminResult]{
		keys: keys,
		work: func(j int) ([][]characterize.TAggONminResult, error) {
			ch := chunks[j]
			cols, err := characterize.TAggONminColumns(spec, o.charConfig(), 50, acs, locs[ch[0]:ch[1]], gap)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", spec.ID, keys[j], err)
			}
			return cols, nil
		},
		gather: func(parts [][][]characterize.TAggONminResult) ([]string, error) {
			cols := make([][]characterize.TAggONminResult, 0, len(locs))
			for _, part := range parts {
				cols = append(cols, part...)
			}
			pts := characterize.AssembleTAggONminSweep(acs, cols)
			row := []string{spec.ID, spec.Die.Name()}
			var xs, ys []float64
			for _, pt := range pts {
				m := stats.Mean(pt.Values())
				row = append(row, report.Num(m)+"us")
				if !math.IsNaN(m) {
					xs = append(xs, float64(pt.AC))
					ys = append(ys, m)
				}
			}
			return append(row, report.Num(stats.FitLogLog(xs, ys).Slope)), nil
		},
	}
}

func mergeFig9(o Options, specs []chipgen.ModuleSpec, parts [][]string) (*report.Doc, error) {
	headers := []string{"module", "die"}
	for _, ac := range fig9ACs(o) {
		headers = append(headers, fmt.Sprintf("AC=%d", ac))
	}
	headers = append(headers, "slope")
	return report.NewDoc(report.TableSection("Mean tAggONmin vs activation count (Fig. 9), 50°C; paper slope ≈ −1.000",
		headers, parts)), nil
}

// fig15Temps is the Fig. 15 temperature lattice.
func fig15Temps() []float64 {
	var temps []float64
	for t := 50.0; t <= 80; t += 5 {
		temps = append(temps, t)
	}
	return temps
}

// workFig15 stays a monolithic per-module shard: the temperature sweep
// steps one heater rig through an absolute-time thermal schedule, so
// its searches are not independent row-site slices and must not be
// split.
func workFig15(o Options, spec chipgen.ModuleSpec) ([]string, error) {
	out, err := characterize.TAggONminTempSweep(spec, o.charConfig())
	if err != nil {
		return nil, err
	}
	row := []string{spec.ID, spec.Die.Name()}
	for _, t := range fig15Temps() {
		m := stats.Mean(out[t].Values())
		if math.IsNaN(m) {
			row = append(row, "-")
		} else {
			row = append(row, report.Num(m/1000)+"ms")
		}
	}
	return row, nil
}

func mergeFig15(o Options, specs []chipgen.ModuleSpec, parts [][]string) (*report.Doc, error) {
	headers := []string{"module", "die"}
	for _, t := range fig15Temps() {
		headers = append(headers, fmt.Sprintf("%g°C", t))
	}
	return report.NewDoc(report.TableSection("Mean tAggONmin @AC=1 vs temperature (Fig. 15)",
		headers, parts)), nil
}

// registerSingleMinusDouble shards Fig. 18 / Appendix F per module with
// (temperature × sidedness × row-site chunk) sub-shards: each shard
// computes the single-vs-double gap row for every temperature, and the
// merge lays the rows out one section per temperature.
func registerSingleMinusDouble(id, title string, temps []float64) {
	splitOf := func(o Options, spec chipgen.ModuleSpec) split[[][]string, [][]characterize.RowResult] {
		taggons := sweepTAggONs(o)
		var variants []acminVariant
		for _, tempC := range temps {
			variants = append(variants,
				acminVariant{fmt.Sprintf("t%g/single", tempC), characterize.SingleSided, tempC},
				acminVariant{fmt.Sprintf("t%g/double", tempC), characterize.DoubleSided, tempC},
			)
		}
		return acminSplit(o, spec, variants, taggons, func(perVariant [][]characterize.SweepPoint) ([][]string, error) {
			perTemp := make([][]string, 0, len(temps))
			for ti := range temps {
				single, double := perVariant[2*ti], perVariant[2*ti+1]
				row := []string{spec.ID, spec.Die.Name()}
				for i := range taggons {
					s, d := stats.Mean(single[i].ACminValues()), stats.Mean(double[i].ACminValues())
					if math.IsNaN(s) || math.IsNaN(d) {
						row = append(row, "-")
					} else {
						row = append(row, report.Num(s-d))
					}
				}
				perTemp = append(perTemp, row)
			}
			return perTemp, nil
		})
	}
	merge := func(o Options, specs []chipgen.ModuleSpec, parts [][][]string) (*report.Doc, error) {
		headers := taggonHeaders(sweepTAggONs(o))
		doc := report.NewDoc()
		for ti, tempC := range temps {
			var rows [][]string
			for si := range specs {
				rows = append(rows, parts[si][ti])
			}
			doc.Add(report.TableSection(
				fmt.Sprintf("Single-sided minus double-sided mean ACmin at %g°C (negative: single better)", tempC),
				headers, rows))
		}
		return doc, nil
	}
	registerPerModuleSplit(id, title, splitOf, merge)
}

// fig1Taggons are the four anchor points of Fig. 1.
var fig1Taggons = []dram.TimePS{36 * dram.Nanosecond, 7800 * dram.Nanosecond, 70200 * dram.Nanosecond, 30 * dram.Millisecond}

// fig1Sides orders the two Fig. 1 panels.
var fig1Sides = []characterize.Sidedness{characterize.SingleSided, characterize.DoubleSided}

// splitFig1 sweeps one module at 80°C for both sidedness panels, one
// sub-shard per (panel, row-site chunk).
func splitFig1(o Options, spec chipgen.ModuleSpec) split[[][]characterize.SweepPoint, [][]characterize.RowResult] {
	variants := []acminVariant{
		{"single", characterize.SingleSided, 80},
		{"double", characterize.DoubleSided, 80},
	}
	return acminSplit(o, spec, variants, fig1Taggons,
		func(perVariant [][]characterize.SweepPoint) ([][]characterize.SweepPoint, error) {
			return perVariant, nil
		})
}

// mergeFig1 pools the per-module sweeps per manufacturer and renders the
// ACmin distribution boxes.
func mergeFig1(o Options, specs []chipgen.ModuleSpec, parts [][][]characterize.SweepPoint) (*report.Doc, error) {
	doc := report.NewDoc()
	for si, sided := range fig1Sides {
		var rows [][]string
		perMfr := map[chipgen.Manufacturer]map[dram.TimePS][]float64{}
		for i, spec := range specs {
			mfr := spec.Die.Mfr
			if perMfr[mfr] == nil {
				perMfr[mfr] = map[dram.TimePS][]float64{}
			}
			for _, pt := range parts[i][si] {
				perMfr[mfr][pt.TAggON] = append(perMfr[mfr][pt.TAggON], pt.ACminValues()...)
			}
		}
		for _, mfr := range chipgen.AllManufacturers {
			for _, tg := range fig1Taggons {
				vs := perMfr[mfr][tg]
				rows = append(rows, []string{
					"Mfr. " + string(mfr), dram.FormatTime(tg), report.Box(stats.Describe(vs)),
				})
			}
		}
		doc.Add(report.TableSection(
			fmt.Sprintf("ACmin distributions at 80°C, %s (Fig. 1)", sided),
			[]string{"mfr", "tAggON", "ACmin distribution"}, rows))
	}
	return doc, nil
}
