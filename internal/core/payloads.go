package core

import (
	"repro/internal/characterize"
	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/simperf"
)

// Shard payloads cross the engine as `any`; the persistent disk-cache
// tier gob-encodes them, and gob requires every concrete type carried
// inside an interface to be registered. This registry covers every
// payload type the experiment work functions return — forget one and
// that experiment silently degrades to memory-only caching (the disk
// tier counts the skip in its stats).
func init() {
	engine.RegisterPayloadType([]string(nil))                         // one table row per module
	engine.RegisterPayloadType([][]string(nil))                       // row blocks / per-temperature rows
	engine.RegisterPayloadType([][]characterize.SweepPoint(nil))      // fig1/summary raw sweeps
	engine.RegisterPayloadType([][]characterize.RowResult(nil))       // ACmin sub-shard columns
	engine.RegisterPayloadType([][]characterize.TAggONminResult(nil)) // tAggONmin sub-shard columns
	engine.RegisterPayloadType([]float64(nil))                        // fig40/fig41 normalized series
	engine.RegisterPayloadType(simperf.MinOpenRowRow{})               // fig38/fig39
	engine.RegisterPayloadType(scenario.Result{})                     // scenario grid and mitigation cells
	engine.RegisterPayloadType(scenario.SiteResult{})                 // scenario per-site sub-shards
	engine.RegisterPayloadType(report.DocSection{})                   // section-shard experiments (fig19/20/22, appC, table3)
	engine.RegisterPayloadType(&report.Doc{})                         // monolithic experiments cache the whole doc
}
