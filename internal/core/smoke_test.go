package core

import (
	"strings"
	"testing"

	"repro/internal/report"
)

func TestSmokeAllExperiments(t *testing.T) {
	o := Options{Scale: 0.05, Seed: 1, Modules: []string{"S0", "S3", "M3"}}
	for _, e := range List() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			doc, err := e.Run(o)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(doc.Sections) == 0 {
				t.Fatalf("%s: document has no sections", e.ID)
			}
			if doc.Experiment != e.ID || doc.Title != e.Title || len(doc.Params) == 0 {
				t.Fatalf("%s: metadata not stamped: %+v", e.ID, doc)
			}
			if !strings.Contains(report.Text(doc), "==") {
				t.Fatalf("%s: text rendering lacks section header", e.ID)
			}
		})
	}
}
