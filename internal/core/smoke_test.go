package core

import (
	"strings"
	"testing"
)

func TestSmokeAllExperiments(t *testing.T) {
	o := Options{Scale: 0.05, Seed: 1, Modules: []string{"S0", "S3", "M3"}}
	for _, e := range List() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(o)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if !strings.Contains(out, "==") {
				t.Fatalf("%s: output lacks section header", e.ID)
			}
		})
	}
}
