package core

import (
	"fmt"

	"repro/internal/chipgen"
	"repro/internal/engine"
	"repro/internal/report"
)

// This file holds the typed shard-plan builders experiments register
// through. Shard payloads cross the engine as `any`; the builders here
// recover the concrete type on the merge side so experiment code stays
// typed end to end. Payloads are cached and shared across runs — in
// memory and, when a disk tier is attached, across processes (every
// payload type is gob-registered in payloads.go) — so work functions
// must return fresh values and merges must not mutate them.

// typedShards converts n typed work units into engine shards plus a merge
// adapter that hands the typed payload slice to render.
func typedShards[T any](keys []string, work func(i int) (T, error),
	render func(parts []T) (*report.Doc, error)) engine.Plan {
	shards := make([]engine.Shard, len(keys))
	for i, key := range keys {
		shards[i] = engine.Shard{Key: key, Run: func() (any, error) { return work(i) }}
	}
	return engine.Plan{
		Shards: shards,
		Merge: func(parts []any) (*report.Doc, error) {
			ts := make([]T, len(parts))
			for i, p := range parts {
				t, ok := p.(T)
				if !ok {
					return nil, fmt.Errorf("core: shard %q payload is %T, want %T", keys[i], p, t)
				}
				ts[i] = t
			}
			return render(ts)
		},
	}
}

// registerPerModule registers an experiment sharded one unit per selected
// module: work computes the per-module slice of the sweep, merge
// reassembles the report in module order (so output is byte-identical to
// the serial path).
func registerPerModule[T any](id, title string,
	work func(o Options, spec chipgen.ModuleSpec) (T, error),
	merge func(o Options, specs []chipgen.ModuleSpec, parts []T) (*report.Doc, error)) {
	registerPlan(id, title, func(o Options) (engine.Plan, error) {
		specs, err := o.modules()
		if err != nil {
			return engine.Plan{}, err
		}
		keys := make([]string, len(specs))
		for i, spec := range specs {
			keys[i] = "module/" + spec.ID
		}
		return typedShards(keys,
			func(i int) (T, error) { return work(o, specs[i]) },
			func(parts []T) (*report.Doc, error) { return merge(o, specs, parts) },
		), nil
	})
}

// registerKeyed registers an experiment sharded over an arbitrary
// deterministic key lattice (data-pattern studies per die×temperature,
// simperf studies per mitigation kind or workload).
func registerKeyed[T any](id, title string,
	keys func(o Options) ([]string, error),
	work func(o Options, i int, key string) (T, error),
	merge func(o Options, parts []T) (*report.Doc, error)) {
	registerPlan(id, title, func(o Options) (engine.Plan, error) {
		ks, err := keys(o)
		if err != nil {
			return engine.Plan{}, err
		}
		return typedShards(ks,
			func(i int) (T, error) { return work(o, i, ks[i]) },
			func(parts []T) (*report.Doc, error) { return merge(o, parts) },
		), nil
	})
}

// staticKeys adapts a fixed key lattice to registerKeyed.
func staticKeys(ks ...string) func(Options) ([]string, error) {
	return func(Options) ([]string, error) { return ks, nil }
}
