package core

import (
	"fmt"

	"repro/internal/chipgen"
	"repro/internal/engine"
	"repro/internal/report"
)

// This file holds the typed shard-plan builders experiments register
// through. Shard payloads cross the engine as `any`; the builders here
// recover the concrete type on the merge side so experiment code stays
// typed end to end. Payloads are cached and shared across runs — in
// memory and, when a disk tier is attached, across processes (every
// payload type is gob-registered in payloads.go) — so work functions
// must return fresh values and merges must not mutate them.

// typedShards converts n typed work units into engine shards plus a merge
// adapter that hands the typed payload slice to render.
func typedShards[T any](keys []string, work func(i int) (T, error),
	render func(parts []T) (*report.Doc, error)) engine.Plan {
	shards := make([]engine.Shard, len(keys))
	for i, key := range keys {
		shards[i] = engine.Shard{Key: key, Run: func() (any, error) { return work(i) }}
	}
	return engine.Plan{Shards: shards, Merge: typedMerge(keys, render)}
}

// typedMerge adapts a typed render into the engine's merge signature.
func typedMerge[T any](keys []string, render func(parts []T) (*report.Doc, error)) func([]any) (*report.Doc, error) {
	return func(parts []any) (*report.Doc, error) {
		ts := make([]T, len(parts))
		for i, p := range parts {
			t, ok := p.(T)
			if !ok {
				return nil, fmt.Errorf("core: shard %q payload is %T, want %T", keys[i], p, t)
			}
			ts[i] = t
		}
		return render(ts)
	}
}

// split declares one work unit's deterministic second-level sharding:
// keys name the sub-shards (unique within the unit, stable across equal
// runs), work computes sub-shard j, and gather folds the sub payloads —
// always in key order, whatever order they completed in — into the
// unit's payload. Sub payloads cross the engine as `any` and are cached
// like unit payloads, so their types must be gob-registered in
// payloads.go and treated as immutable once returned.
type split[T, S any] struct {
	keys   []string
	work   func(j int) (S, error)
	gather func(subs []S) (T, error)
}

// typedSplitShards is typedShards with a second level of sharding: each
// unit declares sub-shards that execute as independent cache-keyed work
// on the pool, gathered two-level (sub payloads → unit part → doc).
// Warm runs hit the cache at the unit level and never touch the subs.
func typedSplitShards[T, S any](keys []string, splitOf func(i int) split[T, S],
	render func(parts []T) (*report.Doc, error)) engine.Plan {
	shards := make([]engine.Shard, len(keys))
	for i, key := range keys {
		sp := splitOf(i)
		subs := make([]engine.SubShard, len(sp.keys))
		for j, sk := range sp.keys {
			subs[j] = engine.SubShard{Key: sk, Run: func() (any, error) { return sp.work(j) }}
		}
		shards[i] = engine.Shard{
			Key:  key,
			Subs: subs,
			Gather: func(parts []any) (any, error) {
				ss := make([]S, len(parts))
				for j, p := range parts {
					s, ok := p.(S)
					if !ok {
						return nil, fmt.Errorf("core: sub-shard %q payload is %T, want %T", sp.keys[j], p, s)
					}
					ss[j] = s
				}
				return sp.gather(ss)
			},
		}
	}
	return engine.Plan{Shards: shards, Merge: typedMerge(keys, render)}
}

// registerPerModule registers an experiment sharded one unit per selected
// module: work computes the per-module slice of the sweep, merge
// reassembles the report in module order (so output is byte-identical to
// the serial path).
func registerPerModule[T any](id, title string,
	work func(o Options, spec chipgen.ModuleSpec) (T, error),
	merge func(o Options, specs []chipgen.ModuleSpec, parts []T) (*report.Doc, error)) {
	registerPlan(id, title, func(o Options) (engine.Plan, error) {
		specs, err := o.modules()
		if err != nil {
			return engine.Plan{}, err
		}
		keys := make([]string, len(specs))
		for i, spec := range specs {
			keys[i] = "module/" + spec.ID
		}
		return typedShards(keys,
			func(i int) (T, error) { return work(o, specs[i]) },
			func(parts []T) (*report.Doc, error) { return merge(o, specs, parts) },
		), nil
	})
}

// registerPerModuleSplit is registerPerModule with a declared per-unit
// split: splitOf decomposes one module's work into sub-shards (per row
// site, data pattern, or search — see the sizing heuristic at
// subShardTarget) and gathers their payloads into the module part.
func registerPerModuleSplit[T, S any](id, title string,
	splitOf func(o Options, spec chipgen.ModuleSpec) split[T, S],
	merge func(o Options, specs []chipgen.ModuleSpec, parts []T) (*report.Doc, error)) {
	registerPlan(id, title, func(o Options) (engine.Plan, error) {
		specs, err := o.modules()
		if err != nil {
			return engine.Plan{}, err
		}
		keys := make([]string, len(specs))
		for i, spec := range specs {
			keys[i] = "module/" + spec.ID
		}
		return typedSplitShards(keys,
			func(i int) split[T, S] { return splitOf(o, specs[i]) },
			func(parts []T) (*report.Doc, error) { return merge(o, specs, parts) },
		), nil
	})
}

// subShardTarget is the sizing heuristic for declared splits: a unit
// aims for at most this many sub-shards, chunking its site list so each
// sub-shard still amortizes its bench setup over at least one full
// search group. 16 keeps an 8-worker pool busy with 2× scheduling
// headroom while bounding per-unit cache entries and setup overhead at
// paper scale (48+ sites per unit).
const subShardTarget = 16

// chunkRanges partitions n items into at most target contiguous chunks,
// returned as [lo, hi) index pairs, each holding ⌊n/c⌋ or ⌈n/c⌉ items.
func chunkRanges(n, target int) [][2]int {
	if n <= 0 {
		return nil
	}
	c := target
	if c < 1 {
		c = 1
	}
	if c > n {
		c = n
	}
	out := make([][2]int, 0, c)
	for i := 0; i < c; i++ {
		lo, hi := i*n/c, (i+1)*n/c
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// registerKeyed registers an experiment sharded over an arbitrary
// deterministic key lattice (data-pattern studies per die×temperature,
// simperf studies per mitigation kind or workload).
func registerKeyed[T any](id, title string,
	keys func(o Options) ([]string, error),
	work func(o Options, i int, key string) (T, error),
	merge func(o Options, parts []T) (*report.Doc, error)) {
	registerPlan(id, title, func(o Options) (engine.Plan, error) {
		ks, err := keys(o)
		if err != nil {
			return engine.Plan{}, err
		}
		return typedShards(ks,
			func(i int) (T, error) { return work(o, i, ks[i]) },
			func(parts []T) (*report.Doc, error) { return merge(o, parts) },
		), nil
	})
}

// registerKeyedSplit is registerKeyed with a declared per-unit split.
// splitOf may not fail: the key builder runs first in plan construction
// and performs the same resolution, so any error surfaces there.
func registerKeyedSplit[T, S any](id, title string,
	keys func(o Options) ([]string, error),
	splitOf func(o Options, i int, key string) split[T, S],
	merge func(o Options, parts []T) (*report.Doc, error)) {
	registerPlan(id, title, func(o Options) (engine.Plan, error) {
		ks, err := keys(o)
		if err != nil {
			return engine.Plan{}, err
		}
		return typedSplitShards(ks,
			func(i int) split[T, S] { return splitOf(o, i, ks[i]) },
			func(parts []T) (*report.Doc, error) { return merge(o, parts) },
		), nil
	})
}

// staticKeys adapts a fixed key lattice to registerKeyed.
func staticKeys(ks ...string) func(Options) ([]string, error) {
	return func(Options) ([]string, error) { return ks, nil }
}
