package core

import (
	"math"

	"repro/internal/characterize"
	"repro/internal/chipgen"
	"repro/internal/dram"
	"repro/internal/report"
	"repro/internal/stats"
)

// fmtAvgMin renders the Table 5 "mean (min)" cell.
func fmtAvgMin(vs []float64, scale float64, unit string) string {
	if len(vs) == 0 {
		return "No Bitflip"
	}
	return report.Num(stats.Mean(vs)/scale) + " (" + report.Num(stats.Min(vs)/scale) + ")" + unit
}

// workTable5 regenerates one module's Table 5 summary row: mean (min)
// ACmin at the representative tAggON values at 50 °C and 80 °C, and mean
// (min) tAggONmin at AC = 1.
func workTable5(o Options, spec chipgen.ModuleSpec) ([]string, error) {
	cfg := o.charConfig()
	taggons := []dram.TimePS{36 * dram.Nanosecond, 7800 * dram.Nanosecond, 70200 * dram.Nanosecond}
	p50, err := characterize.ACminSweep(spec, cfg, 50, taggons)
	if err != nil {
		return nil, err
	}
	p80, err := characterize.ACminSweep(spec, cfg, 80, taggons[1:2])
	if err != nil {
		return nil, err
	}
	t50, err := characterize.TAggONminSweep(spec, cfg, 50, []int{1})
	if err != nil {
		return nil, err
	}
	t80, err := characterize.TAggONminSweep(spec, cfg, 80, []int{1})
	if err != nil {
		return nil, err
	}
	return []string{
		spec.ID, spec.Die.Name(),
		fmtAvgMin(p50[0].ACminValues(), 1, ""),
		fmtAvgMin(p50[1].ACminValues(), 1, ""),
		fmtAvgMin(p50[2].ACminValues(), 1, ""),
		fmtAvgMin(p80[0].ACminValues(), 1, ""),
		fmtAvgMin(t50[0].Values(), 1000, "ms"),
		fmtAvgMin(t80[0].Values(), 1000, "ms"),
	}, nil
}

func mergeTable5(o Options, specs []chipgen.ModuleSpec, parts [][]string) (*report.Doc, error) {
	headers := []string{"module", "die",
		"ACmin@36ns 50C", "ACmin@7.8us 50C", "ACmin@70.2us 50C",
		"ACmin@7.8us 80C", "tAggONmin@AC=1 50C", "tAggONmin@AC=1 80C"}
	return report.NewDoc(report.TableSection("Per-module vulnerability summary, mean (min) — Table 5",
		headers, parts)), nil
}

// workTable6 regenerates one module's Table 6 rows: the maximum BER at
// the representative tAggON values with the maximum activation count in
// the budget, single- and double-sided.
func workTable6(o Options, spec chipgen.ModuleSpec) ([][]string, error) {
	taggons := []dram.TimePS{36 * dram.Nanosecond, 7800 * dram.Nanosecond, 70200 * dram.Nanosecond}
	var rows [][]string
	for _, sided := range []characterize.Sidedness{characterize.SingleSided, characterize.DoubleSided} {
		cfg := o.charConfig()
		cfg.Sided = sided
		locs := characterize.TestedLocations(cfg.Geometry, min(cfg.RowsToTest, 8))
		grid, err := characterize.BERGrid(spec, cfg, 50, taggons, locs)
		if err != nil {
			return nil, err
		}
		row := []string{spec.ID, spec.Die.Name(), sided.String()}
		for ti := range taggons {
			maxBER := math.Inf(-1)
			for _, r := range grid[ti] {
				if r.MaxBER > maxBER {
					maxBER = r.MaxBER
				}
			}
			if maxBER <= 0 {
				row = append(row, "No Bitflip")
			} else {
				row = append(row, report.Pct(maxBER))
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func mergeTable6(o Options, specs []chipgen.ModuleSpec, parts [][][]string) (*report.Doc, error) {
	headers := []string{"module", "die", "sided", "BER@36ns", "BER@7.8us", "BER@70.2us"}
	return report.NewDoc(report.TableSection("Maximum bit error rate at max activation count — Table 6",
		headers, flattenRows(parts))), nil
}
