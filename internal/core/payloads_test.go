package core

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bender"
	"repro/internal/characterize"
	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/simperf"
)

// payloadSamples holds one representative non-zero value per type
// registered in payloads.go. The fabric wire format and the disk tier
// share the same gob envelope (engine.EncodePayload/DecodePayload), so
// a type that fails this round-trip would break both remote serving
// and warm starts. Values deliberately populate every field — gob omits
// zero fields, and an asymmetry would hide behind zeros.
var payloadSamples = []any{
	[]string{"S0", "row", "3"},
	[][]string{{"a", "b"}, {"c"}},
	[][]characterize.SweepPoint{{{
		TAggON: 7500,
		Results: []characterize.RowResult{{
			Loc: 3, ACmin: 120, Found: true,
			Flips: []bender.Flip{{LogicalRow: 3, Byte: 7, Bit: 2, From: true}},
		}},
	}}},
	[][]characterize.RowResult{{{Loc: 1, ACmin: 64, Found: true}}},
	[][]characterize.TAggONminResult{{{Loc: 2, TAggONmin: 36000, Found: true}}},
	[]float64{0.25, 1.5, -3},
	simperf.MinOpenRowRow{Workload: "mix-a", NormalizedIPC: 0.97, ACTIncrease: 1.8},
	scenario.Result{
		Module: "S0", Scenario: "single-sided", Mitigation: "trr",
		Sites: 4, BudgetActs: 5000, TimeCapped: true,
		BitFlips: 9, SitesWithFlips: 2, PreventiveRefreshes: 17, RefreshOverhead: 0.4,
		MinActs: 1200, MinTime: 9_000_000, FlipFound: true,
	},
	scenario.SiteResult{
		AggActs: 5000, BitFlips: 3, PreventiveRefreshes: 5,
		TimeCapped: true, MinActs: 800, MinTime: 4_000_000,
	},
	report.DocSection{
		Title:    "t",
		Table:    &report.TableData{Headers: []string{"h"}, Rows: [][]string{{"v"}}},
		Notes:    []string{"n"},
		Findings: []string{"f"},
		Series:   &report.Series{XLabel: "x", YLabel: "y", Points: []report.SeriesPoint{{X: 1, Y: 2}}},
	},
	&report.Doc{
		Experiment: "fig6", Title: "T",
		Params:   []report.Param{{Key: "scale", Value: "0.1"}},
		Sections: []report.DocSection{{Title: "s", Findings: []string{"ok"}}},
	},
}

// TestPayloadRoundTrip pushes every registered payload type through the
// shared gob envelope and asserts byte-for-byte value equality after
// decode — the property the disk tier and the fabric /v1/shard response
// body both rely on.
func TestPayloadRoundTrip(t *testing.T) {
	for _, v := range payloadSamples {
		name := fmt.Sprintf("%T", v)
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := engine.EncodePayload(&buf, v); err != nil {
				t.Fatalf("encode %s: %v", name, err)
			}
			got, err := engine.DecodePayload(&buf)
			if err != nil {
				t.Fatalf("decode %s: %v", name, err)
			}
			if !reflect.DeepEqual(got, v) {
				t.Fatalf("round trip changed the value:\n got %#v\nwant %#v", got, v)
			}
		})
	}
}

// TestPayloadSamplesCoverRegistry pins the sample list to the registry
// source: a new RegisterPayloadType call in payloads.go without a
// matching round-trip sample (or vice versa) fails here, so wire-format
// coverage cannot silently fall behind the registry.
func TestPayloadSamplesCoverRegistry(t *testing.T) {
	src, err := os.ReadFile("payloads.go")
	if err != nil {
		t.Fatalf("read payloads.go: %v", err)
	}
	registered := strings.Count(string(src), "engine.RegisterPayloadType(")
	if registered != len(payloadSamples) {
		t.Fatalf("payloads.go registers %d types but payloadSamples has %d — add a round-trip sample for every registered payload type",
			registered, len(payloadSamples))
	}
	// Every sample's concrete type must be distinct, or the count check
	// could pass while a registered type goes uncovered.
	seen := map[string]bool{}
	for _, v := range payloadSamples {
		k := fmt.Sprintf("%T", v)
		if seen[k] {
			t.Fatalf("duplicate payload sample type %s", k)
		}
		seen[k] = true
	}
}
