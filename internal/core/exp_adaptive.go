package core

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/dram"
	"repro/internal/report"
)

func init() {
	register("sec63", "Adaptive row-buffer policies facilitate RowPress (§6.3 conclusion)", runSec63)
}

// runSec63 evaluates the paper's closing claim of §6: memory controllers
// with adaptive row-buffer management (keeping rows open in anticipation
// of reuse) hand the attacker extra tAggON for free. The same program, at
// the same NUM_READS, flips more bits when the MC speculatively holds the
// row open after the last read — and the attacker saves the cache-flush
// work that extra reads would have cost.
func runSec63(o Options) (*report.Doc, error) {
	headers := []string{"MC policy", "NUM_READS", "effective tAggON", "bitflips", "rows w/ flips"}
	var rows [][]string
	for _, hold := range []int{0, 250, 500} {
		sys, err := demoSystem(o)
		if err != nil {
			return nil, err
		}
		cfg := attackConfig(o)
		cfg.NumAggrActs = 4
		cfg.NumReads = 8 // half the non-adaptive peak's reads
		cfg.AdaptiveHoldNs = hold
		r, err := attack.Run(sys, cfg)
		if err != nil {
			return nil, err
		}
		policy := "open-row (no speculation)"
		if hold > 0 {
			policy = fmt.Sprintf("adaptive (+%dns hold)", hold)
		}
		rows = append(rows, []string{
			policy, fmt.Sprint(cfg.NumReads), dram.FormatTime(r.TAggON),
			fmt.Sprint(r.Bitflips), fmt.Sprint(r.RowsWithFlips),
		})
	}
	return report.NewDoc(report.TableSection("Adaptive row policies hand the attacker tAggON (§6.3)",
		headers, rows)), nil
}
