package core

import (
	"fmt"
	"math"

	"repro/internal/characterize"
	"repro/internal/chipgen"
	"repro/internal/dram"
	"repro/internal/report"
	"repro/internal/stats"
)

func init() {
	registerPerModule("summary", "Headline RowPress statistics (abstract / Obsv. 1-2-9)",
		workSummary, mergeSummary)
}

// summaryTemps and summaryTaggons fix the headline lattice: base (tRAS),
// tREFI, 9×tREFI, and the 30 ms extreme, at the two temperatures.
var summaryTemps = []float64{50, 80}
var summaryTaggons = []dram.TimePS{36 * dram.Nanosecond, 7800 * dram.Nanosecond, 70200 * dram.Nanosecond, 30 * dram.Millisecond}

// workSummary sweeps one module at both headline temperatures; the
// aggregation across modules happens in the merge.
func workSummary(o Options, spec chipgen.ModuleSpec) ([][]characterize.SweepPoint, error) {
	cfg := o.charConfig()
	perTemp := make([][]characterize.SweepPoint, 0, len(summaryTemps))
	for _, tempC := range summaryTemps {
		sweep, err := characterize.ACminSweep(spec, cfg, tempC, summaryTaggons)
		if err != nil {
			return nil, err
		}
		perTemp = append(perTemp, sweep)
	}
	return perTemp, nil
}

// mergeSummary computes the paper's headline aggregate statistics across
// the selected modules:
//
//   - ACmin reduction from tAggON = tRAS to tREFI and 9×tREFI at 50 °C
//     (paper: 21× avg / up to 59×, and 190× avg / up to 537×);
//   - the same at 80 °C (paper: 48× avg / up to 122×, 438× / up to 1106×);
//   - the fraction of flipping rows with ACmin = 1 at tAggON = 30 ms
//     (paper: 13.1 % at 50 °C, 82.8 % at 80 °C).
func mergeSummary(o Options, specs []chipgen.ModuleSpec, parts [][][]characterize.SweepPoint) (*report.Doc, error) {
	type agg struct {
		red78, red702 []float64 // per-module mean reduction factors
		maxRed78      float64
		maxRed702     float64
		ac1, flipped  int
	}
	byTemp := map[float64]*agg{50: {}, 80: {}}
	for ti, tempC := range summaryTemps {
		a := byTemp[tempC]
		for si := range specs {
			sweep := parts[si][ti]
			base := stats.Mean(sweep[0].ACminValues())
			m78 := stats.Mean(sweep[1].ACminValues())
			m702 := stats.Mean(sweep[2].ACminValues())
			if !math.IsNaN(base) && !math.IsNaN(m78) && m78 > 0 {
				r := base / m78
				a.red78 = append(a.red78, r)
				// Per-row maximum reduction within this module.
				if mn := stats.Min(sweep[1].ACminValues()); mn > 0 {
					if r := base / mn; r > a.maxRed78 {
						a.maxRed78 = r
					}
				}
			}
			if !math.IsNaN(base) && !math.IsNaN(m702) && m702 > 0 {
				a.red702 = append(a.red702, base/m702)
				if mn := stats.Min(sweep[2].ACminValues()); mn > 0 {
					if r := base / mn; r > a.maxRed702 {
						a.maxRed702 = r
					}
				}
			}
			// "Rows with ACmin = 1 at 30 ms" is quoted relative to the
			// vulnerable row population (rows that flip at all): at 30 ms
			// the 60 ms budget fits only one activation, so every row that
			// flips there flips with AC = 1.
			for i, r := range sweep[3].Results {
				vulnerable := r.Found || sweep[2].Results[i].Found
				if vulnerable {
					a.flipped++
					if r.Found && r.ACmin == 1 {
						a.ac1++
					}
				}
			}
		}
	}

	var rows [][]string
	for _, tempC := range summaryTemps {
		a := byTemp[tempC]
		frac := 0.0
		if a.flipped > 0 {
			frac = float64(a.ac1) / float64(a.flipped)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%g°C", tempC),
			report.Num(stats.Mean(a.red78)) + "x (max " + report.Num(a.maxRed78) + "x)",
			report.Num(stats.Mean(a.red702)) + "x (max " + report.Num(a.maxRed702) + "x)",
			report.Pct(frac),
		})
	}
	return report.NewDoc(report.TableSection("Headline RowPress amplification statistics",
		[]string{"temp", "ACmin reduction @7.8us", "ACmin reduction @70.2us", "rows w/ ACmin=1 @30ms"}, rows,
		"paper: 50°C -> 21x avg (59x max), 190x (537x), 13.1%;  80°C -> 48x (122x), 438x (1106x), 82.8%")), nil
}
