package core

import (
	"fmt"
	"sort"

	"repro/internal/dram"
	"repro/internal/report"
	"repro/internal/simperf"
	"repro/internal/stats"
	"repro/internal/workload"
)

// mitigationKinds orders the two mechanisms the paper adapts; simperf
// shards are keyed per kind so the Graphene and PARA studies run
// concurrently.
var mitigationKinds = []simperf.MitigationKind{simperf.KindGraphene, simperf.KindPARA}

func init() {
	registerKeyed("table3", "Graphene-RP and PARA-RP performance overhead vs tmro",
		staticKeys("kind/Graphene", "kind/PARA"), workTable3, joinSections)
	registerMinOpenRow("fig38", "Max per-row ACT-count increase under minimally-open-row",
		"Max increase in per-row ACT count per tREFW, minimally-open-row vs open-row (Fig. 38)",
		[]string{"workload", "ACT increase"},
		func(r simperf.MinOpenRowRow) string { return report.Num(r.ACTIncrease) + "x" })
	registerMinOpenRow("fig39", "Normalized IPC under minimally-open-row",
		"IPC under minimally-open-row, normalized to open-row (Fig. 39; paper min 0.66)",
		[]string{"workload", "normalized IPC"},
		func(r simperf.MinOpenRowRow) string { return report.Num(r.NormalizedIPC) })
	registerKeyed("fig40", "Per-workload single-core IPC of adapted mitigations vs tmro",
		fig40Keys, workFig40, mergeFig40)
	registerKeyed("fig41", "4-core weighted speedup of adapted mitigations (Table 9 groups)",
		fig41Keys, workFig41, mergeFig41)
}

func perfConfig(o Options) simperf.Config {
	cfg := simperf.DefaultConfig()
	cfg.InstrPerCore = o.scaled(cfg.InstrPerCore, 100_000)
	return cfg
}

func fourCoreMixes(o Options, perGroup int) [][]workload.Profile {
	groups := simperf.HeterogeneousMixes(perGroup, o.Seed)
	var mixes [][]workload.Profile
	for _, g := range mixGroupNames(groups) {
		mixes = append(mixes, groups[g]...)
	}
	return mixes
}

// mixGroupNames orders the Appendix D category names deterministically.
// Audited for the maprange contract: the raw key iteration below only
// collects names into a local slice, which is sorted before anything
// consumes it, so fourCoreMixes flattens groups in a fixed order
// regardless of map layout — table3/fig40/fig41 rows never depend on
// iteration order.
func mixGroupNames(groups map[string][][]workload.Profile) []string {
	var names []string
	for g := range groups {
		names = append(names, g)
	}
	sort.Strings(names)
	return names
}

// workTable3 runs the full overhead study for one mitigation kind.
func workTable3(o Options, i int, key string) (report.DocSection, error) {
	kind := mitigationKinds[i]
	cfg := perfConfig(o)
	mixes := fourCoreMixes(o, o.scaled(2, 1))
	rows, err := simperf.MitigationStudy(kind, cfg, mixes, o.Seed)
	if err != nil {
		return report.DocSection{}, err
	}
	headers := []string{"tmro", "T'RH", "avg overhead", "max overhead"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			dram.FormatTime(r.TMro), fmt.Sprint(r.TPrime),
			report.Pct(r.AvgOverhead), report.Pct(r.MaxOverhead),
		})
	}
	return report.TableSection(
		fmt.Sprintf("%s-RP overhead over %s (Table 3)", kind, kind),
		headers, out), nil
}

// minOpenProfiles is the Appendix D.1 workload set at this scale.
func minOpenProfiles(o Options) []workload.Profile {
	profiles := workload.Heavy()
	if o.Scale < 0.5 {
		profiles = profiles[:min(len(profiles), 6)]
	}
	return profiles
}

// registerMinOpenRow shards the minimally-open-row comparison one
// workload per shard; fig38 and fig39 are two renderings of the same
// study.
func registerMinOpenRow(id, title, section string, headers []string,
	cell func(simperf.MinOpenRowRow) string) {
	keys := func(o Options) ([]string, error) {
		var ks []string
		for _, p := range minOpenProfiles(o) {
			ks = append(ks, "workload/"+p.Name)
		}
		return ks, nil
	}
	work := func(o Options, i int, key string) (simperf.MinOpenRowRow, error) {
		p := minOpenProfiles(o)[i]
		rows, err := simperf.MinOpenRowStudy(perfConfig(o), []workload.Profile{p}, o.Seed)
		if err != nil {
			return simperf.MinOpenRowRow{}, err
		}
		return rows[0], nil
	}
	merge := func(o Options, parts []simperf.MinOpenRowRow) (*report.Doc, error) {
		var out [][]string
		for _, r := range parts {
			out = append(out, []string{r.Workload, cell(r)})
		}
		return report.NewDoc(report.TableSection(section, headers, out)), nil
	}
	registerKeyed(id, title, keys, work, merge)
}

// fig40Profiles is the single-core workload set at this scale.
func fig40Profiles(o Options) []workload.Profile {
	profiles := workload.Heavy()
	if o.Scale < 0.5 {
		profiles = profiles[:min(len(profiles), 5)]
	}
	return profiles
}

func fig40Keys(o Options) ([]string, error) {
	var ks []string
	for _, kind := range mitigationKinds {
		for _, p := range fig40Profiles(o) {
			ks = append(ks, kind.String()+"/"+p.Name)
		}
	}
	return ks, nil
}

// workFig40 simulates one (mitigation kind, workload) pair: baseline IPC
// plus the adapted mechanism's normalized IPC at every tmro.
func workFig40(o Options, i int, key string) ([]float64, error) {
	profiles := fig40Profiles(o)
	kind := mitigationKinds[i/len(profiles)]
	p := profiles[i%len(profiles)]
	cfg := perfConfig(o)
	mix := []workload.Profile{p}
	baseCfg := cfg
	baseCfg.NewMitigation = simperf.BaselineFactory(kind, o.Seed)
	base, err := simperf.RunMix(baseCfg, mix, o.Seed)
	if err != nil {
		return nil, err
	}
	norms := make([]float64, 0, len(simperf.TmroLattice))
	for _, tmro := range simperf.TmroLattice {
		res, err := simperf.RunAdapted(kind, tmro, cfg, mix, o.Seed)
		if err != nil {
			return nil, err
		}
		norms = append(norms, res.Cores[0].IPC()/base.Cores[0].IPC())
	}
	return norms, nil
}

func mergeFig40(o Options, parts [][]float64) (*report.Doc, error) {
	profiles := fig40Profiles(o)
	doc := report.NewDoc()
	for ki, kind := range mitigationKinds {
		headers := []string{"workload"}
		for _, tmro := range simperf.TmroLattice {
			headers = append(headers, dram.FormatTime(tmro))
		}
		var out [][]string
		perTmro := make([][]float64, len(simperf.TmroLattice))
		for pi, p := range profiles {
			norms := parts[ki*len(profiles)+pi]
			row := []string{p.Name}
			for i, norm := range norms {
				perTmro[i] = append(perTmro[i], norm)
				row = append(row, report.Num(norm))
			}
			out = append(out, row)
		}
		gm := []string{"GeoMean"}
		for _, vs := range perTmro {
			gm = append(gm, report.Num(stats.GeoMean(vs)))
		}
		out = append(out, gm)
		doc.Add(report.TableSection(
			fmt.Sprintf("Single-core IPC of %s-RP normalized to %s (Fig. 40)", kind, kind),
			headers, out))
	}
	return doc, nil
}

// fig41Groups resolves the Appendix D mixes and their ordered names.
func fig41Groups(o Options) (map[string][][]workload.Profile, []string) {
	groups := simperf.HeterogeneousMixes(o.scaled(2, 1), o.Seed)
	return groups, mixGroupNames(groups)
}

func fig41Keys(o Options) ([]string, error) {
	_, names := fig41Groups(o)
	var ks []string
	for _, kind := range mitigationKinds {
		for _, g := range names {
			ks = append(ks, kind.String()+"/"+g)
		}
	}
	return ks, nil
}

// workFig41 simulates one (mitigation kind, mix group): the group's mean
// weighted speedup of the adapted mechanism normalized to baseline, per
// tmro.
func workFig41(o Options, i int, key string) ([]float64, error) {
	groups, names := fig41Groups(o)
	kind := mitigationKinds[i/len(names)]
	g := names[i%len(names)]
	cfg := perfConfig(o)
	sums := make([]float64, len(simperf.TmroLattice))
	for _, mix := range groups[g] {
		alone, err := simperf.AloneIPCs(cfg, mix, o.Seed)
		if err != nil {
			return nil, err
		}
		baseCfg := cfg
		baseCfg.NewMitigation = simperf.BaselineFactory(kind, o.Seed)
		base, err := simperf.RunMix(baseCfg, mix, o.Seed)
		if err != nil {
			return nil, err
		}
		baseWS := base.WeightedSpeedup(alone)
		for i, tmro := range simperf.TmroLattice {
			res, err := simperf.RunAdapted(kind, tmro, cfg, mix, o.Seed)
			if err != nil {
				return nil, err
			}
			sums[i] += res.WeightedSpeedup(alone) / baseWS
		}
	}
	n := float64(len(groups[g]))
	avgs := make([]float64, len(sums))
	for i, s := range sums {
		avgs[i] = s / n
	}
	return avgs, nil
}

func mergeFig41(o Options, parts [][]float64) (*report.Doc, error) {
	_, names := fig41Groups(o)
	doc := report.NewDoc()
	for ki, kind := range mitigationKinds {
		headers := []string{"group"}
		for _, tmro := range simperf.TmroLattice {
			headers = append(headers, dram.FormatTime(tmro))
		}
		var out [][]string
		for gi, g := range names {
			row := []string{g}
			for _, v := range parts[ki*len(names)+gi] {
				row = append(row, report.Num(v))
			}
			out = append(out, row)
		}
		doc.Add(report.TableSection(
			fmt.Sprintf("4-core weighted speedup of %s-RP normalized to %s (Fig. 41/Table 9)", kind, kind),
			headers, out))
	}
	return doc, nil
}
