package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dram"
	"repro/internal/report"
	"repro/internal/simperf"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("table3", "Graphene-RP and PARA-RP performance overhead vs tmro", runTable3)
	register("fig38", "Max per-row ACT-count increase under minimally-open-row", runFig38)
	register("fig39", "Normalized IPC under minimally-open-row", runFig39)
	register("fig40", "Per-workload single-core IPC of adapted mitigations vs tmro", runFig40)
	register("fig41", "4-core weighted speedup of adapted mitigations (Table 9 groups)", runFig41)
}

func perfConfig(o Options) simperf.Config {
	cfg := simperf.DefaultConfig()
	cfg.InstrPerCore = o.scaled(cfg.InstrPerCore, 100_000)
	return cfg
}

func fourCoreMixes(o Options, perGroup int) [][]workload.Profile {
	groups := simperf.HeterogeneousMixes(perGroup, o.Seed)
	var mixes [][]workload.Profile
	var names []string
	for g := range groups {
		names = append(names, g)
	}
	sort.Strings(names)
	for _, g := range names {
		mixes = append(mixes, groups[g]...)
	}
	return mixes
}

func runTable3(o Options) (string, error) {
	cfg := perfConfig(o)
	mixes := fourCoreMixes(o, o.scaled(2, 1))
	var sections []string
	for _, kind := range []simperf.MitigationKind{simperf.KindGraphene, simperf.KindPARA} {
		rows, err := simperf.MitigationStudy(kind, cfg, mixes, o.Seed)
		if err != nil {
			return "", err
		}
		headers := []string{"tmro", "T'RH", "avg overhead", "max overhead"}
		var out [][]string
		for _, r := range rows {
			out = append(out, []string{
				dram.FormatTime(r.TMro), fmt.Sprint(r.TPrime),
				report.Pct(r.AvgOverhead), report.Pct(r.MaxOverhead),
			})
		}
		sections = append(sections, report.Section(
			fmt.Sprintf("%s-RP overhead over %s (Table 3)", kind, kind),
			report.Table(headers, out)))
	}
	return strings.Join(sections, "\n"), nil
}

func minOpenRows(o Options) ([]simperf.MinOpenRowRow, error) {
	cfg := perfConfig(o)
	profiles := workload.Heavy()
	if o.Scale < 0.5 {
		profiles = profiles[:min(len(profiles), 6)]
	}
	return simperf.MinOpenRowStudy(cfg, profiles, o.Seed)
}

func runFig38(o Options) (string, error) {
	rows, err := minOpenRows(o)
	if err != nil {
		return "", err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Workload, report.Num(r.ACTIncrease) + "x"})
	}
	return report.Section("Max increase in per-row ACT count per tREFW, minimally-open-row vs open-row (Fig. 38)",
		report.Table([]string{"workload", "ACT increase"}, out)), nil
}

func runFig39(o Options) (string, error) {
	rows, err := minOpenRows(o)
	if err != nil {
		return "", err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Workload, report.Num(r.NormalizedIPC)})
	}
	return report.Section("IPC under minimally-open-row, normalized to open-row (Fig. 39; paper min 0.66)",
		report.Table([]string{"workload", "normalized IPC"}, out)), nil
}

func runFig40(o Options) (string, error) {
	cfg := perfConfig(o)
	profiles := workload.Heavy()
	if o.Scale < 0.5 {
		profiles = profiles[:min(len(profiles), 5)]
	}
	var sections []string
	for _, kind := range []simperf.MitigationKind{simperf.KindGraphene, simperf.KindPARA} {
		headers := []string{"workload"}
		for _, tmro := range simperf.TmroLattice {
			headers = append(headers, dram.FormatTime(tmro))
		}
		var out [][]string
		geo := []float64{}
		perTmro := make([][]float64, len(simperf.TmroLattice))
		for _, p := range profiles {
			mix := []workload.Profile{p}
			baseCfg := cfg
			baseCfg.NewMitigation = simperf.BaselineFactory(kind, o.Seed)
			base, err := simperf.RunMix(baseCfg, mix, o.Seed)
			if err != nil {
				return "", err
			}
			row := []string{p.Name}
			for i, tmro := range simperf.TmroLattice {
				res, err := simperf.RunAdapted(kind, tmro, cfg, mix, o.Seed)
				if err != nil {
					return "", err
				}
				norm := res.Cores[0].IPC() / base.Cores[0].IPC()
				perTmro[i] = append(perTmro[i], norm)
				row = append(row, report.Num(norm))
			}
			out = append(out, row)
		}
		gm := []string{"GeoMean"}
		for _, vs := range perTmro {
			gm = append(gm, report.Num(stats.GeoMean(vs)))
		}
		out = append(out, gm)
		_ = geo
		sections = append(sections, report.Section(
			fmt.Sprintf("Single-core IPC of %s-RP normalized to %s (Fig. 40)", kind, kind),
			report.Table(headers, out)))
	}
	return strings.Join(sections, "\n"), nil
}

func runFig41(o Options) (string, error) {
	cfg := perfConfig(o)
	groups := simperf.HeterogeneousMixes(o.scaled(2, 1), o.Seed)
	var names []string
	for g := range groups {
		names = append(names, g)
	}
	sort.Strings(names)
	var sections []string
	for _, kind := range []simperf.MitigationKind{simperf.KindGraphene, simperf.KindPARA} {
		headers := []string{"group"}
		for _, tmro := range simperf.TmroLattice {
			headers = append(headers, dram.FormatTime(tmro))
		}
		var out [][]string
		for _, g := range names {
			sums := make([]float64, len(simperf.TmroLattice))
			var baseSum float64
			for _, mix := range groups[g] {
				alone, err := simperf.AloneIPCs(cfg, mix, o.Seed)
				if err != nil {
					return "", err
				}
				baseCfg := cfg
				baseCfg.NewMitigation = simperf.BaselineFactory(kind, o.Seed)
				base, err := simperf.RunMix(baseCfg, mix, o.Seed)
				if err != nil {
					return "", err
				}
				baseWS := base.WeightedSpeedup(alone)
				baseSum += baseWS
				for i, tmro := range simperf.TmroLattice {
					res, err := simperf.RunAdapted(kind, tmro, cfg, mix, o.Seed)
					if err != nil {
						return "", err
					}
					sums[i] += res.WeightedSpeedup(alone) / baseWS
				}
			}
			row := []string{g}
			n := float64(len(groups[g]))
			for _, s := range sums {
				row = append(row, report.Num(s/n))
			}
			out = append(out, row)
		}
		sections = append(sections, report.Section(
			fmt.Sprintf("4-core weighted speedup of %s-RP normalized to %s (Fig. 41/Table 9)", kind, kind),
			report.Table(headers, out)))
	}
	return strings.Join(sections, "\n"), nil
}
