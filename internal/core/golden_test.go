package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/report"
)

// -update regenerates the golden reports. Only use it for deliberate,
// reviewed output changes: the goldens pin every experiment report to the
// byte-exact output of the original per-command simulation path, so the
// batched/closed-form fast paths cannot drift without failing here.
var updateGolden = flag.Bool("update", false, "rewrite golden experiment reports")

// goldenOptions mirrors TestEngineDeterminismAndCache's configuration so
// the two suites pin the same reports.
func goldenOptions() Options {
	return Options{Scale: 0.05, Seed: 1, Modules: []string{"S0", "S3", "M3"}}
}

// TestGoldenReports asserts that every registered experiment reproduces
// its checked-in pre-refactor report byte-for-byte at one, two, and
// eight workers. This is the acceptance gate for the closed-form accrual
// and replay-free search rework, and — since the dominant shards now
// declare sub-shard splits — for the two-level merge: any numerical or
// ordering drift in the fast paths, and any completion-order dependence
// in a Gather, shows up as a diff here.
func TestGoldenReports(t *testing.T) {
	o := goldenOptions()
	serial := engine.New(1, 0)
	two := engine.New(2, 0)
	wide := engine.New(8, 0)
	for _, e := range List() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", e.ID+".golden")
			doc, err := RunWith(serial, e.ID, o)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			got := report.Text(doc)
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("report differs from golden %s\n--- want ---\n%s\n--- got ---\n%s",
					path, want, got)
			}
			for _, w := range []struct {
				n   int
				eng *engine.Engine
			}{{2, two}, {8, wide}} {
				wideDoc, err := RunWith(w.eng, e.ID, o)
				if err != nil {
					t.Fatalf("run (%d workers): %v", w.n, err)
				}
				if report.Text(wideDoc) != got {
					t.Errorf("%d-worker report differs from serial report", w.n)
				}
			}
		})
	}
}
