package core

import (
	"fmt"
	"strings"

	"repro/internal/characterize"
	"repro/internal/chipgen"
	"repro/internal/dram"
	"repro/internal/ecc"
	"repro/internal/report"
)

func init() {
	registerOverlap("fig10", "Overlap of RowPress cells @ACmin with RowHammer and retention cells", false)
	registerPerModule("fig11", "Overlap of RowPress cells @ACmax with RowHammer and retention cells", workFig11, mergeFig11)
	registerKeyed("fig19", "Normalized ACmin per data pattern (single-sided)",
		staticKeys("S0/50", "S0/80", "H0/50", "H0/80", "M6/50", "M6/80"), workFig19, joinSections)
	registerKeyed("fig20", "Normalized ACmin per data pattern (double-sided, Mfr. S 8Gb B-die)",
		staticKeys("50", "80"), workFig20, joinSections)
	registerKeyed("fig22", "BER of the RowPress-ONOFF pattern (representative die)",
		staticKeys("single/50", "single/80", "double/50", "double/80"), workFig22, joinSections)
	registerPerModule("appC", "ONOFF BER for all die revisions",
		func(o Options, spec chipgen.ModuleSpec) (report.DocSection, error) {
			return onoffReport(spec, o, characterize.SingleSided, 50)
		},
		func(o Options, specs []chipgen.ModuleSpec, parts []report.DocSection) (*report.Doc, error) {
			return report.NewDoc(parts...), nil
		})
	registerPerModule("appE", "Repeatability of bitflips across 5 trials", workAppE, mergeAppE)
	registerECC("fig25", "64-bit words by bitflip count @tAggON=7.8µs + ECC outcomes", 7800*dram.Nanosecond)
	registerECC("fig26", "64-bit words by bitflip count @tAggON=70.2µs + ECC outcomes", 70200*dram.Nanosecond)
	register("table1", "Tested DDR4 chips (Table 1)", runTable1)
	registerPerModule("table5", "Per-module RowHammer/RowPress summary (Table 5)", workTable5, mergeTable5)
	registerPerModule("table6", "Per-module maximum bit error rate (Table 6)", workTable6, mergeTable6)
}

// joinSections is the merge for experiments whose shards each produce a
// complete, typed report section.
func joinSections(o Options, parts []report.DocSection) (*report.Doc, error) {
	return report.NewDoc(parts...), nil
}

// flattenRows is the merge body for experiments whose shards produce row
// blocks of one shared table.
func flattenRows(parts [][][]string) [][]string {
	var rows [][]string
	for _, block := range parts {
		rows = append(rows, block...)
	}
	return rows
}

func registerOverlap(id, title string, atMax bool) {
	work := func(o Options, spec chipgen.ModuleSpec) ([][]string, error) {
		pts, err := characterize.OverlapSweep(spec, o.charConfig(), 50, sweepTAggONs(o))
		if err != nil {
			return nil, err
		}
		var rows [][]string
		for _, pt := range pts {
			rows = append(rows, []string{
				spec.ID, dram.FormatTime(pt.TAggON),
				fmt.Sprint(pt.Cells), report.Pct(pt.WithHammer), report.Pct(pt.WithRetention),
			})
		}
		return rows, nil
	}
	merge := func(o Options, specs []chipgen.ModuleSpec, parts [][][]string) (*report.Doc, error) {
		headers := []string{"module", "tAggON", "cells", "overlap w/ RowHammer", "overlap w/ retention"}
		mode := "@ACmin"
		if atMax {
			mode = "@ACmax"
		}
		return report.NewDoc(report.TableSection("RowPress-vulnerable cell overlap "+mode+" (Obsv. 7: ≈0 beyond tRAS)",
			headers, flattenRows(parts))), nil
	}
	registerPerModule(id, title, work, merge)
}

// workFig11 compares the cells flipped at the budget-limited maximum
// activation count per tAggON against the @ACmax RowHammer set and the
// retention-failure set, for one module.
func workFig11(o Options, spec chipgen.ModuleSpec) ([][]string, error) {
	cfg := o.charConfig()
	taggons := sweepTAggONs(o)
	locs := characterize.TestedLocations(cfg.Geometry, cfg.RowsToTest)
	flipSets := make([]map[characterize.CellKey]bool, len(taggons))
	for i, tg := range taggons {
		b, err := characterize.NewBench(spec, cfg, 50)
		if err != nil {
			return nil, err
		}
		flips, err := characterize.MaxACFlips(b, locs, tg, cfg)
		if err != nil {
			return nil, err
		}
		set := make(map[characterize.CellKey]bool, len(flips))
		for _, f := range flips {
			set[characterize.CellKey{Row: f.LogicalRow, Byte: f.Byte, Bit: f.Bit}] = true
		}
		flipSets[i] = set
	}
	bret, err := characterize.NewBench(spec, cfg, 50)
	if err != nil {
		return nil, err
	}
	retSet, err := characterize.RetentionTest(bret, locs, cfg, 4)
	if err != nil {
		return nil, err
	}
	hammerSet := flipSets[0] // tAggON = tRAS column
	var rows [][]string
	for i, tg := range taggons {
		rows = append(rows, []string{
			spec.ID, dram.FormatTime(tg), fmt.Sprint(len(flipSets[i])),
			report.Pct(characterize.OverlapRatio(flipSets[i], hammerSet)),
			report.Pct(characterize.OverlapRatio(flipSets[i], retSet)),
		})
	}
	return rows, nil
}

func mergeFig11(o Options, specs []chipgen.ModuleSpec, parts [][][]string) (*report.Doc, error) {
	headers := []string{"module", "tAggON", "cells", "overlap w/ RowHammer@ACmax", "overlap w/ retention"}
	return report.NewDoc(report.TableSection("RowPress-vulnerable cell overlap @ACmax (Fig. 11)",
		headers, flattenRows(parts))), nil
}

func dataPatternReport(spec chipgen.ModuleSpec, o Options, sided characterize.Sidedness, tempC float64) (report.DocSection, error) {
	cfg := o.charConfig()
	cfg.Sided = sided
	taggons := characterize.DataPatternTAggONs
	if o.Scale < 0.5 {
		taggons = taggons[:4]
	}
	cells, err := characterize.DataPatternStudy(spec, cfg, tempC, taggons)
	if err != nil {
		return report.DocSection{}, err
	}
	byPattern := map[string][]string{}
	for _, c := range cells {
		v := report.Num(c.Normalized)
		if c.NoBitflip {
			v = "NoBitflip"
		}
		byPattern[c.Pattern.String()] = append(byPattern[c.Pattern.String()], v)
	}
	headers := []string{"pattern"}
	for _, t := range taggons {
		headers = append(headers, dram.FormatTime(t))
	}
	var rows [][]string
	for _, p := range dram.AllDataPatterns {
		rows = append(rows, append([]string{p.String()}, byPattern[p.String()]...))
	}
	title := fmt.Sprintf("ACmin normalized to CheckerBoard: %s %s, %s, %g°C", spec.ID, spec.Die.Name(), sided, tempC)
	return report.TableSection(title, headers, rows), nil
}

// workFig19 renders one (representative die, temperature) data-pattern
// panel per shard. The paper's three representative dies: S 8Gb B,
// H 16Gb A, M 16Gb F.
func workFig19(o Options, i int, key string) (report.DocSection, error) {
	id, tempStr, _ := strings.Cut(key, "/")
	spec, _ := chipgen.ByID(id)
	tempC := 50.0
	if tempStr == "80" {
		tempC = 80
	}
	return dataPatternReport(spec, o, characterize.SingleSided, tempC)
}

func workFig20(o Options, i int, key string) (report.DocSection, error) {
	spec, _ := chipgen.ByID("S0")
	tempC := 50.0
	if key == "80" {
		tempC = 80
	}
	return dataPatternReport(spec, o, characterize.DoubleSided, tempC)
}

func onoffReport(spec chipgen.ModuleSpec, o Options, sided characterize.Sidedness, tempC float64) (report.DocSection, error) {
	cfg := o.charConfig()
	cfg.Sided = sided
	pts, err := characterize.ONOFFSweep(spec, cfg, tempC)
	if err != nil {
		return report.DocSection{}, err
	}
	headers := []string{"ΔtA2A"}
	for _, f := range characterize.OnFracs {
		headers = append(headers, report.Pct(f)+"→on")
	}
	byDelta := map[dram.TimePS][]string{}
	for _, pt := range pts {
		byDelta[pt.DeltaA2A] = append(byDelta[pt.DeltaA2A], report.Num(pt.BER.MaxBER))
	}
	var rows [][]string
	for _, d := range characterize.DeltaA2As {
		rows = append(rows, append([]string{dram.FormatTime(d)}, byDelta[d]...))
	}
	title := fmt.Sprintf("Max BER, RowPress-ONOFF: %s %s, %s, %g°C", spec.ID, spec.Die.Name(), sided, tempC)
	return report.TableSection(title, headers, rows), nil
}

func workFig22(o Options, i int, key string) (report.DocSection, error) {
	spec, _ := chipgen.ByID("S3") // representative 8Gb D-die
	sidedStr, tempStr, _ := strings.Cut(key, "/")
	sided := characterize.SingleSided
	if sidedStr == "double" {
		sided = characterize.DoubleSided
	}
	tempC := 50.0
	if tempStr == "80" {
		tempC = 80
	}
	return onoffReport(spec, o, sided, tempC)
}

func workAppE(o Options, spec chipgen.ModuleSpec) ([][]string, error) {
	cfg := o.charConfig()
	cfg.Trials = 5
	taggons := []dram.TimePS{36 * dram.Nanosecond, 7800 * dram.Nanosecond, 70200 * dram.Nanosecond, 30 * dram.Millisecond}
	res, err := characterize.RepeatabilityStudy(spec, cfg, 50, taggons)
	if err != nil {
		return nil, err
	}
	var rows [][]string
	for _, r := range res {
		row := []string{spec.ID, dram.FormatTime(r.TAggON)}
		for k := 1; k <= 5; k++ {
			row = append(row, report.Pct(r.Percent(k)/100))
		}
		rows = append(rows, append(row, fmt.Sprint(r.TotalFlips)))
	}
	return rows, nil
}

func mergeAppE(o Options, specs []chipgen.ModuleSpec, parts [][][]string) (*report.Doc, error) {
	headers := []string{"module", "tAggON", "1x", "2x", "3x", "4x", "5x", "flips"}
	return report.NewDoc(report.TableSection("Bitflip repeatability over 5 trials (Appendix E: majority occur in all 5)",
		headers, flattenRows(parts))), nil
}

func registerECC(id, title string, tAggON dram.TimePS) {
	work := func(o Options, spec chipgen.ModuleSpec) ([][]string, error) {
		cfg := o.charConfig()
		var rows [][]string
		for _, sided := range []characterize.Sidedness{characterize.SingleSided, characterize.DoubleSided} {
			c := cfg
			c.Sided = sided
			b, err := characterize.NewBench(spec, c, 80)
			if err != nil {
				return nil, err
			}
			locs := characterize.TestedLocations(c.Geometry, c.RowsToTest)
			flips, err := characterize.MaxACFlips(b, locs, tAggON, c)
			if err != nil {
				return nil, err
			}
			st := ecc.AnalyzeFlips(flips)
			codes := ecc.EvaluateCodes(flips, 8)
			rows = append(rows, []string{
				spec.ID, sided.String(),
				fmt.Sprint(st.Words1to2), fmt.Sprint(st.Words3to8), fmt.Sprint(st.WordsOver8),
				fmt.Sprint(st.MaxPerWord),
				fmt.Sprint(codes.SECDEDSilent), fmt.Sprint(codes.SECDEDDetected),
				fmt.Sprint(codes.ChipkillBeyond),
			})
		}
		return rows, nil
	}
	merge := func(o Options, specs []chipgen.ModuleSpec, parts [][][]string) (*report.Doc, error) {
		headers := []string{"module", "sided", "words 1-2", "words 3-8", "words >8", "max/word",
			"SECDED silent", "SECDED detected", "beyond Chipkill(x8)"}
		title2 := fmt.Sprintf("Erroneous 64-bit words at tAggON=%s, max activations, 80°C (§7.1)", dram.FormatTime(tAggON))
		return report.NewDoc(report.TableSection(title2, headers, flattenRows(parts))), nil
	}
	registerPerModule(id, title, work, merge)
}

func runTable1(Options) (*report.Doc, error) {
	headers := []string{"mfr", "die", "modules", "org", "date codes"}
	type key struct {
		mfr  chipgen.Manufacturer
		name string
	}
	count := map[key]int{}
	org := map[key]string{}
	dates := map[key][]string{}
	for _, s := range chipgen.Catalog() {
		k := key{s.Die.Mfr, s.Die.Name()}
		count[k]++
		org[k] = s.Org
		dates[k] = append(dates[k], s.DateCode)
	}
	var rows [][]string
	for _, d := range chipgen.DieRevisions() {
		k := key{d.Mfr, d.Name()}
		rows = append(rows, []string{
			"Mfr. " + string(d.Mfr), d.Name(), fmt.Sprint(count[k]), org[k], strings.Join(dedup(dates[k]), ","),
		})
	}
	return report.NewDoc(report.TableSection("Tested DDR4 DRAM modules (Table 1/5 inventory)",
		headers, rows)), nil
}

func dedup(vs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
