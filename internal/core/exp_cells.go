package core

import (
	"fmt"
	"strings"

	"repro/internal/characterize"
	"repro/internal/chipgen"
	"repro/internal/dram"
	"repro/internal/ecc"
	"repro/internal/report"
)

func init() {
	register("fig10", "Overlap of RowPress cells @ACmin with RowHammer and retention cells", overlapRunner(false))
	register("fig11", "Overlap of RowPress cells @ACmax with RowHammer and retention cells", runFig11)
	register("fig19", "Normalized ACmin per data pattern (single-sided)", runFig19)
	register("fig20", "Normalized ACmin per data pattern (double-sided, Mfr. S 8Gb B-die)", runFig20)
	register("fig22", "BER of the RowPress-ONOFF pattern (representative die)", runFig22)
	register("appC", "ONOFF BER for all die revisions", runAppC)
	register("appE", "Repeatability of bitflips across 5 trials", runAppE)
	register("fig25", "64-bit words by bitflip count @tAggON=7.8µs + ECC outcomes", eccRunner(7800*dram.Nanosecond))
	register("fig26", "64-bit words by bitflip count @tAggON=70.2µs + ECC outcomes", eccRunner(70200*dram.Nanosecond))
	register("table1", "Tested DDR4 chips (Table 1)", runTable1)
	register("table5", "Per-module RowHammer/RowPress summary (Table 5)", runTable5)
	register("table6", "Per-module maximum bit error rate (Table 6)", runTable6)
}

func overlapRunner(atMax bool) func(Options) (string, error) {
	return func(o Options) (string, error) {
		specs, err := o.modules()
		if err != nil {
			return "", err
		}
		cfg := o.charConfig()
		taggons := sweepTAggONs(o)
		headers := []string{"module", "tAggON", "cells", "overlap w/ RowHammer", "overlap w/ retention"}
		var rows [][]string
		for _, spec := range specs {
			pts, err := characterize.OverlapSweep(spec, cfg, 50, taggons)
			if err != nil {
				return "", err
			}
			for _, pt := range pts {
				rows = append(rows, []string{
					spec.ID, dram.FormatTime(pt.TAggON),
					fmt.Sprint(pt.Cells), report.Pct(pt.WithHammer), report.Pct(pt.WithRetention),
				})
			}
		}
		mode := "@ACmin"
		if atMax {
			mode = "@ACmax"
		}
		return report.Section("RowPress-vulnerable cell overlap "+mode+" (Obsv. 7: ≈0 beyond tRAS)",
			report.Table(headers, rows)), nil
	}
}

// runFig11 compares the cells flipped at the budget-limited maximum
// activation count per tAggON against the @ACmax RowHammer set and the
// retention-failure set.
func runFig11(o Options) (string, error) {
	specs, err := o.modules()
	if err != nil {
		return "", err
	}
	cfg := o.charConfig()
	taggons := sweepTAggONs(o)
	headers := []string{"module", "tAggON", "cells", "overlap w/ RowHammer@ACmax", "overlap w/ retention"}
	var rows [][]string
	for _, spec := range specs {
		locs := characterize.TestedLocations(cfg.Geometry, cfg.RowsToTest)
		flipSets := make([]map[characterize.CellKey]bool, len(taggons))
		for i, tg := range taggons {
			b, err := characterize.NewBench(spec, cfg, 50)
			if err != nil {
				return "", err
			}
			flips, err := characterize.MaxACFlips(b, locs, tg, cfg)
			if err != nil {
				return "", err
			}
			set := make(map[characterize.CellKey]bool, len(flips))
			for _, f := range flips {
				set[characterize.CellKey{Row: f.LogicalRow, Byte: f.Byte, Bit: f.Bit}] = true
			}
			flipSets[i] = set
		}
		bret, err := characterize.NewBench(spec, cfg, 50)
		if err != nil {
			return "", err
		}
		retSet, err := characterize.RetentionTest(bret, locs, cfg, 4)
		if err != nil {
			return "", err
		}
		hammerSet := flipSets[0] // tAggON = tRAS column
		for i, tg := range taggons {
			rows = append(rows, []string{
				spec.ID, dram.FormatTime(tg), fmt.Sprint(len(flipSets[i])),
				report.Pct(characterize.OverlapRatio(flipSets[i], hammerSet)),
				report.Pct(characterize.OverlapRatio(flipSets[i], retSet)),
			})
		}
	}
	return report.Section("RowPress-vulnerable cell overlap @ACmax (Fig. 11)",
		report.Table(headers, rows)), nil
}

func dataPatternReport(spec chipgen.ModuleSpec, o Options, sided characterize.Sidedness, tempC float64) (string, error) {
	cfg := o.charConfig()
	cfg.Sided = sided
	taggons := characterize.DataPatternTAggONs
	if o.Scale < 0.5 {
		taggons = taggons[:4]
	}
	cells, err := characterize.DataPatternStudy(spec, cfg, tempC, taggons)
	if err != nil {
		return "", err
	}
	byPattern := map[string][]string{}
	for _, c := range cells {
		v := report.Num(c.Normalized)
		if c.NoBitflip {
			v = "NoBitflip"
		}
		byPattern[c.Pattern.String()] = append(byPattern[c.Pattern.String()], v)
	}
	headers := []string{"pattern"}
	for _, t := range taggons {
		headers = append(headers, dram.FormatTime(t))
	}
	var rows [][]string
	for _, p := range dram.AllDataPatterns {
		rows = append(rows, append([]string{p.String()}, byPattern[p.String()]...))
	}
	title := fmt.Sprintf("ACmin normalized to CheckerBoard: %s %s, %s, %g°C", spec.ID, spec.Die.Name(), sided, tempC)
	return report.Section(title, report.Table(headers, rows)), nil
}

func runFig19(o Options) (string, error) {
	var sections []string
	// The paper's three representative dies: S 8Gb B, H 16Gb A, M 16Gb F.
	for _, id := range []string{"S0", "H0", "M6"} {
		spec, _ := chipgen.ByID(id)
		for _, tempC := range []float64{50, 80} {
			s, err := dataPatternReport(spec, o, characterize.SingleSided, tempC)
			if err != nil {
				return "", err
			}
			sections = append(sections, s)
		}
	}
	return strings.Join(sections, "\n"), nil
}

func runFig20(o Options) (string, error) {
	spec, _ := chipgen.ByID("S0")
	var sections []string
	for _, tempC := range []float64{50, 80} {
		s, err := dataPatternReport(spec, o, characterize.DoubleSided, tempC)
		if err != nil {
			return "", err
		}
		sections = append(sections, s)
	}
	return strings.Join(sections, "\n"), nil
}

func onoffReport(spec chipgen.ModuleSpec, o Options, sided characterize.Sidedness, tempC float64) (string, error) {
	cfg := o.charConfig()
	cfg.Sided = sided
	pts, err := characterize.ONOFFSweep(spec, cfg, tempC)
	if err != nil {
		return "", err
	}
	headers := []string{"ΔtA2A"}
	for _, f := range characterize.OnFracs {
		headers = append(headers, report.Pct(f)+"→on")
	}
	byDelta := map[dram.TimePS][]string{}
	for _, pt := range pts {
		byDelta[pt.DeltaA2A] = append(byDelta[pt.DeltaA2A], report.Num(pt.BER.MaxBER))
	}
	var rows [][]string
	for _, d := range characterize.DeltaA2As {
		rows = append(rows, append([]string{dram.FormatTime(d)}, byDelta[d]...))
	}
	title := fmt.Sprintf("Max BER, RowPress-ONOFF: %s %s, %s, %g°C", spec.ID, spec.Die.Name(), sided, tempC)
	return report.Section(title, report.Table(headers, rows)), nil
}

func runFig22(o Options) (string, error) {
	spec, _ := chipgen.ByID("S3") // representative 8Gb D-die
	var sections []string
	for _, sided := range []characterize.Sidedness{characterize.SingleSided, characterize.DoubleSided} {
		for _, tempC := range []float64{50, 80} {
			s, err := onoffReport(spec, o, sided, tempC)
			if err != nil {
				return "", err
			}
			sections = append(sections, s)
		}
	}
	return strings.Join(sections, "\n"), nil
}

func runAppC(o Options) (string, error) {
	specs, err := o.modules()
	if err != nil {
		return "", err
	}
	var sections []string
	for _, spec := range specs {
		s, err := onoffReport(spec, o, characterize.SingleSided, 50)
		if err != nil {
			return "", err
		}
		sections = append(sections, s)
	}
	return strings.Join(sections, "\n"), nil
}

func runAppE(o Options) (string, error) {
	specs, err := o.modules()
	if err != nil {
		return "", err
	}
	cfg := o.charConfig()
	cfg.Trials = 5
	taggons := []dram.TimePS{36 * dram.Nanosecond, 7800 * dram.Nanosecond, 70200 * dram.Nanosecond, 30 * dram.Millisecond}
	headers := []string{"module", "tAggON", "1x", "2x", "3x", "4x", "5x", "flips"}
	var rows [][]string
	for _, spec := range specs {
		res, err := characterize.RepeatabilityStudy(spec, cfg, 50, taggons)
		if err != nil {
			return "", err
		}
		for _, r := range res {
			row := []string{spec.ID, dram.FormatTime(r.TAggON)}
			for k := 1; k <= 5; k++ {
				row = append(row, report.Pct(r.Percent(k)/100))
			}
			row = append(row, fmt.Sprint(r.TotalFlips))
			rows = append(rows, row)
		}
	}
	return report.Section("Bitflip repeatability over 5 trials (Appendix E: majority occur in all 5)",
		report.Table(headers, rows)), nil
}

func eccRunner(tAggON dram.TimePS) func(Options) (string, error) {
	return func(o Options) (string, error) {
		specs, err := o.modules()
		if err != nil {
			return "", err
		}
		cfg := o.charConfig()
		headers := []string{"module", "sided", "words 1-2", "words 3-8", "words >8", "max/word",
			"SECDED silent", "SECDED detected", "beyond Chipkill(x8)"}
		var rows [][]string
		for _, spec := range specs {
			for _, sided := range []characterize.Sidedness{characterize.SingleSided, characterize.DoubleSided} {
				c := cfg
				c.Sided = sided
				b, err := characterize.NewBench(spec, c, 80)
				if err != nil {
					return "", err
				}
				locs := characterize.TestedLocations(c.Geometry, c.RowsToTest)
				flips, err := characterize.MaxACFlips(b, locs, tAggON, c)
				if err != nil {
					return "", err
				}
				st := ecc.AnalyzeFlips(flips)
				codes := ecc.EvaluateCodes(flips, 8)
				rows = append(rows, []string{
					spec.ID, sided.String(),
					fmt.Sprint(st.Words1to2), fmt.Sprint(st.Words3to8), fmt.Sprint(st.WordsOver8),
					fmt.Sprint(st.MaxPerWord),
					fmt.Sprint(codes.SECDEDSilent), fmt.Sprint(codes.SECDEDDetected),
					fmt.Sprint(codes.ChipkillBeyond),
				})
			}
		}
		title := fmt.Sprintf("Erroneous 64-bit words at tAggON=%s, max activations, 80°C (§7.1)", dram.FormatTime(tAggON))
		return report.Section(title, report.Table(headers, rows)), nil
	}
}

func runTable1(Options) (string, error) {
	headers := []string{"mfr", "die", "modules", "org", "date codes"}
	type key struct {
		mfr  chipgen.Manufacturer
		name string
	}
	count := map[key]int{}
	org := map[key]string{}
	dates := map[key][]string{}
	for _, s := range chipgen.Catalog() {
		k := key{s.Die.Mfr, s.Die.Name()}
		count[k]++
		org[k] = s.Org
		dates[k] = append(dates[k], s.DateCode)
	}
	var rows [][]string
	for _, d := range chipgen.DieRevisions() {
		k := key{d.Mfr, d.Name()}
		rows = append(rows, []string{
			"Mfr. " + string(d.Mfr), d.Name(), fmt.Sprint(count[k]), org[k], strings.Join(dedup(dates[k]), ","),
		})
	}
	return report.Section("Tested DDR4 DRAM modules (Table 1/5 inventory)",
		report.Table(headers, rows)), nil
}

func dedup(vs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
