package core

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/dram"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/sysarch"
)

func init() {
	register("fig23", "Real-system RowPress vs RowHammer bitflips (Algorithm 1)", runFig23)
	register("fig24", "Latency histogram: first vs subsequent cache-block access", runFig24)
	register("fig49", "Algorithm 2 variant vs Algorithm 1 (Appendix G)", runFig49)
}

func demoSystem(o Options) (*sysarch.System, error) {
	geo := dram.Geometry{Banks: 4, RowsPerBank: 4096, RowBytes: 8192}
	return sysarch.NewDemoSystem(geo, 0xDE40^o.Seed)
}

func attackConfig(o Options) attack.Config {
	cfg := attack.DefaultConfig()
	// Only the victim count scales: the accumulation window is physics
	// (exposure builds over one 64 ms refresh window), not a knob.
	cfg.Victims = o.scaled(cfg.Victims, 8)
	return cfg
}

// gridSection renders an attack grid as one titled table section.
func gridSection(title string, grid attack.GridResult) report.DocSection {
	headers := []string{"NUM_AGGR_ACTS", "NUM_READS", "tAggON", "fits tREFI", "bitflips", "rows w/ flips"}
	var rows [][]string
	for _, c := range grid.Cells {
		kind := "RowPress"
		if c.NumReads == 1 {
			kind = "RowHammer"
		}
		rows = append(rows, []string{
			fmt.Sprint(c.NumAggrActs),
			fmt.Sprintf("%d (%s)", c.NumReads, kind),
			dram.FormatTime(c.TAggON),
			fmt.Sprint(c.Synced),
			fmt.Sprint(c.Bitflips),
			fmt.Sprint(c.RowsWithFlips),
		})
	}
	return report.TableSection(title, headers, rows)
}

func runFig23(o Options) (*report.Doc, error) {
	sys, err := demoSystem(o)
	if err != nil {
		return nil, err
	}
	grid, err := attack.RunGrid(sys, attackConfig(o))
	if err != nil {
		return nil, err
	}
	return report.NewDoc(gridSection(
		"User-level program on a TRR-protected system (Fig. 23): NUM_READS=1 is conventional RowHammer",
		grid)), nil
}

func runFig24(o Options) (*report.Doc, error) {
	sys, err := demoSystem(o)
	if err != nil {
		return nil, err
	}
	samples := o.scaled(2000, 50)
	firstHist := stats.NewHistogram(180, 260, 16)
	restHist := stats.NewHistogram(180, 260, 16)
	for i := 0; i < samples; i++ {
		lat, err := sys.ProbeRowLatencies(1, 100+(i%64)*16)
		if err != nil {
			return nil, err
		}
		firstHist.Add(float64(lat[0]))
		for _, l := range lat[1:] {
			restHist.Add(float64(l))
		}
	}
	var rows [][]string
	for i := range firstHist.Counts {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f-%.0f cyc", firstHist.Lo+float64(i)*firstHist.BinWidth, firstHist.Lo+float64(i+1)*firstHist.BinWidth),
			report.Pct(firstHist.Frequencies()[i]),
			report.Pct(restHist.Frequencies()[i]),
		})
	}
	return report.NewDoc(report.TableSection(
		"Cache-block access latency (Fig. 24): the MC keeps rows open across block reads",
		[]string{"latency bin", "first access", "subsequent accesses"}, rows,
		fmt.Sprintf("median first = %s cyc, median subsequent = %s cyc, gap = %s cyc (paper: 30)",
			report.Num(firstHist.Median()), report.Num(restHist.Median()),
			report.Num(firstHist.Median()-restHist.Median())))), nil
}

func runFig49(o Options) (*report.Doc, error) {
	doc := report.NewDoc()
	for _, variant := range []attack.Variant{attack.Algorithm1, attack.Algorithm2} {
		sys, err := demoSystem(o)
		if err != nil {
			return nil, err
		}
		cfg := attackConfig(o)
		cfg.Variant = variant
		grid, err := attack.RunGrid(sys, cfg)
		if err != nil {
			return nil, err
		}
		doc.Add(gridSection(fmt.Sprintf("%s results (Appendix G)", variant), grid))
	}
	return doc, nil
}
