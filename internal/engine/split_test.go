package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/report"
)

// splitPlan builds a plan with one split shard of n sub-shards, each
// returning its own key. Gather joins the payloads with "+", so
// out-of-order assembly is visible in the merged line.
func splitPlan(exp, fp string, n int, subRuns *atomic.Int64, wrap func(j int, run func() (any, error)) func() (any, error)) Plan {
	subs := make([]SubShard, n)
	for j := 0; j < n; j++ {
		key := fmt.Sprintf("sub-%02d", j)
		run := func() (any, error) {
			if subRuns != nil {
				subRuns.Add(1)
			}
			return key, nil
		}
		if wrap != nil {
			run = wrap(j, run)
		}
		subs[j] = SubShard{Key: key, Run: run}
	}
	return Plan{
		Experiment:  exp,
		Fingerprint: fp,
		Shards: []Shard{{
			Key:  "unit",
			Subs: subs,
			Gather: func(parts []any) (any, error) {
				ss := make([]string, len(parts))
				for j, p := range parts {
					ss[j] = p.(string)
				}
				return strings.Join(ss, "+"), nil
			},
		}},
		Merge: func(parts []any) (*report.Doc, error) { return docOf(parts[0].(string)), nil },
	}
}

// TestSplitShardShuffledSubCompletion forces the sub-shards to finish
// in reverse order — sub j blocks until sub j+1 has completed — and
// requires Gather to still receive payloads in declaration order. This
// is the engine-level pin for the two-level merge contract: sub-shard
// completion order is a scheduling accident and must never reach the
// payload.
func TestSplitShardShuffledSubCompletion(t *testing.T) {
	const n = 4
	done := make([]chan struct{}, n)
	for j := range done {
		done[j] = make(chan struct{})
	}
	var subRuns atomic.Int64
	p := splitPlan("split", "v1", n, &subRuns, func(j int, run func() (any, error)) func() (any, error) {
		return func() (any, error) {
			if j < n-1 {
				<-done[j+1] // wait for the next sub to complete first
			}
			v, err := run()
			close(done[j])
			return v, err
		}
	})
	eng := New(n, 0) // every gated sub needs a slot at once
	doc, st, err := eng.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := docLine(doc); got != "sub-00+sub-01+sub-02+sub-03" {
		t.Fatalf("reverse completion order reached the gather: %q", got)
	}
	if st.Shards != 1 || st.Executed != 1 || st.SubShards != n || st.SubExecuted != n {
		t.Fatalf("stats=%+v", st)
	}
	if subRuns.Load() != n {
		t.Fatalf("sub executions=%d", subRuns.Load())
	}
}

// TestSplitShardWarmRunHitsUnitLevel pins the caching contract: the
// gathered unit payload is cached under the shard's own key, so a warm
// run is a single unit-level hit that never touches the sub-shards.
func TestSplitShardWarmRunHitsUnitLevel(t *testing.T) {
	var subRuns atomic.Int64
	p := splitPlan("split", "warm", 3, &subRuns, nil)
	eng := New(2, 0)
	if _, _, err := eng.Execute(p); err != nil {
		t.Fatal(err)
	}
	doc, st, err := eng.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != 1 || st.Executed != 0 || st.SubExecuted != 0 {
		t.Fatalf("warm stats=%+v", st)
	}
	if subRuns.Load() != 3 {
		t.Fatalf("warm run re-executed subs: %d total executions", subRuns.Load())
	}
	if docLine(doc) != "sub-00+sub-01+sub-02" {
		t.Fatalf("warm doc %q", docLine(doc))
	}
}

// TestSplitShardErrorAndSubCacheReuse drives a split whose middle
// sub-shards fail once: the unit must report the first failing sub by
// index, must not cache the failed unit, and a retry must reuse the
// succeeded subs' cached payloads — only the failed sub re-executes.
func TestSplitShardErrorAndSubCacheReuse(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	boom := errors.New("boom")
	var subRuns atomic.Int64
	p := splitPlan("split", "err", 4, &subRuns, func(j int, run func() (any, error)) func() (any, error) {
		if j != 1 && j != 2 {
			return run
		}
		return func() (any, error) {
			if fail.Load() {
				return nil, fmt.Errorf("sub %d: %w", j, boom)
			}
			return run()
		}
	})
	eng := New(4, 0)
	_, st, err := eng.Execute(p)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	// Both sub 1 and sub 2 failed; the unit reports the first by index.
	if !strings.Contains(err.Error(), `sub-shard "sub-01"`) {
		t.Fatalf("error does not name the first failing sub by index: %v", err)
	}
	if st.SubExecuted != 4 { // failed executions still count as run
		t.Fatalf("cold stats=%+v", st)
	}

	fail.Store(false)
	doc, st, err := eng.Execute(p)
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	if docLine(doc) != "sub-00+sub-01+sub-02+sub-03" {
		t.Fatalf("retry doc %q", docLine(doc))
	}
	// The failed unit was not cached, but subs 0 and 3 were: the retry
	// re-runs the unit yet executes only the two previously-failed subs.
	if st.Executed != 1 || st.SubExecuted != 2 {
		t.Fatalf("retry stats=%+v", st)
	}
	if subRuns.Load() != 4 {
		t.Fatalf("total successful sub executions=%d, want 4", subRuns.Load())
	}
}

// TestSplitShardNoDeadlockAtOneWorker pins the pool contract: the
// parent of a split holds no worker slot while its subs queue, so a
// split wider than the pool still completes on a single worker.
func TestSplitShardNoDeadlockAtOneWorker(t *testing.T) {
	p := splitPlan("split", "serial", 8, nil, nil)
	eng := New(1, 0)
	doc, st, err := eng.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.SubExecuted != 8 {
		t.Fatalf("stats=%+v", st)
	}
	if !strings.HasPrefix(docLine(doc), "sub-00+") {
		t.Fatalf("doc %q", docLine(doc))
	}
}

// TestSplitShardMissingGather pins the declaration contract: a shard
// that lists sub-shards without a Gather is a plan bug and must fail,
// not silently drop payloads.
func TestSplitShardMissingGather(t *testing.T) {
	p := splitPlan("split", "nogather", 2, nil, nil)
	p.Shards[0].Gather = nil
	eng := New(2, 0)
	if _, _, err := eng.Execute(p); err == nil || !strings.Contains(err.Error(), "no Gather") {
		t.Fatalf("want missing-Gather error, got %v", err)
	}
}
