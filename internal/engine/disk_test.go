package engine

import (
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

func init() {
	// Engine-test payloads are plain strings.
	RegisterPayloadType("")
}

func openDisk(t *testing.T, dir string, maxBytes int64) *DiskCache {
	t.Helper()
	dc, err := OpenDiskCache(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return dc
}

// TestDiskCacheWarmStart is the warm-start contract: a fresh engine
// process pointed at a populated cache directory serves a previously
// computed plan with zero shard executions.
func TestDiskCacheWarmStart(t *testing.T) {
	dir := t.TempDir()
	var n atomic.Int64

	e1 := New(2, 0)
	e1.AttachDiskCache(openDisk(t, dir, 0))
	cold, stats, err := e1.Execute(countingPlan("exp", "fp", 5, &n))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 5 || n.Load() != 5 {
		t.Fatalf("cold run: stats=%+v n=%d", stats, n.Load())
	}
	if err := e1.Disk().Flush(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a new engine with a new in-memory cache over the same dir.
	e2 := New(2, 0)
	e2.AttachDiskCache(openDisk(t, dir, 0))
	warm, stats2, err := e2.Execute(countingPlan("exp", "fp", 5, &n))
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Executed != 0 || stats2.CacheHits != 5 || n.Load() != 5 {
		t.Fatalf("warm start re-executed shards: stats=%+v n=%d", stats2, n.Load())
	}
	if docLine(warm) != docLine(cold) {
		t.Fatalf("warm doc %q != cold doc %q", docLine(warm), docLine(cold))
	}
	ds := e2.Disk().Stats()
	if ds.Hits != 5 || ds.Entries != 5 {
		t.Fatalf("disk stats=%+v", ds)
	}
	// Promotion: the second lookup of the same plan hits memory, not disk.
	if _, _, err := e2.Execute(countingPlan("exp", "fp", 5, &n)); err != nil {
		t.Fatal(err)
	}
	if ds2 := e2.Disk().Stats(); ds2.Hits != 5 {
		t.Fatalf("memory tier did not absorb repeat lookups: %+v", ds2)
	}
	m := e2.Metrics()
	if m.Disk.Entries != 5 || m.Mem.Entries != 5 {
		t.Fatalf("metrics tiers: mem=%+v disk=%+v", m.Mem, m.Disk)
	}
}

// TestDiskCacheWarmStartWithoutFlush: payload files alone are enough —
// the index only preserves LRU order, so a crash before Flush still
// warm-starts.
func TestDiskCacheWarmStartWithoutFlush(t *testing.T) {
	dir := t.TempDir()
	var n atomic.Int64
	e1 := New(1, 0)
	e1.AttachDiskCache(openDisk(t, dir, 0))
	if _, _, err := e1.Execute(countingPlan("exp", "fp", 3, &n)); err != nil {
		t.Fatal(err)
	}
	e2 := New(1, 0)
	e2.AttachDiskCache(openDisk(t, dir, 0))
	_, stats, err := e2.Execute(countingPlan("exp", "fp", 3, &n))
	if err != nil || stats.Executed != 0 {
		t.Fatalf("unflushed warm start: stats=%+v err=%v", stats, err)
	}
}

// TestDiskCacheToleratesCorruptPayload: a truncated payload file is a
// miss (and is dropped), not an error; the shard recomputes and the
// store heals.
func TestDiskCacheToleratesCorruptPayload(t *testing.T) {
	dir := t.TempDir()
	dc := openDisk(t, dir, 0)
	key := Key("exp", "fp", "x")
	dc.Put(key, "payload")
	if err := os.WriteFile(dc.payloadPath(key), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	dc2 := openDisk(t, dir, 0)
	if _, ok := dc2.Get(key); ok {
		t.Fatal("corrupt payload served as a hit")
	}
	st := dc2.Stats()
	if st.Corrupt != 1 || st.Entries != 0 {
		t.Fatalf("stats=%+v", st)
	}
	// The store heals: the key is writable and readable again.
	dc2.Put(key, "payload")
	if v, ok := dc2.Get(key); !ok || v.(string) != "payload" {
		t.Fatalf("healed get: %v %v", v, ok)
	}
}

// TestDiskCacheToleratesMangledIndex: index.json is advisory; a mangled
// one is ignored and the directory scan still finds every payload.
func TestDiskCacheToleratesMangledIndex(t *testing.T) {
	dir := t.TempDir()
	dc := openDisk(t, dir, 0)
	key := Key("exp", "fp", "x")
	dc.Put(key, "payload")
	if err := os.WriteFile(filepath.Join(dir, diskIndexName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	dc2 := openDisk(t, dir, 0)
	if v, ok := dc2.Get(key); !ok || v.(string) != "payload" {
		t.Fatalf("mangled index lost the entry: %v %v", v, ok)
	}
}

// TestDiskCacheEvictsLRUUnderByteBound: the store stays under its byte
// bound by dropping least-recently-used entries, and recency survives
// Gets.
func TestDiskCacheEvictsLRUUnderByteBound(t *testing.T) {
	dir := t.TempDir()
	big := strings.Repeat("v", 100)
	dc := openDisk(t, dir, 200) // fits one ~120-byte encoded entry, not two
	dc.Put("a", big)
	dc.Put("b", big)
	st := dc.Stats()
	if st.Entries != 1 || st.Evictions == 0 || st.Bytes > 2*int64(len(big)) {
		t.Fatalf("stats=%+v", st)
	}
	if _, ok := dc.Get("a"); ok {
		t.Fatal("LRU entry a should have been evicted")
	}
	if _, ok := dc.Get("b"); !ok {
		t.Fatal("newest entry b should survive")
	}
	if _, err := os.Stat(dc.payloadPath("a")); !os.IsNotExist(err) {
		t.Fatalf("evicted payload file still on disk: %v", err)
	}
}

// TestDiskCacheSkipsUnregisteredTypes: a payload gob cannot encode is
// skipped (memory-only), not an error.
func TestDiskCacheSkipsUnregisteredTypes(t *testing.T) {
	type unregistered struct{ X int }
	dc := openDisk(t, t.TempDir(), 0)
	dc.Put("k", unregistered{1})
	st := dc.Stats()
	if st.Skips != 1 || st.Entries != 0 {
		t.Fatalf("stats=%+v", st)
	}
}
