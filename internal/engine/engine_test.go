package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/report"
)

// docOf wraps one line into a minimal result document; docLine recovers
// it. Engine tests reason about merge output as a single string, and
// these adapters keep that shape on the Doc-typed Merge.
func docOf(line string) *report.Doc {
	return report.NewDoc(report.FindingsSection("merged", line))
}

func docLine(d *report.Doc) string {
	if d == nil || len(d.Sections) == 0 || len(d.Sections[0].Findings) == 0 {
		return ""
	}
	return d.Sections[0].Findings[0]
}

// countingPlan builds a plan whose shards return their own key and count
// executions.
func countingPlan(exp, fp string, n int, executed *atomic.Int64) Plan {
	shards := make([]Shard, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("shard-%02d", i)
		shards[i] = Shard{Key: key, Run: func() (any, error) {
			executed.Add(1)
			return key, nil
		}}
	}
	return Plan{
		Experiment:  exp,
		Fingerprint: fp,
		Shards:      shards,
		Merge: func(parts []any) (*report.Doc, error) {
			ss := make([]string, len(parts))
			for i, p := range parts {
				ss[i] = p.(string)
			}
			return docOf(strings.Join(ss, "|")), nil
		},
	}
}

func TestExecuteMergesInShardOrder(t *testing.T) {
	var n atomic.Int64
	for _, workers := range []int{1, 4, 16} {
		e := New(workers, 0)
		out, stats, err := e.Execute(countingPlan("exp", "fp", 9, &n))
		if err != nil {
			t.Fatal(err)
		}
		want := "shard-00|shard-01|shard-02|shard-03|shard-04|shard-05|shard-06|shard-07|shard-08"
		if docLine(out) != want {
			t.Fatalf("workers=%d: out=%q", workers, docLine(out))
		}
		if stats.Shards != 9 || stats.Executed != 9 || stats.CacheHits != 0 {
			t.Fatalf("workers=%d: stats=%+v", workers, stats)
		}
	}
}

func TestExecuteServesRepeatsFromCache(t *testing.T) {
	var n atomic.Int64
	e := New(4, 0)
	if _, _, err := e.Execute(countingPlan("exp", "fp", 5, &n)); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 5 {
		t.Fatalf("cold run executed %d shards", n.Load())
	}
	out, stats, err := e.Execute(countingPlan("exp", "fp", 5, &n))
	if err != nil {
		t.Fatal(err)
	}
	if n.Load() != 5 || stats.Executed != 0 || stats.CacheHits != 5 {
		t.Fatalf("warm run executed shards: n=%d stats=%+v", n.Load(), stats)
	}
	if !strings.HasPrefix(docLine(out), "shard-00|") {
		t.Fatalf("warm out=%q", docLine(out))
	}
	m := e.Metrics()
	if m.Runs != 2 || m.ShardsExecuted != 5 || m.CacheHits != 5 {
		t.Fatalf("metrics=%+v", m)
	}
}

func TestCacheKeyedByExperimentFingerprintShard(t *testing.T) {
	var n atomic.Int64
	e := New(4, 0)
	for _, p := range []Plan{
		countingPlan("expA", "fp1", 3, &n),
		countingPlan("expA", "fp2", 3, &n), // different options: no sharing
		countingPlan("expB", "fp1", 3, &n), // different experiment: no sharing
	} {
		if _, _, err := e.Execute(p); err != nil {
			t.Fatal(err)
		}
	}
	if n.Load() != 9 {
		t.Fatalf("expected 9 distinct shard executions, got %d", n.Load())
	}
}

func TestExecuteBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	var mu sync.Mutex
	shards := make([]Shard, 24)
	for i := range shards {
		shards[i] = Shard{Key: fmt.Sprint(i), Run: func() (any, error) {
			c := cur.Add(1)
			mu.Lock()
			if c > peak.Load() {
				peak.Store(c)
			}
			mu.Unlock()
			defer cur.Add(-1)
			return nil, nil
		}}
	}
	e := New(workers, 0)
	_, _, err := e.Execute(Plan{Experiment: "x", Shards: shards,
		Merge: func([]any) (*report.Doc, error) { return report.NewDoc(), nil }})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent shards, bound is %d", p, workers)
	}
}

func TestWorkerBoundHoldsAcrossConcurrentExecutes(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	var mu sync.Mutex
	mkPlan := func(exp string) Plan {
		shards := make([]Shard, 8)
		for i := range shards {
			shards[i] = Shard{Key: fmt.Sprint(i), Run: func() (any, error) {
				c := cur.Add(1)
				mu.Lock()
				if c > peak.Load() {
					peak.Store(c)
				}
				mu.Unlock()
				defer cur.Add(-1)
				return nil, nil
			}}
		}
		return Plan{Experiment: exp, Shards: shards,
			Merge: func([]any) (*report.Doc, error) { return report.NewDoc(), nil }}
	}
	e := New(workers, 0)
	var wg sync.WaitGroup
	for _, exp := range []string{"a", "b", "c", "d"} {
		wg.Add(1)
		go func(exp string) {
			defer wg.Done()
			if _, _, err := e.Execute(mkPlan(exp)); err != nil {
				t.Error(err)
			}
		}(exp)
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Fatalf("4 concurrent Executes reached %d concurrent shards, engine bound is %d", p, workers)
	}
}

func TestConcurrentIdenticalRequestsSingleFlight(t *testing.T) {
	var executions atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	plan := func() Plan {
		return Plan{Experiment: "exp", Fingerprint: "fp",
			Shards: []Shard{{Key: "slow", Run: func() (any, error) {
				executions.Add(1)
				close(started)
				<-release
				return "payload", nil
			}}},
			Merge: func(parts []any) (*report.Doc, error) { return docOf(parts[0].(string)), nil }}
	}
	e := New(4, 0)
	type res struct {
		out   string
		stats RunStats
	}
	results := make(chan res, 2)
	go func() {
		out, stats, _ := e.Execute(plan())
		results <- res{docLine(out), stats}
	}()
	<-started // first request is mid-shard
	go func() {
		out, stats, _ := e.Execute(plan())
		results <- res{docLine(out), stats}
	}()
	close(release)
	a, b := <-results, <-results
	if a.out != "payload" || b.out != "payload" {
		t.Fatalf("outputs: %q %q", a.out, b.out)
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("identical concurrent requests executed the shard %d times", n)
	}
	// One request ran the shard, the other joined it.
	if a.stats.Executed+b.stats.Executed != 1 || a.stats.CacheHits+b.stats.CacheHits != 1 {
		t.Fatalf("stats: %+v %+v", a.stats, b.stats)
	}
}

// TestRunOrJoinRechecksCacheBeforeExecuting pins the completion race: a
// shard whose result landed in the cache after the caller's Execute-level
// cache miss (the executor deregisters from inflight only after Put) must
// be served from the cache, not recomputed.
func TestRunOrJoinRechecksCacheBeforeExecuting(t *testing.T) {
	e := New(2, 0)
	key := Key("exp", "fp", "late")
	e.cache.Put(key, "already-done")
	v, ran, _, _, _, _, err := e.runOrJoin(key, Shard{Key: "late", Run: func() (any, error) {
		t.Fatal("shard must not re-execute")
		return nil, nil
	}}, "exp", nil, "late", "", 0, time.Now())
	if err != nil || ran || v != "already-done" {
		t.Fatalf("v=%v ran=%v err=%v", v, ran, err)
	}
}

func TestExecuteReportsFirstErrorByIndex(t *testing.T) {
	boom := errors.New("boom")
	p := Plan{
		Experiment: "x",
		Shards: []Shard{
			{Key: "ok", Run: func() (any, error) { return 1, nil }},
			{Key: "bad1", Run: func() (any, error) { return nil, boom }},
			{Key: "bad2", Run: func() (any, error) { return nil, errors.New("later") }},
		},
		Merge: func([]any) (*report.Doc, error) { t.Fatal("merge must not run"); return nil, nil },
	}
	e := New(8, 0)
	_, _, err := e.Execute(p)
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "bad1") {
		t.Fatalf("err=%v", err)
	}
	if m := e.Metrics(); m.Errors != 1 {
		t.Fatalf("failed run not counted: metrics=%+v", m)
	}
}

func TestExecuteErrorIsNotCached(t *testing.T) {
	calls := 0
	p := Plan{Experiment: "x", Shards: []Shard{{Key: "flaky", Run: func() (any, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient")
		}
		return "ok", nil
	}}}, Merge: func(parts []any) (*report.Doc, error) { return docOf(parts[0].(string)), nil }}
	e := New(1, 0)
	if _, _, err := e.Execute(p); err == nil {
		t.Fatal("first run should fail")
	}
	out, _, err := e.Execute(p)
	if err != nil || docLine(out) != "ok" {
		t.Fatalf("retry: out=%q err=%v", docLine(out), err)
	}
}

func TestExecuteRecoversShardPanic(t *testing.T) {
	p := Plan{Experiment: "x", Shards: []Shard{{Key: "p", Run: func() (any, error) {
		panic("kaboom")
	}}}, Merge: func([]any) (*report.Doc, error) { return report.NewDoc(), nil }}
	_, _, err := New(2, 0).Execute(p)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err=%v", err)
	}
}

func TestKeyIsCollisionResistantOnSeparators(t *testing.T) {
	if Key("a|b", "c") == Key("a", "b|c") {
		t.Fatal("naive join would collide")
	}
	if Key("exp", "fp", "s") != Key("exp", "fp", "s") {
		t.Fatal("key not deterministic")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // touch a: now b is LRU
		t.Fatal("a missing")
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should survive")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestCachePurgeAndHitRate(t *testing.T) {
	c := NewCache(8)
	c.Put("k", "v")
	c.Get("k")
	c.Get("absent")
	if hr := c.Stats().HitRate(); hr != 0.5 {
		t.Fatalf("hit rate %v", hr)
	}
	c.Purge()
	if _, ok := c.Get("k"); ok {
		t.Fatal("purge left entries behind")
	}
	if c.Stats().Entries != 0 {
		t.Fatal("entries after purge")
	}
}

// overlappingPlan builds a plan over an explicit key set, counting
// executions per key.
func overlappingPlan(exp, fp string, keys []string, executed *atomic.Int64) Plan {
	shards := make([]Shard, len(keys))
	for i, key := range keys {
		shards[i] = Shard{Key: key, Run: func() (any, error) {
			executed.Add(1)
			return key, nil
		}}
	}
	return Plan{
		Experiment:  exp,
		Fingerprint: fp,
		Shards:      shards,
		Merge: func(parts []any) (*report.Doc, error) {
			ss := make([]string, len(parts))
			for i, p := range parts {
				ss[i] = p.(string)
			}
			return docOf(strings.Join(ss, "|")), nil
		},
	}
}

func TestExecuteBatchDeduplicatesShards(t *testing.T) {
	var n atomic.Int64
	e := New(4, 0)
	plans := []Plan{
		overlappingPlan("exp", "fp", []string{"a", "b"}, &n),
		overlappingPlan("exp", "fp", []string{"b", "c"}, &n), // b shared with plan 0
		overlappingPlan("exp", "fp", []string{"a", "b"}, &n), // fully duplicate point
	}
	outs, stats, errs, bs := e.ExecuteBatch(plans)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
	}
	if docLine(outs[0]) != "a|b" || docLine(outs[1]) != "b|c" || docLine(outs[2]) != "a|b" {
		t.Fatalf("outs=%v", outs)
	}
	if n.Load() != 3 {
		t.Fatalf("unique shards a,b,c should execute once each, got %d executions", n.Load())
	}
	if bs.Plans != 3 || bs.ShardRefs != 6 || bs.UniqueShards != 3 || bs.Deduplicated != 3 ||
		bs.Executed != 3 || bs.CacheHits != 0 {
		t.Fatalf("batch stats=%+v", bs)
	}
	// First-owner accounting: plan 0 owns a+b, plan 1 owns c, plan 2 owns nothing.
	if stats[0].Executed != 2 || stats[1].Executed != 1 || stats[2].Executed != 0 {
		t.Fatalf("per-plan executed: %+v", stats)
	}
	for i, st := range stats {
		if st.CacheHits+st.Executed != st.Shards {
			t.Fatalf("plan %d accounting does not close: %+v", i, st)
		}
	}
}

func TestExecuteBatchSharesCacheWithSingleRuns(t *testing.T) {
	var n atomic.Int64
	e := New(4, 0)
	if _, _, err := e.Execute(overlappingPlan("exp", "fp", []string{"a", "b"}, &n)); err != nil {
		t.Fatal(err)
	}
	outs, stats, errs, bs := e.ExecuteBatch([]Plan{
		overlappingPlan("exp", "fp", []string{"a", "b"}, &n), // fully pre-run
		overlappingPlan("exp", "fp", []string{"b", "c"}, &n), // only c is new
	})
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("errs=%v", errs)
	}
	if n.Load() != 3 {
		t.Fatalf("batch after single run should only execute c: %d total executions", n.Load())
	}
	if bs.CacheHits != 2 || bs.Executed != 1 || bs.UniqueShards != 3 {
		t.Fatalf("batch stats=%+v", bs)
	}
	if stats[0].CacheHits != 2 || stats[0].Executed != 0 ||
		stats[1].CacheHits != 1 || stats[1].Executed != 1 {
		t.Fatalf("per-plan stats=%+v", stats)
	}
	if docLine(outs[0]) != "a|b" || docLine(outs[1]) != "b|c" {
		t.Fatalf("outs=%v", outs)
	}
	// And the reverse direction: a later single run hits the batch's shards.
	_, st, err := e.Execute(overlappingPlan("exp", "fp", []string{"c"}, &n))
	if err != nil || st.Executed != 0 || st.CacheHits != 1 {
		t.Fatalf("single run after batch: stats=%+v err=%v", st, err)
	}
}

func TestExecuteBatchIsolatesFailures(t *testing.T) {
	boom := errors.New("boom")
	good := Plan{Experiment: "x", Fingerprint: "fp",
		Shards: []Shard{{Key: "ok", Run: func() (any, error) { return "fine", nil }}},
		Merge:  func(parts []any) (*report.Doc, error) { return docOf(parts[0].(string)), nil }}
	bad := Plan{Experiment: "x", Fingerprint: "fp",
		Shards: []Shard{
			{Key: "ok", Run: func() (any, error) { return "fine", nil }},
			{Key: "bad", Run: func() (any, error) { return nil, boom }},
		},
		Merge: func([]any) (*report.Doc, error) { t.Fatal("failed plan must not merge"); return nil, nil }}
	e := New(4, 0)
	outs, _, errs, _ := e.ExecuteBatch([]Plan{good, bad})
	if errs[0] != nil || docLine(outs[0]) != "fine" {
		t.Fatalf("healthy plan poisoned: out=%q err=%v", docLine(outs[0]), errs[0])
	}
	if !errors.Is(errs[1], boom) || !strings.Contains(errs[1].Error(), "bad") {
		t.Fatalf("errs[1]=%v", errs[1])
	}
	if m := e.Metrics(); m.Errors != 1 || m.Runs != 2 {
		t.Fatalf("metrics=%+v", m)
	}
}

func TestExecuteBatchEmpty(t *testing.T) {
	outs, stats, errs, bs := New(2, 0).ExecuteBatch(nil)
	if len(outs) != 0 || len(stats) != 0 || len(errs) != 0 || bs.Plans != 0 {
		t.Fatalf("empty batch: outs=%v bs=%+v", outs, bs)
	}
}

// fakeRemote answers a fixed set of keys as a remote tier would.
type fakeRemote struct {
	answers map[string]any
	calls   atomic.Int64
}

func (f *fakeRemote) Resolve(key string, req RemoteRequest) (any, string, bool, error) {
	f.calls.Add(1)
	if v, ok := f.answers[key]; ok {
		return v, "http://peer-1", true, nil
	}
	return nil, "", false, nil
}

// TestRemoteTierAccounting pins the remote tier's contract: a shard
// answered remotely counts as a cache hit (never an execution), its
// event carries Tier "remote" and the answering peer, the answer lands
// in the local mem tier so a re-run stays local, and the RemoteLookup
// aggregate counts exactly the remote hits.
func TestRemoteTierAccounting(t *testing.T) {
	keyA := Key("exp", "fp", "a")
	fr := &fakeRemote{answers: map[string]any{keyA: "from-peer"}}
	e := New(2, 0)
	e.AttachRemote(fr)

	var mu sync.Mutex
	events := map[string]ShardEvent{}
	plan := func() Plan {
		return Plan{Experiment: "exp", Fingerprint: "fp",
			Remote: "meta", // non-nil: shards are eligible for remote dispatch
			Shards: []Shard{
				{Key: "a", Run: func() (any, error) { t.Error("shard a must resolve remotely"); return nil, nil }},
				{Key: "b", Run: func() (any, error) { return "local", nil }},
			},
			OnShard: func(ev ShardEvent) {
				mu.Lock()
				events[ev.Key] = ev
				mu.Unlock()
			},
			Merge: func(parts []any) (*report.Doc, error) {
				return docOf(parts[0].(string) + "+" + parts[1].(string)), nil
			}}
	}
	out, stats, err := e.Execute(plan())
	if err != nil {
		t.Fatal(err)
	}
	if got := docLine(out); got != "from-peer+local" {
		t.Fatalf("merged %q", got)
	}
	if stats.Executed != 1 || stats.CacheHits != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	mu.Lock()
	evA, evB := events["a"], events["b"]
	mu.Unlock()
	if !evA.Cached || evA.Tier != TierRemote || evA.Peer != "http://peer-1" {
		t.Fatalf("remote shard event: %+v", evA)
	}
	if evB.Cached || evB.Peer != "" {
		t.Fatalf("local shard event: %+v", evB)
	}
	m := e.Metrics()
	if m.RemoteLookup.Count != 1 || m.ShardsExecuted != 1 {
		t.Fatalf("metrics: remote=%d executed=%d", m.RemoteLookup.Count, m.ShardsExecuted)
	}

	// Re-run: the remote answer was installed in the mem tier, so the
	// fleet is not consulted again.
	calls := fr.calls.Load()
	if _, stats, err = e.Execute(plan()); err != nil || stats.CacheHits != 2 {
		t.Fatalf("warm rerun: stats=%+v err=%v", stats, err)
	}
	if fr.calls.Load() != calls {
		t.Fatal("warm rerun consulted the remote tier")
	}

	// A nil Plan.Remote keeps every shard local — the peer-side loop
	// guard (ResolveLocal passes nil meta) relies on this.
	e2 := New(2, 0)
	fr2 := &fakeRemote{answers: map[string]any{keyA: "from-peer"}}
	e2.AttachRemote(fr2)
	p := plan()
	p.Remote = nil
	p.Shards[0] = Shard{Key: "a", Run: func() (any, error) { return "local-a", nil }}
	if out, _, err := e2.Execute(p); err != nil || docLine(out) != "local-a+local" {
		t.Fatalf("nil-meta run: %v %v", out, err)
	}
	if fr2.calls.Load() != 0 {
		t.Fatal("nil Plan.Remote still consulted the remote tier")
	}
}

// TestRemoteTierErrorFallsBackLocally pins the degraded path: a remote
// tier that fails never fails the run — the shard executes locally and
// the error is counted.
func TestRemoteTierErrorFallsBackLocally(t *testing.T) {
	e := New(1, 0)
	e.AttachRemote(failingRemote{})
	p := Plan{Experiment: "exp", Fingerprint: "fp", Remote: "meta",
		Shards: []Shard{{Key: "a", Run: func() (any, error) { return "ok", nil }}},
		Merge:  func(parts []any) (*report.Doc, error) { return docOf(parts[0].(string)), nil }}
	out, stats, err := e.Execute(p)
	if err != nil || docLine(out) != "ok" || stats.Executed != 1 {
		t.Fatalf("out=%v stats=%+v err=%v", out, stats, err)
	}
	if m := e.Metrics(); m.RemoteErrors != 1 {
		t.Fatalf("RemoteErrors = %d, want 1", m.RemoteErrors)
	}
}

type failingRemote struct{}

func (failingRemote) Resolve(string, RemoteRequest) (any, string, bool, error) {
	return nil, "", false, errors.New("every peer failed")
}
