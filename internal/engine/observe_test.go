package engine

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// collectEvents runs the plan with a synchronized OnShard observer and
// returns the events in arrival order.
func collectEvents(t *testing.T, e *Engine, p Plan) ([]ShardEvent, RunStats) {
	t.Helper()
	var mu sync.Mutex
	var events []ShardEvent
	p.OnShard = func(ev ShardEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	_, stats, err := e.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	return events, stats
}

// Every shard must produce exactly one event, and the event's
// cached/tier/worker fields must be consistent with what actually
// happened: a cold run executes everything on real worker slots, a
// repeat is served entirely from the memory tier with no worker.
func TestShardEventsExactlyOncePerShard(t *testing.T) {
	const workers, shards = 4, 12
	var n atomic.Int64
	e := New(workers, 0)

	cold, stats := collectEvents(t, e, countingPlan("exp", "fp", shards, &n))
	if len(cold) != shards {
		t.Fatalf("cold run: %d events for %d shards", len(cold), shards)
	}
	seen := map[int]bool{}
	for _, ev := range cold {
		if seen[ev.Index] {
			t.Fatalf("shard %d reported twice", ev.Index)
		}
		seen[ev.Index] = true
		if ev.Cached || ev.Tier != "" {
			t.Fatalf("cold shard %d marked cached (tier %q)", ev.Index, ev.Tier)
		}
		if ev.Worker < 0 || ev.Worker >= workers {
			t.Fatalf("cold shard %d on worker %d, want [0,%d)", ev.Index, ev.Worker, workers)
		}
		if ev.Queue < 0 || ev.Wall <= 0 || ev.Err != nil {
			t.Fatalf("cold shard %d: queue=%v wall=%v err=%v", ev.Index, ev.Queue, ev.Wall, ev.Err)
		}
	}
	if stats.Executed != shards || stats.QueueWait < 0 {
		t.Fatalf("cold stats: %+v", stats)
	}

	warm, stats := collectEvents(t, e, countingPlan("exp", "fp", shards, &n))
	if len(warm) != shards {
		t.Fatalf("warm run: %d events for %d shards", len(warm), shards)
	}
	for _, ev := range warm {
		if !ev.Cached || ev.Tier != TierMem {
			t.Fatalf("warm shard %d: cached=%v tier=%q, want mem hit", ev.Index, ev.Cached, ev.Tier)
		}
		if ev.Worker != -1 {
			t.Fatalf("warm shard %d claims worker %d, want -1", ev.Index, ev.Worker)
		}
	}
	if stats.CacheHits != shards || stats.Executed != 0 || stats.QueueWait != 0 {
		t.Fatalf("warm stats: %+v", stats)
	}
	if n.Load() != shards {
		t.Fatalf("shards executed %d times total, want %d", n.Load(), shards)
	}
}

// A recorded cold run must carry the whole lifecycle: one plan-scoped
// barrier and merge, and per shard one lookup (a miss), one queue
// wait, and one execute span whose worker matches its queue wait's.
func TestRecorderSpansCoverLifecycle(t *testing.T) {
	const workers, shards = 2, 6
	var n atomic.Int64
	e := New(workers, 0)
	rec := obs.NewRecorder(0)
	e.SetRecorder(rec)
	if _, _, err := e.Execute(countingPlan("exp", "fp", shards, &n)); err != nil {
		t.Fatal(err)
	}
	st := rec.Stats()
	for kind, want := range map[string]uint64{
		"cache_miss": shards, "queue_wait": shards, "execute": shards,
		"barrier": 1, "merge": 1, "cache_mem": 0, "cache_disk": 0,
	} {
		if got := st[kind].Count; got != want {
			t.Fatalf("%s spans = %d, want %d (stats %+v)", kind, got, want, st)
		}
	}
	byShard := map[string][]obs.Span{}
	for _, s := range rec.Snapshot() {
		if s.Kind == obs.QueueWait || s.Kind == obs.Execute {
			if s.Worker < 0 || int(s.Worker) >= workers {
				t.Fatalf("span %+v has out-of-range worker", s)
			}
			byShard[s.Shard] = append(byShard[s.Shard], s)
		}
	}
	if len(byShard) != shards {
		t.Fatalf("spans cover %d shards, want %d", len(byShard), shards)
	}
	for key, ss := range byShard {
		if len(ss) != 2 || ss[0].Worker != ss[1].Worker {
			t.Fatalf("shard %s spans inconsistent: %+v", key, ss)
		}
		for _, s := range ss {
			if s.Kind == obs.Execute && s.Bytes <= 0 {
				t.Fatalf("executed shard %s has no payload size: %+v", key, s)
			}
		}
	}

	// A warm re-run records mem-tier lookups and nothing pool-side.
	if _, _, err := e.Execute(countingPlan("exp", "fp", shards, &n)); err != nil {
		t.Fatal(err)
	}
	st = rec.Stats()
	if st["cache_mem"].Count != shards || st["execute"].Count != shards {
		t.Fatalf("warm rerun stats wrong: %+v", st)
	}
}

// One worker slot is serial: its execute spans must not overlap. The
// engine releases the slot only after the execution interval is
// measured, so this holds exactly, not just statistically.
func TestExecuteSpansNonOverlappingPerWorker(t *testing.T) {
	const workers, shards = 2, 10
	e := New(workers, 0)
	rec := obs.NewRecorder(0)
	e.SetRecorder(rec)
	p := countingPlan("exp", "fp", shards, new(atomic.Int64))
	for i := range p.Shards {
		run := p.Shards[i].Run
		p.Shards[i].Run = func() (any, error) {
			time.Sleep(time.Millisecond)
			return run()
		}
	}
	if _, _, err := e.Execute(p); err != nil {
		t.Fatal(err)
	}
	byWorker := map[int32][]obs.Span{}
	for _, s := range rec.Snapshot() {
		if s.Kind == obs.Execute {
			byWorker[s.Worker] = append(byWorker[s.Worker], s)
		}
	}
	var total int
	for w, ss := range byWorker {
		total += len(ss)
		sort.Slice(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
		for i := 1; i < len(ss); i++ {
			if ss[i].Start < ss[i-1].End() {
				t.Fatalf("worker %d spans overlap: %s [%v,%v) then %s [%v,%v)",
					w, ss[i-1].Shard, ss[i-1].Start, ss[i-1].End(),
					ss[i].Shard, ss[i].Start, ss[i].End())
			}
		}
	}
	if total != shards {
		t.Fatalf("execute spans = %d, want %d", total, shards)
	}
}

// The always-on latency aggregates (queue wait, per-tier lookups) must
// fill without any recorder attached — they feed /v1/metrics and
// -stats, which cannot require tracing.
func TestLatencyAggregatesWithoutRecorder(t *testing.T) {
	const shards = 5
	var n atomic.Int64
	e := New(2, 0)
	if _, _, err := e.Execute(countingPlan("exp", "fp", shards, &n)); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.QueueWait.Count != shards || m.MissLookup.Count != shards || m.MemLookup.Count != 0 {
		t.Fatalf("cold aggregates: %+v", m)
	}
	if _, _, err := e.Execute(countingPlan("exp", "fp", shards, &n)); err != nil {
		t.Fatal(err)
	}
	m = e.Metrics()
	if m.MemLookup.Count != shards || m.QueueWait.Count != shards {
		t.Fatalf("warm aggregates: %+v", m)
	}
	if m.QueueWait.Avg() < 0 || m.MemLookup.Avg() < 0 {
		t.Fatal("negative average latency")
	}
}
