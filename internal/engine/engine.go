// Package engine executes experiment plans concurrently. A Plan
// decomposes one experiment run into deterministic Shards (per-module or
// per-configuration slices of a sweep); the Engine runs the shards on a
// bounded worker pool, memoizes every completed shard in a
// content-addressed cache — an in-memory LRU, optionally layered over a
// persistent DiskCache so a restarted process warm-starts — and hands
// the ordered shard payloads to the plan's Merge to build the exact
// result document the serial path would have produced.
//
// The engine is generic: it knows nothing about DRAM or the paper. The
// core package builds plans; cmd/rowpress, cmd/rowpressd, and the bench
// harness pick the worker count and share engines (and therefore caches)
// across requests.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/report"
)

// Shard is one deterministic unit of work within a plan. Key must be
// unique within the plan and stable across runs with equal inputs: it is
// the final component of the shard's cache address. Run must be pure —
// equal (experiment, fingerprint, key) must produce an equal payload —
// and the returned payload must never be mutated afterwards, because the
// cache hands the same value to later runs.
type Shard struct {
	Key string
	Run func() (any, error)
}

// ShardEvent describes one resolved shard of an Execute call: either a
// cache hit (Cached, Wall 0) or a completed execution. Err is non-nil
// when the shard failed.
type ShardEvent struct {
	Index  int           // shard index within the plan
	Key    string        // the shard's plan-level key
	Cached bool          // served from a cache tier or a joined in-flight run
	Wall   time.Duration // execution time when this call ran the shard
	Err    error
}

// Plan is a decomposed experiment run. Merge receives the shard payloads
// in shard order (index i holds the result of Shards[i]) and assembles
// the final typed result document. OnShard, when set, is invoked once
// per shard as it resolves — possibly concurrently from worker
// goroutines, so observers must synchronize — before Merge runs; the
// serving layer uses it to stream per-shard completion events.
type Plan struct {
	Experiment  string // experiment id, e.g. "fig6"
	Fingerprint string // canonical encoding of the run options
	Shards      []Shard
	Merge       func(parts []any) (*report.Doc, error)
	OnShard     func(ShardEvent)
}

// RunStats describes one Execute call.
type RunStats struct {
	Shards    int           // shards in the plan
	CacheHits int           // shards served from the cache or a concurrent in-flight execution
	Executed  int           // shards this call actually ran
	Wall      time.Duration // wall-clock time of the whole Execute, merge included
}

// Metrics are cumulative engine-lifetime counters plus a snapshot of
// both cache tiers. CacheHits/CacheMisses are the engine's run-level
// view (a hit from either tier counts once); Mem and Disk break the
// tiers out with their own entries/hits/misses/evictions.
type Metrics struct {
	Runs           uint64
	ShardsPlanned  uint64
	ShardsExecuted uint64
	CacheHits      uint64
	CacheMisses    uint64
	Errors         uint64
	TotalWall      time.Duration
	TotalShardTime time.Duration
	Mem            CacheStats     // in-memory tier snapshot
	Disk           DiskCacheStats // disk tier snapshot (zero when none attached)
}

// Engine is a worker-pool scheduler with a shared result cache. Safe for
// concurrent use: the worker bound holds across concurrent Execute
// calls, and identical shards requested concurrently are computed once
// (the later request joins the in-flight execution).
type Engine struct {
	workers int
	cache   *Cache
	disk    *DiskCache    // optional persistent tier under the LRU
	sem     chan struct{} // engine-wide worker slots

	ifmu     sync.Mutex
	inflight map[string]*inflightShard

	mu      sync.Mutex
	metrics Metrics
}

// inflightShard is one shard execution in progress; concurrent requests
// for the same key wait on done instead of recomputing.
type inflightShard struct {
	done chan struct{}
	val  any
	err  error
}

// DefaultCacheEntries bounds the shared shard cache when callers have no
// stronger opinion. A full `rowpress all` at one option set plans well
// under a thousand shards, so this holds several distinct sweeps.
const DefaultCacheEntries = 4096

// New returns an engine running at most workers shards concurrently with
// a cache of at most cacheEntries completed shards. workers <= 0 selects
// GOMAXPROCS; cacheEntries <= 0 selects DefaultCacheEntries.
func New(workers, cacheEntries int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cacheEntries <= 0 {
		cacheEntries = DefaultCacheEntries
	}
	return &Engine{
		workers:  workers,
		cache:    NewCache(cacheEntries),
		sem:      make(chan struct{}, workers),
		inflight: map[string]*inflightShard{},
	}
}

// Workers returns the concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// Cache exposes the engine's in-memory shard cache (for stats and
// purging).
func (e *Engine) Cache() *Cache { return e.cache }

// AttachDiskCache layers a persistent content-addressed store under the
// in-memory LRU: lookups fall through to it on a memory miss (promoting
// hits back into memory), and completed shards are written through to
// it. Attach before serving; the engine does not synchronize the swap
// against in-flight Executes.
func (e *Engine) AttachDiskCache(dc *DiskCache) { e.disk = dc }

// Disk returns the attached persistent tier, or nil.
func (e *Engine) Disk() *DiskCache { return e.disk }

// Metrics returns a snapshot of the cumulative counters and both cache
// tiers.
func (e *Engine) Metrics() Metrics {
	e.mu.Lock()
	m := e.metrics
	e.mu.Unlock()
	m.Mem = e.cache.Stats()
	if e.disk != nil {
		m.Disk = e.disk.Stats()
	}
	return m
}

// tierGet looks key up in the memory tier and then the disk tier,
// promoting disk hits into memory so subsequent lookups stay hot.
func (e *Engine) tierGet(key string) (any, bool) {
	if v, ok := e.cache.Get(key); ok {
		return v, true
	}
	if e.disk != nil {
		if v, ok := e.disk.Get(key); ok {
			e.cache.Put(key, v)
			return v, true
		}
	}
	return nil, false
}

// tierPut writes a completed shard payload to both tiers.
func (e *Engine) tierPut(key string, v any) {
	e.cache.Put(key, v)
	if e.disk != nil {
		e.disk.Put(key, v)
	}
}

// Execute runs the plan: cached shards are served from the memory tier
// (falling back to the disk tier when one is attached), the rest run on
// the worker pool, and Merge assembles the payloads in shard order into
// the result document. The first shard error (by shard index) aborts
// the run.
func (e *Engine) Execute(p Plan) (*report.Doc, RunStats, error) {
	start := time.Now()
	stats := RunStats{Shards: len(p.Shards)}

	parts := make([]any, len(p.Shards))
	errs := make([]error, len(p.Shards))
	var missing []int
	keys := make([]string, len(p.Shards))
	for i, s := range p.Shards {
		keys[i] = Key(p.Experiment, p.Fingerprint, s.Key)
		if v, ok := e.tierGet(keys[i]); ok {
			parts[i] = v
			stats.CacheHits++
			if p.OnShard != nil {
				p.OnShard(ShardEvent{Index: i, Key: s.Key, Cached: true})
			}
		} else {
			missing = append(missing, i)
		}
	}

	var shardTime time.Duration
	var joined int // shards adopted from a concurrent in-flight execution
	if len(missing) > 0 {
		var wg sync.WaitGroup
		var tmu sync.Mutex
		for _, i := range missing {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				v, ran, d, err := e.runOrJoin(keys[i], p.Shards[i])
				if p.OnShard != nil {
					p.OnShard(ShardEvent{Index: i, Key: p.Shards[i].Key, Cached: !ran, Wall: d, Err: err})
				}
				tmu.Lock()
				parts[i], errs[i] = v, err
				shardTime += d
				if !ran {
					joined++
				}
				tmu.Unlock()
			}(i)
		}
		wg.Wait()
		stats.Executed = len(missing) - joined
		stats.CacheHits += joined
	}

	var firstErr error
	for _, i := range missing {
		if errs[i] != nil {
			firstErr = fmt.Errorf("engine: %s shard %q: %w", p.Experiment, p.Shards[i].Key, errs[i])
			break
		}
	}

	var out *report.Doc
	if firstErr == nil {
		var err error
		out, err = p.Merge(parts)
		if err != nil {
			firstErr = fmt.Errorf("engine: %s merge: %w", p.Experiment, err)
		}
	}
	stats.Wall = time.Since(start)

	e.mu.Lock()
	e.metrics.Runs++
	e.metrics.ShardsPlanned += uint64(stats.Shards)
	e.metrics.ShardsExecuted += uint64(stats.Executed)
	e.metrics.CacheHits += uint64(stats.CacheHits)
	e.metrics.CacheMisses += uint64(stats.Executed)
	e.metrics.TotalWall += stats.Wall
	e.metrics.TotalShardTime += shardTime
	if firstErr != nil {
		e.metrics.Errors++
	}
	e.mu.Unlock()

	if firstErr != nil {
		return nil, stats, firstErr
	}
	return out, stats, nil
}

// BatchStats describes one ExecuteBatch call. Shard references are
// counted twice: ShardRefs is the plan-side view (every shard of every
// plan), while UniqueShards is the engine-side view after key
// deduplication — the most work the batch could possibly run.
type BatchStats struct {
	Plans        int
	ShardRefs    int // shards across all plans, duplicates included
	UniqueShards int // distinct shard keys in the batch
	Deduplicated int // refs beyond the first occurrence of their key
	CacheHits    int // unique shards served from the cache (or joined in-flight)
	Executed     int // unique shards this call actually ran
	Wall         time.Duration
}

// batchShard is the shared execution slot for one unique key in a batch.
type batchShard struct {
	shard  Shard // the first-seen Shard for this key (all are equivalent)
	val    any
	err    error
	cached bool          // served from the cache or a concurrent in-flight run
	owner  int           // index of the first plan referencing this key
	dur    time.Duration // execution time when this batch ran it
}

// ExecuteBatch runs many plans as one deduplicated unit of work: the
// union of all shard keys is computed up front, each unique shard is
// fetched from the cache or executed exactly once on the worker pool,
// and every plan's Merge then assembles its report from the shared
// payloads. Plans are independent: a shard or merge failure poisons only
// the plans that reference it, reported per-plan in errs.
//
// Per-plan RunStats follow first-owner accounting: the first plan
// referencing a shard records its execution, and every later plan
// records a cache hit — so summing Executed over stats equals
// BatchStats.Executed, and each plan's CacheHits+Executed equals its
// shard count, exactly as if the plans had run sequentially through
// Execute. Per-plan Wall is the compute attributed to that plan (its
// owned shard time plus its merge), not batch wall clock.
func (e *Engine) ExecuteBatch(plans []Plan) (outs []*report.Doc, stats []RunStats, errs []error, bs BatchStats) {
	start := time.Now()
	bs.Plans = len(plans)
	outs = make([]*report.Doc, len(plans))
	stats = make([]RunStats, len(plans))
	errs = make([]error, len(plans))

	keys := make([][]string, len(plans))
	slots := map[string]*batchShard{}
	var order []string // unique keys in first-occurrence order
	for pi, p := range plans {
		keys[pi] = make([]string, len(p.Shards))
		stats[pi].Shards = len(p.Shards)
		bs.ShardRefs += len(p.Shards)
		for si, s := range p.Shards {
			k := Key(p.Experiment, p.Fingerprint, s.Key)
			keys[pi][si] = k
			if _, ok := slots[k]; ok {
				bs.Deduplicated++
				continue
			}
			slots[k] = &batchShard{shard: s, owner: pi}
			order = append(order, k)
		}
	}
	bs.UniqueShards = len(order)

	var missing []string
	for _, k := range order {
		if v, ok := e.tierGet(k); ok {
			slots[k].val, slots[k].cached = v, true
			bs.CacheHits++
		} else {
			missing = append(missing, k)
		}
	}

	var shardTime time.Duration
	if len(missing) > 0 {
		var wg sync.WaitGroup
		var tmu sync.Mutex
		for _, k := range missing {
			wg.Add(1)
			go func(k string) {
				defer wg.Done()
				v, ran, d, err := e.runOrJoin(k, slots[k].shard)
				tmu.Lock()
				sl := slots[k]
				sl.val, sl.err, sl.dur = v, err, d
				if ran {
					bs.Executed++
				} else {
					sl.cached = true // joined a concurrent execution
					bs.CacheHits++
				}
				shardTime += d
				tmu.Unlock()
			}(k)
		}
		wg.Wait()
	}

	for pi, p := range plans {
		parts := make([]any, len(p.Shards))
		for si := range p.Shards {
			sl := slots[keys[pi][si]]
			if sl.err != nil && errs[pi] == nil {
				errs[pi] = fmt.Errorf("engine: %s shard %q: %w", p.Experiment, p.Shards[si].Key, sl.err)
			}
			parts[si] = sl.val
			if sl.cached || sl.owner != pi {
				stats[pi].CacheHits++
			} else {
				stats[pi].Executed++
				stats[pi].Wall += sl.dur
			}
		}
		if errs[pi] != nil {
			continue
		}
		t0 := time.Now()
		out, err := p.Merge(parts)
		stats[pi].Wall += time.Since(t0)
		if err != nil {
			errs[pi] = fmt.Errorf("engine: %s merge: %w", p.Experiment, err)
			continue
		}
		outs[pi] = out
	}
	bs.Wall = time.Since(start)

	e.mu.Lock()
	e.metrics.Runs += uint64(len(plans))
	e.metrics.ShardsPlanned += uint64(bs.ShardRefs)
	e.metrics.ShardsExecuted += uint64(bs.Executed)
	e.metrics.CacheMisses += uint64(bs.Executed)
	for pi := range plans {
		e.metrics.CacheHits += uint64(stats[pi].CacheHits)
		if errs[pi] != nil {
			e.metrics.Errors++
		}
	}
	e.metrics.TotalWall += bs.Wall
	e.metrics.TotalShardTime += shardTime
	e.mu.Unlock()
	return outs, stats, errs, bs
}

// runOrJoin executes the shard under the engine-wide worker bound,
// deduplicating against concurrent executions of the same key: the first
// caller runs (and caches the result), later callers wait for it. ran
// reports whether this caller did the work; d is its execution time.
func (e *Engine) runOrJoin(key string, s Shard) (v any, ran bool, d time.Duration, err error) {
	e.ifmu.Lock()
	if c, ok := e.inflight[key]; ok {
		e.ifmu.Unlock()
		<-c.done
		return c.val, false, 0, c.err
	}
	// Re-check the cache under ifmu: a shard that completed after our
	// caller's cache miss Put its result *before* deregistering from
	// inflight, so absent-from-inflight + present-in-cache is authoritative
	// and the result must not be recomputed. peek keeps the hit/miss
	// counters honest (the caller already recorded this lookup as a miss).
	if v, ok := e.cache.peek(key); ok {
		e.ifmu.Unlock()
		return v, false, 0, nil
	}
	c := &inflightShard{done: make(chan struct{})}
	e.inflight[key] = c
	e.ifmu.Unlock()

	e.sem <- struct{}{}
	t0 := time.Now()
	c.val, c.err = runShard(s)
	d = time.Since(t0)
	<-e.sem
	if c.err == nil {
		e.tierPut(key, c.val)
	}

	e.ifmu.Lock()
	delete(e.inflight, key)
	e.ifmu.Unlock()
	close(c.done)
	return c.val, true, d, c.err
}

// runShard isolates shard panics so a bad regenerator cannot take down a
// serving daemon.
func runShard(s Shard) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("shard panic: %v", r)
		}
	}()
	return s.Run()
}
