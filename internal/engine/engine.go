// Package engine executes experiment plans concurrently. A Plan
// decomposes one experiment run into deterministic Shards (per-module or
// per-configuration slices of a sweep); the Engine runs the shards on a
// bounded worker pool, memoizes every completed shard in a
// content-addressed cache — an in-memory LRU, optionally layered over a
// persistent DiskCache so a restarted process warm-starts — and hands
// the ordered shard payloads to the plan's Merge to build the exact
// result document the serial path would have produced.
//
// The engine is generic: it knows nothing about DRAM or the paper. The
// core package builds plans; cmd/rowpress, cmd/rowpressd, and the bench
// harness pick the worker count and share engines (and therefore caches)
// across requests.
package engine

import (
	"encoding/gob"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
)

// Shard is one deterministic unit of work within a plan. Key must be
// unique within the plan and stable across runs with equal inputs: it is
// the final component of the shard's cache address. Run must be pure —
// equal (experiment, fingerprint, key) must produce an equal payload —
// and the returned payload must never be mutated afterwards, because the
// cache hands the same value to later runs.
//
// A shard may declare a second-level split instead of a Run: Subs lists
// independently cache-keyed sub-shards and Gather folds their payloads
// (index j holds the result of Subs[j], regardless of completion order)
// into the shard's own payload, which is cached under the shard's key
// exactly as if Run had produced it — warm runs hit at the unit level
// and never touch the subs. Run is ignored when Subs is non-empty. The
// split is one level deep: sub-shards cannot split further.
type Shard struct {
	Key string
	Run func() (any, error)

	Subs   []SubShard
	Gather func(subs []any) (any, error)
}

// SubShard is one unit of a shard's declared split. Key must be unique
// within the parent shard and stable across runs; the sub-shard's cache
// address is derived from the parent's, so equal (experiment,
// fingerprint, shard key, sub key) means an equal payload. Run carries
// the same purity and immutability contract as Shard.Run.
type SubShard struct {
	Key string
	Run func() (any, error)
}

// Cache tiers as they appear in ShardEvent.Tier and the serving
// layer's metrics. TierJoin marks a shard adopted from a concurrent
// in-flight execution — cached from this call's point of view, though
// no cache tier answered it. TierRemote marks a shard answered by a
// fabric peer's tiers or pool over the wire (see RemoteTier).
const (
	TierMem    = "mem"
	TierDisk   = "disk"
	TierJoin   = "join"
	TierRemote = "remote"
)

// ShardEvent describes one resolved shard of an Execute call: either a
// cache hit (Cached, Wall 0, Tier naming the tier that answered) or a
// completed execution (Worker is the pool slot that ran it, Queue the
// dispatch→execution wait). Err is non-nil when the shard failed. A
// split shard is executed by many pool slots at once, so its Worker is
// -1; Subs and SubsRun break out how much of its split ran.
type ShardEvent struct {
	Index   int           // shard index within the plan
	Key     string        // the shard's plan-level key
	Cached  bool          // served from a cache tier or a joined in-flight run
	Tier    string        // "mem", "disk", "join", or "remote" when Cached; "" when executed
	Peer    string        // answering peer's URL when Tier is "remote"
	Worker  int           // worker slot that executed the shard; -1 when cached or split
	Queue   time.Duration // time between dispatch and execution start (summed over subs)
	Wall    time.Duration // execution time when this call ran the shard (summed over subs)
	Subs    int           // sub-shards the shard declares (0 for a leaf shard)
	SubsRun int           // sub-shards this call actually ran
	Err     error
}

// Plan is a decomposed experiment run. Merge receives the shard payloads
// in shard order (index i holds the result of Shards[i]) and assembles
// the final typed result document. OnShard, when set, is invoked once
// per shard as it resolves — possibly concurrently from worker
// goroutines, so observers must synchronize — before Merge runs; the
// serving layer uses it to stream per-shard completion events.
type Plan struct {
	Experiment  string // experiment id, e.g. "fig6"
	Fingerprint string // canonical encoding of the run options
	Shards      []Shard
	Merge       func(parts []any) (*report.Doc, error)
	OnShard     func(ShardEvent)

	// Remote is opaque plan metadata handed to an attached RemoteTier so
	// a fabric peer can rebuild the same plan from first principles (the
	// core package stamps the normalized run options here). A nil Remote
	// keeps every shard local — ResolveLocal relies on this to guarantee
	// a peer serving a dispatched shard can never re-dispatch it.
	Remote any
}

// RunStats describes one Execute call. Shard counts are unit-level: a
// split shard counts once in Shards/Executed/CacheHits; its declared
// and actually-run sub-shards are broken out in SubShards/SubExecuted.
type RunStats struct {
	Shards      int           // shards in the plan
	CacheHits   int           // shards served from the cache or a concurrent in-flight execution
	Executed    int           // shards this call actually ran
	SubShards   int           // sub-shards declared across the plan's split shards
	SubExecuted int           // sub-shards this call actually ran
	QueueWait   time.Duration // summed dispatch→execution wait across executed shards
	Wall        time.Duration // wall-clock time of the whole Execute, merge included
}

// LatencyStats is an always-on (count, total) latency aggregate — the
// cheap complement of the span recorder, maintained whether or not
// tracing is enabled so /v1/metrics can report queue dynamics and
// tier-attributed cache latency at all times.
type LatencyStats struct {
	Count uint64
	Total time.Duration
}

// Avg returns Total/Count, or 0 before any observation.
func (s LatencyStats) Avg() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Sub returns the aggregate accumulated between prev and s — both
// snapshots of the same monotone counter. A prev that is ahead of s
// (snapshots of different engines) yields a zero aggregate.
func (s LatencyStats) Sub(prev LatencyStats) LatencyStats {
	if prev.Count > s.Count || prev.Total > s.Total {
		return LatencyStats{}
	}
	return LatencyStats{Count: s.Count - prev.Count, Total: s.Total - prev.Total}
}

// latCounter is the lock-free accumulator behind LatencyStats.
type latCounter struct {
	count atomic.Uint64
	ns    atomic.Int64
}

func (l *latCounter) add(d time.Duration) {
	l.count.Add(1)
	l.ns.Add(int64(d))
}

func (l *latCounter) stats() LatencyStats {
	return LatencyStats{Count: l.count.Load(), Total: time.Duration(l.ns.Load())}
}

// Metrics are cumulative engine-lifetime counters plus a snapshot of
// both cache tiers. CacheHits/CacheMisses are the engine's run-level
// view (a hit from either tier counts once); Mem and Disk break the
// tiers out with their own entries/hits/misses/evictions.
type Metrics struct {
	Runs              uint64
	ShardsPlanned     uint64
	ShardsExecuted    uint64
	SubShardsPlanned  uint64 // sub-shards declared by split shards across all runs
	SubShardsExecuted uint64 // sub-shards actually run (cached subs and warm units excluded)
	CacheHits         uint64
	CacheMisses       uint64
	Errors            uint64
	TotalWall         time.Duration
	TotalShardTime    time.Duration
	Mem               CacheStats     // in-memory tier snapshot
	Disk              DiskCacheStats // disk tier snapshot (zero when none attached)

	// Queue dynamics and tier-attributed lookup latency, maintained
	// regardless of whether a span recorder is attached.
	QueueWait    LatencyStats // dispatch→execution wait per executed shard
	MemLookup    LatencyStats // lookups answered by the in-memory tier
	DiskLookup   LatencyStats // lookups answered by the persistent tier
	MissLookup   LatencyStats // lookups answered by neither tier
	RemoteLookup LatencyStats // shards answered by a fabric peer (count = remote hits)

	// RemoteErrors counts dispatches that exhausted the remote tier
	// (every attempted peer failed) and fell back to local execution.
	RemoteErrors uint64
}

// Sub returns the counter window accumulated between prev and m: the
// cumulative counters and latency aggregates subtracted, the cache-tier
// snapshots carried from m (tier entries/bytes are states, not
// counters). The run ledger uses this to attribute queue-wait and
// per-tier lookup latency to one run's lifetime.
func (m Metrics) Sub(prev Metrics) Metrics {
	out := m
	out.Runs -= min(prev.Runs, m.Runs)
	out.ShardsPlanned -= min(prev.ShardsPlanned, m.ShardsPlanned)
	out.ShardsExecuted -= min(prev.ShardsExecuted, m.ShardsExecuted)
	out.SubShardsPlanned -= min(prev.SubShardsPlanned, m.SubShardsPlanned)
	out.SubShardsExecuted -= min(prev.SubShardsExecuted, m.SubShardsExecuted)
	out.CacheHits -= min(prev.CacheHits, m.CacheHits)
	out.CacheMisses -= min(prev.CacheMisses, m.CacheMisses)
	out.Errors -= min(prev.Errors, m.Errors)
	if prev.TotalWall < m.TotalWall {
		out.TotalWall = m.TotalWall - prev.TotalWall
	} else {
		out.TotalWall = 0
	}
	if prev.TotalShardTime < m.TotalShardTime {
		out.TotalShardTime = m.TotalShardTime - prev.TotalShardTime
	} else {
		out.TotalShardTime = 0
	}
	out.QueueWait = m.QueueWait.Sub(prev.QueueWait)
	out.MemLookup = m.MemLookup.Sub(prev.MemLookup)
	out.DiskLookup = m.DiskLookup.Sub(prev.DiskLookup)
	out.MissLookup = m.MissLookup.Sub(prev.MissLookup)
	out.RemoteLookup = m.RemoteLookup.Sub(prev.RemoteLookup)
	out.RemoteErrors -= min(prev.RemoteErrors, m.RemoteErrors)
	return out
}

// RemoteRequest carries everything a remote tier needs to address one
// shard on a peer: the experiment id and the plan's Remote metadata
// (enough to rebuild the plan), plus the plan-level shard key and —
// when dispatching one unit of a declared split — the sub-shard key.
type RemoteRequest struct {
	Experiment string
	Meta       any    // Plan.Remote, opaque to the engine
	Shard      string // plan-level shard key
	Sub        string // sub-shard key; "" for a leaf or unit dispatch
}

// RemoteTier answers shard addresses from a peer fleet. Resolve is
// consulted in runOrJoin after the in-flight and cache re-checks and
// before a worker slot is taken, so remote resolutions never occupy
// the local pool. ok=false with a nil error means "execute locally"
// (the key hashes to this process, or the owning peer's circuit is
// open); a non-nil error means every attempted peer failed — the
// engine counts it and executes locally, so a degraded fleet is
// slower, never wrong. peer names the answering peer on success.
type RemoteTier interface {
	Resolve(key string, req RemoteRequest) (v any, peer string, ok bool, err error)
}

// Engine is a worker-pool scheduler with a shared result cache. Safe for
// concurrent use: the worker bound holds across concurrent Execute
// calls, and identical shards requested concurrently are computed once
// (the later request joins the in-flight execution).
type Engine struct {
	workers int
	cache   *Cache
	disk    *DiskCache // optional persistent tier under the LRU
	remote  RemoteTier // optional fabric tier between disk and execute
	sem     chan int   // engine-wide worker slots; the value is the slot id
	rec     *obs.Recorder

	// Always-on latency aggregates (see Metrics).
	queueWait  latCounter
	memLat     latCounter
	diskLat    latCounter
	missLat    latCounter
	remoteLat  latCounter
	remoteErrs atomic.Uint64

	ifmu     sync.Mutex
	inflight map[string]*inflightShard

	mu      sync.Mutex
	metrics Metrics
}

// inflightShard is one shard execution in progress; concurrent requests
// for the same key wait on done instead of recomputing.
type inflightShard struct {
	done chan struct{}
	val  any
	err  error
}

// DefaultCacheEntries bounds the shared shard cache when callers have no
// stronger opinion. A full `rowpress all` at one option set plans well
// under a thousand shards, so this holds several distinct sweeps.
const DefaultCacheEntries = 4096

// New returns an engine running at most workers shards concurrently with
// a cache of at most cacheEntries completed shards. workers <= 0 selects
// GOMAXPROCS; cacheEntries <= 0 selects DefaultCacheEntries.
func New(workers, cacheEntries int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cacheEntries <= 0 {
		cacheEntries = DefaultCacheEntries
	}
	e := &Engine{
		workers:  workers,
		cache:    NewCache(cacheEntries),
		sem:      make(chan int, workers),
		inflight: map[string]*inflightShard{},
	}
	for i := 0; i < workers; i++ {
		e.sem <- i
	}
	return e
}

// Workers returns the concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// Cache exposes the engine's in-memory shard cache (for stats and
// purging).
func (e *Engine) Cache() *Cache { return e.cache }

// AttachDiskCache layers a persistent content-addressed store under the
// in-memory LRU: lookups fall through to it on a memory miss (promoting
// hits back into memory), and completed shards are written through to
// it. Attach before serving; the engine does not synchronize the swap
// against in-flight Executes.
func (e *Engine) AttachDiskCache(dc *DiskCache) { e.disk = dc }

// Disk returns the attached persistent tier, or nil.
func (e *Engine) Disk() *DiskCache { return e.disk }

// AttachRemote slots a fabric remote tier beneath the local cache
// tiers and above local execution: a shard that misses mem and disk is
// offered to the remote tier before it takes a worker slot. Only plans
// carrying Remote metadata are dispatched. Attach before serving; the
// engine does not synchronize the swap against in-flight Executes.
func (e *Engine) AttachRemote(r RemoteTier) { e.remote = r }

// Remote returns the attached remote tier, or nil.
func (e *Engine) Remote() RemoteTier { return e.remote }

// SetRecorder attaches a span recorder: every subsequent shard
// lifecycle (queue wait, cache lookup, execute, merge, barrier) is
// recorded into it. nil detaches — the engine then pays only a
// pointer check per potential span. Attach before executing; the
// engine does not synchronize the swap against in-flight runs.
func (e *Engine) SetRecorder(r *obs.Recorder) { e.rec = r }

// Recorder returns the attached span recorder, or nil.
func (e *Engine) Recorder() *obs.Recorder { return e.rec }

// Metrics returns a snapshot of the cumulative counters and both cache
// tiers.
func (e *Engine) Metrics() Metrics {
	e.mu.Lock()
	m := e.metrics
	e.mu.Unlock()
	m.Mem = e.cache.Stats()
	if e.disk != nil {
		m.Disk = e.disk.Stats()
	}
	m.QueueWait = e.queueWait.stats()
	m.MemLookup = e.memLat.stats()
	m.DiskLookup = e.diskLat.stats()
	m.MissLookup = e.missLat.stats()
	m.RemoteLookup = e.remoteLat.stats()
	m.RemoteErrors = e.remoteErrs.Load()
	return m
}

// tierGet looks key up in the memory tier and then the disk tier,
// promoting disk hits into memory so subsequent lookups stay hot.
// tier names the tier that answered ("" on a miss); lat is the lookup
// latency, also folded into the always-on per-tier aggregates.
func (e *Engine) tierGet(key string) (v any, tier string, lat time.Duration, ok bool) {
	t0 := time.Now()
	if v, ok := e.cache.Get(key); ok {
		lat = time.Since(t0)
		e.memLat.add(lat)
		return v, TierMem, lat, true
	}
	if e.disk != nil {
		if v, ok := e.disk.Get(key); ok {
			e.cache.Put(key, v)
			lat = time.Since(t0)
			e.diskLat.add(lat)
			return v, TierDisk, lat, true
		}
	}
	lat = time.Since(t0)
	e.missLat.add(lat)
	return nil, "", lat, false
}

// tierPut writes a completed shard payload to both tiers.
func (e *Engine) tierPut(key string, v any) {
	e.cache.Put(key, v)
	if e.disk != nil {
		e.disk.Put(key, v)
	}
}

// Execute runs the plan: cached shards are served from the memory tier
// (falling back to the disk tier when one is attached), the rest run on
// the worker pool, and Merge assembles the payloads in shard order into
// the result document. The first shard error (by shard index) aborts
// the run.
func (e *Engine) Execute(p Plan) (*report.Doc, RunStats, error) {
	start := time.Now()
	stats := RunStats{Shards: len(p.Shards)}

	parts := make([]any, len(p.Shards))
	errs := make([]error, len(p.Shards))
	var missing []int
	keys := make([]string, len(p.Shards))
	for i, s := range p.Shards {
		keys[i] = Key(p.Experiment, p.Fingerprint, s.Key)
		stats.SubShards += len(s.Subs)
		v, tier, lat, ok := e.tierGet(keys[i])
		if e.rec != nil {
			e.rec.Record(lookupKind(tier), -1, i, p.Experiment, s.Key, time.Now().Add(-lat), lat, 0)
		}
		if ok {
			parts[i] = v
			stats.CacheHits++
			if p.OnShard != nil {
				p.OnShard(ShardEvent{Index: i, Key: s.Key, Cached: true, Tier: tier, Worker: -1, Subs: len(s.Subs)})
			}
		} else {
			missing = append(missing, i)
		}
	}

	var shardTime time.Duration
	var joined int // shards adopted from a concurrent in-flight execution
	if len(missing) > 0 {
		barrierStart := time.Now()
		var wg sync.WaitGroup
		var tmu sync.Mutex
		for _, i := range missing {
			wg.Add(1)
			enq := time.Now()
			go func(i int) {
				defer wg.Done()
				v, ran, wid, qd, d, subsRun, peer, err := e.resolveShard(keys[i], p.Shards[i], p.Experiment, p.Remote, i, enq)
				if p.OnShard != nil {
					ev := ShardEvent{Index: i, Key: p.Shards[i].Key, Cached: !ran, Worker: wid,
						Queue: qd, Wall: d, Subs: len(p.Shards[i].Subs), SubsRun: subsRun, Err: err}
					if !ran {
						ev.Tier = TierJoin
						if peer != "" {
							ev.Tier, ev.Peer = TierRemote, peer
						}
					}
					p.OnShard(ev)
				}
				tmu.Lock()
				parts[i], errs[i] = v, err
				shardTime += d
				stats.QueueWait += qd
				stats.SubExecuted += subsRun
				if !ran {
					joined++
				}
				tmu.Unlock()
			}(i)
		}
		wg.Wait()
		if e.rec != nil {
			e.rec.Record(obs.Barrier, -1, -1, p.Experiment, "", barrierStart, time.Since(barrierStart), 0)
		}
		stats.Executed = len(missing) - joined
		stats.CacheHits += joined
	}

	var firstErr error
	for _, i := range missing {
		if errs[i] != nil {
			firstErr = fmt.Errorf("engine: %s shard %q: %w", p.Experiment, p.Shards[i].Key, errs[i])
			break
		}
	}

	var out *report.Doc
	if firstErr == nil {
		var err error
		var mt time.Time
		if e.rec != nil {
			mt = time.Now()
		}
		out, err = p.Merge(parts)
		if e.rec != nil {
			e.rec.Record(obs.Merge, -1, -1, p.Experiment, "", mt, time.Since(mt), 0)
		}
		if err != nil {
			firstErr = fmt.Errorf("engine: %s merge: %w", p.Experiment, err)
		}
	}
	stats.Wall = time.Since(start)

	e.mu.Lock()
	e.metrics.Runs++
	e.metrics.ShardsPlanned += uint64(stats.Shards)
	e.metrics.ShardsExecuted += uint64(stats.Executed)
	e.metrics.SubShardsPlanned += uint64(stats.SubShards)
	e.metrics.SubShardsExecuted += uint64(stats.SubExecuted)
	e.metrics.CacheHits += uint64(stats.CacheHits)
	e.metrics.CacheMisses += uint64(stats.Executed)
	e.metrics.TotalWall += stats.Wall
	e.metrics.TotalShardTime += shardTime
	if firstErr != nil {
		e.metrics.Errors++
	}
	e.mu.Unlock()

	if firstErr != nil {
		return nil, stats, firstErr
	}
	return out, stats, nil
}

// BatchStats describes one ExecuteBatch call. Shard references are
// counted twice: ShardRefs is the plan-side view (every shard of every
// plan), while UniqueShards is the engine-side view after key
// deduplication — the most work the batch could possibly run.
type BatchStats struct {
	Plans        int
	ShardRefs    int // shards across all plans, duplicates included
	UniqueShards int // distinct shard keys in the batch
	Deduplicated int // refs beyond the first occurrence of their key
	CacheHits    int // unique shards served from the cache (or joined in-flight)
	Executed     int // unique shards this call actually ran
	SubExecuted  int // sub-shards this call actually ran, across all split shards
	QueueWait    time.Duration
	Wall         time.Duration
}

// batchShard is the shared execution slot for one unique key in a batch.
type batchShard struct {
	shard  Shard // the first-seen Shard for this key (all are equivalent)
	val    any
	err    error
	cached bool          // served from the cache or a concurrent in-flight run
	owner  int           // index of the first plan referencing this key
	queue  time.Duration // dispatch→execution wait when this batch ran it
	dur    time.Duration // execution time when this batch ran it
	subs   int           // sub-shards run when this batch executed a split shard
}

// ExecuteBatch runs many plans as one deduplicated unit of work: the
// union of all shard keys is computed up front, each unique shard is
// fetched from the cache or executed exactly once on the worker pool,
// and every plan's Merge then assembles its report from the shared
// payloads. Plans are independent: a shard or merge failure poisons only
// the plans that reference it, reported per-plan in errs.
//
// Per-plan RunStats follow first-owner accounting: the first plan
// referencing a shard records its execution, and every later plan
// records a cache hit — so summing Executed over stats equals
// BatchStats.Executed, and each plan's CacheHits+Executed equals its
// shard count, exactly as if the plans had run sequentially through
// Execute. Per-plan Wall is the compute attributed to that plan (its
// owned shard time plus its merge), not batch wall clock.
func (e *Engine) ExecuteBatch(plans []Plan) (outs []*report.Doc, stats []RunStats, errs []error, bs BatchStats) {
	start := time.Now()
	bs.Plans = len(plans)
	outs = make([]*report.Doc, len(plans))
	stats = make([]RunStats, len(plans))
	errs = make([]error, len(plans))

	keys := make([][]string, len(plans))
	slots := map[string]*batchShard{}
	var order []string // unique keys in first-occurrence order
	for pi, p := range plans {
		keys[pi] = make([]string, len(p.Shards))
		stats[pi].Shards = len(p.Shards)
		bs.ShardRefs += len(p.Shards)
		for si, s := range p.Shards {
			k := Key(p.Experiment, p.Fingerprint, s.Key)
			keys[pi][si] = k
			stats[pi].SubShards += len(s.Subs)
			if _, ok := slots[k]; ok {
				bs.Deduplicated++
				continue
			}
			slots[k] = &batchShard{shard: s, owner: pi}
			order = append(order, k)
		}
	}
	bs.UniqueShards = len(order)

	var missing []string
	for _, k := range order {
		sl := slots[k]
		v, tier, lat, ok := e.tierGet(k)
		if e.rec != nil {
			e.rec.Record(lookupKind(tier), -1, -1, plans[sl.owner].Experiment, sl.shard.Key, time.Now().Add(-lat), lat, 0)
		}
		if ok {
			sl.val, sl.cached = v, true
			bs.CacheHits++
		} else {
			missing = append(missing, k)
		}
	}

	var shardTime time.Duration
	if len(missing) > 0 {
		barrierStart := time.Now()
		var wg sync.WaitGroup
		var tmu sync.Mutex
		for _, k := range missing {
			wg.Add(1)
			enq := time.Now()
			go func(k string) {
				defer wg.Done()
				sl := slots[k]
				v, ran, _, qd, d, subsRun, _, err := e.resolveShard(k, sl.shard, plans[sl.owner].Experiment, plans[sl.owner].Remote, -1, enq)
				tmu.Lock()
				sl.val, sl.err, sl.queue, sl.dur, sl.subs = v, err, qd, d, subsRun
				if ran {
					bs.Executed++
					bs.SubExecuted += subsRun
					bs.QueueWait += qd
				} else {
					sl.cached = true // joined a concurrent execution
					bs.CacheHits++
				}
				shardTime += d
				tmu.Unlock()
			}(k)
		}
		wg.Wait()
		if e.rec != nil {
			e.rec.Record(obs.Barrier, -1, -1, "batch", "", barrierStart, time.Since(barrierStart), 0)
		}
	}

	for pi, p := range plans {
		parts := make([]any, len(p.Shards))
		for si := range p.Shards {
			sl := slots[keys[pi][si]]
			if sl.err != nil && errs[pi] == nil {
				errs[pi] = fmt.Errorf("engine: %s shard %q: %w", p.Experiment, p.Shards[si].Key, sl.err)
			}
			parts[si] = sl.val
			if sl.cached || sl.owner != pi {
				stats[pi].CacheHits++
			} else {
				stats[pi].Executed++
				stats[pi].SubExecuted += sl.subs
				stats[pi].QueueWait += sl.queue
				stats[pi].Wall += sl.dur
			}
		}
		if errs[pi] != nil {
			continue
		}
		t0 := time.Now()
		out, err := p.Merge(parts)
		if e.rec != nil {
			e.rec.Record(obs.Merge, -1, -1, p.Experiment, "", t0, time.Since(t0), 0)
		}
		stats[pi].Wall += time.Since(t0)
		if err != nil {
			errs[pi] = fmt.Errorf("engine: %s merge: %w", p.Experiment, err)
			continue
		}
		outs[pi] = out
	}
	bs.Wall = time.Since(start)

	e.mu.Lock()
	e.metrics.Runs += uint64(len(plans))
	e.metrics.ShardsPlanned += uint64(bs.ShardRefs)
	e.metrics.ShardsExecuted += uint64(bs.Executed)
	e.metrics.SubShardsExecuted += uint64(bs.SubExecuted)
	e.metrics.CacheMisses += uint64(bs.Executed)
	for pi := range plans {
		e.metrics.SubShardsPlanned += uint64(stats[pi].SubShards)
		e.metrics.CacheHits += uint64(stats[pi].CacheHits)
		if errs[pi] != nil {
			e.metrics.Errors++
		}
	}
	e.metrics.TotalWall += bs.Wall
	e.metrics.TotalShardTime += shardTime
	e.mu.Unlock()
	return outs, stats, errs, bs
}

// lookupKind maps a tierGet result onto its span kind.
func lookupKind(tier string) obs.Kind {
	switch tier {
	case TierMem:
		return obs.CacheMem
	case TierDisk:
		return obs.CacheDisk
	default:
		return obs.CacheMiss
	}
}

// resolveShard serves one missing plan shard: a leaf shard goes through
// runOrJoin directly; a shard with a declared split fans its sub-shards
// out on the pool and gathers. subsRun counts the sub-shards this call
// executed (always 0 for a leaf). meta is the plan's Remote metadata;
// peer names the fabric peer that answered a remotely resolved leaf.
func (e *Engine) resolveShard(key string, s Shard, exp string, meta any, idx int, enq time.Time) (v any, ran bool, wid int, queue, d time.Duration, subsRun int, peer string, err error) {
	if len(s.Subs) == 0 {
		v, ran, wid, queue, d, peer, err = e.runOrJoin(key, s, exp, meta, s.Key, "", idx, enq)
		return v, ran, wid, queue, d, 0, peer, err
	}
	v, ran, queue, d, subsRun, err = e.runSplit(key, s, exp, meta, idx, enq)
	return v, ran, -1, queue, d, subsRun, "", err
}

// SubKey derives a sub-shard's cache address from its parent shard's
// address and the sub key — content-addressed like Key, so the disk
// tier stores sub payloads under the same fixed-length names.
func SubKey(shardKey, subKey string) string {
	return Key(shardKey, "sub", subKey)
}

// runSplit resolves a split shard: concurrent requests for the unit key
// join the in-flight gather exactly as runOrJoin joins a leaf, missing
// sub-shards run through runOrJoin — so they deduplicate, cache, and
// record spans individually — and Gather folds the payloads into the
// unit payload, cached under the unit key. The calling goroutine holds
// no worker slot while its sub-shards queue, so a split never deadlocks
// the pool, even at one worker; only sub-shard executions occupy slots.
// queue and d are summed over the sub-shards this call ran (d includes
// the gather). Sub-shards dispatch to the remote tier individually —
// each carries its own sub key — while the gather always runs locally.
func (e *Engine) runSplit(key string, s Shard, exp string, meta any, idx int, enq time.Time) (v any, ran bool, queue, d time.Duration, subsRun int, err error) {
	e.ifmu.Lock()
	if c, ok := e.inflight[key]; ok {
		e.ifmu.Unlock()
		<-c.done
		return c.val, false, 0, 0, 0, c.err
	}
	// Same authoritative re-check as runOrJoin: a unit that completed
	// after our caller's miss is served from the cache, not recomputed.
	if v, ok := e.cache.peek(key); ok {
		e.ifmu.Unlock()
		return v, false, 0, 0, 0, nil
	}
	c := &inflightShard{done: make(chan struct{})}
	e.inflight[key] = c
	e.ifmu.Unlock()

	parts := make([]any, len(s.Subs))
	serrs := make([]error, len(s.Subs))
	var wg sync.WaitGroup
	var smu sync.Mutex
	for si, sub := range s.Subs {
		skey := SubKey(key, sub.Key)
		label := s.Key + "/" + sub.Key
		sv, tier, lat, ok := e.tierGet(skey)
		if e.rec != nil {
			e.rec.Record(lookupKind(tier), -1, idx, exp, label, time.Now().Add(-lat), lat, 0)
		}
		if ok {
			parts[si] = sv
			continue
		}
		wg.Add(1)
		go func(si int, sub SubShard, skey, label string) {
			defer wg.Done()
			sv, sran, _, sq, sd, _, serr := e.runOrJoin(skey, Shard{Key: label, Run: sub.Run}, exp, meta, s.Key, sub.Key, idx, enq)
			smu.Lock()
			parts[si], serrs[si] = sv, serr
			queue += sq
			d += sd
			if sran {
				subsRun++
			}
			smu.Unlock()
		}(si, sub, skey, label)
	}
	wg.Wait()
	for si, serr := range serrs {
		if serr != nil {
			err = fmt.Errorf("sub-shard %q: %w", s.Subs[si].Key, serr)
			break
		}
	}
	if err == nil {
		t0 := time.Now()
		v, err = gatherShard(s, parts)
		d += time.Since(t0)
		if err == nil {
			e.tierPut(key, v)
		}
	}
	c.val, c.err = v, err

	e.ifmu.Lock()
	delete(e.inflight, key)
	e.ifmu.Unlock()
	close(c.done)
	return v, true, queue, d, subsRun, err
}

// gatherShard isolates Gather panics the way runShard isolates Run's.
func gatherShard(s Shard, parts []any) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("gather panic: %v", r)
		}
	}()
	if s.Gather == nil {
		return nil, fmt.Errorf("shard declares %d sub-shards but no Gather", len(s.Subs))
	}
	return s.Gather(parts)
}

// runOrJoin executes the shard under the engine-wide worker bound,
// deduplicating against concurrent executions of the same key: the first
// caller runs (and caches the result), later callers wait for it. ran
// reports whether this caller did the work; wid is the worker slot that
// carried it (-1 when joined), queue the enq→execution wait, d the
// execution time. exp and idx label the recorded spans.
//
// When a remote tier is attached and the plan carries Remote metadata,
// the shard is offered to the fabric after the in-flight registration
// and before a worker slot is taken: a remote answer (ran=false, peer
// set) fills the in-flight slot and both local cache tiers exactly as
// a local execution would, so concurrent requesters join it and warm
// runs stay local. Remote resolutions never hold a pool slot — a
// coordinator at one worker still fans a whole plan out to its peers.
func (e *Engine) runOrJoin(key string, s Shard, exp string, meta any, shardKey, subKey string, idx int, enq time.Time) (v any, ran bool, wid int, queue, d time.Duration, peer string, err error) {
	e.ifmu.Lock()
	if c, ok := e.inflight[key]; ok {
		e.ifmu.Unlock()
		<-c.done
		return c.val, false, -1, 0, 0, "", c.err
	}
	// Re-check the cache under ifmu: a shard that completed after our
	// caller's cache miss Put its result *before* deregistering from
	// inflight, so absent-from-inflight + present-in-cache is authoritative
	// and the result must not be recomputed. peek keeps the hit/miss
	// counters honest (the caller already recorded this lookup as a miss).
	if v, ok := e.cache.peek(key); ok {
		e.ifmu.Unlock()
		return v, false, -1, 0, 0, "", nil
	}
	c := &inflightShard{done: make(chan struct{})}
	e.inflight[key] = c
	e.ifmu.Unlock()

	if e.remote != nil && meta != nil {
		t0 := time.Now()
		rv, rpeer, ok, rerr := e.remote.Resolve(key, RemoteRequest{Experiment: exp, Meta: meta, Shard: shardKey, Sub: subKey})
		if ok && rerr == nil {
			rlat := time.Since(t0)
			e.remoteLat.add(rlat)
			e.tierPut(key, rv)
			if e.rec != nil {
				e.rec.Record(obs.RemoteDispatch, -1, idx, exp, s.Key, t0, rlat, payloadBytes(rv))
			}
			c.val = rv
			e.ifmu.Lock()
			delete(e.inflight, key)
			e.ifmu.Unlock()
			close(c.done)
			return rv, false, -1, 0, 0, rpeer, nil
		}
		if rerr != nil {
			// Every attempted peer failed: count it and execute locally —
			// a degraded fleet is slower, never wrong.
			e.remoteErrs.Add(1)
		}
	}

	wid = <-e.sem
	queue = time.Since(enq)
	e.queueWait.add(queue)
	if e.rec != nil {
		e.rec.Record(obs.QueueWait, wid, idx, exp, s.Key, enq, queue, 0)
	}
	t0 := time.Now()
	c.val, c.err = runShard(s)
	d = time.Since(t0)
	e.sem <- wid
	if c.err == nil {
		e.tierPut(key, c.val)
	}
	if e.rec != nil {
		var size int64
		if c.err == nil {
			size = payloadBytes(c.val)
		}
		e.rec.Record(obs.Execute, wid, idx, exp, s.Key, t0, d, size)
	}

	e.ifmu.Lock()
	delete(e.inflight, key)
	e.ifmu.Unlock()
	close(c.done)
	return c.val, true, wid, queue, d, "", c.err
}

// ResolveLocal serves one shard address on behalf of a fabric
// coordinator: local cache tiers first, then execution on this
// engine's pool, with full single-flight dedup against concurrent
// local runs and other dispatches of the same key. The plan metadata
// is never consulted — a peer answers purely from its own tiers and
// workers and never re-dispatches, so fabric topologies cannot form
// forwarding loops. tier names the answering tier ("" when this call
// executed the shard); executions and hits land in the engine's
// cumulative metrics so a warm fleet is checkable per daemon.
func (e *Engine) ResolveLocal(key string, s Shard, exp string) (v any, tier string, err error) {
	enq := time.Now()
	v, tier, lat, ok := e.tierGet(key)
	if e.rec != nil {
		e.rec.Record(lookupKind(tier), -1, -1, exp, s.Key, time.Now().Add(-lat), lat, 0)
	}
	if ok {
		e.mu.Lock()
		e.metrics.CacheHits++
		e.mu.Unlock()
		return v, tier, nil
	}

	var ran bool
	var d time.Duration
	var subsRun int
	if len(s.Subs) > 0 {
		v, ran, _, d, subsRun, err = e.runSplit(key, s, exp, nil, -1, enq)
	} else {
		v, ran, _, _, d, _, err = e.runOrJoin(key, s, exp, nil, s.Key, "", -1, enq)
	}
	if !ran {
		tier = TierJoin
	}

	e.mu.Lock()
	if ran {
		e.metrics.ShardsExecuted++
		e.metrics.CacheMisses++
		e.metrics.SubShardsExecuted += uint64(subsRun)
		e.metrics.TotalShardTime += d
	} else {
		e.metrics.CacheHits++
	}
	if err != nil {
		e.metrics.Errors++
	}
	e.mu.Unlock()
	return v, tier, err
}

// countWriter counts bytes written through it.
type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// payloadBytes sizes a shard payload by gob-encoding it into a
// counting writer — the same codec (and type registry) the disk tier
// uses, so the number matches what a distributed shard fabric would
// move. Unregistered payload types size as 0. Only called when a span
// recorder is attached, and after the execute interval is measured,
// so the encoding cost never distorts span timings.
func payloadBytes(v any) int64 {
	var cw countWriter
	if err := gob.NewEncoder(&cw).Encode(&diskPayload{V: v}); err != nil {
		return 0
	}
	return cw.n
}

// runShard isolates shard panics so a bad regenerator cannot take down a
// serving daemon.
func runShard(s Shard) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("shard panic: %v", r)
		}
	}()
	return s.Run()
}
