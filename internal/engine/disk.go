package engine

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// DiskCache is the persistent warm-start tier: a content-addressed
// on-disk store of completed shard payloads, layered under the
// in-memory LRU via Engine.AttachDiskCache. A restarted daemon pointed
// at the same directory answers previously computed runs without
// executing a single shard.
//
// Layout: one gob-encoded file per shard key (the key is already a
// SHA-256 hex digest, so it is a safe filename) plus an index.json with
// per-entry sizes and LRU clocks. The store is corruption-tolerant by
// construction: a file that fails to decode is deleted and reported as
// a miss, a missing or mangled index is rebuilt by scanning the
// directory, and writes go through a temp file + rename so a crash
// never leaves a half-written payload under a live key.
//
// Payloads are encoded as gob `any` values, so every concrete payload
// type must be registered with RegisterPayloadType (core does this for
// all experiment shard types). A Put whose payload has an unregistered
// type is skipped — the entry just stays memory-only.
type DiskCache struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*diskEntry
	seq     uint64 // LRU clock: larger = more recently used
	bytes   int64

	hits, misses, evictions, writes, corrupt, skips, writeErrors uint64
}

type diskEntry struct {
	Size int64  `json:"size"`
	Seq  uint64 `json:"seq"`
}

// DiskCacheStats is a snapshot of the persistent tier.
type DiskCacheStats struct {
	Entries     int
	Bytes       int64
	MaxBytes    int64
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	Writes      uint64
	Corrupt     uint64 // unreadable payload files dropped on load
	Skips       uint64 // Puts skipped (unregistered payload type)
	WriteErrors uint64 // Puts lost to I/O failures (disk full, permissions)
}

// DefaultDiskCacheBytes bounds the persistent tier when callers have no
// stronger opinion: enough for many full `rowpress all` option sets.
const DefaultDiskCacheBytes int64 = 256 << 20

// diskPayload is the gob envelope; the indirection lets one decoder
// recover any registered concrete payload type.
type diskPayload struct {
	V any
}

// RegisterPayloadType registers a shard payload's concrete type with
// the disk-cache codec. Call once per type at init time.
func RegisterPayloadType(v any) { gob.Register(v) }

// EncodePayload writes v in the payload wire format shared by the disk
// tier and the shard fabric: the gob envelope that lets one decoder
// recover any registered concrete type. Peers on the same build are
// byte-compatible by construction.
func EncodePayload(w io.Writer, v any) error {
	return gob.NewEncoder(w).Encode(&diskPayload{V: v})
}

// DecodePayload reads one payload written by EncodePayload.
func DecodePayload(r io.Reader) (any, error) {
	var p diskPayload
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, err
	}
	return p.V, nil
}

// OpenDiskCache opens (creating if needed) the store rooted at dir,
// bounded to maxBytes of payload data (<= 0 selects
// DefaultDiskCacheBytes). The index is loaded when present and
// consistent; otherwise the directory scan is authoritative.
func OpenDiskCache(dir string, maxBytes int64) (*DiskCache, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultDiskCacheBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: disk cache: %w", err)
	}
	dc := &DiskCache{dir: dir, maxBytes: maxBytes, entries: map[string]*diskEntry{}}
	dc.load()
	return dc, nil
}

// Dir returns the store's root directory.
func (dc *DiskCache) Dir() string { return dc.dir }

const diskIndexName = "index.json"

func (dc *DiskCache) payloadPath(key string) string {
	return filepath.Join(dc.dir, key+".gob")
}

// load populates the index from disk: the directory scan is the source
// of truth for which entries exist and how big they are; index.json
// only contributes recency clocks (so LRU order survives restarts).
// Any failure degrades to "fewer warm entries", never to an error.
func (dc *DiskCache) load() {
	saved := map[string]*diskEntry{}
	if b, err := os.ReadFile(filepath.Join(dc.dir, diskIndexName)); err == nil {
		// A mangled index is ignored wholesale; the scan below rebuilds it.
		_ = json.Unmarshal(b, &saved)
	}
	names, err := os.ReadDir(dc.dir)
	if err != nil {
		return
	}
	for _, de := range names {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		// Orphaned temp files from a crash between CreateTemp and rename
		// would otherwise accumulate outside the byte bound forever.
		if strings.HasPrefix(name, "put-") || (strings.HasPrefix(name, "index-") && name != diskIndexName) {
			_ = os.Remove(filepath.Join(dc.dir, name))
			continue
		}
		if !strings.HasSuffix(name, ".gob") {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		key := strings.TrimSuffix(name, ".gob")
		e := &diskEntry{Size: info.Size()}
		if s, ok := saved[key]; ok {
			e.Seq = s.Seq
		}
		if e.Seq > dc.seq {
			dc.seq = e.Seq
		}
		dc.entries[key] = e
		dc.bytes += e.Size
	}
	dc.evictLocked()
}

// Get returns the payload stored under key. Decode failures delete the
// offending file and report a miss, so one corrupt entry costs one
// recomputation, not a wedged store.
func (dc *DiskCache) Get(key string) (any, bool) {
	dc.mu.Lock()
	e, ok := dc.entries[key]
	if !ok {
		dc.misses++
		dc.mu.Unlock()
		return nil, false
	}
	dc.seq++
	e.Seq = dc.seq
	dc.mu.Unlock()

	b, err := os.ReadFile(dc.payloadPath(key))
	var p diskPayload
	if err == nil {
		err = gob.NewDecoder(bytes.NewReader(b)).Decode(&p)
	}
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if err != nil {
		dc.corrupt++
		dc.misses++
		dc.dropLocked(key)
		return nil, false
	}
	dc.hits++
	return p.V, true
}

// Put stores the payload under key, evicting least-recently-used
// entries while the store exceeds its byte bound. Unencodable payloads
// (unregistered types) are skipped silently.
func (dc *DiskCache) Put(key string, val any) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(diskPayload{V: val}); err != nil {
		dc.mu.Lock()
		dc.skips++
		dc.mu.Unlock()
		return
	}
	// An I/O failure (disk full, permissions) degrades the entry to
	// memory-only, but is counted so operators see persistence stalling
	// instead of a silently cold next restart.
	tmp, err := os.CreateTemp(dc.dir, "put-*")
	if err != nil {
		dc.mu.Lock()
		dc.writeErrors++
		dc.mu.Unlock()
		return
	}
	_, werr := tmp.Write(buf.Bytes())
	cerr := tmp.Close()
	if werr != nil || cerr != nil || os.Rename(tmp.Name(), dc.payloadPath(key)) != nil {
		_ = os.Remove(tmp.Name())
		dc.mu.Lock()
		dc.writeErrors++
		dc.mu.Unlock()
		return
	}

	dc.mu.Lock()
	defer dc.mu.Unlock()
	if old, ok := dc.entries[key]; ok {
		dc.bytes -= old.Size
	}
	dc.seq++
	dc.entries[key] = &diskEntry{Size: int64(buf.Len()), Seq: dc.seq}
	dc.bytes += int64(buf.Len())
	dc.writes++
	dc.evictLocked()
}

// dropLocked removes one entry and its file. Caller holds mu.
func (dc *DiskCache) dropLocked(key string) {
	if e, ok := dc.entries[key]; ok {
		dc.bytes -= e.Size
		delete(dc.entries, key)
	}
	_ = os.Remove(dc.payloadPath(key))
}

// evictLocked enforces the byte bound by dropping least-recently-used
// entries. Caller holds mu. Entry counts are small (thousands), so a
// linear minimum scan per eviction is cheaper than maintaining a heap.
func (dc *DiskCache) evictLocked() {
	for dc.bytes > dc.maxBytes && len(dc.entries) > 0 {
		var oldestKey string
		var oldestSeq uint64
		first := true
		//lint:ignore rowpressvet/maprange Seq is a strictly increasing LRU clock, so the minimum is unique and the scan's visit order cannot change the victim; eviction affects cache retention only, never report bytes
		for k, e := range dc.entries {
			if first || e.Seq < oldestSeq {
				oldestKey, oldestSeq, first = k, e.Seq, false
			}
		}
		dc.dropLocked(oldestKey)
		dc.evictions++
	}
}

// Flush persists the index (entry sizes and LRU clocks) atomically.
// Payload files are durable as soon as Put returns; flushing only
// preserves recency order across restarts, so a crash between flushes
// costs eviction-order fidelity, not data.
func (dc *DiskCache) Flush() error {
	dc.mu.Lock()
	b, err := json.MarshalIndent(dc.entries, "", " ")
	dc.mu.Unlock()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dc.dir, "index-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dc.dir, diskIndexName))
}

// Stats returns a snapshot of the tier.
func (dc *DiskCache) Stats() DiskCacheStats {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return DiskCacheStats{
		Entries:     len(dc.entries),
		Bytes:       dc.bytes,
		MaxBytes:    dc.maxBytes,
		Hits:        dc.hits,
		Misses:      dc.misses,
		Evictions:   dc.evictions,
		Writes:      dc.writes,
		Corrupt:     dc.corrupt,
		Skips:       dc.skips,
		WriteErrors: dc.writeErrors,
	}
}
