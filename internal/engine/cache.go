package engine

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"sync"
)

// Key derives the content address of a shard result: the SHA-256 of the
// (experiment, fingerprint, shard key) triple. Components are joined with
// an unambiguous separator so no two distinct triples collide.
func Key(parts ...string) string {
	h := sha256.Sum256([]byte(strings.Join(parts, "\x1f")))
	return hex.EncodeToString(h[:])
}

// CacheStats is a snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Entries   int
	Evictions uint64
}

// HitRate returns hits / (hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a bounded, content-addressed, in-memory store of completed
// shard payloads with LRU eviction. Safe for concurrent use. Payloads are
// shared by reference: callers must treat them as immutable.
type Cache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key string
	val any
}

// NewCache returns a cache holding at most capEntries payloads.
func NewCache(capEntries int) *Cache {
	if capEntries < 1 {
		capEntries = 1
	}
	return &Cache{cap: capEntries, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the payload stored under key, marking it recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// peek returns the payload stored under key without touching the
// hit/miss counters or recency — for internal re-checks that already
// recorded their lookup via Get.
func (c *Cache) peek(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).val, true
}

// Put stores the payload under key, evicting the least recently used
// entry if the cache is full.
func (c *Cache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Purge drops all entries (counters are kept).
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = map[string]*list.Element{}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len(), Evictions: c.evictions}
}
