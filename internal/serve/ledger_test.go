package serve

// Integration tests for the run-ledger surface: run/sweep stamping,
// /v1/history and /v1/compare in all three formats, warm-starting
// /v1/results from the ledger after a restart, the histogram bucket
// fields /v1/metrics must expose, and the load-test harness driving a
// live server end to end.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/ledger"
	"repro/internal/report"
)

func newLedgerServer(t *testing.T, dir string) (*Server, *httptest.Server, *ledger.Ledger) {
	t.Helper()
	led, err := ledger.Open(dir, 0)
	if err != nil {
		t.Fatalf("ledger.Open: %v", err)
	}
	t.Cleanup(func() { led.Close() })
	s := New(engine.New(4, 0), WithLedger(led))
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts, led
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestRunsStampLedgerRecords(t *testing.T) {
	_, ts, led := newLedgerServer(t, t.TempDir())
	// Cold run misses every shard; the identical warm run hits memory.
	for i := 0; i < 2; i++ {
		if code, body := getBody(t, ts.URL+"/v1/run/fig6?scale=0.05"); code != http.StatusOK {
			t.Fatalf("run %d: code=%d body=%s", i, code, body)
		}
	}
	recs := led.Records(ledger.Query{Experiment: "fig6", Kind: ledger.KindRun})
	if len(recs) != 2 {
		t.Fatalf("ledger holds %d fig6 run records, want 2", len(recs))
	}
	warm, cold := recs[0], recs[1]
	if cold.Tiers.Miss == 0 || cold.Tiers.Mem != 0 {
		t.Fatalf("cold run tiers %+v, want all misses", cold.Tiers)
	}
	if warm.Tiers.Mem == 0 || warm.Tiers.Miss != 0 {
		t.Fatalf("warm run tiers %+v, want all mem hits", warm.Tiers)
	}
	if cold.OptionsHash == "" || cold.OptionsHash != warm.OptionsHash {
		t.Fatalf("options hashes differ for identical requests: %q vs %q", cold.OptionsHash, warm.OptionsHash)
	}
	if cold.DocHash == "" || cold.DocHash != warm.DocHash {
		t.Fatalf("doc hashes differ for identical requests: %q vs %q", cold.DocHash, warm.DocHash)
	}
	if cold.Tiers.Total() != cold.Shards {
		t.Fatalf("tier split %+v does not account for %d shards", cold.Tiers, cold.Shards)
	}
}

func TestSweepStampsLedgerRecord(t *testing.T) {
	_, ts, led := newLedgerServer(t, t.TempDir())
	body := `{"experiment":"fig6","scales":[0.05,0.1]}`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: code=%d", resp.StatusCode)
	}
	recs := led.Records(ledger.Query{Kind: ledger.KindSweep})
	if len(recs) != 1 {
		t.Fatalf("ledger holds %d sweep records, want 1", len(recs))
	}
	r := recs[0]
	if r.Experiment != "fig6" || r.OptionsHash == "" || r.DocHash == "" || r.Shards == 0 {
		t.Fatalf("sweep record incomplete: %+v", r)
	}
}

func TestHistoryEndpointFormats(t *testing.T) {
	_, ts, _ := newLedgerServer(t, t.TempDir())
	if code, body := getBody(t, ts.URL+"/v1/run/fig6?scale=0.05"); code != http.StatusOK {
		t.Fatalf("run: code=%d body=%s", code, body)
	}

	if code, body := getBody(t, ts.URL+"/v1/history"); code != http.StatusOK ||
		!strings.Contains(body, `"kind": "run"`) && !strings.Contains(body, `"kind":"run"`) {
		t.Fatalf("history json: code=%d body=%s", code, body)
	}
	if code, body := getBody(t, ts.URL+"/v1/history?format=text"); code != http.StatusOK ||
		!strings.Contains(body, "run history") || !strings.Contains(body, "fig6") {
		t.Fatalf("history text: code=%d body=%s", code, body)
	}
	if code, body := getBody(t, ts.URL+"/v1/history?format=csv"); code != http.StatusOK ||
		!strings.Contains(body, "fig6") {
		t.Fatalf("history csv: code=%d body=%s", code, body)
	}
	// Filters apply.
	if code, body := getBody(t, ts.URL+"/v1/history?experiment=nosuch"); code != http.StatusOK ||
		strings.TrimSpace(body) != "[]" {
		t.Fatalf("filtered history: code=%d body=%q", code, body)
	}
	if code, _ := getBody(t, ts.URL+"/v1/history?limit=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad limit: code=%d, want 400", code)
	}
}

func TestCompareEndpoint(t *testing.T) {
	_, ts, _ := newLedgerServer(t, t.TempDir())
	for i := 0; i < 2; i++ {
		if code, body := getBody(t, ts.URL+"/v1/run/fig6?scale=0.05"); code != http.StatusOK {
			t.Fatalf("run %d: code=%d body=%s", i, code, body)
		}
	}

	// Equal experiment selectors compare previous vs latest.
	code, body := getBody(t, ts.URL+"/v1/compare?a=fig6&b=fig6&format=text")
	if code != http.StatusOK {
		t.Fatalf("compare text: code=%d body=%s", code, body)
	}
	for _, want := range []string{"tier shift", "doc hashes match"} {
		if !strings.Contains(body, want) {
			t.Fatalf("compare text missing %q:\n%s", want, body)
		}
	}

	var cr CompareResponse
	resp := getJSON(t, ts.URL+"/v1/compare?a=fig6~1&b=fig6~0", &cr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compare json: code=%d", resp.StatusCode)
	}
	if !cr.DeterminismChecked || cr.DeterminismViolation {
		t.Fatalf("identical runs: checked=%v violation=%v", cr.DeterminismChecked, cr.DeterminismViolation)
	}
	if cr.Doc == nil || cr.A.ID == "" || cr.B.ID == "" {
		t.Fatalf("compare json incomplete: %+v", cr)
	}

	if code, _ := getBody(t, ts.URL+"/v1/compare?a=fig6&b=fig6&format=csv"); code != http.StatusOK {
		t.Fatalf("compare csv: code=%d", code)
	}
	if code, _ := getBody(t, ts.URL+"/v1/compare?a=fig6"); code != http.StatusBadRequest {
		t.Fatalf("compare without ?b: code=%d, want 400", code)
	}
	if code, _ := getBody(t, ts.URL+"/v1/compare?a=nosuch&b=fig6"); code != http.StatusNotFound {
		t.Fatalf("compare unknown selector: code=%d, want 404", code)
	}
	if code, _ := getBody(t, ts.URL+"/v1/compare?a=fig6&b=fig6&threshold=-1"); code != http.StatusBadRequest {
		t.Fatalf("compare bad threshold: code=%d, want 400", code)
	}
}

func TestHistoryWithoutLedger404s(t *testing.T) {
	_, ts := newTestServer(t)
	if code, _ := getBody(t, ts.URL+"/v1/history"); code != http.StatusNotFound {
		t.Fatalf("history without ledger: code=%d, want 404", code)
	}
	if code, _ := getBody(t, ts.URL+"/v1/compare?a=x&b=y"); code != http.StatusNotFound {
		t.Fatalf("compare without ledger: code=%d, want 404", code)
	}
}

// A restarted daemon must surface the previous process's runs in
// /v1/results, seeded from the ledger tail.
func TestResultsWarmStartFromLedger(t *testing.T) {
	dir := t.TempDir()
	_, ts, led := newLedgerServer(t, dir)
	if code, body := getBody(t, ts.URL+"/v1/run/fig6?scale=0.05"); code != http.StatusOK {
		t.Fatalf("run: code=%d body=%s", code, body)
	}
	ts.Close()
	led.Close()

	_, ts2, _ := newLedgerServer(t, dir)
	var results []ResultRecord
	getJSON(t, ts2.URL+"/v1/results", &results)
	if len(results) != 1 {
		t.Fatalf("restarted server reports %d results, want 1 from the ledger", len(results))
	}
	r := results[0]
	if r.Experiment != "fig6" || r.Kind != "run" || r.ID == "" {
		t.Fatalf("warm-started result incomplete: %+v", r)
	}
}

func TestMetricsExposeHistogramBuckets(t *testing.T) {
	_, ts := newTestServer(t)
	if code, body := getBody(t, ts.URL+"/v1/run/fig6?scale=0.05"); code != http.StatusOK {
		t.Fatalf("run: code=%d body=%s", code, body)
	}
	var m struct {
		Endpoints map[string]EndpointMetrics `json:"endpoints"`
	}
	getJSON(t, ts.URL+"/v1/metrics", &m)
	em, ok := m.Endpoints["/v1/run"]
	if !ok {
		t.Fatalf("no /v1/run endpoint metrics: %+v", m.Endpoints)
	}
	if len(em.BucketBoundsMS) == 0 || len(em.BucketCounts) != len(em.BucketBoundsMS)+1 {
		t.Fatalf("bucket layout bounds=%d counts=%d, want counts = bounds+1 > 1",
			len(em.BucketBoundsMS), len(em.BucketCounts))
	}
	var total uint64
	for _, c := range em.BucketCounts {
		total += c
	}
	if total != em.Requests {
		t.Fatalf("bucket counts sum %d != requests %d", total, em.Requests)
	}
}

// End-to-end: the load-test harness drives a live server, records
// client quantiles, and reconstructs the server-side window from
// /v1/metrics bucket deltas.
func TestLoadTestAgainstLiveServer(t *testing.T) {
	_, ts, led := newLedgerServer(t, t.TempDir())
	rec, doc, err := ledger.LoadTest(ledger.LoadTestConfig{
		BaseURL:  ts.URL,
		Clients:  3,
		Requests: 9,
		Mix:      []string{"fig6"},
		Scale:    0.05,
	})
	if err != nil {
		t.Fatalf("LoadTest: %v", err)
	}
	if rec.Kind != ledger.KindLoadTest || rec.Load == nil {
		t.Fatalf("load-test record incomplete: %+v", rec)
	}
	ls := rec.Load
	if ls.Errors != 0 {
		t.Fatalf("%d/%d requests failed", ls.Errors, ls.Requests)
	}
	if ls.ClientP50MS <= 0 || ls.ClientP99MS < ls.ClientP50MS {
		t.Fatalf("client quantiles implausible: %+v", ls)
	}
	if !ls.ServerWindow {
		t.Fatalf("server window not reconstructed from /v1/metrics buckets: %+v", ls)
	}
	if ls.ServerP50MS <= 0 {
		t.Fatalf("server p50 %v, want > 0", ls.ServerP50MS)
	}
	txt := report.Text(doc)
	if !strings.Contains(txt, "load test") || !strings.Contains(txt, "skew") {
		t.Fatalf("load-test doc missing sections:\n%s", txt)
	}
	stamped, err := led.Append(rec)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	got, ok := led.Get(stamped.ID)
	if !ok || got.Load == nil || got.Load.Clients != 3 {
		t.Fatalf("load-test record did not round-trip: %+v", got)
	}
}

// All requests failing is an error, not an empty record.
func TestLoadTestAllFailures(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer ts.Close()
	_, _, err := ledger.LoadTest(ledger.LoadTestConfig{BaseURL: ts.URL, Clients: 2, Requests: 4})
	if err == nil {
		t.Fatal("LoadTest against an all-failing server must error")
	}
}
