package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(engine.New(4, 0))
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	var body struct {
		Status  string  `json:"status"`
		UptimeS float64 `json:"uptime_s"`
		Workers int     `json:"workers"`
	}
	resp := getJSON(t, ts.URL+"/healthz", &body)
	if resp.StatusCode != http.StatusOK || body.Status != "ok" || body.Workers != 4 {
		t.Fatalf("healthz: code=%d body=%+v", resp.StatusCode, body)
	}
}

func TestExperimentsListed(t *testing.T) {
	_, ts := newTestServer(t)
	var exps []struct{ ID, Title string }
	getJSON(t, ts.URL+"/v1/experiments", &exps)
	if len(exps) < 30 {
		t.Fatalf("only %d experiments listed", len(exps))
	}
}

const runQuery = "/v1/run/fig7?scale=0.05&modules=S0,S3"

func TestRunThenWarmCacheServesWithoutExecution(t *testing.T) {
	_, ts := newTestServer(t)

	var cold RunResponse
	resp := getJSON(t, ts.URL+runQuery, &cold)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold run status %d", resp.StatusCode)
	}
	if cold.Stats.Executed == 0 || cold.Stats.FromCache {
		t.Fatalf("cold run should execute shards: %+v", cold.Stats)
	}
	if cold.Stats.Shards != 2 { // one shard per module
		t.Fatalf("expected 2 shards for 2 modules, got %d", cold.Stats.Shards)
	}
	if !strings.Contains(cold.Report, "==") {
		t.Fatalf("report lacks section header: %q", cold.Report)
	}

	var warm RunResponse
	getJSON(t, ts.URL+runQuery, &warm)
	if warm.Stats.Executed != 0 || !warm.Stats.FromCache || warm.Stats.CacheHits != 2 {
		t.Fatalf("warm run should be all-cache: %+v", warm.Stats)
	}
	if warm.Report != cold.Report {
		t.Fatal("warm report differs from cold report")
	}
}

func TestOverlappingRequestSharesShards(t *testing.T) {
	_, ts := newTestServer(t)
	getJSON(t, ts.URL+"/v1/run/fig7?scale=0.05&modules=S0,S3", nil)
	// Superset module list: S0 and S3 shards come from cache, M3 runs.
	var r RunResponse
	getJSON(t, ts.URL+"/v1/run/fig7?scale=0.05&modules=S0,S3,M3", &r)
	if r.Stats.CacheHits != 2 || r.Stats.Executed != 1 {
		t.Fatalf("overlap run stats: %+v", r.Stats)
	}
}

func TestRunTextFormat(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + runQuery + "&format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
}

func TestRunErrors(t *testing.T) {
	_, ts := newTestServer(t)
	if resp := getJSON(t, ts.URL+"/v1/run/fig999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown experiment: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/run/fig7?scale=9", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad scale: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/run/fig7?scale=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unparsable scale: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/run/fig7?scale=0.05&modules=Z9", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown module: %d", resp.StatusCode)
	}
}

func TestResultsAndMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	getJSON(t, ts.URL+runQuery, nil)
	getJSON(t, ts.URL+runQuery, nil)

	var results []ResultRecord
	getJSON(t, ts.URL+"/v1/results", &results)
	if len(results) != 2 {
		t.Fatalf("expected 2 result records, got %d", len(results))
	}
	// Newest first: the warm run.
	if !results[0].Stats.FromCache || results[1].Stats.FromCache {
		t.Fatalf("result order/from_cache wrong: %+v", results)
	}
	if results[0].Experiment != "fig7" || results[0].Bytes == 0 {
		t.Fatalf("record malformed: %+v", results[0])
	}

	var m MetricsResponse
	getJSON(t, ts.URL+"/v1/metrics", &m)
	// 2 unit shards executed once; the warm rerun hits at the unit
	// level. The memory tier holds the 2 unit payloads plus the 6
	// sub-shard payloads (3 row-site chunks per module).
	if m.Runs != 2 || m.ShardsExecuted != 2 || m.CacheHits != 2 || m.CacheEntries != 8 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.CacheHitRate <= 0 || m.CacheHitRate >= 1 {
		t.Fatalf("hit rate: %v", m.CacheHitRate)
	}
}

func TestModulesParsingNormalized(t *testing.T) {
	_, ts := newTestServer(t)
	// Whitespace around ids and empty entries are tolerated...
	var r RunResponse
	resp := getJSON(t, ts.URL+"/v1/run/fig7?scale=0.05&modules=S0,%20S3,", &r)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("padded module list rejected: %d", resp.StatusCode)
	}
	if len(r.Modules) != 2 || r.Modules[0] != "S0" || r.Modules[1] != "S3" || r.Stats.Shards != 2 {
		t.Fatalf("normalized modules: %+v stats=%+v", r.Modules, r.Stats)
	}
	// ...but duplicates would plan duplicate shard keys and are a 400.
	if resp := getJSON(t, ts.URL+"/v1/run/fig7?scale=0.05&modules=S0,S0", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate modules: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/run/fig7?scale=0.05&modules=S0,%20S0", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate modules after trim: %d", resp.StatusCode)
	}
}

// TestFormatMatrix pins ?format handling uniformly across every
// format-aware endpoint: each supported value serves its content type
// with a 200, and every unknown value is a 400 whose error names the
// allowed list — never a silent JSON fallthrough.
func TestFormatMatrix(t *testing.T) {
	_, ts := newTestServer(t)
	fetch := func(t *testing.T, endpoint, format string) (*http.Response, string) {
		t.Helper()
		url := ts.URL + endpoint
		if format != "" {
			sep := "?"
			if strings.Contains(endpoint, "?") {
				sep = "&"
			}
			url += sep + "format=" + format
		}
		var resp *http.Response
		var err error
		if endpoint == "/v1/sweep" {
			resp, err = http.Post(url, "application/json",
				strings.NewReader(`{"experiment":"fig7","scales":[0.05],"module_sets":[["S0"]]}`))
		} else {
			resp, err = http.Get(url)
		}
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp, string(raw)
	}

	endpoints := map[string]struct {
		ok      map[string]string // format -> content-type prefix
		allowed string            // list a 400 must name
	}{
		runQuery: {
			ok: map[string]string{
				"": "application/json", "json": "application/json",
				"text": "text/plain", "csv": "text/csv", "ndjson": "application/x-ndjson",
			},
			allowed: "json|text|csv|ndjson",
		},
		"/v1/sweep": {
			ok: map[string]string{
				"": "application/json", "json": "application/json",
				"text": "text/plain", "csv": "text/csv",
			},
			allowed: "json|text|csv",
		},
		"/v1/scenarios": {
			ok: map[string]string{
				"": "application/json", "json": "application/json",
				"text": "text/plain", "csv": "text/csv",
			},
			allowed: "json|text|csv",
		},
	}
	for endpoint, tc := range endpoints {
		for format, wantCT := range tc.ok {
			t.Run(endpoint+"/format="+format, func(t *testing.T) {
				resp, body := fetch(t, endpoint, format)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("status %d: %s", resp.StatusCode, body)
				}
				if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, wantCT) {
					t.Fatalf("content type %q, want prefix %q", ct, wantCT)
				}
			})
		}
		for _, format := range []string{"xml", "yaml", "JSON"} {
			t.Run(endpoint+"/bad-format="+format, func(t *testing.T) {
				resp, body := fetch(t, endpoint, format)
				if resp.StatusCode != http.StatusBadRequest {
					t.Fatalf("unknown format %q: status %d", format, resp.StatusCode)
				}
				if !strings.Contains(body, tc.allowed) {
					t.Fatalf("400 body does not name the allowed formats %q: %s", tc.allowed, body)
				}
			})
		}
	}
}

// TestRunJSONCarriesTypedDoc: the JSON response exposes the structured
// document, and its text rendering matches the report field.
func TestRunJSONCarriesTypedDoc(t *testing.T) {
	_, ts := newTestServer(t)
	var r RunResponse
	getJSON(t, ts.URL+runQuery, &r)
	if r.Doc == nil || len(r.Doc.Sections) == 0 {
		t.Fatalf("run response carries no doc: %+v", r)
	}
	if r.Doc.Experiment != "fig7" || len(r.Doc.Params) == 0 {
		t.Fatalf("doc metadata missing: %+v", r.Doc)
	}
	if report.Text(r.Doc) != r.Report {
		t.Fatal("doc text rendering differs from report field")
	}
}

// TestRunNDJSONStreams: format=ndjson emits one shard event per planned
// shard (in any order, from worker goroutines) and a final done event
// whose document matches the JSON response.
func TestRunNDJSONStreams(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + runQuery + "&format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Fatalf("content type %q", ct)
	}
	var shardEvents, done int
	var final struct {
		Event  string      `json:"event"`
		Report string      `json:"report"`
		Stats  RunStats    `json:"stats"`
		Doc    *report.Doc `json:"doc"`
	}
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var probe struct {
			Event string `json:"event"`
		}
		raw := json.RawMessage{}
		if err := dec.Decode(&raw); err != nil {
			t.Fatalf("decode stream line: %v", err)
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			t.Fatal(err)
		}
		switch probe.Event {
		case "shard":
			shardEvents++
			if done != 0 {
				t.Fatal("shard event after done")
			}
		case "done":
			done++
			if err := json.Unmarshal(raw, &final); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unexpected event %q", probe.Event)
		}
	}
	if shardEvents != 2 || done != 1 { // fig7 with 2 modules plans 2 shards
		t.Fatalf("stream shape: %d shard events, %d done", shardEvents, done)
	}
	if final.Doc == nil || final.Stats.Shards != 2 || final.Report == "" {
		t.Fatalf("done event malformed: %+v", final)
	}
}

func postSweep(t *testing.T, url, body string, v any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode sweep response: %v", err)
		}
	}
	return resp
}

func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var res sweep.Result
	resp := postSweep(t, ts.URL+"/v1/sweep",
		`{"experiment":"fig7","scales":[0.05],"module_sets":[["S0","S3"],["S0","M3"]]}`, &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	a := res.Aggregate
	if a.Points != 2 || a.ShardRefs != 4 || a.UniqueShards != 3 || a.Executed != 3 {
		t.Fatalf("aggregate=%+v", a)
	}
	for i, p := range res.Points {
		if p.Report == "" || p.Error != "" {
			t.Fatalf("point %d: %+v", i, p)
		}
	}

	// The sweep's shards are now cached: a single run of an overlapping
	// point is served without execution.
	var r RunResponse
	getJSON(t, ts.URL+"/v1/run/fig7?scale=0.05&modules=S0,S3", &r)
	if !r.Stats.FromCache || r.Report != res.Points[0].Report {
		t.Fatalf("single run after sweep: stats=%+v, report match=%v",
			r.Stats, r.Report == res.Points[0].Report)
	}

	// Sweeps are listed in /v1/results, newest first.
	var results []ResultRecord
	getJSON(t, ts.URL+"/v1/results", &results)
	if len(results) != 2 || results[1].Kind != "sweep" || results[0].Kind != "run" {
		t.Fatalf("results=%+v", results)
	}
	if results[1].Points != 2 || results[1].Stats.Executed != 3 || results[1].Fingerprint == "" {
		t.Fatalf("sweep record=%+v", results[1])
	}
}

func TestSweepEndpointFormats(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"experiment":"fig7","scales":[0.05],"module_sets":[["S0"]]}`

	resp, err := http.Post(ts.URL+"/v1/sweep?format=csv", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("csv content type %q", ct)
	}
	if !strings.HasPrefix(string(raw), "experiment,scale,seed,modules,") {
		t.Fatalf("csv body %q", raw)
	}

	resp, err = http.Post(ts.URL+"/v1/sweep?format=text", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text content type %q", ct)
	}
	if !strings.Contains(string(raw), "## sweep aggregate: fig7") {
		t.Fatalf("text body %q", raw)
	}
}

func TestSweepEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t)
	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"malformed json":     {`{`, http.StatusBadRequest},
		"unknown field":      {`{"experiment":"fig7","bogus":1}`, http.StatusBadRequest},
		"no experiment":      {`{}`, http.StatusBadRequest},
		"unknown experiment": {`{"experiment":"fig999"}`, http.StatusNotFound},
		"bad scale":          {`{"experiment":"fig7","scales":[9]}`, http.StatusBadRequest},
		"duplicate modules":  {`{"experiment":"fig7","module_sets":[["S0","S0"]]}`, http.StatusBadRequest},
	} {
		if resp := postSweep(t, ts.URL+"/v1/sweep", tc.body, nil); resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, tc.want)
		}
	}
}

// TestFailedRunRecordedWithError poisons the shard cache with a payload
// of the wrong type so the run's merge fails, then asserts the failure
// is visible to operators: a /v1/results record with the error and an
// incremented run_failures counter in /v1/metrics.
func TestFailedRunRecordedWithError(t *testing.T) {
	s, ts := newTestServer(t)
	opt := core.DefaultOptions()
	opt.Scale, opt.Modules = 0.05, []string{"S0"}
	p, err := core.PlanFor("fig7", opt)
	if err != nil {
		t.Fatal(err)
	}
	key := engine.Key(p.Experiment, p.Fingerprint, p.Shards[0].Key)
	s.Engine().Cache().Put(key, 42) // wrong payload type: merge will fail

	resp := getJSON(t, ts.URL+"/v1/run/fig7?scale=0.05&modules=S0", nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned run status %d", resp.StatusCode)
	}

	var results []ResultRecord
	getJSON(t, ts.URL+"/v1/results", &results)
	if len(results) != 1 || results[0].Error == "" || results[0].Kind != "run" {
		t.Fatalf("failed run not recorded: %+v", results)
	}
	var m MetricsResponse
	getJSON(t, ts.URL+"/v1/metrics", &m)
	if m.RunFailures != 1 {
		t.Fatalf("run_failures=%d, want 1 (metrics=%+v)", m.RunFailures, m)
	}
}

// TestConcurrentSweepAndRunConsistency fires overlapping /v1/sweep and
// /v1/run requests at one server concurrently (run under -race in CI)
// and asserts byte-identical reports across every response plus closed
// cache accounting: each unique shard executes exactly once process-wide,
// and every other shard reference is a cache hit.
func TestConcurrentSweepAndRunConsistency(t *testing.T) {
	s, ts := newTestServer(t)
	const iters = 8
	sweepBody := `{"experiment":"fig7","scales":[0.05],"module_sets":[["S0","S3"],["S0","M3"]]}`

	// fetchJSON is goroutine-safe: it reports problems as errors instead
	// of calling t.Fatal off the test goroutine.
	fetchJSON := func(resp *http.Response, err error, v any) error {
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return json.NewDecoder(resp.Body).Decode(v)
	}

	runReports := make([]string, iters)
	sweepReports := make([][]string, iters)
	var wg sync.WaitGroup
	for i := 0; i < iters; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			var r RunResponse
			resp, err := http.Get(ts.URL + "/v1/run/fig7?scale=0.05&modules=S0,S3")
			if err := fetchJSON(resp, err, &r); err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			runReports[i] = r.Report
		}(i)
		go func(i int) {
			defer wg.Done()
			var res sweep.Result
			resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(sweepBody))
			if err := fetchJSON(resp, err, &res); err != nil {
				t.Errorf("sweep %d: %v", i, err)
				return
			}
			if len(res.Points) != 2 || res.Aggregate.Failed != 0 {
				t.Errorf("sweep %d: %d points, %d failed", i, len(res.Points), res.Aggregate.Failed)
				return
			}
			sweepReports[i] = []string{res.Points[0].Report, res.Points[1].Report}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow() // don't index into reports a failed request never filled
	}

	for i := 1; i < iters; i++ {
		if runReports[i] != runReports[0] {
			t.Fatalf("run %d report differs", i)
		}
		if sweepReports[i][0] != sweepReports[0][0] || sweepReports[i][1] != sweepReports[0][1] {
			t.Fatalf("sweep %d reports differ", i)
		}
	}
	// The run's module set equals sweep point 0: same options, same bytes.
	if runReports[0] != sweepReports[0][0] {
		t.Fatal("run report differs from equivalent sweep point")
	}

	// Accounting closes: 3 unique shards (S0, S3, M3) executed exactly
	// once each; every remaining reference was a hit.
	m := s.Engine().Metrics()
	if m.ShardsExecuted != 3 {
		t.Fatalf("unique shards executed %d times total (metrics=%+v)", m.ShardsExecuted, m)
	}
	wantPlanned := uint64(iters * (2 + 4)) // per iter: run 2 refs + sweep 4 refs
	if m.ShardsPlanned != wantPlanned || m.CacheHits != wantPlanned-3 {
		t.Fatalf("planned=%d hits=%d, want planned=%d hits=%d",
			m.ShardsPlanned, m.CacheHits, wantPlanned, wantPlanned-3)
	}
	// 3 unit payloads plus 3 sub-shard payloads per unit.
	if st := s.Engine().Cache().Stats(); st.Entries != 12 {
		t.Fatalf("cache entries=%d", st.Entries)
	}
}

// TestResultsRingOrderingAndOverflow pins the ring-buffer history: with
// more completed records than the ring holds, /v1/results returns
// exactly maxResults entries, newest first, and the oldest are the ones
// dropped. Records are inserted through record() directly so the test
// exercises the ring, not the experiment engine.
func TestResultsRingOrderingAndOverflow(t *testing.T) {
	s, ts := newTestServer(t)
	total := maxResults + 40
	for i := 0; i < total; i++ {
		s.record(ResultRecord{Experiment: fmt.Sprintf("exp-%d", i), Kind: "run"}, 0)
	}
	var results []ResultRecord
	getJSON(t, ts.URL+"/v1/results", &results)
	if len(results) != maxResults {
		t.Fatalf("ring returned %d records, want %d", len(results), maxResults)
	}
	for i, rec := range results {
		want := fmt.Sprintf("exp-%d", total-1-i)
		if rec.Experiment != want {
			t.Fatalf("results[%d] = %q, want %q (newest first)", i, rec.Experiment, want)
		}
	}
}

// TestResultsRingPartiallyFilled: below capacity the ring reports only
// what was recorded, still newest first.
func TestResultsRingPartiallyFilled(t *testing.T) {
	s, ts := newTestServer(t)
	for i := 0; i < 3; i++ {
		s.record(ResultRecord{Experiment: fmt.Sprintf("exp-%d", i), Kind: "run"}, 0)
	}
	var results []ResultRecord
	getJSON(t, ts.URL+"/v1/results", &results)
	if len(results) != 3 {
		t.Fatalf("got %d records, want 3", len(results))
	}
	for i, want := range []string{"exp-2", "exp-1", "exp-0"} {
		if results[i].Experiment != want {
			t.Fatalf("results[%d] = %q, want %q", i, results[i].Experiment, want)
		}
	}
}

// TestScenariosListed mirrors TestExperimentsListed for the scenario
// matrix: every catalog entry is discoverable with its structural
// fields, no CLI parsing required.
func TestScenariosListed(t *testing.T) {
	_, ts := newTestServer(t)
	var out []ScenarioInfo
	resp := getJSON(t, ts.URL+"/v1/scenarios", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out) != len(scenario.Catalog()) {
		t.Fatalf("listed %d scenarios, want %d", len(out), len(scenario.Catalog()))
	}
	byName := map[string]ScenarioInfo{}
	for _, sc := range out {
		byName[sc.Name] = sc
	}
	ds, ok := byName["ds-hammer"]
	if !ok || ds.Kind != "hammer" || ds.Sides != 2 || ds.Pattern == "" {
		t.Fatalf("ds-hammer entry malformed: %+v", ds)
	}
	cb, ok := byName["combined-b4-7.8us"]
	if !ok || cb.Kind != "combined" || cb.Burst != 4 || cb.TAggON != 7800*dram.Nanosecond {
		t.Fatalf("combined entry malformed: %+v", cb)
	}
}

// TestWarmStartAcrossProcesses is the end-to-end warm-start contract:
// a "restarted daemon" — a second server over a fresh engine whose disk
// cache points at the first server's directory — answers a previously
// computed /v1/run with zero shards executed, visible in both the run's
// stats and /v1/metrics.
func TestWarmStartAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	newServer := func() (*Server, *httptest.Server) {
		eng := engine.New(4, 0)
		dc, err := engine.OpenDiskCache(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		eng.AttachDiskCache(dc)
		s := New(eng)
		ts := httptest.NewServer(s)
		t.Cleanup(ts.Close)
		return s, ts
	}

	s1, ts1 := newServer()
	var cold RunResponse
	getJSON(t, ts1.URL+runQuery, &cold)
	if cold.Stats.Executed == 0 {
		t.Fatalf("cold run executed nothing: %+v", cold.Stats)
	}
	if err := s1.Engine().Disk().Flush(); err != nil {
		t.Fatal(err)
	}

	_, ts2 := newServer()
	var warm RunResponse
	getJSON(t, ts2.URL+runQuery, &warm)
	if warm.Stats.Executed != 0 || !warm.Stats.FromCache || warm.Stats.CacheHits != warm.Stats.Shards {
		t.Fatalf("second process executed shards: %+v", warm.Stats)
	}
	if warm.Report != cold.Report {
		t.Fatal("warm-started report differs from the original")
	}

	var m MetricsResponse
	getJSON(t, ts2.URL+"/v1/metrics", &m)
	if !m.DiskEnabled || m.ShardsExecuted != 0 || m.DiskHits != uint64(warm.Stats.Shards) {
		t.Fatalf("warm-start metrics: %+v", m)
	}
	if m.DiskEntries == 0 {
		t.Fatalf("disk tier reports no entries: %+v", m)
	}
}
