package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(engine.New(4, 0))
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	var body struct {
		Status  string  `json:"status"`
		UptimeS float64 `json:"uptime_s"`
		Workers int     `json:"workers"`
	}
	resp := getJSON(t, ts.URL+"/healthz", &body)
	if resp.StatusCode != http.StatusOK || body.Status != "ok" || body.Workers != 4 {
		t.Fatalf("healthz: code=%d body=%+v", resp.StatusCode, body)
	}
}

func TestExperimentsListed(t *testing.T) {
	_, ts := newTestServer(t)
	var exps []struct{ ID, Title string }
	getJSON(t, ts.URL+"/v1/experiments", &exps)
	if len(exps) < 30 {
		t.Fatalf("only %d experiments listed", len(exps))
	}
}

const runQuery = "/v1/run/fig7?scale=0.05&modules=S0,S3"

func TestRunThenWarmCacheServesWithoutExecution(t *testing.T) {
	_, ts := newTestServer(t)

	var cold RunResponse
	resp := getJSON(t, ts.URL+runQuery, &cold)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold run status %d", resp.StatusCode)
	}
	if cold.Stats.Executed == 0 || cold.Stats.FromCache {
		t.Fatalf("cold run should execute shards: %+v", cold.Stats)
	}
	if cold.Stats.Shards != 2 { // one shard per module
		t.Fatalf("expected 2 shards for 2 modules, got %d", cold.Stats.Shards)
	}
	if !strings.Contains(cold.Report, "==") {
		t.Fatalf("report lacks section header: %q", cold.Report)
	}

	var warm RunResponse
	getJSON(t, ts.URL+runQuery, &warm)
	if warm.Stats.Executed != 0 || !warm.Stats.FromCache || warm.Stats.CacheHits != 2 {
		t.Fatalf("warm run should be all-cache: %+v", warm.Stats)
	}
	if warm.Report != cold.Report {
		t.Fatal("warm report differs from cold report")
	}
}

func TestOverlappingRequestSharesShards(t *testing.T) {
	_, ts := newTestServer(t)
	getJSON(t, ts.URL+"/v1/run/fig7?scale=0.05&modules=S0,S3", nil)
	// Superset module list: S0 and S3 shards come from cache, M3 runs.
	var r RunResponse
	getJSON(t, ts.URL+"/v1/run/fig7?scale=0.05&modules=S0,S3,M3", &r)
	if r.Stats.CacheHits != 2 || r.Stats.Executed != 1 {
		t.Fatalf("overlap run stats: %+v", r.Stats)
	}
}

func TestRunTextFormat(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + runQuery + "&format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
}

func TestRunErrors(t *testing.T) {
	_, ts := newTestServer(t)
	if resp := getJSON(t, ts.URL+"/v1/run/fig999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown experiment: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/run/fig7?scale=9", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad scale: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/run/fig7?scale=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unparsable scale: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/run/fig7?scale=0.05&modules=Z9", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown module: %d", resp.StatusCode)
	}
}

func TestResultsAndMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	getJSON(t, ts.URL+runQuery, nil)
	getJSON(t, ts.URL+runQuery, nil)

	var results []ResultRecord
	getJSON(t, ts.URL+"/v1/results", &results)
	if len(results) != 2 {
		t.Fatalf("expected 2 result records, got %d", len(results))
	}
	// Newest first: the warm run.
	if !results[0].Stats.FromCache || results[1].Stats.FromCache {
		t.Fatalf("result order/from_cache wrong: %+v", results)
	}
	if results[0].Experiment != "fig7" || results[0].Bytes == 0 {
		t.Fatalf("record malformed: %+v", results[0])
	}

	var m MetricsResponse
	getJSON(t, ts.URL+"/v1/metrics", &m)
	if m.Runs != 2 || m.ShardsExecuted != 2 || m.CacheHits != 2 || m.CacheEntries != 2 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.CacheHitRate <= 0 || m.CacheHitRate >= 1 {
		t.Fatalf("hit rate: %v", m.CacheHitRate)
	}
}
