package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/fabric"
	"repro/internal/obs"
)

// This file is the serving layer's observability: per-endpoint latency
// histograms and in-flight gauges collected by a middleware wrapped
// around every route, structured request logging through log/slog, the
// Prometheus text-exposition endpoint (GET /metrics), and the
// liveness/readiness endpoint (GET /v1/healthz).

// route is one instrumented endpoint's always-on counters. Histograms
// use the fixed log-spaced buckets of obs.NewLatencyHistogram, so the
// Prometheus exposition is stable across processes.
type route struct {
	name      string // pattern minus method and path wildcards, e.g. "/v1/run"
	hist      *obs.Histogram
	inFlight  atomic.Int64
	status4xx atomic.Uint64
	status5xx atomic.Uint64
}

// requestInfo is the per-request annotation channel between middleware
// and handlers: handlers that execute shards record how many, and the
// request log line carries it.
type requestInfo struct {
	shards   int
	executed int
}

type requestInfoKey struct{}

// annotate records shard accounting for the current request's log
// line; a no-op when the handler runs outside the middleware (tests
// calling handlers directly).
func annotate(ctx context.Context, shards, executed int) {
	if ri, ok := ctx.Value(requestInfoKey{}).(*requestInfo); ok {
		ri.shards, ri.executed = shards, executed
	}
}

// statusWriter captures the response status for metrics and logging.
// It forwards Flush so NDJSON streaming keeps working through the
// middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// routeName derives the metrics label from a ServeMux pattern:
// "GET /v1/run/{exp}" -> "/v1/run".
func routeName(pattern string) string {
	name := pattern
	if i := strings.IndexByte(name, ' '); i >= 0 {
		name = name[i+1:]
	}
	if i := strings.Index(name, "/{"); i > 0 {
		name = name[:i]
	}
	return name
}

// handle registers an instrumented route: every request is counted
// in-flight, timed into the route's histogram, status-classified, and
// logged through the server's structured logger with a process-unique
// request id.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	rt := &route{name: routeName(pattern), hist: obs.NewLatencyHistogram()}
	s.routes = append(s.routes, rt)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		id := s.reqID.Add(1)
		rt.inFlight.Add(1)
		defer rt.inFlight.Add(-1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		ri := &requestInfo{}
		r = r.WithContext(context.WithValue(r.Context(), requestInfoKey{}, ri))
		t0 := time.Now()
		h(sw, r)
		d := time.Since(t0)
		rt.hist.Observe(d)
		switch {
		case sw.status >= 500:
			rt.status5xx.Add(1)
		case sw.status >= 400:
			rt.status4xx.Add(1)
		}
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.Uint64("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("duration", d),
			slog.Int("shards", ri.shards),
			slog.Int("executed", ri.executed),
		)
	})
}

// SetDraining marks the server as shutting down: /v1/healthz readiness
// flips to 503 so load balancers stop routing new work while in-flight
// requests drain.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// HealthResponse is the JSON body of /v1/healthz. Live is process
// liveness (always true when the handler answers); Ready gates
// traffic: the worker pool accepts work and, when a persistent cache
// is configured, its index is loaded. Degraded is set on a fabric
// coordinator when a configured peer is unreachable or its circuit is
// open — the daemon stays Ready because local-execute fallback keeps
// every answer correct, but operators see the fleet is impaired and
// the per-peer checks name the failing peers.
type HealthResponse struct {
	Live     bool              `json:"live"`
	Ready    bool              `json:"ready"`
	Degraded bool              `json:"degraded,omitempty"`
	Checks   map[string]string `json:"checks"`
	UptimeS  float64           `json:"uptime_s"`
}

// peerProbeTimeout bounds the per-peer /healthz probe a coordinator's
// readiness check performs.
const peerProbeTimeout = time.Second

// readiness evaluates the readiness checks. degraded reports a
// coordinator with at least one unreachable or circuit-open peer.
func (s *Server) readiness() (ready, degraded bool, checks map[string]string) {
	checks = map[string]string{}
	ready = true
	if s.draining.Load() {
		checks["pool"] = "draining"
		ready = false
	} else if s.eng.Workers() <= 0 {
		checks["pool"] = "no workers"
		ready = false
	} else {
		checks["pool"] = "ok"
	}
	if s.eng.Disk() != nil {
		// OpenDiskCache loads (or rebuilds) the index before the tier can
		// be attached, so an attached tier is a loaded one.
		checks["disk_cache"] = fmt.Sprintf("ok (%d entries)", s.eng.Disk().Stats().Entries)
	} else {
		checks["disk_cache"] = "disabled"
	}
	if s.fabric != nil {
		sts := s.fabric.Status(peerProbeTimeout)
		up := 0
		for _, st := range sts {
			state := "ok"
			switch {
			case !st.Reachable:
				state = "unreachable"
				if st.Error != "" {
					state += ": " + st.Error
				}
				degraded = true
			case st.CircuitOpen:
				state = "circuit open"
				degraded = true
			default:
				up++
			}
			checks["peer "+st.URL] = state
		}
		checks["fabric"] = fmt.Sprintf("%d/%d peers up", up, len(sts))
	}
	return ready, degraded, checks
}

// handleHealthzV1 answers liveness/readiness in plain text (default,
// probe-friendly) or JSON (?format=json). Not-ready answers 503 so an
// orchestrator's readiness probe fails while the daemon drains.
func (s *Server) handleHealthzV1(w http.ResponseWriter, r *http.Request) {
	format, err := parseFormatDefault(r, "text", "text", "json")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ready, degraded, checks := s.readiness()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	if format == "json" {
		writeJSON(w, status, HealthResponse{
			Live: true, Ready: ready, Degraded: degraded, Checks: checks,
			UptimeS: s.now().Sub(s.start).Seconds(),
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(status)
	fmt.Fprintf(w, "live: ok\nready: %v\n", ready)
	if degraded {
		fmt.Fprintf(w, "degraded: true\n")
	}
	names := make([]string, 0, len(checks))
	for n := range checks {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%s: %s\n", n, checks[n])
	}
}

// parseFormatDefault is parseFormat with an explicit default for
// endpoints whose natural rendering is not JSON.
func parseFormatDefault(r *http.Request, def string, allowed ...string) (string, error) {
	v := r.URL.Query().Get("format")
	if v == "" {
		return def, nil
	}
	for _, a := range allowed {
		if v == a {
			return v, nil
		}
	}
	return "", fmt.Errorf("bad format %q: want one of %s", v, strings.Join(allowed, "|"))
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// handlePromMetrics serves the Prometheus text exposition format:
// engine counters, queue-wait and tier-attributed cache-lookup
// latency, and per-endpoint request histograms / in-flight gauges —
// the scrape-side twin of the JSON /v1/metrics.
func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.eng.Metrics()
	s.mu.Lock()
	failures := s.failures
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}

	gauge("rowpress_uptime_seconds", "Seconds since the server started.", s.now().Sub(s.start).Seconds())
	gauge("rowpress_workers", "Engine worker-pool size.", float64(s.eng.Workers()))
	counter("rowpress_runs_total", "Experiment runs executed by the engine.", float64(m.Runs))
	counter("rowpress_shards_planned_total", "Shards planned across all runs.", float64(m.ShardsPlanned))
	counter("rowpress_shards_executed_total", "Shards actually executed (cache misses).", float64(m.ShardsExecuted))
	counter("rowpress_sub_shards_planned_total", "Sub-shards declared by split shards across all runs.", float64(m.SubShardsPlanned))
	counter("rowpress_sub_shards_executed_total", "Sub-shards actually run (cached subs and warm units excluded).", float64(m.SubShardsExecuted))
	counter("rowpress_cache_hits_total", "Run-level shard cache hits (any tier).", float64(m.CacheHits))
	counter("rowpress_cache_misses_total", "Run-level shard cache misses.", float64(m.CacheMisses))
	counter("rowpress_engine_errors_total", "Runs that ended in an error.", float64(m.Errors))
	counter("rowpress_run_failures_total", "Failed runs and failed sweep points served.", float64(failures))

	fmt.Fprintf(&b, "# HELP rowpress_cache_entries Entries per cache tier.\n# TYPE rowpress_cache_entries gauge\n")
	fmt.Fprintf(&b, "rowpress_cache_entries{tier=\"mem\"} %d\n", m.Mem.Entries)
	fmt.Fprintf(&b, "rowpress_cache_entries{tier=\"disk\"} %d\n", m.Disk.Entries)
	fmt.Fprintf(&b, "# HELP rowpress_cache_evictions_total Evictions per cache tier.\n# TYPE rowpress_cache_evictions_total counter\n")
	fmt.Fprintf(&b, "rowpress_cache_evictions_total{tier=\"mem\"} %d\n", m.Mem.Evictions)
	fmt.Fprintf(&b, "rowpress_cache_evictions_total{tier=\"disk\"} %d\n", m.Disk.Evictions)
	gauge("rowpress_disk_cache_bytes", "Bytes stored in the persistent cache tier.", float64(m.Disk.Bytes))

	counter("rowpress_queue_waits_total", "Shard dispatch-to-execution waits observed.", float64(m.QueueWait.Count))
	counter("rowpress_queue_wait_seconds_total", "Summed shard queue wait.", m.QueueWait.Total.Seconds())
	fmt.Fprintf(&b, "# HELP rowpress_cache_lookups_total Shard cache lookups by answering tier.\n# TYPE rowpress_cache_lookups_total counter\n")
	fmt.Fprintf(&b, "rowpress_cache_lookups_total{tier=\"mem_hit\"} %d\n", m.MemLookup.Count)
	fmt.Fprintf(&b, "rowpress_cache_lookups_total{tier=\"disk_hit\"} %d\n", m.DiskLookup.Count)
	fmt.Fprintf(&b, "rowpress_cache_lookups_total{tier=\"remote_hit\"} %d\n", m.RemoteLookup.Count)
	fmt.Fprintf(&b, "rowpress_cache_lookups_total{tier=\"miss\"} %d\n", m.MissLookup.Count)
	fmt.Fprintf(&b, "# HELP rowpress_cache_lookup_seconds_total Summed lookup latency by answering tier.\n# TYPE rowpress_cache_lookup_seconds_total counter\n")
	fmt.Fprintf(&b, "rowpress_cache_lookup_seconds_total{tier=\"mem_hit\"} %g\n", m.MemLookup.Total.Seconds())
	fmt.Fprintf(&b, "rowpress_cache_lookup_seconds_total{tier=\"disk_hit\"} %g\n", m.DiskLookup.Total.Seconds())
	fmt.Fprintf(&b, "rowpress_cache_lookup_seconds_total{tier=\"remote_hit\"} %g\n", m.RemoteLookup.Total.Seconds())
	fmt.Fprintf(&b, "rowpress_cache_lookup_seconds_total{tier=\"miss\"} %g\n", m.MissLookup.Total.Seconds())
	counter("rowpress_remote_errors_total", "Shard dispatches that exhausted every fabric peer and fell back to local execution.", float64(m.RemoteErrors))

	if s.fabric != nil {
		fm := s.fabric.Metrics()
		gauge("rowpress_fabric_peers", "Configured fabric peers.", float64(fm.Peers))
		peerCounter := func(name, help string, val func(fabric.PeerMetrics) uint64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, pm := range fm.PerPeer {
				fmt.Fprintf(&b, "%s{peer=\"%s\"} %d\n", name, promEscape(pm.URL), val(pm))
			}
		}
		peerCounter("rowpress_fabric_dispatches_total", "Shard dispatch attempts per peer (retries included).",
			func(pm fabric.PeerMetrics) uint64 { return pm.Dispatches })
		peerCounter("rowpress_fabric_hits_total", "Successful shard answers per peer.",
			func(pm fabric.PeerMetrics) uint64 { return pm.Hits })
		peerCounter("rowpress_fabric_warm_hits_total", "Answers served from the peer's own cache tiers.",
			func(pm fabric.PeerMetrics) uint64 { return pm.WarmHits })
		peerCounter("rowpress_fabric_errors_total", "Failed dispatch attempts per peer.",
			func(pm fabric.PeerMetrics) uint64 { return pm.Errors })
		peerCounter("rowpress_fabric_retries_total", "Retry attempts per peer.",
			func(pm fabric.PeerMetrics) uint64 { return pm.Retries })
		peerCounter("rowpress_fabric_hedges_total", "Hedged dispatches fired because this peer was slow.",
			func(pm fabric.PeerMetrics) uint64 { return pm.Hedges })
		peerCounter("rowpress_fabric_hedge_wins_total", "Dispatches where the hedge answered first.",
			func(pm fabric.PeerMetrics) uint64 { return pm.HedgeWins })
		fmt.Fprintf(&b, "# HELP rowpress_fabric_circuit_open Whether the peer's circuit breaker is open.\n# TYPE rowpress_fabric_circuit_open gauge\n")
		for _, pm := range fm.PerPeer {
			open := 0
			if pm.CircuitOpen {
				open = 1
			}
			fmt.Fprintf(&b, "rowpress_fabric_circuit_open{peer=\"%s\"} %d\n", promEscape(pm.URL), open)
		}
	}

	fmt.Fprintf(&b, "# HELP rowpress_http_in_flight Requests currently being served per route.\n# TYPE rowpress_http_in_flight gauge\n")
	for _, rt := range s.routes {
		fmt.Fprintf(&b, "rowpress_http_in_flight{route=\"%s\"} %d\n", promEscape(rt.name), rt.inFlight.Load())
	}
	fmt.Fprintf(&b, "# HELP rowpress_http_responses_total Responses per route and status class.\n# TYPE rowpress_http_responses_total counter\n")
	for _, rt := range s.routes {
		n4, n5 := rt.status4xx.Load(), rt.status5xx.Load()
		total := rt.hist.Count()
		var n2 uint64
		if total >= n4+n5 {
			n2 = total - n4 - n5
		}
		fmt.Fprintf(&b, "rowpress_http_responses_total{route=\"%s\",class=\"2xx\"} %d\n", promEscape(rt.name), n2)
		fmt.Fprintf(&b, "rowpress_http_responses_total{route=\"%s\",class=\"4xx\"} %d\n", promEscape(rt.name), n4)
		fmt.Fprintf(&b, "rowpress_http_responses_total{route=\"%s\",class=\"5xx\"} %d\n", promEscape(rt.name), n5)
	}
	fmt.Fprintf(&b, "# HELP rowpress_http_request_duration_seconds Request latency per route.\n# TYPE rowpress_http_request_duration_seconds histogram\n")
	for _, rt := range s.routes {
		snap := rt.hist.Snapshot()
		name := promEscape(rt.name)
		var cum uint64
		for i, bound := range snap.Bounds {
			cum += snap.Counts[i]
			fmt.Fprintf(&b, "rowpress_http_request_duration_seconds_bucket{route=\"%s\",le=\"%g\"} %d\n",
				name, bound.Seconds(), cum)
		}
		fmt.Fprintf(&b, "rowpress_http_request_duration_seconds_bucket{route=\"%s\",le=\"+Inf\"} %d\n", name, snap.Count)
		fmt.Fprintf(&b, "rowpress_http_request_duration_seconds_sum{route=\"%s\"} %g\n", name, snap.Sum.Seconds())
		fmt.Fprintf(&b, "rowpress_http_request_duration_seconds_count{route=\"%s\"} %d\n", name, snap.Count)
	}
	fmt.Fprint(w, b.String())
}

// EndpointMetrics is the per-route slice of /v1/metrics: request
// volume, concurrency, and latency quantiles from the fixed-bucket
// histogram.
type EndpointMetrics struct {
	Requests  uint64  `json:"requests"`
	InFlight  int64   `json:"in_flight"`
	Status4xx uint64  `json:"status_4xx"`
	Status5xx uint64  `json:"status_5xx"`
	MeanMS    float64 `json:"mean_ms"`
	P50MS     float64 `json:"p50_ms"`
	P95MS     float64 `json:"p95_ms"`
	P99MS     float64 `json:"p99_ms"`
	MaxMS     float64 `json:"max_ms"`
	// Raw histogram state (bounds in ms, counts with one overflow
	// slot), so clients can window two scrapes by subtraction and
	// compute quantiles over just the requests between them — the
	// cumulative quantiles above cannot be windowed. The load-test
	// harness (ledger.LoadTest) depends on these.
	BucketBoundsMS []float64 `json:"bucket_bounds_ms,omitempty"`
	BucketCounts   []uint64  `json:"bucket_counts,omitempty"`
}

// endpointMetrics snapshots every instrumented route, keyed by route
// name. Routes with no traffic are included so scrapers see a stable
// key set.
func (s *Server) endpointMetrics() map[string]EndpointMetrics {
	out := make(map[string]EndpointMetrics, len(s.routes))
	for _, rt := range s.routes {
		snap := rt.hist.Snapshot()
		bounds := make([]float64, len(snap.Bounds))
		for i, b := range snap.Bounds {
			bounds[i] = msF(b)
		}
		out[rt.name] = EndpointMetrics{
			Requests:       snap.Count,
			InFlight:       rt.inFlight.Load(),
			Status4xx:      rt.status4xx.Load(),
			Status5xx:      rt.status5xx.Load(),
			MeanMS:         msF(snap.Mean()),
			P50MS:          msF(snap.Quantile(0.50)),
			P95MS:          msF(snap.Quantile(0.95)),
			P99MS:          msF(snap.Quantile(0.99)),
			MaxMS:          msF(snap.Max),
			BucketBoundsMS: bounds,
			BucketCounts:   snap.Counts,
		}
	}
	return out
}

func msF(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
