package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/fabric"
)

// syncWriter serializes concurrent handler log writes onto one buffer.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// newHTTPServer serves a preconfigured Server (newTestServer builds its
// own; option-bearing tests need to pass one in).
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func TestRouteName(t *testing.T) {
	for pattern, want := range map[string]string{
		"GET /v1/run/{exp}": "/v1/run",
		"POST /v1/sweep":    "/v1/sweep",
		"GET /healthz":      "/healthz",
	} {
		if got := routeName(pattern); got != want {
			t.Fatalf("routeName(%q) = %q, want %q", pattern, got, want)
		}
	}
}

func TestHealthzV1(t *testing.T) {
	s, ts := newTestServer(t)

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ready healthz: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("default healthz content type %q, want text", ct)
	}
	text := string(body)
	for _, want := range []string{"live: ok", "ready: true", "pool: ok", "disk_cache: disabled"} {
		if !strings.Contains(text, want) {
			t.Fatalf("healthz text missing %q:\n%s", want, text)
		}
	}

	var h HealthResponse
	resp = getJSON(t, ts.URL+"/v1/healthz?format=json", &h)
	if resp.StatusCode != http.StatusOK || !h.Live || !h.Ready || h.Checks["pool"] != "ok" {
		t.Fatalf("json healthz: status=%d body=%+v", resp.StatusCode, h)
	}

	// Draining flips readiness to 503 while liveness stays true — the
	// shutdown path sets this before http.Server.Shutdown drains.
	s.SetDraining(true)
	resp = getJSON(t, ts.URL+"/v1/healthz?format=json", &h)
	if resp.StatusCode != http.StatusServiceUnavailable || !h.Live || h.Ready || h.Checks["pool"] != "draining" {
		t.Fatalf("draining healthz: status=%d body=%+v", resp.StatusCode, h)
	}
	s.SetDraining(false)
	if resp := getJSON(t, ts.URL+"/v1/healthz?format=json", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("undrained healthz: status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/healthz?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad healthz format: status %d", resp.StatusCode)
	}
}

func TestPromMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t)
	if resp := getJSON(t, ts.URL+runQuery, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("run failed: %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE rowpress_runs_total counter",
		"rowpress_runs_total 1",
		"rowpress_shards_executed_total 2",    // fig7 with 2 modules plans 2 shards
		"rowpress_sub_shards_planned_total 6", // each module shard splits into 3 row-site chunks
		"rowpress_sub_shards_executed_total 6",
		`rowpress_cache_lookups_total{tier="miss"} 8`, // 2 unit lookups + 6 sub lookups
		`rowpress_cache_lookups_total{tier="mem_hit"} 0`,
		"rowpress_queue_waits_total 6", // only sub-shards occupy worker slots
		"rowpress_queue_wait_seconds_total",
		`rowpress_cache_entries{tier="mem"} 8`,        // 2 unit payloads + 6 sub payloads
		`rowpress_http_in_flight{route="/metrics"} 1`, // this very request
		`rowpress_http_responses_total{route="/v1/run",class="2xx"} 1`,
		`rowpress_http_request_duration_seconds_bucket{route="/v1/run",le="+Inf"} 1`,
		`rowpress_http_request_duration_seconds_count{route="/v1/run"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// /v1/metrics must carry the always-on latency aggregates and the
// per-endpoint histogram summaries alongside the historical counters.
func TestMetricsExtended(t *testing.T) {
	_, ts := newTestServer(t)
	getJSON(t, ts.URL+runQuery, nil) // cold: 2 unit + 6 sub miss lookups
	getJSON(t, ts.URL+runQuery, nil) // warm: 2 mem lookups at the unit level

	var m MetricsResponse
	getJSON(t, ts.URL+"/v1/metrics", &m)
	if m.QueueWaits != 6 || m.MissLookups != 8 || m.MemLookups != 2 {
		t.Fatalf("lookup aggregates: %+v", m)
	}
	// Both runs declare 6 sub-shards; only the cold run executes them
	// (the warm rerun resolves at the unit level).
	if m.SubsPlanned != 12 || m.SubsExecuted != 6 {
		t.Fatalf("sub-shard aggregates: %+v", m)
	}
	if m.QueueWaitAvgMS < 0 || m.QueueWaitTotalMS < 0 {
		t.Fatalf("queue wait negative: %+v", m)
	}
	ep, ok := m.Endpoints["/v1/run"]
	if !ok {
		t.Fatalf("endpoints missing /v1/run: %v", m.Endpoints)
	}
	if ep.Requests != 2 || ep.Status4xx != 0 || ep.Status5xx != 0 {
		t.Fatalf("/v1/run endpoint metrics: %+v", ep)
	}
	if ep.P95MS < ep.P50MS || ep.MaxMS <= 0 || ep.MeanMS <= 0 {
		t.Fatalf("/v1/run latency summary inconsistent: %+v", ep)
	}
	// Untouched routes still appear, with zero traffic.
	if ep, ok := m.Endpoints["/v1/sweep"]; !ok || ep.Requests != 0 {
		t.Fatalf("idle route missing or dirty: %+v", ep)
	}
}

// NDJSON shard events carry the tier/worker/queue/subs fields: a cold
// run executes on real workers (tier empty; split units report their
// sub-shard counts instead of a worker id), a warm rerun is all memory
// hits with no worker and no re-run subs, and in both cases every
// shard index appears exactly once before the done event.
func TestNDJSONShardEventObservability(t *testing.T) {
	_, ts := newTestServer(t)
	stream := func() []shardEvent {
		resp, err := http.Get(ts.URL + runQuery + "&format=ndjson")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var events []shardEvent
		dec := json.NewDecoder(resp.Body)
		doneSeen := false
		for dec.More() {
			var raw json.RawMessage
			if err := dec.Decode(&raw); err != nil {
				t.Fatal(err)
			}
			var probe struct {
				Event string `json:"event"`
			}
			if err := json.Unmarshal(raw, &probe); err != nil {
				t.Fatal(err)
			}
			if probe.Event == "done" {
				doneSeen = true
				continue
			}
			if doneSeen {
				t.Fatal("shard event after done")
			}
			var ev shardEvent
			if err := json.Unmarshal(raw, &ev); err != nil {
				t.Fatal(err)
			}
			events = append(events, ev)
		}
		if !doneSeen {
			t.Fatal("stream ended without done event")
		}
		return events
	}

	cold := stream()
	seen := map[int]bool{}
	for _, ev := range cold {
		if seen[ev.Index] {
			t.Fatalf("shard %d streamed twice", ev.Index)
		}
		seen[ev.Index] = true
		if ev.Cached || ev.Tier != "" || ev.QueueMS < 0 {
			t.Fatalf("cold event inconsistent: %+v", ev)
		}
		// fig7's module shards are split units: the parent holds no
		// worker slot (its sub-shards do), so Worker is -1 and the subs
		// accounting must close. A leaf shard would report Worker >= 0.
		if ev.Subs > 0 {
			if ev.Worker != -1 || ev.SubsRun != ev.Subs {
				t.Fatalf("cold split event inconsistent: %+v", ev)
			}
		} else if ev.Worker < 0 {
			t.Fatalf("cold leaf event inconsistent: %+v", ev)
		}
	}
	if len(cold) != 2 {
		t.Fatalf("cold stream: %d shard events, want 2", len(cold))
	}
	for _, ev := range stream() {
		if !ev.Cached || ev.Tier != engine.TierMem || ev.Worker != -1 {
			t.Fatalf("warm event inconsistent: %+v", ev)
		}
		if ev.SubsRun != 0 {
			t.Fatalf("warm event re-ran sub-shards: %+v", ev)
		}
	}
}

// WithLogger wires one structured "request" record per served request,
// carrying the id/method/path/status/duration/shard fields.
func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	var mu syncWriter
	mu.w = &buf
	logger := slog.New(slog.NewTextHandler(&mu, nil))
	s := New(engine.New(2, 0), WithLogger(logger))
	ts := newHTTPServer(t, s)

	getJSON(t, ts.URL+runQuery, nil)
	getJSON(t, ts.URL+"/v1/experiments", nil)

	mu.mu.Lock()
	logs := buf.String()
	mu.mu.Unlock()
	lines := strings.Split(strings.TrimSpace(logs), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d request logs, want 2:\n%s", len(lines), logs)
	}
	run := lines[0]
	for _, want := range []string{
		"msg=request", "id=1", "method=GET", "path=/v1/run/fig7",
		"status=200", "duration=", "shards=2", "executed=2",
	} {
		if !strings.Contains(run, want) {
			t.Fatalf("run log missing %q: %s", want, run)
		}
	}
	if !strings.Contains(lines[1], "path=/v1/experiments") || !strings.Contains(lines[1], "shards=0") {
		t.Fatalf("experiments log wrong: %s", lines[1])
	}
}

// The default logger discards: constructing without WithLogger must
// not panic or write anywhere when requests flow.
func TestDefaultLoggerDiscards(t *testing.T) {
	s := New(engine.New(2, 0))
	ts := newHTTPServer(t, s)
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with default logger: %d", resp.StatusCode)
	}
}

func TestWithPprofRegistersHandlers(t *testing.T) {
	s := New(engine.New(2, 0), WithPprof())
	ts := newHTTPServer(t, s)
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: status %d", resp.StatusCode)
	}
	// Without the option the path must not exist.
	s2 := New(engine.New(2, 0))
	ts2 := newHTTPServer(t, s2)
	resp, err = http.Get(ts2.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof served without WithPprof")
	}
}

// A fabric coordinator with an unreachable peer stays Ready — local
// fallback keeps every answer correct — but reports Degraded with the
// failing peer named, so orchestration sees an impaired fleet without
// pulling a correct daemon out of rotation.
func TestHealthzFabricDegraded(t *testing.T) {
	peerSrv := newHTTPServer(t, New(engine.New(1, 0)))
	dead := "http://127.0.0.1:1" // nothing listens on port 1
	fc, err := fabric.New(fabric.Config{Peers: []string{peerSrv.URL, dead}})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, New(engine.New(1, 0), WithFabric(fc)))

	var h HealthResponse
	resp := getJSON(t, ts.URL+"/v1/healthz?format=json", &h)
	if resp.StatusCode != http.StatusOK || !h.Ready {
		t.Fatalf("degraded coordinator must stay ready: status=%d body=%+v", resp.StatusCode, h)
	}
	if !h.Degraded {
		t.Fatalf("unreachable peer not reported as degraded: %+v", h)
	}
	if h.Checks["peer "+peerSrv.URL] != "ok" {
		t.Fatalf("live peer check = %q, want ok (checks %v)", h.Checks["peer "+peerSrv.URL], h.Checks)
	}
	if got := h.Checks["peer "+dead]; !strings.HasPrefix(got, "unreachable") {
		t.Fatalf("dead peer check = %q, want unreachable", got)
	}
	if h.Checks["fabric"] != "1/2 peers up" {
		t.Fatalf("fabric summary = %q", h.Checks["fabric"])
	}

	// Text form carries the degraded line for humans and grep.
	respT, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(respT.Body)
	respT.Body.Close()
	if !strings.Contains(string(body), "degraded: true") {
		t.Fatalf("healthz text missing degraded line:\n%s", body)
	}

	// A fully-live fleet is not degraded.
	fc2, err := fabric.New(fabric.Config{Peers: []string{peerSrv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := newHTTPServer(t, New(engine.New(1, 0), WithFabric(fc2)))
	var h2 HealthResponse // fresh: degraded is omitempty, a reused struct would keep the stale true
	resp = getJSON(t, ts2.URL+"/v1/healthz?format=json", &h2)
	if resp.StatusCode != http.StatusOK || h2.Degraded || h2.Checks["fabric"] != "1/1 peers up" {
		t.Fatalf("healthy fleet reported degraded: status=%d body=%+v", resp.StatusCode, h2)
	}
}
