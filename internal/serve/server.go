// Package serve exposes the experiment engine over HTTP: the serving
// layer behind cmd/rowpressd and `rowpress -serve`. One engine (and
// therefore one shard cache) backs every request, so repeated and
// overlapping runs of the same (experiment, options) are served from
// memory without re-executing any shard.
//
// Endpoints:
//
//	GET /healthz              liveness + uptime
//	GET /v1/experiments       registered experiment ids and titles
//	GET /v1/run/{exp}         run one experiment (?scale, ?seed, ?modules,
//	                          ?format=json|text), reporting cache stats
//	GET /v1/results           recent completed runs with latency + hits
//	GET /v1/metrics           cumulative engine and cache counters
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// maxResults bounds the /v1/results history ring.
const maxResults = 256

// RunResponse is the JSON body of /v1/run/{exp}.
type RunResponse struct {
	Experiment string   `json:"experiment"`
	Title      string   `json:"title,omitempty"`
	Scale      float64  `json:"scale"`
	Seed       uint64   `json:"seed"`
	Modules    []string `json:"modules,omitempty"`
	Report     string   `json:"report"`
	Stats      RunStats `json:"stats"`
}

// RunStats mirrors engine.RunStats for the wire, with latency in
// milliseconds.
type RunStats struct {
	Shards    int     `json:"shards"`
	CacheHits int     `json:"cache_hits"`
	Executed  int     `json:"executed"`
	WallMS    float64 `json:"wall_ms"`
	FromCache bool    `json:"from_cache"` // true when no shard re-executed
}

// ResultRecord is one completed run in /v1/results.
type ResultRecord struct {
	Experiment  string    `json:"experiment"`
	Fingerprint string    `json:"fingerprint"`
	Bytes       int       `json:"bytes"`
	Stats       RunStats  `json:"stats"`
	CompletedAt time.Time `json:"completed_at"`
}

// MetricsResponse is the JSON body of /v1/metrics.
type MetricsResponse struct {
	UptimeS        float64 `json:"uptime_s"`
	Workers        int     `json:"workers"`
	Runs           uint64  `json:"runs"`
	ShardsPlanned  uint64  `json:"shards_planned"`
	ShardsExecuted uint64  `json:"shards_executed"`
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheEntries   int     `json:"cache_entries"`
	CacheEvictions uint64  `json:"cache_evictions"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	Errors         uint64  `json:"errors"`
	TotalWallMS    float64 `json:"total_wall_ms"`
	TotalShardMS   float64 `json:"total_shard_ms"`
}

// Server serves the experiment registry from a shared engine. Safe for
// concurrent use.
type Server struct {
	eng   *engine.Engine
	mux   *http.ServeMux
	start time.Time
	now   func() time.Time // test hook

	mu      sync.Mutex
	results []ResultRecord // newest first
}

// New builds a server around the given engine (nil = a fresh
// GOMAXPROCS-wide engine with the default cache).
func New(eng *engine.Engine) *Server {
	if eng == nil {
		eng = engine.New(0, 0)
	}
	s := &Server{eng: eng, mux: http.NewServeMux(), now: time.Now}
	s.start = s.now()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/run/{exp}", s.handleRun)
	s.mux.HandleFunc("GET /v1/results", s.handleResults)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return s
}

// Engine returns the backing engine.
func (s *Server) Engine() *engine.Engine { return s.eng }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ListenAndServe blocks serving on addr.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{Addr: addr, Handler: s, ReadHeaderTimeout: 10 * time.Second}
	return srv.ListenAndServe()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": s.now().Sub(s.start).Seconds(),
		"workers":  s.eng.Workers(),
	})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type exp struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	var out []exp
	for _, e := range core.List() {
		out = append(out, exp{ID: e.ID, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

// parseOptions decodes ?scale, ?seed, ?modules into core.Options.
func parseOptions(r *http.Request) (core.Options, error) {
	o := core.DefaultOptions()
	q := r.URL.Query()
	if v := q.Get("scale"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return o, fmt.Errorf("bad scale %q: %v", v, err)
		}
		o.Scale = f
	}
	if v := q.Get("seed"); v != "" {
		u, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return o, fmt.Errorf("bad seed %q: %v", v, err)
		}
		o.Seed = u
	}
	if v := q.Get("modules"); v != "" {
		o.Modules = strings.Split(v, ",")
	}
	return o, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("exp")
	o, err := parseOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p, err := core.PlanFor(id, o)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrUnknownExperiment) {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	out, es, err := s.eng.Execute(p)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	stats := RunStats{
		Shards:    es.Shards,
		CacheHits: es.CacheHits,
		Executed:  es.Executed,
		WallMS:    float64(es.Wall) / float64(time.Millisecond),
		FromCache: es.Executed == 0,
	}
	s.record(ResultRecord{
		Experiment:  id,
		Fingerprint: p.Fingerprint,
		Bytes:       len(out),
		Stats:       stats,
		CompletedAt: s.now().UTC(),
	})
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, out)
		return
	}
	var title string
	if e, ok := core.Get(id); ok {
		title = e.Title
	}
	writeJSON(w, http.StatusOK, RunResponse{
		Experiment: id, Title: title,
		Scale: o.Scale, Seed: o.Seed, Modules: o.Modules,
		Report: out, Stats: stats,
	})
}

func (s *Server) record(rec ResultRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results = append([]ResultRecord{rec}, s.results...)
	if len(s.results) > maxResults {
		s.results = s.results[:maxResults]
	}
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]ResultRecord, len(s.results))
	copy(out, s.results)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.eng.Metrics()
	cs := s.eng.Cache().Stats()
	writeJSON(w, http.StatusOK, MetricsResponse{
		UptimeS:        s.now().Sub(s.start).Seconds(),
		Workers:        s.eng.Workers(),
		Runs:           m.Runs,
		ShardsPlanned:  m.ShardsPlanned,
		ShardsExecuted: m.ShardsExecuted,
		CacheHits:      m.CacheHits,
		CacheMisses:    m.CacheMisses,
		CacheEntries:   cs.Entries,
		CacheEvictions: cs.Evictions,
		CacheHitRate:   cs.HitRate(),
		Errors:         m.Errors,
		TotalWallMS:    float64(m.TotalWall) / float64(time.Millisecond),
		TotalShardMS:   float64(m.TotalShardTime) / float64(time.Millisecond),
	})
}
