// Package serve exposes the experiment engine over HTTP: the serving
// layer behind cmd/rowpressd and `rowpress -serve`. One engine (and
// therefore one shard cache) backs every request, so repeated and
// overlapping runs of the same (experiment, options) are served from
// memory without re-executing any shard.
//
// Every endpoint is wrapped in observability middleware: per-route
// latency histograms, in-flight gauges, and structured request logs
// (log/slog; see WithLogger) carrying a request id, method, path,
// status, duration, and the shard counts the request executed.
//
// Endpoints:
//
//	GET  /healthz             liveness + uptime (legacy, kept for scripts)
//	GET  /v1/healthz          liveness/readiness probe, plain text or
//	                          ?format=json; 503 while draining
//	GET  /metrics             Prometheus text exposition: engine counters,
//	                          queue-wait and per-tier cache-lookup latency,
//	                          per-endpoint latency histograms
//	GET  /v1/experiments      registered experiment ids and titles
//	GET  /v1/scenarios        the attack-scenario matrix (internal/scenario
//	                          catalog) played by the scenario experiments
//	                          (?format=json|text|csv)
//	GET  /v1/run/{exp}        run one experiment (?scale, ?seed, ?modules,
//	                          ?format=json|text|csv|ndjson), reporting
//	                          cache stats; json carries the typed
//	                          report.Doc, ndjson streams per-shard
//	                          completion events before the final document
//	POST /v1/shard            resolve one shard for a fabric coordinator
//	                          (fabric.ShardRequest in, gob payload out,
//	                          answering tier in X-Fabric-Tier)
//	POST /v1/sweep            batched parameter sweep (sweep.Spec in the
//	                          body, ?format=json|text|csv); per-point
//	                          docs/stats plus the aggregate
//	GET  /v1/results          recent completed runs and sweeps (including
//	                          failures) with latency + hits; warm-started
//	                          from the run ledger when one is attached
//	GET  /v1/metrics          cumulative engine, per-cache-tier, and
//	                          failure counters
//	GET  /v1/history          the persistent run ledger (?experiment,
//	                          ?kind, ?limit, ?format=json|text|csv);
//	                          requires -ledger-dir
//	GET  /v1/compare          benchstat-style delta between two ledger
//	                          records (?a, ?b selectors: record id or
//	                          experiment[~N]; ?threshold, ?format);
//	                          requires -ledger-dir
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/ledger"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// maxResults bounds the /v1/results history ring.
const maxResults = 256

// RunResponse is the JSON body of /v1/run/{exp} (and the "done" event
// of the NDJSON stream). Doc is the typed result document; Report is
// its text rendering, kept for operators reading responses raw.
type RunResponse struct {
	Experiment string      `json:"experiment"`
	Title      string      `json:"title,omitempty"`
	Scale      float64     `json:"scale"`
	Seed       uint64      `json:"seed"`
	Modules    []string    `json:"modules,omitempty"`
	Doc        *report.Doc `json:"doc,omitempty"`
	Report     string      `json:"report"`
	Stats      RunStats    `json:"stats"`
}

// RunStats mirrors engine.RunStats for the wire, with latency in
// milliseconds.
type RunStats struct {
	Shards      int     `json:"shards"`
	CacheHits   int     `json:"cache_hits"`
	Executed    int     `json:"executed"`
	SubExecuted int     `json:"sub_executed,omitempty"` // sub-shards run for split shards
	QueueWaitMS float64 `json:"queue_wait_ms"`          // summed dispatch→execution wait
	WallMS      float64 `json:"wall_ms"`
	FromCache   bool    `json:"from_cache"` // true when no shard re-executed
}

// ResultRecord is one completed run or sweep in /v1/results. Kind is
// "run" or "sweep"; Points is the grid size for sweeps; Error is set
// when the execution failed (failed runs stay in history so operators
// can see them — they also increment run_failures in /v1/metrics). ID
// is the run-ledger record id when a ledger is attached — the handle
// /v1/compare selectors and `rowpress compare` accept.
type ResultRecord struct {
	ID          string    `json:"id,omitempty"`
	Experiment  string    `json:"experiment"`
	Kind        string    `json:"kind"`
	Fingerprint string    `json:"fingerprint"`
	Bytes       int       `json:"bytes"`
	Points      int       `json:"points,omitempty"`
	Error       string    `json:"error,omitempty"`
	Stats       RunStats  `json:"stats"`
	CompletedAt time.Time `json:"completed_at"`
}

// MetricsResponse is the JSON body of /v1/metrics. The cache_* fields
// are the in-memory tier (the historical names, kept stable for
// scrapers); the disk_* fields are the persistent warm-start tier and
// stay zero when the daemon runs without -cache-dir.
type MetricsResponse struct {
	UptimeS        float64 `json:"uptime_s"`
	Workers        int     `json:"workers"`
	Runs           uint64  `json:"runs"`
	ShardsPlanned  uint64  `json:"shards_planned"`
	ShardsExecuted uint64  `json:"shards_executed"`
	SubsPlanned    uint64  `json:"sub_shards_planned"`
	SubsExecuted   uint64  `json:"sub_shards_executed"`
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheEntries   int     `json:"cache_entries"`
	CacheEvictions uint64  `json:"cache_evictions"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	DiskEnabled    bool    `json:"disk_enabled"`
	DiskEntries    int     `json:"disk_entries"`
	DiskBytes      int64   `json:"disk_bytes"`
	DiskHits       uint64  `json:"disk_hits"`
	DiskMisses     uint64  `json:"disk_misses"`
	DiskEvictions  uint64  `json:"disk_evictions"`
	DiskWrites     uint64  `json:"disk_writes"`
	DiskWriteErrs  uint64  `json:"disk_write_errors"`
	Errors         uint64  `json:"errors"`
	RunFailures    uint64  `json:"run_failures"` // failed runs + failed sweep points served by this process
	TotalWallMS    float64 `json:"total_wall_ms"`
	TotalShardMS   float64 `json:"total_shard_ms"`

	// Queue-wait and per-tier cache-lookup latency, collected by the
	// engine's always-on atomic aggregates (independent of tracing).
	QueueWaits       uint64  `json:"queue_waits"`
	QueueWaitTotalMS float64 `json:"queue_wait_total_ms"`
	QueueWaitAvgMS   float64 `json:"queue_wait_avg_ms"`
	MemLookups       uint64  `json:"mem_lookups"`
	MemLookupAvgMS   float64 `json:"mem_lookup_avg_ms"`
	DiskLookups      uint64  `json:"disk_lookups"`
	DiskLookupAvgMS  float64 `json:"disk_lookup_avg_ms"`
	MissLookups      uint64  `json:"miss_lookups"`
	MissLookupAvgMS  float64 `json:"miss_lookup_avg_ms"`

	// Remote-tier (fabric) view: shards answered by peers, dispatch
	// latency, and dispatches that exhausted every peer. Zero on a
	// daemon running without -peers.
	RemoteHits        uint64  `json:"remote_hits"`
	RemoteLookupAvgMS float64 `json:"remote_lookup_avg_ms"`
	RemoteErrors      uint64  `json:"remote_errors"`

	// Fabric is the coordinator's client-side per-peer view; nil on a
	// daemon running without -peers.
	Fabric *fabric.Metrics `json:"fabric,omitempty"`

	// Endpoints is the per-route serving-path view: request volume,
	// in-flight concurrency, and latency quantiles.
	Endpoints map[string]EndpointMetrics `json:"endpoints"`
}

// Server serves the experiment registry from a shared engine. Safe for
// concurrent use.
type Server struct {
	eng   *engine.Engine
	mux   *http.ServeMux
	start time.Time
	now   func() time.Time // test hook

	log      *slog.Logger
	ledger   *ledger.Ledger // optional persistent run ledger
	fabric   *fabric.Client // optional coordinator-mode peer fabric
	routes   []*route       // instrumented endpoints, registration order
	reqID    atomic.Uint64
	draining atomic.Bool

	mu sync.Mutex
	// results is a fixed-size ring: head is the next insert position and
	// count ≤ maxResults. Inserting overwrites the oldest entry in place —
	// O(1) per completed run, where rebuilding a newest-first slice was
	// O(n) allocations per request under load.
	results  [maxResults]ResultRecord
	head     int
	count    int
	failures uint64 // failed runs + failed sweep points
}

// Option configures a Server at construction.
type Option func(*Server)

// WithLogger sets the structured request logger (default: discard).
// One "request" record is emitted per served request.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.log = l
		}
	}
}

// WithLedger attaches a persistent run ledger: every completed run and
// sweep is stamped into it, /v1/history and /v1/compare serve it, and
// the /v1/results ring is warm-started from its newest records at
// construction so history survives daemon restarts.
func WithLedger(l *ledger.Ledger) Option {
	return func(s *Server) { s.ledger = l }
}

// WithFabric marks this daemon as a fabric coordinator: the client
// (already attached to the engine as its remote tier) is surfaced in
// /v1/healthz readiness (per-peer reachability, degraded state),
// /v1/metrics, and the Prometheus exposition.
func WithFabric(c *fabric.Client) Option {
	return func(s *Server) { s.fabric = c }
}

// WithPprof exposes net/http/pprof under /debug/pprof/ on the server's
// mux — profiling endpoints are opt-in (rowpressd -pprof) and bypass
// the request-metrics middleware so profile downloads don't distort
// the latency histograms.
func WithPprof() Option {
	return func(s *Server) {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// New builds a server around the given engine (nil = a fresh
// GOMAXPROCS-wide engine with the default cache).
func New(eng *engine.Engine, opts ...Option) *Server {
	if eng == nil {
		eng = engine.New(0, 0)
	}
	s := &Server{eng: eng, mux: http.NewServeMux(), now: time.Now, log: slog.New(slog.DiscardHandler)}
	s.start = s.now()
	for _, opt := range opts {
		opt(s)
	}
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /v1/healthz", s.handleHealthzV1)
	s.handle("GET /metrics", s.handlePromMetrics)
	s.handle("GET /v1/experiments", s.handleExperiments)
	s.handle("GET /v1/scenarios", s.handleScenarios)
	s.handle("GET /v1/run/{exp}", s.handleRun)
	s.handle("POST /v1/shard", s.handleShard)
	s.handle("POST /v1/sweep", s.handleSweep)
	s.handle("GET /v1/results", s.handleResults)
	s.handle("GET /v1/metrics", s.handleMetrics)
	s.handle("GET /v1/history", s.handleHistory)
	s.handle("GET /v1/compare", s.handleCompare)
	s.warmResults()
	return s
}

// warmResults seeds the /v1/results ring from the ledger's newest
// records so a restarted daemon's history endpoint is not empty even
// though nothing ran in this process yet. The process-local failure
// counter is untouched — those records' failures belong to the process
// that served them.
func (s *Server) warmResults() {
	if s.ledger == nil {
		return
	}
	recs := s.ledger.Records(ledger.Query{Limit: maxResults}) // newest first
	for i := len(recs) - 1; i >= 0; i-- {
		s.record(resultFromLedger(recs[i]), 0)
	}
}

// resultFromLedger converts a durable ledger record into the
// /v1/results wire shape.
func resultFromLedger(r ledger.Record) ResultRecord {
	hits := r.Tiers.Total() - r.Tiers.Miss
	return ResultRecord{
		ID:          r.ID,
		Experiment:  r.Experiment,
		Kind:        r.Kind,
		Fingerprint: r.OptionsHash,
		Error:       r.Error,
		CompletedAt: r.CompletedAt,
		Stats: RunStats{
			Shards:      r.Shards,
			CacheHits:   hits,
			Executed:    r.Tiers.Miss,
			SubExecuted: r.SubShards,
			QueueWaitMS: r.QueueWait.TotalMS,
			WallMS:      r.WallMS,
			FromCache:   r.Shards > 0 && r.Tiers.Miss == 0 && r.Error == "",
		},
	}
}

// Engine returns the backing engine.
func (s *Server) Engine() *engine.Engine { return s.eng }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ListenAndServe blocks serving on addr.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{Addr: addr, Handler: s, ReadHeaderTimeout: 10 * time.Second}
	return srv.ListenAndServe()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": s.now().Sub(s.start).Seconds(),
		"workers":  s.eng.Workers(),
	})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type exp struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	var out []exp
	for _, e := range core.List() {
		out = append(out, exp{ID: e.ID, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

// ScenarioInfo is one entry of /v1/scenarios: the spec plus derived
// presentation fields, so clients can discover the scenario matrix
// without parsing CLI output.
type ScenarioInfo struct {
	scenario.Spec
	Kind    string `json:"kind"`
	Pattern string `json:"pattern"`
}

// handleScenarios mirrors /v1/experiments for the attack-scenario
// matrix: the catalog played by the scenario-grid and
// scenario-mitigation experiments. Formats are validated exactly like
// the run and sweep endpoints — unknown values are a 400 naming the
// allowed list, never a silent JSON fallthrough.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	format, err := parseFormat(r, "json", "text", "csv")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	switch format {
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, scenario.MatrixText())
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		fmt.Fprint(w, scenario.MatrixCSV())
	default:
		var out []ScenarioInfo
		for _, sc := range scenario.Catalog() {
			out = append(out, ScenarioInfo{Spec: sc, Kind: sc.KindName(), Pattern: sc.Pattern()})
		}
		writeJSON(w, http.StatusOK, out)
	}
}

// parseOptions decodes ?scale, ?seed, ?modules into core.Options.
func parseOptions(r *http.Request) (core.Options, error) {
	o := core.DefaultOptions()
	q := r.URL.Query()
	if v := q.Get("scale"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return o, fmt.Errorf("bad scale %q: %v", v, err)
		}
		o.Scale = f
	}
	if v := q.Get("seed"); v != "" {
		u, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return o, fmt.Errorf("bad seed %q: %v", v, err)
		}
		o.Seed = u
	}
	if v := q.Get("modules"); v != "" {
		mods, err := core.NormalizeModules(strings.Split(v, ","))
		if err != nil {
			return o, fmt.Errorf("bad modules %q: %v", v, err)
		}
		o.Modules = mods
	}
	return o, nil
}

// parseFormat validates ?format against the renderings the endpoint
// supports; unknown values are a 400, never a silent JSON fallthrough.
func parseFormat(r *http.Request, allowed ...string) (string, error) {
	v := r.URL.Query().Get("format")
	if v == "" {
		return "json", nil
	}
	for _, a := range allowed {
		if v == a {
			return v, nil
		}
	}
	return "", fmt.Errorf("bad format %q: want one of %s", v, strings.Join(allowed, "|"))
}

// shardEvent is one NDJSON stream line emitted while a /v1/run executes.
// Worker is -1 for cache hits and for split shards (their sub-shards
// occupy worker slots; the parent never does); Tier names where the
// shard was resolved: "mem", "disk", "join", or "" (executed). Subs is
// the shard's declared sub-shard count (0 for a leaf shard) and
// SubsRun how many of those this run actually executed.
type shardEvent struct {
	Event   string  `json:"event"` // "shard"
	Index   int     `json:"index"`
	Key     string  `json:"key"`
	Cached  bool    `json:"cached"`
	Tier    string  `json:"tier,omitempty"`
	Peer    string  `json:"peer,omitempty"` // answering fabric peer when tier is "remote"
	Worker  int     `json:"worker"`
	Subs    int     `json:"subs,omitempty"`
	SubsRun int     `json:"subs_run,omitempty"`
	QueueMS float64 `json:"queue_ms"`
	WallMS  float64 `json:"wall_ms"`
	Error   string  `json:"error,omitempty"`
}

// streamDone is the final NDJSON line of a successful run: the full
// run response under an event tag.
type streamDone struct {
	Event string `json:"event"` // "done"
	RunResponse
}

// streamError is the final NDJSON line of a failed run. A dedicated
// type, not a zero-valued streamDone: embedding the empty RunResponse
// would emit fabricated experiment/stats fields a client could
// mistake for data.
type streamError struct {
	Event string `json:"event"` // "error"
	Error string `json:"error"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("exp")
	format, err := parseFormat(r, "json", "text", "csv", "ndjson")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	o, err := parseOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p, err := core.PlanFor(id, o)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrUnknownExperiment) {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}

	// NDJSON mode: stream per-shard completion events as the engine
	// resolves them, then the final document. Shard events arrive from
	// worker goroutines, so writes are serialized and flushed per line.
	var enc *json.Encoder
	var wmu sync.Mutex
	if format == "ndjson" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		enc = json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		p.OnShard = func(ev engine.ShardEvent) {
			wmu.Lock()
			defer wmu.Unlock()
			e := shardEvent{
				Event: "shard", Index: ev.Index, Key: ev.Key, Cached: ev.Cached,
				Tier: ev.Tier, Peer: ev.Peer, Worker: ev.Worker, Subs: ev.Subs, SubsRun: ev.SubsRun,
				QueueMS: float64(ev.Queue) / float64(time.Millisecond),
				WallMS:  float64(ev.Wall) / float64(time.Millisecond),
			}
			if ev.Err != nil {
				e.Error = ev.Err.Error()
			}
			_ = enc.Encode(e)
			if flusher != nil {
				flusher.Flush()
			}
		}
	}

	// With a ledger attached, count per-shard tier resolutions (chained
	// under any NDJSON observer) and window the engine's latency
	// aggregates around this run.
	var tiers func() ledger.TierCounts
	var before engine.Metrics
	if s.ledger != nil {
		before = s.eng.Metrics()
		tiers = ledger.ObservePlan(&p)
	}

	doc, es, err := s.eng.Execute(p)
	annotate(r.Context(), es.Shards, es.Executed)
	text := report.Text(doc)
	stats := RunStats{
		Shards:      es.Shards,
		CacheHits:   es.CacheHits,
		Executed:    es.Executed,
		SubExecuted: es.SubExecuted,
		QueueWaitMS: float64(es.QueueWait) / float64(time.Millisecond),
		WallMS:      float64(es.Wall) / float64(time.Millisecond),
		FromCache:   es.Executed == 0 && err == nil,
	}
	rec := ResultRecord{
		Experiment:  id,
		Kind:        "run",
		Fingerprint: p.Fingerprint,
		Bytes:       len(text),
		Stats:       stats,
		CompletedAt: s.now().UTC(),
	}
	if s.ledger != nil {
		lr := ledger.Record{
			Kind:        ledger.KindRun,
			Experiment:  id,
			OptionsHash: o.Hash(),
			CompletedAt: rec.CompletedAt,
			WallMS:      stats.WallMS,
			Shards:      es.Shards,
			Workers:     s.eng.Workers(),
			SubShards:   es.SubExecuted,
			Peers:       s.peerCount(),
			Tiers:       tiers(),
		}
		lr.FillWindow(s.eng.Metrics().Sub(before))
		if err != nil {
			lr.Error = err.Error()
		} else {
			lr.DocHash = ledger.DocHash(doc)
		}
		rec.ID = s.appendLedger(r, lr)
	}
	if err != nil {
		rec.Error = err.Error()
		s.record(rec, 1)
		if format == "ndjson" {
			wmu.Lock()
			_ = enc.Encode(streamError{Event: "error", Error: err.Error()})
			wmu.Unlock()
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.record(rec, 0)
	var title string
	if e, ok := core.Get(id); ok {
		title = e.Title
	}
	resp := RunResponse{
		Experiment: id, Title: title,
		Scale: o.Scale, Seed: o.Seed, Modules: o.Modules,
		Doc: doc, Report: text, Stats: stats,
	}
	switch format {
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, text)
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		fmt.Fprint(w, report.CSV(doc))
	case "ndjson":
		wmu.Lock()
		_ = enc.Encode(streamDone{Event: "done", RunResponse: resp})
		wmu.Unlock()
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

// handleShard answers one fabric coordinator's dispatch: the body is
// a fabric.ShardRequest, the response the gob payload of the resolved
// shard with the answering tier in the X-Fabric-Tier header. Any
// daemon can serve shards — a peer needs no configuration beyond
// being reachable — and resolution goes through engine.ResolveLocal,
// which never re-dispatches, so a peer that is itself a coordinator
// cannot forward the shard onward. Unknown experiments or shards are
// 404; a key mismatch (the coordinator derived a different cache
// address than this build does) is 409, so mixed-build fleets fail
// loudly instead of caching wrong payloads.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	var req fabric.ShardRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSweepBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad shard request: %v", err)
		return
	}
	v, tier, err := fabric.ServeShard(s.eng, req)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, core.ErrUnknownExperiment), errors.Is(err, fabric.ErrUnknownShard):
			status = http.StatusNotFound
		case errors.Is(err, fabric.ErrKeySkew):
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	annotate(r.Context(), 1, boolToInt(tier == ""))
	if tier == "" {
		tier = "execute"
	}
	w.Header().Set("Content-Type", "application/x-gob")
	w.Header().Set(fabric.TierHeader, tier)
	if err := engine.EncodePayload(w, v); err != nil {
		// Headers are gone; the coordinator sees a truncated gob stream,
		// counts the decode failure, and falls back. Log it here.
		s.log.LogAttrs(r.Context(), slog.LevelWarn, "shard_encode_failed", slog.String("error", err.Error()))
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// peerCount is the configured fabric peer count, 0 without a fabric.
func (s *Server) peerCount() int {
	if s.fabric == nil {
		return 0
	}
	return len(s.fabric.Peers())
}

// maxSweepBody bounds the /v1/sweep request body (a spec is a few
// hundred bytes; a megabyte is already absurd).
const maxSweepBody = 1 << 20

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	format, err := parseFormat(r, "json", "text", "csv")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var spec sweep.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSweepBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad sweep spec: %v", err)
		return
	}
	var before engine.Metrics
	if s.ledger != nil {
		before = s.eng.Metrics()
	}
	res, err := sweep.Run(s.eng, spec)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrUnknownExperiment) {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	a := res.Aggregate
	annotate(r.Context(), a.ShardRefs, a.Executed)
	rec := ResultRecord{
		Experiment:  res.Experiment,
		Kind:        "sweep",
		Fingerprint: sweepFingerprint(spec),
		Bytes:       a.ReportBytes,
		Points:      a.Points,
		Stats: RunStats{
			Shards:      a.ShardRefs,
			CacheHits:   a.ShardRefs - a.Executed,
			Executed:    a.Executed,
			SubExecuted: a.SubExecuted,
			QueueWaitMS: a.QueueWaitMS,
			WallMS:      a.WallMS,
			FromCache:   a.Executed == 0 && a.Failed == 0,
		},
		CompletedAt: s.now().UTC(),
	}
	if a.Failed > 0 {
		rec.Error = fmt.Sprintf("%d/%d points failed", a.Failed, a.Points)
	}
	if s.ledger != nil {
		docs := make([]*report.Doc, len(res.Points))
		for i := range res.Points {
			docs[i] = res.Points[i].Doc
		}
		w := s.eng.Metrics().Sub(before)
		lr := ledger.Record{
			Kind:        ledger.KindSweep,
			Experiment:  res.Experiment,
			OptionsHash: ledger.HashJSON("sweep", spec),
			DocHash:     ledger.DocsHash(docs),
			Error:       rec.Error,
			CompletedAt: rec.CompletedAt,
			WallMS:      a.WallMS,
			Shards:      a.ShardRefs,
			Workers:     s.eng.Workers(),
			SubShards:   a.SubExecuted,
			Peers:       s.peerCount(),
			Tiers:       ledger.SweepTiers(w, a.Executed, a.ShardRefs),
		}
		lr.FillWindow(w)
		rec.ID = s.appendLedger(r, lr)
	}
	s.record(rec, uint64(a.Failed))
	switch format {
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, res.Text())
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		fmt.Fprint(w, res.CSV())
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

// appendLedger stamps the record into the attached ledger and returns
// its assigned id. An append failure is logged, not fatal — the run
// itself succeeded; only its durable history entry was lost.
func (s *Server) appendLedger(r *http.Request, lr ledger.Record) string {
	stamped, err := s.ledger.Append(lr)
	if err != nil {
		s.log.LogAttrs(r.Context(), slog.LevelWarn, "ledger_append_failed", slog.String("error", err.Error()))
		return ""
	}
	return stamped.ID
}

// sweepFingerprint content-addresses a sweep spec the same way shard
// results are addressed, so identical sweeps are recognizable in
// /v1/results history.
func sweepFingerprint(spec sweep.Spec) string {
	b, err := json.Marshal(spec)
	if err != nil {
		return "unfingerprintable"
	}
	return engine.Key("sweep", string(b))
}

// record appends one history entry to the ring and adds failed to the
// process-wide failure counter (a failed run is 1; a sweep contributes
// its failed point count).
func (s *Server) record(rec ResultRecord, failed uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failures += failed
	s.results[s.head] = rec
	s.head = (s.head + 1) % maxResults
	if s.count < maxResults {
		s.count++
	}
}

// recentResults snapshots the ring newest-first.
func (s *Server) recentResults() []ResultRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ResultRecord, s.count)
	for i := 0; i < s.count; i++ {
		out[i] = s.results[(s.head-1-i+maxResults)%maxResults]
	}
	return out
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.recentResults())
}

// handleHistory serves the persistent run ledger: JSON is the raw
// record list (newest first), text/CSV render through the shared
// report pipeline. 404 without a ledger — history is a deployment
// choice (-ledger-dir), not a degraded empty list.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if s.ledger == nil {
		writeError(w, http.StatusNotFound, "no run ledger attached (start the daemon with -ledger-dir)")
		return
	}
	format, err := parseFormat(r, "json", "text", "csv")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q := ledger.Query{
		Experiment: r.URL.Query().Get("experiment"),
		Kind:       r.URL.Query().Get("kind"),
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		q.Limit = n
	}
	recs := s.ledger.Records(q)
	switch format {
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, report.Text(ledger.HistoryDoc(recs, s.ledger.Stats())))
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		fmt.Fprint(w, report.CSV(ledger.HistoryDoc(recs, s.ledger.Stats())))
	default:
		if recs == nil {
			recs = []ledger.Record{}
		}
		writeJSON(w, http.StatusOK, recs)
	}
}

// CompareResponse is the JSON body of /v1/compare: both resolved
// records, the delta document, and the machine-checkable verdicts.
type CompareResponse struct {
	A                    ledger.Record `json:"a"`
	B                    ledger.Record `json:"b"`
	Doc                  *report.Doc   `json:"doc"`
	Regression           bool          `json:"regression"`
	Improvement          bool          `json:"improvement"`
	DeterminismChecked   bool          `json:"determinism_checked"`
	DeterminismViolation bool          `json:"determinism_violation"`
}

// handleCompare serves the benchstat-style delta between two ledger
// records. ?a and ?b accept a record id or an experiment selector
// (experiment[~N], N-th newest); equal experiment selectors compare
// the previous run against the latest.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	if s.ledger == nil {
		writeError(w, http.StatusNotFound, "no run ledger attached (start the daemon with -ledger-dir)")
		return
	}
	format, err := parseFormat(r, "json", "text", "csv")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	selA, selB := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	if selA == "" || selB == "" {
		writeError(w, http.StatusBadRequest, "compare needs ?a and ?b (record id or experiment[~N])")
		return
	}
	var opt ledger.CompareOptions
	if v := r.URL.Query().Get("threshold"); v != "" {
		th, err := strconv.ParseFloat(v, 64)
		if err != nil || th <= 0 {
			writeError(w, http.StatusBadRequest, "bad threshold %q: want a positive fraction", v)
			return
		}
		opt.Threshold = th
	}
	a, b, err := s.ledger.ResolvePair(selA, selB)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	d := ledger.Compare(a, b, opt)
	switch format {
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, report.Text(d.Doc))
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		fmt.Fprint(w, report.CSV(d.Doc))
	default:
		writeJSON(w, http.StatusOK, CompareResponse{
			A: d.A, B: d.B, Doc: d.Doc,
			Regression: d.Regression, Improvement: d.Improvement,
			DeterminismChecked: d.DeterminismChecked, DeterminismViolation: d.DeterminismViolation,
		})
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.eng.Metrics()
	s.mu.Lock()
	failures := s.failures
	s.mu.Unlock()
	var fm *fabric.Metrics
	if s.fabric != nil {
		snap := s.fabric.Metrics()
		fm = &snap
	}
	writeJSON(w, http.StatusOK, MetricsResponse{
		UptimeS:        s.now().Sub(s.start).Seconds(),
		Workers:        s.eng.Workers(),
		Runs:           m.Runs,
		ShardsPlanned:  m.ShardsPlanned,
		ShardsExecuted: m.ShardsExecuted,
		SubsPlanned:    m.SubShardsPlanned,
		SubsExecuted:   m.SubShardsExecuted,
		CacheHits:      m.CacheHits,
		CacheMisses:    m.CacheMisses,
		CacheEntries:   m.Mem.Entries,
		CacheEvictions: m.Mem.Evictions,
		CacheHitRate:   m.Mem.HitRate(),
		DiskEnabled:    s.eng.Disk() != nil,
		DiskEntries:    m.Disk.Entries,
		DiskBytes:      m.Disk.Bytes,
		DiskHits:       m.Disk.Hits,
		DiskMisses:     m.Disk.Misses,
		DiskEvictions:  m.Disk.Evictions,
		DiskWrites:     m.Disk.Writes,
		DiskWriteErrs:  m.Disk.WriteErrors,
		Errors:         m.Errors,
		RunFailures:    failures,
		TotalWallMS:    float64(m.TotalWall) / float64(time.Millisecond),
		TotalShardMS:   float64(m.TotalShardTime) / float64(time.Millisecond),

		QueueWaits:       m.QueueWait.Count,
		QueueWaitTotalMS: msF(m.QueueWait.Total),
		QueueWaitAvgMS:   msF(m.QueueWait.Avg()),
		MemLookups:       m.MemLookup.Count,
		MemLookupAvgMS:   msF(m.MemLookup.Avg()),
		DiskLookups:      m.DiskLookup.Count,
		DiskLookupAvgMS:  msF(m.DiskLookup.Avg()),
		MissLookups:      m.MissLookup.Count,
		MissLookupAvgMS:  msF(m.MissLookup.Avg()),

		RemoteHits:        m.RemoteLookup.Count,
		RemoteLookupAvgMS: msF(m.RemoteLookup.Avg()),
		RemoteErrors:      m.RemoteErrors,
		Fabric:            fm,

		Endpoints: s.endpointMetrics(),
	})
}
