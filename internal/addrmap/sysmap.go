package addrmap

import "fmt"

// SysCoords locates a physical address on the DRAM bus.
type SysCoords struct {
	Bank int
	Row  int
	Col  int // cache-block index within the row
}

// SysMap is the processor memory controller's physical-address → DRAM
// mapping, modeled as XOR-folded bit fields the way DRAMA [112] recovers
// them on real Intel parts. The real-system demonstration (§6.1) depends on
// knowing this mapping to place aggressors and victims in adjacent rows.
type SysMap struct {
	BlockBits int   // log2(cache block size) = 6
	ColBits   int   // column (block index) bits above the block offset
	BankBits  int   // bank-index bits
	BankXOR   []int // per bank bit: row-bit index XORed in (rank/bank hashing), -1 = none
	RowBits   int
}

// NewCometLakeMap returns a mapping shaped like the Intel Comet Lake system
// of §6.1 (reverse-engineered with DRAMA in the paper), scaled to the given
// geometry: addr = [row | bank^rowhash | col | 6-bit block offset].
func NewCometLakeMap(banks, rowsPerBank, blocksPerRow int) (SysMap, error) {
	colBits, err := log2exact(blocksPerRow, "blocks per row")
	if err != nil {
		return SysMap{}, err
	}
	bankBits, err := log2exact(banks, "banks")
	if err != nil {
		return SysMap{}, err
	}
	rowBits, err := log2exact(rowsPerBank, "rows per bank")
	if err != nil {
		return SysMap{}, err
	}
	// Intel-style bank hashing: bank bit i is XORed with row bit i.
	xor := make([]int, bankBits)
	for i := range xor {
		if i < rowBits {
			xor[i] = i
		} else {
			xor[i] = -1
		}
	}
	return SysMap{BlockBits: 6, ColBits: colBits, BankBits: bankBits, BankXOR: xor, RowBits: rowBits}, nil
}

// Decode maps a physical address to DRAM coordinates.
func (m SysMap) Decode(paddr uint64) SysCoords {
	col := int(paddr >> m.BlockBits & mask(m.ColBits))
	bankField := int(paddr >> (m.BlockBits + m.ColBits) & mask(m.BankBits))
	row := int(paddr >> (m.BlockBits + m.ColBits + m.BankBits) & mask(m.RowBits))
	bank := bankField
	for i, rb := range m.BankXOR {
		if rb >= 0 && row&(1<<rb) != 0 {
			bank ^= 1 << i
		}
	}
	return SysCoords{Bank: bank, Row: row, Col: col}
}

// Encode maps DRAM coordinates back to a physical address (inverse of
// Decode). The attack program uses it to craft pointers into specific rows
// of its hugepage.
func (m SysMap) Encode(c SysCoords) uint64 {
	bankField := c.Bank
	for i, rb := range m.BankXOR {
		if rb >= 0 && c.Row&(1<<rb) != 0 {
			bankField ^= 1 << i
		}
	}
	return uint64(c.Row)<<(m.BlockBits+m.ColBits+m.BankBits) |
		uint64(bankField)<<(m.BlockBits+m.ColBits) |
		uint64(c.Col)<<m.BlockBits
}

// Span returns the number of addressable bytes under the mapping.
func (m SysMap) Span() uint64 {
	return 1 << (m.BlockBits + m.ColBits + m.BankBits + m.RowBits)
}

func mask(bits int) uint64 { return 1<<bits - 1 }

func log2exact(v int, what string) (int, error) {
	if v <= 0 || v&(v-1) != 0 {
		return 0, fmt.Errorf("addrmap: %s must be a power of two, got %d", what, v)
	}
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n, nil
}
