package addrmap

import "fmt"

// DisturbProbe is the experiment primitive ReverseEngineer needs: hammer
// the given logical row hard and return the logical rows that exhibited
// bitflips. The characterization infrastructure provides this against a
// simulated module (the paper runs the same probe on real chips, following
// the methodology of prior works [43, 67, 103, 164]).
type DisturbProbe func(logicalRow int) ([]int, error)

// ReverseEngineer infers the in-DRAM row mapping kind by probing sample
// rows: it hammers logical rows and checks which logical rows flip. For
// each candidate scheme it verifies that every observed victim is a
// physical neighbor (distance ≤ maxDist) of the aggressor under that
// scheme; the unique surviving scheme wins.
func ReverseEngineer(rows int, probe DisturbProbe, sampleRows []int, maxDist int) (RowMapKind, error) {
	candidates := []RowMapKind{RowDirect, RowXOR3, RowTwist}
	alive := make(map[RowMapKind]bool, len(candidates))
	for _, k := range candidates {
		alive[k] = true
	}
	observedAny := false
	for _, agg := range sampleRows {
		victims, err := probe(agg)
		if err != nil {
			return RowDirect, fmt.Errorf("addrmap: probe row %d: %w", agg, err)
		}
		if len(victims) == 0 {
			continue
		}
		observedAny = true
		for _, k := range candidates {
			if !alive[k] {
				continue
			}
			m, err := NewRowMap(k, rows)
			if err != nil {
				alive[k] = false
				continue
			}
			pAgg := m.Physical(agg)
			for _, v := range victims {
				d := m.Physical(v) - pAgg
				if d < 0 {
					d = -d
				}
				if d == 0 || d > maxDist {
					alive[k] = false
					break
				}
			}
		}
	}
	if !observedAny {
		return RowDirect, fmt.Errorf("addrmap: no bitflips observed; cannot reverse-engineer mapping")
	}
	var winner RowMapKind
	n := 0
	for _, k := range candidates {
		if alive[k] {
			winner = k
			n++
		}
	}
	switch n {
	case 1:
		return winner, nil
	case 0:
		return RowDirect, fmt.Errorf("addrmap: no candidate scheme explains the observed victims")
	default:
		// Ambiguity (e.g. all probes hit rows where schemes coincide):
		// prefer the simplest candidate still alive, reported as such.
		for _, k := range candidates {
			if alive[k] {
				return k, fmt.Errorf("addrmap: %d schemes remain consistent; returning simplest", n)
			}
		}
		panic("unreachable")
	}
}
