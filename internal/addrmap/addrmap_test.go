package addrmap

import (
	"testing"
	"testing/quick"
)

func TestRowMapBijective(t *testing.T) {
	for _, kind := range []RowMapKind{RowDirect, RowXOR3, RowTwist} {
		m, err := NewRowMap(kind, 1024)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]int)
		for l := 0; l < 1024; l++ {
			p := m.Physical(l)
			if p < 0 || p >= 1024 {
				t.Fatalf("kind %d: physical %d out of range", kind, p)
			}
			if prev, dup := seen[p]; dup {
				t.Fatalf("kind %d: rows %d and %d map to %d", kind, prev, l, p)
			}
			seen[p] = l
			if m.Logical(p) != l {
				t.Fatalf("kind %d: Logical(Physical(%d)) = %d", kind, l, m.Logical(p))
			}
		}
	}
}

func TestRowMapInvolutionProperty(t *testing.T) {
	m, _ := NewRowMap(RowXOR3, 1<<16)
	f := func(r uint16) bool {
		l := int(r)
		return m.Physical(m.Physical(l)) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewRowMapValidation(t *testing.T) {
	if _, err := NewRowMap(RowXOR3, 12); err == nil {
		t.Error("12 rows with 8-row groups should fail")
	}
	if _, err := NewRowMap(RowTwist, 24); err == nil {
		t.Error("24 rows with 16-row groups should fail")
	}
	if _, err := NewRowMap(RowDirect, 0); err == nil {
		t.Error("zero rows should fail")
	}
	if _, err := NewRowMap(RowMapKind(99), 16); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestPhysicalNeighbors(t *testing.T) {
	m, _ := NewRowMap(RowDirect, 64)
	below, above, ok := m.PhysicalNeighbors(10, 1)
	if !ok || below != 9 || above != 11 {
		t.Fatalf("neighbors(10,1) = %d,%d,%v", below, above, ok)
	}
	if _, _, ok := m.PhysicalNeighbors(0, 1); ok {
		t.Error("edge row should report no full neighbor pair")
	}
	mx, _ := NewRowMap(RowXOR3, 64)
	b, a, ok := mx.PhysicalNeighbors(8, 1) // logical 8 -> physical 15
	if !ok {
		t.Fatal("neighbors of logical 8 should exist")
	}
	if mx.Physical(b) != 14 || mx.Physical(a) != 16 {
		t.Fatalf("scrambled neighbors wrong: phys %d and %d", mx.Physical(b), mx.Physical(a))
	}
}

func TestReverseEngineerIdentifiesScheme(t *testing.T) {
	const rows = 1024
	for _, truth := range []RowMapKind{RowDirect, RowXOR3, RowTwist} {
		m, _ := NewRowMap(truth, rows)
		probe := func(agg int) ([]int, error) {
			// Ground-truth probe: hammering logical agg flips bits in the
			// physically adjacent rows.
			p := m.Physical(agg)
			var victims []int
			for _, pv := range []int{p - 1, p + 1} {
				if pv >= 0 && pv < rows {
					victims = append(victims, m.Logical(pv))
				}
			}
			return victims, nil
		}
		// Sample rows chosen to disambiguate the schemes (they differ on
		// rows with interesting low bits).
		sample := []int{3, 8, 9, 12, 15, 17, 100, 513}
		got, err := ReverseEngineer(rows, probe, sample, 2)
		if err != nil {
			t.Fatalf("truth %d: %v", truth, err)
		}
		if got != truth {
			t.Fatalf("truth %d: reverse-engineered %d", truth, got)
		}
	}
}

func TestReverseEngineerNoFlips(t *testing.T) {
	probe := func(int) ([]int, error) { return nil, nil }
	if _, err := ReverseEngineer(64, probe, []int{1, 2}, 2); err == nil {
		t.Fatal("no observations should be an error")
	}
}

func TestSysMapRoundTrip(t *testing.T) {
	m, err := NewCometLakeMap(16, 4096, 128)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint64) bool {
		paddr := raw % m.Span() &^ 0x3F // block aligned
		c := m.Decode(paddr)
		return m.Encode(c) == paddr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSysMapCoordsInRange(t *testing.T) {
	m, _ := NewCometLakeMap(16, 4096, 128)
	f := func(raw uint64) bool {
		c := m.Decode(raw % m.Span())
		return c.Bank >= 0 && c.Bank < 16 && c.Row >= 0 && c.Row < 4096 && c.Col >= 0 && c.Col < 128
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSysMapBankHashing(t *testing.T) {
	m, _ := NewCometLakeMap(16, 4096, 128)
	// Same bank field, adjacent rows: the decoded bank must differ when the
	// XORed row bit differs — that's what makes row-adjacent same-bank
	// placement nontrivial for the attacker.
	a := m.Encode(SysCoords{Bank: 3, Row: 100, Col: 0})
	b := m.Encode(SysCoords{Bank: 3, Row: 101, Col: 0})
	if m.Decode(a).Bank != 3 || m.Decode(b).Bank != 3 {
		t.Fatal("encode/decode bank mismatch")
	}
	if a == b {
		t.Fatal("distinct rows encoded identically")
	}
}

func TestSysMapRejectsNonPow2(t *testing.T) {
	if _, err := NewCometLakeMap(3, 4096, 128); err == nil {
		t.Fatal("non-power-of-two banks should fail")
	}
}
