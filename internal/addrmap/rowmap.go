// Package addrmap models the two address-translation layers the paper must
// see through before it can pick physically adjacent rows:
//
//  1. In-DRAM row scrambling: the row address the memory controller sends
//     is remapped inside the chip, so logically consecutive rows need not
//     be physically adjacent (§3.2). The paper reverse-engineers this with
//     disturbance experiments; ReverseEngineer reproduces that procedure.
//  2. System physical-address → DRAM (bank, row, column) mapping in the
//     processor's memory controller, reverse-engineered with DRAMA-style
//     timing attacks in the paper's real-system demonstration (§6.1).
package addrmap

import "fmt"

// RowMapKind selects an in-DRAM logical→physical row scrambling scheme.
type RowMapKind int

// Known scrambling schemes (abstractions of the vendor-specific layouts
// reverse-engineered by prior work).
const (
	// RowDirect: physical = logical (no scrambling).
	RowDirect RowMapKind = iota
	// RowXOR3: the low three row bits are scrambled by XOR with bit 3
	// (a common vendor pattern: row pairs swap within 8-row groups).
	RowXOR3
	// RowTwist: within each 16-row group the low bits are bit-reversed.
	RowTwist
)

// RowMap is a bijective logical↔physical row mapping for one module.
type RowMap struct {
	Kind RowMapKind
	Rows int
}

// NewRowMap builds a mapping over rows rows. rows must be positive and, for
// the scrambled kinds, a multiple of the group size.
func NewRowMap(kind RowMapKind, rows int) (RowMap, error) {
	if rows <= 0 {
		return RowMap{}, fmt.Errorf("addrmap: rows must be positive, got %d", rows)
	}
	group := 1
	switch kind {
	case RowDirect:
	case RowXOR3:
		group = 8
	case RowTwist:
		group = 16
	default:
		return RowMap{}, fmt.Errorf("addrmap: unknown row map kind %d", kind)
	}
	if rows%group != 0 {
		return RowMap{}, fmt.Errorf("addrmap: rows %d not a multiple of group %d", rows, group)
	}
	return RowMap{Kind: kind, Rows: rows}, nil
}

// Physical translates a logical row to its physical location.
func (m RowMap) Physical(logical int) int {
	switch m.Kind {
	case RowXOR3:
		// XOR the low 3 bits with bit 3 replicated: rows 8..15 of each
		// 16-group have their low bits flipped.
		if logical&0x8 != 0 {
			return logical ^ 0x7
		}
		return logical
	case RowTwist:
		low := logical & 0xF
		rev := (low&1)<<3 | (low&2)<<1 | (low&4)>>1 | (low&8)>>3
		return logical&^0xF | rev
	default:
		return logical
	}
}

// Logical translates a physical row back to its logical address.
func (m RowMap) Logical(physical int) int {
	// All supported schemes are involutions; assert so a future non-
	// involutive scheme cannot silently break the inverse.
	return m.Physical(physical)
}

// PhysicalNeighbors returns the logical addresses of the rows physically
// adjacent to the given logical row at the given distance (±distance), in
// ascending physical order. ok is false when a neighbor falls off the array.
func (m RowMap) PhysicalNeighbors(logical, distance int) (below, above int, ok bool) {
	p := m.Physical(logical)
	pb, pa := p-distance, p+distance
	if pb < 0 || pa >= m.Rows {
		return 0, 0, false
	}
	return m.Logical(pb), m.Logical(pa), true
}
