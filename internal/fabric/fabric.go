// Package fabric is the distributed shard tier: a coordinator-side
// client that consistent-hashes engine shard addresses across a
// configured peer set of rowpressd daemons and dispatches the keys it
// does not own over the existing /v1 surface as gob shard payloads,
// and the peer-side resolver that answers those dispatches from the
// peer's own cache tiers and worker pool.
//
// The client implements engine.RemoteTier, so it slots beneath the
// local mem/disk tiers and above local execution: single-flight
// dedup, sub-shard splits, and unit-level warm hits all work
// unchanged across the wire. Failure handling is part of the design:
// bounded retries with exponential backoff per peer, a per-peer
// circuit breaker that converts a down peer into silent local
// execution, and hedged requests — when the owning peer is slower
// than its own recent latency quantile, a speculative duplicate is
// raced against the next live peer and the first answer wins. Every
// path degrades to local execution, so a degraded fleet is slower,
// never wrong.
package fabric

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
)

// TierHeader is the response header a peer sets on /v1/shard answers,
// naming the tier that answered on the peer ("mem", "disk", "join",
// or "execute"). The coordinator uses it to count warm remote hits —
// the shared-cache property working — separately from remote compute.
const TierHeader = "X-Fabric-Tier"

// Config parameterizes a coordinator's fabric client. The zero value
// of every knob selects the documented default.
type Config struct {
	Peers         []string      // peer base URLs, e.g. http://10.0.0.2:8080
	VirtualNodes  int           // ring points per member (default 64)
	Retries       int           // extra attempts per peer after the first (default 1)
	RetryBackoff  time.Duration // first retry delay, doubling per retry (default 25ms)
	HedgeQuantile float64       // latency quantile arming the hedge timer (default 0.95)
	HedgeMin      time.Duration // hedge delay floor (default 20ms)
	FailureLimit  int           // consecutive failures opening a peer's circuit (default 3)
	Cooldown      time.Duration // circuit-open duration before a retrial (default 5s)
	Timeout       time.Duration // per-attempt HTTP timeout (default 2m)
	MaxInFlight   int           // concurrent dispatch bound (default 4 per peer)
	Client        *http.Client  // optional transport override (timeout is applied)
}

func (c Config) withDefaults() Config {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 1
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 20 * time.Millisecond
	}
	if c.FailureLimit <= 0 {
		c.FailureLimit = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * len(c.Peers)
	}
	return c
}

// coldHedgeDelay arms the hedge timer before a peer has enough
// latency samples for a meaningful quantile.
const coldHedgeDelay = 100 * time.Millisecond

// hedgeMinSamples is the observation count below which the quantile
// is considered cold.
const hedgeMinSamples = 16

// errPermanent marks responses retries cannot fix (key skew, unknown
// experiment or shard): the attempt loop stops immediately.
var errPermanent = errors.New("permanent peer error")

// peer is the client-side state for one configured peer.
type peer struct {
	url  string
	hist *obs.Histogram // successful round-trip latencies

	mu          sync.Mutex
	consecFails int
	downUntil   time.Time

	dispatches uint64 // attempts started (retries included)
	hits       uint64 // successful answers
	warmHits   uint64 // answers served from the peer's mem/disk tiers
	errors     uint64 // failed attempts
	retries    uint64 // attempts beyond the first per dispatch
	hedges     uint64 // speculative duplicates fired against this peer's slowness
	hedgeWins  uint64 // dispatches where the hedge answered first
}

func (p *peer) up(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return !now.Before(p.downUntil)
}

func (p *peer) fail(now time.Time, limit int, cooldown time.Duration) {
	p.mu.Lock()
	p.errors++
	p.consecFails++
	if p.consecFails >= limit {
		p.downUntil = now.Add(cooldown)
	}
	p.mu.Unlock()
}

// Client is the coordinator side of the fabric. It is safe for
// concurrent use and implements engine.RemoteTier.
type Client struct {
	cfg   Config
	ring  *ring
	peers []*peer
	http  *http.Client
	sem   chan struct{}
	rec   *obs.Recorder
}

// New builds a client over the configured peer set. At least one peer
// is required — a fabric of one process is just a local engine.
func New(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Peers) == 0 {
		return nil, errors.New("fabric: no peers configured")
	}
	urls := make([]string, len(cfg.Peers))
	peers := make([]*peer, len(cfg.Peers))
	for i, u := range cfg.Peers {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("fabric: empty peer URL at index %d", i)
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		urls[i] = u
		peers[i] = &peer{url: u, hist: obs.NewLatencyHistogram()}
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{}
	}
	hc.Timeout = cfg.Timeout
	return &Client{
		cfg:   cfg,
		ring:  newRing(urls, cfg.VirtualNodes),
		peers: peers,
		http:  hc,
		sem:   make(chan struct{}, cfg.MaxInFlight),
	}, nil
}

// SetRecorder attaches a span recorder: hedge round trips are recorded
// as remote_hedge spans. nil detaches.
func (c *Client) SetRecorder(r *obs.Recorder) { c.rec = r }

// Peers returns the normalized peer URLs in configuration order.
func (c *Client) Peers() []string {
	out := make([]string, len(c.peers))
	for i, p := range c.peers {
		out[i] = p.url
	}
	return out
}

// attemptResult is one peer attempt's outcome.
type attemptResult struct {
	v     any
	peer  *peer
	hedge bool
	err   error
}

// Resolve implements engine.RemoteTier: it consistent-hashes the
// shard address, and when a live remote peer owns it, dispatches the
// shard there — retrying with backoff, hedging against the next live
// peer when the owner is slower than its recent latency quantile, and
// returning ok=false (execute locally) when the key is locally owned
// or the owner's circuit is open. A non-nil error means every
// attempted peer failed; the engine counts it and executes locally.
func (c *Client) Resolve(key string, req engine.RemoteRequest) (v any, peerURL string, ok bool, err error) {
	o, isOpts := req.Meta.(core.Options)
	if !isOpts {
		return nil, "", false, nil
	}
	owner := c.ring.owner(key)
	if owner == localMember {
		return nil, "", false, nil
	}
	pr := c.peers[owner]
	if !pr.up(time.Now()) {
		return nil, "", false, nil
	}

	c.sem <- struct{}{}
	defer func() { <-c.sem }()

	body, merr := json.Marshal(ShardRequest{
		Experiment: req.Experiment,
		Scale:      o.Scale,
		Seed:       o.Seed,
		Modules:    o.Modules,
		Shard:      req.Shard,
		Sub:        req.Sub,
		Key:        key,
	})
	if merr != nil {
		return nil, "", false, merr
	}

	results := make(chan attemptResult, 2) // buffered: a late loser never leaks its goroutine
	go func() { results <- c.attempt(pr, body) }()

	timer := time.NewTimer(c.hedgeDelay(pr))
	defer timer.Stop()

	launchHedge := func() bool {
		alt := c.nextUp(owner)
		if alt == nil {
			return false
		}
		pr.mu.Lock()
		pr.hedges++
		pr.mu.Unlock()
		t0 := time.Now()
		go func() {
			r := c.attempt(alt, body)
			r.hedge = true
			if c.rec != nil {
				c.rec.Record(obs.RemoteHedge, -1, -1, req.Experiment, req.Shard, t0, time.Since(t0), 0)
			}
			results <- r
		}()
		return true
	}

	outstanding, hedged := 1, false
	var firstErr error
	for outstanding > 0 {
		select {
		case r := <-results:
			outstanding--
			if r.err == nil {
				if r.hedge {
					pr.mu.Lock()
					pr.hedgeWins++
					pr.mu.Unlock()
				}
				return r.v, r.peer.url, true, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			// The owner failed outright before the hedge timer fired:
			// fail over to the next live peer immediately.
			if !hedged && outstanding == 0 && launchHedge() {
				hedged = true
				outstanding++
			}
		case <-timer.C:
			if !hedged && launchHedge() {
				hedged = true
				outstanding++
			}
		}
	}
	return nil, "", false, firstErr
}

// hedgeDelay derives the hedge timer from the peer's own recent
// latency distribution, floored at HedgeMin; before the histogram has
// enough samples a fixed cold-start delay applies.
func (c *Client) hedgeDelay(pr *peer) time.Duration {
	s := pr.hist.Snapshot()
	if s.Count < hedgeMinSamples {
		if coldHedgeDelay > c.cfg.HedgeMin {
			return coldHedgeDelay
		}
		return c.cfg.HedgeMin
	}
	d := s.Quantile(c.cfg.HedgeQuantile)
	if d < c.cfg.HedgeMin {
		d = c.cfg.HedgeMin
	}
	return d
}

// nextUp returns the first live peer after owner in index order, or
// nil when no other peer is live.
func (c *Client) nextUp(owner int) *peer {
	now := time.Now()
	for i := 1; i < len(c.peers); i++ {
		p := c.peers[(owner+i)%len(c.peers)]
		if p.up(now) {
			return p
		}
	}
	return nil
}

// attempt runs the bounded retry loop against one peer.
func (c *Client) attempt(pr *peer, body []byte) attemptResult {
	var lastErr error
	for try := 0; try <= c.cfg.Retries; try++ {
		if try > 0 {
			pr.mu.Lock()
			pr.retries++
			pr.mu.Unlock()
			time.Sleep(c.cfg.RetryBackoff << (try - 1))
		}
		pr.mu.Lock()
		pr.dispatches++
		pr.mu.Unlock()
		t0 := time.Now()
		v, tier, err := c.post(pr.url, body)
		if err == nil {
			pr.hist.Observe(time.Since(t0))
			pr.mu.Lock()
			pr.consecFails = 0
			pr.hits++
			if tier == engine.TierMem || tier == engine.TierDisk {
				pr.warmHits++
			}
			pr.mu.Unlock()
			return attemptResult{v: v, peer: pr}
		}
		lastErr = err
		pr.fail(time.Now(), c.cfg.FailureLimit, c.cfg.Cooldown)
		if errors.Is(err, errPermanent) || !pr.up(time.Now()) {
			break
		}
	}
	return attemptResult{peer: pr, err: lastErr}
}

// post performs one /v1/shard round trip.
func (c *Client) post(base string, body []byte) (v any, tier string, err error) {
	resp, err := c.http.Post(base+"/v1/shard", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("fabric: peer %s: %s: %s", base, resp.Status, strings.TrimSpace(string(msg)))
		// Key skew or an unknown experiment/shard is a build or
		// configuration mismatch; retries cannot fix it.
		if resp.StatusCode == http.StatusConflict || resp.StatusCode == http.StatusNotFound {
			err = fmt.Errorf("%w: %w", errPermanent, err)
		}
		return nil, "", err
	}
	v, err = engine.DecodePayload(resp.Body)
	if err != nil {
		return nil, "", fmt.Errorf("fabric: peer %s: decode payload: %w", base, err)
	}
	return v, resp.Header.Get(TierHeader), nil
}

// PeerStatus is one peer's health as seen from the coordinator: a
// live probe of the peer's liveness endpoint plus the client-side
// circuit state.
type PeerStatus struct {
	URL         string `json:"url"`
	Reachable   bool   `json:"reachable"`
	Error       string `json:"error,omitempty"`
	CircuitOpen bool   `json:"circuit_open"`
}

// Status probes every peer's /healthz concurrently with the given
// timeout. The serving layer's readiness check uses it to report a
// degraded (but still correct, via local fallback) coordinator.
func (c *Client) Status(timeout time.Duration) []PeerStatus {
	if timeout <= 0 {
		timeout = time.Second
	}
	probe := &http.Client{Timeout: timeout}
	out := make([]PeerStatus, len(c.peers))
	var wg sync.WaitGroup
	for i, p := range c.peers {
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			st := PeerStatus{URL: p.url, CircuitOpen: !p.up(time.Now())}
			resp, err := probe.Get(p.url + "/healthz")
			if err != nil {
				st.Error = err.Error()
			} else {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					st.Reachable = true
				} else {
					st.Error = resp.Status
				}
			}
			out[i] = st
		}(i, p)
	}
	wg.Wait()
	return out
}

// PeerMetrics is the cumulative client-side view of one peer.
type PeerMetrics struct {
	URL         string  `json:"url"`
	Dispatches  uint64  `json:"dispatches"`
	Hits        uint64  `json:"hits"`
	WarmHits    uint64  `json:"warm_hits"`
	Errors      uint64  `json:"errors"`
	Retries     uint64  `json:"retries"`
	Hedges      uint64  `json:"hedges"`
	HedgeWins   uint64  `json:"hedge_wins"`
	CircuitOpen bool    `json:"circuit_open"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
}

// Metrics is the aggregate client-side fabric view.
type Metrics struct {
	Peers      int           `json:"peers"`
	Dispatches uint64        `json:"dispatches"`
	Hits       uint64        `json:"hits"`
	WarmHits   uint64        `json:"warm_hits"`
	Errors     uint64        `json:"errors"`
	Retries    uint64        `json:"retries"`
	Hedges     uint64        `json:"hedges"`
	HedgeWins  uint64        `json:"hedge_wins"`
	PerPeer    []PeerMetrics `json:"per_peer"`
}

// Metrics snapshots the per-peer counters.
func (c *Client) Metrics() Metrics {
	m := Metrics{Peers: len(c.peers), PerPeer: make([]PeerMetrics, len(c.peers))}
	now := time.Now()
	for i, p := range c.peers {
		s := p.hist.Snapshot()
		p.mu.Lock()
		pm := PeerMetrics{
			URL:         p.url,
			Dispatches:  p.dispatches,
			Hits:        p.hits,
			WarmHits:    p.warmHits,
			Errors:      p.errors,
			Retries:     p.retries,
			Hedges:      p.hedges,
			HedgeWins:   p.hedgeWins,
			CircuitOpen: now.Before(p.downUntil),
		}
		p.mu.Unlock()
		pm.P50MS = float64(s.Quantile(0.50)) / float64(time.Millisecond)
		pm.P95MS = float64(s.Quantile(0.95)) / float64(time.Millisecond)
		m.PerPeer[i] = pm
		m.Dispatches += pm.Dispatches
		m.Hits += pm.Hits
		m.WarmHits += pm.WarmHits
		m.Errors += pm.Errors
		m.Retries += pm.Retries
		m.Hedges += pm.Hedges
		m.HedgeWins += pm.HedgeWins
	}
	return m
}
