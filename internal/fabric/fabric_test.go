// End-to-end fabric tests: real peer daemons (serve.Server over
// httptest), a real coordinator engine with the fabric client attached
// as its remote tier, and the determinism contract checked the only
// way that matters — rendered documents byte-identical to a
// single-process run, whatever the fleet does.
package fabric_test

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/report"
	"repro/internal/serve"
)

var testOpts = core.Options{Scale: 0.05, Seed: 1}

// goldenText renders the all-local reference document once per test.
func goldenText(t *testing.T) string {
	t.Helper()
	doc, err := core.RunWith(engine.New(2, 0), "fig6", testOpts)
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	return report.Text(doc)
}

// newPeer starts one peer daemon, optionally behind a middleware.
func newPeer(t *testing.T, mw func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	var h http.Handler = serve.New(engine.New(1, 0))
	if mw != nil {
		h = mw(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

// newCoordinator builds a coordinator engine with a fabric client over
// the given peers attached as its remote tier.
func newCoordinator(t *testing.T, cfg fabric.Config) (*engine.Engine, *fabric.Client) {
	t.Helper()
	fc, err := fabric.New(cfg)
	if err != nil {
		t.Fatalf("fabric.New: %v", err)
	}
	eng := engine.New(2, 0)
	eng.AttachRemote(fc)
	return eng, fc
}

// TestFabricDocsByteIdentical is the core contract: a coordinator
// dispatching across two peers renders the byte-identical document a
// single process renders, remote answers land in the coordinator's own
// tiers (so a warm re-run touches neither the fleet nor the pool), and
// the remote tier's accounting shows the dispatches happened.
func TestFabricDocsByteIdentical(t *testing.T) {
	golden := goldenText(t)
	p1, p2 := newPeer(t, nil), newPeer(t, nil)
	eng, fc := newCoordinator(t, fabric.Config{Peers: []string{p1.URL, p2.URL}})

	doc, err := core.RunWith(eng, "fig6", testOpts)
	if err != nil {
		t.Fatalf("fabric run: %v", err)
	}
	if got := report.Text(doc); got != golden {
		t.Fatalf("fabric document differs from single-process golden:\n--- fabric ---\n%s\n--- golden ---\n%s", got, golden)
	}
	cold := eng.Metrics()
	if cold.RemoteLookup.Count == 0 || fc.Metrics().Hits == 0 {
		t.Fatalf("no shard was answered remotely (remote lookups %d, fabric hits %d) — the fabric was not exercised",
			cold.RemoteLookup.Count, fc.Metrics().Hits)
	}

	// Warm re-run: every shard answers from the coordinator's mem tier;
	// nothing executes and nothing crosses the wire.
	doc2, err := core.RunWith(eng, "fig6", testOpts)
	if err != nil {
		t.Fatalf("warm fabric run: %v", err)
	}
	if got := report.Text(doc2); got != golden {
		t.Fatal("warm fabric document differs from golden")
	}
	warm := eng.Metrics()
	if warm.ShardsExecuted != cold.ShardsExecuted {
		t.Fatalf("warm run executed %d shards locally", warm.ShardsExecuted-cold.ShardsExecuted)
	}
	if warm.RemoteLookup.Count != cold.RemoteLookup.Count {
		t.Fatalf("warm run dispatched %d shards remotely", warm.RemoteLookup.Count-cold.RemoteLookup.Count)
	}
}

// TestFabricOutOfOrderAnswers staggers peer response latency so shard
// answers land in an order unrelated to dispatch order; the merged
// document must not care.
func TestFabricOutOfOrderAnswers(t *testing.T) {
	golden := goldenText(t)
	var n atomic.Int64
	scramble := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// 0ms, 45ms, 90ms, 15ms, 60ms, ... — adjacent dispatches
			// complete far out of issue order.
			time.Sleep(time.Duration(n.Add(1)*3%7) * 15 * time.Millisecond)
			next.ServeHTTP(w, r)
		})
	}
	p1, p2 := newPeer(t, scramble), newPeer(t, scramble)
	eng, _ := newCoordinator(t, fabric.Config{Peers: []string{p1.URL, p2.URL}})

	doc, err := core.RunWith(eng, "fig6", testOpts)
	if err != nil {
		t.Fatalf("fabric run: %v", err)
	}
	if got := report.Text(doc); got != golden {
		t.Fatal("out-of-order peer answers changed the rendered document")
	}
}

// TestFabricPeerDeathFallback kills one peer after its second answer:
// remaining dispatches to it fail, the circuit opens, and the
// coordinator finishes the batch through failover and local execution
// with output byte-identical to the all-local golden. A degraded fleet
// is slower, never wrong.
func TestFabricPeerDeathFallback(t *testing.T) {
	golden := goldenText(t)
	var served atomic.Int64
	dieAfter := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if served.Add(1) > 2 {
				http.Error(w, "peer killed by test", http.StatusInternalServerError)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
	p1, p2 := newPeer(t, nil), newPeer(t, dieAfter)
	eng, fc := newCoordinator(t, fabric.Config{
		Peers:        []string{p1.URL, p2.URL},
		Retries:      -1, // clamp to 0: fail fast, the fallback path is under test
		FailureLimit: 1,
		Cooldown:     time.Hour, // stays dead for the whole test
	})

	doc, err := core.RunWith(eng, "fig6", testOpts)
	if err != nil {
		t.Fatalf("fabric run with dead peer: %v", err)
	}
	if got := report.Text(doc); got != golden {
		t.Fatal("peer death changed the rendered document")
	}
	m := fc.Metrics()
	if m.PerPeer[1].Dispatches > 2 && m.PerPeer[1].Errors == 0 {
		t.Fatalf("dead peer took %d dispatches but recorded no errors: %+v", m.PerPeer[1].Dispatches, m.PerPeer[1])
	}
}

// TestFabricHedgeRace pins the hedged-request path: the owning peer
// answers slower than the cold hedge delay, the speculative duplicate
// goes to the next live peer (pre-warmed, so it answers immediately),
// and the first answer wins without disturbing correctness.
func TestFabricHedgeRace(t *testing.T) {
	slow := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(400 * time.Millisecond)
			next.ServeHTTP(w, r)
		})
	}
	fastEng := engine.New(1, 0)
	p1 := newPeer(t, slow)
	p2 := httptest.NewServer(serve.New(fastEng))
	t.Cleanup(p2.Close)
	_, fc := newCoordinator(t, fabric.Config{Peers: []string{p1.URL, p2.URL}})

	// Several seeds give the ring several disjoint key sets, so the slow
	// peer owns at least one key with overwhelming certainty.
	for seed := uint64(1); seed <= 5; seed++ {
		o := core.Options{Scale: 0.05, Seed: seed}
		p, err := core.PlanFor("fig6", o)
		if err != nil {
			t.Fatal(err)
		}
		// Pre-warm the hedge target so its answer beats the slow owner.
		if _, err := core.RunWith(fastEng, "fig6", o); err != nil {
			t.Fatal(err)
		}
		for _, s := range p.Shards {
			key := engine.Key(p.Experiment, p.Fingerprint, s.Key)
			v, peerURL, ok, err := fc.Resolve(key, engine.RemoteRequest{Experiment: "fig6", Meta: p.Remote, Shard: s.Key})
			if err != nil {
				t.Fatalf("resolve %s: %v", s.Key, err)
			}
			if ok && (v == nil || peerURL == "") {
				t.Fatalf("resolve %s: ok with v=%v peer=%q", s.Key, v, peerURL)
			}
		}
		if m := fc.Metrics(); m.Hedges > 0 && m.HedgeWins > 0 {
			if m.PerPeer[0].Hedges == 0 {
				t.Fatalf("hedges fired but none against the slow owner: %+v", m)
			}
			return
		}
	}
	t.Fatalf("no hedge won across 5 seeds: %+v", fc.Metrics())
}
