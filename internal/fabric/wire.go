package fabric

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
)

// ShardRequest is the /v1/shard wire request: the normalized run
// options plus the plan-level shard key (and sub key for one unit of
// a declared split) — everything a peer needs to rebuild the same
// plan from its own registry — and the coordinator's expected cache
// address so build skew between fleet members is detected instead of
// silently computing the wrong shard.
type ShardRequest struct {
	Experiment string   `json:"experiment"`
	Scale      float64  `json:"scale"`
	Seed       uint64   `json:"seed"`
	Modules    []string `json:"modules,omitempty"`
	Shard      string   `json:"shard"`
	Sub        string   `json:"sub,omitempty"`
	Key        string   `json:"key"`
}

// Sentinel errors for the serving layer's status mapping: unknown
// experiment/shard dispatches answer 404, key skew answers 409.
var (
	ErrUnknownShard = errors.New("unknown shard")
	ErrKeySkew      = errors.New("shard key mismatch")
)

func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// ServeShard answers one coordinator dispatch from this process's
// registry and engine: the plan is rebuilt from the request's
// normalized options, the addressed shard (or sub-shard) located, the
// derived cache address verified against the coordinator's, and the
// shard resolved through the engine's local tiers and pool
// (engine.ResolveLocal — which never re-dispatches, so fabric
// topologies cannot form forwarding loops). tier names the local tier
// that answered, "" when this call executed the shard.
func ServeShard(eng *engine.Engine, req ShardRequest) (v any, tier string, err error) {
	p, err := core.PlanFor(req.Experiment, core.Options{Scale: req.Scale, Seed: req.Seed, Modules: req.Modules})
	if err != nil {
		return nil, "", err
	}
	for _, s := range p.Shards {
		if s.Key != req.Shard {
			continue
		}
		addr := engine.Key(p.Experiment, p.Fingerprint, s.Key)
		run := s
		if req.Sub != "" {
			found := false
			for _, sub := range s.Subs {
				if sub.Key == req.Sub {
					run = engine.Shard{Key: s.Key + "/" + sub.Key, Run: sub.Run}
					addr = engine.SubKey(addr, sub.Key)
					found = true
					break
				}
			}
			if !found {
				return nil, "", fmt.Errorf("%w: sub-shard %q of %q in %s", ErrUnknownShard, req.Sub, req.Shard, req.Experiment)
			}
		}
		if req.Key != "" && req.Key != addr {
			return nil, "", fmt.Errorf("%w: %q resolves to %s here, coordinator expects %s (mismatched builds in the fleet?)",
				ErrKeySkew, req.Shard, short(addr), short(req.Key))
		}
		return eng.ResolveLocal(addr, run, p.Experiment)
	}
	return nil, "", fmt.Errorf("%w: %q in %s", ErrUnknownShard, req.Shard, req.Experiment)
}
