package fabric

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// localMember is the ring member standing for the coordinator process
// itself: shard keys it owns are never dispatched, so the coordinator
// always carries its share of the keyspace and a one-peer fabric
// still splits work instead of forwarding everything.
const localMember = -1

// ringPoint is one virtual node: a member replicated at a hashed
// position on the unit circle.
type ringPoint struct {
	hash   uint64
	member int // peer index, or localMember
}

// ring is a consistent-hash ring over the peer set plus the local
// process. Shard addresses are already uniform SHA-256 digests, but
// the ring hashes them again through FNV-64a so ownership depends
// only on (key, member set) — adding or removing one peer remaps only
// the keys that peer's virtual nodes cover, which is what keeps a
// shared remote cache warm across topology changes.
type ring struct {
	points []ringPoint
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// newRing builds the ring with vnodes virtual points per member.
func newRing(peers []string, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, (len(peers)+1)*vnodes)}
	add := func(name string, member int) {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(name + "#" + strconv.Itoa(i)), member: member})
		}
	}
	add("local", localMember)
	for i, p := range peers {
		add(p, i)
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Deterministic tie-break so equal configurations always build
		// identical rings.
		return r.points[a].member < r.points[b].member
	})
	return r
}

// owner returns the member owning key: the first virtual node at or
// clockwise of the key's hash.
func (r *ring) owner(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}
