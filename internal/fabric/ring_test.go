package fabric

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	return keys
}

// Equal configurations must build identical rings: ownership is a pure
// function of (key, member set), which is what lets every fleet member
// compute the same placement without coordination.
func TestRingDeterministic(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1 := newRing(peers, 64)
	r2 := newRing(peers, 64)
	for _, k := range ringKeys(1000) {
		if r1.owner(k) != r2.owner(k) {
			t.Fatalf("rings from equal configs disagree on %q: %d vs %d", k, r1.owner(k), r2.owner(k))
		}
	}
}

// With enough virtual nodes every member (the local process included)
// owns a meaningful share of a uniform keyspace.
func TestRingCoversAllMembers(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1"}
	r := newRing(peers, 64)
	counts := map[int]int{}
	for _, k := range ringKeys(3000) {
		counts[r.owner(k)]++
	}
	for _, m := range []int{localMember, 0, 1} {
		if counts[m] < 300 { // a third of fair share (1000) is a generous floor
			t.Fatalf("member %d owns %d of 3000 keys; ring is badly unbalanced: %v", m, counts[m], counts)
		}
	}
}

// Removing one peer must remap only the keys that peer owned —
// every key owned by a surviving member keeps its owner. This is the
// property that keeps the shared remote cache warm across topology
// changes.
func TestRingConsistencyOnMemberRemoval(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	full := newRing(peers, 64)
	reduced := newRing(peers[:2], 64) // c removed
	moved := 0
	for _, k := range ringKeys(3000) {
		before := full.owner(k)
		after := reduced.owner(k)
		if before == 2 {
			moved++
			continue // c's keys must land somewhere else
		}
		if before != after {
			t.Fatalf("key %q moved from surviving member %d to %d when c left", k, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no keys; the removal case was not exercised")
	}
}
