package ledger

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/report"
)

func openT(t *testing.T, dir string, maxBytes int64) *Ledger {
	t.Helper()
	l, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func appendT(t *testing.T, l *Ledger, r Record) Record {
	t.Helper()
	out, err := l.Append(r)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return out
}

func TestAppendStampsAndReloads(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0)
	r := appendT(t, l, Record{Kind: KindRun, Experiment: "fig6", OptionsHash: "oh", DocHash: "dh",
		WallMS: 12.5, Shards: 8, Tiers: TierCounts{Mem: 3, Disk: 1, Miss: 4}})
	if r.ID == "" || r.Version != RecordVersion || r.CompletedAt.IsZero() {
		t.Fatalf("Append did not stamp identity: %+v", r)
	}
	appendT(t, l, Record{Kind: KindSweep, Experiment: "fig6"})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := openT(t, dir, 0)
	recs := l2.Records(Query{})
	if len(recs) != 2 {
		t.Fatalf("reloaded %d records, want 2", len(recs))
	}
	// Newest first; the reloaded run record must round-trip exactly.
	got := recs[1]
	if got.ID != r.ID || got.DocHash != "dh" || got.Tiers != r.Tiers || got.WallMS != r.WallMS {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, r)
	}
	if !got.CompletedAt.Equal(r.CompletedAt) {
		t.Fatalf("CompletedAt %v != %v", got.CompletedAt, r.CompletedAt)
	}
}

// A crash can truncate at most the final line; load must skip it,
// count it, and keep appending.
func TestTruncatedFinalLineSkipped(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0)
	appendT(t, l, Record{Kind: KindRun, Experiment: "fig6"})
	appendT(t, l, Record{Kind: KindRun, Experiment: "table3"})
	l.Close()

	f, err := os.OpenFile(filepath.Join(dir, FileName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"version":1,"id":"trunc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2 := openT(t, dir, 0)
	st := l2.Stats()
	if st.Records != 2 {
		t.Fatalf("after truncation: %d records, want 2", st.Records)
	}
	if st.Skipped != 1 {
		t.Fatalf("after truncation: %d skipped, want 1", st.Skipped)
	}
	// The store stays writable: the next append lands on its own line.
	appendT(t, l2, Record{Kind: KindRun, Experiment: "fig9"})
	l2.Close()
	l3 := openT(t, dir, 0)
	if got := l3.Stats().Records; got != 3 {
		t.Fatalf("after append past truncation: %d records, want 3", got)
	}
}

// Unknown fields mean a newer schema wrote the line; wrong Version
// catches renamed-but-parseable shapes. Both are skipped, never fatal.
func TestForeignSchemaLinesSkipped(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0)
	appendT(t, l, Record{Kind: KindRun, Experiment: "fig6"})
	l.Close()

	f, err := os.OpenFile(filepath.Join(dir, FileName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	lines := []string{
		`{"version":1,"id":"future","kind":"run","experiment":"fig6","from_the_future":true,"completed_at":"2026-01-01T00:00:00Z","wall_ms":1,"shards":1,"tiers":{"mem":0,"disk":0,"miss":1},"queue_wait":{"count":0,"total_ms":0},"mem_lookup":{"count":0,"total_ms":0},"disk_lookup":{"count":0,"total_ms":0},"miss_lookup":{"count":0,"total_ms":0}}`,
		`{"version":99,"id":"v99","kind":"run","experiment":"fig6","completed_at":"2026-01-01T00:00:00Z","wall_ms":1,"shards":1,"tiers":{"mem":0,"disk":0,"miss":1},"queue_wait":{"count":0,"total_ms":0},"mem_lookup":{"count":0,"total_ms":0},"disk_lookup":{"count":0,"total_ms":0},"miss_lookup":{"count":0,"total_ms":0}}`,
		`not json at all`,
	}
	if _, err := f.WriteString(strings.Join(lines, "\n") + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2 := openT(t, dir, 0)
	st := l2.Stats()
	if st.Records != 1 || st.Skipped != 3 {
		t.Fatalf("records=%d skipped=%d, want 1 and 3", st.Records, st.Skipped)
	}
	if _, ok := l2.Get("future"); ok {
		t.Fatal("unknown-field record must not load")
	}
}

// Concurrent appenders must lose no records and interleave no bytes
// (run under -race in CI).
func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0)
	const workers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := l.Append(Record{Kind: KindRun, Experiment: fmt.Sprintf("w%d", w)}); err != nil {
					t.Errorf("Append: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	l.Close()

	l2 := openT(t, dir, 0)
	st := l2.Stats()
	if st.Records != workers*each || st.Skipped != 0 {
		t.Fatalf("records=%d skipped=%d, want %d and 0", st.Records, st.Skipped, workers*each)
	}
	seen := map[string]bool{}
	for _, r := range l2.Records(Query{}) {
		if seen[r.ID] {
			t.Fatalf("duplicate record id %s", r.ID)
		}
		seen[r.ID] = true
	}
}

// The size bound prunes oldest-first and the compacted file must
// survive a reopen with exactly the retained set.
func TestSizeBoundKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 2048)
	const n = 50
	for i := 0; i < n; i++ {
		appendT(t, l, Record{Kind: KindRun, Experiment: fmt.Sprintf("exp%03d", i)})
	}
	st := l.Stats()
	if st.Pruned == 0 {
		t.Fatalf("no records pruned at a %d-byte bound after %d appends (bytes=%d)", 2048, n, st.Bytes)
	}
	if st.Bytes > 2048 {
		t.Fatalf("ledger holds %d bytes, bound is 2048", st.Bytes)
	}
	recs := l.Records(Query{})
	if len(recs) == 0 || recs[0].Experiment != fmt.Sprintf("exp%03d", n-1) {
		t.Fatalf("newest record missing after pruning: %+v", recs)
	}
	// Retained records are the newest contiguous suffix.
	for i, r := range recs {
		want := fmt.Sprintf("exp%03d", n-1-i)
		if r.Experiment != want {
			t.Fatalf("record %d is %s, want %s", i, r.Experiment, want)
		}
	}
	l.Close()

	l2 := openT(t, dir, 2048)
	st2 := l2.Stats()
	if st2.Records != len(recs) || st2.Skipped != 0 {
		t.Fatalf("reopen after compaction: records=%d skipped=%d, want %d and 0", st2.Records, st2.Skipped, len(recs))
	}
}

func TestResolveSelectors(t *testing.T) {
	l := openT(t, t.TempDir(), 0)
	r0 := appendT(t, l, Record{Kind: KindRun, Experiment: "fig6", DocHash: "a"})
	r1 := appendT(t, l, Record{Kind: KindRun, Experiment: "fig6", DocHash: "b"})
	appendT(t, l, Record{Kind: KindRun, Experiment: "table3"})

	if got, err := l.Resolve(r0.ID); err != nil || got.DocHash != "a" {
		t.Fatalf("Resolve(id) = %+v, %v", got, err)
	}
	if got, err := l.Resolve("fig6"); err != nil || got.DocHash != "b" {
		t.Fatalf("Resolve(fig6) = %+v, %v; want newest", got, err)
	}
	if got, err := l.Resolve("fig6~1"); err != nil || got.DocHash != "a" {
		t.Fatalf("Resolve(fig6~1) = %+v, %v", got, err)
	}
	if _, err := l.Resolve("fig6~5"); err == nil {
		t.Fatal("Resolve(fig6~5) should fail: only 2 records")
	}
	if _, err := l.Resolve("nosuch"); err == nil {
		t.Fatal("Resolve(nosuch) should fail")
	}

	// Equal experiment selectors mean previous-vs-latest.
	a, b, err := l.ResolvePair("fig6", "fig6")
	if err != nil {
		t.Fatalf("ResolvePair(fig6, fig6): %v", err)
	}
	if a.ID != r0.ID || b.ID != r1.ID {
		t.Fatalf("ResolvePair = (%s, %s), want (%s, %s)", a.ID, b.ID, r0.ID, r1.ID)
	}
	// Equal record ids are a user error, not a self-comparison.
	if _, _, err := l.ResolvePair(r0.ID, r0.ID); err == nil {
		t.Fatal("ResolvePair(id, id) should fail")
	}
}

func TestCompareDeterminism(t *testing.T) {
	base := Record{ID: "a", Kind: KindRun, Experiment: "fig6", OptionsHash: "opts", DocHash: "doc1", WallMS: 100}

	same := base
	same.ID = "b"
	d := Compare(base, same, CompareOptions{})
	if !d.DeterminismChecked || d.DeterminismViolation {
		t.Fatalf("equal hashes: checked=%v violation=%v, want checked and clean", d.DeterminismChecked, d.DeterminismViolation)
	}

	diverged := same
	diverged.DocHash = "doc2"
	d = Compare(base, diverged, CompareOptions{})
	if !d.DeterminismChecked || !d.DeterminismViolation {
		t.Fatalf("diverged hashes: checked=%v violation=%v, want a violation", d.DeterminismChecked, d.DeterminismViolation)
	}
	if txt := report.Text(d.Doc); !strings.Contains(txt, "DETERMINISM VIOLATION") {
		t.Fatalf("violation missing from rendered findings:\n%s", txt)
	}

	other := same
	other.OptionsHash = "different"
	d = Compare(base, other, CompareOptions{})
	if d.DeterminismChecked || d.DeterminismViolation {
		t.Fatal("different options hashes must skip the determinism check")
	}
}

func TestCompareRegressionFlags(t *testing.T) {
	a := Record{ID: "a", Kind: KindRun, WallMS: 100}
	b := Record{ID: "b", Kind: KindRun, WallMS: 125}
	d := Compare(a, b, CompareOptions{Threshold: 0.10})
	if !d.Regression || d.Improvement {
		t.Fatalf("25%% slower at a 10%% threshold: regression=%v improvement=%v", d.Regression, d.Improvement)
	}
	d = Compare(a, b, CompareOptions{Threshold: 0.50})
	if d.Regression {
		t.Fatal("25% slower within a 50% threshold must not flag")
	}
	fast := Record{ID: "c", Kind: KindRun, WallMS: 40}
	d = Compare(a, fast, CompareOptions{Threshold: 0.10})
	if !d.Improvement || d.Regression {
		t.Fatalf("60%% faster: regression=%v improvement=%v", d.Regression, d.Improvement)
	}
}

func TestCompareTierShiftRendered(t *testing.T) {
	a := Record{ID: "cold", Kind: KindRun, Shards: 8, Tiers: TierCounts{Miss: 8}, WallMS: 10}
	b := Record{ID: "warm", Kind: KindRun, Shards: 8, Tiers: TierCounts{Mem: 6, Disk: 2}, WallMS: 10}
	d := Compare(a, b, CompareOptions{})
	txt := report.Text(d.Doc)
	if !strings.Contains(txt, "mem 0→6") || !strings.Contains(txt, "miss 8→0") {
		t.Fatalf("tier shift not rendered:\n%s", txt)
	}
}

func TestHistoryDocRendersAllFormats(t *testing.T) {
	l := openT(t, t.TempDir(), 0)
	appendT(t, l, Record{Kind: KindRun, Experiment: "fig6", DocHash: "abcdef0123456789",
		Shards: 4, Tiers: TierCounts{Mem: 3, Miss: 1}})
	appendT(t, l, Record{Kind: KindSweep, Experiment: "fig6", Error: "1/4 points failed"})
	doc := HistoryDoc(l.Records(Query{}), l.Stats())
	txt := report.Text(doc)
	for _, want := range []string{"run history", "fig6", "abcdef012345", "1/4 points failed"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("text rendering missing %q:\n%s", want, txt)
		}
	}
	if _, err := report.JSON(doc); err != nil {
		t.Fatalf("JSON rendering: %v", err)
	}
	if csv := report.CSV(doc); !strings.Contains(csv, "fig6") {
		t.Fatalf("CSV rendering missing data:\n%s", csv)
	}
}

func TestDocsHashMarksNilPoints(t *testing.T) {
	d1 := report.NewDoc(report.TableSection("t", []string{"c"}, [][]string{{"v"}}))
	if DocsHash([]*report.Doc{d1, nil}) == DocsHash([]*report.Doc{nil, d1}) {
		t.Fatal("failure position must change the sweep docs hash")
	}
	if DocsHash([]*report.Doc{d1}) != DocsHash([]*report.Doc{d1}) {
		t.Fatal("DocsHash must be deterministic")
	}
}
