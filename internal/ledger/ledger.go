// Package ledger is the persistent run ledger: an append-only,
// corruption-tolerant, size-bounded NDJSON store of one versioned
// record per completed run, sweep, or load test. It is the sibling of
// engine.DiskCache one layer up — the disk cache makes *payloads*
// survive a restart, the ledger makes the *trajectory* survive: what
// ran, with which options, how long it took, which cache tier answered
// each shard, and what the result document hashed to. On top of the
// store, Compare and HistoryDoc turn any two records (or the whole
// history) into benchstat-style delta documents with regression flags
// and a hard determinism check, so cross-run comparability is a
// first-class deliverable of the reproduction, mirroring the RowPress
// artifact's machine-readable dataset practice.
//
// Durability contract:
//
//   - Appends are a single write of one newline-terminated JSON line
//     under a mutex, so concurrent appenders never interleave bytes
//     and a crash can truncate at most the final line.
//   - Load skips, never fails on, a truncated final line, an
//     unparseable line, a record with unknown fields (a newer schema),
//     or an unknown Version — each skip is counted in Stats.Skipped.
//   - The store is size-bounded: when an append pushes the file past
//     its byte bound, the oldest records are pruned and the file is
//     compacted through a temp-file + rename, so a crash mid-compact
//     never loses the live ledger.
package ledger

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/report"
)

// RecordVersion is the schema version stamped into every record.
// Records carrying any other version are skipped on load (counted, not
// fatal), so a downgrade never misreads a newer schema.
const RecordVersion = 1

// Record kinds.
const (
	KindRun      = "run"
	KindSweep    = "sweep"
	KindLoadTest = "loadtest"
)

// TierCounts splits a run's shard resolutions by answering tier: the
// in-memory LRU, the persistent disk tier, a fabric peer, a joined
// concurrent execution, or a miss (the shard actually executed).
// Mem+Disk+Remote+Join+Miss equals the plan's shard count.
type TierCounts struct {
	Mem    int `json:"mem"`
	Disk   int `json:"disk"`
	Remote int `json:"remote,omitempty"`
	Join   int `json:"join,omitempty"`
	Miss   int `json:"miss"`
}

// Total returns the shard count the split accounts for.
func (t TierCounts) Total() int { return t.Mem + t.Disk + t.Remote + t.Join + t.Miss }

// Latency is a (count, total) latency aggregate in milliseconds — the
// wire form of engine.LatencyStats.
type Latency struct {
	Count   uint64  `json:"count"`
	TotalMS float64 `json:"total_ms"`
}

// AvgMS returns TotalMS/Count, or 0 before any observation.
func (l Latency) AvgMS() float64 {
	if l.Count == 0 {
		return 0
	}
	return l.TotalMS / float64(l.Count)
}

// Profile is the worker-utilization / critical-path / Amdahl summary
// from obs.Analyze, present only when the run was traced.
type Profile struct {
	Workers         int     `json:"workers"`
	ExecutedShards  int     `json:"executed_shards"`
	TotalExecMS     float64 `json:"total_exec_ms"`
	CriticalPathMS  float64 `json:"critical_path_ms"`
	SerialFraction  float64 `json:"serial_fraction"`
	MaxSpeedup      float64 `json:"max_speedup"`
	MeanUtilization float64 `json:"mean_utilization"`
}

// LoadStats is the serving-path load-test view: client-observed
// latency quantiles over the run's request window next to the
// server-reported quantiles for the same window (derived from
// /v1/metrics histogram-bucket deltas), so the client/server skew is
// computed once, in the record, instead of eyeballed across outputs.
type LoadStats struct {
	Target        string   `json:"target"`
	Mix           []string `json:"mix"`
	Clients       int      `json:"clients"`
	Requests      int      `json:"requests"`
	Errors        int      `json:"errors"`
	DurationMS    float64  `json:"duration_ms"`
	ThroughputRPS float64  `json:"throughput_rps"`

	ClientP50MS  float64 `json:"client_p50_ms"`
	ClientP95MS  float64 `json:"client_p95_ms"`
	ClientP99MS  float64 `json:"client_p99_ms"`
	ClientMeanMS float64 `json:"client_mean_ms"`
	ClientMaxMS  float64 `json:"client_max_ms"`

	// Server-side quantiles for the same request window, and the skew
	// (client minus server) the network + client stack added. Absent
	// (zero) when the server did not expose histogram buckets.
	ServerWindow bool    `json:"server_window"`
	ServerP50MS  float64 `json:"server_p50_ms"`
	ServerP99MS  float64 `json:"server_p99_ms"`
	SkewP50MS    float64 `json:"skew_p50_ms"`
	SkewP99MS    float64 `json:"skew_p99_ms"`

	// Fabric topology for the same window, from the target's server-view
	// metrics delta: how many peers the daemon dispatched to, and how
	// the test's shard work split between peer answers and local
	// execution. All zero against a daemon without fabric metrics, so
	// `rowpress compare` shows the 1-node vs N-node trajectory.
	Peers          int    `json:"peers,omitempty"`
	RemoteExecuted uint64 `json:"remote_executed,omitempty"`
	LocalExecuted  uint64 `json:"local_executed,omitempty"`
}

// Record is one versioned ledger entry: the durable identity of a
// completed run, sweep, or load test.
type Record struct {
	Version     int       `json:"version"`
	ID          string    `json:"id"`
	Kind        string    `json:"kind"`
	Experiment  string    `json:"experiment"`
	OptionsHash string    `json:"options_hash"`
	DocHash     string    `json:"doc_hash,omitempty"`
	Error       string    `json:"error,omitempty"`
	CompletedAt time.Time `json:"completed_at"`

	WallMS float64 `json:"wall_ms"`
	Shards int     `json:"shards"`
	// Workers is the engine pool size the run executed on; SubShards is
	// the number of declared sub-shards that actually ran (zero when
	// every split unit was answered from cache or the plan had no
	// splits). Both are omitted from records written before the
	// sub-shard planning layer existed.
	Workers   int `json:"workers,omitempty"`
	SubShards int `json:"sub_shards,omitempty"`
	// Peers is the configured fabric peer count on the serving daemon
	// (0 for a single-process run); RemoteLookup is the dispatch
	// latency window for shards answered by those peers.
	Peers        int        `json:"peers,omitempty"`
	Tiers        TierCounts `json:"tiers"`
	QueueWait    Latency    `json:"queue_wait"`
	MemLookup    Latency    `json:"mem_lookup"`
	DiskLookup   Latency    `json:"disk_lookup"`
	MissLookup   Latency    `json:"miss_lookup"`
	RemoteLookup Latency    `json:"remote_lookup,omitzero"`

	Profile *Profile   `json:"profile,omitempty"`
	Load    *LoadStats `json:"load,omitempty"`
}

// DefaultMaxBytes bounds the ledger file when callers have no stronger
// opinion: records are a few hundred bytes, so this holds tens of
// thousands of runs.
const DefaultMaxBytes int64 = 8 << 20

// Stats is a snapshot of the store.
type Stats struct {
	Records int
	Bytes   int64
	Skipped int    // unreadable lines dropped on load
	Pruned  uint64 // records evicted by the size bound
	Appends uint64
}

// Ledger is the store. Safe for concurrent use.
type Ledger struct {
	path     string
	maxBytes int64

	mu      sync.Mutex
	f       *os.File
	records []Record // oldest first
	sizes   []int64  // encoded line length per record
	bytes   int64
	skipped int
	pruned  uint64
	appends uint64
	seq     uint64
}

// FileName is the ledger's on-disk name within its directory.
const FileName = "ledger.ndjson"

// Open opens (creating if needed) the ledger rooted at dir, bounded to
// maxBytes of NDJSON (<= 0 selects DefaultMaxBytes). Unreadable lines
// are skipped and counted; they are dropped from disk at the next
// compaction, not eagerly.
func Open(dir string, maxBytes int64) (*Ledger, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	l := &Ledger{path: filepath.Join(dir, FileName), maxBytes: maxBytes}
	if err := l.load(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	l.f = f
	// A crash can leave the final line without its newline. Terminate it
	// now, or the next append would glue onto the partial record and be
	// corrupted with it.
	if end, err := lastByte(l.path); err == nil && end != 0 && end != '\n' {
		if _, err := f.Write([]byte{'\n'}); err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: %w", err)
		}
		l.bytes++
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.bytes > l.maxBytes {
		if err := l.compactLocked(); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// Path returns the ledger file's path.
func (l *Ledger) Path() string { return l.path }

// lastByte returns the file's final byte, or 0 for an empty or missing
// file.
func lastByte(path string) (byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil || fi.Size() == 0 {
		return 0, err
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], fi.Size()-1); err != nil {
		return 0, err
	}
	return b[0], nil
}

// load reads every parseable record; anything else is skipped.
func (l *Ledger) load() error {
	f, err := os.Open(l.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := sc.Bytes()
		size := int64(len(line)) + 1 // the trailing newline
		var r Record
		dec := json.NewDecoder(bytes.NewReader(line))
		// Unknown fields mean a newer schema wrote this line; Version
		// catches older readers of renamed-but-compatible shapes. Either
		// way the record is skipped, never fatal.
		dec.DisallowUnknownFields()
		if err := dec.Decode(&r); err != nil || r.Version != RecordVersion {
			l.skipped++
			l.bytes += size // still on disk until the next compaction
			continue
		}
		l.records = append(l.records, r)
		l.sizes = append(l.sizes, size)
		l.bytes += size
	}
	// A truncated final line fails to parse and lands in skipped via the
	// loop; a scanner error (oversized line) degrades the same way.
	if err := sc.Err(); err != nil {
		l.skipped++
	}
	return nil
}

// NewID derives a readable, sortable, collision-resistant record id
// from the completion time and a per-process sequence: the timestamp
// orders ids across processes, the hash suffix separates processes
// stamping within the same second.
func (l *Ledger) newIDLocked(at time.Time) string {
	l.seq++
	h := sha256.Sum256([]byte(fmt.Sprintf("%d|%d|%d", at.UnixNano(), os.Getpid(), l.seq)))
	return fmt.Sprintf("%s-%s", at.UTC().Format("20060102T150405"), hex.EncodeToString(h[:3]))
}

// Append stamps the record into the ledger and returns it with its
// assigned ID (when empty) and Version. CompletedAt is defaulted to
// now. The write is one line; if it pushes the file past the byte
// bound, the oldest records are pruned and the file compacted.
func (l *Ledger) Append(r Record) (Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.Version = RecordVersion
	if r.CompletedAt.IsZero() {
		r.CompletedAt = time.Now().UTC()
	}
	r.CompletedAt = r.CompletedAt.UTC().Truncate(time.Millisecond)
	if r.ID == "" {
		r.ID = l.newIDLocked(r.CompletedAt)
	}
	b, err := json.Marshal(r)
	if err != nil {
		return r, fmt.Errorf("ledger: encode: %w", err)
	}
	b = append(b, '\n')
	if _, err := l.f.Write(b); err != nil {
		return r, fmt.Errorf("ledger: append: %w", err)
	}
	l.records = append(l.records, r)
	l.sizes = append(l.sizes, int64(len(b)))
	l.bytes += int64(len(b))
	l.appends++
	if l.bytes > l.maxBytes {
		if err := l.compactLocked(); err != nil {
			return r, err
		}
	}
	return r, nil
}

// compactLocked drops the oldest records until the live set fits the
// byte bound, then rewrites the file atomically. Caller holds mu.
func (l *Ledger) compactLocked() error {
	var live int64
	for _, s := range l.sizes {
		live += s
	}
	drop := 0
	// Always keep the newest record, even if alone it exceeds the bound.
	for live > l.maxBytes && drop < len(l.records)-1 {
		live -= l.sizes[drop]
		drop++
	}
	l.pruned += uint64(drop)
	l.records = append([]Record(nil), l.records[drop:]...)
	l.sizes = append([]int64(nil), l.sizes[drop:]...)

	tmp, err := os.CreateTemp(filepath.Dir(l.path), "ledger-*")
	if err != nil {
		return fmt.Errorf("ledger: compact: %w", err)
	}
	w := bufio.NewWriter(tmp)
	for _, r := range l.records {
		b, err := json.Marshal(r)
		if err == nil {
			w.Write(b)
			w.WriteByte('\n')
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("ledger: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ledger: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), l.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ledger: compact: %w", err)
	}
	// Reopen the append handle on the new inode; the old one points at
	// the unlinked pre-compaction file.
	if l.f != nil {
		l.f.Close()
	}
	f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: compact: %w", err)
	}
	l.f = f
	l.bytes = live
	return nil
}

// Close flushes nothing (appends are synchronous) and releases the
// file handle.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Stats returns a snapshot of the store.
func (l *Ledger) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Records: len(l.records),
		Bytes:   l.bytes,
		Skipped: l.skipped,
		Pruned:  l.pruned,
		Appends: l.appends,
	}
}

// Query filters history lookups. Zero values match everything.
type Query struct {
	Experiment string
	Kind       string
	Limit      int // max records returned, newest first; <= 0 = all
}

// Records returns matching records newest-first.
func (l *Ledger) Records(q Query) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	for i := len(l.records) - 1; i >= 0; i-- {
		r := l.records[i]
		if q.Experiment != "" && r.Experiment != q.Experiment {
			continue
		}
		if q.Kind != "" && r.Kind != q.Kind {
			continue
		}
		out = append(out, r)
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out
}

// Get returns the record with the given id.
func (l *Ledger) Get(id string) (Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := len(l.records) - 1; i >= 0; i-- {
		if l.records[i].ID == id {
			return l.records[i], true
		}
	}
	return Record{}, false
}

// DocHash content-addresses a result document: the SHA-256 of its
// canonical JSON encoding. Equal documents hash equal, so two runs of
// the same options must produce the same hash — the determinism
// invariant Compare enforces.
func DocHash(d *report.Doc) string {
	b, err := report.JSON(d)
	if err != nil {
		return "unhashable"
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// DocsHash content-addresses an ordered document set (a sweep's
// per-point documents): the SHA-256 over the concatenated canonical
// encodings, with nil points (failed grid points) marked so failure
// position changes the hash.
func DocsHash(docs []*report.Doc) string {
	h := sha256.New()
	for _, d := range docs {
		if d == nil {
			h.Write([]byte("\x00nil\x00"))
			continue
		}
		b, err := report.JSON(d)
		if err != nil {
			h.Write([]byte("\x00unhashable\x00"))
			continue
		}
		h.Write(b)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// HashJSON canonically addresses any JSON-encodable value under a
// domain prefix — the ledger's options hash for non-run records
// (sweep specs, load-test configs).
func HashJSON(prefix string, v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return "unhashable"
	}
	h := sha256.Sum256(append([]byte(prefix+"\x1f"), b...))
	return hex.EncodeToString(h[:])
}
