package ledger

// This file is the cross-run analytics layer: HistoryDoc renders the
// ledger as a result document (so /v1/history and `rowpress history`
// serve text, JSON, and CSV through the shared report renderers), and
// Compare turns any two records into a benchstat-style delta document
// — total and per-phase latency deltas, cache-efficiency deltas,
// regression flags past a threshold, and a hard determinism check:
// doc-hash divergence between runs with equal options hashes is a
// finding, not a footnote.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/report"
)

// DefaultRegressionThreshold flags a wall-time regression when run b
// is more than this fraction slower than run a.
const DefaultRegressionThreshold = 0.10

// shortHash abbreviates a content hash for table cells.
func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	if h == "" {
		return "-"
	}
	return h
}

func (r Record) hits() int { return r.Tiers.Mem + r.Tiers.Disk + r.Tiers.Remote + r.Tiers.Join }

func (r Record) hitRate() float64 {
	if r.Shards == 0 {
		return 0
	}
	return float64(r.hits()) / float64(r.Shards)
}

// HistoryDoc renders records (newest first) as a result document.
func HistoryDoc(records []Record, st Stats) *report.Doc {
	rows := make([][]string, 0, len(records))
	for _, r := range records {
		errCell := "-"
		if r.Error != "" {
			errCell = r.Error
		}
		rows = append(rows, []string{
			r.ID,
			r.Kind,
			r.Experiment,
			r.CompletedAt.UTC().Format("2006-01-02T15:04:05Z"),
			fmt.Sprintf("%.3f", r.WallMS),
			strconv.Itoa(r.Shards),
			strconv.Itoa(r.Workers),
			strconv.Itoa(r.SubShards),
			strconv.Itoa(r.Tiers.Mem),
			strconv.Itoa(r.Tiers.Disk),
			strconv.Itoa(r.Tiers.Remote),
			strconv.Itoa(r.Tiers.Miss),
			report.Pct(r.hitRate()),
			shortHash(r.DocHash),
			errCell,
		})
	}
	note := fmt.Sprintf("%d of %d ledger records shown  (%d bytes on disk, %d skipped, %d pruned)",
		len(records), st.Records, st.Bytes, st.Skipped, st.Pruned)
	doc := report.NewDoc(report.TableSection("run history",
		[]string{"id", "kind", "experiment", "completed_at", "wall_ms", "shards", "workers", "subs", "mem", "disk", "remote", "miss", "hit_rate", "doc_hash", "error"},
		rows, note))
	doc.Title = "Run ledger history"
	return doc
}

// CompareOptions tunes the delta analysis.
type CompareOptions struct {
	// Threshold is the fractional wall-time change beyond which the
	// delta is flagged as a regression (slower) or improvement
	// (faster). <= 0 selects DefaultRegressionThreshold.
	Threshold float64
}

// Delta is the structured outcome of a comparison: the rendered
// document plus the machine-checkable verdicts callers gate on
// (`rowpress compare -gate`, the CI determinism smoke).
type Delta struct {
	A, B                 Record
	Doc                  *report.Doc
	Regression           bool // b slower than a beyond the threshold
	Improvement          bool // b faster than a beyond the threshold
	DeterminismChecked   bool // options hashes were equal, hashes compared
	DeterminismViolation bool // equal options, divergent doc hashes
}

// deltaRow renders one metric's (a, b, delta, delta%) comparison.
func deltaRow(metric string, a, b float64) []string {
	pct := "~"
	if a != 0 {
		pct = report.SignedPct((b - a) / a)
	}
	return []string{metric, report.Num(a), report.Num(b), fmt.Sprintf("%+.3f", b-a), pct}
}

// Compare analyses run b against baseline a.
func Compare(a, b Record, opt CompareOptions) *Delta {
	th := opt.Threshold
	if th <= 0 {
		th = DefaultRegressionThreshold
	}
	d := &Delta{A: a, B: b}

	runRows := make([][]string, 0, 2)
	for _, r := range []Record{a, b} {
		runRows = append(runRows, []string{
			r.ID, r.Kind, r.Experiment,
			r.CompletedAt.UTC().Format("2006-01-02T15:04:05Z"),
			fmt.Sprintf("%.3f", r.WallMS),
			strconv.Itoa(r.Shards),
			strconv.Itoa(r.Workers),
			strconv.Itoa(r.SubShards),
			fmt.Sprintf("%d/%d/%d/%d/%d", r.Tiers.Mem, r.Tiers.Disk, r.Tiers.Remote, r.Tiers.Join, r.Tiers.Miss),
			shortHash(r.OptionsHash),
			shortHash(r.DocHash),
		})
	}
	runs := report.TableSection("runs",
		[]string{"id", "kind", "experiment", "completed_at", "wall_ms", "shards", "workers", "subs", "mem/disk/remote/join/miss", "options_hash", "doc_hash"},
		runRows)

	rows := [][]string{
		deltaRow("wall_ms", a.WallMS, b.WallMS),
		deltaRow("queue_wait_ms", a.QueueWait.TotalMS, b.QueueWait.TotalMS),
		deltaRow("mem_lookup_ms", a.MemLookup.TotalMS, b.MemLookup.TotalMS),
		deltaRow("disk_lookup_ms", a.DiskLookup.TotalMS, b.DiskLookup.TotalMS),
		deltaRow("miss_lookup_ms", a.MissLookup.TotalMS, b.MissLookup.TotalMS),
		deltaRow("remote_lookup_ms", a.RemoteLookup.TotalMS, b.RemoteLookup.TotalMS),
		deltaRow("remote_hits", float64(a.Tiers.Remote), float64(b.Tiers.Remote)),
		deltaRow("peers", float64(a.Peers), float64(b.Peers)),
		deltaRow("shards_executed", float64(a.Tiers.Miss), float64(b.Tiers.Miss)),
		deltaRow("sub_shards_executed", float64(a.SubShards), float64(b.SubShards)),
		deltaRow("workers", float64(a.Workers), float64(b.Workers)),
		deltaRow("cache_hits", float64(a.hits()), float64(b.hits())),
		deltaRow("hit_rate", a.hitRate(), b.hitRate()),
	}
	if a.Profile != nil && b.Profile != nil {
		rows = append(rows,
			deltaRow("critical_path_ms", a.Profile.CriticalPathMS, b.Profile.CriticalPathMS),
			deltaRow("max_speedup", a.Profile.MaxSpeedup, b.Profile.MaxSpeedup),
			deltaRow("mean_utilization", a.Profile.MeanUtilization, b.Profile.MeanUtilization),
		)
	}
	if a.Load != nil && b.Load != nil {
		rows = append(rows,
			deltaRow("client_p50_ms", a.Load.ClientP50MS, b.Load.ClientP50MS),
			deltaRow("client_p95_ms", a.Load.ClientP95MS, b.Load.ClientP95MS),
			deltaRow("client_p99_ms", a.Load.ClientP99MS, b.Load.ClientP99MS),
			deltaRow("throughput_rps", a.Load.ThroughputRPS, b.Load.ThroughputRPS),
			deltaRow("server_p50_ms", a.Load.ServerP50MS, b.Load.ServerP50MS),
			deltaRow("server_p99_ms", a.Load.ServerP99MS, b.Load.ServerP99MS),
			deltaRow("remote_executed", float64(a.Load.RemoteExecuted), float64(b.Load.RemoteExecuted)),
			deltaRow("local_executed", float64(a.Load.LocalExecuted), float64(b.Load.LocalExecuted)),
		)
	}
	deltas := report.TableSection("deltas (b vs a)",
		[]string{"metric", "a", "b", "delta", "delta_pct"}, rows)

	var findings []string
	if a.Kind != b.Kind {
		findings = append(findings, fmt.Sprintf("kind mismatch: comparing a %s against a %s", a.Kind, b.Kind))
	}
	findings = append(findings, fmt.Sprintf("tier shift: mem %d→%d  disk %d→%d  remote %d→%d  join %d→%d  miss %d→%d",
		a.Tiers.Mem, b.Tiers.Mem, a.Tiers.Disk, b.Tiers.Disk,
		a.Tiers.Remote, b.Tiers.Remote,
		a.Tiers.Join, b.Tiers.Join, a.Tiers.Miss, b.Tiers.Miss))

	switch {
	case a.WallMS > 0 && b.WallMS > a.WallMS*(1+th):
		d.Regression = true
		findings = append(findings, fmt.Sprintf("REGRESSION: wall %s exceeds the %s threshold (%.3f ms → %.3f ms)",
			report.SignedPct((b.WallMS-a.WallMS)/a.WallMS), report.Pct(th), a.WallMS, b.WallMS))
	case a.WallMS > 0 && b.WallMS < a.WallMS*(1-th):
		d.Improvement = true
		findings = append(findings, fmt.Sprintf("improvement: wall %s beyond the %s threshold (%.3f ms → %.3f ms)",
			report.SignedPct((b.WallMS-a.WallMS)/a.WallMS), report.Pct(th), a.WallMS, b.WallMS))
	default:
		findings = append(findings, fmt.Sprintf("wall within the ±%s threshold", report.Pct(th)))
	}

	switch {
	case a.OptionsHash == "" || b.OptionsHash == "":
		findings = append(findings, "determinism check skipped: missing options hash")
	case a.OptionsHash != b.OptionsHash:
		findings = append(findings, fmt.Sprintf("determinism check skipped: options hashes differ (%s vs %s)",
			shortHash(a.OptionsHash), shortHash(b.OptionsHash)))
	case a.DocHash == "" || b.DocHash == "":
		findings = append(findings, "determinism check skipped: missing doc hash")
	case a.DocHash != b.DocHash:
		d.DeterminismChecked = true
		d.DeterminismViolation = true
		findings = append(findings, fmt.Sprintf(
			"DETERMINISM VIOLATION: equal options hash %s but doc hash %s != %s — equal inputs must produce byte-identical documents",
			shortHash(a.OptionsHash), shortHash(a.DocHash), shortHash(b.DocHash)))
	default:
		d.DeterminismChecked = true
		findings = append(findings, fmt.Sprintf("determinism: doc hashes match (%s) for equal options hash %s",
			shortHash(a.DocHash), shortHash(a.OptionsHash)))
	}

	doc := report.NewDoc(runs, deltas, report.FindingsSection("findings", findings...))
	doc.Title = fmt.Sprintf("Cross-run delta: %s vs %s", a.ID, b.ID)
	doc.Params = []report.Param{
		{Key: "a", Value: a.ID},
		{Key: "b", Value: b.ID},
		{Key: "threshold", Value: report.Pct(th)},
	}
	d.Doc = doc
	return d
}

// Resolve maps a selector onto a record: an exact record ID, or an
// experiment id optionally suffixed "~N" selecting the N-th newest
// record for that experiment (N defaults to 0, the newest).
func (l *Ledger) Resolve(sel string) (Record, error) {
	if r, ok := l.Get(sel); ok {
		return r, nil
	}
	exp, nth := sel, 0
	if i := strings.LastIndex(sel, "~"); i >= 0 {
		n, err := strconv.Atoi(sel[i+1:])
		if err != nil || n < 0 {
			return Record{}, fmt.Errorf("ledger: bad selector %q: want <record-id> or <experiment>[~N]", sel)
		}
		exp, nth = sel[:i], n
	}
	recs := l.Records(Query{Experiment: exp, Limit: nth + 1})
	if len(recs) <= nth {
		return Record{}, fmt.Errorf("ledger: selector %q matches no record (experiment %q has %d)", sel, exp, len(recs))
	}
	return recs[nth], nil
}

// ResolvePair resolves the two comparison selectors. Equal experiment
// selectors mean "previous vs latest" — `compare fig6 fig6` (and the
// shorthand of repeating one experiment) compares the last two runs of
// fig6 rather than a record against itself.
func (l *Ledger) ResolvePair(selA, selB string) (a, b Record, err error) {
	if selA == selB {
		if _, ok := l.Get(selA); !ok {
			if a, err = l.Resolve(selA + "~1"); err != nil {
				return a, b, err
			}
			b, err = l.Resolve(selA + "~0")
			return a, b, err
		}
		return a, b, fmt.Errorf("ledger: selectors name the same record %q", selA)
	}
	if a, err = l.Resolve(selA); err != nil {
		return a, b, err
	}
	b, err = l.Resolve(selB)
	return a, b, err
}
