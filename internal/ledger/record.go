package ledger

// This file bridges the engine's in-process observability into durable
// Record fields: the per-shard tier split (observed off Plan.OnShard),
// the always-on engine.Metrics latency aggregates (as a before/after
// window), and the obs.Analyze profile summary for traced runs.

import (
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// ObserveShards returns a shard-event observer that splits resolved
// shards by answering tier, and a function producing the final split.
// The snapshot function must only be called after the engine's Execute
// returns — events arrive from worker goroutines until then.
func ObserveShards() (func(engine.ShardEvent), func() TierCounts) {
	var mu sync.Mutex
	var tc TierCounts
	onShard := func(ev engine.ShardEvent) {
		mu.Lock()
		switch {
		case !ev.Cached:
			tc.Miss++
		case ev.Tier == engine.TierMem:
			tc.Mem++
		case ev.Tier == engine.TierDisk:
			tc.Disk++
		case ev.Tier == engine.TierRemote:
			tc.Remote++
		default:
			tc.Join++
		}
		mu.Unlock()
	}
	return onShard, func() TierCounts {
		mu.Lock()
		defer mu.Unlock()
		return tc
	}
}

// ObservePlan chains ObserveShards onto the plan's OnShard hook
// (preserving any existing observer) and returns the snapshot
// function.
func ObservePlan(p *engine.Plan) func() TierCounts {
	onShard, snapshot := ObserveShards()
	prev := p.OnShard
	p.OnShard = func(ev engine.ShardEvent) {
		onShard(ev)
		if prev != nil {
			prev(ev)
		}
	}
	return snapshot
}

// SweepTiers approximates a sweep's tier split from an engine metrics
// window: batch execution has no per-shard event stream, so the
// mem/disk counts come from the window's tier-attributed lookup
// counters and within-batch deduplication lands in Join. Under a
// concurrently serving daemon the window can include other requests'
// lookups — an aggregate view, consistent with FillWindow's latency
// fields.
func SweepTiers(w engine.Metrics, executed, shardRefs int) TierCounts {
	tc := TierCounts{Mem: int(w.MemLookup.Count), Disk: int(w.DiskLookup.Count), Remote: int(w.RemoteLookup.Count), Miss: executed}
	if j := shardRefs - tc.Mem - tc.Disk - tc.Remote - tc.Miss; j > 0 {
		tc.Join = j
	}
	return tc
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func toLatency(s engine.LatencyStats) Latency {
	return Latency{Count: s.Count, TotalMS: ms(s.Total)}
}

// FillWindow stamps the record's latency aggregates from an
// engine.Metrics window (after minus before — see engine.Metrics.Sub).
// On a single-run process the window is exact; under a concurrently
// serving daemon it attributes whatever the engine observed during
// this run's lifetime, which may include overlapping runs' lookups —
// an aggregate view, not per-request accounting.
func (r *Record) FillWindow(w engine.Metrics) {
	r.QueueWait = toLatency(w.QueueWait)
	r.MemLookup = toLatency(w.MemLookup)
	r.DiskLookup = toLatency(w.DiskLookup)
	r.MissLookup = toLatency(w.MissLookup)
	r.RemoteLookup = toLatency(w.RemoteLookup)
}

// ProfileFrom summarizes a traced run's obs.Analysis for the ledger.
func ProfileFrom(a obs.Analysis, workers int) *Profile {
	return &Profile{
		Workers:         workers,
		ExecutedShards:  len(a.Shards),
		TotalExecMS:     ms(a.TotalExec),
		CriticalPathMS:  ms(a.CriticalPath),
		SerialFraction:  a.SerialFraction,
		MaxSpeedup:      a.MaxSpeedup,
		MeanUtilization: a.MeanUtilization,
	}
}
