package ledger

// This file is the serving-path load-test harness: k concurrent
// clients drive a live rowpressd over a request mix while a client-side
// latency histogram records what callers actually experience. The
// server's own view of the same window is captured by snapshotting
// /v1/metrics histogram buckets before and after and subtracting
// (obs.HistogramSnapshot.Sub), so the record carries client p50/p95/p99
// *and* server p50/p99 for the identical request window — the skew is
// computed once, here, not eyeballed across two outputs. Results are
// stamped into the ledger like any run, giving the serving path the
// same benchmark trajectory the compute path has.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
)

// LoadTestConfig drives one load test. Zero fields select defaults.
type LoadTestConfig struct {
	BaseURL  string        // target daemon, e.g. "http://localhost:8271"
	Clients  int           // concurrent clients (default 4)
	Requests int           // total requests across all clients (default 32)
	Mix      []string      // experiment ids issued round-robin (default fig6)
	Scale    float64       // ?scale on every request (default 0.05)
	Seed     uint64        // ?seed on every request (default 1)
	Timeout  time.Duration // per-request bound (default 120s)
	Client   *http.Client  // optional transport override (tests)
}

func (c *LoadTestConfig) normalize() error {
	if c.BaseURL == "" {
		return fmt.Errorf("ledger: loadtest: no target URL")
	}
	if _, err := url.Parse(c.BaseURL); err != nil {
		return fmt.Errorf("ledger: loadtest: bad target URL %q: %v", c.BaseURL, err)
	}
	c.BaseURL = strings.TrimRight(c.BaseURL, "/")
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Requests <= 0 {
		c.Requests = 32
	}
	if len(c.Mix) == 0 {
		c.Mix = []string{"fig6"}
	}
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 120 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.Timeout}
	}
	return nil
}

// endpointBuckets is the slice of /v1/metrics the harness needs: the
// per-route histogram state (serve.EndpointMetrics on the wire).
// Decoded leniently — a daemon without bucket fields just yields no
// server window.
type endpointBuckets struct {
	Requests       uint64    `json:"requests"`
	MeanMS         float64   `json:"mean_ms"`
	MaxMS          float64   `json:"max_ms"`
	BucketBoundsMS []float64 `json:"bucket_bounds_ms"`
	BucketCounts   []uint64  `json:"bucket_counts"`
}

// snapshot reconstructs the route histogram as an obs snapshot so the
// window delta and quantile interpolation reuse the serving math.
func (e endpointBuckets) snapshot() (obs.HistogramSnapshot, bool) {
	if len(e.BucketCounts) != len(e.BucketBoundsMS)+1 || len(e.BucketBoundsMS) == 0 {
		return obs.HistogramSnapshot{}, false
	}
	s := obs.HistogramSnapshot{
		Bounds: make([]time.Duration, len(e.BucketBoundsMS)),
		Counts: append([]uint64(nil), e.BucketCounts...),
		Count:  e.Requests,
		Sum:    time.Duration(e.MeanMS * float64(e.Requests) * float64(time.Millisecond)),
		Max:    time.Duration(e.MaxMS * float64(time.Millisecond)),
	}
	for i, b := range e.BucketBoundsMS {
		s.Bounds[i] = time.Duration(b * float64(time.Millisecond))
	}
	return s, true
}

// metricsView is the slice of /v1/metrics the harness reads: the
// /v1/run route histogram plus the engine/fabric counters that locate
// the test's shard work (local execution vs fabric peers). Decoded
// leniently — a daemon without these fields yields zeros.
type metricsView struct {
	ShardsExecuted uint64 `json:"shards_executed"`
	RemoteHits     uint64 `json:"remote_hits"`
	Fabric         *struct {
		Peers int `json:"peers"`
	} `json:"fabric"`
	Endpoints map[string]endpointBuckets `json:"endpoints"`
}

func (m metricsView) runBuckets() (obs.HistogramSnapshot, bool) {
	return m.Endpoints["/v1/run"].snapshot()
}

// fetchMetrics snapshots the target's /v1/metrics. ok is false when
// the endpoint is unreachable or does not answer JSON.
func fetchMetrics(c *LoadTestConfig) (metricsView, bool) {
	resp, err := c.Client.Get(c.BaseURL + "/v1/metrics")
	if err != nil {
		return metricsView{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return metricsView{}, false
	}
	var m metricsView
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return metricsView{}, false
	}
	return m, true
}

// LoadTest runs the configured test and returns the ledger record
// (unappended — the caller owns ledger placement) and its rendered
// document. An error is returned only when the test could not run at
// all; per-request failures are counted in the record.
func LoadTest(cfg LoadTestConfig) (Record, *report.Doc, error) {
	if err := cfg.normalize(); err != nil {
		return Record{}, nil, err
	}
	beforeM, beforeOK := fetchMetrics(&cfg)
	var before obs.HistogramSnapshot
	if beforeOK {
		before, beforeOK = beforeM.runBuckets()
	}

	hist := obs.NewLatencyHistogram()
	var errs atomic.Int64
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				exp := cfg.Mix[i%len(cfg.Mix)]
				u := fmt.Sprintf("%s/v1/run/%s?scale=%g&seed=%d&format=text",
					cfg.BaseURL, url.PathEscape(exp), cfg.Scale, cfg.Seed)
				req, err := http.NewRequest(http.MethodGet, u, nil)
				if err != nil {
					errs.Add(1)
					continue
				}
				t0 := time.Now()
				resp, err := cfg.Client.Do(req)
				if err != nil {
					errs.Add(1)
					continue
				}
				// Drain the body so the measured latency covers the full
				// response, not just the header.
				_, cerr := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				hist.Observe(time.Since(t0))
				if resp.StatusCode != http.StatusOK || cerr != nil {
					errs.Add(1)
				}
			}
		}()
	}
	for i := 0; i < cfg.Requests; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)

	failed := int(errs.Load())
	if failed == cfg.Requests {
		return Record{}, nil, fmt.Errorf("ledger: loadtest: all %d requests against %s failed", cfg.Requests, cfg.BaseURL)
	}

	snap := hist.Snapshot()
	ls := &LoadStats{
		Target:        cfg.BaseURL,
		Mix:           cfg.Mix,
		Clients:       cfg.Clients,
		Requests:      cfg.Requests,
		Errors:        failed,
		DurationMS:    ms(wall),
		ThroughputRPS: float64(cfg.Requests) / wall.Seconds(),
		ClientP50MS:   ms(snap.Quantile(0.50)),
		ClientP95MS:   ms(snap.Quantile(0.95)),
		ClientP99MS:   ms(snap.Quantile(0.99)),
		ClientMeanMS:  ms(snap.Mean()),
		ClientMaxMS:   ms(snap.Max),
	}
	var window obs.HistogramSnapshot
	if afterM, afterOK := fetchMetrics(&cfg); afterOK {
		if afterM.Fabric != nil {
			ls.Peers = afterM.Fabric.Peers
		}
		ls.RemoteExecuted = afterM.RemoteHits - min(beforeM.RemoteHits, afterM.RemoteHits)
		ls.LocalExecuted = afterM.ShardsExecuted - min(beforeM.ShardsExecuted, afterM.ShardsExecuted)
		if after, ok := afterM.runBuckets(); beforeOK && ok {
			window = after.Sub(before)
			if window.Count > 0 {
				ls.ServerWindow = true
				ls.ServerP50MS = ms(window.Quantile(0.50))
				ls.ServerP99MS = ms(window.Quantile(0.99))
				ls.SkewP50MS = ls.ClientP50MS - ls.ServerP50MS
				ls.SkewP99MS = ls.ClientP99MS - ls.ServerP99MS
			}
		}
	}

	rec := Record{
		Kind:       KindLoadTest,
		Experiment: strings.Join(cfg.Mix, "+"),
		OptionsHash: HashJSON("loadtest", map[string]any{
			"mix": cfg.Mix, "scale": cfg.Scale, "seed": cfg.Seed,
			"clients": cfg.Clients, "requests": cfg.Requests,
		}),
		WallMS: ms(wall),
		Peers:  ls.Peers,
		Load:   ls,
	}
	return rec, loadTestDoc(ls, window), nil
}

// loadTestDoc renders the load-test record for text/JSON/CSV output.
func loadTestDoc(ls *LoadStats, window obs.HistogramSnapshot) *report.Doc {
	cfgTable := report.TableSection("load test",
		[]string{"target", "mix", "clients", "requests", "errors", "duration_ms", "throughput_rps"},
		[][]string{{
			ls.Target, strings.Join(ls.Mix, "+"),
			fmt.Sprintf("%d", ls.Clients), fmt.Sprintf("%d", ls.Requests), fmt.Sprintf("%d", ls.Errors),
			fmt.Sprintf("%.3f", ls.DurationMS), fmt.Sprintf("%.1f", ls.ThroughputRPS),
		}})
	lat := report.TableSection("latency (ms)",
		[]string{"view", "p50", "p95", "p99", "mean", "max"},
		latencyRows(ls, window))
	var findings []string
	if ls.ServerWindow {
		findings = append(findings,
			fmt.Sprintf("client/server skew (client minus server, same window): p50 %+.3f ms  p99 %+.3f ms",
				ls.SkewP50MS, ls.SkewP99MS))
		if int(window.Count) != ls.Requests-ls.Errors {
			findings = append(findings, fmt.Sprintf(
				"server window saw %d /v1/run requests vs %d issued — other clients were hitting the daemon during the test",
				window.Count, ls.Requests-ls.Errors))
		}
	} else {
		findings = append(findings, "server window unavailable: /v1/metrics exposed no /v1/run histogram buckets; skew not computed")
	}
	if ls.Peers > 0 {
		findings = append(findings, fmt.Sprintf(
			"fabric topology: %d peers  remote %d / local %d shards executed in the window",
			ls.Peers, ls.RemoteExecuted, ls.LocalExecuted))
	}
	if ls.Errors > 0 {
		findings = append(findings, fmt.Sprintf("%d/%d requests failed", ls.Errors, ls.Requests))
	}
	doc := report.NewDoc(cfgTable, lat, report.FindingsSection("findings", findings...))
	doc.Title = "Serving-path load test"
	return doc
}

func latencyRows(ls *LoadStats, window obs.HistogramSnapshot) [][]string {
	f := func(v float64) string { return fmt.Sprintf("%.3f", v) }
	rows := [][]string{{
		"client", f(ls.ClientP50MS), f(ls.ClientP95MS), f(ls.ClientP99MS), f(ls.ClientMeanMS), f(ls.ClientMaxMS),
	}}
	if ls.ServerWindow {
		rows = append(rows, []string{
			"server", f(ls.ServerP50MS), f(ms(window.Quantile(0.95))), f(ls.ServerP99MS),
			f(ms(window.Mean())), f(ms(window.Max)),
		})
	}
	return rows
}
