package workload

import (
	"math"
	"testing"
)

func TestProfilesValid(t *testing.T) {
	if len(Profiles) < 30 {
		t.Fatalf("only %d profiles", len(Profiles))
	}
	for _, p := range Profiles {
		if _, err := NewGenerator(p, 8, 4096, 128, 1); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestHeavyLightPartition(t *testing.T) {
	h, l := Heavy(), Light()
	if len(h)+len(l) != len(Profiles) {
		t.Fatalf("partition broken: %d + %d != %d", len(h), len(l), len(Profiles))
	}
	if len(h) == 0 || len(l) == 0 {
		t.Fatal("both categories must be non-empty")
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("462.libquantum")
	if !ok || p.RowHitRate < 0.9 {
		t.Fatalf("libquantum profile wrong: %+v ok=%v", p, ok)
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("found nonexistent workload")
	}
}

func TestGeneratorRowHitRate(t *testing.T) {
	for _, name := range []string{"462.libquantum", "429.mcf"} {
		p, _ := ByName(name)
		g, err := NewGenerator(p, 8, 4096, 128, 42)
		if err != nil {
			t.Fatal(err)
		}
		const n = 50000
		hits := 0
		prevBank, prevRow := -1, -1
		for i := 0; i < n; i++ {
			r := g.Next()
			if r.Bank == prevBank && r.Row == prevRow {
				hits++
			}
			prevBank, prevRow = r.Bank, r.Row
		}
		rate := float64(hits) / n
		if math.Abs(rate-p.RowHitRate) > 0.05 {
			t.Errorf("%s: generated same-row rate %.3f, profile says %.2f", name, rate, p.RowHitRate)
		}
	}
}

func TestGeneratorIntensity(t *testing.T) {
	p, _ := ByName("429.mcf")
	g, _ := NewGenerator(p, 8, 4096, 128, 7)
	const n = 50000
	var sumGap float64
	for i := 0; i < n; i++ {
		sumGap += float64(g.Next().InstrGap)
	}
	gotMPKI := 1000 / (sumGap / n)
	if math.Abs(gotMPKI-p.LLCMPKI)/p.LLCMPKI > 0.1 {
		t.Errorf("generated MPKI %.1f, profile %.1f", gotMPKI, p.LLCMPKI)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p, _ := ByName("433.milc")
	a, _ := NewGenerator(p, 8, 4096, 128, 5)
	b, _ := NewGenerator(p, 8, 4096, 128, 5)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestGeneratorBounds(t *testing.T) {
	p, _ := ByName("483.xalancbmk")
	g, _ := NewGenerator(p, 4, 1024, 64, 9)
	for i := 0; i < 10000; i++ {
		r := g.Next()
		if r.Bank < 0 || r.Bank >= 4 || r.Row < 0 || r.Row >= 1024 || r.Col < 0 || r.Col >= 64 {
			t.Fatalf("request out of bounds: %+v", r)
		}
		if r.InstrGap < 1 {
			t.Fatalf("non-positive gap: %+v", r)
		}
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	p, _ := ByName("429.mcf")
	if _, err := NewGenerator(p, 0, 10, 10, 1); err == nil {
		t.Error("zero banks should fail")
	}
	bad := p
	bad.RowHitRate = 1.0
	if _, err := NewGenerator(bad, 8, 4096, 128, 1); err == nil {
		t.Error("RowHitRate=1 should fail")
	}
}
