// Package workload generates synthetic memory-request traces with the
// row-buffer-locality and memory-intensity profiles of the benchmark
// suites the paper evaluates (SPEC CPU2006/2017, TPC-H, YCSB, §7.3/§7.4
// and Appendix D). The real traces are not redistributable; what the
// mitigation study measures — row-hit-rate changes and preventive-refresh
// overhead under different row policies — depends only on these two
// characteristics, which the generator controls directly.
package workload

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Request is one LLC-miss memory read.
type Request struct {
	Bank     int
	Row      int
	Col      int
	InstrGap int // instructions retired since the previous request
}

// Profile characterizes one workload.
type Profile struct {
	Name       string
	LLCMPKI    float64 // LLC misses per kilo-instruction
	RowHitRate float64 // fraction of requests hitting the previously used row
	HotRows    int     // working-set rows per bank
	MemHeavy   bool    // "H" category of Appendix D (LLC-MPKI ≥ 1 and RBMPKI ≥ 1)
}

// Profiles is the catalogue of workloads used across Table 3, Table 9 and
// Figs. 38–41, with intensity/locality shaped after the paper's
// descriptions (e.g. 462.libquantum: extremely streaming and row-buffer
// friendly; 429.mcf: memory-bound with poor locality; h264_encode: 87 %
// row-buffer hit rate).
var Profiles = []Profile{
	{Name: "429.mcf", LLCMPKI: 68, RowHitRate: 0.15, HotRows: 512, MemHeavy: true},
	{Name: "433.milc", LLCMPKI: 25, RowHitRate: 0.55, HotRows: 256, MemHeavy: true},
	{Name: "434.zeusmp", LLCMPKI: 6, RowHitRate: 0.60, HotRows: 128, MemHeavy: true},
	{Name: "436.cactusADM", LLCMPKI: 8, RowHitRate: 0.50, HotRows: 256, MemHeavy: true},
	{Name: "437.leslie3d", LLCMPKI: 14, RowHitRate: 0.65, HotRows: 128, MemHeavy: true},
	{Name: "450.soplex", LLCMPKI: 22, RowHitRate: 0.45, HotRows: 256, MemHeavy: true},
	{Name: "459.GemsFDTD", LLCMPKI: 16, RowHitRate: 0.60, HotRows: 128, MemHeavy: true},
	{Name: "462.libquantum", LLCMPKI: 28, RowHitRate: 0.97, HotRows: 16, MemHeavy: true},
	{Name: "470.lbm", LLCMPKI: 30, RowHitRate: 0.70, HotRows: 128, MemHeavy: true},
	{Name: "471.omnetpp", LLCMPKI: 12, RowHitRate: 0.25, HotRows: 512, MemHeavy: true},
	{Name: "473.astar", LLCMPKI: 5, RowHitRate: 0.30, HotRows: 256, MemHeavy: true},
	{Name: "482.sphinx3", LLCMPKI: 10, RowHitRate: 0.55, HotRows: 128, MemHeavy: true},
	{Name: "483.xalancbmk", LLCMPKI: 9, RowHitRate: 0.20, HotRows: 1024, MemHeavy: true},
	{Name: "505.mcf", LLCMPKI: 40, RowHitRate: 0.20, HotRows: 512, MemHeavy: true},
	{Name: "507.cactuBSSN", LLCMPKI: 7, RowHitRate: 0.55, HotRows: 128, MemHeavy: true},
	{Name: "510.parest", LLCMPKI: 18, RowHitRate: 0.90, HotRows: 32, MemHeavy: true},
	{Name: "519.lbm", LLCMPKI: 32, RowHitRate: 0.70, HotRows: 128, MemHeavy: true},
	{Name: "520.omnetpp", LLCMPKI: 11, RowHitRate: 0.25, HotRows: 512, MemHeavy: true},
	{Name: "549.fotonik3d", LLCMPKI: 15, RowHitRate: 0.65, HotRows: 128, MemHeavy: true},
	{Name: "h264_encode", LLCMPKI: 4, RowHitRate: 0.87, HotRows: 32, MemHeavy: true},
	{Name: "jp2_decode", LLCMPKI: 3, RowHitRate: 0.60, HotRows: 64, MemHeavy: true},
	{Name: "tpch17", LLCMPKI: 6, RowHitRate: 0.50, HotRows: 256, MemHeavy: true},
	{Name: "tpch2", LLCMPKI: 5, RowHitRate: 0.50, HotRows: 256, MemHeavy: true},
	{Name: "ycsb_aserver", LLCMPKI: 4, RowHitRate: 0.40, HotRows: 512, MemHeavy: true},
	{Name: "ycsb_bserver", LLCMPKI: 3.5, RowHitRate: 0.40, HotRows: 512, MemHeavy: true},
	{Name: "ycsb_cserver", LLCMPKI: 3, RowHitRate: 0.40, HotRows: 512, MemHeavy: true},
	{Name: "wc_8443", LLCMPKI: 2.5, RowHitRate: 0.45, HotRows: 256, MemHeavy: true},
	{Name: "grep_map0", LLCMPKI: 2, RowHitRate: 0.55, HotRows: 128, MemHeavy: true},
	{Name: "bfs_ny", LLCMPKI: 8, RowHitRate: 0.30, HotRows: 1024, MemHeavy: true},
	{Name: "calculix", LLCMPKI: 0.3, RowHitRate: 0.70, HotRows: 32, MemHeavy: false},
	{Name: "povray", LLCMPKI: 0.1, RowHitRate: 0.60, HotRows: 16, MemHeavy: false},
	{Name: "namd", LLCMPKI: 0.2, RowHitRate: 0.65, HotRows: 32, MemHeavy: false},
	{Name: "perlbench", LLCMPKI: 0.4, RowHitRate: 0.50, HotRows: 64, MemHeavy: false},
	{Name: "gcc", LLCMPKI: 0.6, RowHitRate: 0.45, HotRows: 128, MemHeavy: false},
	{Name: "leela", LLCMPKI: 0.15, RowHitRate: 0.55, HotRows: 32, MemHeavy: false},
}

// ByName returns the named profile.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Heavy returns the "H"-category profiles (Appendix D mixes).
func Heavy() []Profile {
	var out []Profile
	for _, p := range Profiles {
		if p.MemHeavy {
			out = append(out, p)
		}
	}
	return out
}

// Light returns the "L"-category profiles.
func Light() []Profile {
	var out []Profile
	for _, p := range Profiles {
		if !p.MemHeavy {
			out = append(out, p)
		}
	}
	return out
}

// Generator produces the deterministic request stream of one profile.
type Generator struct {
	p       Profile
	rng     *stats.RNG
	banks   int
	rows    int
	cols    int
	curBank int
	curRow  int
	curCol  int
}

// NewGenerator builds a generator over the given DRAM shape. seed makes
// distinct cores of a multiprogrammed mix diverge.
func NewGenerator(p Profile, banks, rows, cols int, seed uint64) (*Generator, error) {
	if banks <= 0 || rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("workload: invalid shape %d/%d/%d", banks, rows, cols)
	}
	if p.LLCMPKI <= 0 || p.RowHitRate < 0 || p.RowHitRate >= 1 || p.HotRows <= 0 {
		return nil, fmt.Errorf("workload: invalid profile %+v", p)
	}
	g := &Generator{p: p, rng: stats.NewRNG(seed), banks: banks, rows: rows, cols: cols}
	g.curRow = g.rng.Intn(rows)
	return g, nil
}

// Next returns the next request in the stream.
func (g *Generator) Next() Request {
	// Geometric instruction gap with mean 1000/MPKI.
	mean := 1000 / g.p.LLCMPKI
	gap := int(-mean * logUniform(g.rng))
	if gap < 1 {
		gap = 1
	}
	if g.rng.Float64() < g.p.RowHitRate {
		// Row-buffer hit: same bank and row, advance the column.
		g.curCol = (g.curCol + 1) % g.cols
	} else {
		g.curBank = g.rng.Intn(g.banks)
		hot := g.p.HotRows
		if hot > g.rows {
			hot = g.rows
		}
		g.curRow = g.rng.Intn(hot) * (g.rows / hot)
		if g.curRow >= g.rows {
			g.curRow = g.rows - 1
		}
		g.curCol = g.rng.Intn(g.cols)
	}
	return Request{Bank: g.curBank, Row: g.curRow, Col: g.curCol, InstrGap: gap}
}

// logUniform returns ln(U) for U uniform in (0,1) — the exponent of a
// geometric/exponential draw.
func logUniform(r *stats.RNG) float64 {
	u := r.Float64()
	if u <= 0 {
		u = 1e-12
	}
	return math.Log(u)
}
