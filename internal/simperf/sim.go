// Package simperf is the trace-driven multi-core DRAM performance
// simulator standing in for Ramulator in the paper's mitigation study
// (§7.3, §7.4, Appendix D): cores replay synthetic workload traces through
// an FR-FCFS single-channel memory controller with configurable row
// policies, periodic refresh, and pluggable RowHammer/RowPress mitigation
// mechanisms whose preventive refreshes cost real bank time.
package simperf

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/mitigate"
	"repro/internal/workload"
)

// CPU clock: 4 GHz out-of-order core (§7.4 configuration), so one
// instruction retires in 250 ps at peak.
const (
	cpuFreqGHz = 4
	instrPS    = dram.TimePS(250)
	// retireWidth approximates the core's non-memory IPC.
	retireWidth = 4
)

// Config describes one simulation.
type Config struct {
	Banks       int
	RowsPerBank int
	BlocksRow   int
	Policy      memctrl.RowPolicy
	// NewMitigation builds a per-bank mitigation instance; nil = none.
	NewMitigation func(bank int) mitigate.Mitigation
	// InstrPerCore is the retirement target per core.
	InstrPerCore int
}

// DefaultConfig mirrors the paper's simulated system scaled down: one
// channel, 8 banks.
func DefaultConfig() Config {
	return Config{
		Banks:        8,
		RowsPerBank:  4096,
		BlocksRow:    128,
		Policy:       memctrl.OpenRow(),
		InstrPerCore: 2_000_000,
	}
}

// CoreStats reports one core's outcome.
type CoreStats struct {
	Workload     string
	Instructions int
	Cycles       int64
	RowHits      int
	RowMisses    int
}

// IPC returns instructions per cycle.
func (c CoreStats) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// RowHitRate returns the fraction of requests that hit an open row.
func (c CoreStats) RowHitRate() float64 {
	total := c.RowHits + c.RowMisses
	if total == 0 {
		return 0
	}
	return float64(c.RowHits) / float64(total)
}

// Result is a full simulation outcome.
type Result struct {
	Cores               []CoreStats
	PreventiveRefreshes uint64
	Activations         uint64
	// MaxRowACTsPerWindow is the largest per-row activation count observed
	// in any tREFW window (Fig. 38's metric).
	MaxRowACTsPerWindow int
}

// WeightedSpeedup computes Σ IPC_shared(i)/IPC_alone(i) given the
// standalone IPCs (§7.4 metric for multiprogrammed workloads).
func (r Result) WeightedSpeedup(alone []float64) float64 {
	ws := 0.0
	for i, c := range r.Cores {
		if i < len(alone) && alone[i] > 0 {
			ws += c.IPC() / alone[i]
		}
	}
	return ws
}

type core struct {
	gen      *workload.Generator
	stats    CoreStats
	pending  *workload.Request
	readyAt  dram.TimePS // when the pending request reaches the controller
	doneInst int
	finished bool
}

// Sim is the simulator instance.
type Sim struct {
	cfg    Config
	timing dram.Timing
	banks  []memctrl.BankState
	mits   []mitigate.Mitigation
	cores  []*core

	now       dram.TimePS
	nextREF   dram.TimePS
	refCount  int
	actCounts map[int64]int // (bank,row) -> ACTs in the current tREFW window

	result Result
}

// New builds a simulator for the given workloads (one per core).
func New(cfg Config, profiles []workload.Profile, seed uint64) (*Sim, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("simperf: need at least one workload")
	}
	s := &Sim{
		cfg:       cfg,
		timing:    dram.DDR4(),
		banks:     make([]memctrl.BankState, cfg.Banks),
		nextREF:   dram.DDR4().TREFI,
		actCounts: make(map[int64]int),
	}
	if cfg.NewMitigation != nil {
		s.mits = make([]mitigate.Mitigation, cfg.Banks)
		for b := range s.mits {
			s.mits[b] = cfg.NewMitigation(b)
		}
	}
	for i, p := range profiles {
		gen, err := workload.NewGenerator(p, cfg.Banks, cfg.RowsPerBank, cfg.BlocksRow, seed+uint64(i)*0x9E37)
		if err != nil {
			return nil, err
		}
		c := &core{gen: gen}
		c.stats.Workload = p.Name
		s.cores = append(s.cores, c)
	}
	return s, nil
}

// fetch loads the next request of a core and schedules its arrival.
func (s *Sim) fetch(c *core, from dram.TimePS) {
	if c.doneInst >= s.cfg.InstrPerCore {
		c.finished = true
		c.stats.Instructions = c.doneInst
		c.stats.Cycles = int64((from / instrPS)) // cycles at 4 GHz
		return
	}
	req := c.gen.Next()
	c.pending = &req
	c.readyAt = from + dram.TimePS(req.InstrGap)*instrPS/retireWidth
	c.doneInst += req.InstrGap
}

// Run executes the simulation to completion.
func (s *Sim) Run() Result {
	for _, c := range s.cores {
		s.fetch(c, 0)
	}
	for {
		c := s.pickNext()
		if c == nil {
			break
		}
		s.serve(c)
	}
	for _, c := range s.cores {
		s.result.Cores = append(s.result.Cores, c.stats)
	}
	return s.result
}

// pickNext implements FR-FCFS over the (at most one per core) pending
// requests: among requests that have arrived, prefer row hits, then the
// oldest; if none has arrived yet, take the earliest arrival.
func (s *Sim) pickNext() *core {
	var best *core
	bestHit := false
	for _, c := range s.cores {
		if c.finished || c.pending == nil {
			continue
		}
		if best == nil {
			best = c
			bestHit = s.isHit(c)
			continue
		}
		arrived := c.readyAt <= s.now
		bestArrived := best.readyAt <= s.now
		switch {
		case arrived && !bestArrived:
			best, bestHit = c, s.isHit(c)
		case arrived == bestArrived:
			hit := s.isHit(c)
			if (hit && !bestHit) || (hit == bestHit && c.readyAt < best.readyAt) {
				best, bestHit = c, hit
			}
		}
	}
	return best
}

func (s *Sim) isHit(c *core) bool {
	b := &s.banks[c.pending.Bank]
	at := c.readyAt
	if at < s.now {
		at = s.now
	}
	return b.RowOpenFor(c.pending.Row, at, s.cfg.Policy)
}

// serve processes one request end to end.
func (s *Sim) serve(c *core) {
	req := *c.pending
	c.pending = nil
	start := c.readyAt
	if start < s.now {
		start = s.now
	}
	s.processRefreshes(start)

	bank := &s.banks[req.Bank]
	done, activated := bank.Access(start, req.Row, s.cfg.Policy, s.timing)
	if activated {
		c.stats.RowMisses++
		s.result.Activations++
		s.countACT(req.Bank, req.Row)
		if s.mits != nil {
			victims := s.mits[req.Bank].OnActivate(req.Row)
			if len(victims) > 0 {
				// Preventive refreshes occupy the bank for tRC each and
				// close the row buffer — this is the mitigation's cost.
				s.result.PreventiveRefreshes += uint64(len(victims))
				bank.Preempt(done + dram.TimePS(len(victims))*s.timing.TRC())
			}
		}
	} else {
		c.stats.RowHits++
	}
	if done > s.now {
		s.now = done
	}
	s.fetch(c, done)
}

// processRefreshes applies all REF commands due by time t: every tREFI all
// banks lose tRFC and their row buffers close.
func (s *Sim) processRefreshes(t dram.TimePS) {
	for s.nextREF <= t {
		for b := range s.banks {
			s.banks[b].Preempt(s.nextREF + s.timing.TRFC)
		}
		s.refCount++
		if s.refCount%s.timing.RefreshesPerWindow() == 0 {
			// A full refresh window elapsed.
			for _, m := range s.mits {
				m.OnRefreshWindow()
			}
			s.flushACTWindow()
		}
		s.nextREF += s.timing.TREFI
	}
}

func (s *Sim) countACT(bank, row int) {
	key := int64(bank)<<32 | int64(row)
	s.actCounts[key]++
	if s.actCounts[key] > s.result.MaxRowACTsPerWindow {
		s.result.MaxRowACTsPerWindow = s.actCounts[key]
	}
}

func (s *Sim) flushACTWindow() {
	clear(s.actCounts)
}
