package simperf

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/mitigate"
	"repro/internal/workload"
)

func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.InstrPerCore = 300_000
	return cfg
}

func prof(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no workload %s", name)
	}
	return p
}

func TestSimRunsSingleCore(t *testing.T) {
	sim, err := New(quickCfg(), []workload.Profile{prof(t, "433.milc")}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if len(res.Cores) != 1 {
		t.Fatal("expected one core")
	}
	c := res.Cores[0]
	if c.Instructions == 0 || c.Cycles == 0 {
		t.Fatalf("core did not retire: %+v", c)
	}
	if ipc := c.IPC(); ipc <= 0 || ipc > 4 {
		t.Fatalf("IPC = %v, expected (0, 4]", ipc)
	}
}

func TestRowHitRateTracksProfile(t *testing.T) {
	// A row-buffer-friendly workload must see a far higher hit rate than a
	// random-access one under the open-row policy.
	friendly, err := New(quickCfg(), []workload.Profile{prof(t, "462.libquantum")}, 1)
	if err != nil {
		t.Fatal(err)
	}
	hostile, err := New(quickCfg(), []workload.Profile{prof(t, "429.mcf")}, 1)
	if err != nil {
		t.Fatal(err)
	}
	fr := friendly.Run().Cores[0].RowHitRate()
	hr := hostile.Run().Cores[0].RowHitRate()
	if fr < 0.8 {
		t.Errorf("libquantum row-hit rate = %.2f, want > 0.8", fr)
	}
	if hr > 0.5 {
		t.Errorf("mcf row-hit rate = %.2f, want < 0.5", hr)
	}
}

// TestClosedRowHurtsLocality covers Fig. 39: the minimally-open-row policy
// significantly slows row-buffer-friendly workloads.
func TestClosedRowHurtsLocality(t *testing.T) {
	cfg := quickCfg()
	rows, err := MinOpenRowStudy(cfg, []workload.Profile{
		prof(t, "462.libquantum"), prof(t, "510.parest"),
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.NormalizedIPC >= 0.95 {
			t.Errorf("%s: minimally-open-row IPC = %.2f of baseline, want noticeable slowdown (paper: 0.66–0.77)",
				r.Workload, r.NormalizedIPC)
		}
		if r.ACTIncrease <= 1.5 {
			t.Errorf("%s: per-row ACT increase = %.1fx, want substantial (paper: up to 372x)",
				r.Workload, r.ACTIncrease)
		}
	}
}

// TestMitigationCostsPerformance: PARA with a high refresh probability
// must slow memory-bound workloads relative to no mitigation.
func TestMitigationCostsPerformance(t *testing.T) {
	base := quickCfg()
	mix := []workload.Profile{prof(t, "429.mcf")}
	res0, err := runOne(base, mix, 5)
	if err != nil {
		t.Fatal(err)
	}
	withPARA := base
	withPARA.NewMitigation = func(bank int) mitigate.Mitigation {
		return mitigate.NewPARA(0.2, uint64(bank)+9)
	}
	res1, err := runOne(withPARA, mix, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res1.PreventiveRefreshes == 0 {
		t.Fatal("PARA issued no preventive refreshes")
	}
	if res1.Cores[0].IPC() >= res0.Cores[0].IPC() {
		t.Errorf("aggressive PARA did not slow the workload: %.3f vs %.3f",
			res1.Cores[0].IPC(), res0.Cores[0].IPC())
	}
}

// TestGrapheneCheaperThanPARA covers the Table 3 contrast: Graphene's
// exact tracking issues far fewer preventive refreshes than PARA at
// comparable protection.
func TestGrapheneCheaperThanPARA(t *testing.T) {
	mix := []workload.Profile{prof(t, "433.milc")}
	g := quickCfg()
	g.NewMitigation = BaselineFactory(KindGraphene, 1)
	resG, err := runOne(g, mix, 7)
	if err != nil {
		t.Fatal(err)
	}
	p := quickCfg()
	p.NewMitigation = BaselineFactory(KindPARA, 1)
	resP, err := runOne(p, mix, 7)
	if err != nil {
		t.Fatal(err)
	}
	if resG.PreventiveRefreshes >= resP.PreventiveRefreshes {
		t.Errorf("Graphene refreshes (%d) should be far below PARA's (%d)",
			resG.PreventiveRefreshes, resP.PreventiveRefreshes)
	}
}

func TestMitigationStudyTable3Shape(t *testing.T) {
	cfg := quickCfg()
	cfg.InstrPerCore = 150_000
	mixes := [][]workload.Profile{
		{prof(t, "429.mcf"), prof(t, "462.libquantum"), prof(t, "calculix"), prof(t, "gcc")},
	}
	rows, err := MitigationStudy(KindPARA, cfg, mixes, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(TmroLattice) {
		t.Fatalf("%d rows, want %d", len(rows), len(TmroLattice))
	}
	// T' must follow Table 3 and overheads must stay modest (the paper
	// reports ≤ ~15% average for PARA-RP).
	if rows[0].TPrime != 1000 || rows[5].TPrime != 419 {
		t.Errorf("T' endpoints = %d, %d; want 1000, 419", rows[0].TPrime, rows[5].TPrime)
	}
	for _, r := range rows {
		if r.AvgOverhead > 0.35 {
			t.Errorf("tmro %s: avg overhead %.1f%% implausibly high",
				dram.FormatTime(r.TMro), 100*r.AvgOverhead)
		}
	}
}

func TestHeterogeneousMixes(t *testing.T) {
	mixes := HeterogeneousMixes(2, 3)
	if len(mixes) != 5 {
		t.Fatalf("%d groups", len(mixes))
	}
	for group, ms := range mixes {
		if len(ms) != 2 {
			t.Fatalf("group %s has %d mixes", group, len(ms))
		}
		for _, m := range ms {
			if len(m) != 4 {
				t.Fatalf("group %s mix has %d workloads", group, len(m))
			}
			for i, ch := range group {
				if (ch == 'H') != m[i].MemHeavy {
					t.Fatalf("group %s position %d: wrong category %s", group, i, m[i].Name)
				}
			}
		}
	}
}

func TestWeightedSpeedup(t *testing.T) {
	r := Result{Cores: []CoreStats{
		{Instructions: 100, Cycles: 100}, // IPC 1.0
		{Instructions: 100, Cycles: 200}, // IPC 0.5
	}}
	ws := r.WeightedSpeedup([]float64{2.0, 1.0})
	if ws != 1.0 { // 0.5 + 0.5
		t.Fatalf("WS = %v, want 1.0", ws)
	}
}

func TestTmroPolicyForcesReactivation(t *testing.T) {
	// Under a tmro cap, a row left open past the cap counts as closed.
	var b memctrl.BankState
	tm := dram.DDR4()
	pol := memctrl.TmroCap(96 * dram.Nanosecond)
	done, act := b.Access(0, 7, pol, tm)
	if !act {
		t.Fatal("first access must activate")
	}
	// Immediately after: still open.
	if !b.RowOpenFor(7, done, pol) {
		t.Fatal("row should be open right after access")
	}
	// Long after: the cap expired.
	if b.RowOpenFor(7, done+dram.Microsecond, pol) {
		t.Fatal("row should have been force-closed after tmro")
	}
	_, act2 := b.Access(done+dram.Microsecond, 7, pol, tm)
	if !act2 {
		t.Fatal("post-tmro access must re-activate")
	}
}
