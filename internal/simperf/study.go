package simperf

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/mitigate"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TmroLattice is the Table 3 sweep of maximum row-open times.
var TmroLattice = []dram.TimePS{
	36 * dram.Nanosecond,
	66 * dram.Nanosecond,
	96 * dram.Nanosecond,
	186 * dram.Nanosecond,
	336 * dram.Nanosecond,
	636 * dram.Nanosecond,
}

// BaseTRH is the baseline RowHammer threshold of Table 3.
const BaseTRH = 1000

// GrapheneTableSize is the Misra-Gries table size (sized for T = T_RH/3
// per the original Graphene configuration at the simulated scale).
const GrapheneTableSize = 64

// runOne simulates one workload set under a policy + mitigation factory
// and returns per-core IPCs and the result.
func runOne(cfg Config, profiles []workload.Profile, seed uint64) (Result, error) {
	sim, err := New(cfg, profiles, seed)
	if err != nil {
		return Result{}, err
	}
	return sim.Run(), nil
}

// MitigationKind selects the mechanism family for the Table 3 study.
type MitigationKind int

// The two mitigations the paper adapts.
const (
	KindGraphene MitigationKind = iota
	KindPARA
)

func (k MitigationKind) String() string {
	if k == KindPARA {
		return "PARA"
	}
	return "Graphene"
}

// AdaptedFactory builds the per-bank mitigation factory for the adapted
// mechanism at one tmro configuration.
func AdaptedFactory(kind MitigationKind, tmro dram.TimePS, seed uint64) (func(int) mitigate.Mitigation, error) {
	ac, err := mitigate.Adapt(BaseTRH, mitigate.SamsungBDieCurve, tmro)
	if err != nil {
		return nil, err
	}
	switch kind {
	case KindGraphene:
		return func(bank int) mitigate.Mitigation {
			return mitigate.GrapheneRP(ac, GrapheneTableSize)
		}, nil
	case KindPARA:
		return func(bank int) mitigate.Mitigation {
			return mitigate.PARARP(ac, seed+uint64(bank))
		}, nil
	default:
		return nil, fmt.Errorf("simperf: unknown mitigation kind %d", kind)
	}
}

// BaselineFactory builds the unadapted mechanism (tmro = tRAS column of
// Table 3: T' = T_RH, open-row policy).
func BaselineFactory(kind MitigationKind, seed uint64) func(int) mitigate.Mitigation {
	f, err := AdaptedFactory(kind, 36*dram.Nanosecond, seed)
	if err != nil {
		panic(err) // 36 ns is always in the curve
	}
	return f
}

// OverheadRow is one tmro column of Table 3 for one mechanism.
type OverheadRow struct {
	TMro        dram.TimePS
	TPrime      int
	AvgOverhead float64 // mean slowdown vs the unadapted mechanism (fraction)
	MaxOverhead float64
}

// MitigationStudy produces Table 3: for each tmro, the performance of the
// adapted mechanism (reduced threshold + capped row-open time) normalized
// to the original mechanism with the open-row policy, across 4-core
// workload mixes.
func MitigationStudy(kind MitigationKind, cfg Config, mixes [][]workload.Profile, seed uint64) ([]OverheadRow, error) {
	baseCfg := cfg
	baseCfg.Policy = memctrl.OpenRow()
	baseCfg.NewMitigation = BaselineFactory(kind, seed)

	baseWS := make([]float64, len(mixes))
	alone := make([][]float64, len(mixes))
	for i, mix := range mixes {
		al, err := AloneIPCs(cfg, mix, seed)
		if err != nil {
			return nil, err
		}
		alone[i] = al
		res, err := runOne(baseCfg, mix, seed)
		if err != nil {
			return nil, err
		}
		baseWS[i] = res.WeightedSpeedup(al)
	}

	var rows []OverheadRow
	for _, tmro := range TmroLattice {
		factory, err := AdaptedFactory(kind, tmro, seed)
		if err != nil {
			return nil, err
		}
		ac, _ := mitigate.Adapt(BaseTRH, mitigate.SamsungBDieCurve, tmro)
		adCfg := cfg
		adCfg.Policy = memctrl.TmroCap(tmro)
		adCfg.NewMitigation = factory

		row := OverheadRow{TMro: tmro, TPrime: ac.TPrimeRH}
		var overheads []float64
		for i, mix := range mixes {
			res, err := runOne(adCfg, mix, seed)
			if err != nil {
				return nil, err
			}
			ws := res.WeightedSpeedup(alone[i])
			overheads = append(overheads, 1-ws/baseWS[i])
		}
		row.AvgOverhead = stats.Mean(overheads)
		row.MaxOverhead = stats.Max(overheads)
		rows = append(rows, row)
	}
	return rows, nil
}

// RunMix simulates one workload mix under the given configuration.
func RunMix(cfg Config, mix []workload.Profile, seed uint64) (Result, error) {
	return runOne(cfg, mix, seed)
}

// RunAdapted simulates a mix under the adapted mechanism (reduced
// threshold + tmro-capped row policy) at one tmro point.
func RunAdapted(kind MitigationKind, tmro dram.TimePS, cfg Config, mix []workload.Profile, seed uint64) (Result, error) {
	factory, err := AdaptedFactory(kind, tmro, seed)
	if err != nil {
		return Result{}, err
	}
	c := cfg
	c.Policy = memctrl.TmroCap(tmro)
	c.NewMitigation = factory
	return runOne(c, mix, seed)
}

// AloneIPCs simulates each profile alone (no mitigation, open-row) for the
// weighted-speedup denominator.
func AloneIPCs(cfg Config, mix []workload.Profile, seed uint64) ([]float64, error) {
	out := make([]float64, len(mix))
	for i, p := range mix {
		c := cfg
		c.Policy = memctrl.OpenRow()
		c.NewMitigation = nil
		res, err := runOne(c, []workload.Profile{p}, seed)
		if err != nil {
			return nil, err
		}
		out[i] = res.Cores[0].IPC()
	}
	return out, nil
}

// MinOpenRowStudy produces Fig. 38/39: per workload, the normalized IPC
// and the max per-row ACT-count increase of the minimally-open-row policy
// versus the open-row baseline.
type MinOpenRowRow struct {
	Workload      string
	NormalizedIPC float64
	ACTIncrease   float64 // max per-row ACTs per tREFW, minimally-open / open
}

// MinOpenRowStudy runs the Appendix D.1 comparison for the given profiles.
func MinOpenRowStudy(cfg Config, profiles []workload.Profile, seed uint64) ([]MinOpenRowRow, error) {
	var out []MinOpenRowRow
	for _, p := range profiles {
		open := cfg
		open.Policy = memctrl.OpenRow()
		ro, err := runOne(open, []workload.Profile{p}, seed)
		if err != nil {
			return nil, err
		}
		closed := cfg
		closed.Policy = memctrl.ClosedRow()
		rc, err := runOne(closed, []workload.Profile{p}, seed)
		if err != nil {
			return nil, err
		}
		row := MinOpenRowRow{Workload: p.Name}
		if ipc := ro.Cores[0].IPC(); ipc > 0 {
			row.NormalizedIPC = rc.Cores[0].IPC() / ipc
		}
		if ro.MaxRowACTsPerWindow > 0 {
			row.ACTIncrease = float64(rc.MaxRowACTsPerWindow) / float64(ro.MaxRowACTsPerWindow)
		}
		out = append(out, row)
	}
	return out, nil
}

// HeterogeneousMixes builds the Appendix D category mixes (HHHH, HHHL,
// HHLL, HLLL, LLLL), n of each, deterministically.
func HeterogeneousMixes(n int, seed uint64) map[string][][]workload.Profile {
	heavy, light := workload.Heavy(), workload.Light()
	rng := stats.NewRNG(seed)
	pick := func(pool []workload.Profile) workload.Profile {
		return pool[rng.Intn(len(pool))]
	}
	out := make(map[string][][]workload.Profile)
	for _, group := range []string{"HHHH", "HHHL", "HHLL", "HLLL", "LLLL"} {
		for i := 0; i < n; i++ {
			var mix []workload.Profile
			for _, ch := range group {
				if ch == 'H' {
					mix = append(mix, pick(heavy))
				} else {
					mix = append(mix, pick(light))
				}
			}
			out[group] = append(out[group], mix)
		}
	}
	return out
}
