// Package bender is this reproduction's stand-in for the FPGA-based DRAM
// testing infrastructure of §3.1 (DRAM Bender on a Xilinx Alveo U200 plus
// a PID-controlled heater rig): a test bench that owns a simulated module,
// its disturbance model, a thermal controller, and the module's in-DRAM
// row scrambling, and exposes the operations the paper's test programs are
// built from — fill rows with a data pattern, run a hammer/press loop with
// precise timing, read rows back, and diff for bitflips.
//
// Following the paper's methodology, the bench keeps periodic refresh
// disabled during test programs (to keep timings precise and to expose the
// chip's circuit-level behaviour) and experiments are expected to stay
// within the refresh window.
package bender

import (
	"fmt"

	"repro/internal/addrmap"
	"repro/internal/chipgen"
	"repro/internal/disturb"
	"repro/internal/dram"
	"repro/internal/thermal"
)

// Bench wires one module under test to the measurement apparatus.
type Bench struct {
	Spec    chipgen.ModuleSpec
	Mod     *dram.Module
	Model   *disturb.Model
	RowMap  addrmap.RowMap // ground-truth hardware scrambling
	Thermal *thermal.Controller

	now   dram.TimePS
	bank  int // bank under test (the paper uses bank 1)
	tempC float64
}

// Option configures a Bench.
type Option func(*benchConfig)

type benchConfig struct {
	geo   dram.Geometry
	bank  int
	tempC float64
}

// WithGeometry overrides the module geometry.
func WithGeometry(geo dram.Geometry) Option { return func(c *benchConfig) { c.geo = geo } }

// WithBank selects the bank under test.
func WithBank(bank int) Option { return func(c *benchConfig) { c.bank = bank } }

// WithTemperature sets the initial target temperature (°C).
func WithTemperature(t float64) Option { return func(c *benchConfig) { c.tempC = t } }

// New builds a bench for the given module spec. The module's in-DRAM row
// scrambling scheme is a deterministic property of the module (derived
// from its identity), as on real chips.
func New(spec chipgen.ModuleSpec, opts ...Option) (*Bench, error) {
	cfg := benchConfig{geo: dram.DefaultGeometry(), bank: 1, tempC: 50}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.bank < 0 || cfg.bank >= cfg.geo.Banks {
		return nil, fmt.Errorf("bender: bank %d outside geometry with %d banks", cfg.bank, cfg.geo.Banks)
	}
	kind := addrmap.RowMapKind(spec.Seed() % 3)
	rowMap, err := addrmap.NewRowMap(kind, cfg.geo.RowsPerBank)
	if err != nil {
		return nil, fmt.Errorf("bender: row map: %w", err)
	}
	mod, model := spec.NewModule(cfg.geo, cfg.tempC)
	b := &Bench{
		Spec:    spec,
		Mod:     mod,
		Model:   model,
		RowMap:  rowMap,
		Thermal: thermal.NewController(),
		bank:    cfg.bank,
		tempC:   cfg.tempC,
	}
	if _, err := b.Thermal.Settle(cfg.tempC, 0.5, 5); err != nil {
		return nil, fmt.Errorf("bender: initial thermal settle: %w", err)
	}
	return b, nil
}

// Now returns the bench clock.
func (b *Bench) Now() dram.TimePS { return b.now }

// Bank returns the bank under test.
func (b *Bench) Bank() int { return b.bank }

// Temperature returns the current chip temperature.
func (b *Bench) Temperature() float64 { return b.tempC }

// Advance moves the bench clock forward by d.
func (b *Bench) Advance(d dram.TimePS) {
	if d > 0 {
		b.now += d
	}
}

// SetTemperature drives the heater rig to target °C and blocks (in
// simulated time) until it settles, then informs the module.
func (b *Bench) SetTemperature(target float64) error {
	settle, err := b.Thermal.Settle(target, 0.5, 10)
	if err != nil {
		return err
	}
	b.now += dram.FromSeconds(settle)
	b.tempC = target
	b.Mod.SetTemperature(b.now, target)
	b.Model.SetEvalTemperature(target)
	return nil
}

// SetTrial selects the measurement repetition (threshold jitter salt).
func (b *Bench) SetTrial(trial uint64) { b.Model.SetTrial(trial) }

// WriteRow fills a logical row with the byte value, resetting its
// disturbance state (bulk initialization, outside the measured commands).
func (b *Bench) WriteRow(logicalRow int, fill byte) error {
	phys := b.RowMap.Physical(logicalRow)
	if err := b.Mod.InitRow(b.now, b.bank, phys, fill); err != nil {
		return err
	}
	b.now += dram.Microsecond
	return nil
}

// ReadRow activates a logical row (materializing any pending disturbance)
// and returns its contents.
func (b *Bench) ReadRow(logicalRow int) ([]byte, error) {
	phys := b.RowMap.Physical(logicalRow)
	data, end, err := b.Mod.FetchRow(b.now, b.bank, phys)
	if err != nil {
		return nil, err
	}
	b.now = end
	return data, nil
}

// Hammer runs the access pattern loop over the logical aggressor rows with
// per-activation open time onTime and extra off time extraOff, totalling
// count activations. It uses the batched fast path.
func (b *Bench) Hammer(logicalRows []int, count int, onTime, extraOff dram.TimePS) error {
	phys := make([]int, len(logicalRows))
	for i, r := range logicalRows {
		phys[i] = b.RowMap.Physical(r)
	}
	end, err := b.Mod.HammerBatch(b.now, dram.HammerSpec{
		Bank: b.bank, Rows: phys, Count: count, OnTime: onTime, ExtraOff: extraOff,
	})
	if err != nil {
		return err
	}
	b.now = end
	return nil
}

// Flip records one observed bitflip.
type Flip struct {
	LogicalRow int
	Byte       int
	Bit        uint8
	From       bool // original bit value (true = 1)
}

// CheckRow reads a logical row and diffs it against the expected fill byte,
// returning all bitflips.
func (b *Bench) CheckRow(logicalRow int, expected byte) ([]Flip, error) {
	data, err := b.ReadRow(logicalRow)
	if err != nil {
		return nil, err
	}
	var flips []Flip
	for i, got := range data {
		diff := got ^ expected
		if diff == 0 {
			continue
		}
		for bit := uint8(0); bit < 8; bit++ {
			if diff&(1<<bit) != 0 {
				flips = append(flips, Flip{
					LogicalRow: logicalRow,
					Byte:       i,
					Bit:        bit,
					From:       expected&(1<<bit) != 0,
				})
			}
		}
	}
	return flips, nil
}

// DiscoverRowMap reverse-engineers the module's in-DRAM row scrambling by
// hammering sample rows and observing which rows flip, as prior works do
// on real chips (§3.2). It returns the inferred mapping, which tests
// verify equals the hardware's.
func (b *Bench) DiscoverRowMap(sampleRows []int) (addrmap.RowMap, error) {
	rows := b.Mod.Geo.RowsPerBank
	probe := func(agg int) ([]int, error) {
		// Candidate victims: logical rows within the scrambling group span.
		var candidates []int
		for d := -8; d <= 8; d++ {
			v := agg + d
			if v >= 0 && v < rows && v != agg {
				candidates = append(candidates, v)
			}
		}
		for _, v := range candidates {
			if err := b.WriteRow(v, 0x00); err != nil {
				return nil, err
			}
		}
		if err := b.WriteRow(agg, 0x00); err != nil {
			return nil, err
		}
		// A full refresh-window's worth of conventional hammering flips the
		// physically adjacent rows on any of the catalogued dies.
		if err := b.Hammer([]int{agg}, 1_000_000, b.Mod.Timing.TRAS, 0); err != nil {
			return nil, err
		}
		var victims []int
		for _, v := range candidates {
			flips, err := b.CheckRow(v, 0x00)
			if err != nil {
				return nil, err
			}
			if len(flips) > 0 {
				victims = append(victims, v)
			}
		}
		return victims, nil
	}
	kind, err := addrmap.ReverseEngineer(rows, probe, sampleRows, 2)
	if err != nil {
		return addrmap.RowMap{}, err
	}
	return addrmap.NewRowMap(kind, rows)
}
