package bender

import (
	"testing"

	"repro/internal/chipgen"
	"repro/internal/dram"
)

func newTestBench(t *testing.T, id string) *Bench {
	t.Helper()
	spec, ok := chipgen.ByID(id)
	if !ok {
		t.Fatalf("unknown module %s", id)
	}
	geo := dram.Geometry{Banks: 2, RowsPerBank: 1024, RowBytes: 8192}
	b, err := New(spec, WithGeometry(geo), WithBank(1), WithTemperature(50))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBenchWriteReadRoundTrip(t *testing.T) {
	b := newTestBench(t, "S0")
	if err := b.WriteRow(100, 0x55); err != nil {
		t.Fatal(err)
	}
	data, err := b.ReadRow(100)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		if v != 0x55 {
			t.Fatalf("byte %d = %#x", i, v)
		}
	}
}

func TestBenchCheckRowNoFlips(t *testing.T) {
	b := newTestBench(t, "S0")
	if err := b.WriteRow(50, 0xAA); err != nil {
		t.Fatal(err)
	}
	flips, err := b.CheckRow(50, 0xAA)
	if err != nil {
		t.Fatal(err)
	}
	if len(flips) != 0 {
		t.Fatalf("unexpected flips: %d", len(flips))
	}
}

func TestBenchHammerInducesFlips(t *testing.T) {
	b := newTestBench(t, "S3") // weak 8Gb D-die
	agg := 500
	victims := []int{}
	for d := 1; d <= 1; d++ {
		below, above, ok := b.RowMap.PhysicalNeighbors(agg, d)
		if !ok {
			t.Fatal("no neighbors")
		}
		victims = append(victims, below, above)
	}
	for _, v := range victims {
		if err := b.WriteRow(v, 0x00); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.WriteRow(agg, 0xFF); err != nil {
		t.Fatal(err)
	}
	if err := b.Hammer([]int{agg}, 800_000, 36*dram.Nanosecond, 0); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, v := range victims {
		flips, err := b.CheckRow(v, 0x00)
		if err != nil {
			t.Fatal(err)
		}
		total += len(flips)
	}
	if total == 0 {
		t.Fatal("800K activations on D-die produced no flips")
	}
}

func TestBenchPressFlipsWithFewActivations(t *testing.T) {
	b := newTestBench(t, "S3")
	total := 0
	// ~55 ms of 7.8 µs activations per aggressor: rows whose weakest press
	// cell sits below that exposure flip (the D-die average is ~39 ms).
	for agg := 100; agg <= 900; agg += 100 {
		below, above, _ := b.RowMap.PhysicalNeighbors(agg, 1)
		for _, v := range []int{below, above} {
			if err := b.WriteRow(v, 0xFF); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.WriteRow(agg, 0xAA); err != nil {
			t.Fatal(err)
		}
		if err := b.Hammer([]int{agg}, 7000, 7800*dram.Nanosecond, 0); err != nil {
			t.Fatal(err)
		}
		for _, v := range []int{below, above} {
			flips, err := b.CheckRow(v, 0xFF)
			if err != nil {
				t.Fatal(err)
			}
			total += len(flips)
			for _, f := range flips {
				if !f.From {
					t.Fatalf("press flip in wrong direction at row %d byte %d", f.LogicalRow, f.Byte)
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("RowPress at 7.8us x 7000 activations produced no flips on D-die")
	}
}

func TestBenchSetTemperatureAdvancesClockAndModule(t *testing.T) {
	b := newTestBench(t, "S0")
	before := b.Now()
	if err := b.SetTemperature(80); err != nil {
		t.Fatal(err)
	}
	if b.Now() <= before {
		t.Error("thermal settling should take simulated time")
	}
	if b.Temperature() != 80 {
		t.Errorf("bench temp = %v", b.Temperature())
	}
	if got := b.Mod.TemperatureAt(b.Now()); got != 80 {
		t.Errorf("module temp = %v", got)
	}
}

func TestBenchDiscoverRowMapMatchesHardware(t *testing.T) {
	// The disturb-based reverse engineering must recover the module's true
	// scrambling scheme. Use module specs landing on different map kinds.
	for _, id := range []string{"S0", "S3", "H0", "M3"} {
		b := newTestBench(t, id)
		discovered, err := b.DiscoverRowMap([]int{40, 41, 44, 47, 72, 200})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if discovered.Kind != b.RowMap.Kind {
			t.Errorf("%s: discovered kind %d, hardware %d", id, discovered.Kind, b.RowMap.Kind)
		}
	}
}

func TestBenchRejectsBadBank(t *testing.T) {
	spec, _ := chipgen.ByID("S0")
	_, err := New(spec, WithBank(99))
	if err == nil {
		t.Fatal("bank 99 should fail")
	}
}
