package bender

import (
	"fmt"

	"repro/internal/dram"
)

// Op is one step of a test program — the unit the real DRAM Bender
// infrastructure compiles to its FPGA instruction set. Programs are
// validated before execution so a malformed experiment fails loudly
// instead of silently measuring nothing.
type Op interface {
	// run executes the op against the bench.
	run(b *Bench, out *ProgramResult) error
	// validate checks the op against the bench configuration.
	validate(b *Bench) error
	// String names the op for program listings.
	String() string
}

// ProgramResult accumulates a program's observations.
type ProgramResult struct {
	Flips    []Flip
	Checked  int         // rows checked
	Duration dram.TimePS // bench time consumed
}

// Program is an ordered list of ops.
type Program struct {
	Name string
	Ops  []Op
}

// Validate checks every op.
func (p Program) Validate(b *Bench) error {
	if len(p.Ops) == 0 {
		return fmt.Errorf("bender: program %q has no ops", p.Name)
	}
	for i, op := range p.Ops {
		if err := op.validate(b); err != nil {
			return fmt.Errorf("bender: program %q op %d (%s): %w", p.Name, i, op, err)
		}
	}
	return nil
}

// Run validates and executes the program, returning its observations.
func (p Program) Run(b *Bench) (ProgramResult, error) {
	if err := p.Validate(b); err != nil {
		return ProgramResult{}, err
	}
	var out ProgramResult
	start := b.Now()
	for i, op := range p.Ops {
		if err := op.run(b, &out); err != nil {
			return out, fmt.Errorf("bender: program %q op %d (%s): %w", p.Name, i, op, err)
		}
	}
	out.Duration = b.Now() - start
	return out, nil
}

// SetTempOp drives the thermal rig to a target temperature.
type SetTempOp struct{ TempC float64 }

func (o SetTempOp) String() string { return fmt.Sprintf("set-temp %g°C", o.TempC) }
func (o SetTempOp) validate(b *Bench) error {
	if o.TempC < b.Thermal.Plant.Ambient || o.TempC > b.Thermal.Plant.Ambient+b.Thermal.Plant.Gain {
		return fmt.Errorf("temperature %g°C outside rig range", o.TempC)
	}
	return nil
}
func (o SetTempOp) run(b *Bench, _ *ProgramResult) error { return b.SetTemperature(o.TempC) }

// FillOp writes a byte pattern into a set of logical rows.
type FillOp struct {
	Rows []int
	Byte byte
}

func (o FillOp) String() string { return fmt.Sprintf("fill %d rows with %#02x", len(o.Rows), o.Byte) }
func (o FillOp) validate(b *Bench) error {
	return checkRows(b, o.Rows)
}
func (o FillOp) run(b *Bench, _ *ProgramResult) error {
	for _, r := range o.Rows {
		if err := b.WriteRow(r, o.Byte); err != nil {
			return err
		}
	}
	return nil
}

// HammerOp runs the paper's access-pattern loop (Figs. 5/16/21).
type HammerOp struct {
	Rows     []int
	Count    int
	OnTime   dram.TimePS
	ExtraOff dram.TimePS
}

func (o HammerOp) String() string {
	return fmt.Sprintf("hammer %v x%d on=%s", o.Rows, o.Count, dram.FormatTime(o.OnTime))
}
func (o HammerOp) validate(b *Bench) error {
	if err := checkRows(b, o.Rows); err != nil {
		return err
	}
	phys := make([]int, len(o.Rows))
	for i, r := range o.Rows {
		phys[i] = b.RowMap.Physical(r)
	}
	return dram.HammerSpec{
		Bank: b.Bank(), Rows: phys, Count: o.Count, OnTime: o.OnTime, ExtraOff: o.ExtraOff,
	}.Validate(b.Mod)
}
func (o HammerOp) run(b *Bench, _ *ProgramResult) error {
	return b.Hammer(o.Rows, o.Count, o.OnTime, o.ExtraOff)
}

// WaitOp idles the bench clock (retention windows, refresh-off stretches).
type WaitOp struct{ D dram.TimePS }

func (o WaitOp) String() string { return "wait " + dram.FormatTime(o.D) }
func (o WaitOp) validate(*Bench) error {
	if o.D <= 0 {
		return fmt.Errorf("non-positive wait")
	}
	return nil
}
func (o WaitOp) run(b *Bench, _ *ProgramResult) error {
	b.Advance(o.D)
	return nil
}

// CheckOp reads rows and records bitflips against the expected byte.
type CheckOp struct {
	Rows     []int
	Expected byte
}

func (o CheckOp) String() string {
	return fmt.Sprintf("check %d rows vs %#02x", len(o.Rows), o.Expected)
}
func (o CheckOp) validate(b *Bench) error {
	return checkRows(b, o.Rows)
}
func (o CheckOp) run(b *Bench, out *ProgramResult) error {
	for _, r := range o.Rows {
		flips, err := b.CheckRow(r, o.Expected)
		if err != nil {
			return err
		}
		out.Flips = append(out.Flips, flips...)
		out.Checked++
	}
	return nil
}

func checkRows(b *Bench, rows []int) error {
	if len(rows) == 0 {
		return fmt.Errorf("no rows")
	}
	for _, r := range rows {
		if r < 0 || r >= b.Mod.Geo.RowsPerBank {
			return fmt.Errorf("row %d out of range [0,%d)", r, b.Mod.Geo.RowsPerBank)
		}
	}
	return nil
}

// SingleSidedRowPress builds the canonical §4.1 test program around one
// aggressor: fill victims and aggressor with the data pattern, hammer, and
// check all six victims.
func SingleSidedRowPress(b *Bench, aggressor, count int, onTime dram.TimePS, pattern dram.DataPattern) Program {
	var victims []int
	for d := 1; d <= dram.BlastRadius; d++ {
		below, above, ok := b.RowMap.PhysicalNeighbors(aggressor, d)
		if ok {
			victims = append(victims, below, above)
		}
	}
	return Program{
		Name: "single-sided-rowpress",
		Ops: []Op{
			FillOp{Rows: victims, Byte: pattern.VictimByte()},
			FillOp{Rows: []int{aggressor}, Byte: pattern.AggressorByte()},
			HammerOp{Rows: []int{aggressor}, Count: count, OnTime: onTime},
			CheckOp{Rows: victims, Expected: pattern.VictimByte()},
		},
	}
}
