package bender

import (
	"strings"
	"testing"

	"repro/internal/dram"
)

func TestProgramSingleSidedRowPress(t *testing.T) {
	b := newTestBench(t, "S3")
	prog := SingleSidedRowPress(b, 500, 7000, 7800*dram.Nanosecond, dram.CheckerBoard)
	res, err := prog.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checked != 6 {
		t.Fatalf("checked %d rows, want 6", res.Checked)
	}
	if res.Duration <= 0 {
		t.Fatal("program consumed no time")
	}
}

func TestProgramValidateRejectsEmpty(t *testing.T) {
	b := newTestBench(t, "S0")
	if err := (Program{Name: "empty"}).Validate(b); err == nil {
		t.Fatal("empty program should not validate")
	}
}

func TestProgramValidateRejectsBadOps(t *testing.T) {
	b := newTestBench(t, "S0")
	bad := []Program{
		{Name: "badrow", Ops: []Op{FillOp{Rows: []int{-1}, Byte: 0}}},
		{Name: "norows", Ops: []Op{CheckOp{Rows: nil}}},
		{Name: "badtemp", Ops: []Op{SetTempOp{TempC: 500}}},
		{Name: "badwait", Ops: []Op{WaitOp{D: 0}}},
		{Name: "badhammer", Ops: []Op{HammerOp{Rows: []int{5}, Count: 0, OnTime: 36 * dram.Nanosecond}}},
		{Name: "shorton", Ops: []Op{HammerOp{Rows: []int{5}, Count: 1, OnTime: dram.Nanosecond}}},
	}
	for _, p := range bad {
		if err := p.Validate(b); err == nil {
			t.Errorf("program %q should not validate", p.Name)
		}
	}
}

func TestProgramRetentionStyle(t *testing.T) {
	// A retention test as a program: fill, heat, wait 4s with refresh
	// disabled, check.
	b := newTestBench(t, "S0")
	rows := []int{100, 101, 102, 103, 104, 105, 106, 107, 108, 109}
	prog := Program{
		Name: "retention-4s-80C",
		Ops: []Op{
			SetTempOp{TempC: 80},
			FillOp{Rows: rows, Byte: 0xFF},
			WaitOp{D: 4 * dram.Second},
			CheckOp{Rows: rows, Expected: 0xFF},
		},
	}
	res, err := prog.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flips) == 0 {
		t.Fatal("4s at 80C with refresh disabled should leak some cells")
	}
	for _, f := range res.Flips {
		if !f.From {
			t.Fatal("retention flips must discharge (1->0 on true cells)")
		}
	}
}

func TestProgramOpStrings(t *testing.T) {
	ops := []Op{
		SetTempOp{TempC: 80},
		FillOp{Rows: []int{1, 2}, Byte: 0xAA},
		HammerOp{Rows: []int{3}, Count: 10, OnTime: 36 * dram.Nanosecond},
		WaitOp{D: dram.Millisecond},
		CheckOp{Rows: []int{1}, Expected: 0xAA},
	}
	for _, op := range ops {
		if strings.TrimSpace(op.String()) == "" {
			t.Errorf("op %T has empty String()", op)
		}
	}
}

func TestProgramErrorMentionsOpIndex(t *testing.T) {
	b := newTestBench(t, "S0")
	p := Program{Name: "p", Ops: []Op{
		FillOp{Rows: []int{1}, Byte: 0},
		HammerOp{Rows: []int{99999}, Count: 1, OnTime: 36 * dram.Nanosecond},
	}}
	err := p.Validate(b)
	if err == nil || !strings.Contains(err.Error(), "op 1") {
		t.Fatalf("error should point at op 1: %v", err)
	}
}
