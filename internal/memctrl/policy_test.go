package memctrl

import (
	"testing"

	"repro/internal/dram"
)

func TestPolicyNames(t *testing.T) {
	if OpenRow().String() != "open-row" {
		t.Error("open-row name")
	}
	if ClosedRow().String() != "minimally-open-row" {
		t.Error("closed-row name")
	}
	if TmroCap(96*dram.Nanosecond).String() != "tmro=96ns" {
		t.Errorf("tmro name = %s", TmroCap(96*dram.Nanosecond).String())
	}
}

func TestOpenRowHitsAfterActivation(t *testing.T) {
	var b BankState
	tm := dram.DDR4()
	pol := OpenRow()
	done1, act1 := b.Access(0, 5, pol, tm)
	if !act1 {
		t.Fatal("first access must activate")
	}
	done2, act2 := b.Access(done1, 5, pol, tm)
	if act2 {
		t.Fatal("second access to same row must hit")
	}
	if done2-done1 != tm.TCL+tm.TBL {
		t.Fatalf("hit latency = %d", done2-done1)
	}
}

func TestOpenRowConflictRespectsTRAS(t *testing.T) {
	var b BankState
	tm := dram.DDR4()
	pol := OpenRow()
	done1, _ := b.Access(0, 5, pol, tm)
	// Immediately conflicting access: the PRE cannot happen before
	// openedAt+tRAS, so completion includes the wait.
	done2, act := b.Access(done1, 9, pol, tm)
	if !act {
		t.Fatal("conflict must activate")
	}
	if done2 < tm.TRAS+tm.TRP+tm.TRCD {
		t.Fatalf("conflict completed too early: %d", done2)
	}
}

func TestClosedRowAlwaysActivates(t *testing.T) {
	var b BankState
	tm := dram.DDR4()
	pol := ClosedRow()
	done1, _ := b.Access(0, 5, pol, tm)
	_, act2 := b.Access(done1+dram.Microsecond, 5, pol, tm)
	if !act2 {
		t.Fatal("minimally-open-row must re-activate every access")
	}
}

func TestPreemptClosesAndBlocks(t *testing.T) {
	var b BankState
	tm := dram.DDR4()
	done, _ := b.Access(0, 5, OpenRow(), tm)
	b.Preempt(done + 10*dram.Microsecond)
	if b.Open {
		t.Fatal("preempt must close the row")
	}
	done2, _ := b.Access(done, 5, OpenRow(), tm)
	if done2 < done+10*dram.Microsecond {
		t.Fatalf("access ignored busy window: %d", done2)
	}
}

func TestDecoupledBehavesLikeOpenRowForScheduling(t *testing.T) {
	tm := dram.DDR4()
	var a, b BankState
	d1, act1 := a.Access(0, 5, OpenRow(), tm)
	d2, act2 := b.Access(0, 5, Decoupled(), tm)
	if d1 != d2 || act1 != act2 {
		t.Fatal("decoupled first access differs from open-row")
	}
	d1, act1 = a.Access(d1+dram.Microsecond, 5, OpenRow(), tm)
	d2, act2 = b.Access(d2+dram.Microsecond, 5, Decoupled(), tm)
	if act1 || act2 || d1 != d2 {
		t.Fatal("decoupled buffer hit differs from open-row hit")
	}
	if Decoupled().String() != "row-buffer-decoupled" {
		t.Error("name")
	}
}
