// Package memctrl provides the memory-controller building blocks shared by
// the performance simulator and the mitigation study: row-buffer
// management policies (§7.3) and the per-bank timing state the FR-FCFS
// scheduler operates on.
package memctrl

import (
	"fmt"

	"repro/internal/dram"
)

// RowPolicy decides how long a row may stay open after a column access.
type RowPolicy struct {
	Kind RowPolicyKind
	TMro dram.TimePS // maximum row-open time for KindTmro
}

// RowPolicyKind enumerates the §7.3 policies.
type RowPolicyKind int

// The three policies the paper evaluates: the baseline open-row policy,
// the minimally-open-row policy (close right after the access — the
// strawman of Appendix D.1), and the tmro-capped policy of the adapted
// mitigations (§7.4).
const (
	KindOpenRow RowPolicyKind = iota
	KindClosedRow
	KindTmro
	// KindDecoupled models the row-buffer decoupling proposal the paper
	// examines in §7.2: the bitline sense amplifiers keep serving column
	// accesses, but the wordline is de-asserted once charge restoration
	// completes, so the *electrical* row-open time is pinned at tRAS
	// regardless of how long the buffer stays hot. Performance-wise it
	// behaves like the open-row policy; disturbance-wise it caps tAggON.
	KindDecoupled
)

// OpenRow returns the baseline policy.
func OpenRow() RowPolicy { return RowPolicy{Kind: KindOpenRow} }

// ClosedRow returns the minimally-open-row policy.
func ClosedRow() RowPolicy { return RowPolicy{Kind: KindClosedRow} }

// TmroCap returns the capped policy with the given maximum open time.
func TmroCap(tmro dram.TimePS) RowPolicy { return RowPolicy{Kind: KindTmro, TMro: tmro} }

// Decoupled returns the row-buffer-decoupling policy (§7.2).
func Decoupled() RowPolicy { return RowPolicy{Kind: KindDecoupled} }

// String names the policy for reports.
func (p RowPolicy) String() string {
	switch p.Kind {
	case KindClosedRow:
		return "minimally-open-row"
	case KindTmro:
		return fmt.Sprintf("tmro=%s", dram.FormatTime(p.TMro))
	case KindDecoupled:
		return "row-buffer-decoupled"
	default:
		return "open-row"
	}
}

// BankState tracks one bank's row buffer for scheduling purposes.
type BankState struct {
	Open      bool
	Row       int
	OpenedAt  dram.TimePS
	BusyUntil dram.TimePS // command/refresh occupancy
}

// RowOpenFor reports whether the bank still has `row` usable at time now
// under the policy (a tmro-capped row that exceeded its budget counts as
// closed — the controller forces a precharge).
func (b *BankState) RowOpenFor(row int, now dram.TimePS, p RowPolicy) bool {
	if !b.Open || b.Row != row {
		return false
	}
	if p.Kind == KindTmro && now-b.OpenedAt >= p.TMro {
		return false
	}
	return true
}

// Access serves one column access at time earliest, updating the bank
// state per the policy, and returns the completion time plus whether the
// access needed an activation.
func (b *BankState) Access(earliest dram.TimePS, row int, p RowPolicy, t dram.Timing) (done dram.TimePS, activated bool) {
	now := earliest
	if now < b.BusyUntil {
		now = b.BusyUntil
	}
	switch {
	case b.RowOpenFor(row, now, p):
		done = now + t.TCL + t.TBL
	case b.Open:
		// Conflict (or tmro expiry): precharge then activate. Respect tRAS.
		preAt := now
		if min := b.OpenedAt + t.TRAS; preAt < min {
			preAt = min
		}
		actAt := preAt + t.TRP
		b.Row, b.OpenedAt = row, actAt
		done = actAt + t.TRCD + t.TCL + t.TBL
		activated = true
	default:
		b.Open = true
		b.Row, b.OpenedAt = row, now
		done = now + t.TRCD + t.TCL + t.TBL
		activated = true
	}
	if p.Kind == KindClosedRow {
		b.Open = false
		done += t.TRP // auto-precharge on the critical path of the next access
	} else {
		b.Open = true
	}
	b.BusyUntil = done
	return done, activated
}

// Preempt closes the bank (refresh, preventive refresh) and blocks it
// until busyUntil.
func (b *BankState) Preempt(busyUntil dram.TimePS) {
	b.Open = false
	if busyUntil > b.BusyUntil {
		b.BusyUntil = busyUntil
	}
}
