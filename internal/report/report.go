// Package report renders experiment results as aligned ASCII tables and
// series — the textual equivalent of the paper's figures. Every
// regenerator (bench, CLI, example) prints through this package so outputs
// are uniform and diffable.
package report

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// Table renders rows under headers with aligned columns.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// Num formats a float compactly (3 significant-ish digits).
func Num(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v != v: // NaN
		return "-"
	case abs(v) >= 1e5 || abs(v) < 1e-3:
		return fmt.Sprintf("%.2e", v)
	case abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// SignedPct formats a fractional delta with an explicit sign, the
// benchstat-style rendering of a relative change ("+3.1%", "-12.0%").
func SignedPct(v float64) string {
	if v != v { // NaN: no baseline to compare against
		return "~"
	}
	return fmt.Sprintf("%+.1f%%", 100*v)
}

// Box renders a five-number summary the way the paper's box-and-whiskers
// plots present distributions.
func Box(s stats.Summary) string {
	if s.N == 0 {
		return "no data"
	}
	return fmt.Sprintf("min=%s q1=%s med=%s q3=%s max=%s (n=%d)",
		Num(s.Min), Num(s.Q1), Num(s.Median), Num(s.Q3), Num(s.Max), s.N)
}

// Section renders a titled block.
func Section(title, body string) string {
	return fmt.Sprintf("== %s ==\n%s", title, body)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
