package report

// This file is the typed result model. Experiments used to merge their
// shards straight into pre-rendered strings; they now build a Doc — an
// ordered list of typed sections (tables, free-form findings, numeric
// series) plus run metadata — and the renderers below produce every
// transport from it: Text reproduces the legacy operator-facing report
// byte-for-byte (pinned by the golden suite), JSON is the stable
// canonical encoding served by the daemon, and CSV is the
// spreadsheet/pandas view mirroring the RowPress artifact's
// machine-readable figure datasets.

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Param is one (key, value) pair of run metadata. Params are a slice,
// not a map, so the canonical encoding has a deterministic order.
type Param struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// TableData is a rendered-value table: rows of formatted cells under
// headers. Cells are strings (formatted with Num/Pct/Box) so every
// transport agrees on the exact values the text report shows.
type TableData struct {
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// SeriesPoint is one (x, y) sample of a Series.
type SeriesPoint struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Series is a numeric (x, y) sequence — the figure-shaped view of a
// sweep for clients that want to re-plot rather than re-read a table.
type Series struct {
	XLabel string        `json:"x_label"`
	YLabel string        `json:"y_label"`
	Points []SeriesPoint `json:"points"`
}

// DocSection is one titled block of a Doc. Bodies compose in a fixed
// order: the table (if any), then note lines appended under the table,
// then free-form finding lines, then the series. Every body kind is
// optional; a section with only Findings is a prose block.
type DocSection struct {
	Title    string     `json:"title"`
	Table    *TableData `json:"table,omitempty"`
	Notes    []string   `json:"notes,omitempty"`
	Findings []string   `json:"findings,omitempty"`
	Series   *Series    `json:"series,omitempty"`
}

// Doc is one experiment's structured result document. Experiment,
// Title, and Params are stamped by core.PlanFor after the merge runs;
// merges only build Sections.
type Doc struct {
	Experiment string       `json:"experiment,omitempty"`
	Title      string       `json:"title,omitempty"`
	Params     []Param      `json:"params,omitempty"`
	Sections   []DocSection `json:"sections"`
}

// NewDoc builds a Doc from sections in order.
func NewDoc(sections ...DocSection) *Doc {
	return &Doc{Sections: sections}
}

// TableSection builds a table-bodied section; notes render as trailing
// lines under the table.
func TableSection(title string, headers []string, rows [][]string, notes ...string) DocSection {
	return DocSection{Title: title, Table: &TableData{Headers: headers, Rows: rows}, Notes: notes}
}

// FindingsSection builds a prose section of one line per finding.
func FindingsSection(title string, lines ...string) DocSection {
	return DocSection{Title: title, Findings: lines}
}

// Add appends sections and returns the Doc for chaining.
func (d *Doc) Add(sections ...DocSection) *Doc {
	d.Sections = append(d.Sections, sections...)
	return d
}

// text renders one section exactly as the legacy string path did:
// Section(title, body) with the body parts concatenated in model order.
func (s DocSection) text() string {
	var b strings.Builder
	if s.Table != nil {
		b.WriteString(Table(s.Table.Headers, s.Table.Rows))
	}
	for _, n := range s.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	for _, f := range s.Findings {
		b.WriteString(f)
		b.WriteByte('\n')
	}
	if s.Series != nil {
		for _, p := range s.Series.Points {
			fmt.Fprintf(&b, "%s %s\n", Num(p.X), Num(p.Y))
		}
	}
	return Section(s.Title, b.String())
}

// Text renders the document as the operator-facing report — the exact
// bytes the pre-Doc merge path produced (sections joined with a single
// newline, which reads as a blank line because table bodies end in one).
func Text(d *Doc) string {
	if d == nil {
		return ""
	}
	parts := make([]string, len(d.Sections))
	for i, s := range d.Sections {
		parts[i] = s.text()
	}
	return strings.Join(parts, "\n")
}

// JSON is the canonical encoding: compact, struct-field-ordered keys
// (encoding/json emits struct fields in declaration order, and the
// model holds no maps), trailing newline. Equal Docs encode to equal
// bytes, so the encoding is usable as a content address.
func JSON(d *Doc) ([]byte, error) {
	var b strings.Builder
	enc := json.NewEncoder(&b)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(d); err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}

// CSVEscape quotes a cell when it contains a separator, quote, or
// newline (RFC 4180).
func CSVEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

func csvRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(CSVEscape(c))
	}
	b.WriteByte('\n')
}

// CSV renders the document for spreadsheet/pandas ingestion: one CSV
// block per table or series section (header row then data rows),
// sections separated by a blank line, with document and section
// metadata on '#'-prefixed comment lines (pandas: comment='#'). Notes
// and findings become comment lines too, so no report content is lost.
func CSV(d *Doc) string {
	if d == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# experiment: %s\n", d.Experiment)
	if d.Title != "" {
		fmt.Fprintf(&b, "# title: %s\n", d.Title)
	}
	for _, p := range d.Params {
		fmt.Fprintf(&b, "# param: %s=%s\n", p.Key, p.Value)
	}
	for i, s := range d.Sections {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "# section: %s\n", s.Title)
		if s.Table != nil {
			csvRow(&b, s.Table.Headers)
			for _, r := range s.Table.Rows {
				csvRow(&b, r)
			}
		}
		for _, n := range s.Notes {
			fmt.Fprintf(&b, "# note: %s\n", n)
		}
		for _, f := range s.Findings {
			fmt.Fprintf(&b, "# finding: %s\n", f)
		}
		if s.Series != nil {
			csvRow(&b, []string{s.Series.XLabel, s.Series.YLabel})
			for _, p := range s.Series.Points {
				fmt.Fprintf(&b, "%g,%g\n", p.X, p.Y)
			}
		}
	}
	return b.String()
}
