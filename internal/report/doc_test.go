package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// sampleDoc exercises every section body kind the model supports:
// table, table+notes, findings, and series.
func sampleDoc() *Doc {
	d := NewDoc(
		TableSection("Plain table", []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}}),
		TableSection("Table with note", []string{"k"}, [][]string{{"v"}}, "paper: reference values"),
		FindingsSection("Finding block", "line one", "line two"),
		DocSection{Title: "Series block", Series: &Series{
			XLabel: "tAggON", YLabel: "ACmin",
			Points: []SeriesPoint{{X: 1, Y: 100}, {X: 2, Y: 50.5}},
		}},
	)
	d.Experiment = "sample"
	d.Title = "Sample document"
	d.Params = []Param{{Key: "scale", Value: "0.5"}}
	return d
}

// TestTextRendersEverySectionKind pins the exact text rendering of each
// body type: Section(title, body) blocks joined by one newline, tables
// via the aligned Table renderer, notes/findings one line each, series
// as "x y" Num-formatted lines.
func TestTextRendersEverySectionKind(t *testing.T) {
	want := "== Plain table ==\n" +
		Table([]string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}}) +
		"\n== Table with note ==\n" +
		Table([]string{"k"}, [][]string{{"v"}}) +
		"paper: reference values\n" +
		"\n== Finding block ==\n" +
		"line one\nline two\n" +
		"\n== Series block ==\n" +
		"1.00 100\n2.00 50.50\n"
	if got := Text(sampleDoc()); got != want {
		t.Fatalf("text rendering:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestTextNilAndEmpty(t *testing.T) {
	if Text(nil) != "" {
		t.Fatal("nil doc should render empty")
	}
	if Text(NewDoc()) != "" {
		t.Fatal("sectionless doc should render empty")
	}
}

// TestCSVRendersEverySectionKind: metadata and prose on '#' comment
// lines, one CSV block per table/series section, blank line between
// sections.
func TestCSVRendersEverySectionKind(t *testing.T) {
	want := "# experiment: sample\n" +
		"# title: Sample document\n" +
		"# param: scale=0.5\n" +
		"# section: Plain table\n" +
		"a,b\n1,2\n3,4\n" +
		"\n# section: Table with note\n" +
		"k\nv\n# note: paper: reference values\n" +
		"\n# section: Finding block\n" +
		"# finding: line one\n# finding: line two\n" +
		"\n# section: Series block\n" +
		"tAggON,ACmin\n1,100\n2,50.5\n"
	if got := CSV(sampleDoc()); got != want {
		t.Fatalf("csv rendering:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if CSV(nil) != "" {
		t.Fatal("nil doc should render empty CSV")
	}
}

func TestCSVEscape(t *testing.T) {
	for in, want := range map[string]string{
		"plain":      "plain",
		"a,b":        `"a,b"`,
		`say "hi"`:   `"say ""hi"""`,
		"two\nlines": "\"two\nlines\"",
	} {
		if got := CSVEscape(in); got != want {
			t.Errorf("CSVEscape(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestJSONCanonicalRoundTrip: deterministic bytes, lossless round trip,
// series points included.
func TestJSONCanonicalRoundTrip(t *testing.T) {
	d := sampleDoc()
	j1, err := JSON(d)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := JSON(d)
	if !bytes.Equal(j1, j2) {
		t.Fatal("encoding not deterministic")
	}
	var round Doc
	if err := json.Unmarshal(j1, &round); err != nil {
		t.Fatal(err)
	}
	j3, _ := JSON(&round)
	if !bytes.Equal(j1, j3) {
		t.Fatal("round trip changed the encoding")
	}
	if Text(&round) != Text(d) {
		t.Fatal("round trip changed the text rendering")
	}
	if !strings.Contains(string(j1), `"series":{"x_label":"tAggON"`) {
		t.Fatalf("series missing from JSON: %s", j1)
	}
}
