package report

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{
		{"1", "2"},
		{"333", "4"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.Contains(lines[0], "long-header") {
		t.Error("missing header")
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Error("missing rule")
	}
}

func TestNum(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1234567: "1.23e+06",
		123:     "123",
		1.5:     "1.50",
		0.25:    "0.2500",
		2.5e-7:  "2.50e-07",
	}
	for in, want := range cases {
		if got := Num(in); got != want {
			t.Errorf("Num(%v) = %q, want %q", in, got, want)
		}
	}
	if Num(math.NaN()) != "-" {
		t.Error("NaN should render as -")
	}
}

func TestPct(t *testing.T) {
	if Pct(0.123) != "12.3%" {
		t.Errorf("Pct = %s", Pct(0.123))
	}
}

func TestBox(t *testing.T) {
	s := stats.Describe([]float64{1, 2, 3, 4, 5})
	out := Box(s)
	for _, want := range []string{"min=1", "med=3", "max=5", "n=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("Box missing %q in %q", want, out)
		}
	}
	if Box(stats.Summary{}) != "no data" {
		t.Error("empty box")
	}
}

func TestSection(t *testing.T) {
	if !strings.HasPrefix(Section("T", "body"), "== T ==\n") {
		t.Error("section format")
	}
}
