package disturb

import (
	"bytes"
	"testing"

	"repro/internal/dram"
)

func filled(n int, b byte) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

func TestApplyFlipsNilData(t *testing.T) {
	m := testModel()
	if n := m.ApplyFlips(0, 1, nil, dram.NeighborData{}, dram.Exposure{PressAbove: 1e9}); n != 0 {
		t.Fatalf("nil data flipped %d bits", n)
	}
}

func TestApplyFlipsDeterministic(t *testing.T) {
	exp := dram.Exposure{PressAbove: 0.2, HammerBelow: 5e5}
	a := filled(1024, 0x55)
	b := filled(1024, 0x55)
	m1 := testModel()
	m2 := testModel()
	n1 := m1.ApplyFlips(0, 7, a, dram.NeighborData{}, exp)
	n2 := m2.ApplyFlips(0, 7, b, dram.NeighborData{}, exp)
	if n1 != n2 || !bytes.Equal(a, b) {
		t.Fatalf("nondeterministic flips: %d vs %d", n1, n2)
	}
	if n1 == 0 {
		t.Fatal("expected some flips under massive exposure")
	}
}

// TestPressFlipDirection: with all-true cells, press flips 1→0 only
// (Obsv. 8: RowPress pulls charge out of the victim).
func TestPressFlipDirection(t *testing.T) {
	m := testModel()
	data := filled(1024, 0xFF)
	orig := append([]byte(nil), data...)
	n := m.ApplyFlips(0, 3, data, dram.NeighborData{}, dram.Exposure{PressAbove: 1})
	if n == 0 {
		t.Fatal("no press flips at exposure 1s")
	}
	for i := range data {
		if data[i]&^orig[i] != 0 {
			t.Fatalf("byte %d gained bits under press: %08b -> %08b", i, orig[i], data[i])
		}
	}
}

// TestHammerFlipDirection: hammer charges cells, so 0→1 on true cells.
func TestHammerFlipDirection(t *testing.T) {
	m := testModel()
	data := filled(1024, 0x00)
	n := m.ApplyFlips(0, 3, data, dram.NeighborData{}, dram.Exposure{HammerAbove: 1e7})
	if n == 0 {
		t.Fatal("no hammer flips at 1e7 equivalent activations")
	}
	ones := 0
	for _, b := range data {
		for i := 0; i < 8; i++ {
			if b&(1<<i) != 0 {
				ones++
			}
		}
	}
	if ones != n {
		t.Fatalf("hammer flipped %d cells but %d ones appeared", n, ones)
	}
}

// TestPressNeedsChargedCells: an all-zero victim (RowStripe pattern) has no
// charged cells (all-true-cell die), so RowPress cannot flip anything —
// this is why RowStripe "cannot induce any bitflip for tAggON larger than
// 636 ns" in Fig. 19.
func TestPressNeedsChargedCells(t *testing.T) {
	m := testModel()
	data := filled(1024, 0x00)
	if n := m.ApplyFlips(0, 5, data, dram.NeighborData{}, dram.Exposure{PressAbove: 10}); n != 0 {
		t.Fatalf("press flipped %d bits of a fully discharged row", n)
	}
}

// TestHammerNeedsDischargedCells: symmetric statement for hammer.
func TestHammerNeedsDischargedCells(t *testing.T) {
	m := testModel()
	data := filled(1024, 0xFF)
	if n := m.ApplyFlips(0, 5, data, dram.NeighborData{}, dram.Exposure{HammerAbove: 1e8}); n != 0 {
		t.Fatalf("hammer flipped %d bits of a fully charged row", n)
	}
}

func TestFlipMonotoneInExposure(t *testing.T) {
	m := testModel()
	low := filled(1024, 0xFF)
	high := filled(1024, 0xFF)
	nLow := m.ApplyFlips(0, 9, low, dram.NeighborData{}, dram.Exposure{PressAbove: 0.02})
	nHigh := m.ApplyFlips(0, 9, high, dram.NeighborData{}, dram.Exposure{PressAbove: 0.5})
	if nLow > nHigh {
		t.Fatalf("more flips at lower exposure: %d > %d", nLow, nHigh)
	}
}

func TestRetentionFlips(t *testing.T) {
	m := testModel()
	// 4 s at 80 °C = 32 stress-seconds: the paper's retention test (§4.3).
	// Weak cells are sparse; aggregate across rows.
	total := 0
	for row := 0; row < 50; row++ {
		data := filled(1024, 0xFF)
		total += m.ApplyFlips(0, row, data, dram.NeighborData{}, dram.Exposure{Retention: 32})
	}
	if total == 0 {
		t.Fatal("no retention flips after 4s @ 80C equivalent across 50 rows")
	}
	// A 60 ms test window must NOT cause retention flips (the paper bounds
	// experiments within the refresh window to exclude retention effects).
	data2 := filled(1024, 0xFF)
	if n := m.ApplyFlips(0, 11, data2, dram.NeighborData{}, dram.Exposure{Retention: 0.06 * 8}); n != 0 {
		t.Fatalf("60ms window caused %d retention flips", n)
	}
}

// TestPopulationIndependence: press-vulnerable and hammer-vulnerable cells
// barely overlap (Obsv. 7).
func TestPopulationIndependence(t *testing.T) {
	m := testModel()
	pressSet := make(map[[2]int]bool)
	overlap, total := 0, 0
	for row := 0; row < 200; row++ {
		prof := m.profile(0, row)
		for _, c := range prof.press {
			pressSet[[2]int{c.col, int(c.bit)}] = true
		}
		for _, c := range prof.hammer {
			total++
			if pressSet[[2]int{c.col, int(c.bit)}] {
				overlap++
			}
		}
		clear(pressSet)
	}
	if total == 0 {
		t.Fatal("no hammer cells sampled")
	}
	frac := float64(overlap) / float64(total)
	if frac > 0.01 {
		t.Fatalf("press/hammer cell overlap %.4f, want <0.01", frac)
	}
}

func TestTrialJitterChangesMarginalCells(t *testing.T) {
	m := testModel()
	m.SetEvalTemperature(50)
	// Find an exposure that flips at least one cell, then check that across
	// trials the flip count varies for some row (marginal cells exist).
	varies := false
	for row := 0; row < 50 && !varies; row++ {
		counts := make(map[int]bool)
		for trial := uint64(1); trial <= 5; trial++ {
			m.SetTrial(trial)
			data := filled(1024, 0xFF)
			n := m.ApplyFlips(0, row, data, dram.NeighborData{}, dram.Exposure{PressAbove: 0.05})
			counts[n] = true
		}
		if len(counts) > 1 {
			varies = true
		}
	}
	m.SetTrial(0)
	if !varies {
		t.Fatal("trial jitter never changed any outcome across 50 rows")
	}
}

func TestAggressorCouplingAffectsFlips(t *testing.T) {
	m := testModel()
	m.SetEvalTemperature(50)
	// Same victim and exposure, neighbors charged vs discharged: coupling
	// must change the damage and may change flip counts. At minimum the
	// result must be deterministic and direction-correct.
	charged := filled(1024, 0xFF)
	discharged := filled(1024, 0x00)
	exp := dram.Exposure{PressAbove: 0.08, PressBelow: 0.08}

	v1 := filled(1024, 0xFF)
	n1 := m.ApplyFlips(0, 21, v1, dram.NeighborData{Above: charged, Below: charged}, exp)
	v2 := filled(1024, 0xFF)
	n2 := m.ApplyFlips(0, 21, v2, dram.NeighborData{Above: discharged, Below: discharged}, exp)
	// At 50 °C charged-aggressor coupling (1.35) > discharged (0.95).
	if n1 < n2 {
		t.Fatalf("charged-aggressor coupling should flip at least as many cells: %d < %d", n1, n2)
	}
}

func TestDoubleSidedHammerSuperAdditive(t *testing.T) {
	m := testModel()
	// N total activations split across two sides must beat N on one side
	// thanks to the cross boost.
	one := filled(1024, 0x00)
	both := filled(1024, 0x00)
	nOne := m.ApplyFlips(0, 33, one, dram.NeighborData{}, dram.Exposure{HammerAbove: 4e5})
	nBoth := m.ApplyFlips(0, 33, both, dram.NeighborData{}, dram.Exposure{HammerAbove: 2e5, HammerBelow: 2e5})
	if nBoth < nOne {
		t.Fatalf("double-sided hammer should dominate: %d < %d", nBoth, nOne)
	}
}
