// Package disturb implements the read-disturbance physics model at the
// heart of this RowPress reproduction. It provides dram.Disturber: per-cell
// RowPress, RowHammer, and retention-failure behaviour calibrated per die
// revision (see internal/chipgen for the calibrated parameter sets).
//
// # Model
//
// Each victim cell accumulates damage per aggressor activation
//
//	damage/act = hammerWeight(cell)·hammerKernel + pressWeight(cell)·pressKernel
//
// and flips once cumulative damage crosses the cell's threshold. Press,
// hammer, and retention-weak cells are independent sparse populations drawn
// from per-die log-normal distributions, so their overlaps are near zero —
// reproducing the paper's Obsv. 7 (< 0.013 % overlap with RowHammer,
// < 0.34 % with retention failures).
//
// The press kernel is ≈ linear in tAggON beyond an onset knee, which yields
// the paper's signature ACmin × tAggON ≈ const trend (log-log slope ≈ −1,
// Obsv. 3) and ACmin = 1 at tAggON ≈ tens of ms (Obsv. 2). The hammer
// kernel grows with tAggOFF and is insensitive to tAggON, matching the
// prior device-level studies the paper reconciles in §5.4.
package disturb

import (
	"fmt"

	"repro/internal/dram"
)

// ReferenceRowBits is the row size (in cells) the per-row cell-count
// parameters are quoted for: an 8 KiB DDR4 row. Models scale counts
// linearly when the simulated geometry uses smaller rows.
const ReferenceRowBits = 8192 * 8

// Params is the complete parameter set of the disturbance model for one
// die revision. All times are in seconds unless suffixed PS.
type Params struct {
	// RowHammer: cell thresholds are in units of "equivalent activations"
	// at reference conditions (tAggON = tRAS, tAggOFF = tRP, 50 °C,
	// distance 1, single-sided).
	HammerDistDecay    [dram.BlastRadius + 1]float64 // per-distance multiplier, index 1..3
	HammerOffTau       float64                       // off-time saturation constant (s)
	HammerOnBoostPerS  float64                       // small per-second boost for modest tAggON growth
	HammerOnBoostCapS  float64                       // tAggON beyond tRAS after which the boost stops growing
	HammerOnDecayTau   float64                       // long-tAggON decay constant (s)
	HammerCrossBoost   float64                       // double-sided super-additivity β
	HammerTempFactor30 float64                       // damage multiplier per +30 °C
	HammerCellsPerRow  float64                       // Poisson λ per reference row
	HammerLogMedian    float64                       // ln(median threshold) [activations]
	HammerLogSigma     float64
	HammerCplCharged   float64 // aggressor same-column bit charged
	HammerCplDischgd   float64

	// RowPress: cell thresholds are in seconds of accumulated effective
	// aggressor on-time at 50 °C, distance 1.
	PressKneeS        float64 // onset knee θ (s)
	PressTempFactor30 float64 // damage multiplier per +30 °C
	// Cross-side sub-additivity ρ: pressing from both sides is less
	// efficient per total activation than from one (the victim partially
	// recovers while the other aggressor holds the bank), so single-sided
	// RowPress overtakes double-sided once press dominates (Obsv. 13).
	PressCrossPenalty50 float64
	PressCrossPenalty80 float64
	PressDistDecay      [dram.BlastRadius + 1]float64
	PressCellsPerRow    float64
	PressLogMedian      float64 // ln(median K) [seconds]
	PressLogSigma       float64
	PressCplCharged50   float64 // aggressor-bit coupling at 50 °C
	PressCplDischgd50   float64
	PressCplCharged80   float64 // and at 80 °C (interpolated in between)
	PressCplDischgd80   float64

	// Retention: thresholds are in stress-seconds (wall seconds scaled by
	// RetentionAccel).
	RetCellsPerRow float64
	RetLogMedian   float64
	RetLogSigma    float64

	// Layout and noise.
	TrueCellFraction float64 // fraction of true cells (charged == logical 1)
	TrialJitter      float64 // per-trial log-threshold jitter σ (repeatability, App. E)
	// CellClusterProb chains vulnerable cells into the same 64-bit word
	// with this probability: weak cells are physically correlated, which
	// is why the paper observes up to 25 bitflips in a single 64-bit word
	// (§7.1, Fig. 25/26) — the property that defeats SEC-DED and Chipkill.
	CellClusterProb float64
}

// Validate reports the first implausible parameter, if any.
func (p Params) Validate() error {
	switch {
	case p.TrueCellFraction < 0 || p.TrueCellFraction > 1:
		return fmt.Errorf("disturb: TrueCellFraction %v outside [0,1]", p.TrueCellFraction)
	case p.HammerCrossBoost < 0:
		return fmt.Errorf("disturb: negative HammerCrossBoost")
	case p.PressKneeS < 0:
		return fmt.Errorf("disturb: negative PressKneeS")
	case p.PressCrossPenalty50 < 0 || p.PressCrossPenalty50 >= 1 ||
		p.PressCrossPenalty80 < 0 || p.PressCrossPenalty80 >= 1:
		return fmt.Errorf("disturb: PressCrossPenalty outside [0,1)")
	case p.HammerCellsPerRow < 0 || p.PressCellsPerRow < 0 || p.RetCellsPerRow < 0:
		return fmt.Errorf("disturb: negative cell density")
	case p.TrialJitter < 0:
		return fmt.Errorf("disturb: negative TrialJitter")
	case p.CellClusterProb < 0 || p.CellClusterProb >= 1:
		return fmt.Errorf("disturb: CellClusterProb outside [0,1)")
	}
	return nil
}

// tempInterp interpolates a coupling value between its 50 °C and 80 °C
// calibration points, clamping outside that range.
func tempInterp(v50, v80, tempC float64) float64 {
	switch {
	case tempC <= 50:
		return v50
	case tempC >= 80:
		return v80
	default:
		f := (tempC - 50) / 30
		return v50 + (v80-v50)*f
	}
}
