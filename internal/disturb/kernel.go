package disturb

import (
	"math"

	"repro/internal/dram"
)

// Reference conditions for hammer-threshold normalization: the conventional
// RowHammer access pattern (tAggON = tRAS, bank precharged for exactly tRP).
var (
	refOnS  = dram.Seconds(36 * dram.Nanosecond)
	refOffS = dram.Seconds(15 * dram.Nanosecond)
)

// hammerKernel returns the per-activation RowHammer damage at distance 1,
// normalized to 1.0 at reference conditions and 50 °C.
func (p Params) hammerKernel(onS, offS, tempC float64) float64 {
	// Off-time dependence: injected charge needs off-time to act on the
	// victim (trap recombination, §5.4 footnote 19). Saturating in offS.
	off := offS / (offS + p.HammerOffTau)
	offRef := refOffS / (refOffS + p.HammerOffTau)
	k := off / offRef

	// Mild boost for slightly longer row-open times (the slow ACmin drop
	// between 36 ns and ~256 ns of Obsv. 3), saturating quickly …
	extraOn := onS - refOnS
	if extraOn > 0 {
		boost := extraOn
		if boost > p.HammerOnBoostCapS {
			boost = p.HammerOnBoostCapS
		}
		k *= 1 + p.HammerOnBoostPerS*boost
		// … followed by a slow decay for very long open times: pure hammer
		// fades in the press regime.
		if p.HammerOnDecayTau > 0 {
			k *= math.Exp(-extraOn / p.HammerOnDecayTau)
		}
	}

	// Temperature: RowHammer is only weakly temperature dependent
	// (very differently from RowPress, Takeaway 3).
	k *= math.Pow(p.HammerTempFactor30, (tempC-50)/30)
	return k
}

// pressKernel returns the per-activation RowPress damage (in effective
// on-seconds) at distance 1 and 50 °C reference, before recovery.
//
//	press(t) = (t−tRAS)² / ((t−tRAS) + θ)
//
// Sub-linear below the knee θ, asymptotically linear above it: in the
// linear regime AC × tAggON ≈ const gives the −1 log-log ACmin slope.
func (p Params) pressKernel(onS float64) float64 {
	extra := onS - refOnS
	if extra <= 0 {
		return 0
	}
	return extra * extra / (extra + p.PressKneeS)
}

// pressTempFactor scales press damage with temperature (Obsv. 9/11).
func (p Params) pressTempFactor(tempC float64) float64 {
	return math.Pow(p.PressTempFactor30, (tempC-50)/30)
}

// HammerIncrement implements dram.Disturber.
func (m *Model) HammerIncrement(onTime, offTime dram.TimePS, tempC float64, distance int) float64 {
	if distance < 1 || distance > dram.BlastRadius {
		return 0
	}
	return m.p.hammerKernel(dram.Seconds(onTime), dram.Seconds(offTime), tempC) *
		m.p.HammerDistDecay[distance]
}

// PressIncrement implements dram.Disturber. Press damage depends on the
// row-open time only — a single long activation presses exactly as hard as
// its on-time dictates, which is how ACmin = 1 arises (Obsv. 2). The
// off-time argument is accepted for interface symmetry but unused; the
// double-sided inefficiency is a cross-side interaction applied at flip
// evaluation.
func (m *Model) PressIncrement(onTime, _ dram.TimePS, tempC float64, distance int) float64 {
	if distance < 1 || distance > dram.BlastRadius {
		return 0
	}
	return m.p.pressKernel(dram.Seconds(onTime)) *
		m.p.pressTempFactor(tempC) *
		m.p.PressDistDecay[distance]
}

// RetentionAccel implements dram.Disturber: retention leakage roughly
// doubles every 10 °C.
func (m *Model) RetentionAccel(tempC float64) float64 {
	return math.Pow(2, (tempC-50)/10)
}
