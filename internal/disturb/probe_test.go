package disturb

import (
	"testing"
	"testing/quick"

	"repro/internal/dram"
)

// TestWouldFlipMatchesApplyFlips is the pure-probe contract: for arbitrary
// exposures, rows, and data patterns, WouldFlip must agree exactly with
// ApplyFlips(...) > 0 and must not touch the data.
func TestWouldFlipMatchesApplyFlips(t *testing.T) {
	geo := dram.Geometry{Banks: 2, RowsPerBank: 64, RowBytes: 256}
	m := NewModel(DefaultParams(), geo, 7)
	f := func(seed uint64, scale float64) bool {
		if scale < 0 {
			scale = -scale
		}
		row := int(seed % 60)
		bank := int((seed / 61) % 2)
		fill := byte(seed)
		data := make([]byte, geo.RowBytes)
		dram.Fill(data, fill)
		nbData := make([]byte, geo.RowBytes)
		dram.Fill(nbData, ^fill)
		nb := dram.NeighborData{Above: nbData}
		if seed%3 == 0 {
			nb.Below, nb.Above = nbData, nil
		}
		// Exposures spanning sub- and super-threshold regimes.
		exp := dram.Exposure{
			HammerAbove: scale * float64(seed%5) * 1e5,
			HammerBelow: scale * float64((seed/5)%4) * 1e5,
			PressAbove:  scale * float64((seed/7)%3) * 0.05,
			PressBelow:  scale * float64((seed/11)%3) * 0.05,
			Retention:   scale * float64((seed/13)%2) * 50,
		}

		before := append([]byte(nil), data...)
		would := m.WouldFlip(bank, row, data, nb, exp)
		for i := range data {
			if data[i] != before[i] {
				t.Logf("WouldFlip mutated data at byte %d", i)
				return false
			}
		}
		applied := m.ApplyFlips(bank, row, data, nb, exp)
		if would != (applied > 0) {
			t.Logf("bank=%d row=%d exp=%+v: WouldFlip=%v but ApplyFlips=%d", bank, row, would, exp, applied)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestWouldFlipNilData mirrors ApplyFlips' nil-row contract.
func TestWouldFlipNilData(t *testing.T) {
	geo := dram.Geometry{Banks: 1, RowsPerBank: 8, RowBytes: 64}
	m := NewModel(DefaultParams(), geo, 1)
	if m.WouldFlip(0, 0, nil, dram.NeighborData{}, dram.Exposure{HammerAbove: 1e12}) {
		t.Fatal("nil data must never flip")
	}
}
