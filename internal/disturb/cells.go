package disturb

import (
	"math"
	"sort"

	"repro/internal/stats"
)

// Hash-stream identifiers keep the three vulnerable-cell populations (and
// the cell-orientation layout) statistically independent: a cell being weak
// to RowPress says nothing about its RowHammer or retention behaviour,
// which is exactly the paper's Obsv. 7.
const (
	streamPress uint64 = iota + 1
	streamHammer
	streamRetention
	streamOrientation
	streamCount
)

// vulnCell is one vulnerable cell of a row for one failure mechanism.
type vulnCell struct {
	col       int     // byte offset in the row
	bit       uint8   // bit index within the byte
	threshold float64 // damage threshold in mechanism units
	trueCell  bool    // charged state encodes logical 1
	hash      uint64  // identity hash (trial jitter derivation)
}

// rowProfile caches one row's vulnerable cells, each slice sorted by
// ascending threshold so that evaluation can stop early.
type rowProfile struct {
	press     []vulnCell
	hammer    []vulnCell
	retention []vulnCell
}

// sampleRow deterministically generates the vulnerable-cell populations of
// (bank, row) from the model seed. The same (seed, bank, row) always yields
// the same cells.
func (m *Model) sampleRow(bank, row int) *rowProfile {
	prof := &rowProfile{}
	scale := float64(m.rowBits) / ReferenceRowBits
	prof.press = m.samplePopulation(bank, row, streamPress,
		m.p.PressCellsPerRow*scale, m.p.PressLogMedian, m.p.PressLogSigma)
	prof.hammer = m.samplePopulation(bank, row, streamHammer,
		m.p.HammerCellsPerRow*scale, m.p.HammerLogMedian, m.p.HammerLogSigma)
	prof.retention = m.samplePopulation(bank, row, streamRetention,
		m.p.RetCellsPerRow*scale, m.p.RetLogMedian, m.p.RetLogSigma)
	return prof
}

func (m *Model) samplePopulation(bank, row int, stream uint64, lambda, logMedian, logSigma float64) []vulnCell {
	base := stats.Combine(m.seed, stream, uint64(bank), uint64(row))
	rng := stats.NewRNG(base)
	n := rng.Poisson(lambda)
	if n == 0 {
		return nil
	}
	cells := make([]vulnCell, 0, n)
	seen := make(map[uint32]bool, n)
	prevWord := -1
	prevLogThreshold := 0.0
	for i := 0; i < n; i++ {
		h := stats.Combine(base, uint64(i))
		var col int
		var logThreshold float64
		// Weak cells cluster spatially (shared defects): with
		// CellClusterProb the next cell lands in the same 64-bit word as
		// the previous one AND inherits a correlated threshold, so whole
		// clusters flip together — producing the multi-bit words of
		// Fig. 25/26 that defeat SEC-DED and Chipkill.
		if prevWord >= 0 && stats.UnitFromHash(stats.Mix64(h^0xC1)) < m.p.CellClusterProb {
			col = prevWord + int(stats.Mix64(h^0xC2)%8)
			logThreshold = prevLogThreshold + 0.25*logSigma*stats.NormalFromHash(stats.Mix64(h^0xC3))
		} else {
			col = int(stats.Mix64(h) % uint64(m.rowBytes))
			logThreshold = logMedian + logSigma*stats.NormalFromHash(h)
		}
		prevWord = col &^ 7
		prevLogThreshold = logThreshold
		bit := uint8(stats.Mix64(h^0xBEEF) % 8)
		key := uint32(col)<<3 | uint32(bit)
		if seen[key] {
			continue // same physical cell: don't double-count
		}
		seen[key] = true
		cells = append(cells, vulnCell{
			col:       col,
			bit:       bit,
			threshold: expNat(logThreshold),
			trueCell:  m.cellIsTrue(bank, row, col, bit),
			hash:      h,
		})
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].threshold < cells[j].threshold })
	return cells
}

// cellIsTrue samples the true/anti-cell orientation of a cell. The layout
// is a property of the die's circuit design, independent of which failure
// population a cell belongs to.
func (m *Model) cellIsTrue(bank, row, col int, bit uint8) bool {
	h := stats.Combine(m.seed, streamOrientation, uint64(bank), uint64(row), uint64(col), uint64(bit))
	return stats.UnitFromHash(h) < m.p.TrueCellFraction
}

// profile returns the cached (or freshly sampled) profile of a row.
func (m *Model) profile(bank, row int) *rowProfile {
	key := uint64(bank)<<40 | uint64(uint32(row))
	if prof, ok := m.cache[key]; ok {
		return prof
	}
	prof := m.sampleRow(bank, row)
	m.cache[key] = prof
	return prof
}

// effThreshold applies the per-trial jitter to a cell's threshold: cells
// close to the exposure boundary flip in only some of an experiment's
// repetitions, giving the partial repeatability of Appendix E.
func (m *Model) effThreshold(c vulnCell) float64 {
	if m.p.TrialJitter == 0 || m.trial == 0 {
		return c.threshold
	}
	z := stats.NormalFromHash(stats.Combine(c.hash, m.trial))
	return c.threshold * expFast(m.p.TrialJitter*z)
}

// expFast is a cheap exp approximation adequate for jitter factors near 1
// (|x| ≲ 1): a 4-term Taylor series. Exactness is irrelevant here — only
// determinism and monotonicity matter.
func expFast(x float64) float64 {
	return 1 + x*(1+x*(0.5+x*(1.0/6+x/24)))
}

// expNat is math.Exp under a local name (keeps the sampling hot path's
// imports obvious).
func expNat(x float64) float64 { return math.Exp(x) }
