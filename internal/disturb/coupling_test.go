package disturb

import (
	"testing"

	"repro/internal/dram"
)

// TestCouplingSignFlipsWithTemperature captures the Fig. 19 surprise: a
// charged same-column aggressor bit helps RowPress at 50 °C (CSI beats CB)
// but hurts at 80 °C (CSI much worse) — the model interpolates per-die
// coupling between its two calibration points.
func TestCouplingSignFlipsWithTemperature(t *testing.T) {
	p := DefaultParams()
	if !(p.PressCplCharged50 > p.PressCplDischgd50) {
		t.Fatal("at 50C the charged-aggressor coupling should dominate")
	}
	if !(p.PressCplCharged80 < p.PressCplDischgd80) {
		t.Fatal("at 80C the charged-aggressor coupling should be weaker")
	}
	geo := dram.Geometry{Banks: 1, RowsPerBank: 64, RowBytes: 8192}
	m := NewModel(p, geo, 42)

	flipsWith := func(tempC float64, nbByte byte) int {
		m.SetEvalTemperature(tempC)
		nb := filled(8192, nbByte)
		total := 0
		for row := 0; row < 40; row++ {
			data := filled(8192, 0xFF)
			total += m.ApplyFlips(0, row, data,
				dram.NeighborData{Above: nb, Below: nb}, dram.Exposure{PressAbove: 0.05})
		}
		return total
	}

	// At 50 °C charged neighbors amplify; at 80 °C they attenuate.
	if c, d := flipsWith(50, 0xFF), flipsWith(50, 0x00); c < d {
		t.Errorf("50C: charged neighbors flipped %d < discharged %d", c, d)
	}
	if c, d := flipsWith(80, 0xFF), flipsWith(80, 0x00); c > d {
		t.Errorf("80C: charged neighbors flipped %d > discharged %d", c, d)
	}
	m.SetEvalTemperature(50)
}

func TestProfileCacheStable(t *testing.T) {
	m := testModel()
	a := m.profile(0, 7)
	b := m.profile(0, 7)
	if a != b {
		t.Fatal("profile not cached")
	}
	m2 := testModel()
	c := m2.profile(0, 7)
	if len(a.press) != len(c.press) || len(a.hammer) != len(c.hammer) {
		t.Fatal("profiles differ across identical models")
	}
	for i := range a.press {
		if a.press[i] != c.press[i] {
			t.Fatal("press cells differ across identical models")
		}
	}
}

func TestDifferentSeedsDifferentCells(t *testing.T) {
	geo := dram.Geometry{Banks: 1, RowsPerBank: 64, RowBytes: 8192}
	a := NewModel(DefaultParams(), geo, 1)
	b := NewModel(DefaultParams(), geo, 2)
	same := 0
	total := 0
	for row := 0; row < 20; row++ {
		pa, pb := a.profile(0, row), b.profile(0, row)
		total += len(pa.press)
		set := map[[2]int]bool{}
		for _, c := range pb.press {
			set[[2]int{c.col, int(c.bit)}] = true
		}
		for _, c := range pa.press {
			if set[[2]int{c.col, int(c.bit)}] {
				same++
			}
		}
	}
	if total == 0 {
		t.Fatal("no cells")
	}
	if float64(same)/float64(total) > 0.05 {
		t.Fatalf("different modules share %d/%d press cells", same, total)
	}
}

func TestAntiCellOrientationFraction(t *testing.T) {
	p := DefaultParams()
	p.TrueCellFraction = 0.25
	geo := dram.Geometry{Banks: 1, RowsPerBank: 64, RowBytes: 8192}
	m := NewModel(p, geo, 9)
	trueCells, total := 0, 0
	for row := 0; row < 50; row++ {
		for _, c := range m.profile(0, row).press {
			total++
			if c.trueCell {
				trueCells++
			}
		}
	}
	if total < 50 {
		t.Skip("too few cells sampled")
	}
	frac := float64(trueCells) / float64(total)
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("true-cell fraction = %.2f, want ≈0.25", frac)
	}
}

func TestSetTrialZeroDisablesJitter(t *testing.T) {
	m := testModel()
	m.SetTrial(0)
	a := filled(8192, 0xFF)
	b := filled(8192, 0xFF)
	n1 := m.ApplyFlips(0, 3, a, dram.NeighborData{}, dram.Exposure{PressAbove: 0.05})
	m.SetTrial(0)
	n2 := m.ApplyFlips(0, 3, b, dram.NeighborData{}, dram.Exposure{PressAbove: 0.05})
	if n1 != n2 {
		t.Fatal("trial 0 must be deterministic")
	}
}

// TestCellClustering: vulnerable cells chain into shared 64-bit words with
// correlated thresholds — the substrate of the paper's multi-bit-word ECC
// analysis (§7.1).
func TestCellClustering(t *testing.T) {
	m := testModel()
	multi := 0
	for row := 0; row < 100; row++ {
		words := map[int]int{}
		for _, c := range m.profile(0, row).press {
			words[c.col/8]++
		}
		for _, n := range words {
			if n >= 3 {
				multi++
			}
		}
	}
	if multi == 0 {
		t.Fatal("no 3+-cell words across 100 rows; clustering not effective")
	}
}

func TestCellClusterProbValidated(t *testing.T) {
	p := DefaultParams()
	p.CellClusterProb = 1.0
	if err := p.Validate(); err == nil {
		t.Fatal("CellClusterProb=1 should be invalid")
	}
}

func TestNoDuplicateCells(t *testing.T) {
	m := testModel()
	for row := 0; row < 50; row++ {
		seen := map[[2]int]bool{}
		for _, c := range m.profile(0, row).press {
			k := [2]int{c.col, int(c.bit)}
			if seen[k] {
				t.Fatalf("row %d: duplicate cell %v", row, k)
			}
			seen[k] = true
		}
	}
}
