package disturb

import "math"

// DefaultParams returns a representative calibrated parameter set (close to
// the Mfr. S 8Gb C-die of the paper). internal/chipgen derives the full
// per-die-revision catalogue from it.
//
// Calibration anchors (paper values in parentheses):
//   - median per-cell press threshold K exp(−1.92) ≈ 146 ms, σ = 0.57, so a
//     row's minimum K lands near 47 ms mean / 12 ms min across a tested
//     population (Table 5: tAggONmin @AC=1 ≈ 47.3 ms avg, 12.4 ms min);
//   - ACmin @ tAggON = 7.8 µs ≈ K/7.2 µs → ≈ 6.5 K mean (Table 5: 6.1 K);
//   - press temperature factor 1.8× per 30 °C (Obsv. 9: ACmin at 80 °C is
//     0.55× of 50 °C for Mfr. S);
//   - hammer thresholds median exp(13.8) ≈ 1 M activations, σ = 0.7
//     (Table 5: ACmin @36 ns ≈ 110–280 K avg, 24–47 K min).
func DefaultParams() Params {
	return Params{
		HammerDistDecay:    [4]float64{0, 1, 0.015, 0.0008},
		HammerOffTau:       30e-9,
		HammerOnBoostPerS:  1.2e6,
		HammerOnBoostCapS:  300e-9,
		HammerOnDecayTau:   3e-6,
		HammerCrossBoost:   0.75,
		HammerTempFactor30: 1.05,
		HammerCellsPerRow:  48,
		HammerLogMedian:    math.Log(1.0e6),
		HammerLogSigma:     0.7,
		HammerCplCharged:   1.25,
		HammerCplDischgd:   0.8,

		PressKneeS:          640e-9,
		PressCrossPenalty50: 0.25,
		PressCrossPenalty80: 0.40,
		PressTempFactor30:   1.8,
		PressDistDecay:      [4]float64{0, 1, 0.01, 0.0005},
		PressCellsPerRow:    40,
		PressLogMedian:      math.Log(0.146),
		PressLogSigma:       0.57,
		PressCplCharged50:   1.35,
		PressCplDischgd50:   0.95,
		PressCplCharged80:   0.55,
		PressCplDischgd80:   1.0,

		RetCellsPerRow: 30,
		RetLogMedian:   math.Log(64),
		RetLogSigma:    0.8,

		TrueCellFraction: 1.0,
		TrialJitter:      0.05,
		CellClusterProb:  0.55,
	}
}
