package disturb

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dram"
)

func testModel() *Model {
	geo := dram.Geometry{Banks: 2, RowsPerBank: 256, RowBytes: 1024}
	return NewModel(DefaultParams(), geo, 0xD1E5)
}

func TestPressKernelZeroBelowTRAS(t *testing.T) {
	m := testModel()
	if got := m.PressIncrement(36*dram.Nanosecond, 15*dram.Nanosecond, 50, 1); got != 0 {
		t.Fatalf("press at tRAS = %v, want 0", got)
	}
	if got := m.PressIncrement(10*dram.Nanosecond, 15*dram.Nanosecond, 50, 1); got != 0 {
		t.Fatalf("press below tRAS = %v, want 0", got)
	}
}

func TestPressKernelMonotonicInOnTime(t *testing.T) {
	m := testModel()
	f := func(a, b uint32) bool {
		ta := 36*dram.Nanosecond + dram.TimePS(a%1000000)*dram.Nanosecond
		tb := 36*dram.Nanosecond + dram.TimePS(b%1000000)*dram.Nanosecond
		if ta > tb {
			ta, tb = tb, ta
		}
		return m.PressIncrement(ta, 15*dram.Nanosecond, 50, 1) <=
			m.PressIncrement(tb, 15*dram.Nanosecond, 50, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPressKernelAsymptoticallyLinear(t *testing.T) {
	// Beyond the knee, damage/act ∝ tAggON, which is exactly the paper's
	// ACmin×tAggON ≈ const observation (log-log slope −1, Obsv. 3).
	m := testModel()
	p1 := m.PressIncrement(7800*dram.Nanosecond, 15*dram.Nanosecond, 50, 1)
	p2 := m.PressIncrement(70200*dram.Nanosecond, 15*dram.Nanosecond, 50, 1)
	ratio := p2 / p1
	if ratio < 8.5 || ratio > 9.8 { // 70.2/7.8 = 9, ±10% for the knee
		t.Fatalf("press ratio 70.2us/7.8us = %v, want ≈9", ratio)
	}
}

func TestPressCrossSideSubAdditive(t *testing.T) {
	// The same total press exposure split across both sides flips no more
	// (and typically fewer) cells than delivered single-sided — the root of
	// Obsv. 13: single-sided RowPress overtakes double-sided at large
	// tAggON.
	m := testModel()
	single := filled(1024, 0xFF)
	double := filled(1024, 0xFF)
	nSingle := m.ApplyFlips(0, 77, single, dram.NeighborData{}, dram.Exposure{PressAbove: 0.12})
	nDouble := m.ApplyFlips(0, 77, double, dram.NeighborData{}, dram.Exposure{PressAbove: 0.06, PressBelow: 0.06})
	if nDouble > nSingle {
		t.Fatalf("double-sided press flipped more: %d > %d", nDouble, nSingle)
	}
}

func TestPressTemperatureScaling(t *testing.T) {
	m := testModel()
	on := 7800 * dram.Nanosecond
	p50 := m.PressIncrement(on, 15*dram.Nanosecond, 50, 1)
	p80 := m.PressIncrement(on, 15*dram.Nanosecond, 80, 1)
	ratio := p80 / p50
	want := m.Params().PressTempFactor30
	if math.Abs(ratio-want) > 0.05*want {
		t.Fatalf("press 80C/50C = %v, want ≈%v", ratio, want)
	}
	// Monotone in temperature between and beyond calibration points.
	p65 := m.PressIncrement(on, 15*dram.Nanosecond, 65, 1)
	if !(p50 < p65 && p65 < p80) {
		t.Fatalf("press not monotone in T: %v %v %v", p50, p65, p80)
	}
}

func TestHammerKernelReferenceIsUnity(t *testing.T) {
	m := testModel()
	got := m.HammerIncrement(36*dram.Nanosecond, 15*dram.Nanosecond, 50, 1)
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("hammer at reference = %v, want 1", got)
	}
}

func TestHammerKernelGrowsWithOffTime(t *testing.T) {
	// Prior device-level works: read disturbance worsens with tAggOFF.
	m := testModel()
	h1 := m.HammerIncrement(36*dram.Nanosecond, 15*dram.Nanosecond, 50, 1)
	h2 := m.HammerIncrement(36*dram.Nanosecond, 255*dram.Nanosecond, 50, 1)
	h3 := m.HammerIncrement(36*dram.Nanosecond, 6*dram.Microsecond, 50, 1)
	if !(h1 < h2 && h2 < h3) {
		t.Fatalf("hammer not monotone in off time: %v %v %v", h1, h2, h3)
	}
}

func TestHammerKernelFadesAtLargeOnTime(t *testing.T) {
	m := testModel()
	h36 := m.HammerIncrement(36*dram.Nanosecond, 15*dram.Nanosecond, 50, 1)
	h78 := m.HammerIncrement(7800*dram.Nanosecond, 15*dram.Nanosecond, 50, 1)
	if h78 > 0.2*h36 {
		t.Fatalf("hammer at 7.8us = %v, should fade well below %v", h78, h36)
	}
}

func TestHammerMildBoostAtSmallOnTime(t *testing.T) {
	// The slow ACmin reduction between 36 ns and ~256 ns (Obsv. 3: only
	// ~1.17x at 186 ns) comes from a mild hammer boost.
	m := testModel()
	h36 := m.HammerIncrement(36*dram.Nanosecond, 15*dram.Nanosecond, 50, 1)
	h186 := m.HammerIncrement(186*dram.Nanosecond, 15*dram.Nanosecond, 50, 1)
	ratio := h186 / h36
	if ratio < 1.05 || ratio > 1.35 {
		t.Fatalf("hammer boost at 186ns = %v, want mild (1.05..1.35)", ratio)
	}
}

func TestDistanceDecay(t *testing.T) {
	m := testModel()
	on, off := 7800*dram.Nanosecond, 15*dram.Nanosecond
	for _, inc := range []func(dram.TimePS, dram.TimePS, float64, int) float64{
		m.PressIncrement, m.HammerIncrement,
	} {
		d1 := inc(on, off, 50, 1)
		d2 := inc(on, off, 50, 2)
		d3 := inc(on, off, 50, 3)
		if !(d1 > d2 && d2 > d3 && d3 > 0) {
			t.Fatalf("distance decay broken: %v %v %v", d1, d2, d3)
		}
		if inc(on, off, 50, 0) != 0 || inc(on, off, 50, 4) != 0 {
			t.Fatal("out-of-radius distances must be 0")
		}
	}
}

func TestRetentionAccelDoublesPer10C(t *testing.T) {
	m := testModel()
	if got := m.RetentionAccel(50); math.Abs(got-1) > 1e-12 {
		t.Fatalf("accel(50) = %v", got)
	}
	if got := m.RetentionAccel(80); math.Abs(got-8) > 1e-9 {
		t.Fatalf("accel(80) = %v, want 8", got)
	}
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := good
	bad.TrueCellFraction = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("TrueCellFraction 1.5 should be invalid")
	}
	bad = good
	bad.PressKneeS = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative knee should be invalid")
	}
	bad = good
	bad.HammerCellsPerRow = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative density should be invalid")
	}
}
