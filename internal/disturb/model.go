package disturb

import (
	"math"

	"repro/internal/dram"
)

// Model implements dram.Disturber for one module. It is deterministic:
// cell populations derive from (seed, bank, row) hashes, and evaluation is
// pure given the accumulated exposure. Not safe for concurrent use (each
// module owns its model).
type Model struct {
	p        Params
	seed     uint64
	rowBytes int
	rowBits  int
	tempC    float64 // evaluation temperature for coupling interpolation
	trial    uint64  // per-trial jitter salt; 0 = no jitter
	cache    map[uint64]*rowProfile
}

var (
	_ dram.Disturber  = (*Model)(nil)
	_ dram.FlipProber = (*Model)(nil)
)

// NewModel builds a model with the given parameters for a module with the
// given geometry. seed identifies the individual module (chip-to-chip
// variation). It panics on invalid parameters — a calibration bug, not a
// runtime condition.
func NewModel(p Params, geo dram.Geometry, seed uint64) *Model {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Model{
		p:        p,
		seed:     seed,
		rowBytes: geo.RowBytes,
		rowBits:  geo.BitsPerRow(),
		tempC:    50,
		cache:    make(map[uint64]*rowProfile),
	}
}

// Params returns the model's parameter set.
func (m *Model) Params() Params { return m.p }

// SetTrial selects the repetition-jitter salt. Experiments that repeat a
// measurement (the paper repeats every ACmin search five times) change the
// trial between repetitions; trial 0 disables jitter.
func (m *Model) SetTrial(trial uint64) { m.trial = trial }

// SetEvalTemperature tells the model the chip temperature to use for
// temperature-dependent data couplings during flip evaluation. (Damage
// kernels receive temperature explicitly per activation; coupling is
// evaluated when flips materialize.)
func (m *Model) SetEvalTemperature(tempC float64) { m.tempC = tempC }

// charged reports whether the stored bit leaves the cell's capacitor
// charged, given the cell orientation (footnote 15: true cell ⇒ 1 is
// charged; anti cell ⇒ 0 is charged).
func charged(bitSet, trueCell bool) bool { return bitSet == trueCell }

func bitOf(data []byte, col int, bit uint8) bool {
	return data[col]&(1<<bit) != 0
}

func setBit(data []byte, col int, bit uint8, v bool) {
	if v {
		data[col] |= 1 << bit
	} else {
		data[col] &^= 1 << bit
	}
}

// neighborBit reads the same-column bit of a neighbor row; ok is false when
// the neighbor's contents are unknown.
func neighborBit(nb []byte, col int, bit uint8) (val, ok bool) {
	if nb == nil || col >= len(nb) {
		return false, false
	}
	return bitOf(nb, col, bit), true
}

// ApplyFlips implements dram.Disturber. It evaluates the three mechanisms
// against the row's cached vulnerable-cell populations and mutates data in
// place.
func (m *Model) ApplyFlips(bank, row int, data []byte, nb dram.NeighborData, exp dram.Exposure) int {
	if data == nil {
		return 0
	}
	prof := m.profile(bank, row)
	flips := 0
	flips += m.applyPress(prof, data, nb, exp, true)
	flips += m.applyHammer(prof, data, nb, exp, true)
	flips += m.applyRetention(prof, data, exp, true)
	return flips
}

// WouldFlip reports whether ApplyFlips would flip at least one cell, as a
// pure function: data is only read, no module or model state changes, and
// evaluation stops at the first crossing cell. Searches probe candidate
// exposures through it without perturbing the measurement — the predicate
// agrees exactly with ApplyFlips(...) > 0 on the same inputs (press flips
// are evaluated first in both, so the press→hammer data interplay inside a
// committing evaluation can never change the any-flip answer).
func (m *Model) WouldFlip(bank, row int, data []byte, nb dram.NeighborData, exp dram.Exposure) bool {
	if data == nil {
		return false
	}
	prof := m.profile(bank, row)
	return m.applyPress(prof, data, nb, exp, false) > 0 ||
		m.applyHammer(prof, data, nb, exp, false) > 0 ||
		m.applyRetention(prof, data, exp, false) > 0
}

// applyPress flips charged cells whose accumulated press exposure crosses
// their threshold. RowPress pulls electrons out of the victim (concurrent
// Samsung work, footnote 14), so flips discharge the cell: 1→0 on true
// cells — the opposite direction of RowHammer (Obsv. 8). With commit
// false it only probes: no mutation, early exit at the first flip.
func (m *Model) applyPress(prof *rowProfile, data []byte, nb dram.NeighborData, exp dram.Exposure, commit bool) int {
	pa, pb := exp.PressAbove, exp.PressBelow
	if pa == 0 && pb == 0 {
		return 0
	}
	cplC := tempInterp(m.p.PressCplCharged50, m.p.PressCplCharged80, m.tempC)
	cplD := tempInterp(m.p.PressCplDischgd50, m.p.PressCplDischgd80, m.tempC)
	rho := tempInterp(m.p.PressCrossPenalty50, m.p.PressCrossPenalty80, m.tempC)
	maxDamage := (pa + pb) * math.Max(cplC, cplD) * jitterHeadroom(m.p.TrialJitter)
	flips := 0
	for i := range prof.press {
		c := &prof.press[i]
		if c.threshold > maxDamage {
			break // sorted ascending: nothing further can flip
		}
		bit := bitOf(data, c.col, c.bit)
		if !charged(bit, c.trueCell) {
			continue // press only disturbs charged cells
		}
		sideA := pa * m.sideCoupling(nb.Above, c, cplC, cplD)
		sideB := pb * m.sideCoupling(nb.Below, c, cplC, cplD)
		damage := sideA + sideB
		if sideA > 0 && sideB > 0 {
			// Sub-additive cross-side interaction: see PressCrossPenalty.
			damage -= 2 * rho * math.Sqrt(sideA*sideB)
		}
		if damage >= m.effThreshold(*c) {
			if !commit {
				return 1
			}
			setBit(data, c.col, c.bit, !c.trueCell) // discharge
			flips++
		}
	}
	return flips
}

// applyHammer flips discharged cells: hammering injects electrons into the
// victim, charging it up (0→1 on true cells).
func (m *Model) applyHammer(prof *rowProfile, data []byte, nb dram.NeighborData, exp dram.Exposure, commit bool) int {
	ha, hb := exp.HammerAbove, exp.HammerBelow
	if ha == 0 && hb == 0 {
		return 0
	}
	// Double-sided super-additivity: aggressors on both sides interact
	// (β = HammerCrossBoost), which is why double-sided RowHammer needs
	// fewer total activations than single-sided.
	cross := 2 * m.p.HammerCrossBoost * math.Sqrt(ha*hb)
	cplC, cplD := m.p.HammerCplCharged, m.p.HammerCplDischgd
	maxDamage := (ha + hb + cross) * math.Max(cplC, cplD) * jitterHeadroom(m.p.TrialJitter)
	flips := 0
	for i := range prof.hammer {
		c := &prof.hammer[i]
		if c.threshold > maxDamage {
			break
		}
		bit := bitOf(data, c.col, c.bit)
		if charged(bit, c.trueCell) {
			continue // hammer only charges discharged cells
		}
		sideA := ha * m.sideCoupling(nb.Above, c, cplC, cplD)
		sideB := hb * m.sideCoupling(nb.Below, c, cplC, cplD)
		damage := sideA + sideB
		if ha > 0 && hb > 0 {
			damage += 2 * m.p.HammerCrossBoost * math.Sqrt(sideA*sideB)
		}
		if damage >= m.effThreshold(*c) {
			if !commit {
				return 1
			}
			setBit(data, c.col, c.bit, c.trueCell) // charge up
			flips++
		}
	}
	return flips
}

// applyRetention discharges charged cells whose retention threshold (in
// stress-seconds) has been exceeded since the last charge restore.
func (m *Model) applyRetention(prof *rowProfile, data []byte, exp dram.Exposure, commit bool) int {
	if exp.Retention <= 0 {
		return 0
	}
	limit := exp.Retention * jitterHeadroom(m.p.TrialJitter)
	flips := 0
	for i := range prof.retention {
		c := &prof.retention[i]
		if c.threshold > limit {
			break
		}
		bit := bitOf(data, c.col, c.bit)
		if !charged(bit, c.trueCell) {
			continue
		}
		if exp.Retention >= m.effThreshold(*c) {
			if !commit {
				return 1
			}
			setBit(data, c.col, c.bit, !c.trueCell)
			flips++
		}
	}
	return flips
}

// sideCoupling returns the aggressor-bit coupling factor for one side: the
// same-column cell of the adjacent row modulates how strongly that side's
// disturbance reaches the victim (§5.3). Unknown neighbors couple neutrally.
func (m *Model) sideCoupling(nbData []byte, c *vulnCell, cplCharged, cplDischarged float64) float64 {
	bit, ok := neighborBit(nbData, c.col, c.bit)
	if !ok {
		return 1
	}
	// Neighbor orientation is irrelevant for its electrostatic state; use
	// the raw stored bit against the victim cell's orientation convention:
	// what matters physically is whether the adjacent capacitor is charged.
	// Approximate the adjacent cell orientation with the victim's (cells in
	// the same column/bit position share layout).
	if charged(bit, c.trueCell) {
		return cplCharged
	}
	return cplDischarged
}

// jitterHeadroom widens the early-exit bound so trial jitter cannot skip a
// cell whose jittered threshold dips below the exposure. 4σ headroom.
func jitterHeadroom(sigma float64) float64 {
	if sigma == 0 {
		return 1
	}
	return math.Exp(4 * sigma)
}
