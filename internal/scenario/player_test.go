package scenario

import (
	"testing"

	"repro/internal/chipgen"
	"repro/internal/dram"
)

func playerTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Sites = 2
	cfg.MaxActs = 30_000
	cfg.MaxTime = 64 * dram.Millisecond
	return cfg
}

func testModuleSpec(t *testing.T) chipgen.ModuleSpec {
	t.Helper()
	spec, ok := chipgen.ByID("S3")
	if !ok {
		t.Fatal("unknown module S3")
	}
	return spec
}

// TestPlayerPauseResumeMatchesReplay pins the prefix property the
// replay-free search stands on: pausing a player at n aggressor
// activations (in several uneven hops) and pure-probing the victims gives
// exactly the outcome of a fresh playSite run with budget n followed by a
// real check — for every mitigation and for decoyed, REF-synchronized
// schedules.
func TestPlayerPauseResumeMatchesReplay(t *testing.T) {
	mod := testModuleSpec(t)
	cfg := playerTestConfig()
	scenarios := []string{"ds-hammer", "ss-press-70us", "combined-b4-7.8us", "combined-b4-7.8us-decoy", "ds-hammer-decoy"}
	pauses := []int{137, 1000, 4096, 9999, 20_000}
	for _, name := range scenarios {
		sc, ok := ByName(name)
		if !ok {
			t.Fatalf("unknown scenario %s", name)
		}
		for _, kind := range AllMitigations() {
			site := cfg.sites(sc.Sides)[0]
			seed := cfg.siteSeed(sc, 0)

			mit, err := cfg.NewMitigation(kind, seed)
			if err != nil {
				t.Fatal(err)
			}
			pl, err := cfg.newPlayer(mod, sc, site, mit)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range pauses {
				if err := pl.playTo(n); err != nil {
					t.Fatal(err)
				}
				got := pl.outcome()
				if got.BitFlips, err = pl.flips(); err != nil {
					t.Fatal(err)
				}
				// The early-exit predicate the search probes through must
				// agree with the counting probe.
				hit, err := pl.wouldFlip()
				if err != nil {
					t.Fatal(err)
				}
				if hit != (got.BitFlips > 0) {
					t.Fatalf("%s/%s paused at %d: wouldFlip=%v but flips=%d", name, kind, n, hit, got.BitFlips)
				}

				refMit, err := cfg.NewMitigation(kind, seed)
				if err != nil {
					t.Fatal(err)
				}
				want, err := cfg.playSite(mod, sc, site, refMit, n)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s/%s paused at %d: player %+v != replayed %+v", name, kind, n, got, want)
				}
			}
		}
	}
}

// TestCheckpointSearchMatchesReplaySearch holds the checkpoint-based
// min-exposure search against the replay-from-scratch reference: same
// minimum activation count, same time-to-flip, for every checkpointable
// mitigation.
func TestCheckpointSearchMatchesReplaySearch(t *testing.T) {
	mod := testModuleSpec(t)
	cfg := playerTestConfig()
	for _, name := range []string{"ds-hammer", "combined-b4-7.8us", "combined-b4-7.8us-decoy"} {
		sc, ok := ByName(name)
		if !ok {
			t.Fatalf("unknown scenario %s", name)
		}
		for _, kind := range AllMitigations() {
			for si, site := range cfg.sites(sc.Sides) {
				seed := cfg.siteSeed(sc, si)

				// Full-budget play to establish the search precondition.
				mit, err := cfg.NewMitigation(kind, seed)
				if err != nil {
					t.Fatal(err)
				}
				full, err := cfg.playSite(mod, sc, site, mit, cfg.MaxActs)
				if err != nil {
					t.Fatal(err)
				}
				if full.BitFlips == 0 {
					continue
				}
				gotActs, gotTime, err := cfg.searchMinActs(mod, sc, site, kind, seed, full)
				if err != nil {
					t.Fatal(err)
				}
				wantActs, wantTime, err := cfg.searchMinActsReplay(mod, sc, site, kind, seed, full.AggActs, full.Elapsed)
				if err != nil {
					t.Fatal(err)
				}
				if gotActs != wantActs || gotTime != wantTime {
					t.Fatalf("%s/%s site %d: checkpoint search (%d, %s) != replay search (%d, %s)",
						name, kind, si, gotActs, dram.FormatTime(gotTime), wantActs, dram.FormatTime(wantTime))
				}
			}
		}
	}
}
