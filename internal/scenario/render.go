package scenario

import (
	"encoding/csv"
	"fmt"
	"strings"

	"repro/internal/dram"
	"repro/internal/report"
)

// This file renders the scenario matrix for the two listing transports:
// MatrixText for `rowpress scenarios` and MatrixCSV for -format csv.
// GET /v1/scenarios serves Catalog() as JSON directly.

// matrixHeaders is the shared column lattice of both renderings.
var matrixHeaders = []string{"name", "kind", "sides", "taggon", "burst", "extra_off", "decoys", "pattern"}

func matrixRow(s Spec) []string {
	taggon, burst := "-", "-"
	switch s.Kind {
	case Press:
		taggon = dram.FormatTime(s.TAggON)
	case Combined:
		taggon = dram.FormatTime(s.TAggON)
		burst = fmt.Sprint(s.Burst)
	}
	extraOff := "-"
	if s.ExtraOff > 0 {
		extraOff = dram.FormatTime(s.ExtraOff)
	}
	decoys := "-"
	if s.DecoyRows > 0 {
		if s.DecoyEvery > 0 {
			decoys = fmt.Sprintf("%d/%d", s.DecoyRows, s.DecoyEvery)
		} else {
			decoys = fmt.Sprintf("%d/REF-sync", s.DecoyRows)
		}
	}
	return []string{s.Name, s.Kind.String(), fmt.Sprint(s.Sides), taggon, burst, extraOff, decoys, s.Pattern()}
}

// MatrixText renders the catalog as the operator-facing table.
func MatrixText() string {
	var rows [][]string
	for _, s := range Catalog() {
		rows = append(rows, matrixRow(s))
	}
	return report.Section("Attack-scenario matrix", report.Table(matrixHeaders, rows))
}

// MatrixCSV renders the catalog as RFC 4180 CSV (encoding/csv handles
// quoting, so pattern descriptions may contain any character).
func MatrixCSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(matrixHeaders)
	for _, s := range Catalog() {
		_ = w.Write(matrixRow(s))
	}
	w.Flush()
	return b.String()
}
