package scenario

import (
	"testing"

	"repro/internal/chipgen"
)

// Min-exposure search benchmarks: the checkpoint-based search against the
// replay-from-scratch reference, on a scenario whose bracket sits deep
// enough that replays dominate the reference's cost.

func benchSearchSetup(b *testing.B) (chipgen.ModuleSpec, Spec, sitePlan, uint64, Outcome, Config) {
	b.Helper()
	spec, ok := chipgen.ByID("S3")
	if !ok {
		b.Fatal("unknown module S3")
	}
	sc, ok := ByName("combined-b4-7.8us")
	if !ok {
		b.Fatal("unknown scenario")
	}
	cfg := DefaultConfig()
	cfg.Sites = 1
	cfg.MaxActs = 60_000
	site := cfg.sites(sc.Sides)[0]
	seed := cfg.siteSeed(sc, 0)
	mit, err := cfg.NewMitigation(MitNone, seed)
	if err != nil {
		b.Fatal(err)
	}
	full, err := cfg.playSite(spec, sc, site, mit, cfg.MaxActs)
	if err != nil {
		b.Fatal(err)
	}
	if full.BitFlips == 0 {
		b.Fatal("benchmark scenario does not flip; search benchmarks need a bracket")
	}
	return spec, sc, site, seed, full, cfg
}

func BenchmarkScenarioSearchCheckpoint(b *testing.B) {
	spec, sc, site, seed, full, cfg := benchSearchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cfg.searchMinActs(spec, sc, site, MitNone, seed, full); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScenarioSearchReplay(b *testing.B) {
	spec, sc, site, seed, full, cfg := benchSearchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cfg.searchMinActsReplay(spec, sc, site, MitNone, seed, full.AggActs, full.Elapsed); err != nil {
			b.Fatal(err)
		}
	}
}
