package scenario

import (
	"errors"
	"math/bits"

	"repro/internal/chipgen"
	"repro/internal/dram"
	"repro/internal/mitigate"
)

// This file is the replay-free playback engine. playSite (play.go)
// remains the reference implementation — one shot, replayed from scratch
// per probe; the player below produces the identical trajectory but can
// pause at any aggressor-activation count, answer "would stopping here
// flip a bit?" through the module's pure probe, and checkpoint/roll back
// so the min-exposure bisection walks forward from the bracket's lower
// bound instead of replaying millions of slots per probe. Prefix
// determinism (playSite(n) is exactly the first n aggressor slots of
// playSite(m), n ≤ m) is what makes pausing equivalent to replaying; the
// scenario test suite holds the two engines against each other.

// slotGen generates the deterministic slot schedule of one (spec, site)
// play: aggressor slots round-robin the ring; decoy bursts run either
// after every DecoyEvery aggressor slots or timed against the next tREFI
// boundary (the U-TRR-style sampler bypass). Generation is a pure
// function of the emitted history, held in plain fields so a checkpoint
// is a struct copy. The logic is a field-for-field port of playSite's
// generator closure.
type slotGen struct {
	spec     Spec
	site     sitePlan
	decoys   []int
	t        dram.Timing
	burstDur dram.TimePS

	genNow        dram.TimePS // mirrors PlayTrace's clock
	aggSlot       int         // aggressor slots emitted
	decoyIdx      int         // next decoy row
	burstLeft     int         // decoy slots still to emit in this burst
	burstPad      dram.TimePS // extra off time on the burst's last slot
	sinceBurst    int         // aggressor slots since the last burst
	burstBoundary dram.TimePS // next REF boundary to sync a burst against
}

func newSlotGen(spec Spec, site sitePlan, t dram.Timing) slotGen {
	decoys := decoyPool(spec.DecoyRows)
	return slotGen{
		spec:          spec,
		site:          site,
		decoys:        decoys,
		t:             t,
		burstDur:      dram.TimePS(spec.DecoyRows) * (t.TRAS + t.TRP),
		burstBoundary: t.TREFI,
	}
}

func (g *slotGen) next() dram.Slot {
	t, spec := g.t, g.spec
	if g.burstLeft == 0 && spec.DecoyRows > 0 {
		next := spec.aggressorOnTime(g.aggSlot, t) + t.TRP + spec.ExtraOff
		switch {
		case spec.DecoyEvery > 0:
			if g.sinceBurst >= spec.DecoyEvery {
				g.burstLeft = spec.DecoyRows
			}
		default:
			// REF-synchronized: start the burst when one more aggressor
			// slot would no longer fit before the boundary, and pad its
			// last slot so the burst ends exactly on it (see playSite).
			if g.sinceBurst > 0 && g.genNow+next+g.burstDur >= g.burstBoundary {
				g.burstLeft = spec.DecoyRows
				g.burstPad = g.burstBoundary - (g.genNow + g.burstDur)
				if g.burstPad < 0 {
					g.burstPad = 0
				}
				end := g.genNow + g.burstDur + g.burstPad
				for g.burstBoundary <= end {
					g.burstBoundary += t.TREFI
				}
			}
		}
		if g.burstLeft > 0 {
			g.sinceBurst = 0
		}
	}
	var s dram.Slot
	if g.burstLeft > 0 {
		g.burstLeft--
		s = dram.Slot{Row: g.decoys[g.decoyIdx%len(g.decoys)], OnTime: t.TRAS}
		if g.burstLeft == 0 {
			s.ExtraOff = g.burstPad
			g.burstPad = 0
		}
		g.decoyIdx++
	} else {
		s = dram.Slot{
			Row:      g.site.aggressors[g.aggSlot%len(g.site.aggressors)],
			OnTime:   spec.aggressorOnTime(g.aggSlot, t),
			ExtraOff: spec.ExtraOff,
		}
		g.aggSlot++
		g.sinceBurst++
	}
	g.genNow += s.Duration(t)
	return s
}

// player drives one (module, spec, site, mitigation) play incrementally.
type player struct {
	cfg  Config
	spec Spec
	site sitePlan
	mod  *dram.Module
	mit  mitigate.Mitigation
	gen  slotGen

	out         Outcome
	nextRef     dram.TimePS
	nextWin     dram.TimePS
	lastOff     dram.TimePS
	resumeAt    dram.TimePS // where the next slot starts
	stopAt      dram.TimePS // pattern time if the play stopped here (Outcome.Elapsed)
	victimFlips int         // bitflips preventive refreshes materialized into victims mid-play
	isDecoy     map[int]bool
	isVictim    map[int]bool
	rf          refresher
	hasREF      bool

	cp playerCheckpoint
}

// playerCheckpoint captures the player's scalar state alongside the
// module's journal and the mitigation's snapshot.
type playerCheckpoint struct {
	armed       bool
	gen         slotGen
	out         Outcome
	nextRef     dram.TimePS
	nextWin     dram.TimePS
	lastOff     dram.TimePS
	resumeAt    dram.TimePS
	stopAt      dram.TimePS
	victimFlips int
	mitState    any
}

// newPlayer builds a fresh play: module instantiated, site rows
// initialized with the data pattern, schedule generator at slot zero —
// exactly the state playSite starts from.
func (c Config) newPlayer(module chipgen.ModuleSpec, spec Spec, site sitePlan, mit mitigate.Mitigation) (*player, error) {
	mod, _ := module.NewModule(c.Geometry, c.TempC)
	t := mod.Timing
	for _, v := range site.victims {
		if err := mod.InitRow(0, c.Bank, v, c.Pattern.VictimByte()); err != nil {
			return nil, err
		}
	}
	for _, a := range site.aggressors {
		if err := mod.InitRow(0, c.Bank, a, c.Pattern.AggressorByte()); err != nil {
			return nil, err
		}
	}
	p := &player{
		cfg:     c,
		spec:    spec,
		site:    site,
		mod:     mod,
		mit:     mit,
		gen:     newSlotGen(spec, site, t),
		nextRef: t.TREFI,
		nextWin: t.TREFW,
		isDecoy: make(map[int]bool, spec.DecoyRows),
	}
	for _, d := range decoyPool(spec.DecoyRows) {
		p.isDecoy[d] = true
	}
	p.isVictim = make(map[int]bool, len(site.victims))
	for _, v := range site.victims {
		p.isVictim[v] = true
	}
	p.rf, p.hasREF = mit.(refresher)
	return p, nil
}

func (p *player) refreshRows(rows []int, now dram.TimePS) error {
	for _, r := range rows {
		if r < 0 || r >= p.cfg.Geometry.RowsPerBank {
			continue
		}
		flips, err := p.mod.RestoreRowCounted(now, p.cfg.Bank, r)
		if err != nil {
			return err
		}
		if p.isVictim[r] {
			p.victimFlips += flips
		}
		p.out.PreventiveRefreshes++
	}
	return nil
}

// playTo advances the play until targetAgg aggressor activations have
// retired (or the simulated-time budget caps it). Pausing and resuming is
// trajectory-identical to an uninterrupted play: the generator, the
// mitigation clock, and the module all continue from where they stopped.
func (p *player) playTo(targetAgg int) error {
	if p.out.TimeCapped || p.out.AggActs >= targetAgg {
		return nil
	}
	t := p.mod.Timing
	observe := func(i int, s dram.Slot, now dram.TimePS) error {
		p.out.TotalActs++
		if !p.isDecoy[s.Row] {
			p.out.AggActs++
		}
		if err := p.refreshRows(mitigate.Observe(p.mit, s.Row, s.OnTime), now); err != nil {
			return err
		}
		// Mitigation clock: REF fires every tREFI and the tracking window
		// resets every tREFW; REFs due in this slot's off phase execute
		// now (see playSite for the full methodology note).
		p.lastOff = t.TRP + s.ExtraOff
		for p.nextRef <= now+p.lastOff {
			if p.hasREF {
				if err := p.refreshRows(p.rf.OnRefresh(), p.nextRef); err != nil {
					return err
				}
			}
			if p.nextRef >= p.nextWin {
				p.mit.OnRefreshWindow()
				p.nextWin += t.TREFW
			}
			p.nextRef += t.TREFI
		}
		if p.out.AggActs >= targetAgg {
			return errActBudget
		}
		if now >= p.cfg.MaxTime {
			p.out.TimeCapped = true
			return errTimeBudget
		}
		return nil
	}
	// Upper bound on slots to the target; the observer aborts first.
	slots := (targetAgg-p.out.AggActs)*(p.spec.DecoyRows+1) + p.spec.DecoyRows + 1
	end, err := p.mod.PlayTrace(p.resumeAt, p.cfg.Bank, slots, func(int) dram.Slot { return p.gen.next() }, observe)
	switch {
	case errors.Is(err, errTimeBudget), errors.Is(err, errActBudget):
		// A budget abort stops at the last slot's PRE instant; let that
		// slot's own off phase elapse before any check stream issues ACTs.
		p.stopAt = end + p.lastOff
	case err != nil:
		return err
	default:
		p.stopAt = end
	}
	p.resumeAt = p.gen.genNow
	p.out.Elapsed = p.stopAt
	return nil
}

// flips counts the victim bitflips a check stream issued right now would
// materialize — through the module's pure probe, so the play can continue
// (or roll back) afterwards as if no check had happened.
func (p *player) flips() (int, error) {
	probes, _, err := p.mod.ProbeFetch(p.stopAt, p.cfg.Bank, p.site.victims)
	if err != nil {
		return 0, err
	}
	expect := p.cfg.Pattern.VictimByte()
	n := 0
	for _, pr := range probes {
		for _, b := range pr.Data {
			n += bits.OnesCount8(b ^ expect)
		}
	}
	return n, nil
}

// wouldFlip is the any-flip predicate of flips(). While no preventive
// refresh has materialized a flip into a victim, every victim still holds
// its exact fill byte, so the copy-free early-exit probe is exact: the
// check stream flips something iff pending exposure crosses a threshold.
// Once mid-play flips exist, the stored data itself diffs (and a later
// flip could even cancel one), so only the counting probe answers
// exactly.
func (p *player) wouldFlip() (bool, error) {
	if p.victimFlips > 0 {
		n, err := p.flips()
		return n > 0, err
	}
	return p.mod.ProbeWouldFlip(p.stopAt, p.cfg.Bank, p.site.victims)
}

// outcome returns the Outcome of stopping the play here.
func (p *player) outcome() Outcome {
	o := p.out
	o.Elapsed = p.stopAt
	return o
}

// checkpointable reports whether the play's mitigation supports state
// snapshots; without it a search must fall back to replaying.
func (p *player) checkpointable() bool {
	_, ok := p.mit.(mitigate.Checkpointer)
	return ok
}

// checkpoint arms a snapshot of the whole play (module, mitigation,
// generator, budget accounting).
func (p *player) checkpoint() {
	p.mod.Checkpoint()
	p.cp = playerCheckpoint{
		armed: true, gen: p.gen, out: p.out,
		nextRef: p.nextRef, nextWin: p.nextWin, lastOff: p.lastOff,
		resumeAt: p.resumeAt, stopAt: p.stopAt, victimFlips: p.victimFlips,
		mitState: p.mit.(mitigate.Checkpointer).CheckpointState(),
	}
}

// rollback returns the play to the armed checkpoint, which stays armed.
func (p *player) rollback() {
	p.mod.Rollback()
	cp := p.cp
	p.gen, p.out = cp.gen, cp.out
	p.nextRef, p.nextWin, p.lastOff = cp.nextRef, cp.nextWin, cp.lastOff
	p.resumeAt, p.stopAt, p.victimFlips = cp.resumeAt, cp.stopAt, cp.victimFlips
	p.mit.(mitigate.Checkpointer).RestoreState(cp.mitState)
}

// advanceCheckpoint re-arms the checkpoint at the current position (the
// search's new lower bound).
func (p *player) advanceCheckpoint() {
	p.mod.ReleaseCheckpoint()
	p.checkpoint()
}

// release discards the checkpoint, keeping the current position.
func (p *player) release() {
	p.mod.ReleaseCheckpoint()
	p.cp = playerCheckpoint{}
}
