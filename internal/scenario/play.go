package scenario

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/chipgen"
	"repro/internal/dram"
	"repro/internal/mitigate"
	"repro/internal/stats"
)

// MitigationKind names the mitigations the scenario harness can wire
// into the activation stream.
type MitigationKind string

// The evaluated mitigations.
const (
	MitNone     MitigationKind = "none"
	MitPARA     MitigationKind = "para"
	MitGraphene MitigationKind = "graphene"
	MitTRR      MitigationKind = "trr"
	MitImPress  MitigationKind = "impress"
)

// AllMitigations lists the evaluated mitigations in report order.
func AllMitigations() []MitigationKind {
	return []MitigationKind{MitNone, MitPARA, MitGraphene, MitTRR, MitImPress}
}

// Config fixes the playback methodology for one characterization: the
// module geometry, the tested-site count, the per-site activation and
// simulated-time budgets, and the mitigation sizing. Following §4.1 the
// harness keeps periodic victim refresh disabled — REF events still fire
// as mitigation hooks (TRR samples at REF; window-based trackers reset
// every tREFW), but victims accumulate disturbance for the whole play,
// so the measured minimum exposures are circuit-level properties.
type Config struct {
	Geometry dram.Geometry
	Bank     int
	Sites    int         // tested victim sites per (module, scenario)
	MaxActs  int         // aggressor-activation budget per play
	MaxTime  dram.TimePS // simulated-time budget per play
	Pattern  dram.DataPattern
	Accuracy float64 // min-exposure bisection termination, fraction
	TempC    float64
	Seed     uint64 // randomized mitigations (PARA)

	// Mitigation sizing: trackers trigger at TRH/3 (the Graphene sizing
	// rule the paper's Table 3 follows), PARA's probability is re-derived
	// from TRH, and ImPress charges ImPressQuantum of open time as one
	// extra tracked activation.
	TRH            int
	TableSize      int
	TRREntries     int
	ImPressQuantum dram.TimePS
}

// DefaultConfig returns the standard scenario methodology.
func DefaultConfig() Config {
	return Config{
		Geometry: dram.DefaultGeometry(),
		Bank:     1,
		Sites:    3,
		MaxActs:  1_000_000,
		MaxTime:  256 * dram.Millisecond,
		Pattern:  dram.CheckerBoard,
		Accuracy: 0.05,
		TempC:    50,
		Seed:     1,

		TRH:            32_000,
		TableSize:      64,
		TRREntries:     4,
		ImPressQuantum: mitigate.DefaultImPressQuantum,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	switch {
	case c.Bank < 0 || c.Bank >= c.Geometry.Banks:
		return fmt.Errorf("scenario: bank %d outside geometry with %d banks", c.Bank, c.Geometry.Banks)
	case c.Sites <= 0:
		return fmt.Errorf("scenario: Sites must be positive")
	case c.MaxActs <= 0 || c.MaxTime <= 0:
		return fmt.Errorf("scenario: MaxActs and MaxTime must be positive")
	case c.Accuracy <= 0 || c.Accuracy >= 1:
		return fmt.Errorf("scenario: Accuracy must be in (0,1)")
	case c.TRH <= 0 || c.TableSize <= 0 || c.TRREntries <= 0 || c.ImPressQuantum <= 0:
		return fmt.Errorf("scenario: mitigation sizing must be positive")
	}
	return nil
}

// NewMitigation instantiates one sized mitigation. seed only matters for
// randomized mechanisms.
func (c Config) NewMitigation(kind MitigationKind, seed uint64) (mitigate.Mitigation, error) {
	threshold := c.TRH / 3
	if threshold < 1 {
		threshold = 1
	}
	switch kind {
	case MitNone:
		return mitigate.None{}, nil
	case MitPARA:
		p := 34.0 / float64(c.TRH)
		if p > 1 {
			p = 1
		}
		return mitigate.NewPARA(p, seed), nil
	case MitGraphene:
		return mitigate.NewGraphene(threshold, c.TableSize), nil
	case MitTRR:
		return mitigate.NewTRR(c.TRREntries), nil
	case MitImPress:
		return mitigate.NewImPress(threshold, c.TableSize, c.ImPressQuantum), nil
	default:
		return nil, fmt.Errorf("scenario: unknown mitigation %q", kind)
	}
}

// sitePlan is the physical layout of one tested site: the aggressor ring,
// the victim rows inside the blast radius, and the shared decoy pool.
type sitePlan struct {
	loc        int
	aggressors []int
	victims    []int
	decoys     []int
}

// decoyBase is where the decoy pool starts; sites are placed beyond the
// pool so decoy disturbance can never reach a victim.
const decoyBase = 16

// siteFor lays out the aggressor ring around loc: single-sided hammers
// loc itself, double-sided loc±1, many-sided alternates outward
// (loc−1, loc+1, loc−2, loc+2, …). Victims are every non-aggressor row
// within the blast radius of any aggressor.
func siteFor(loc, sides int) sitePlan {
	s := sitePlan{loc: loc}
	if sides == 1 {
		s.aggressors = []int{loc}
	} else {
		for d := 1; len(s.aggressors) < sides; d++ {
			s.aggressors = append(s.aggressors, loc-d)
			if len(s.aggressors) < sides {
				s.aggressors = append(s.aggressors, loc+d)
			}
		}
	}
	isAgg := make(map[int]bool, len(s.aggressors))
	lo, hi := s.aggressors[0], s.aggressors[0]
	for _, a := range s.aggressors {
		isAgg[a] = true
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	for r := lo - dram.BlastRadius; r <= hi+dram.BlastRadius; r++ {
		if !isAgg[r] {
			s.victims = append(s.victims, r)
		}
	}
	return s
}

// sites spreads cfg.Sites tested locations across the bank, clear of the
// decoy pool and the array edges, spaced so neighboring sites' blast
// radii never interact.
func (c Config) sites(sides int) []sitePlan {
	margin := decoyBase + 8*maxDecoyRows + 32
	usable := c.Geometry.RowsPerBank - margin - 16
	n := c.Sites
	if n > usable/64 {
		n = usable / 64
	}
	if n < 1 {
		n = 1
	}
	step := usable / n
	if step < 64 {
		step = 64
	}
	out := make([]sitePlan, 0, n)
	for i := 0; i < n; i++ {
		loc := margin + i*step + step/2
		if loc+sides+dram.BlastRadius >= c.Geometry.RowsPerBank-8 {
			break
		}
		out = append(out, siteFor(loc, sides))
	}
	return out
}

// decoyPool returns the shared decoy rows, spaced so decoys never sit in
// each other's blast radius.
func decoyPool(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = decoyBase + 8*i
	}
	return out
}

// Outcome is one playback measurement.
type Outcome struct {
	AggActs             int         // aggressor activations played
	TotalActs           int         // including decoys
	BitFlips            int         // victim bitflips materialized at the final check
	PreventiveRefreshes uint64      // rows preventively refreshed by the mitigation
	Elapsed             dram.TimePS // simulated pattern time
	TimeCapped          bool        // playback stopped on MaxTime, not MaxActs
}

// errTimeBudget and errActBudget abort a playback cleanly when the
// simulated-time or aggressor-activation budget is reached.
var (
	errTimeBudget = errors.New("scenario: simulated-time budget reached")
	errActBudget  = errors.New("scenario: activation budget reached")
)

// refresher is the mid-window REF hook (TRR samples at REF).
type refresher interface{ OnRefresh() []int }

// playSite plays up to actBudget aggressor activations of spec against
// one site on a fresh module, with mit observing every activation (decoys
// included), and returns the measured outcome. The trace is a prefix
// family: playSite(n) plays exactly the first n aggressor slots of
// playSite(m) for n ≤ m, which makes the min-exposure bisection sound.
func (c Config) playSite(module chipgen.ModuleSpec, spec Spec, site sitePlan,
	mit mitigate.Mitigation, actBudget int) (Outcome, error) {
	mod, _ := module.NewModule(c.Geometry, c.TempC)
	t := mod.Timing
	decoys := decoyPool(spec.DecoyRows)

	// Data-pattern setup (outside the measured command stream, like the
	// real infrastructure's bulk writes). Decoy rows stay uninitialized:
	// they carry no data, so their neighborhoods cannot flip.
	for _, v := range site.victims {
		if err := mod.InitRow(0, c.Bank, v, c.Pattern.VictimByte()); err != nil {
			return Outcome{}, err
		}
	}
	for _, a := range site.aggressors {
		if err := mod.InitRow(0, c.Bank, a, c.Pattern.AggressorByte()); err != nil {
			return Outcome{}, err
		}
	}

	// Slot schedule, generated statefully (PlayTrace streams indices in
	// order): aggressor slots round-robin the ring; a decoy burst of
	// DecoyRows slots runs either after every DecoyEvery aggressor slots
	// (unsynchronized) or — with DecoyEvery == 0 — timed so the burst
	// lands against the next tREFI boundary, the U-TRR-style bypass that
	// leaves a REF-sampling defense tracking only decoys when REF fires.
	// Generation is a pure function of the emitted history, so a shorter
	// play is an exact prefix of a longer one.
	var (
		genNow        dram.TimePS // mirrors PlayTrace's clock
		aggSlot       int         // aggressor slots emitted
		decoyIdx      int         // next decoy row
		burstLeft     int         // decoy slots still to emit in this burst
		burstPad      dram.TimePS // extra off time on the burst's last slot
		sinceBurst    int         // aggressor slots since the last burst
		burstBoundary = t.TREFI   // next REF boundary to sync a burst against
	)
	burstDur := dram.TimePS(spec.DecoyRows) * (t.TRAS + t.TRP)
	slotAt := func(int) dram.Slot {
		if burstLeft == 0 && spec.DecoyRows > 0 {
			next := spec.aggressorOnTime(aggSlot, t) + t.TRP + spec.ExtraOff
			switch {
			case spec.DecoyEvery > 0:
				if sinceBurst >= spec.DecoyEvery {
					burstLeft = spec.DecoyRows
				}
			default:
				// REF-synchronized: start the burst when one more
				// aggressor slot would no longer fit before the boundary,
				// and pad its last slot so the burst ends exactly on it —
				// the REF then samples a table holding only decoys. At
				// least one aggressor slot must run between bursts so
				// dwell slots longer than the remaining window make
				// progress (their REF is postponed past the dwell, where
				// the sampler legitimately catches them).
				if sinceBurst > 0 && genNow+next+burstDur >= burstBoundary {
					burstLeft = spec.DecoyRows
					burstPad = burstBoundary - (genNow + burstDur)
					if burstPad < 0 {
						burstPad = 0
					}
					end := genNow + burstDur + burstPad
					for burstBoundary <= end {
						burstBoundary += t.TREFI
					}
				}
			}
			if burstLeft > 0 {
				sinceBurst = 0
			}
		}
		var s dram.Slot
		if burstLeft > 0 {
			burstLeft--
			s = dram.Slot{Row: decoys[decoyIdx%len(decoys)], OnTime: t.TRAS}
			if burstLeft == 0 {
				s.ExtraOff = burstPad
				burstPad = 0
			}
			decoyIdx++
		} else {
			s = dram.Slot{
				Row:      site.aggressors[aggSlot%len(site.aggressors)],
				OnTime:   spec.aggressorOnTime(aggSlot, t),
				ExtraOff: spec.ExtraOff,
			}
			aggSlot++
			sinceBurst++
		}
		genNow += s.Duration(t)
		return s
	}
	// Upper bound on total slots; playback stops on the activation or
	// time budget via the observer, never on this bound.
	slots := actBudget*(spec.DecoyRows+1) + spec.DecoyRows + 1

	out := Outcome{}
	rf, hasREF := mit.(refresher)
	nextRef := t.TREFI
	nextWin := t.TREFW
	isDecoy := make(map[int]bool, len(decoys))
	for _, d := range decoys {
		isDecoy[d] = true
	}
	refreshRows := func(rows []int, now dram.TimePS) error {
		for _, r := range rows {
			if r < 0 || r >= c.Geometry.RowsPerBank {
				continue
			}
			if err := mod.RestoreRow(now, c.Bank, r); err != nil {
				return err
			}
			out.PreventiveRefreshes++
		}
		return nil
	}
	var lastOff dram.TimePS // off phase of the most recent slot
	observe := func(i int, s dram.Slot, now dram.TimePS) error {
		out.TotalActs++
		if !isDecoy[s.Row] {
			out.AggActs++
		}
		if err := refreshRows(mitigate.Observe(mit, s.Row, s.OnTime), now); err != nil {
			return err
		}
		// Mitigation clock: REF fires every tREFI (the sampler's refresh
		// hook) and the tracking window resets every tREFW. REFs due in
		// this slot's off phase execute now — after this activation's
		// disturbance accrued, before the next ACT enters the sampler's
		// table — matching a controller that schedules REF while the
		// bank is precharged; REFs falling inside a long dwell are
		// postponed to the dwell's own off phase, as DDR4 allows.
		// Periodic victim refresh itself stays disabled per the §4.1
		// methodology.
		lastOff = t.TRP + s.ExtraOff
		for nextRef <= now+lastOff {
			if hasREF {
				if err := refreshRows(rf.OnRefresh(), nextRef); err != nil {
					return err
				}
			}
			if nextRef >= nextWin {
				mit.OnRefreshWindow()
				nextWin += t.TREFW
			}
			nextRef += t.TREFI
		}
		if out.AggActs >= actBudget {
			return errActBudget
		}
		if now >= c.MaxTime {
			out.TimeCapped = true
			return errTimeBudget
		}
		return nil
	}

	end, err := mod.PlayTrace(0, c.Bank, slots, slotAt, observe)
	switch {
	case errors.Is(err, errTimeBudget), errors.Is(err, errActBudget):
		// A budget abort stops at the last slot's PRE instant; let that
		// slot's own off phase elapse before the check stream issues ACTs.
		end += lastOff
	case err != nil:
		return Outcome{}, err
	}
	out.Elapsed = end

	// Materialize and count victim flips.
	now := end
	for _, v := range site.victims {
		data, fin, err := mod.FetchRow(now, c.Bank, v)
		if err != nil {
			return Outcome{}, err
		}
		now = fin
		expect := c.Pattern.VictimByte()
		for _, b := range data {
			out.BitFlips += bits.OnesCount8(b ^ expect)
		}
	}
	return out, nil
}

// siteSeed derives the deterministic per-(site, scenario) mitigation
// seed so repeated plays are reproducible and sites are independent.
func (c Config) siteSeed(spec Spec, siteIdx int) uint64 {
	h := c.Seed
	for _, ch := range spec.Name {
		h = stats.Combine(h, uint64(ch))
	}
	return stats.Combine(h, uint64(siteIdx))
}

// Result is the full characterization of one (module, scenario,
// mitigation) cell: the budget-play outcome summed over sites plus the
// minimum exposure to first flip across sites.
type Result struct {
	Module     string         `json:"module"`
	Scenario   string         `json:"scenario"`
	Mitigation MitigationKind `json:"mitigation"`

	Sites      int  `json:"sites"`
	BudgetActs int  `json:"budget_acts"` // per-site aggressor budget actually played (max over sites)
	TimeCapped bool `json:"time_capped"`

	BitFlips            int     `json:"bitflips"` // total at full budget, all sites
	SitesWithFlips      int     `json:"sites_with_flips"`
	PreventiveRefreshes uint64  `json:"preventive_refreshes"` // all sites
	RefreshOverhead     float64 `json:"refresh_overhead"`     // per 1000 aggressor acts

	// Minimum exposure to first flip, across sites: the smallest
	// aggressor-activation count at which the scenario produces a bitflip,
	// and the simulated pattern time that exposure takes. Zero/false when
	// no tested site flips within the budgets.
	MinActs   int         `json:"min_acts,omitempty"`
	MinTime   dram.TimePS `json:"min_time_ps,omitempty"`
	FlipFound bool        `json:"flip_found"`
}

// Characterize measures one (module, scenario, mitigation) cell: a full
// budget play per site, plus a doubling + bisection search for the
// minimum exposure to first flip (played fresh each probe — mitigation
// state, module state, and randomized decisions all restart, so probes
// are true prefixes of each other).
func Characterize(module chipgen.ModuleSpec, spec Spec, kind MitigationKind, cfg Config) (Result, error) {
	return measure(module, spec, kind, cfg, true)
}

// Evaluate is Characterize without the min-exposure search: one full
// budget play per site. The mitigation-comparison grid uses it, since
// flip counts and refresh overhead at a fixed budget are what the
// comparison needs.
func Evaluate(module chipgen.ModuleSpec, spec Spec, kind MitigationKind, cfg Config) (Result, error) {
	return measure(module, spec, kind, cfg, false)
}

func measure(module chipgen.ModuleSpec, spec Spec, kind MitigationKind, cfg Config, search bool) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := spec.Validate(dram.DDR4()); err != nil {
		return Result{}, err
	}
	sites := cfg.sites(spec.Sides)
	if len(sites) == 0 {
		return Result{}, fmt.Errorf("scenario: geometry with %d rows/bank cannot host a %d-sided site",
			cfg.Geometry.RowsPerBank, spec.Sides)
	}
	res := Result{Module: module.ID, Scenario: spec.Name, Mitigation: kind}
	totalAggActs := 0
	for si, site := range sites {
		res.Sites++
		seed := cfg.siteSeed(spec, si)
		// Full-budget play on the incremental player; the final victim
		// check runs through the module's pure probe, which reports the
		// same flips an executed check stream would.
		mit, err := cfg.NewMitigation(kind, seed)
		if err != nil {
			return Result{}, err
		}
		pl, err := cfg.newPlayer(module, spec, site, mit)
		if err != nil {
			return Result{}, err
		}
		if err := pl.playTo(cfg.MaxActs); err != nil {
			return Result{}, err
		}
		full := pl.outcome()
		if full.BitFlips, err = pl.flips(); err != nil {
			return Result{}, err
		}
		res.BitFlips += full.BitFlips
		res.PreventiveRefreshes += full.PreventiveRefreshes
		res.TimeCapped = res.TimeCapped || full.TimeCapped
		totalAggActs += full.AggActs
		if full.AggActs > res.BudgetActs {
			res.BudgetActs = full.AggActs
		}
		if full.BitFlips == 0 {
			continue
		}
		res.SitesWithFlips++
		if !search {
			res.FlipFound = true
			continue
		}
		minActs, minTime, err := cfg.searchMinActs(module, spec, site, kind, seed, full)
		if err != nil {
			return Result{}, err
		}
		if !res.FlipFound || minActs < res.MinActs {
			res.MinActs, res.MinTime, res.FlipFound = minActs, minTime, true
		}
	}
	if totalAggActs > 0 {
		res.RefreshOverhead = 1000 * float64(res.PreventiveRefreshes) / float64(totalAggActs)
	}
	return res, nil
}

// SiteCount returns the number of victim sites measure tests for this
// spec under cfg — the sub-shard count of the split scenario
// experiments.
func SiteCount(spec Spec, cfg Config) int { return len(cfg.sites(spec.Sides)) }

// SiteResult is one site's share of a cell's Result — the sub-shard
// payload of the split scenario experiments. FoldSites folds a full set
// back into the cell Result.
type SiteResult struct {
	AggActs             int         `json:"agg_acts"`
	BitFlips            int         `json:"bitflips"`
	PreventiveRefreshes uint64      `json:"preventive_refreshes"`
	TimeCapped          bool        `json:"time_capped"`
	MinActs             int         `json:"min_acts,omitempty"`
	MinTime             dram.TimePS `json:"min_time_ps,omitempty"`
}

// CharacterizeSite measures site siteIdx of the (module, scenario,
// mitigation) cell, minimum-exposure search included. Sites are fully
// independent — each plays on a fresh module with its own deterministic
// per-site seed — so the per-site measurements compose through
// FoldSites into exactly the Result Characterize returns, whatever
// order they executed in.
func CharacterizeSite(module chipgen.ModuleSpec, spec Spec, kind MitigationKind, cfg Config, siteIdx int) (SiteResult, error) {
	return measureSite(module, spec, kind, cfg, siteIdx, true)
}

// EvaluateSite is CharacterizeSite without the minimum-exposure search.
func EvaluateSite(module chipgen.ModuleSpec, spec Spec, kind MitigationKind, cfg Config, siteIdx int) (SiteResult, error) {
	return measureSite(module, spec, kind, cfg, siteIdx, false)
}

// measureSite is one iteration of measure's site loop, addressable by
// site index.
func measureSite(module chipgen.ModuleSpec, spec Spec, kind MitigationKind, cfg Config, siteIdx int, search bool) (SiteResult, error) {
	if err := cfg.Validate(); err != nil {
		return SiteResult{}, err
	}
	if err := spec.Validate(dram.DDR4()); err != nil {
		return SiteResult{}, err
	}
	sites := cfg.sites(spec.Sides)
	if siteIdx < 0 || siteIdx >= len(sites) {
		return SiteResult{}, fmt.Errorf("scenario: site %d outside the %d tested sites", siteIdx, len(sites))
	}
	site := sites[siteIdx]
	seed := cfg.siteSeed(spec, siteIdx)
	mit, err := cfg.NewMitigation(kind, seed)
	if err != nil {
		return SiteResult{}, err
	}
	pl, err := cfg.newPlayer(module, spec, site, mit)
	if err != nil {
		return SiteResult{}, err
	}
	if err := pl.playTo(cfg.MaxActs); err != nil {
		return SiteResult{}, err
	}
	full := pl.outcome()
	if full.BitFlips, err = pl.flips(); err != nil {
		return SiteResult{}, err
	}
	sr := SiteResult{
		AggActs:             full.AggActs,
		BitFlips:            full.BitFlips,
		PreventiveRefreshes: full.PreventiveRefreshes,
		TimeCapped:          full.TimeCapped,
	}
	if full.BitFlips == 0 || !search {
		return sr, nil
	}
	if sr.MinActs, sr.MinTime, err = cfg.searchMinActs(module, spec, site, kind, seed, full); err != nil {
		return SiteResult{}, err
	}
	return sr, nil
}

// FoldSites folds per-site results — indexed by site, covering every
// site of SiteCount in order — into the cell Result, reproducing the
// aggregation of Characterize (search true) or Evaluate (search false)
// bit for bit: sums, the max per-site budget, the OR of time caps, and
// the first-site-wins strict minimum of the exposure search.
func FoldSites(module chipgen.ModuleSpec, spec Spec, kind MitigationKind, parts []SiteResult, search bool) Result {
	res := Result{Module: module.ID, Scenario: spec.Name, Mitigation: kind}
	totalAggActs := 0
	for _, sr := range parts {
		res.Sites++
		res.BitFlips += sr.BitFlips
		res.PreventiveRefreshes += sr.PreventiveRefreshes
		res.TimeCapped = res.TimeCapped || sr.TimeCapped
		totalAggActs += sr.AggActs
		if sr.AggActs > res.BudgetActs {
			res.BudgetActs = sr.AggActs
		}
		if sr.BitFlips == 0 {
			continue
		}
		res.SitesWithFlips++
		if !search {
			res.FlipFound = true
			continue
		}
		if !res.FlipFound || sr.MinActs < res.MinActs {
			res.MinActs, res.MinTime, res.FlipFound = sr.MinActs, sr.MinTime, true
		}
	}
	if totalAggActs > 0 {
		res.RefreshOverhead = 1000 * float64(res.PreventiveRefreshes) / float64(totalAggActs)
	}
	return res
}

// searchMinActs finds the smallest aggressor-activation count at which
// the play produces a bitflip, knowing the full-budget play (full) does.
// Doubling bounds the bracket from below, bisection narrows it to the
// accuracy fraction — probing replay-free: one player walks forward,
// pauses at each probe point for a pure flip check, and checkpoints at
// the bracket's lower bound so a failed probe rolls back instead of
// replaying the prefix. Probe outcomes are identical to the replayed
// reference (prefix determinism), so the search returns the same bracket.
func (c Config) searchMinActs(module chipgen.ModuleSpec, spec Spec, site sitePlan,
	kind MitigationKind, seed uint64, full Outcome) (int, dram.TimePS, error) {
	hi, hiElapsed := full.AggActs, full.Elapsed
	mit, err := c.NewMitigation(kind, seed)
	if err != nil {
		return 0, 0, err
	}
	p, err := c.newPlayer(module, spec, site, mit)
	if err != nil {
		return 0, 0, err
	}
	if !p.checkpointable() {
		return c.searchMinActsReplay(module, spec, site, kind, seed, hi, hiElapsed)
	}
	lo := 0
	bestActs, bestTime := hi, hiElapsed
	p.checkpoint()
	// The search only branches on "did anything flip?", so probes go
	// through the early-exit WouldFlip predicate — no row copies.
	probeHit := func(target int) (bool, error) {
		if err := p.playTo(target); err != nil {
			return false, err
		}
		return p.wouldFlip()
	}
	for probe := 256; probe < hi; probe *= 2 {
		hit, err := probeHit(probe)
		if err != nil {
			return 0, 0, err
		}
		if hit {
			bestActs, bestTime = p.out.AggActs, p.stopAt
			hi = p.out.AggActs
			p.rollback()
			break
		}
		lo = p.out.AggActs
		p.advanceCheckpoint()
	}
	for hi-lo > 1 && float64(hi-lo) > c.Accuracy*float64(hi) {
		mid := lo + (hi-lo)/2
		hit, err := probeHit(mid)
		if err != nil {
			return 0, 0, err
		}
		if hit {
			hi, bestActs, bestTime = p.out.AggActs, p.out.AggActs, p.stopAt
			p.rollback()
		} else {
			lo = p.out.AggActs
			p.advanceCheckpoint()
		}
	}
	p.release()
	return bestActs, bestTime, nil
}

// searchMinActsReplay is the reference search for mitigations without
// checkpoint support: every probe replays the pattern from scratch
// through playSite.
func (c Config) searchMinActsReplay(module chipgen.ModuleSpec, spec Spec, site sitePlan,
	kind MitigationKind, seed uint64, hi int, hiElapsed dram.TimePS) (int, dram.TimePS, error) {
	play := func(acts int) (Outcome, error) {
		mit, err := c.NewMitigation(kind, seed)
		if err != nil {
			return Outcome{}, err
		}
		return c.playSite(module, spec, site, mit, acts)
	}
	lo := 0
	bestActs, bestTime := hi, hiElapsed
	for probe := 256; probe < hi; probe *= 2 {
		out, err := play(probe)
		if err != nil {
			return 0, 0, err
		}
		if out.BitFlips > 0 {
			bestActs, bestTime = out.AggActs, out.Elapsed
			hi = out.AggActs
			break
		}
		lo = out.AggActs
	}
	for hi-lo > 1 && float64(hi-lo) > c.Accuracy*float64(hi) {
		mid := lo + (hi-lo)/2
		out, err := play(mid)
		if err != nil {
			return 0, 0, err
		}
		if out.BitFlips > 0 {
			hi, bestActs, bestTime = out.AggActs, out.AggActs, out.Elapsed
		} else {
			lo = out.AggActs
		}
	}
	return bestActs, bestTime, nil
}
