package scenario

import (
	"reflect"
	"testing"
)

// These tests pin the per-site decomposition (the sub-shard work of the
// split scenario experiments) bit-identical to the serial measure loop:
// CharacterizeSite/EvaluateSite over every site, folded in site order,
// must reproduce Characterize/Evaluate exactly.

func TestCharacterizeSitesFoldMatchesMeasure(t *testing.T) {
	mod := testModule(t)
	cfg := testConfig()
	for _, name := range []string{"ds-hammer", "combined-b4-7.8us", "ss-press-70us", "ds-hammer-decoy"} {
		sc, ok := ByName(name)
		if !ok {
			t.Fatalf("scenario %s missing", name)
		}
		want, err := Characterize(mod, sc, MitNone, cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := SiteCount(sc, cfg)
		if n < 2 {
			t.Fatalf("%s: want ≥2 sites for a meaningful split, got %d", name, n)
		}
		parts := make([]SiteResult, n)
		// Sites run out of order on the pool; measure them reversed here to
		// pin order-independence of the per-site work itself.
		for j := n - 1; j >= 0; j-- {
			if parts[j], err = CharacterizeSite(mod, sc, MitNone, cfg, j); err != nil {
				t.Fatal(err)
			}
		}
		if got := FoldSites(mod, sc, MitNone, parts, true); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: folded per-site results diverge from Characterize:\n got %+v\nwant %+v", name, got, want)
		}
	}
}

func TestEvaluateSitesFoldMatchesMeasure(t *testing.T) {
	mod := testModule(t)
	cfg := testConfig()
	sc, _ := ByName("ds-hammer")
	for _, kind := range AllMitigations() {
		want, err := Evaluate(mod, sc, kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := SiteCount(sc, cfg)
		parts := make([]SiteResult, n)
		for j := 0; j < n; j++ {
			if parts[j], err = EvaluateSite(mod, sc, kind, cfg, j); err != nil {
				t.Fatal(err)
			}
		}
		if got := FoldSites(mod, sc, kind, parts, false); !reflect.DeepEqual(got, want) {
			t.Errorf("%s/%s: folded per-site results diverge from Evaluate:\n got %+v\nwant %+v", sc.Name, kind, got, want)
		}
	}
}

func TestMeasureSiteRange(t *testing.T) {
	mod := testModule(t)
	cfg := testConfig()
	sc, _ := ByName("ds-hammer")
	if _, err := CharacterizeSite(mod, sc, MitNone, cfg, SiteCount(sc, cfg)); err == nil {
		t.Fatal("out-of-range site index accepted")
	}
	if _, err := CharacterizeSite(mod, sc, MitNone, cfg, -1); err == nil {
		t.Fatal("negative site index accepted")
	}
}
