// Package scenario is the attack-scenario subsystem: composable,
// deterministic access-pattern generators played against a simulated DRAM
// bank while a mitigation observes every activation online.
//
// A Spec describes one pattern family — single-, double-, or many-sided
// RowHammer, pure RowPress dwells at a configurable tAggON, and the
// combined patterns of "An Experimental Characterization of Combined
// RowHammer and RowPress Read Disturbance in Modern DRAM Chips"
// (arXiv:2406.13080) that interleave hammer bursts at tRAS with long
// press dwells — optionally decorated with benign decoy activations that
// flood sampler-based defenses (the U-TRR-style bypass). The playback
// harness (play.go) turns a Spec into a trace on internal/dram's command
// path, wires a mitigate.Mitigation into the activation stream, and
// measures bitflips, minimum exposure to first flip, and the mitigation's
// preventive-refresh overhead.
package scenario

import (
	"fmt"
	"strings"

	"repro/internal/dram"
)

// Kind selects the slot mix of a scenario.
type Kind int

// The three pattern families.
const (
	// Hammer: every activation opens the row for tRAS (classic RowHammer).
	Hammer Kind = iota
	// Press: every activation is a dwell of TAggON (pure RowPress).
	Press
	// Combined: cycles of Burst tRAS-activations followed by one TAggON
	// dwell (the interleaved patterns of arXiv:2406.13080).
	Combined
)

// String returns the family label.
func (k Kind) String() string {
	switch k {
	case Hammer:
		return "hammer"
	case Press:
		return "press"
	case Combined:
		return "combined"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec is one composable attack scenario. The zero value is not valid;
// scenarios are built literally (see Catalog) or field-by-field and
// checked with Validate.
type Spec struct {
	Name string `json:"name"`
	Kind Kind   `json:"-"`

	// Sides is the aggressor-row count: 1 = single-sided, 2 =
	// double-sided, >2 = many-sided (aggressors ring the victim site,
	// alternating below/above).
	Sides int `json:"sides"`

	// TAggON is the dwell open time of Press and Combined slots. Hammer
	// slots always open for tRAS.
	TAggON dram.TimePS `json:"taggon_ps,omitempty"`

	// Burst is the number of tRAS hammer slots per dwell in a Combined
	// scenario (cycle length Burst+1). Ignored for Hammer and Press.
	Burst int `json:"burst,omitempty"`

	// ExtraOff adds idle time after every slot's precharge (the
	// RowPress-ONOFF pattern of §5.4: longer off time amplifies the
	// per-activation RowHammer damage).
	ExtraOff dram.TimePS `json:"extra_off_ps,omitempty"`

	// DecoyRows interleaves benign activations of distant decoy rows at
	// tRAS. Decoys add no damage near the victims but are observed by the
	// mitigation — sampler-based defenses (TRR) evict real aggressors,
	// and probabilistic ones (PARA) spend refreshes on harmless
	// neighborhoods. With DecoyEvery == 0 the decoy burst is synchronized
	// with the refresh stream (it lands just before each tREFI boundary,
	// the U-TRR-style sampler bypass); with DecoyEvery > 0 it instead
	// runs after every DecoyEvery aggressor slots, unsynchronized.
	DecoyRows  int `json:"decoy_rows,omitempty"`
	DecoyEvery int `json:"decoy_every,omitempty"`
}

// KindName exposes the family label for JSON/CSV listings.
func (s Spec) KindName() string { return s.Kind.String() }

// Validate checks the spec against the module timing.
func (s Spec) Validate(t dram.Timing) error {
	switch {
	case s.Name == "":
		return fmt.Errorf("scenario: spec has no name")
	case s.Sides < 1 || s.Sides > 8:
		return fmt.Errorf("scenario %s: Sides must be in [1,8], got %d", s.Name, s.Sides)
	case s.ExtraOff < 0:
		return fmt.Errorf("scenario %s: negative ExtraOff", s.Name)
	case s.DecoyRows < 0 || s.DecoyEvery < 0:
		return fmt.Errorf("scenario %s: negative decoy parameters", s.Name)
	case s.DecoyEvery > 0 && s.DecoyRows == 0:
		return fmt.Errorf("scenario %s: DecoyEvery needs DecoyRows", s.Name)
	case s.DecoyRows > maxDecoyRows:
		return fmt.Errorf("scenario %s: at most %d decoy rows", s.Name, maxDecoyRows)
	}
	switch s.Kind {
	case Hammer:
		// TAggON ignored; document the invariant loudly if set wrong.
		if s.TAggON != 0 && s.TAggON != t.TRAS {
			return fmt.Errorf("scenario %s: hammer scenarios pin tAggON to tRAS", s.Name)
		}
	case Press, Combined:
		if s.TAggON < t.TRAS {
			return fmt.Errorf("scenario %s: TAggON %s below tRAS %s",
				s.Name, dram.FormatTime(s.TAggON), dram.FormatTime(t.TRAS))
		}
		if s.Kind == Combined && s.Burst < 1 {
			return fmt.Errorf("scenario %s: combined scenarios need Burst ≥ 1", s.Name)
		}
	default:
		return fmt.Errorf("scenario %s: unknown kind %d", s.Name, int(s.Kind))
	}
	return nil
}

// aggressorOnTime returns the open time of the j-th aggressor slot.
func (s Spec) aggressorOnTime(j int, t dram.Timing) dram.TimePS {
	switch s.Kind {
	case Press:
		return s.TAggON
	case Combined:
		if j%(s.Burst+1) == s.Burst {
			return s.TAggON
		}
	}
	return t.TRAS
}

// Pattern renders the one-line structural description used in reports.
func (s Spec) Pattern() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d-sided %s", s.Sides, s.Kind)
	switch s.Kind {
	case Press:
		fmt.Fprintf(&b, " tAggON=%s", dram.FormatTime(s.TAggON))
	case Combined:
		fmt.Fprintf(&b, " burst=%d dwell=%s", s.Burst, dram.FormatTime(s.TAggON))
	}
	if s.ExtraOff > 0 {
		fmt.Fprintf(&b, " off+%s", dram.FormatTime(s.ExtraOff))
	}
	if s.DecoyRows > 0 {
		if s.DecoyEvery > 0 {
			fmt.Fprintf(&b, " +%d decoys/%d", s.DecoyRows, s.DecoyEvery)
		} else {
			fmt.Fprintf(&b, " +%d decoys/REF-sync", s.DecoyRows)
		}
	}
	return b.String()
}

// maxDecoyRows bounds the decoy pool so decoy and site row regions never
// overlap (see sitePlan).
const maxDecoyRows = 32

// Catalog returns the standard scenario matrix: the pure patterns at
// both ends of the hammer-count × row-open-time plane, combined
// interleavings across it, the ONOFF off-time variant, and the decoy
// (TRR-bypass) decorations. Every entry is registered as shards of the
// scenario experiments in internal/core and listed by `rowpress
// scenarios` and GET /v1/scenarios.
func Catalog() []Spec {
	const ns = dram.Nanosecond
	return []Spec{
		{Name: "ss-hammer", Kind: Hammer, Sides: 1},
		{Name: "ds-hammer", Kind: Hammer, Sides: 2},
		{Name: "ms-hammer-8", Kind: Hammer, Sides: 8},
		{Name: "ss-hammer-onoff", Kind: Hammer, Sides: 1, ExtraOff: 1536 * ns},
		{Name: "ss-press-70us", Kind: Press, Sides: 1, TAggON: 70200 * ns},
		{Name: "ds-press-7.8us", Kind: Press, Sides: 2, TAggON: 7800 * ns},
		{Name: "combined-b2-636ns", Kind: Combined, Sides: 2, TAggON: 636 * ns, Burst: 2},
		{Name: "combined-b4-7.8us", Kind: Combined, Sides: 2, TAggON: 7800 * ns, Burst: 4},
		{Name: "combined-b16-7.8us", Kind: Combined, Sides: 2, TAggON: 7800 * ns, Burst: 16},
		{Name: "combined-b4-70us", Kind: Combined, Sides: 2, TAggON: 70200 * ns, Burst: 4},
		{Name: "ds-hammer-decoy", Kind: Hammer, Sides: 2, DecoyRows: 16},
		{Name: "combined-b4-7.8us-decoy", Kind: Combined, Sides: 2, TAggON: 7800 * ns, Burst: 4,
			DecoyRows: 16},
	}
}

// ByName returns the catalog scenario with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns the catalog scenario names in catalog order.
func Names() []string {
	cat := Catalog()
	out := make([]string, len(cat))
	for i, s := range cat {
		out[i] = s.Name
	}
	return out
}
