package scenario

import (
	"encoding/csv"
	"reflect"
	"strings"
	"testing"

	"repro/internal/chipgen"
	"repro/internal/dram"
)

// testConfig is the scaled methodology the package tests run at: big
// enough that double-sided RowHammer and the combined patterns flip
// within the budget, small enough to stay fast.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Sites = 2
	cfg.MaxActs = 120_000
	return cfg
}

func testModule(t *testing.T) chipgen.ModuleSpec {
	t.Helper()
	mod, ok := chipgen.ByID("S0")
	if !ok {
		t.Fatal("module S0 missing from catalog")
	}
	return mod
}

// TestCatalogValid: every shipped scenario validates against DDR4 timing
// and names are unique.
func TestCatalogValid(t *testing.T) {
	timing := dram.DDR4()
	seen := map[string]bool{}
	for _, s := range Catalog() {
		if err := s.Validate(timing); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
	}
	if _, ok := ByName("ds-hammer"); !ok {
		t.Fatal("ByName failed on a catalog entry")
	}
	if _, ok := ByName("no-such"); ok {
		t.Fatal("ByName invented a scenario")
	}
}

// TestSpecValidation pins the rejection cases.
func TestSpecValidation(t *testing.T) {
	timing := dram.DDR4()
	bad := []Spec{
		{},                                  // no name
		{Name: "x", Sides: 0},               // no aggressors
		{Name: "x", Sides: 9},               // too many
		{Name: "x", Sides: 1, ExtraOff: -1}, // negative off
		{Name: "x", Sides: 1, Kind: Press},  // press below tRAS
		{Name: "x", Sides: 1, Kind: Combined, TAggON: timing.TRAS},          // burst < 1
		{Name: "x", Sides: 1, DecoyEvery: 8},                                // DecoyEvery without DecoyRows
		{Name: "x", Sides: 1, DecoyRows: 200},                               // decoy pool overflow
		{Name: "x", Sides: 1, Kind: Hammer, TAggON: 7800 * dram.Nanosecond}, // hammer with dwell
	}
	for i, s := range bad {
		if err := s.Validate(timing); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

// TestCharacterizeDeterministic: the playback harness is a pure function
// of (module, scenario, mitigation, config) — byte-identical results on
// repeated runs are what lets scenario shards live in the engine cache.
func TestCharacterizeDeterministic(t *testing.T) {
	mod := testModule(t)
	cfg := testConfig()
	cfg.MaxActs = 30_000
	for _, name := range []string{"ds-hammer", "combined-b4-7.8us", "ds-hammer-decoy"} {
		sc, _ := ByName(name)
		for _, mk := range []MitigationKind{MitNone, MitPARA, MitTRR} {
			a, err := Characterize(mod, sc, mk, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, mk, err)
			}
			b, err := Characterize(mod, sc, mk, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, mk, err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s/%s not deterministic:\n%+v\n%+v", name, mk, a, b)
			}
		}
	}
}

// TestPlaybackPrefix: a shorter play is an exact prefix of a longer one —
// same flips at the shared exposure — which is the property the
// min-exposure bisection relies on.
func TestPlaybackPrefix(t *testing.T) {
	mod := testModule(t)
	cfg := testConfig()
	sc, _ := ByName("combined-b4-7.8us")
	site := cfg.sites(sc.Sides)[0]
	play := func(acts int) Outcome {
		mit, err := cfg.NewMitigation(MitPARA, 7)
		if err != nil {
			t.Fatal(err)
		}
		out, err := cfg.playSite(mod, sc, site, mit, acts)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	long := play(8_000)
	short := play(4_000)
	if short.AggActs != 4_000 || long.AggActs != 8_000 {
		t.Fatalf("budgets not honored: short=%d long=%d", short.AggActs, long.AggActs)
	}
	if short.Elapsed >= long.Elapsed {
		t.Fatalf("prefix elapsed %d not below full %d", short.Elapsed, long.Elapsed)
	}
	if short.BitFlips > long.BitFlips {
		t.Fatalf("flips not monotone: %d at 4k, %d at 8k", short.BitFlips, long.BitFlips)
	}
}

// TestCombinedPlaneFinding is the arXiv:2406.13080 acceptance check: the
// interleaved hammer×tAggON patterns reach their first bitflip at lower
// activation counts than the pure RowHammer pattern, and in less attack
// time than the pure RowPress patterns — the combined plane dominates
// both pure axes.
func TestCombinedPlaneFinding(t *testing.T) {
	mod := testModule(t)
	cfg := testConfig()
	get := func(name string) Result {
		sc, ok := ByName(name)
		if !ok {
			t.Fatalf("scenario %s missing", name)
		}
		r, err := Characterize(mod, sc, MitNone, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !r.FlipFound {
			t.Fatalf("%s: no flips within budget", name)
		}
		return r
	}
	hammer := get("ds-hammer")
	press := get("ds-press-7.8us")
	for _, name := range []string{"combined-b2-636ns", "combined-b4-7.8us"} {
		combined := get(name)
		if combined.MinActs >= hammer.MinActs {
			t.Errorf("%s needs %d ACs, pure ds-hammer %d — interleaving should flip at lower activation counts",
				name, combined.MinActs, hammer.MinActs)
		}
	}
	fast := get("combined-b2-636ns")
	if fast.MinTime >= press.MinTime {
		t.Errorf("combined-b2-636ns takes %s, pure ds-press-7.8us %s — interleaving should flip in less attack time",
			dram.FormatTime(fast.MinTime), dram.FormatTime(press.MinTime))
	}
	// And a single activation at the combined dwell (pure RowPress at
	// this row-open time) flips nothing: the plane point is reachable by
	// neither pure pattern alone.
	sc, _ := ByName("ds-press-7.8us")
	one := cfg
	one.MaxActs = 2
	r, err := Characterize(mod, sc, MitNone, one)
	if err != nil {
		t.Fatal(err)
	}
	if r.BitFlips != 0 {
		t.Fatalf("two dwells at 7.8us should not flip, got %d", r.BitFlips)
	}
}

// TestImPressStopsPressScenarios is the mitigation acceptance check: on
// press-heavy scenarios ImPress measurably reduces flips versus None
// (here: to zero), where the unweighted Graphene tracker at the same
// threshold misses them, and at far lower overhead than TRR's
// refresh-everything-recent behaviour.
func TestImPressStopsPressScenarios(t *testing.T) {
	mod := testModule(t)
	cfg := testConfig()
	for _, name := range []string{"ds-press-7.8us", "ss-press-70us", "combined-b4-70us"} {
		sc, _ := ByName(name)
		eval := func(mk MitigationKind) Result {
			r, err := Evaluate(mod, sc, mk, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, mk, err)
			}
			return r
		}
		none, graphene, impress, trr := eval(MitNone), eval(MitGraphene), eval(MitImPress), eval(MitTRR)
		if none.BitFlips == 0 {
			t.Fatalf("%s: baseline produced no flips, comparison is vacuous", name)
		}
		if impress.BitFlips >= none.BitFlips {
			t.Errorf("%s: impress %d flips vs none %d — no measurable reduction",
				name, impress.BitFlips, none.BitFlips)
		}
		if graphene.BitFlips != none.BitFlips {
			t.Errorf("%s: unweighted graphene changed flips (%d vs %d) — press damage should stay under its counter",
				name, graphene.BitFlips, none.BitFlips)
		}
		if impress.RefreshOverhead >= trr.RefreshOverhead {
			t.Errorf("%s: impress overhead %.2f not below TRR's %.2f",
				name, impress.RefreshOverhead, trr.RefreshOverhead)
		}
	}
}

// TestDecoyBypassesTRR: the REF-synchronized decoy burst evicts the real
// aggressors from the TRR sampler, so the decorated pattern flips under
// TRR like the unmitigated baseline, while the undecorated pattern is
// fully stopped.
func TestDecoyBypassesTRR(t *testing.T) {
	mod := testModule(t)
	cfg := testConfig()
	eval := func(name string, mk MitigationKind) Result {
		sc, _ := ByName(name)
		r, err := Evaluate(mod, sc, mk, cfg)
		if err != nil {
			t.Fatalf("%s/%s: %v", name, mk, err)
		}
		return r
	}
	plain := eval("ds-hammer", MitTRR)
	if plain.BitFlips != 0 {
		t.Fatalf("TRR should stop undecorated ds-hammer, got %d flips", plain.BitFlips)
	}
	decoy := eval("ds-hammer-decoy", MitTRR)
	baseline := eval("ds-hammer-decoy", MitNone)
	if baseline.BitFlips == 0 {
		t.Fatal("decoy baseline produced no flips, bypass check is vacuous")
	}
	if decoy.BitFlips == 0 {
		t.Fatal("REF-synced decoys failed to bypass the TRR sampler")
	}
	if decoy.BitFlips != baseline.BitFlips {
		t.Errorf("bypassed TRR: %d flips vs unmitigated %d", decoy.BitFlips, baseline.BitFlips)
	}
}

// TestMatrixRenderings: the text table lists every scenario; the CSV
// round-trips through encoding/csv with one record per scenario.
func TestMatrixRenderings(t *testing.T) {
	text := MatrixText()
	for _, name := range Names() {
		if !strings.Contains(text, name) {
			t.Errorf("MatrixText missing %s", name)
		}
	}
	recs, err := csv.NewReader(strings.NewReader(MatrixCSV())).ReadAll()
	if err != nil {
		t.Fatalf("MatrixCSV does not parse: %v", err)
	}
	if len(recs) != len(Catalog())+1 {
		t.Fatalf("CSV has %d records, want %d", len(recs), len(Catalog())+1)
	}
	for i, s := range Catalog() {
		if recs[i+1][0] != s.Name {
			t.Errorf("CSV row %d names %q, want %q", i+1, recs[i+1][0], s.Name)
		}
	}
}

// BenchmarkScenarioPlayback measures the playback hot path: one full
// budget play of the flagship combined pattern, unmitigated and under
// ImPress.
func BenchmarkScenarioPlayback(b *testing.B) {
	mod, _ := chipgen.ByID("S0")
	cfg := DefaultConfig()
	cfg.Sites = 1
	cfg.MaxActs = 50_000
	sc, _ := ByName("combined-b4-7.8us")
	for _, mk := range []MitigationKind{MitNone, MitImPress} {
		b.Run(string(mk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Evaluate(mod, sc, mk, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
