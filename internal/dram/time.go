// Package dram models a DDR4 DRAM module at the command/cell level: bank
// state machines with timing checks, sparse row storage, refresh, and
// per-row read-disturbance exposure accounting. The physics of how exposure
// turns into bitflips is delegated to a Disturber (see internal/disturb);
// this package stays mechanism-agnostic.
//
// All times are simulated picoseconds (TimePS). The simulated command clock
// replaces the 1.5 ns command bus of the paper's FPGA infrastructure
// (DRAM Bender, §3.1) — Go cannot time real DRAM commands, so the clock is
// explicit and fully deterministic.
package dram

import "fmt"

// TimePS is a simulated timestamp or duration in picoseconds.
type TimePS = int64

// Convenient duration units in picoseconds.
const (
	Picosecond  TimePS = 1
	Nanosecond  TimePS = 1000
	Microsecond TimePS = 1000 * Nanosecond
	Millisecond TimePS = 1000 * Microsecond
	Second      TimePS = 1000 * Millisecond
)

// Seconds converts a TimePS duration to float64 seconds.
func Seconds(t TimePS) float64 { return float64(t) / float64(Second) }

// FromSeconds converts float64 seconds to TimePS.
func FromSeconds(s float64) TimePS { return TimePS(s * float64(Second)) }

// FormatTime renders a duration with the unit the paper uses on its axes
// (ns below 1 µs, µs below 1 ms, ms otherwise).
func FormatTime(t TimePS) string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%gns", float64(t)/float64(Nanosecond))
	case t < Millisecond:
		return fmt.Sprintf("%gus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%gms", float64(t)/float64(Millisecond))
	}
}
