package dram

// Timing holds the DRAM timing parameters used in this work (§2.3), in
// picoseconds. A majority of DRAM timing parameters are lower bounds on
// command distances; the bank FSM in this package enforces the ones the
// paper's experiments depend on.
type Timing struct {
	TRAS  TimePS // min ACT -> PRE on the same bank (row-open time floor)
	TRP   TimePS // min PRE -> ACT on the same bank
	TRCD  TimePS // min ACT -> first RD/WR
	TCL   TimePS // RD -> data (column access latency)
	TBL   TimePS // burst: occupancy of one column access
	TREFI TimePS // nominal REF-to-REF interval
	TREFW TimePS // refresh window: every row refreshed once per TREFW
	TRFC  TimePS // REF execution time (bank unavailable)
}

// DDR4 returns the DDR4 timing set used throughout the paper: tRAS = 36 ns
// (the paper's minimum tAggON, covering the 32–35 ns range of JEDEC DDR4
// with margin, footnote 3), tREFI = 7.8 µs, tREFW = 64 ms.
func DDR4() Timing {
	return Timing{
		TRAS:  36 * Nanosecond,
		TRP:   15 * Nanosecond,
		TRCD:  15 * Nanosecond,
		TCL:   15 * Nanosecond,
		TBL:   3 * Nanosecond, // 8-beat burst at 3200 MT/s ≈ 2.5 ns, rounded
		TREFI: 7800 * Nanosecond,
		TREFW: 64 * Millisecond,
		TRFC:  350 * Nanosecond,
	}
}

// TRC returns the minimum ACT-to-ACT time on the same bank
// (tRC = tRAS + tRP, §5.4).
func (t Timing) TRC() TimePS { return t.TRAS + t.TRP }

// RefreshesPerWindow returns how many REF commands fall in one refresh
// window at the nominal rate.
func (t Timing) RefreshesPerWindow() int {
	return int(t.TREFW / t.TREFI)
}

// MaxOpenNoPostpone is the longest a row may stay open if the memory
// controller never postpones refreshes (= tREFI, §2.3).
func (t Timing) MaxOpenNoPostpone() TimePS { return t.TREFI }

// MaxOpenPostponed is the longest a row may stay open when the controller
// postpones the maximum eight REF commands allowed by DDR4 (= 9 × tREFI).
func (t Timing) MaxOpenPostponed() TimePS { return 9 * t.TREFI }
