package dram

import (
	"math"
	"testing"
	"testing/quick"
)

// probeDisturber is a deterministic toy model whose increments depend on
// every input, so the batch-equivalence test cannot pass by accident.
type probeDisturber struct{}

func (probeDisturber) HammerIncrement(on, off TimePS, tempC float64, d int) float64 {
	return (1 + Seconds(off)*1e3) * tempC / float64(d*d) * 1e-6
}

func (probeDisturber) PressIncrement(on, off TimePS, tempC float64, d int) float64 {
	return Seconds(on) * tempC / float64(d) * 1e-3
}

func (probeDisturber) RetentionAccel(float64) float64 { return 0 }

func (probeDisturber) ApplyFlips(_, _ int, _ []byte, _ NeighborData, _ Exposure) int { return 0 }

func expClose(a, b Exposure) bool {
	near := func(x, y float64) bool {
		if x == y {
			return true
		}
		diff := math.Abs(x - y)
		scale := math.Max(math.Abs(x), math.Abs(y))
		return diff <= 1e-9*scale
	}
	return near(a.HammerAbove, b.HammerAbove) && near(a.HammerBelow, b.HammerBelow) &&
		near(a.PressAbove, b.PressAbove) && near(a.PressBelow, b.PressBelow)
}

// TestHammerBatchEquivalence is the core property test: for any small spec,
// HammerBatch must leave every row's exposure equal to the command-path
// Hammer loop.
func TestHammerBatchEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		mkSpec := func(s uint64) HammerSpec {
			rows := []int{10 + int(s%5)}
			if s%3 == 0 {
				rows = append(rows, rows[0]+2) // double-sided
			}
			return HammerSpec{
				Bank:     int(s % 2),
				Rows:     rows,
				Count:    1 + int((s/7)%23),
				OnTime:   36*Nanosecond + TimePS(s%11)*100*Nanosecond,
				ExtraOff: TimePS((s/5)%3) * 200 * Nanosecond,
			}
		}
		spec := mkSpec(seed)
		ref := testModule(probeDisturber{})
		bat := testModule(probeDisturber{})
		if _, err := ref.Hammer(0, spec); err != nil {
			t.Logf("hammer error: %v", err)
			return false
		}
		if _, err := bat.HammerBatch(0, spec); err != nil {
			t.Logf("batch error: %v", err)
			return false
		}
		for row := 0; row < ref.Geo.RowsPerBank; row++ {
			if !expClose(ref.PendingExposure(spec.Bank, row), bat.PendingExposure(spec.Bank, row)) {
				t.Logf("row %d: ref=%+v batch=%+v spec=%+v",
					row, ref.PendingExposure(spec.Bank, row), bat.PendingExposure(spec.Bank, row), spec)
				return false
			}
		}
		if ref.Counters() != bat.Counters() {
			t.Logf("counters differ: %+v vs %+v", ref.Counters(), bat.Counters())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHammerBatchEquivalenceSequential(t *testing.T) {
	// Two back-to-back hammer loops: the second loop's first-activation off
	// time depends on state left by the first, which both paths must track.
	specA := HammerSpec{Bank: 0, Rows: []int{20}, Count: 7, OnTime: 36 * Nanosecond}
	specB := HammerSpec{Bank: 0, Rows: []int{20, 22}, Count: 9, OnTime: 500 * Nanosecond}

	ref := testModule(probeDisturber{})
	bat := testModule(probeDisturber{})
	endR, err := ref.Hammer(0, specA)
	if err != nil {
		t.Fatal(err)
	}
	endB, err := bat.HammerBatch(0, specA)
	if err != nil {
		t.Fatal(err)
	}
	if endR != endB {
		t.Fatalf("end times differ: %d vs %d", endR, endB)
	}
	if _, err := ref.Hammer(endR+Microsecond, specB); err != nil {
		t.Fatal(err)
	}
	if _, err := bat.HammerBatch(endB+Microsecond, specB); err != nil {
		t.Fatal(err)
	}
	for row := 15; row < 30; row++ {
		if !expClose(ref.PendingExposure(0, row), bat.PendingExposure(0, row)) {
			t.Errorf("row %d: ref=%+v batch=%+v", row, ref.PendingExposure(0, row), bat.PendingExposure(0, row))
		}
	}
}

func TestHammerSpecValidation(t *testing.T) {
	m := testModule(nil)
	bad := []HammerSpec{
		{Bank: 0, Rows: nil, Count: 1, OnTime: 36 * Nanosecond},
		{Bank: 0, Rows: []int{1, 1}, Count: 1, OnTime: 36 * Nanosecond},
		{Bank: 0, Rows: []int{1}, Count: 0, OnTime: 36 * Nanosecond},
		{Bank: 0, Rows: []int{1}, Count: 1, OnTime: 35 * Nanosecond},
		{Bank: 0, Rows: []int{1}, Count: 1, OnTime: 36 * Nanosecond, ExtraOff: -1},
		{Bank: 9, Rows: []int{1}, Count: 1, OnTime: 36 * Nanosecond},
		{Bank: 0, Rows: []int{-1}, Count: 1, OnTime: 36 * Nanosecond},
	}
	for i, s := range bad {
		if err := s.Validate(m); err == nil {
			t.Errorf("spec %d should be invalid: %+v", i, s)
		}
	}
	good := HammerSpec{Bank: 0, Rows: []int{5, 7}, Count: 10, OnTime: 36 * Nanosecond}
	if err := good.Validate(m); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestHammerSpecTimes(t *testing.T) {
	tm := DDR4()
	s := HammerSpec{Rows: []int{1}, Count: 10, OnTime: 100 * Nanosecond, ExtraOff: 20 * Nanosecond}
	slot := s.SlotTime(tm)
	if slot != 100*Nanosecond+tm.TRP+20*Nanosecond {
		t.Fatalf("slot = %d", slot)
	}
	if s.TotalTime(tm) != 10*slot {
		t.Fatalf("total = %d", s.TotalTime(tm))
	}
}

func TestHammerBlastRadiusReach(t *testing.T) {
	m := testModule(probeDisturber{})
	spec := HammerSpec{Bank: 0, Rows: []int{30}, Count: 100, OnTime: 36 * Nanosecond}
	if _, err := m.HammerBatch(0, spec); err != nil {
		t.Fatal(err)
	}
	for d := 1; d <= BlastRadius; d++ {
		if m.PendingExposure(0, 30-d).IsZero() || m.PendingExposure(0, 30+d).IsZero() {
			t.Errorf("victim at distance %d received no exposure", d)
		}
	}
	if !m.PendingExposure(0, 30-BlastRadius-1).IsZero() {
		t.Error("exposure beyond blast radius")
	}
	// Aggressor's own exposure must be clear (it was activated).
	if !m.PendingExposure(0, 30).IsZero() {
		t.Error("aggressor retained exposure")
	}
}

func TestHammerSidedness(t *testing.T) {
	m := testModule(probeDisturber{})
	if _, err := m.HammerBatch(0, HammerSpec{Bank: 0, Rows: []int{30}, Count: 10, OnTime: 36 * Nanosecond}); err != nil {
		t.Fatal(err)
	}
	below := m.PendingExposure(0, 29) // aggressor above it
	above := m.PendingExposure(0, 31) // aggressor below it
	if below.HammerAbove == 0 || below.HammerBelow != 0 {
		t.Errorf("row 29 sides wrong: %+v", below)
	}
	if above.HammerBelow == 0 || above.HammerAbove != 0 {
		t.Errorf("row 31 sides wrong: %+v", above)
	}
}

func TestRefreshResetsExposure(t *testing.T) {
	geo := Geometry{Banks: 1, RowsPerBank: 16, RowBytes: 64}
	m := NewModule(geo, DDR4(), 50, probeDisturber{})
	if _, err := m.HammerBatch(0, HammerSpec{Bank: 0, Rows: []int{8}, Count: 10, OnTime: 36 * Nanosecond}); err != nil {
		t.Fatal(err)
	}
	if m.PendingExposure(0, 7).IsZero() {
		t.Fatal("setup: no exposure")
	}
	// 16 rows / 8205 refreshes per window -> every REF covers all rows in
	// chunk 0 (rowsPerChunk = 1); refresh them all.
	now := m.Now() + Microsecond
	for i := 0; i < 16; i++ {
		if err := m.Refresh(now); err != nil {
			t.Fatal(err)
		}
		now += m.Timing.TRFC + Microsecond
	}
	if !m.PendingExposure(0, 7).IsZero() {
		t.Error("refresh did not clear exposure")
	}
}
