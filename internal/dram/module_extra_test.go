package dram

import (
	"testing"
	"testing/quick"
)

// retentionProbe leaks deterministically: RetentionAccel doubles per 10°C,
// ApplyFlips counts as flips any row whose retention stress exceeds 1.
type retentionProbe struct{ flips *int }

func (retentionProbe) HammerIncrement(_, _ TimePS, _ float64, _ int) float64 { return 0 }
func (retentionProbe) PressIncrement(_, _ TimePS, _ float64, _ int) float64  { return 0 }
func (retentionProbe) RetentionAccel(tempC float64) float64 {
	accel := 1.0
	for t := 50.0; t < tempC; t += 10 {
		accel *= 2
	}
	return accel
}
func (p retentionProbe) ApplyFlips(_, _ int, _ []byte, _ NeighborData, exp Exposure) int {
	if exp.Retention >= 1 {
		*p.flips = *p.flips + 1
		return 1
	}
	return 0
}

func TestRetentionIntegratesOverTemperatureSchedule(t *testing.T) {
	flips := 0
	geo := Geometry{Banks: 1, RowsPerBank: 16, RowBytes: 64}
	m := NewModule(geo, DDR4(), 50, retentionProbe{&flips})
	if err := m.InitRow(0, 0, 5, 0xFF); err != nil {
		t.Fatal(err)
	}
	// 0.3 s at 50°C (accel 1) + 0.2 s at 70°C (accel 4) = 1.1 stress-sec.
	m.SetTemperature(300*Millisecond, 70)
	m.restoreRowForTest(0, 5, 500*Millisecond)
	if flips != 1 {
		t.Fatalf("expected exactly one retention flip, got %d", flips)
	}

	// Same wall time entirely at 50°C: only 0.5 stress-sec — no flip.
	flips = 0
	m2 := NewModule(geo, DDR4(), 50, retentionProbe{&flips})
	if err := m2.InitRow(0, 0, 5, 0xFF); err != nil {
		t.Fatal(err)
	}
	m2.restoreRowForTest(0, 5, 500*Millisecond)
	if flips != 0 {
		t.Fatalf("expected no flip at constant 50C, got %d", flips)
	}
}

// restoreRowForTest exposes the internal restore path for retention tests.
func (m *Module) restoreRowForTest(bank, row int, at TimePS) {
	m.restoreRow(bank, row, at)
}

func TestRefreshCoversAllRowsWithinWindow(t *testing.T) {
	// Property: after RefreshesPerWindow REF commands, every touched row
	// has been restored (its exposure is cleared).
	f := func(seed uint64) bool {
		geo := Geometry{Banks: 1, RowsPerBank: 4096, RowBytes: 64}
		m := NewModule(geo, DDR4(), 50, probeDisturber{})
		agg := int(seed%4000) + 10
		if _, err := m.HammerBatch(0, HammerSpec{Bank: 0, Rows: []int{agg}, Count: 5, OnTime: 36 * Nanosecond}); err != nil {
			return false
		}
		now := m.Now() + Microsecond
		for i := 0; i < m.Timing.RefreshesPerWindow(); i++ {
			if err := m.Refresh(now); err != nil {
				return false
			}
			now += m.Timing.TRFC + Nanosecond
		}
		for d := -BlastRadius; d <= BlastRadius; d++ {
			if !m.PendingExposure(0, agg+d).IsZero() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestInitRowErrors(t *testing.T) {
	m := testModule(nil)
	if err := m.InitRow(0, 9, 0, 0x00); err == nil {
		t.Error("bad bank must fail")
	}
	if err := m.InitRow(0, 0, 99999, 0x00); err == nil {
		t.Error("bad row must fail")
	}
}

func TestRestoreRowErrors(t *testing.T) {
	m := testModule(nil)
	if err := m.RestoreRow(0, 9, 0); err == nil {
		t.Error("bad bank must fail")
	}
	if err := m.RestoreRow(0, 0, -1); err == nil {
		t.Error("bad row must fail")
	}
}

func TestWriteRejectsWrongSize(t *testing.T) {
	m := testModule(nil)
	if err := m.Activate(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(m.Timing.TRCD, 0, 0, make([]byte, 10)); err == nil {
		t.Error("short write must fail")
	}
}

func TestPeekRowSafety(t *testing.T) {
	m := testModule(nil)
	if m.PeekRow(0, 5) != nil {
		t.Error("untouched row should peek nil")
	}
	if m.PeekRow(-1, 5) != nil {
		t.Error("bad bank should peek nil")
	}
	if err := m.InitRow(0, 0, 5, 0xEE); err != nil {
		t.Fatal(err)
	}
	data := m.PeekRow(0, 5)
	if data == nil || data[0] != 0xEE {
		t.Error("peek should return contents")
	}
	data[0] = 0 // must be a copy
	if m.PeekRow(0, 5)[0] != 0xEE {
		t.Error("PeekRow must copy")
	}
}

func TestHammerCommandPathMatchesSpecTotalTime(t *testing.T) {
	m := testModule(probeDisturber{})
	spec := HammerSpec{Bank: 0, Rows: []int{10}, Count: 5, OnTime: 100 * Nanosecond, ExtraOff: 50 * Nanosecond}
	end, err := m.Hammer(0, spec)
	if err != nil {
		t.Fatal(err)
	}
	if end != spec.TotalTime(m.Timing) {
		t.Fatalf("end = %d, want %d", end, spec.TotalTime(m.Timing))
	}
}

func TestSeconds(t *testing.T) {
	if Seconds(Second) != 1 || Seconds(Millisecond) != 1e-3 {
		t.Error("Seconds conversion")
	}
	if FromSeconds(0.5) != 500*Millisecond {
		t.Error("FromSeconds conversion")
	}
}
