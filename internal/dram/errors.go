package dram

import "fmt"

// TimingError reports a DRAM command that violates a timing parameter or
// the bank state machine. The testing infrastructure surfaces these rather
// than silently mis-executing, mirroring how a real module would misbehave.
type TimingError struct {
	Cmd    string
	Bank   int
	Detail string
}

func (e *TimingError) Error() string {
	return fmt.Sprintf("dram: %s on bank %d: %s", e.Cmd, e.Bank, e.Detail)
}

func timingErr(cmd string, bank int, format string, args ...any) error {
	return &TimingError{Cmd: cmd, Bank: bank, Detail: fmt.Sprintf(format, args...)}
}

// AddressError reports an out-of-range bank, row, or column.
type AddressError struct {
	What  string
	Value int
	Limit int
}

func (e *AddressError) Error() string {
	return fmt.Sprintf("dram: %s %d out of range [0,%d)", e.What, e.Value, e.Limit)
}
