package dram

import "sort"

// Closed-form exposure accrual.
//
// HammerIncrement and PressIncrement are pure in (onTime, offTime, tempC,
// distance), so a periodic loop's disturbance is Count × per-slot
// increment — there is no need to walk the loop slot by slot. This file
// is the single source of truth for that closed form: the batched
// executor (HammerBatch) and the replay-free pure probe (HammerExposures,
// and internal/characterize's search prober on top of it) both drive
// accrueSpec, so they perform bit-identical floating-point operations in
// bit-identical order. That shared order is what lets the golden-report
// tests demand byte equality between the per-command path and the closed
// form.

// AggSchedule describes one aggressor row's share of a HammerSpec loop:
// Count activations split round-robin across spec.Rows.
type AggSchedule struct {
	Row      int
	Acts     int // activations this row performs (0: listed row is a plain victim)
	LastSlot int // global slot index of this row's last activation
}

// Schedule returns the per-aggressor activation schedule of the loop.
func (s HammerSpec) Schedule() []AggSchedule {
	n := len(s.Rows)
	sched := make([]AggSchedule, n)
	for idx, r := range s.Rows {
		acts := s.Count / n
		if idx < s.Count%n {
			acts++
		}
		sched[idx] = AggSchedule{Row: r, Acts: acts, LastSlot: idx + (acts-1)*n}
	}
	return sched
}

// SteadyOff returns the steady-state off time of one aggressor between its
// own activations — the other aggressors' on-times plus every slot's gap —
// capped at the fully recovered bound.
func (s HammerSpec) SteadyOff(t Timing) TimePS {
	n := len(s.Rows)
	off := TimePS(n-1)*s.OnTime + TimePS(n)*(t.TRP+s.ExtraOff)
	if off > recoveredOff {
		off = recoveredOff
	}
	return off
}

// accrueSpec delivers n activation increments from aggRow to every
// non-skipped row inside the blast radius, folding the n slots into one
// multiply. add receives (victim row, aggressor-above?, hammer, press) in
// a fixed order — distance ascending, lower victim before upper — which
// every accrual path must share for float-exact equivalence.
func accrueSpec(dist Disturber, rowsPerBank, aggRow int, onTime, offTime TimePS, tempC float64,
	n int, skip map[int]bool, add func(victim int, above bool, h, p float64)) {
	fn := float64(n)
	for d := 1; d <= BlastRadius; d++ {
		h := dist.HammerIncrement(onTime, offTime, tempC, d) * fn
		p := dist.PressIncrement(onTime, offTime, tempC, d) * fn
		if h == 0 && p == 0 {
			continue
		}
		if v := aggRow - d; v >= 0 && !skip[v] {
			add(v, true, h, p)
		}
		if v := aggRow + d; v < rowsPerBank && !skip[v] {
			add(v, false, h, p)
		}
	}
}

// AccrueOne walks one activation's blast-radius increments (aggRow open
// for onTime after offTime) through the shared accrual order, handing
// each (victim, aggressor-above?, hammer, press) increment to add.
// External probe harnesses use it so their overlays perform the same
// float operations as the module's own PRE path.
func (m *Module) AccrueOne(aggRow int, onTime, offTime TimePS, tempC float64, add func(victim int, above bool, h, p float64)) {
	accrueSpec(m.dist, m.Geo.RowsPerBank, aggRow, onTime, offTime, tempC, 1, nil, add)
}

// VictimExposure is the closed-form exposure delta a hammer loop delivers
// to one victim row.
type VictimExposure struct {
	Row int
	Exp Exposure
}

// HammerExposures computes, without executing a single command, the
// exposure deltas spec would deliver to every non-aggressor row — the
// closed form of HammerBatch's bulk-accrual phase, accumulating per-victim
// float sums in the exact order the executor does. Aggressor-row mutual
// exposure is excluded: in the command path every aggressor activation
// wipes its own accumulated exposure, so only post-tail residue remains
// there (see HammerBatch), which no search observes.
//
// firstOff supplies the row-off time preceding each aggressor's first
// activation (the probe harness threads its own virtual precharge
// history); nil falls back to the module's recorded per-row PRE state.
// Results are sorted by row.
func (m *Module) HammerExposures(at TimePS, spec HammerSpec, firstOff func(row int, firstActAt TimePS) TimePS) []VictimExposure {
	if firstOff == nil {
		firstOff = func(row int, firstActAt TimePS) TimePS {
			return m.prevOff(spec.Bank, row, firstActAt)
		}
	}
	sched := spec.Schedule()
	isAggressor := make(map[int]bool, len(sched))
	for _, ag := range sched {
		if ag.Acts > 0 {
			isAggressor[ag.Row] = true
		}
	}
	slot := spec.SlotTime(m.Timing)
	steadyOff := spec.SteadyOff(m.Timing)
	tempC := m.TemperatureAt(at)

	deltas := make(map[int]*Exposure)
	add := func(victim int, above bool, h, p float64) {
		e := deltas[victim]
		if e == nil {
			e = &Exposure{}
			deltas[victim] = e
		}
		if above {
			e.HammerAbove += h
			e.PressAbove += p
		} else {
			e.HammerBelow += h
			e.PressBelow += p
		}
	}
	for idx, ag := range sched {
		if ag.Acts == 0 {
			continue
		}
		fOff := firstOff(ag.Row, at+TimePS(idx)*slot)
		accrueSpec(m.dist, m.Geo.RowsPerBank, ag.Row, spec.OnTime, fOff, tempC, 1, isAggressor, add)
		if ag.Acts > 1 {
			accrueSpec(m.dist, m.Geo.RowsPerBank, ag.Row, spec.OnTime, steadyOff, tempC, ag.Acts-1, isAggressor, add)
		}
	}

	out := make([]VictimExposure, 0, len(deltas))
	for row, e := range deltas {
		out = append(out, VictimExposure{Row: row, Exp: *e})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Row < out[j].Row })
	return out
}
