package dram

import "fmt"

// Slot is one activation of an access-pattern trace: open Row for OnTime,
// precharge, then stay off for tRP + ExtraOff before the next slot. Unlike
// HammerSpec — a fixed-period loop over one aggressor set — a trace may
// vary the row and the open time per slot, which is what the combined
// RowHammer+RowPress patterns of arXiv:2406.13080 need (hammer bursts at
// tRAS interleaved with long press dwells).
type Slot struct {
	Row      int
	OnTime   TimePS // row-open time; min tRAS
	ExtraOff TimePS // extra off time beyond tRP after the PRE
}

// Duration returns the slot's total bus occupancy.
func (s Slot) Duration(t Timing) TimePS { return s.OnTime + t.TRP + s.ExtraOff }

// TraceObserver watches a trace's activations as they retire. It is
// invoked once per slot, after the slot's PRE completes, with the slot
// index, the slot, and the current time (the PRE instant). Observers may
// issue RestoreRow against the module (an online mitigation's preventive
// refresh); returning an error aborts the playback.
type TraceObserver func(i int, s Slot, now TimePS) error

// PlayTrace plays n slots of a deterministic trace through the command
// path, starting at time at on one bank. slot(i) generates the i-th slot
// (the trace is streamed, never materialized, so million-activation
// patterns cost no memory). observe may be nil. It returns the completion
// time of the last slot's off phase.
//
// PlayTrace is the scenario-playback primitive: every activation goes
// through Activate/Precharge, so disturbance accrual, per-row off-time
// tracking, and flip materialization behave exactly as they do for any
// other command stream — and an observer sees every activation the way an
// in-DRAM or controller-side mitigation would.
func (m *Module) PlayTrace(at TimePS, bank, n int, slot func(i int) Slot, observe TraceObserver) (TimePS, error) {
	if err := m.checkBank(bank); err != nil {
		return at, err
	}
	if n < 0 {
		return at, fmt.Errorf("dram: trace slot count must be non-negative, got %d", n)
	}
	if m.banks[bank].open {
		return at, timingErr("ACT", bank, "bank must be precharged before a trace")
	}
	now := at
	for i := 0; i < n; i++ {
		s := slot(i)
		if s.OnTime < m.Timing.TRAS {
			return now, fmt.Errorf("dram: trace slot %d: OnTime %s below tRAS %s",
				i, FormatTime(s.OnTime), FormatTime(m.Timing.TRAS))
		}
		if s.ExtraOff < 0 {
			return now, fmt.Errorf("dram: trace slot %d: negative ExtraOff", i)
		}
		if err := m.Activate(now, bank, s.Row); err != nil {
			return now, err
		}
		preAt := now + s.OnTime
		if err := m.Precharge(preAt, bank); err != nil {
			return now, err
		}
		if observe != nil {
			if err := observe(i, s, preAt); err != nil {
				return preAt, err
			}
		}
		now += s.Duration(m.Timing)
	}
	return now, nil
}
