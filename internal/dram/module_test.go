package dram

import (
	"errors"
	"testing"
)

func testModule(dist Disturber) *Module {
	geo := Geometry{Banks: 2, RowsPerBank: 64, RowBytes: 256}
	return NewModule(geo, DDR4(), 50, dist)
}

func TestGeometryValidate(t *testing.T) {
	cases := []struct {
		geo Geometry
		ok  bool
	}{
		{Geometry{Banks: 1, RowsPerBank: 1, RowBytes: 64}, true},
		{Geometry{Banks: 0, RowsPerBank: 1, RowBytes: 64}, false},
		{Geometry{Banks: 1, RowsPerBank: 0, RowBytes: 64}, false},
		{Geometry{Banks: 1, RowsPerBank: 1, RowBytes: 65}, false},
		{Geometry{Banks: 1, RowsPerBank: 1, RowBytes: 0}, false},
	}
	for _, c := range cases {
		err := c.geo.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) err=%v, want ok=%v", c.geo, err, c.ok)
		}
	}
}

func TestActivateReadWritePrecharge(t *testing.T) {
	m := testModule(nil)
	tm := m.Timing
	if err := m.Activate(0, 0, 5); err != nil {
		t.Fatal(err)
	}
	block := make([]byte, BlockBytes)
	Fill(block, 0xAB)
	if err := m.Write(tm.TRCD, 0, 2, block); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(tm.TRCD+tm.TBL, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0xAB {
			t.Fatalf("byte %d = %#x, want 0xAB", i, b)
		}
	}
	if err := m.Precharge(tm.TRAS, 0); err != nil {
		t.Fatal(err)
	}
	c := m.Counters()
	if c.Activates != 1 || c.Precharges != 1 || c.Reads != 1 || c.Writes != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestTimingViolations(t *testing.T) {
	m := testModule(nil)
	tm := m.Timing

	// PRE before tRAS.
	if err := m.Activate(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	err := m.Precharge(tm.TRAS-1, 0)
	var te *TimingError
	if !errors.As(err, &te) {
		t.Fatalf("early PRE should be a TimingError, got %v", err)
	}
	if err := m.Precharge(tm.TRAS, 0); err != nil {
		t.Fatal(err)
	}

	// ACT before tRP.
	if err := m.Activate(tm.TRAS+tm.TRP-1, 0, 2); !errors.As(err, &te) {
		t.Fatalf("early ACT should be a TimingError, got %v", err)
	}
	if err := m.Activate(tm.TRAS+tm.TRP, 0, 2); err != nil {
		t.Fatal(err)
	}

	// Double ACT.
	if err := m.Activate(tm.TRAS*10, 0, 3); !errors.As(err, &te) {
		t.Fatalf("ACT on open bank should fail, got %v", err)
	}

	// RD before tRCD.
	if _, err := m.Read(tm.TRAS+tm.TRP+tm.TRCD-1, 0, 0); !errors.As(err, &te) {
		t.Fatalf("early RD should fail, got %v", err)
	}

	// PRE with no open row on other bank.
	if err := m.Precharge(tm.TRAS*100, 1); !errors.As(err, &te) {
		t.Fatalf("PRE on idle bank should fail, got %v", err)
	}
}

func TestAddressErrors(t *testing.T) {
	m := testModule(nil)
	var ae *AddressError
	if err := m.Activate(0, 99, 0); !errors.As(err, &ae) {
		t.Fatalf("bad bank should be AddressError, got %v", err)
	}
	if err := m.Activate(0, 0, 9999); !errors.As(err, &ae) {
		t.Fatalf("bad row should be AddressError, got %v", err)
	}
	if err := m.Activate(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(m.Timing.TRCD, 0, 999); !errors.As(err, &ae) {
		t.Fatalf("bad block should be AddressError, got %v", err)
	}
}

func TestRefreshRequiresPrecharged(t *testing.T) {
	m := testModule(nil)
	if err := m.Activate(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Refresh(m.Timing.TRAS); err == nil {
		t.Fatal("REF with open row should fail")
	}
	if err := m.Precharge(m.Timing.TRAS, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Refresh(m.Timing.TRAS + m.Timing.TRP); err != nil {
		t.Fatal(err)
	}
	// Refresh makes the bank briefly unavailable.
	if err := m.Activate(m.Timing.TRAS+m.Timing.TRP+1, 0, 1); err == nil {
		t.Fatal("ACT during tRFC should fail")
	}
}

func TestInitRowAndFetchRow(t *testing.T) {
	m := testModule(nil)
	if err := m.InitRow(0, 0, 7, 0x55); err != nil {
		t.Fatal(err)
	}
	data, _, err := m.FetchRow(Microsecond, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != m.Geo.RowBytes {
		t.Fatalf("row length %d", len(data))
	}
	for _, b := range data {
		if b != 0x55 {
			t.Fatalf("byte %#x, want 0x55", b)
		}
	}
}

func TestTemperatureSchedule(t *testing.T) {
	m := testModule(nil)
	m.SetTemperature(Millisecond, 80)
	if got := m.TemperatureAt(0); got != 50 {
		t.Errorf("T(0) = %v, want 50", got)
	}
	if got := m.TemperatureAt(Millisecond); got != 80 {
		t.Errorf("T(1ms) = %v, want 80", got)
	}
	if got := m.TemperatureAt(2 * Millisecond); got != 80 {
		t.Errorf("T(2ms) = %v, want 80", got)
	}
}

func TestFormatTime(t *testing.T) {
	cases := map[TimePS]string{
		36 * Nanosecond:   "36ns",
		7800 * Nanosecond: "7.8us",
		30 * Millisecond:  "30ms",
	}
	for in, want := range cases {
		if got := FormatTime(in); got != want {
			t.Errorf("FormatTime(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestTimingDerived(t *testing.T) {
	tm := DDR4()
	if tm.TRC() != tm.TRAS+tm.TRP {
		t.Error("TRC mismatch")
	}
	if tm.RefreshesPerWindow() != 8205 { // 64ms / 7.8us
		t.Errorf("RefreshesPerWindow = %d", tm.RefreshesPerWindow())
	}
	if tm.MaxOpenNoPostpone() != tm.TREFI || tm.MaxOpenPostponed() != 9*tm.TREFI {
		t.Error("max-open bounds wrong")
	}
}

func TestDataPatternBytes(t *testing.T) {
	// Table 2 of the paper.
	cases := []struct {
		p          DataPattern
		agg, vict  byte
		wantString string
	}{
		{CheckerBoard, 0xAA, 0x55, "CB"},
		{CheckerBoardI, 0x55, 0xAA, "CBI"},
		{RowStripe, 0xFF, 0x00, "RS"},
		{RowStripeI, 0x00, 0xFF, "RSI"},
		{ColStripe, 0x55, 0x55, "CS"},
		{ColStripeI, 0xAA, 0xAA, "CSI"},
	}
	for _, c := range cases {
		if c.p.AggressorByte() != c.agg || c.p.VictimByte() != c.vict {
			t.Errorf("%v bytes = %#x/%#x, want %#x/%#x",
				c.p, c.p.AggressorByte(), c.p.VictimByte(), c.agg, c.vict)
		}
		if c.p.String() != c.wantString {
			t.Errorf("String = %q, want %q", c.p.String(), c.wantString)
		}
	}
}
