package dram

import "fmt"

// BlockBytes is the column-access granularity: one cache block, matching
// the real-system demonstration where a DRAM row holds 128 cache blocks
// (footnote 22).
const BlockBytes = 64

// Geometry describes the addressable shape of a simulated module. RowBytes
// is a scaling knob: the paper's modules have 8 KiB rows; experiments here
// default to smaller rows so that full figure sweeps complete quickly while
// preserving per-bit statistics (densities are per-bit, so fractions and
// distributions keep their shape).
type Geometry struct {
	Banks       int // banks per module (rank-level detail is flattened)
	RowsPerBank int
	RowBytes    int // bytes per row; must be a multiple of BlockBytes
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.Banks <= 0 || g.RowsPerBank <= 0 {
		return fmt.Errorf("dram: geometry must have positive banks and rows, got %+v", g)
	}
	if g.RowBytes <= 0 || g.RowBytes%BlockBytes != 0 {
		return fmt.Errorf("dram: RowBytes must be a positive multiple of %d, got %d", BlockBytes, g.RowBytes)
	}
	return nil
}

// BlocksPerRow returns the number of cache blocks in one row.
func (g Geometry) BlocksPerRow() int { return g.RowBytes / BlockBytes }

// BitsPerRow returns the number of cells in one row.
func (g Geometry) BitsPerRow() int { return g.RowBytes * 8 }

// DefaultGeometry is the experiment geometry: 4 banks, 4096 rows per bank,
// and paper-faithful 8 KiB rows (so per-row vulnerable-cell statistics —
// and with them the ACmin distributions — match the calibration anchors
// without rescaling). Row storage is sparse, so unused rows cost nothing.
func DefaultGeometry() Geometry {
	return Geometry{Banks: 4, RowsPerBank: 4096, RowBytes: 8192}
}
