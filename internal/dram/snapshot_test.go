package dram

import (
	"bytes"
	"testing"
)

// thresholdDisturber flips cells deterministically once accumulated hammer
// or press exposure crosses a per-byte threshold, with a neighbor-coupled
// weight so data-coupling effects are exercised. It gives the checkpoint
// and probe tests real flips to preserve and to predict.
type thresholdDisturber struct {
	hInc, pInc float64
	threshold  float64
}

func (d thresholdDisturber) HammerIncrement(on, off TimePS, tempC float64, dist int) float64 {
	return d.hInc / float64(dist)
}

func (d thresholdDisturber) PressIncrement(on, off TimePS, tempC float64, dist int) float64 {
	return d.pInc * Seconds(on) / float64(dist)
}

func (d thresholdDisturber) RetentionAccel(float64) float64 { return 1 }

func (d thresholdDisturber) ApplyFlips(bank, row int, data []byte, nb NeighborData, exp Exposure) int {
	if data == nil {
		return 0
	}
	flips := 0
	for i := range data {
		w := 1.0
		if nb.Above != nil && i < len(nb.Above) && nb.Above[i]&1 != 0 {
			w = 1.5
		}
		damage := (exp.HammerAbove+exp.HammerBelow+exp.PressAbove+exp.PressBelow)*w + exp.Retention*1e-9
		if damage >= d.threshold*float64(i+1) {
			data[i] ^= 0x01
			flips++
		}
	}
	return flips
}

// snapshotState captures everything observable about a module for
// equality comparison.
type snapshotState struct {
	exps  []Exposure
	datas [][]byte
	ctrs  Counters
	now   TimePS
}

func captureState(m *Module) snapshotState {
	s := snapshotState{ctrs: m.Counters(), now: m.Now()}
	for bank := 0; bank < m.Geo.Banks; bank++ {
		for row := 0; row < m.Geo.RowsPerBank; row++ {
			s.exps = append(s.exps, m.PendingExposure(bank, row))
			s.datas = append(s.datas, m.PeekRow(bank, row))
		}
	}
	return s
}

func statesEqual(a, b snapshotState) bool {
	if a.ctrs != b.ctrs || a.now != b.now || len(a.exps) != len(b.exps) {
		return false
	}
	for i := range a.exps {
		if a.exps[i] != b.exps[i] || !bytes.Equal(a.datas[i], b.datas[i]) {
			return false
		}
	}
	return true
}

func TestCheckpointRollbackRestoresEverything(t *testing.T) {
	m := testModule(thresholdDisturber{hInc: 1, pInc: 100, threshold: 50})
	if err := m.InitRow(0, 0, 30, 0xAA); err != nil {
		t.Fatal(err)
	}
	if err := m.InitRow(0, 0, 31, 0x55); err != nil {
		t.Fatal(err)
	}
	end, err := m.HammerBatch(Microsecond, HammerSpec{Bank: 0, Rows: []int{29, 32}, Count: 40, OnTime: 36 * Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	before := captureState(m)

	m.Checkpoint()
	// Mutate heavily: more hammering (materializes flips on ACT), writes,
	// refreshes, temperature changes.
	end2, err := m.HammerBatch(end+Microsecond, HammerSpec{Bank: 0, Rows: []int{30}, Count: 500, OnTime: 700 * Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	m.SetTemperature(end2, 80)
	if err := m.InitRow(end2, 0, 31, 0xFF); err != nil {
		t.Fatal(err)
	}
	if err := m.Refresh(end2 + Microsecond); err != nil {
		t.Fatal(err)
	}
	if statesEqual(before, captureState(m)) {
		t.Fatal("mutations between checkpoint and rollback had no observable effect; test is vacuous")
	}

	m.Rollback()
	if !statesEqual(before, captureState(m)) {
		t.Fatal("rollback did not restore the checkpointed state")
	}

	// The checkpoint stays armed: mutate and roll back again.
	if _, err := m.HammerBatch(end+Microsecond, HammerSpec{Bank: 0, Rows: []int{30}, Count: 100, OnTime: 36 * Nanosecond}); err != nil {
		t.Fatal(err)
	}
	m.Rollback()
	if !statesEqual(before, captureState(m)) {
		t.Fatal("second rollback did not restore the checkpointed state")
	}

	// Release keeps the current state and allows a new checkpoint.
	m.ReleaseCheckpoint()
	m.Checkpoint()
	m.ReleaseCheckpoint()
}

func TestCheckpointRollbackAfterRelease(t *testing.T) {
	m := testModule(nil)
	m.Checkpoint()
	m.ReleaseCheckpoint()
	defer func() {
		if recover() == nil {
			t.Fatal("Rollback after release should panic")
		}
	}()
	m.Rollback()
}

// TestProbeFetchMatchesFetchRow is the pure-probe contract: ProbeFetch
// must report exactly what executing the FetchRow stream would, and must
// not change any module state.
func TestProbeFetchMatchesFetchRow(t *testing.T) {
	build := func() (*Module, TimePS) {
		m := testModule(thresholdDisturber{hInc: 1, pInc: 100, threshold: 30})
		for row := 28; row <= 34; row++ {
			if err := m.InitRow(0, 0, row, 0xA5); err != nil {
				t.Fatal(err)
			}
		}
		end, err := m.HammerBatch(Microsecond, HammerSpec{Bank: 0, Rows: []int{31}, Count: 200, OnTime: 400 * Nanosecond})
		if err != nil {
			t.Fatal(err)
		}
		return m, end + m.Timing.TRP
	}
	victims := []int{30, 32, 29, 33, 28, 34}

	m, at := build()
	before := captureState(m)
	probes, probeEnd, err := m.ProbeFetch(at, 0, victims)
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(before, captureState(m)) {
		t.Fatal("ProbeFetch mutated module state")
	}
	// Probing twice gives identical answers (purity).
	probes2, _, err := m.ProbeFetch(at, 0, victims)
	if err != nil {
		t.Fatal(err)
	}
	for i := range probes {
		if probes[i].Flips != probes2[i].Flips || !bytes.Equal(probes[i].Data, probes2[i].Data) {
			t.Fatalf("repeated probe differs at %d", i)
		}
	}

	// Execute the real fetch stream on an identically-built module.
	ref, _ := build()
	now := at
	for i, v := range victims {
		data, fin, err := ref.FetchRow(now, 0, v)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, probes[i].Data) {
			t.Errorf("row %d: probed data differs from fetched data", v)
		}
		now = fin
	}
	if now != probeEnd {
		t.Errorf("probe end %d != fetch end %d", probeEnd, now)
	}
	totalFlips := 0
	for _, p := range probes {
		totalFlips += p.Flips
	}
	if totalFlips == 0 {
		t.Fatal("setup produced no flips; probe equivalence test is vacuous")
	}
}
