package dram

// BlastRadius is how many rows on each side of an aggressor accumulate
// disturbance. The paper checks three adjacent rows on each side (§4.1).
const BlastRadius = 3

// Exposure is the read-disturbance state a victim row has accumulated since
// its charge was last restored. Hammer and press contributions are kept per
// source side because the two phenomena interact with the double-sided
// access pattern differently (Obsv. 12/13): hammering from both sides is
// super-additive, pressing from both sides is sub-additive.
type Exposure struct {
	HammerAbove float64 // from aggressors at higher physical row indices
	HammerBelow float64
	PressAbove  float64
	PressBelow  float64
	Retention   float64 // temperature-weighted stress-seconds without refresh
}

// IsZero reports whether no disturbance has accumulated.
func (e Exposure) IsZero() bool {
	return e == Exposure{}
}

// NeighborData carries the current contents of the rows physically adjacent
// to a victim (nil when the neighbor has never been written). The disturb
// model uses it for the aggressor-bit coupling component of the
// data-pattern dependence (§5.3).
type NeighborData struct {
	Above []byte // row index victim+1
	Below []byte // row index victim-1
}

// Disturber computes read-disturbance physics for a module. Implementations
// must be pure with respect to the per-(bank,row) cell populations they
// sample, so that repeated evaluation is reproducible.
type Disturber interface {
	// HammerIncrement is the per-activation RowHammer damage delivered to a
	// victim `distance` rows away, given the aggressor's row-open time, the
	// preceding row-off time (both ps), and the chip temperature.
	HammerIncrement(onTime, offTime TimePS, tempC float64, distance int) float64
	// PressIncrement is the per-activation RowPress damage under the same
	// conditions.
	PressIncrement(onTime, offTime TimePS, tempC float64, distance int) float64
	// RetentionAccel scales wall-clock seconds into retention stress at the
	// given temperature (1.0 at the model's reference temperature).
	RetentionAccel(tempC float64) float64
	// ApplyFlips mutates data in place, flipping every cell of (bank,row)
	// whose accumulated damage under exp crosses its threshold. It returns
	// the number of bits flipped. data may be nil (uninitialized row), in
	// which case it must do nothing and return 0.
	ApplyFlips(bank, row int, data []byte, nb NeighborData, exp Exposure) int
}

// FlipProber is the optional Disturber extension for pure flip
// predicates: WouldFlip reports whether ApplyFlips on the same inputs
// would flip at least one cell, without mutating data. Models that
// implement it let Module.ProbeWouldFlip answer searches with an
// early-exit evaluation and no row copies.
type FlipProber interface {
	WouldFlip(bank, row int, data []byte, nb NeighborData, exp Exposure) bool
}

// NopDisturber ignores all disturbance. It stands in for a hypothetical
// disturbance-free DRAM and is useful for testing the command machinery in
// isolation.
type NopDisturber struct{}

// HammerIncrement always returns 0.
func (NopDisturber) HammerIncrement(_, _ TimePS, _ float64, _ int) float64 { return 0 }

// PressIncrement always returns 0.
func (NopDisturber) PressIncrement(_, _ TimePS, _ float64, _ int) float64 { return 0 }

// RetentionAccel always returns 0 (cells never leak).
func (NopDisturber) RetentionAccel(float64) float64 { return 0 }

// ApplyFlips never flips anything.
func (NopDisturber) ApplyFlips(_, _ int, _ []byte, _ NeighborData, _ Exposure) int { return 0 }
