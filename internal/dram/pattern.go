package dram

import "fmt"

// DataPattern is one of the aggressor/victim fill patterns of Table 2.
// The suffix "I" denotes the inverse of a pattern.
type DataPattern int

// The six data patterns tested in §5.3.
const (
	CheckerBoard  DataPattern = iota // aggressor 0xAA, victim 0x55
	CheckerBoardI                    // aggressor 0x55, victim 0xAA
	RowStripe                        // aggressor 0xFF, victim 0x00
	RowStripeI                       // aggressor 0x00, victim 0xFF
	ColStripe                        // aggressor 0x55, victim 0x55
	ColStripeI                       // aggressor 0xAA, victim 0xAA
)

// AllDataPatterns lists the patterns in the order of Fig. 19's y-axis.
var AllDataPatterns = []DataPattern{
	CheckerBoard, CheckerBoardI, ColStripe, ColStripeI, RowStripe, RowStripeI,
}

// String returns the paper's abbreviation (CB, CBI, CS, CSI, RS, RSI).
func (p DataPattern) String() string {
	switch p {
	case CheckerBoard:
		return "CB"
	case CheckerBoardI:
		return "CBI"
	case RowStripe:
		return "RS"
	case RowStripeI:
		return "RSI"
	case ColStripe:
		return "CS"
	case ColStripeI:
		return "CSI"
	default:
		return fmt.Sprintf("DataPattern(%d)", int(p))
	}
}

// AggressorByte returns the byte written to every aggressor-row byte.
func (p DataPattern) AggressorByte() byte {
	switch p {
	case CheckerBoard:
		return 0xAA
	case CheckerBoardI:
		return 0x55
	case RowStripe:
		return 0xFF
	case RowStripeI:
		return 0x00
	case ColStripe:
		return 0x55
	case ColStripeI:
		return 0xAA
	default:
		panic("dram: unknown data pattern")
	}
}

// VictimByte returns the byte written to every victim-row byte.
func (p DataPattern) VictimByte() byte {
	switch p {
	case CheckerBoard:
		return 0x55
	case CheckerBoardI:
		return 0xAA
	case RowStripe:
		return 0x00
	case RowStripeI:
		return 0xFF
	case ColStripe:
		return 0x55
	case ColStripeI:
		return 0xAA
	default:
		panic("dram: unknown data pattern")
	}
}

// Fill writes b into every byte of buf and returns buf.
func Fill(buf []byte, b byte) []byte {
	for i := range buf {
		buf[i] = b
	}
	return buf
}
