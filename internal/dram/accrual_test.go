package dram

import (
	"bytes"
	"testing"
	"testing/quick"
)

func randSpec(s uint64) HammerSpec {
	rows := []int{10 + int(s%5)}
	if s%3 == 0 {
		rows = append(rows, rows[0]+2) // double-sided
	}
	return HammerSpec{
		Bank:     int(s % 2),
		Rows:     rows,
		Count:    1 + int((s/7)%60),
		OnTime:   36*Nanosecond + TimePS(s%11)*100*Nanosecond,
		ExtraOff: TimePS((s/5)%3) * 200 * Nanosecond,
	}
}

// TestHammerExposuresMatchesBatch pins the closed form to the executor
// bit for bit: for random specs, the pure HammerExposures deltas must
// equal exactly (not approximately) the exposure HammerBatch deposits on
// every non-aggressor row — they share accrueSpec, so any divergence is
// an ordering bug.
func TestHammerExposuresMatchesBatch(t *testing.T) {
	f := func(seed uint64) bool {
		spec := randSpec(seed)
		pure := testModule(probeDisturber{})
		exec := testModule(probeDisturber{})
		deltas := pure.HammerExposures(0, spec, nil)
		if _, err := exec.HammerBatch(0, spec); err != nil {
			t.Logf("batch error: %v", err)
			return false
		}
		byRow := make(map[int]Exposure, len(deltas))
		for _, d := range deltas {
			byRow[d.Row] = d.Exp
		}
		isAgg := make(map[int]bool)
		for _, ag := range spec.Schedule() {
			if ag.Acts > 0 {
				isAgg[ag.Row] = true
			}
		}
		for row := 0; row < exec.Geo.RowsPerBank; row++ {
			if isAgg[row] {
				continue // aggressor residue is the executor's tail replay, not the closed form
			}
			if got := exec.PendingExposure(spec.Bank, row); got != byRow[row] {
				t.Logf("row %d: batch=%+v pure=%+v spec=%+v", row, got, byRow[row], spec)
				return false
			}
		}
		// The pure evaluation must not have touched the module.
		for row := 0; row < pure.Geo.RowsPerBank; row++ {
			if !pure.PendingExposure(spec.Bank, row).IsZero() {
				t.Logf("HammerExposures mutated row %d", row)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestHammerPathsFlipEquivalence is the end-to-end differential property:
// random specs play through the per-command Hammer loop and the
// closed-form HammerBatch on separate modules with initialized data, and
// after restoring every touched row the materialized flips (the stored
// bytes) must be identical.
func TestHammerPathsFlipEquivalence(t *testing.T) {
	dist := thresholdDisturber{hInc: 0.9, pInc: 80, threshold: 11}
	f := func(seed uint64) bool {
		spec := randSpec(seed)
		ref := testModule(dist)
		bat := testModule(dist)
		for _, m := range []*Module{ref, bat} {
			for row := 5; row <= 20; row++ {
				if err := m.InitRow(0, spec.Bank, row, 0x5A); err != nil {
					t.Fatal(err)
				}
			}
		}
		endR, err := ref.Hammer(Microsecond, spec)
		if err != nil {
			t.Logf("hammer: %v", err)
			return false
		}
		endB, err := bat.HammerBatch(Microsecond, spec)
		if err != nil {
			t.Logf("batch: %v", err)
			return false
		}
		if endR != endB {
			t.Logf("end times differ: %d vs %d", endR, endB)
			return false
		}
		at := endR + Microsecond
		for row := 5; row <= 20; row++ {
			if err := ref.RestoreRow(at, spec.Bank, row); err != nil {
				t.Fatal(err)
			}
			if err := bat.RestoreRow(at, spec.Bank, row); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ref.PeekRow(spec.Bank, row), bat.PeekRow(spec.Bank, row)) {
				t.Logf("row %d: flips differ after restore (spec %+v)", row, spec)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// probingThreshold extends thresholdDisturber with the FlipProber
// predicate, implemented independently of ApplyFlips so the equivalence
// check is meaningful.
type probingThreshold struct{ thresholdDisturber }

func (d probingThreshold) WouldFlip(bank, row int, data []byte, nb NeighborData, exp Exposure) bool {
	if data == nil {
		return false
	}
	probe := append([]byte(nil), data...)
	return d.ApplyFlips(bank, row, probe, nb, exp) > 0
}

// TestProbeFetchRandomTraces drives randomized variable-dwell traces
// through the command path, then checks that the pure probe of the victim
// rows equals a real fetch stream executed right after — on the very same
// module, since the probe must not perturb it. It runs under both a plain
// disturber (ProbeWouldFlip falls back to the counting walk) and a
// FlipProber one (the copy-free early-exit walk).
func TestProbeFetchRandomTraces(t *testing.T) {
	base := thresholdDisturber{hInc: 1.2, pInc: 120, threshold: 9}
	for _, dist := range []Disturber{base, probingThreshold{base}} {
		t.Run("", func(t *testing.T) { probeFetchRandomTraces(t, dist) })
	}
}

func probeFetchRandomTraces(t *testing.T, dist Disturber) {
	f := func(seed uint64) bool {
		m := testModule(dist)
		tm := m.Timing
		for row := 24; row <= 40; row++ {
			if err := m.InitRow(0, 0, row, 0x3C); err != nil {
				t.Fatal(err)
			}
		}
		aggs := []int{30, 32, 34}
		n := 20 + int(seed%200)
		slotFn := func(i int) Slot {
			h := seed + uint64(i)*0x9E3779B9
			return Slot{
				Row:      aggs[h%uint64(len(aggs))],
				OnTime:   tm.TRAS + TimePS(h%5)*900*Nanosecond,
				ExtraOff: TimePS((h/7)%3) * 300 * Nanosecond,
			}
		}
		end, err := m.PlayTrace(Microsecond, 0, n, slotFn, nil)
		if err != nil {
			t.Fatal(err)
		}
		victims := []int{29, 31, 33, 35, 28, 36, 27, 37}
		probes, _, err := m.ProbeFetch(end, 0, victims)
		if err != nil {
			t.Fatal(err)
		}
		// The any-flip predicate must agree with the counting probe.
		total := 0
		for _, p := range probes {
			total += p.Flips
		}
		hit, err := m.ProbeWouldFlip(end, 0, victims)
		if err != nil {
			t.Fatal(err)
		}
		if hit != (total > 0) {
			t.Logf("seed %d: ProbeWouldFlip=%v but ProbeFetch found %d flips", seed, hit, total)
			return false
		}
		now := end
		for i, v := range victims {
			data, fin, err := m.FetchRow(now, 0, v)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, probes[i].Data) {
				t.Logf("seed %d: victim %d probe/fetch mismatch", seed, v)
				return false
			}
			now = fin
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
