package dram

import (
	"errors"
	"testing"
)

// traceModule builds a module on the probe disturber so the equivalence
// test compares real exposure accrual, not all-zero increments.
func traceModule() *Module {
	return NewModule(DefaultGeometry(), DDR4(), 50, probeDisturber{})
}

// TestPlayTraceMatchesHammer pins the equivalence contract: a uniform
// trace must leave the module in the same observable state as the
// equivalent HammerSpec loop.
func TestPlayTraceMatchesHammer(t *testing.T) {
	geo := DefaultGeometry()
	timing := DDR4()
	spec := HammerSpec{Bank: 1, Rows: []int{100, 102}, Count: 64, OnTime: timing.TRAS, ExtraOff: 7 * Nanosecond}

	viaHammer := traceModule()
	endH, err := viaHammer.Hammer(0, spec)
	if err != nil {
		t.Fatal(err)
	}

	viaTrace := traceModule()
	endT, err := viaTrace.PlayTrace(0, 1, spec.Count, func(i int) Slot {
		return Slot{Row: spec.Rows[i%len(spec.Rows)], OnTime: spec.OnTime, ExtraOff: spec.ExtraOff}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	if endH != endT {
		t.Fatalf("completion times differ: hammer=%d trace=%d", endH, endT)
	}
	ch, ct := viaHammer.Counters(), viaTrace.Counters()
	if ch.Activates != ct.Activates || ch.Precharges != ct.Precharges {
		t.Fatalf("counters differ: hammer=%+v trace=%+v", ch, ct)
	}
	for row := 95; row < 108; row++ {
		if eh, et := viaHammer.PendingExposure(1, row), viaTrace.PendingExposure(1, row); eh != et {
			t.Fatalf("row %d exposure differs: hammer=%+v trace=%+v", row, eh, et)
		}
	}
	_ = geo
}

// TestPlayTraceObserver pins observer semantics: called once per slot,
// in order, at the PRE instant, and an observer error aborts playback.
func TestPlayTraceObserver(t *testing.T) {
	m := traceModule()
	timing := m.Timing
	var seen []int
	var times []TimePS
	sentinel := errors.New("stop")
	end, err := m.PlayTrace(0, 0, 10, func(i int) Slot {
		return Slot{Row: 50 + i%2, OnTime: timing.TRAS}
	}, func(i int, s Slot, now TimePS) error {
		seen = append(seen, i)
		times = append(times, now)
		if i == 4 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel error, got %v", err)
	}
	if len(seen) != 5 {
		t.Fatalf("observer saw %d slots, want 5", len(seen))
	}
	for i, at := range times {
		want := TimePS(i)*(timing.TRAS+timing.TRP) + timing.TRAS
		if at != want {
			t.Fatalf("slot %d observed at %d, want PRE instant %d", i, at, want)
		}
	}
	if got := m.Counters().Activates; got != 5 {
		t.Fatalf("aborted trace issued %d ACTs, want 5", got)
	}
	if end != times[4] {
		t.Fatalf("aborted trace returned %d, want last PRE %d", end, times[4])
	}
}

// TestPlayTraceValidation pins the error cases.
func TestPlayTraceValidation(t *testing.T) {
	m := traceModule()
	if _, err := m.PlayTrace(0, 99, 1, func(int) Slot { return Slot{Row: 0, OnTime: m.Timing.TRAS} }, nil); err == nil {
		t.Fatal("bad bank accepted")
	}
	if _, err := m.PlayTrace(0, 0, -1, func(int) Slot { return Slot{} }, nil); err == nil {
		t.Fatal("negative slot count accepted")
	}
	if _, err := m.PlayTrace(0, 0, 1, func(int) Slot { return Slot{Row: 0, OnTime: Nanosecond} }, nil); err == nil {
		t.Fatal("sub-tRAS OnTime accepted")
	}
	if _, err := m.PlayTrace(0, 0, 1, func(int) Slot { return Slot{Row: 0, OnTime: m.Timing.TRAS, ExtraOff: -1} }, nil); err == nil {
		t.Fatal("negative ExtraOff accepted")
	}
	if _, err := m.PlayTrace(0, 0, 1, func(int) Slot { return Slot{Row: -1, OnTime: m.Timing.TRAS} }, nil); err == nil {
		t.Fatal("bad row accepted")
	}
}
