package dram

// Checkpoint/rollback of module state.
//
// Monotone searches (the scenario min-exposure bisection, and any caller
// probing a prefix family of command streams) used to replay the whole
// pattern from scratch for every probe. A checkpoint makes the probe loop
// incremental: arm a checkpoint at the bracket's lower bound, play forward
// to the probe point, inspect, and either roll back (probe flipped) or
// re-arm at the probe point (it did not). The journal is copy-on-write at
// row granularity — a hammer run touches only the rows inside its blast
// radius, so a checkpoint costs a handful of row snapshots regardless of
// how many million activations the play spans.

// journalEntry preserves one row's state as it was when the active
// checkpoint was armed. prev.data is a deep copy taken before any
// post-checkpoint mutation could reach the live buffer.
type journalEntry struct {
	bank, row int
	prev      rowState
}

// journal is the module's active checkpoint. epoch stamps rows on first
// post-checkpoint touch so each row is saved at most once per arming.
type journal struct {
	active bool
	epoch  uint32
	rows   []journalEntry

	banks      []bankState
	nTemps     int
	lastCmdAt  TimePS
	refCounter int
	counters   Counters
}

// saveRow records a row's pre-mutation state. Called from Module.row on
// the first touch of each row after the checkpoint was armed.
func (j *journal) saveRow(bank, row int, rs *rowState) {
	prev := *rs
	if rs.data != nil {
		prev.data = append([]byte(nil), rs.data...)
	}
	j.rows = append(j.rows, journalEntry{bank: bank, row: row, prev: prev})
	rs.epoch = j.epoch
}

// Checkpoint arms copy-on-write journaling of all module state. Only one
// checkpoint can be active; arming while one is active panics (a
// programming error in the caller's search loop — use Rollback to return
// to the armed point or ReleaseCheckpoint to discard it first).
func (m *Module) Checkpoint() {
	if m.journal.active {
		panic("dram: Checkpoint with a checkpoint already active")
	}
	m.armCheckpoint()
}

func (m *Module) armCheckpoint() {
	m.journal.active = true
	m.journal.epoch++
	m.journal.rows = m.journal.rows[:0]
	m.journal.banks = append(m.journal.banks[:0], m.banks...)
	m.journal.nTemps = len(m.temps)
	m.journal.lastCmdAt = m.lastCmdAt
	m.journal.refCounter = m.refCounter
	m.journal.counters = m.Counters()
}

// Rollback restores the module to the state it had when Checkpoint was
// armed. The checkpoint stays armed, so a search can roll back repeatedly
// to the same point. It panics when no checkpoint is active.
func (m *Module) Rollback() {
	if !m.journal.active {
		panic("dram: Rollback without an active checkpoint")
	}
	j := &m.journal
	for i := range j.rows {
		e := &j.rows[i]
		// The saved copy becomes the live buffer; the mutated one is
		// dropped. Restoring clears the epoch stamp implicitly via prev.
		m.rows[e.bank][e.row] = e.prev
	}
	copy(m.banks, j.banks)
	m.temps = m.temps[:j.nTemps]
	m.lastCmdAt = j.lastCmdAt
	m.refCounter = j.refCounter
	m.acts, m.pres = j.counters.Activates, j.counters.Precharges
	m.reads, m.writes, m.refs = j.counters.Reads, j.counters.Writes, j.counters.Refreshes
	// Re-arm: bump the epoch so rows journaled before this rollback are
	// saved again on their next touch.
	m.armCheckpoint()
}

// ReleaseCheckpoint discards the active checkpoint, keeping the current
// state. A search advances its bracket by releasing and re-arming at the
// new lower bound. Releasing with no active checkpoint is a no-op.
func (m *Module) ReleaseCheckpoint() {
	m.journal.active = false
	m.journal.rows = m.journal.rows[:0]
}
