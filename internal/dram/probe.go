package dram

// Pure (side-effect-free) probing of pending disturbance.
//
// A search that wants to know "would stopping here produce a bitflip?"
// used to have to actually fetch the victim rows — materializing flips,
// resetting exposure, and advancing per-row PRE history, which forced the
// next probe to replay the whole pattern. ProbeFetch answers the question
// without mutating anything: it simulates the exact FetchRow sequence the
// caller would issue (including the fetch stream's own self-disturbance
// and the sequential neighbor-coupling of flips materialized earlier in
// the same check) against scratch copies of the row contents and a
// copy-on-write exposure overlay.

// RowProbe is the simulated outcome of fetching one row.
type RowProbe struct {
	Row   int
	Data  []byte // contents as the fetch would return them (a private copy)
	Flips int    // bitflips the fetch would materialize at that instant
}

// ProbeFetch simulates FetchRow(at, bank, rows[0]) … FetchRow(…, rows[n-1])
// back to back — the standard victim-check stream — and returns what each
// fetch would observe plus the completion time, leaving the module
// untouched. Flip evaluation goes through the same Disturber calls as the
// real fetch, on scratch row copies, so results are bit-identical to
// executing the stream; the module's exposure, contents, per-row PRE
// history, clock, and counters all stay as they were.
func (m *Module) ProbeFetch(at TimePS, bank int, rows []int) ([]RowProbe, TimePS, error) {
	if err := m.checkBank(bank); err != nil {
		return nil, at, err
	}
	b := m.banks[bank]
	if b.open {
		return nil, at, timingErr("ACT", bank, "row %d already open", b.openRow)
	}

	scratch := make(map[int][]byte, len(rows))     // post-flip contents overlay
	overlay := make(map[int]*Exposure, len(rows))  // exposure overlay (fetch self-disturbance)
	virtPre := make(map[int]TimePS, len(rows))     // PRE instants of earlier simulated fetches
	virtRestore := make(map[int]TimePS, len(rows)) // restore instants of earlier simulated fetches

	// expOf returns the exposure the row would hold at this point of the
	// simulated stream, copy-on-write.
	expOf := func(row int) *Exposure {
		if e, ok := overlay[row]; ok {
			return e
		}
		e := &Exposure{}
		if rs := m.peekRow(bank, row); rs != nil {
			*e = rs.exp
		}
		overlay[row] = e
		return e
	}
	// dataOf returns the row contents the stream would see: the scratch
	// copy once a simulated fetch materialized flips into it, the live
	// buffer otherwise (read-only).
	dataOf := func(row int) []byte {
		if d, ok := scratch[row]; ok {
			return d
		}
		if rs := m.peekRow(bank, row); rs != nil {
			return rs.data
		}
		return nil
	}
	prevOff := func(row int, actAt TimePS) TimePS {
		if pre, ok := virtPre[row]; ok {
			off := actAt - pre
			if off > recoveredOff {
				off = recoveredOff
			}
			return off
		}
		return m.prevOff(bank, row, actAt)
	}

	out := make([]RowProbe, 0, len(rows))
	hasPre, lastPre := b.hasPre, b.lastPreAt
	now := at
	for _, row := range rows {
		if err := m.checkRow(row); err != nil {
			return nil, now, err
		}
		if hasPre && now < lastPre+m.Timing.TRP {
			return nil, now, timingErr("ACT", bank, "tRP violated: PRE at %d, ACT at %d", lastPre, now)
		}
		if now < b.refBusyTill {
			return nil, now, timingErr("ACT", bank, "tRFC violated: busy until %d, ACT at %d", b.refBusyTill, now)
		}

		// ACT: materialize pending disturbance into a scratch copy.
		exp := *expOf(row)
		lastRestore, restored := virtRestore[row]
		if !restored {
			if rs := m.peekRow(bank, row); rs != nil {
				lastRestore = rs.lastRestore
			}
		}
		exp.Retention = m.retentionStress(lastRestore, now)
		data := scratch[row]
		if data == nil {
			if live := dataOf(row); live != nil {
				data = append([]byte(nil), live...)
				scratch[row] = data
			}
		}
		flips := 0
		if data != nil && (!exp.IsZero() || exp.Retention > 0) {
			nb := NeighborData{}
			if row+1 < m.Geo.RowsPerBank {
				nb.Above = dataOf(row + 1)
			}
			if row-1 >= 0 {
				nb.Below = dataOf(row - 1)
			}
			flips = m.dist.ApplyFlips(bank, row, data, nb, exp)
		}
		// The restore resets exposure; later self-disturbance accrues from
		// zero, exactly as the real fetch leaves the row.
		*overlay[row] = Exposure{}
		virtRestore[row] = now

		// Fetch returns a full-row copy (zero-filled for never-written rows).
		probe := RowProbe{Row: row, Flips: flips, Data: make([]byte, m.Geo.RowBytes)}
		if data != nil {
			copy(probe.Data, data)
		}
		out = append(out, probe)

		// PRE: the fetch's own activation disturbs the row's neighborhood.
		preAt := now + m.Timing.TRAS
		off := prevOff(row, now)
		accrueSpec(m.dist, m.Geo.RowsPerBank, row, m.Timing.TRAS, off, m.TemperatureAt(preAt), 1, nil,
			func(victim int, above bool, h, p float64) {
				e := expOf(victim)
				if above {
					e.HammerAbove += h
					e.PressAbove += p
				} else {
					e.HammerBelow += h
					e.PressBelow += p
				}
			})
		virtPre[row] = preAt
		hasPre, lastPre = true, preAt
		now = preAt + m.Timing.TRP
	}
	return out, now, nil
}

// ProbeWouldFlip reports whether the simulated fetch stream of ProbeFetch
// would materialize at least one bitflip, without mutating anything. With
// a FlipProber disturber it needs no row copies at all: rows before the
// first flip are unmutated in the simulated stream, so the live buffers
// are exactly what each fetch would evaluate, and the walk returns at the
// first crossing cell. Searches that only need the any-flip predicate
// (the scenario min-exposure bisection) probe through here.
func (m *Module) ProbeWouldFlip(at TimePS, bank int, rows []int) (bool, error) {
	fp, ok := m.dist.(FlipProber)
	if !ok {
		probes, _, err := m.ProbeFetch(at, bank, rows)
		if err != nil {
			return false, err
		}
		for _, p := range probes {
			if p.Flips > 0 {
				return true, nil
			}
		}
		return false, nil
	}
	if err := m.checkBank(bank); err != nil {
		return false, err
	}
	b := m.banks[bank]
	if b.open {
		return false, timingErr("ACT", bank, "row %d already open", b.openRow)
	}

	overlay := make(map[int]*Exposure, len(rows))
	virtPre := make(map[int]TimePS, len(rows))
	virtRestore := make(map[int]TimePS, len(rows))
	expOf := func(row int) *Exposure {
		if e, ok := overlay[row]; ok {
			return e
		}
		e := &Exposure{}
		if rs := m.peekRow(bank, row); rs != nil {
			*e = rs.exp
		}
		overlay[row] = e
		return e
	}

	hasPre, lastPre := b.hasPre, b.lastPreAt
	now := at
	for _, row := range rows {
		if err := m.checkRow(row); err != nil {
			return false, err
		}
		if hasPre && now < lastPre+m.Timing.TRP {
			return false, timingErr("ACT", bank, "tRP violated: PRE at %d, ACT at %d", lastPre, now)
		}
		if now < b.refBusyTill {
			return false, timingErr("ACT", bank, "tRFC violated: busy until %d, ACT at %d", b.refBusyTill, now)
		}
		exp := *expOf(row)
		lastRestore, restored := virtRestore[row]
		var data []byte
		if rs := m.peekRow(bank, row); rs != nil {
			data = rs.data
			if !restored {
				lastRestore = rs.lastRestore
			}
		}
		exp.Retention = m.retentionStress(lastRestore, now)
		if data != nil && (!exp.IsZero() || exp.Retention > 0) {
			nb := NeighborData{}
			if row+1 < m.Geo.RowsPerBank {
				if rs := m.peekRow(bank, row+1); rs != nil {
					nb.Above = rs.data
				}
			}
			if row-1 >= 0 {
				if rs := m.peekRow(bank, row-1); rs != nil {
					nb.Below = rs.data
				}
			}
			if fp.WouldFlip(bank, row, data, nb, exp) {
				return true, nil
			}
		}
		*overlay[row] = Exposure{}
		virtRestore[row] = now

		preAt := now + m.Timing.TRAS
		off := RecoveredOff
		if pre, ok := virtPre[row]; ok {
			if o := now - pre; o < off {
				off = o
			}
		} else {
			off = m.prevOff(bank, row, now)
		}
		accrueSpec(m.dist, m.Geo.RowsPerBank, row, m.Timing.TRAS, off, m.TemperatureAt(preAt), 1, nil,
			func(victim int, above bool, h, p float64) {
				e := expOf(victim)
				if above {
					e.HammerAbove += h
					e.PressAbove += p
				} else {
					e.HammerBelow += h
					e.PressBelow += p
				}
			})
		virtPre[row] = preAt
		hasPre, lastPre = true, preAt
		now = preAt + m.Timing.TRP
	}
	return false, nil
}
