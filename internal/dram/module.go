package dram

import (
	"fmt"
	"sort"
)

// RecoveredOff is the row-off time assumed for an aggressor's first
// activation (or any activation after a very long idle period): long enough
// that all transient disturbance from earlier activity has fully recovered.
// Exported so replay-free probe harnesses can thread the same first-
// activation semantics as the command path.
const RecoveredOff = 10 * Millisecond

// recoveredOff is the internal alias predating the export.
const recoveredOff = RecoveredOff

// bankState is the per-bank command FSM (§2.2): a bank is either precharged
// (idle) or has exactly one open row.
type bankState struct {
	open        bool
	openRow     int
	openedAt    TimePS
	lastPreAt   TimePS // completion time of the last PRE
	hasPre      bool
	refBusyTill TimePS // bank unavailable until this time after REF
}

// rowState is the per-row storage: contents plus accumulated disturbance
// since the last charge restore. Rows live in a dense per-bank array (see
// Module.rows); present distinguishes rows the command path has touched
// from pristine zero-value entries, replacing the sparse map membership the
// module used to rely on.
type rowState struct {
	data        []byte // nil until first write
	exp         Exposure
	lastRestore TimePS
	lastPreAt   TimePS // when this row was last closed (for off-time tracking)
	lastPreSet  bool
	present     bool   // the command path has state for this row
	epoch       uint32 // checkpoint journal stamp (see snapshot.go)
}

type tempPoint struct {
	at    TimePS
	tempC float64
}

// Module is a simulated DDR4 DRAM module. All commands carry explicit
// timestamps supplied by the caller (the testing infrastructure or a memory
// controller); the module validates timing and maintains cell state.
//
// Module is not safe for concurrent use; each experiment owns its module.
type Module struct {
	Geo    Geometry
	Timing Timing

	dist  Disturber
	banks []bankState

	// rows holds one dense exposure window per bank, allocated lazily on
	// the bank's first touch. The dense layout keeps the PRE-path accrual
	// (up to 2×BlastRadius victim updates per precharge) allocation- and
	// hash-free: a victim update is one bounds-checked index instead of a
	// map lookup plus a possible *rowState allocation. At the experiment
	// geometries (≤ 4096 rows/bank) a fully dense window costs ≲ 400 KiB
	// per touched bank, far below what the old per-victim allocations
	// churned through a long hammer run.
	rows [][]rowState

	temps      []tempPoint // non-decreasing in time
	lastCmdAt  TimePS
	refCounter int // which refresh chunk the next REF covers

	journal journal // active checkpoint state (see snapshot.go)

	// Stats counters, exported via Counters().
	acts, pres, reads, writes, refs uint64
}

// Counters reports cumulative command counts (ACT, PRE, RD, WR, REF).
type Counters struct {
	Activates, Precharges, Reads, Writes, Refreshes uint64
}

// NewModule builds a module with the given geometry and timing, initial
// temperature tempC, and disturbance model. It panics on invalid geometry,
// since that is a programming error rather than a runtime condition.
func NewModule(geo Geometry, timing Timing, tempC float64, dist Disturber) *Module {
	if err := geo.Validate(); err != nil {
		panic(err)
	}
	if dist == nil {
		dist = NopDisturber{}
	}
	return &Module{
		Geo:    geo,
		Timing: timing,
		dist:   dist,
		banks:  make([]bankState, geo.Banks),
		rows:   make([][]rowState, geo.Banks),
		temps:  []tempPoint{{at: 0, tempC: tempC}},
	}
}

// Counters returns the command counters.
func (m *Module) Counters() Counters {
	return Counters{m.acts, m.pres, m.reads, m.writes, m.refs}
}

// SetTemperature records a chip temperature change effective at time at.
// The thermal controller (internal/thermal) drives this.
func (m *Module) SetTemperature(at TimePS, tempC float64) {
	last := m.temps[len(m.temps)-1]
	if at < last.at {
		at = last.at
	}
	if last.tempC == tempC {
		return
	}
	m.temps = append(m.temps, tempPoint{at: at, tempC: tempC})
}

// tempSegment returns the index of the temperature segment covering time
// at: the last point with p.at <= at, or 0 when at precedes the schedule.
// Binary search keeps long thermal traces off the per-command critical
// path (TemperatureAt runs on every PRE).
func (m *Module) tempSegment(at TimePS) int {
	// Fast path: most commands land in the latest segment.
	if n := len(m.temps); n == 1 || m.temps[n-1].at <= at {
		return n - 1
	}
	i := sort.Search(len(m.temps), func(i int) bool { return m.temps[i].at > at })
	if i == 0 {
		return 0
	}
	return i - 1
}

// TemperatureAt returns the chip temperature at time at.
func (m *Module) TemperatureAt(at TimePS) float64 {
	return m.temps[m.tempSegment(at)].tempC
}

// RetentionStress integrates RetentionAccel(T(t)) dt (seconds) over
// [from, to] across the temperature schedule — the retention exposure a
// row accumulates between charge restores. It reads the schedule without
// modifying anything; pure probe harnesses use it to evaluate candidate
// stop points analytically.
func (m *Module) RetentionStress(from, to TimePS) float64 {
	return m.retentionStress(from, to)
}

// retentionStress integrates RetentionAccel(T(t)) dt (seconds) over
// [from, to] across the temperature schedule.
func (m *Module) retentionStress(from, to TimePS) float64 {
	if to <= from {
		return 0
	}
	var stress float64
	cur := from
	curTemp := m.TemperatureAt(from)
	// Segments ending at or before cur contribute nothing; binary-search
	// the first boundary past cur instead of scanning the whole schedule.
	for i := m.tempSegment(from) + 1; i < len(m.temps); i++ {
		p := m.temps[i]
		if p.at >= to {
			break
		}
		stress += Seconds(p.at-cur) * m.dist.RetentionAccel(curTemp)
		cur, curTemp = p.at, p.tempC
	}
	stress += Seconds(to-cur) * m.dist.RetentionAccel(curTemp)
	return stress
}

func (m *Module) checkBank(bank int) error {
	if bank < 0 || bank >= m.Geo.Banks {
		return &AddressError{What: "bank", Value: bank, Limit: m.Geo.Banks}
	}
	return nil
}

func (m *Module) checkRow(row int) error {
	if row < 0 || row >= m.Geo.RowsPerBank {
		return &AddressError{What: "row", Value: row, Limit: m.Geo.RowsPerBank}
	}
	return nil
}

func (m *Module) advance(at TimePS) {
	if at > m.lastCmdAt {
		m.lastCmdAt = at
	}
}

// Now returns the timestamp of the latest command the module has seen.
func (m *Module) Now() TimePS { return m.lastCmdAt }

// bankRows returns the dense row window of a bank, allocating it on first
// touch.
func (m *Module) bankRows(bank int) []rowState {
	rows := m.rows[bank]
	if rows == nil {
		rows = make([]rowState, m.Geo.RowsPerBank)
		m.rows[bank] = rows
	}
	return rows
}

// row returns the mutable state of (bank, row), marking the row present
// and journaling its prior state when a checkpoint is active. Every
// mutation of row state must go through here so Rollback can restore it.
func (m *Module) row(bank, row int) *rowState {
	rs := &m.bankRows(bank)[row]
	if m.journal.active && rs.epoch != m.journal.epoch {
		m.journal.saveRow(bank, row, rs)
	}
	rs.present = true
	return rs
}

// peekRow returns the state of (bank, row) for reading only, or nil when
// the row (or its whole bank) has never been touched.
func (m *Module) peekRow(bank, row int) *rowState {
	rows := m.rows[bank]
	if rows == nil || !rows[row].present {
		return nil
	}
	return &rows[row]
}

// Activate opens row in bank at time at. Opening a row restores its cells'
// charge, so any disturbance the row accumulated as a victim materializes
// as permanent bitflips at this moment and its exposure resets.
func (m *Module) Activate(at TimePS, bank, row int) error {
	if err := m.checkBank(bank); err != nil {
		return err
	}
	if err := m.checkRow(row); err != nil {
		return err
	}
	b := &m.banks[bank]
	if b.open {
		return timingErr("ACT", bank, "row %d already open", b.openRow)
	}
	if b.hasPre && at < b.lastPreAt+m.Timing.TRP {
		return timingErr("ACT", bank, "tRP violated: PRE at %d, ACT at %d", b.lastPreAt, at)
	}
	if at < b.refBusyTill {
		return timingErr("ACT", bank, "tRFC violated: busy until %d, ACT at %d", b.refBusyTill, at)
	}
	m.restoreRow(bank, row, at)
	b.open = true
	b.openRow = row
	b.openedAt = at
	m.acts++
	m.advance(at)
	return nil
}

// Precharge closes the open row of bank at time at. This is the moment an
// aggressor's activation delivers its disturbance to neighbors: the row-open
// time (tAggON) is now known, and the row-off time preceding this activation
// was recorded at ACT.
func (m *Module) Precharge(at TimePS, bank int) error {
	if err := m.checkBank(bank); err != nil {
		return err
	}
	b := &m.banks[bank]
	if !b.open {
		return timingErr("PRE", bank, "no open row")
	}
	if at < b.openedAt+m.Timing.TRAS {
		return timingErr("PRE", bank, "tRAS violated: ACT at %d, PRE at %d", b.openedAt, at)
	}
	onTime := at - b.openedAt
	offTime := m.prevOff(bank, b.openRow, b.openedAt)
	m.accrue(bank, b.openRow, onTime, offTime, m.TemperatureAt(at))
	m.recordPre(bank, b.openRow, at)
	b.open = false
	b.hasPre = true
	b.lastPreAt = at
	m.pres++
	m.advance(at)
	return nil
}

// recordPre tracks each row's last precharge so the off time preceding the
// next activation of the same row can be computed.
func (m *Module) recordPre(bank, row int, at TimePS) {
	rs := m.row(bank, row)
	rs.lastPreSet = true
	rs.lastPreAt = at
}

func (m *Module) prevOff(bank, row int, actAt TimePS) TimePS {
	rs := m.peekRow(bank, row)
	if rs == nil || !rs.lastPreSet {
		return recoveredOff
	}
	off := actAt - rs.lastPreAt
	if off > recoveredOff {
		off = recoveredOff
	}
	return off
}

// accrue adds one activation's worth of disturbance from aggressor (bank,
// aggRow) to every row within the blast radius, through the shared
// accrual walk (accrual.go).
func (m *Module) accrue(bank, aggRow int, onTime, offTime TimePS, tempC float64) {
	accrueSpec(m.dist, m.Geo.RowsPerBank, aggRow, onTime, offTime, tempC, 1, nil,
		func(victim int, above bool, h, p float64) {
			rs := m.row(bank, victim)
			if above { // aggressor sits above (higher index)
				rs.exp.HammerAbove += h
				rs.exp.PressAbove += p
			} else {
				rs.exp.HammerBelow += h
				rs.exp.PressBelow += p
			}
		})
}

// restoreRow materializes accumulated disturbance as bitflips and resets
// the row's exposure, returning the number of bits flipped. Called on ACT
// and on refresh.
func (m *Module) restoreRow(bank, row int, at TimePS) int {
	rs := m.row(bank, row)
	exp := rs.exp
	exp.Retention = m.retentionStress(rs.lastRestore, at)
	flips := 0
	if rs.data != nil && (!exp.IsZero() || exp.Retention > 0) {
		flips = m.dist.ApplyFlips(bank, row, rs.data, m.neighborData(bank, row), exp)
	}
	rs.exp = Exposure{}
	rs.lastRestore = at
	return flips
}

// neighborData collects the adjacent rows' contents for the data-coupling
// component of flip evaluation.
func (m *Module) neighborData(bank, row int) NeighborData {
	nb := NeighborData{}
	if row+1 < m.Geo.RowsPerBank {
		if above := m.peekRow(bank, row+1); above != nil {
			nb.Above = above.data
		}
	}
	if row-1 >= 0 {
		if below := m.peekRow(bank, row-1); below != nil {
			nb.Below = below.data
		}
	}
	return nb
}

// RestoreRow refreshes a single row's charge at time at, materializing any
// pending flips first (this is what a targeted/preventive refresh does).
// TRR and RowHammer mitigations use it.
func (m *Module) RestoreRow(at TimePS, bank, row int) error {
	_, err := m.RestoreRowCounted(at, bank, row)
	return err
}

// RestoreRowCounted is RestoreRow reporting how many bitflips the restore
// materialized. Searches track mid-play materialization through it: once
// a preventive refresh has burned a flip into a victim, "did anything
// flip?" can no longer be answered by pending-exposure probes alone.
func (m *Module) RestoreRowCounted(at TimePS, bank, row int) (int, error) {
	if err := m.checkBank(bank); err != nil {
		return 0, err
	}
	if err := m.checkRow(row); err != nil {
		return 0, err
	}
	flips := m.restoreRow(bank, row, at)
	m.advance(at)
	return flips, nil
}

// Read returns the cache block at the given block index of the open row.
// The returned slice is a copy.
func (m *Module) Read(at TimePS, bank, block int) ([]byte, error) {
	if err := m.checkBank(bank); err != nil {
		return nil, err
	}
	b := &m.banks[bank]
	if !b.open {
		return nil, timingErr("RD", bank, "no open row")
	}
	if at < b.openedAt+m.Timing.TRCD {
		return nil, timingErr("RD", bank, "tRCD violated")
	}
	if block < 0 || block >= m.Geo.BlocksPerRow() {
		return nil, &AddressError{What: "block", Value: block, Limit: m.Geo.BlocksPerRow()}
	}
	rs := m.row(bank, b.openRow)
	out := make([]byte, BlockBytes)
	if rs.data != nil {
		copy(out, rs.data[block*BlockBytes:])
	}
	m.reads++
	m.advance(at)
	return out, nil
}

// Write stores a cache block into the open row. data must be BlockBytes
// long.
func (m *Module) Write(at TimePS, bank, block int, data []byte) error {
	if err := m.checkBank(bank); err != nil {
		return err
	}
	b := &m.banks[bank]
	if !b.open {
		return timingErr("WR", bank, "no open row")
	}
	if at < b.openedAt+m.Timing.TRCD {
		return timingErr("WR", bank, "tRCD violated")
	}
	if block < 0 || block >= m.Geo.BlocksPerRow() {
		return &AddressError{What: "block", Value: block, Limit: m.Geo.BlocksPerRow()}
	}
	if len(data) != BlockBytes {
		return fmt.Errorf("dram: WR data must be %d bytes, got %d", BlockBytes, len(data))
	}
	rs := m.row(bank, b.openRow)
	if rs.data == nil {
		rs.data = make([]byte, m.Geo.RowBytes)
	}
	copy(rs.data[block*BlockBytes:], data)
	m.writes++
	m.advance(at)
	return nil
}

// Refresh executes one REF command at time at. All banks must be
// precharged. Each REF restores the next 1/RefreshesPerWindow slice of every
// bank's rows, so that a full window's worth of REFs covers the module.
//
// Touched rows restore in ascending row order. The order is observable:
// flip evaluation reads neighbor-row contents for data coupling, so two
// neighbors restored within the same chunk must restore in a fixed order
// for the outcome to be deterministic (the old sparse-map iteration was
// not).
func (m *Module) Refresh(at TimePS) error {
	for bank := range m.banks {
		if m.banks[bank].open {
			return timingErr("REF", bank, "bank has open row")
		}
	}
	chunks := m.Timing.RefreshesPerWindow()
	rowsPerChunk := (m.Geo.RowsPerBank + chunks - 1) / chunks
	start := (m.refCounter % chunks) * rowsPerChunk
	end := start + rowsPerChunk
	if end > m.Geo.RowsPerBank {
		end = m.Geo.RowsPerBank
	}
	for bank := range m.banks {
		// Only touched rows carry state worth restoring; the dense window
		// makes the scan a contiguous sweep in sorted row order.
		if rows := m.rows[bank]; rows != nil {
			for row := start; row < end; row++ {
				if rows[row].present {
					m.restoreRow(bank, row, at)
				}
			}
		}
		m.banks[bank].refBusyTill = at + m.Timing.TRFC
	}
	m.refCounter++
	m.refs++
	m.advance(at)
	return nil
}

// InitRow initializes a row's contents directly, outside the command
// protocol, resetting its disturbance state. Experiments use it for bulk
// data-pattern setup (the real infrastructure streams WRs; the result is
// identical and this keeps setup out of the measured command stream).
func (m *Module) InitRow(at TimePS, bank, row int, fill byte) error {
	if err := m.checkBank(bank); err != nil {
		return err
	}
	if err := m.checkRow(row); err != nil {
		return err
	}
	rs := m.row(bank, row)
	if rs.data == nil {
		rs.data = make([]byte, m.Geo.RowBytes)
	}
	Fill(rs.data, fill)
	rs.exp = Exposure{}
	rs.lastRestore = at
	m.advance(at)
	return nil
}

// FetchRow activates the row, evaluates pending disturbance, and returns a
// copy of its contents, then leaves the row precharged. It issues real
// ACT/PRE commands with legal timing starting at time at and returns the
// completion time.
func (m *Module) FetchRow(at TimePS, bank, row int) ([]byte, TimePS, error) {
	if err := m.Activate(at, bank, row); err != nil {
		return nil, at, err
	}
	rs := m.row(bank, row)
	out := make([]byte, m.Geo.RowBytes)
	if rs.data != nil {
		copy(out, rs.data)
	}
	preAt := at + m.Timing.TRAS
	if err := m.Precharge(preAt, bank); err != nil {
		return nil, at, err
	}
	return out, preAt + m.Timing.TRP, nil
}

// PeekRow returns the row's raw stored bytes without issuing commands and
// without materializing pending disturbance. Test-only introspection.
func (m *Module) PeekRow(bank, row int) []byte {
	if bank < 0 || bank >= m.Geo.Banks || row < 0 || row >= m.Geo.RowsPerBank {
		return nil
	}
	rs := m.peekRow(bank, row)
	if rs == nil || rs.data == nil {
		return nil
	}
	out := make([]byte, len(rs.data))
	copy(out, rs.data)
	return out
}

// PendingExposure returns the accumulated exposure of a row (test/analysis
// introspection; does not modify state).
func (m *Module) PendingExposure(bank, row int) Exposure {
	if bank < 0 || bank >= m.Geo.Banks || row < 0 || row >= m.Geo.RowsPerBank {
		return Exposure{}
	}
	if rs := m.peekRow(bank, row); rs != nil {
		return rs.exp
	}
	return Exposure{}
}
