package dram

import "fmt"

// HammerSpec describes a (Row)Hammer/(Row)Press access-pattern loop, i.e.
// the patterns of Figs. 5, 16, and 21 of the paper:
//
//	repeat: ACT rows[i], keep open OnTime, PRE, wait tRP+ExtraOff — next row
//
// With one row and OnTime = tRAS this is single-sided RowHammer; with a
// large OnTime it is single-sided RowPress; with two rows it is the
// double-sided variant; ExtraOff > 0 yields the RowPress-ONOFF pattern of
// §5.4 where tA2A = OnTime + tRP + ExtraOff.
type HammerSpec struct {
	Bank     int
	Rows     []int  // aggressor rows, activated round-robin
	Count    int    // total activations across all aggressor rows
	OnTime   TimePS // tAggON per activation; min tRAS
	ExtraOff TimePS // extra off time beyond tRP after each PRE
}

// SlotTime returns the duration of one activation slot
// (tAggON + tRP + ExtraOff).
func (s HammerSpec) SlotTime(t Timing) TimePS { return s.OnTime + t.TRP + s.ExtraOff }

// TotalTime returns the duration of the whole loop.
func (s HammerSpec) TotalTime(t Timing) TimePS { return TimePS(s.Count) * s.SlotTime(t) }

// Validate checks the spec against the module's timing and geometry.
func (s HammerSpec) Validate(m *Module) error {
	if err := m.checkBank(s.Bank); err != nil {
		return err
	}
	if len(s.Rows) == 0 {
		return fmt.Errorf("dram: hammer spec needs at least one aggressor row")
	}
	seen := make(map[int]bool, len(s.Rows))
	for _, r := range s.Rows {
		if err := m.checkRow(r); err != nil {
			return err
		}
		if seen[r] {
			return fmt.Errorf("dram: duplicate aggressor row %d", r)
		}
		seen[r] = true
	}
	if s.Count <= 0 {
		return fmt.Errorf("dram: hammer count must be positive, got %d", s.Count)
	}
	if s.OnTime < m.Timing.TRAS {
		return fmt.Errorf("dram: OnTime %s below tRAS %s", FormatTime(s.OnTime), FormatTime(m.Timing.TRAS))
	}
	if s.ExtraOff < 0 {
		return fmt.Errorf("dram: ExtraOff must be non-negative")
	}
	return nil
}

// Hammer executes the access pattern starting at time at, issuing every
// ACT/PRE through the command path, and returns the completion time. This
// is the reference implementation; use HammerBatch for large counts.
func (m *Module) Hammer(at TimePS, spec HammerSpec) (TimePS, error) {
	if err := spec.Validate(m); err != nil {
		return at, err
	}
	if m.banks[spec.Bank].open {
		return at, timingErr("ACT", spec.Bank, "bank must be precharged before hammering")
	}
	now := at
	for i := 0; i < spec.Count; i++ {
		row := spec.Rows[i%len(spec.Rows)]
		if err := m.Activate(now, spec.Bank, row); err != nil {
			return now, err
		}
		if err := m.Precharge(now+spec.OnTime, spec.Bank); err != nil {
			return now, err
		}
		now += spec.SlotTime(m.Timing)
	}
	return now, nil
}

// HammerBatch applies the same access pattern as Hammer in O(aggressors ×
// blast radius) instead of O(count), exploiting that every iteration after
// the first delivers an identical disturbance increment (the closed form
// in accrual.go). The observable effect on every row's exposure is
// equivalent to Hammer (up to float summation order); a property test
// enforces this.
func (m *Module) HammerBatch(at TimePS, spec HammerSpec) (TimePS, error) {
	if err := spec.Validate(m); err != nil {
		return at, err
	}
	if m.banks[spec.Bank].open {
		return at, timingErr("ACT", spec.Bank, "bank must be precharged before hammering")
	}
	n := len(spec.Rows)
	slot := spec.SlotTime(m.Timing)
	steadyOff := spec.SteadyOff(m.Timing)
	sched := spec.Schedule()
	// A listed row that never activates (Count < len(Rows)) behaves as a
	// plain victim, so the skip set only contains rows with ≥1 activation.
	isAggressor := make(map[int]bool, n)
	for _, ag := range sched {
		if ag.Acts > 0 {
			isAggressor[ag.Row] = true
		}
	}

	// Phase 1: each aggressor's first activation restores its own charge,
	// materializing any pre-loop exposure exactly as the command path does.
	for idx, ag := range sched {
		if ag.Acts > 0 {
			m.restoreRow(spec.Bank, ag.Row, at+TimePS(idx)*slot)
		}
	}

	// Phase 2: bulk-accrue disturbance to non-aggressor victims through the
	// shared closed form. The first activation uses the off time preceding
	// the loop; the rest use the steady-state off time.
	addExposure := func(victim int, above bool, h, p float64) {
		rs := m.row(spec.Bank, victim)
		if above {
			rs.exp.HammerAbove += h
			rs.exp.PressAbove += p
		} else {
			rs.exp.HammerBelow += h
			rs.exp.PressBelow += p
		}
	}
	for idx, ag := range sched {
		if ag.Acts == 0 {
			continue
		}
		firstActAt := at + TimePS(idx)*slot
		firstOff := m.prevOff(spec.Bank, ag.Row, firstActAt)
		tempC := m.TemperatureAt(at)
		accrueSpec(m.dist, m.Geo.RowsPerBank, ag.Row, spec.OnTime, firstOff, tempC, 1, isAggressor, addExposure)
		if ag.Acts > 1 {
			accrueSpec(m.dist, m.Geo.RowsPerBank, ag.Row, spec.OnTime, steadyOff, tempC, ag.Acts-1, isAggressor, addExposure)
		}
	}

	// Phase 3: every aggressor activation wipes that aggressor's own
	// pending exposure in the command path, so at loop end each aggressor
	// only retains increments from slots after its own last activation.
	// Reset exposure without applying flips (the command path wiped it one
	// sub-threshold increment at a time), then replay the tail slots.
	for _, ag := range sched {
		if ag.Acts == 0 {
			continue
		}
		rs := m.row(spec.Bank, ag.Row)
		rs.exp = Exposure{}
		rs.lastRestore = at + TimePS(ag.LastSlot)*slot
	}
	tailStart := spec.Count - n
	if tailStart < 0 {
		tailStart = 0
	}
	for s := tailStart; s < spec.Count; s++ {
		actIdx := s % n
		actRow := spec.Rows[actIdx]
		off := steadyOff
		if s == actIdx { // this slot is the aggressor's first activation
			off = m.prevOff(spec.Bank, actRow, at+TimePS(s)*slot)
		}
		tempC := m.TemperatureAt(at)
		for j, victim := range spec.Rows {
			if j == actIdx || sched[j].LastSlot >= s || sched[j].Acts == 0 {
				continue
			}
			d := victim - actRow
			if d < 0 {
				d = -d
			}
			if d == 0 || d > BlastRadius {
				continue
			}
			rs := m.row(spec.Bank, victim)
			h := m.dist.HammerIncrement(spec.OnTime, off, tempC, d)
			p := m.dist.PressIncrement(spec.OnTime, off, tempC, d)
			if actRow > victim {
				rs.exp.HammerAbove += h
				rs.exp.PressAbove += p
			} else {
				rs.exp.HammerBelow += h
				rs.exp.PressBelow += p
			}
		}
	}

	// Phase 4: bookkeeping — last PRE time per aggressor, counters, clock.
	for _, ag := range sched {
		if ag.Acts == 0 {
			continue
		}
		m.recordPre(spec.Bank, ag.Row, at+TimePS(ag.LastSlot)*slot+spec.OnTime)
		m.acts += uint64(ag.Acts)
		m.pres += uint64(ag.Acts)
	}
	end := at + TimePS(spec.Count)*slot
	m.banks[spec.Bank].hasPre = true
	m.banks[spec.Bank].lastPreAt = end - m.Timing.TRP - spec.ExtraOff // last PRE instant
	m.advance(end)
	return end, nil
}
