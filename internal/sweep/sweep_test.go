package sweep

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/report"
)

// testScale keeps sweep tests fast while preserving per-module sharding.
const testScale = 0.05

func TestSpecExpansionOrderAndDefaults(t *testing.T) {
	pts, err := Spec{Experiment: "fig7"}.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Scale != 1 || pts[0].Seed != 1 || pts[0].Modules != nil {
		t.Fatalf("default expansion: %+v", pts)
	}

	pts, err = Spec{
		Experiment: "fig7",
		Scales:     []float64{0.05, 0.1},
		Seeds:      []uint64{1, 2},
		ModuleSets: [][]string{{"S0"}, {" S3 ", ""}}, // sets are normalized
	}.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("expected 2×2×2 points, got %d", len(pts))
	}
	// Module sets vary slowest, then seeds, then scales.
	want := []Point{
		{0.05, 1, []string{"S0"}}, {0.1, 1, []string{"S0"}},
		{0.05, 2, []string{"S0"}}, {0.1, 2, []string{"S0"}},
		{0.05, 1, []string{"S3"}}, {0.1, 1, []string{"S3"}},
		{0.05, 2, []string{"S3"}}, {0.1, 2, []string{"S3"}},
	}
	for i, w := range want {
		got := pts[i]
		if got.Scale != w.Scale || got.Seed != w.Seed || strings.Join(got.Modules, ",") != strings.Join(w.Modules, ",") {
			t.Fatalf("point %d: got %+v want %+v", i, got, w)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	for name, spec := range map[string]Spec{
		"no experiment":      {},
		"unknown experiment": {Experiment: "fig999"},
		"zero scale":         {Experiment: "fig7", Scales: []float64{0}},
		"scale above one":    {Experiment: "fig7", Scales: []float64{2}},
		"duplicate modules":  {Experiment: "fig7", ModuleSets: [][]string{{"S0", "S0"}}},
	} {
		if _, err := spec.Points(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSpecGridSizeBounded(t *testing.T) {
	spec := Spec{Experiment: "fig7"}
	for i := 0; i < 100; i++ {
		spec.Scales = append(spec.Scales, float64(i+1)/100)
	}
	for i := 0; i < 50; i++ {
		spec.Seeds = append(spec.Seeds, uint64(i))
	}
	if _, err := spec.Points(); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("5000-point grid should exceed MaxPoints=%d: err=%v", MaxPoints, err)
	}
}

// TestSweepReusesShardsOfPriorSingleRuns is the PR's acceptance
// criterion: a sweep over N points where M points were previously run
// individually executes only the shards of the N−M new points, and each
// sweep report is byte-identical to its single run (so concatenating
// sweep reports equals concatenating the single-run outputs).
func TestSweepReusesShardsOfPriorSingleRuns(t *testing.T) {
	eng := engine.New(4, 0)
	spec := Spec{
		Experiment: "fig7",
		Scales:     []float64{testScale},
		ModuleSets: [][]string{{"S0"}, {"S3"}, {"M3"}}, // N = 3 points, 1 shard each
	}

	// Run M = 2 of the points individually first.
	singles := make([]string, 3)
	for i, mod := range []string{"S0", "S3"} {
		o := core.DefaultOptions()
		o.Scale, o.Modules = testScale, []string{mod}
		out, err := core.RunWith(eng, "fig7", o)
		if err != nil {
			t.Fatal(err)
		}
		singles[i] = report.Text(out)
	}
	pre := eng.Metrics()
	if pre.ShardsExecuted != 2 {
		t.Fatalf("priming runs executed %d shards", pre.ShardsExecuted)
	}

	res, err := Run(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	post := eng.Metrics()
	if got := post.ShardsExecuted - pre.ShardsExecuted; got != 1 {
		t.Fatalf("sweep should execute only the 1 new point's shard, executed %d", got)
	}
	if res.Aggregate.Executed != 1 || res.Aggregate.CacheHits != 2 || res.Aggregate.UniqueShards != 3 {
		t.Fatalf("aggregate=%+v", res.Aggregate)
	}
	for i, pt := range res.Points[:2] {
		if pt.Stats.Executed != 0 || pt.Stats.CacheHits != 1 {
			t.Fatalf("pre-run point %d recomputed: %+v", i, pt.Stats)
		}
		if pt.Report != singles[i] {
			t.Fatalf("point %d report differs from its single run", i)
		}
	}
	if res.Points[2].Stats.Executed != 1 {
		t.Fatalf("new point stats=%+v", res.Points[2].Stats)
	}

	// The remaining single run must also be byte-identical.
	o := core.DefaultOptions()
	o.Scale, o.Modules = testScale, []string{"M3"}
	lastDoc, err := core.RunWith(eng, "fig7", o)
	if err != nil {
		t.Fatal(err)
	}
	singles[2] = report.Text(lastDoc)
	var concat, sweepConcat strings.Builder
	for i := range singles {
		concat.WriteString(singles[i])
		sweepConcat.WriteString(res.Points[i].Report)
	}
	if concat.String() != sweepConcat.String() {
		t.Fatal("sweep reports are not byte-identical to concatenated single runs")
	}
}

func TestSweepDeduplicatesOverlappingPoints(t *testing.T) {
	eng := engine.New(4, 0)
	res, err := Run(eng, Spec{
		Experiment: "fig7",
		Scales:     []float64{testScale},
		ModuleSets: [][]string{{"S0", "S3"}, {"S0", "M3"}}, // S0 shared
	})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Aggregate
	if a.Points != 2 || a.ShardRefs != 4 || a.UniqueShards != 3 || a.Deduplicated != 1 {
		t.Fatalf("aggregate=%+v", a)
	}
	if a.Executed != 3 {
		t.Fatalf("cold overlapping sweep should execute each unique shard once: %+v", a)
	}
	// First-owner accounting: point 0 runs S0+S3, point 1 runs only M3.
	if res.Points[0].Stats.Executed != 2 || res.Points[1].Stats.Executed != 1 ||
		res.Points[1].Stats.CacheHits != 1 {
		t.Fatalf("points=%+v %+v", res.Points[0].Stats, res.Points[1].Stats)
	}
}

func TestSweepNilEngineUsesDefault(t *testing.T) {
	res, err := Run(nil, Spec{Experiment: "fig7", Scales: []float64{testScale}, ModuleSets: [][]string{{"S0"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Points[0].Report == "" {
		t.Fatalf("result=%+v", res)
	}
}

func TestRenderings(t *testing.T) {
	res, err := Run(engine.New(2, 0), Spec{
		Experiment: "fig7",
		Scales:     []float64{testScale},
		Seeds:      []uint64{1, 2},
		ModuleSets: [][]string{{"S0"}},
	})
	if err != nil {
		t.Fatal(err)
	}

	text := res.Text()
	if !strings.Contains(text, "## sweep point 1/2") || !strings.Contains(text, "## sweep aggregate: fig7") {
		t.Fatalf("text rendering missing sections:\n%s", text)
	}
	for _, p := range res.Points {
		if !strings.Contains(text, p.Report) {
			t.Fatal("text rendering omits a point report")
		}
	}

	csv := res.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv should be header + 2 rows:\n%s", csv)
	}
	if lines[0] != "experiment,scale,seed,modules,shards,cache_hits,executed,wall_ms,report_bytes,error" {
		t.Fatalf("csv header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "fig7,0.05,1,S0,1,") {
		t.Fatalf("csv row %q", lines[1])
	}

	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Experiment != "fig7" || len(back.Points) != 2 || back.Aggregate.Points != 2 {
		t.Fatalf("json round trip: %+v", back)
	}
}

func TestCSVEscaping(t *testing.T) {
	r := &Result{Experiment: `e"x,p`, Points: []PointResult{{
		Point: Point{Scale: 0.1, Seed: 1},
		Error: "line1\nline2",
	}}}
	csv := r.CSV()
	if !strings.Contains(csv, `"e""x,p"`) || !strings.Contains(csv, "\"line1\nline2\"") {
		t.Fatalf("csv escaping:\n%s", csv)
	}
}
