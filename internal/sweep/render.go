package sweep

import (
	"fmt"
	"strings"
)

// This file renders a Result for the three transports the daemon and
// CLI speak: JSON is plain encoding/json over Result; Text is the
// operator-facing view (every point's report, then the aggregate); CSV
// is one row per point for spreadsheet/pandas ingestion. Text embeds
// the point reports verbatim and in grid order, framed by per-point
// headers and an aggregate footer — the byte-identical-to-single-runs
// guarantee applies to the Report fields, not to the framed stream.

// modulesLabel renders a point's module list for headers and CSV cells.
func modulesLabel(mods []string) string {
	if len(mods) == 0 {
		return "representative"
	}
	return strings.Join(mods, "+")
}

// Text renders every point report in grid order followed by an
// aggregate footer. Failed points render their error in place of a
// report.
func (r *Result) Text() string {
	var b strings.Builder
	for i, p := range r.Points {
		fmt.Fprintf(&b, "## sweep point %d/%d: %s scale=%g seed=%d modules=%s\n",
			i+1, len(r.Points), r.Experiment, p.Scale, p.Seed, modulesLabel(p.Modules))
		if p.Error != "" {
			fmt.Fprintf(&b, "ERROR: %s\n\n", p.Error)
			continue
		}
		b.WriteString(p.Report)
		if !strings.HasSuffix(p.Report, "\n") {
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	a := r.Aggregate
	fmt.Fprintf(&b, "## sweep aggregate: %s\n", r.Experiment)
	fmt.Fprintf(&b, "points=%d failed=%d shard_refs=%d unique_shards=%d deduplicated=%d\n",
		a.Points, a.Failed, a.ShardRefs, a.UniqueShards, a.Deduplicated)
	fmt.Fprintf(&b, "cache_hits=%d executed=%d report_bytes=%d wall_ms=%.1f\n",
		a.CacheHits, a.Executed, a.ReportBytes, a.WallMS)
	fmt.Fprintf(&b, "point_wall_ms min=%.1f mean=%.1f max=%.1f\n",
		a.PointWallMS.Min, a.PointWallMS.Mean, a.PointWallMS.Max)
	return b.String()
}

// csvEscape quotes a cell when it contains a separator, quote, or
// newline (RFC 4180).
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// CSV renders one row per point: the grid coordinates, the per-point
// batch accounting, the report size, and any error. Reports themselves
// are not embedded — fetch them via JSON or text.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString("experiment,scale,seed,modules,shards,cache_hits,executed,wall_ms,report_bytes,error\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%s,%g,%d,%s,%d,%d,%d,%.3f,%d,%s\n",
			csvEscape(r.Experiment), p.Scale, p.Seed, csvEscape(modulesLabel(p.Modules)),
			p.Stats.Shards, p.Stats.CacheHits, p.Stats.Executed, p.Stats.WallMS,
			len(p.Report), csvEscape(p.Error))
	}
	return b.String()
}
