package sweep

import (
	"fmt"
	"strings"

	"repro/internal/report"
)

// This file renders a Result for the three transports the daemon and
// CLI speak, built on the shared internal/report renderers: JSON is
// plain encoding/json over Result (each point carries its typed
// report.Doc); Text frames each point's report.Text rendering with
// per-point headers and an aggregate footer; CSV is one report.CSVEscape'd
// row per point for spreadsheet/pandas ingestion. The
// byte-identical-to-single-runs guarantee applies to the Report fields,
// not to the framed stream.

// modulesLabel renders a point's module list for headers and CSV cells.
func modulesLabel(mods []string) string {
	if len(mods) == 0 {
		return "representative"
	}
	return strings.Join(mods, "+")
}

// Text renders every point report in grid order followed by an
// aggregate footer. Failed points render their error in place of a
// report.
func (r *Result) Text() string {
	var b strings.Builder
	for i, p := range r.Points {
		fmt.Fprintf(&b, "## sweep point %d/%d: %s scale=%g seed=%d modules=%s\n",
			i+1, len(r.Points), r.Experiment, p.Scale, p.Seed, modulesLabel(p.Modules))
		if p.Error != "" {
			fmt.Fprintf(&b, "ERROR: %s\n\n", p.Error)
			continue
		}
		b.WriteString(p.Report)
		if !strings.HasSuffix(p.Report, "\n") {
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	a := r.Aggregate
	fmt.Fprintf(&b, "## sweep aggregate: %s\n", r.Experiment)
	fmt.Fprintf(&b, "points=%d failed=%d shard_refs=%d unique_shards=%d deduplicated=%d\n",
		a.Points, a.Failed, a.ShardRefs, a.UniqueShards, a.Deduplicated)
	fmt.Fprintf(&b, "cache_hits=%d executed=%d sub_executed=%d report_bytes=%d wall_ms=%.1f\n",
		a.CacheHits, a.Executed, a.SubExecuted, a.ReportBytes, a.WallMS)
	fmt.Fprintf(&b, "point_wall_ms min=%.1f mean=%.1f max=%.1f\n",
		a.PointWallMS.Min, a.PointWallMS.Mean, a.PointWallMS.Max)
	return b.String()
}

// CSV renders one row per point: the grid coordinates, the per-point
// batch accounting, the report size, and any error. Reports themselves
// are not embedded — fetch them via JSON or text.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString("experiment,scale,seed,modules,shards,cache_hits,executed,wall_ms,report_bytes,error\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%s,%g,%d,%s,%d,%d,%d,%.3f,%d,%s\n",
			report.CSVEscape(r.Experiment), p.Scale, p.Seed, report.CSVEscape(modulesLabel(p.Modules)),
			p.Stats.Shards, p.Stats.CacheHits, p.Stats.Executed, p.Stats.WallMS,
			len(p.Report), report.CSVEscape(p.Error))
	}
	return b.String()
}
