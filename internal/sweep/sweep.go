// Package sweep batches parameter grids over the experiment engine. A
// Spec names one experiment and lists of scales, seeds, and module sets;
// it expands into the cartesian product of points, each point plans
// through core.PlanFor (so its shards carry exactly the cache addresses
// a single /v1/run or `rowpress run` of the same options would use), and
// the whole grid executes as one deduplicated engine.ExecuteBatch on the
// shared worker pool and shard cache. Points that overlap each other —
// or any previously completed single run on the same engine — hit the
// cache instead of recomputing, and each point's report is byte-identical
// to the equivalent single run.
//
// The follow-up RowPress characterization studies (arXiv:2406.16153,
// arXiv:2406.13080) structure their experiments exactly this way:
// grids over modules × timings × temperatures. This package is the
// serving-side shape of that methodology.
package sweep

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/stats"
)

// Spec is a batched parameter sweep: one experiment crossed with lists
// of scales, seeds, and module sets. Empty lists default to the single
// default value (scale 1, seed 1, representative modules), so the
// minimal spec {"experiment":"fig6"} is one full-scale point.
type Spec struct {
	Experiment string     `json:"experiment"`
	Scales     []float64  `json:"scales,omitempty"`
	Seeds      []uint64   `json:"seeds,omitempty"`
	ModuleSets [][]string `json:"module_sets,omitempty"`
}

// Point is one expanded grid point of a Spec.
type Point struct {
	Scale   float64  `json:"scale"`
	Seed    uint64   `json:"seed"`
	Modules []string `json:"modules,omitempty"`
}

// PointStats is the per-point slice of the batch accounting, latency in
// milliseconds. CacheHits+Executed always equals Shards; Executed counts
// only shards no earlier point (and no earlier run on the engine)
// already computed.
type PointStats struct {
	Shards      int     `json:"shards"`
	CacheHits   int     `json:"cache_hits"`
	Executed    int     `json:"executed"`
	SubExecuted int     `json:"sub_executed,omitempty"` // sub-shards run for this point's split shards
	QueueWaitMS float64 `json:"queue_wait_ms"`
	WallMS      float64 `json:"wall_ms"`
}

// PointResult is one completed (or failed) grid point. Doc is the typed
// result document; Report is its text rendering (report.Text), kept on
// the wire so operators can read sweep responses without re-rendering.
type PointResult struct {
	Point
	Doc    *report.Doc `json:"doc,omitempty"`
	Report string      `json:"report,omitempty"`
	Error  string      `json:"error,omitempty"`
	Stats  PointStats  `json:"stats"`
}

// Aggregate summarizes a whole sweep: grid size, shard-level
// deduplication, cache effectiveness, and descriptive statistics over
// the per-point attributed compute times.
type Aggregate struct {
	Points       int     `json:"points"`
	Failed       int     `json:"failed"`
	ShardRefs    int     `json:"shard_refs"`
	UniqueShards int     `json:"unique_shards"`
	Deduplicated int     `json:"deduplicated"`
	CacheHits    int     `json:"cache_hits"`
	Executed     int     `json:"executed"`
	SubExecuted  int     `json:"sub_executed,omitempty"`
	QueueWaitMS  float64 `json:"queue_wait_ms"`
	WallMS       float64 `json:"wall_ms"`
	ReportBytes  int     `json:"report_bytes"`
	PointWallMS  Wall    `json:"point_wall_ms"`
}

// Wall is the min/mean/max envelope of per-point compute time.
type Wall struct {
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// Result is a completed sweep: the expanded points in grid order plus
// the aggregate view.
type Result struct {
	Experiment string        `json:"experiment"`
	Title      string        `json:"title,omitempty"`
	Points     []PointResult `json:"points"`
	Aggregate  Aggregate     `json:"aggregate"`
}

// MaxPoints bounds a single sweep's expanded grid. The paper's largest
// grids (modules × timings × temperatures) are a few hundred points;
// the cap exists so a small request body cannot demand a
// memory-exhausting cartesian product from a serving daemon.
const MaxPoints = 4096

// Points validates the spec and expands the grid in deterministic order:
// module sets vary slowest, then seeds, then scales — so all points of
// one module set are adjacent in the output. Module sets are normalized
// through core.NormalizeModules; list-level problems (no experiment,
// duplicate module ids) fail here, before any shard runs.
func (s Spec) Points() ([]Point, error) {
	if s.Experiment == "" {
		return nil, fmt.Errorf("sweep: spec has no experiment")
	}
	if _, ok := core.Get(s.Experiment); !ok {
		return nil, fmt.Errorf("sweep: %w %q", core.ErrUnknownExperiment, s.Experiment)
	}
	scales := s.Scales
	if len(scales) == 0 {
		scales = []float64{core.DefaultOptions().Scale}
	}
	for _, sc := range scales {
		if sc <= 0 || sc > 1 {
			return nil, fmt.Errorf("sweep: scale must be in (0,1], got %v", sc)
		}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{core.DefaultOptions().Seed}
	}
	sets := s.ModuleSets
	if len(sets) == 0 {
		sets = [][]string{nil}
	}
	if n := len(sets) * len(seeds) * len(scales); n > MaxPoints {
		return nil, fmt.Errorf("sweep: grid of %d points exceeds the %d-point limit", n, MaxPoints)
	}
	points := make([]Point, 0, len(sets)*len(seeds)*len(scales))
	for _, set := range sets {
		mods, err := core.NormalizeModules(set)
		if err != nil {
			return nil, fmt.Errorf("sweep: module set %v: %w", set, err)
		}
		for _, seed := range seeds {
			for _, sc := range scales {
				points = append(points, Point{Scale: sc, Seed: seed, Modules: mods})
			}
		}
	}
	return points, nil
}

// Run expands the spec and executes it as one batch on eng (nil selects
// the process-wide default engine). Spec-level problems — unknown
// experiment, out-of-range scale, malformed module set — return an
// error before anything executes; per-point execution failures land in
// that point's Error field and the aggregate Failed count, and do not
// abort the rest of the grid.
func Run(eng *engine.Engine, spec Spec) (*Result, error) {
	if eng == nil {
		eng = core.DefaultEngine()
	}
	points, err := spec.Points()
	if err != nil {
		return nil, err
	}
	plans := make([]engine.Plan, len(points))
	for i, pt := range points {
		o := core.DefaultOptions()
		o.Scale, o.Seed, o.Modules = pt.Scale, pt.Seed, pt.Modules
		p, err := core.PlanFor(spec.Experiment, o)
		if err != nil {
			return nil, fmt.Errorf("sweep: point %d: %w", i, err)
		}
		plans[i] = p
	}

	outs, runStats, errs, bs := eng.ExecuteBatch(plans)

	res := &Result{Experiment: spec.Experiment, Points: make([]PointResult, len(points))}
	if e, ok := core.Get(spec.Experiment); ok {
		res.Title = e.Title
	}
	walls := make([]float64, len(points))
	for i, pt := range points {
		pr := PointResult{Point: pt, Doc: outs[i], Report: report.Text(outs[i]), Stats: PointStats{
			Shards:      runStats[i].Shards,
			CacheHits:   runStats[i].CacheHits,
			Executed:    runStats[i].Executed,
			SubExecuted: runStats[i].SubExecuted,
			QueueWaitMS: ms(runStats[i].QueueWait),
			WallMS:      ms(runStats[i].Wall),
		}}
		if errs[i] != nil {
			pr.Error = errs[i].Error()
			pr.Doc, pr.Report = nil, ""
			res.Aggregate.Failed++
		}
		res.Aggregate.ReportBytes += len(pr.Report)
		walls[i] = pr.Stats.WallMS
		res.Points[i] = pr
	}
	sum := stats.Describe(walls)
	res.Aggregate.Points = bs.Plans
	res.Aggregate.ShardRefs = bs.ShardRefs
	res.Aggregate.UniqueShards = bs.UniqueShards
	res.Aggregate.Deduplicated = bs.Deduplicated
	res.Aggregate.CacheHits = bs.CacheHits
	res.Aggregate.Executed = bs.Executed
	res.Aggregate.SubExecuted = bs.SubExecuted
	res.Aggregate.QueueWaitMS = ms(bs.QueueWait)
	res.Aggregate.WallMS = ms(bs.Wall)
	res.Aggregate.PointWallMS = Wall{Min: sum.Min, Mean: sum.Mean, Max: sum.Max}
	return res, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
