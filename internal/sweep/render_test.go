package sweep

import (
	"encoding/csv"
	"strings"
	"testing"
)

// TestCSVEscapingRoundTrip pins the renderer against encoding/csv: cells
// containing separators, quotes, or newlines — module names are
// user-supplied strings, and error messages routinely quote them — must
// survive an RFC 4180 parse with every field intact.
func TestCSVEscapingRoundTrip(t *testing.T) {
	res := &Result{
		Experiment: `weird,"exp"`,
		Points: []PointResult{
			{
				Point:  Point{Scale: 0.5, Seed: 7, Modules: []string{`S0,x`, `H"quoted"`, "M\nnewline"}},
				Report: "irrelevant",
			},
			{
				Point: Point{Scale: 1, Seed: 1},
				Error: `module "S0,broken" not found, giving up`,
			},
		},
	}
	out := res.CSV()
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("rendered CSV does not parse: %v\n%s", err, out)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want header + 2 points", len(recs))
	}
	header := recs[0]
	if header[0] != "experiment" || header[len(header)-1] != "error" {
		t.Fatalf("header malformed: %v", header)
	}
	for i, rec := range recs[1:] {
		if len(rec) != len(header) {
			t.Fatalf("point %d has %d fields, want %d", i, len(rec), len(header))
		}
	}
	if recs[1][0] != `weird,"exp"` {
		t.Errorf("experiment field corrupted: %q", recs[1][0])
	}
	if want := `S0,x+H"quoted"+M` + "\nnewline"; recs[1][3] != want {
		t.Errorf("modules field corrupted: %q, want %q", recs[1][3], want)
	}
	if recs[2][3] != "representative" {
		t.Errorf("empty module set rendered %q", recs[2][3])
	}
	if want := `module "S0,broken" not found, giving up`; recs[2][len(header)-1] != want {
		t.Errorf("error field corrupted: %q", recs[2][len(header)-1])
	}
}

// TestCSVPlainCellsUnquoted: the fast path must not quote cells that
// need no quoting (spreadsheet friendliness and byte-stability).
func TestCSVPlainCellsUnquoted(t *testing.T) {
	res := &Result{
		Experiment: "fig6",
		Points:     []PointResult{{Point: Point{Scale: 0.1, Seed: 2, Modules: []string{"S0", "S3"}}}},
	}
	out := res.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if strings.Contains(lines[1], `"`) {
		t.Fatalf("plain cells were quoted: %s", lines[1])
	}
	if !strings.HasPrefix(lines[1], "fig6,0.1,2,S0+S3,") {
		t.Fatalf("row malformed: %s", lines[1])
	}
}
