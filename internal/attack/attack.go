// Package attack implements the paper's user-level RowPress programs (§6,
// Appendix G) against the simulated real system of internal/sysarch:
// double-sided aggressor-row accesses that read NUM_READS cache blocks per
// activation (keeping the row open longer — the RowPress lever), cache
// flushing, sixteen dummy rows that bypass the DIMM's TRR sampler, and
// synchronization with the refresh stream.
package attack

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/stats"
	"repro/internal/sysarch"
)

// Variant selects the access-pattern ordering.
type Variant int

// Algorithm1 (read all blocks, then flush all) and Algorithm2 (flush each
// block right after reading it, Appendix G). Algorithm 2 keeps the
// aggressor row open during the flushes, amplifying tAggON per activation.
const (
	Algorithm1 Variant = iota
	Algorithm2
)

func (v Variant) String() string {
	if v == Algorithm2 {
		return "Algorithm2"
	}
	return "Algorithm1"
}

// Config mirrors the test program's parameters (Algorithm 1's red inputs)
// plus the microarchitectural constants of the modeled machine.
type Config struct {
	NumAggrActs int // NUM_AGGR_ACTS: activations per aggressor per iteration
	NumReads    int // NUM_READS: cache blocks read per aggressor activation
	Victims     int // victim rows tested (paper: 1500)
	Windows     int // tREFI windows simulated per victim (8205 ≈ one tREFW)
	Variant     Variant

	ReadSlotNs  int // row-open time contributed by one block read
	FlushNs     int // clflushopt cost per block (off the row for Algorithm 1)
	DummyRows   int // dummy rows for TRR bypass (paper: 16)
	DummyActs   int // activations per dummy row per iteration
	DummySlotNs int // duration of one dummy activation (≈ tRC)

	// RowBufferDecoupled enables the §7.2 candidate mitigation: column
	// accesses keep hitting the decoupled row buffer, but the wordline is
	// de-asserted after charge restoration, pinning tAggON at tRAS. The
	// program's timing is unchanged — only the disturbance lever is gone.
	RowBufferDecoupled bool

	// AdaptiveHoldNs models an adaptive row-buffer management policy that
	// speculatively keeps a row open after its last access, anticipating
	// reuse (§6/§7.3: such policies "can facilitate RowPress-based
	// attacks" because the attacker controls the effective row-open time
	// without spending cache-flush work on extra reads).
	AdaptiveHoldNs int
}

// DefaultConfig returns the §6.2 methodology at a scaled victim count.
func DefaultConfig() Config {
	return Config{
		NumAggrActs: 4,
		NumReads:    16,
		Victims:     128,
		Windows:     8205, // one full refresh window of accumulation
		Variant:     Algorithm1,
		ReadSlotNs:  24,
		FlushNs:     20,
		DummyRows:   16,
		DummyActs:   2,
		DummySlotNs: 51,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.NumAggrActs <= 0 || c.NumReads <= 0:
		return fmt.Errorf("attack: NUM_AGGR_ACTS and NUM_READS must be positive")
	case c.Victims <= 0 || c.Windows <= 0:
		return fmt.Errorf("attack: Victims and Windows must be positive")
	case c.ReadSlotNs <= 0 || c.DummyRows < 0 || c.DummyActs < 0:
		return fmt.Errorf("attack: invalid timing constants")
	}
	return nil
}

// timing derives the iteration's time structure.
type timing struct {
	aggON     dram.TimePS // row-open time per aggressor activation
	aggPhase  dram.TimePS // duration of the aggressor access phase
	flushGap  dram.TimePS // Algorithm 1's separate flush phase
	dummyTime dram.TimePS
	iterTime  dram.TimePS
	caughtCut dram.TimePS // REF phases below this leave an aggressor tracked
}

func (c Config) timing(t dram.Timing, trrEntries int) timing {
	var tm timing
	readOpen := dram.TimePS(c.NumReads*c.ReadSlotNs) * dram.Nanosecond
	if c.Variant == Algorithm2 {
		// Flushes interleave with reads while the row stays open.
		readOpen += dram.TimePS(c.NumReads*c.FlushNs) * dram.Nanosecond
	} else {
		tm.flushGap = dram.TimePS(2*c.NumReads*c.FlushNs) * dram.Nanosecond
	}
	// An adaptive policy extends the open time after the attacker's last
	// read; the attacker simply idles while the MC speculates.
	readOpen += dram.TimePS(c.AdaptiveHoldNs) * dram.Nanosecond
	tm.aggON = readOpen
	if tm.aggON < t.TRAS {
		tm.aggON = t.TRAS
	}
	acts := 2 * c.NumAggrActs
	// The iteration occupies the bus for the full access phase even when
	// the wordline is decoupled; only the disturbance-relevant open time
	// collapses to tRAS.
	tm.aggPhase = dram.TimePS(acts) * (tm.aggON + t.TRP)
	if c.RowBufferDecoupled {
		tm.aggON = t.TRAS
	}
	tm.dummyTime = dram.TimePS(c.DummyRows*c.DummyActs*c.DummySlotNs) * dram.Nanosecond
	tm.iterTime = tm.aggPhase + tm.flushGap + tm.dummyTime
	// The TRR sampler still holds an aggressor until `entries` distinct
	// dummy rows have been activated after the aggressor phase.
	tm.caughtCut = tm.aggPhase + tm.flushGap + dram.TimePS(trrEntries*c.DummySlotNs)*dram.Nanosecond
	return tm
}

// Result is one cell of Fig. 23: total bitflips and rows with bitflips.
type Result struct {
	NumAggrActs   int
	NumReads      int
	Bitflips      int
	RowsWithFlips int
	Synced        bool // whether the pattern fits one tREFI window
	TAggON        dram.TimePS
}

// Run executes the test program for every victim row and reports Fig. 23
// counts. Victim rows are spread across the module; each victim gets a
// fresh refresh window's worth of iterations (its exposure resets at its
// periodic refresh anyway, so one window captures the steady state).
func Run(sys *sysarch.System, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	t := sys.Mod.Timing
	tm := cfg.timing(t, sys.TRREntries)
	res := Result{NumAggrActs: cfg.NumAggrActs, NumReads: cfg.NumReads, TAggON: tm.aggON}
	res.Synced = tm.iterTime <= t.TREFI

	geo := sys.Mod.Geo
	rows := geo.RowsPerBank
	step := (rows - 16) / cfg.Victims
	if step < 8 {
		step = 8
	}
	const bank = 0
	for v := 0; v < cfg.Victims; v++ {
		victim := 8 + v*step
		if victim >= rows-8 {
			break
		}
		flips, err := runVictim(sys, cfg, tm, bank, victim, uint64(v))
		if err != nil {
			return Result{}, err
		}
		if flips > 0 {
			res.Bitflips += flips
			res.RowsWithFlips++
		}
	}
	return res, nil
}

// runVictim simulates one victim's refresh window under the access
// pattern and returns the observed bitflips.
func runVictim(sys *sysarch.System, cfg Config, tm timing, bank, victim int, salt uint64) (int, error) {
	mod := sys.Mod
	t := mod.Timing
	agg1, agg2 := victim-1, victim+1 // find_aggressor_rows(VICTIM)

	// initialize(VICTIM, 0x55…); initialize(AGGRESSOR…, 0xAA…)
	now := sys.Now()
	if err := mod.InitRow(now, bank, victim, 0x55); err != nil {
		return 0, err
	}
	for _, a := range []int{agg1, agg2} {
		if err := mod.InitRow(now, bank, a, 0xAA); err != nil {
			return 0, err
		}
	}

	windowsPerIter := int((tm.iterTime + t.TREFI - 1) / t.TREFI)
	if windowsPerIter < 1 {
		windowsPerIter = 1
	}
	acts := 2 * cfg.NumAggrActs
	for w := 0; w < cfg.Windows; w += windowsPerIter {
		end, err := mod.HammerBatch(now, dram.HammerSpec{
			Bank: bank, Rows: []int{agg1, agg2}, Count: acts, OnTime: tm.aggON,
		})
		if err != nil {
			return 0, err
		}
		now = end + tm.flushGap + tm.dummyTime

		// REF arrives at the end of the window. When the iteration fits,
		// the program is synchronized: the refresh lands after the dummy
		// phase, the TRR sampler holds only dummies, and the real victims
		// survive. When it does not fit, the phase drifts and REF can land
		// while an aggressor is still among the sampler's recent rows.
		if !tmFits(tm, t) {
			phase := dram.TimePS(stats.UnitFromHash(stats.Combine(salt, uint64(w))) * float64(tm.iterTime))
			if phase < tm.caughtCut {
				// TRR preventively refreshes the tracked aggressors'
				// neighbors — including our victim.
				for _, a := range []int{agg1, agg2} {
					for d := -2; d <= 2; d++ {
						if d == 0 {
							continue
						}
						r := a + d
						if r >= 0 && r < mod.Geo.RowsPerBank {
							if err := mod.RestoreRow(now, bank, r); err != nil {
								return 0, err
							}
						}
					}
				}
			}
		}
		now += dram.TimePS(windowsPerIter)*t.TREFI - tm.iterTime + t.TRFC
	}
	sys.Advance(now - sys.Now())

	// record_bitflips[VICTIM] = check_bitflips(VICTIM)
	data, end, err := mod.FetchRow(now, bank, victim)
	if err != nil {
		return 0, err
	}
	sys.Advance(end - sys.Now())
	flips := 0
	for _, b := range data {
		if b != 0x55 {
			flips += popcount8(b ^ 0x55)
		}
	}
	return flips, nil
}

func tmFits(tm timing, t dram.Timing) bool { return tm.iterTime <= t.TREFI }

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// GridResult is the full Fig. 23 sweep.
type GridResult struct {
	Cells []Result
}

// StandardReads is the NUM_READS lattice of Fig. 23.
var StandardReads = []int{1, 2, 4, 8, 16, 32, 48, 64, 80, 128}

// RunGrid sweeps NUM_AGGR_ACTS ∈ {2,3,4} × NUM_READS per the §6.2
// methodology (skipping combinations whose pattern is hopelessly long, as
// the paper does: no NUM_READS > 48 at four activations, > 80 at three).
func RunGrid(sys *sysarch.System, base Config) (GridResult, error) {
	var out GridResult
	for _, acts := range []int{2, 3, 4} {
		for _, reads := range StandardReads {
			if (acts == 4 && reads > 48) || (acts == 3 && reads > 80) {
				continue
			}
			cfg := base
			cfg.NumAggrActs = acts
			cfg.NumReads = reads
			r, err := Run(sys, cfg)
			if err != nil {
				return GridResult{}, fmt.Errorf("attack: acts=%d reads=%d: %w", acts, reads, err)
			}
			out.Cells = append(out.Cells, r)
		}
	}
	return out, nil
}
