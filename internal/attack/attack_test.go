package attack

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/sysarch"
)

func demoSystem(t *testing.T) *sysarch.System {
	t.Helper()
	geo := dram.Geometry{Banks: 4, RowsPerBank: 4096, RowBytes: 8192}
	sys, err := sysarch.NewDemoSystem(geo, 0xC0FFEE)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func run(t *testing.T, sys *sysarch.System, acts, reads, victims int) Result {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NumAggrActs = acts
	cfg.NumReads = reads
	cfg.Victims = victims
	r, err := Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRowPressBeatsRowHammer covers Obsv. 19/20: at NUM_AGGR_ACTS where
// conventional RowHammer (NUM_READS = 1) cannot flip anything, the
// RowPress pattern (NUM_READS = 16) flips many rows.
func TestRowPressBeatsRowHammer(t *testing.T) {
	sys := demoSystem(t)
	for _, acts := range []int{2, 3} {
		rh := run(t, sys, acts, 1, 48)
		rp := run(t, sys, acts, 16, 48)
		if rh.Bitflips != 0 {
			t.Errorf("acts=%d: RowHammer flipped %d bits; the TRR-protected system should resist it", acts, rh.Bitflips)
		}
		if rp.Bitflips == 0 {
			t.Errorf("acts=%d: RowPress (16 reads) flipped nothing", acts)
		}
	}
}

// TestNonMonotonicInReads covers Obsv. 21: flips rise with NUM_READS up to
// a peak and then collapse once the pattern no longer fits a tREFI window.
func TestNonMonotonicInReads(t *testing.T) {
	sys := demoSystem(t)
	counts := map[int]int{}
	for _, reads := range []int{1, 16, 128} {
		counts[reads] = run(t, sys, 4, reads, 48).RowsWithFlips
	}
	if !(counts[16] > counts[1]) {
		t.Errorf("rows with flips should rise from reads=1 (%d) to 16 (%d)", counts[1], counts[16])
	}
	if !(counts[16] > counts[128]) {
		t.Errorf("rows with flips should fall from reads=16 (%d) to 128 (%d)", counts[16], counts[128])
	}
}

// TestSyncFlag: the pattern fits a tREFI window at small NUM_READS and
// stops fitting at large NUM_READS.
func TestSyncFlag(t *testing.T) {
	sys := demoSystem(t)
	if r := run(t, sys, 4, 8, 2); !r.Synced {
		t.Error("acts=4 reads=8 should fit in tREFI")
	}
	if r := run(t, sys, 4, 128, 2); r.Synced {
		t.Error("acts=4 reads=128 cannot fit in tREFI")
	}
}

// TestAlgorithm2MoreEffective covers Appendix G (Obsv. 23): interleaving
// flushes with reads keeps the aggressor open longer and flips more bits
// at the same configuration.
func TestAlgorithm2MoreEffective(t *testing.T) {
	sys := demoSystem(t)
	cfg := DefaultConfig()
	cfg.NumAggrActs = 4
	cfg.NumReads = 8
	cfg.Victims = 48
	a1, err := Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Variant = Algorithm2
	a2, err := Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Bitflips <= a1.Bitflips {
		t.Errorf("Algorithm 2 (%d flips) should beat Algorithm 1 (%d flips)", a2.Bitflips, a1.Bitflips)
	}
}

func TestRunGridSkipsOversizedPatterns(t *testing.T) {
	sys := demoSystem(t)
	cfg := DefaultConfig()
	cfg.Victims = 2
	cfg.Windows = 64
	grid, err := RunGrid(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range grid.Cells {
		if c.NumAggrActs == 4 && c.NumReads > 48 {
			t.Errorf("grid contains acts=4 reads=%d (paper skips >48)", c.NumReads)
		}
		if c.NumAggrActs == 3 && c.NumReads > 80 {
			t.Errorf("grid contains acts=3 reads=%d (paper skips >80)", c.NumReads)
		}
	}
	if len(grid.Cells) != 10+9+7 {
		t.Errorf("grid has %d cells, want 26", len(grid.Cells))
	}
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.NumReads = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero reads should fail")
	}
	bad = DefaultConfig()
	bad.Victims = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero victims should fail")
	}
}

// TestProbeRowLatencies covers Fig. 24 (§6.3): the first cache-block
// access of a freshly closed row is ~30 cycles slower than the rest.
func TestProbeRowLatencies(t *testing.T) {
	sys := demoSystem(t)
	lat, err := sys.ProbeRowLatencies(1, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(lat) != sys.Mod.Geo.BlocksPerRow() {
		t.Fatalf("%d latencies", len(lat))
	}
	first := lat[0]
	var rest float64
	for _, l := range lat[1:] {
		rest += float64(l)
	}
	rest /= float64(len(lat) - 1)
	gap := float64(first) - rest
	if gap < 20 || gap > 40 {
		t.Errorf("first-vs-rest latency gap = %.1f cycles, want ≈30 (Fig. 24)", gap)
	}
}

// TestRowBufferDecouplingStopsRowPress covers §7.2: pinning the electrical
// row-open time at tRAS removes the RowPress lever even though the access
// pattern is unchanged.
func TestRowBufferDecouplingStopsRowPress(t *testing.T) {
	base := demoSystem(t)
	cfg := DefaultConfig()
	cfg.NumAggrActs = 4
	cfg.NumReads = 16
	cfg.Victims = 48
	r1, err := Run(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Bitflips == 0 {
		t.Fatal("baseline attack should flip bits")
	}
	dec := demoSystem(t)
	cfg.RowBufferDecoupled = true
	r2, err := Run(dec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Bitflips != 0 {
		t.Fatalf("decoupled wordline still flipped %d bits", r2.Bitflips)
	}
}

// TestAdaptivePolicyFacilitates covers the §6.3 conclusion: a speculative
// row-hold policy gives the attacker extra tAggON at the same NUM_READS.
func TestAdaptivePolicyFacilitates(t *testing.T) {
	base := demoSystem(t)
	cfg := DefaultConfig()
	cfg.NumAggrActs = 4
	cfg.NumReads = 8
	cfg.Victims = 48
	r0, err := Run(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	adaptive := demoSystem(t)
	cfg.AdaptiveHoldNs = 400
	r1, err := Run(adaptive, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TAggON <= r0.TAggON {
		t.Fatal("adaptive hold should extend tAggON")
	}
	if r1.Bitflips <= r0.Bitflips {
		t.Errorf("adaptive policy should amplify the attack: %d vs %d flips", r1.Bitflips, r0.Bitflips)
	}
}
