package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/report"
)

// A nil recorder is the disabled state: every method must be a safe
// no-op, because the engine threads one *Recorder field and never
// branches on configuration.
func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Record(Execute, 0, 0, "fig6", "s", time.Now(), time.Millisecond, 1)
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil Snapshot = %v, want nil", got)
	}
	if r.Dropped() != 0 || r.Stats() != nil || r.Since(time.Now()) != 0 {
		t.Fatal("nil recorder accessors not zero")
	}
}

func TestRecorderStoresSpans(t *testing.T) {
	r := NewRecorder(8)
	start := r.Epoch().Add(5 * time.Millisecond)
	r.Record(Execute, 2, 3, "fig6", "module/S0", start, 7*time.Millisecond, 42)
	spans := r.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Kind != Execute || s.Worker != 2 || s.Index != 3 || s.Experiment != "fig6" ||
		s.Shard != "module/S0" || s.Bytes != 42 {
		t.Fatalf("span fields wrong: %+v", s)
	}
	if s.Start != 5*time.Millisecond || s.Dur != 7*time.Millisecond || s.End() != 12*time.Millisecond {
		t.Fatalf("span timing wrong: start=%v dur=%v end=%v", s.Start, s.Dur, s.End())
	}
	st := r.Stats()
	if st["execute"].Count != 1 || st["execute"].Total != 7*time.Millisecond {
		t.Fatalf("stats wrong: %+v", st["execute"])
	}
}

// Once the ring wraps, the snapshot must hold the most recent capacity
// spans in oldest-first order, and Dropped must count the overwrites.
func TestRecorderRingWrap(t *testing.T) {
	const capacity, total = 4, 11
	r := NewRecorder(capacity)
	for i := 0; i < total; i++ {
		r.Record(Execute, 0, i, "e", fmt.Sprintf("s%d", i), r.Epoch(), time.Millisecond, 0)
	}
	if got := r.Dropped(); got != total-capacity {
		t.Fatalf("Dropped = %d, want %d", got, total-capacity)
	}
	spans := r.Snapshot()
	if len(spans) != capacity {
		t.Fatalf("got %d spans, want %d", len(spans), capacity)
	}
	for i, s := range spans {
		if want := int32(total - capacity + i); s.Index != want {
			t.Fatalf("span %d has index %d, want %d (oldest-first)", i, s.Index, want)
		}
	}
}

func TestRecorderConcurrentRecord(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	const goroutines, each = 8, 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Record(QueueWait, g, i, "e", "s", time.Now(), time.Microsecond, 0)
			}
		}(g)
	}
	wg.Wait()
	if got := r.Stats()["queue_wait"].Count; got != goroutines*each {
		t.Fatalf("recorded %d spans, want %d", got, goroutines*each)
	}
	if got := r.Dropped() + uint64(len(r.Snapshot())); got != goroutines*each {
		t.Fatalf("dropped+retained = %d, want %d", got, goroutines*each)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * time.Millisecond) // 1ms..100ms
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Max != 100*time.Millisecond {
		t.Fatalf("count=%d max=%v", s.Count, s.Max)
	}
	// Bucket interpolation is coarse (doubling buckets); assert the
	// quantiles land in the right neighborhood and are ordered.
	p50, p95, p99 := s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99)
	if !(p50 < p95 && p95 <= p99) {
		t.Fatalf("quantiles not monotonic: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if p50 < 25*time.Millisecond || p50 > 102*time.Millisecond {
		t.Fatalf("p50 = %v, want within a doubling bucket of 50ms", p50)
	}
	if mean := s.Mean(); mean != 50500*time.Microsecond {
		t.Fatalf("mean = %v, want 50.5ms", mean)
	}
}

func TestHistogramOverflowResolvesToMax(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond})
	h.Observe(10 * time.Second) // overflow bucket
	s := h.Snapshot()
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("overflow bucket not hit: %v", s.Counts)
	}
	if got := s.Quantile(0.99); got > 10*time.Second || got < time.Millisecond {
		t.Fatalf("overflow quantile = %v, want in (1ms, 10s]", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	s := h.Snapshot()
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Count != 0 {
		t.Fatal("empty histogram not zero")
	}
}

// analyzeFixture builds a deterministic two-worker span set:
//
//	plan build 2ms, then worker 0 runs a 10ms shard and worker 1 runs a
//	6ms and a 4ms shard, then merge 1ms. Queue waits 1ms per shard.
func analyzeFixture() []Span {
	msec := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []Span{
		{Kind: PlanBuild, Worker: -1, Index: -1, Experiment: "e", Start: 0, Dur: msec(2)},
		{Kind: QueueWait, Worker: 0, Index: 0, Experiment: "e", Shard: "a", Start: msec(2), Dur: msec(1)},
		{Kind: QueueWait, Worker: 1, Index: 1, Experiment: "e", Shard: "b", Start: msec(2), Dur: msec(1)},
		{Kind: QueueWait, Worker: 1, Index: 2, Experiment: "e", Shard: "c", Start: msec(9), Dur: msec(1)},
		{Kind: Execute, Worker: 0, Index: 0, Experiment: "e", Shard: "a", Start: msec(3), Dur: msec(10), Bytes: 100},
		{Kind: Execute, Worker: 1, Index: 1, Experiment: "e", Shard: "b", Start: msec(3), Dur: msec(6), Bytes: 60},
		{Kind: Execute, Worker: 1, Index: 2, Experiment: "e", Shard: "c", Start: msec(10), Dur: msec(4), Bytes: 40},
		{Kind: CacheMem, Worker: -1, Index: 3, Experiment: "e", Shard: "d", Start: msec(2), Dur: 0},
		{Kind: Merge, Worker: -1, Index: -1, Experiment: "e", Start: msec(14), Dur: msec(1)},
	}
}

func TestAnalyzeCriticalPath(t *testing.T) {
	a := Analyze(analyzeFixture())
	if a.Wall != 15*time.Millisecond {
		t.Fatalf("Wall = %v, want 15ms", a.Wall)
	}
	if a.PlanBuild != 2*time.Millisecond || a.Merge != time.Millisecond {
		t.Fatalf("plan=%v merge=%v", a.PlanBuild, a.Merge)
	}
	if a.TotalExec != 20*time.Millisecond || a.TotalQueue != 3*time.Millisecond || a.CacheHits != 1 {
		t.Fatalf("exec=%v queue=%v hits=%d", a.TotalExec, a.TotalQueue, a.CacheHits)
	}
	// Critical path: 2ms plan + 10ms longest shard + 1ms merge = 13ms
	// over 23ms of total serialized work.
	if a.CriticalPath != 13*time.Millisecond {
		t.Fatalf("CriticalPath = %v, want 13ms", a.CriticalPath)
	}
	if want := 13.0 / 23.0; math.Abs(a.SerialFraction-want) > 1e-9 {
		t.Fatalf("SerialFraction = %v, want %v", a.SerialFraction, want)
	}
	if want := 23.0 / 13.0; math.Abs(a.MaxSpeedup-want) > 1e-9 {
		t.Fatalf("MaxSpeedup = %v, want %v", a.MaxSpeedup, want)
	}
	// Shards sort by descending execution time and join their queue waits.
	if len(a.Shards) != 3 || a.Shards[0].Shard != "a" || a.Shards[1].Shard != "b" || a.Shards[2].Shard != "c" {
		t.Fatalf("shard order wrong: %+v", a.Shards)
	}
	if a.Shards[0].Queue != time.Millisecond {
		t.Fatalf("queue wait not joined: %+v", a.Shards[0])
	}
	// Worker 0: 10ms busy / 15ms wall; worker 1: 10ms busy / 15ms wall.
	if len(a.Workers) != 2 || a.Workers[0].Worker != 0 || a.Workers[1].Worker != 1 {
		t.Fatalf("workers wrong: %+v", a.Workers)
	}
	for _, w := range a.Workers {
		if want := 10.0 / 15.0; math.Abs(w.Utilization-want) > 1e-9 {
			t.Fatalf("worker %d utilization = %v, want %v", w.Worker, w.Utilization, want)
		}
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if a.Wall != 0 || len(a.Shards) != 0 || a.MaxSpeedup != 0 {
		t.Fatalf("empty analysis not zero: %+v", a)
	}
	if doc := a.Doc(5); doc == nil || len(doc.Sections) != 3 {
		t.Fatalf("empty analysis doc malformed: %+v", doc)
	}
}

func TestAnalysisDocTopN(t *testing.T) {
	doc := Analyze(analyzeFixture()).Doc(2)
	text := report.Text(doc)
	if !strings.Contains(text, "shard dominance") || !strings.Contains(text, "critical path") {
		t.Fatalf("doc missing sections:\n%s", text)
	}
	if !strings.Contains(text, "showing top 2 of 3 shards") {
		t.Fatalf("doc missing truncation note:\n%s", text)
	}
	if strings.Contains(text, "\nc ") {
		t.Fatalf("doc shows shard beyond top-2:\n%s", text)
	}
	if !strings.Contains(text, "theoretical max speedup 1.77x") {
		t.Fatalf("doc missing Amdahl bound:\n%s", text)
	}
}

// The exporter must emit the object form {"traceEvents": [...]} with
// one X event per span, per-worker thread rows, and thread-name
// metadata — the shape chrome://tracing and Perfetto load.
func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, analyzeFixture()); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	spans := analyzeFixture()
	var xs, ms int
	threadNames := map[int]string{}
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "X":
			xs++
			if ev.Dur <= 0 {
				t.Fatalf("X event %q has non-positive dur %v", ev.Name, ev.Dur)
			}
		case "M":
			ms++
			threadNames[ev.TID] = ev.Args["name"].(string)
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if xs != len(spans) {
		t.Fatalf("got %d X events, want %d", xs, len(spans))
	}
	// Rows: orchestrator (tid 0) + workers 0 and 1 (tids 1, 2).
	if threadNames[0] != "orchestrator" || threadNames[1] != "worker 0" || threadNames[2] != "worker 1" {
		t.Fatalf("thread names wrong: %v", threadNames)
	}
	// The execute span of shard "a" carries its payload size.
	found := false
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" && ev.Cat == "execute" && ev.Args["shard"] == "a" {
			found = true
			if ev.Args["payload_bytes"].(float64) != 100 {
				t.Fatalf("payload_bytes wrong: %v", ev.Args)
			}
			if ev.TID != 1 {
				t.Fatalf("worker-0 span on tid %d, want 1", ev.TID)
			}
		}
	}
	if !found {
		t.Fatal("execute span for shard a not exported")
	}
}
