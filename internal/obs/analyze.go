package obs

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/report"
)

// This file turns a recorded span set into the profile the ROADMAP's
// parallelism work needs: which shards dominate wall time, how busy
// each worker was, how long the serial critical path is, and the
// Amdahl bound on what more workers could possibly buy.

// ShardProfile is one executed shard's slice of the run.
type ShardProfile struct {
	Experiment string
	Shard      string
	Worker     int
	Queue      time.Duration // enqueue→dequeue wait
	Exec       time.Duration
	Bytes      int64
}

// WorkerProfile aggregates one worker slot's activity.
type WorkerProfile struct {
	Worker      int
	Shards      int
	Busy        time.Duration
	Utilization float64 // Busy / analysis wall
}

// Analysis is the derived profile of one traced run (or several runs
// sharing a recorder).
type Analysis struct {
	Wall       time.Duration // span envelope: earliest start to latest end
	PlanBuild  time.Duration
	Merge      time.Duration
	TotalExec  time.Duration // summed shard execution
	TotalQueue time.Duration // summed queue waits
	CacheHits  int           // mem+disk lookup hits
	Shards     []ShardProfile
	Workers    []WorkerProfile

	// CriticalPath is the serial chain no worker count removes: plan
	// build + the longest single shard + merge.
	CriticalPath time.Duration
	// SerialFraction is CriticalPath over the total serialized work
	// (plan build + all shard execution + merge) — Amdahl's s.
	SerialFraction float64
	// MaxSpeedup is the Amdahl bound: total work / critical path.
	MaxSpeedup float64
	// MeanUtilization averages worker utilization over the wall.
	MeanUtilization float64
}

// Analyze derives the profile from a span snapshot. Spans from
// multiple runs accumulate into one profile; an empty snapshot yields
// a zero Analysis.
func Analyze(spans []Span) Analysis {
	var a Analysis
	if len(spans) == 0 {
		return a
	}
	var minStart, maxEnd time.Duration
	first := true
	queues := map[string]time.Duration{} // shard key -> queue wait
	workers := map[int]*WorkerProfile{}
	var maxExec time.Duration
	for _, s := range spans {
		if first || s.Start < minStart {
			minStart = s.Start
		}
		if first || s.End() > maxEnd {
			maxEnd = s.End()
		}
		first = false
		switch s.Kind {
		case PlanBuild:
			a.PlanBuild += s.Dur
		case Merge:
			a.Merge += s.Dur
		case QueueWait:
			a.TotalQueue += s.Dur
			queues[s.Experiment+"\x1f"+s.Shard] += s.Dur
		case CacheMem, CacheDisk:
			a.CacheHits++
		case Execute:
			a.TotalExec += s.Dur
			if s.Dur > maxExec {
				maxExec = s.Dur
			}
			a.Shards = append(a.Shards, ShardProfile{
				Experiment: s.Experiment,
				Shard:      s.Shard,
				Worker:     int(s.Worker),
				Exec:       s.Dur,
				Bytes:      s.Bytes,
			})
			w := workers[int(s.Worker)]
			if w == nil {
				w = &WorkerProfile{Worker: int(s.Worker)}
				workers[int(s.Worker)] = w
			}
			w.Shards++
			w.Busy += s.Dur
		}
	}
	a.Wall = maxEnd - minStart
	for i := range a.Shards {
		a.Shards[i].Queue = queues[a.Shards[i].Experiment+"\x1f"+a.Shards[i].Shard]
	}
	sort.Slice(a.Shards, func(i, j int) bool {
		if a.Shards[i].Exec != a.Shards[j].Exec {
			return a.Shards[i].Exec > a.Shards[j].Exec
		}
		return a.Shards[i].Shard < a.Shards[j].Shard
	})
	ids := make([]int, 0, len(workers))
	for id := range workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		w := workers[id]
		if a.Wall > 0 {
			w.Utilization = float64(w.Busy) / float64(a.Wall)
		}
		a.Workers = append(a.Workers, *w)
	}
	for _, w := range a.Workers {
		a.MeanUtilization += w.Utilization
	}
	if len(a.Workers) > 0 {
		a.MeanUtilization /= float64(len(a.Workers))
	}

	a.CriticalPath = a.PlanBuild + maxExec + a.Merge
	total := a.PlanBuild + a.TotalExec + a.Merge
	if total > 0 && a.CriticalPath > 0 {
		a.SerialFraction = float64(a.CriticalPath) / float64(total)
		a.MaxSpeedup = float64(total) / float64(a.CriticalPath)
	}
	return a
}

// ms renders a duration in milliseconds for profile tables.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond))
}

// Doc renders the analysis as a typed result document: the shard-
// dominance table (top n shards by execution time, with share and
// cumulative share of total execution), the per-worker utilization
// table, and the critical-path / Amdahl findings. n <= 0 keeps every
// shard.
func (a Analysis) Doc(n int) *report.Doc {
	if n <= 0 || n > len(a.Shards) {
		n = len(a.Shards)
	}
	rows := make([][]string, 0, n)
	var cum time.Duration
	for i := 0; i < n; i++ {
		sp := a.Shards[i]
		cum += sp.Exec
		share, cshare := 0.0, 0.0
		if a.TotalExec > 0 {
			share = float64(sp.Exec) / float64(a.TotalExec)
			cshare = float64(cum) / float64(a.TotalExec)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1),
			sp.Experiment,
			sp.Shard,
			fmt.Sprintf("%d", sp.Worker),
			ms(sp.Exec),
			report.Pct(share),
			report.Pct(cshare),
			ms(sp.Queue),
			fmt.Sprintf("%d", sp.Bytes),
		})
	}
	notes := []string{fmt.Sprintf("executed shards: %d  cache hits: %d  total exec: %s ms  wall: %s ms",
		len(a.Shards), a.CacheHits, ms(a.TotalExec), ms(a.Wall))}
	if n < len(a.Shards) {
		notes = append(notes, fmt.Sprintf("showing top %d of %d shards by execution time", n, len(a.Shards)))
	}
	dom := report.TableSection("shard dominance",
		[]string{"#", "experiment", "shard", "worker", "exec_ms", "share", "cum_share", "queue_ms", "bytes"},
		rows, notes...)

	wrows := make([][]string, 0, len(a.Workers))
	for _, w := range a.Workers {
		wrows = append(wrows, []string{
			fmt.Sprintf("%d", w.Worker),
			fmt.Sprintf("%d", w.Shards),
			ms(w.Busy),
			report.Pct(w.Utilization),
		})
	}
	util := report.TableSection("worker utilization",
		[]string{"worker", "shards", "busy_ms", "utilization"},
		wrows,
		fmt.Sprintf("mean utilization %s over %s ms wall", report.Pct(a.MeanUtilization), ms(a.Wall)))

	crit := report.FindingsSection("critical path",
		fmt.Sprintf("plan build %s ms + longest shard %s ms + merge %s ms = critical path %s ms",
			ms(a.PlanBuild), ms(a.CriticalPath-a.PlanBuild-a.Merge), ms(a.Merge), ms(a.CriticalPath)),
		fmt.Sprintf("serial fraction %s of %s ms total work (Amdahl)",
			report.Pct(a.SerialFraction), ms(a.PlanBuild+a.TotalExec+a.Merge)),
		fmt.Sprintf("theoretical max speedup %.2fx at unlimited workers", a.MaxSpeedup),
		fmt.Sprintf("queue wait total %s ms across executed shards", ms(a.TotalQueue)),
	)
	return report.NewDoc(dom, util, crit)
}
