// Package obs is the engine's observability layer: a low-overhead span
// recorder threaded through the shard lifecycle (queue wait, cache
// lookup split by tier, execute, merge, plan build, scatter-gather
// barrier), a Chrome trace-event exporter so a run renders as a
// per-worker timeline in chrome://tracing or Perfetto, a critical-path
// analyzer turning a span set into a shard-dominance / worker-
// utilization / Amdahl report, and fixed-bucket latency histograms for
// the serving path.
//
// The recorder is allocation-frugal and strictly zero-cost when
// disabled: a nil *Recorder is valid and every method on it is a no-op
// behind a single pointer check, so instrumented code threads one
// field and never branches on configuration. When enabled, each span
// is one fixed-size slot in a preallocated ring (older spans are
// overwritten once the ring wraps, counted in Dropped) plus a pair of
// per-kind atomic counters, so recording stays cheap enough to leave
// on for whole characterization campaigns.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies one span of the shard lifecycle.
type Kind uint8

const (
	// QueueWait is the time a shard spent between dispatch and
	// acquiring a worker slot (enqueue→dequeue).
	QueueWait Kind = iota
	// CacheMem is a shard lookup answered by the in-memory tier.
	CacheMem
	// CacheDisk is a shard lookup answered by the persistent tier.
	CacheDisk
	// CacheMiss is a shard lookup answered by neither tier.
	CacheMiss
	// Execute is a shard's Run on a worker slot.
	Execute
	// Merge is a plan's Merge assembling shard payloads into the doc.
	Merge
	// PlanBuild is the decomposition of one run into shards.
	PlanBuild
	// Barrier is a run's scatter-gather window: first dispatch to the
	// last shard resolving.
	Barrier
	// RemoteDispatch is a shard answered by a fabric peer: the full
	// wire round trip, retries included, as seen by the coordinator.
	RemoteDispatch
	// RemoteHedge is a speculative second dispatch raced against a
	// slow primary peer; its interval is the hedge's own round trip.
	RemoteHedge
	numKinds
)

var kindNames = [numKinds]string{
	"queue_wait", "cache_mem", "cache_disk", "cache_miss",
	"execute", "merge", "plan_build", "barrier",
	"remote_dispatch", "remote_hedge",
}

// String names the kind as it appears in trace categories and tables.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Span is one recorded interval. Worker is the engine worker slot that
// carried it (-1 for spans outside the pool: merges, plan builds,
// barriers, cache lookups on the dispatching goroutine). Index is the
// shard's index within its plan (-1 when not shard-scoped). Start is
// the offset from the recorder's epoch, so spans from one recorder
// share a timeline.
type Span struct {
	Kind       Kind
	Worker     int32
	Index      int32
	Start      time.Duration
	Dur        time.Duration
	Experiment string
	Shard      string
	Bytes      int64 // payload size when known (executed shards), else 0
}

// End is the span's finish offset from the recorder epoch.
func (s Span) End() time.Duration { return s.Start + s.Dur }

// DefaultRingSpans bounds the recorder when callers have no stronger
// opinion: a full `rowpress all` records well under this many spans.
const DefaultRingSpans = 1 << 16

// Recorder collects spans into a preallocated ring. A nil Recorder is
// the disabled state: Record and the accessors are no-ops. Safe for
// concurrent use.
type Recorder struct {
	epoch time.Time

	mu   sync.Mutex
	ring []Span
	next uint64 // total spans ever recorded

	counts [numKinds]atomic.Uint64
	durs   [numKinds]atomic.Int64 // summed nanoseconds per kind
}

// NewRecorder returns a recorder holding the most recent capacity
// spans (<= 0 selects DefaultRingSpans). The epoch is the call time.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRingSpans
	}
	return &Recorder{epoch: time.Now(), ring: make([]Span, 0, capacity)}
}

// Enabled reports whether spans are being recorded.
func (r *Recorder) Enabled() bool { return r != nil }

// Epoch returns the recorder's zero time.
func (r *Recorder) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// Since converts an absolute time into a recorder-epoch offset.
func (r *Recorder) Since(t time.Time) time.Duration {
	if r == nil {
		return 0
	}
	return t.Sub(r.epoch)
}

// Record stores one span. start is absolute (converted to an epoch
// offset); worker/index follow the Span conventions. No-op on nil.
func (r *Recorder) Record(kind Kind, worker, index int, experiment, shard string, start time.Time, dur time.Duration, bytes int64) {
	if r == nil {
		return
	}
	r.counts[kind].Add(1)
	r.durs[kind].Add(int64(dur))
	s := Span{
		Kind:       kind,
		Worker:     int32(worker),
		Index:      int32(index),
		Start:      start.Sub(r.epoch),
		Dur:        dur,
		Experiment: experiment,
		Shard:      shard,
		Bytes:      bytes,
	}
	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, s)
	} else {
		r.ring[r.next%uint64(cap(r.ring))] = s
	}
	r.next++
	r.mu.Unlock()
}

// Snapshot returns the retained spans oldest-first. Nil on a nil or
// empty recorder.
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.ring))
	if r.next <= uint64(cap(r.ring)) {
		copy(out, r.ring)
		return out
	}
	// The ring wrapped: the oldest surviving span sits at the next
	// overwrite position.
	head := int(r.next % uint64(cap(r.ring)))
	n := copy(out, r.ring[head:])
	copy(out[n:], r.ring[:head])
	return out
}

// Dropped reports how many spans the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next <= uint64(cap(r.ring)) {
		return 0
	}
	return r.next - uint64(cap(r.ring))
}

// KindStats is the aggregate view of one span kind.
type KindStats struct {
	Count uint64
	Total time.Duration
}

// Stats returns the per-kind aggregate counters (atomic, so usable
// while recording continues).
func (r *Recorder) Stats() map[string]KindStats {
	if r == nil {
		return nil
	}
	out := make(map[string]KindStats, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		out[k.String()] = KindStats{
			Count: r.counts[k].Load(),
			Total: time.Duration(r.durs[k].Load()),
		}
	}
	return out
}
