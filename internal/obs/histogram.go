package obs

import (
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket, log-spaced latency histogram with
// lock-free observation: each Observe is two atomic adds and one
// atomic increment, so serving-path middleware can record every
// request. Bucket bounds are fixed at construction; the layout maps
// directly onto Prometheus's cumulative-bucket text exposition.
type Histogram struct {
	bounds []time.Duration // upper bounds, ascending; counts has one extra overflow slot
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// NewHistogram builds a histogram over the given ascending upper
// bounds plus an implicit overflow bucket.
func NewHistogram(bounds []time.Duration) *Histogram {
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	return h
}

// NewLatencyHistogram returns the serving-path default: 20 log-spaced
// buckets doubling from 100µs to ~52s, covering a warm cache hit
// (~0.5ms) through a full-scale cold characterization run.
func NewLatencyHistogram() *Histogram {
	bounds := make([]time.Duration, 20)
	b := 100 * time.Microsecond
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return NewHistogram(bounds)
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		m := h.max.Load()
		if int64(d) <= m || h.max.CompareAndSwap(m, int64(d)) {
			break
		}
	}
}

// HistogramSnapshot is a consistent-enough copy for rendering: counts
// are loaded bucket by bucket while observation continues, so totals
// can trail by in-flight observations — fine for monitoring.
type HistogramSnapshot struct {
	Bounds []time.Duration
	Counts []uint64 // len(Bounds)+1, last = overflow
	Count  uint64
	Sum    time.Duration
	Max    time.Duration
}

// Snapshot copies the counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    time.Duration(h.sum.Load()),
		Max:    time.Duration(h.max.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile estimates the q-quantile (0 < q < 1) by linear
// interpolation within the containing bucket. Returns 0 with no
// observations; observations in the overflow bucket resolve to the
// recorded maximum.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		next := cum + float64(c)
		if rank <= next || i == len(s.Counts)-1 {
			if c == 0 {
				cum = next
				continue
			}
			lo := time.Duration(0)
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Max
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum = next
	}
	return s.Max
}

// Sub returns the window between two snapshots of the same histogram:
// per-bucket counts, total, and sum subtracted, so quantiles of the
// result describe only the observations that arrived between prev and
// s. Mismatched layouts (different bucket bounds) return a zero
// snapshot. Max is carried from the later snapshot — a windowed
// maximum is not recoverable from cumulative buckets, so it is an
// upper bound. The serving-path load-test harness uses this to put
// server-reported quantiles next to client-observed ones for the same
// request window.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	if len(s.Bounds) != len(prev.Bounds) || len(s.Counts) != len(prev.Counts) {
		return HistogramSnapshot{}
	}
	out := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
		Max:    s.Max,
	}
	for i := range s.Counts {
		if s.Counts[i] >= prev.Counts[i] {
			out.Counts[i] = s.Counts[i] - prev.Counts[i]
		}
		out.Count += out.Counts[i]
	}
	if s.Sum >= prev.Sum {
		out.Sum = s.Sum - prev.Sum
	}
	return out
}

// Mean returns the average observation, or 0 with none.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}
