package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// This file exports recorded spans in the Chrome trace-event format —
// the JSON object form ({"traceEvents": [...]}) that chrome://tracing
// and Perfetto both load. Each engine worker renders as its own
// thread row, so a cold run shows up as a per-worker timeline with
// queue waits and cache lookups nested around the execute blocks.

// traceEvent is one Chrome trace-event entry. Timestamps and
// durations are microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the object form of the trace format.
type traceFile struct {
	TraceEvents []traceEvent   `json:"traceEvents"`
	Metadata    map[string]any `json:"metadata,omitempty"`
}

// orchestratorTID is the thread row for spans that run outside the
// worker pool (plan build, merge, barrier, cache lookups on the
// dispatching goroutine). Worker w maps to row w+1.
const orchestratorTID = 0

func spanTID(s Span) int {
	if s.Worker < 0 {
		return orchestratorTID
	}
	return int(s.Worker) + 1
}

func spanName(s Span) string {
	if s.Shard == "" {
		return fmt.Sprintf("%s %s", s.Kind, s.Experiment)
	}
	return fmt.Sprintf("%s %s/%s", s.Kind, s.Experiment, s.Shard)
}

// WriteChromeTrace renders the spans as a Chrome trace. Thread-name
// metadata events label the orchestrator and every worker row, and
// each span carries its shard key, kind, and payload size in args.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	tf := traceFile{Metadata: map[string]any{"tool": "rowpress -trace"}}
	tids := map[int]bool{}
	for _, s := range spans {
		ev := traceEvent{
			Name: spanName(s),
			Cat:  s.Kind.String(),
			Ph:   "X",
			TS:   float64(s.Start.Microseconds()),
			Dur:  micros(s),
			PID:  1,
			TID:  spanTID(s),
			Args: map[string]any{"experiment": s.Experiment},
		}
		if s.Shard != "" {
			ev.Args["shard"] = s.Shard
		}
		if s.Index >= 0 {
			ev.Args["index"] = s.Index
		}
		if s.Bytes > 0 {
			ev.Args["payload_bytes"] = s.Bytes
		}
		tf.TraceEvents = append(tf.TraceEvents, ev)
		tids[ev.TID] = true
	}
	ids := make([]int, 0, len(tids))
	for tid := range tids {
		ids = append(ids, tid)
	}
	sort.Ints(ids)
	for _, tid := range ids {
		name := "orchestrator"
		if tid > orchestratorTID {
			name = fmt.Sprintf("worker %d", tid-1)
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": name},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(tf)
}

// micros renders a span duration in microseconds, clamped up to a
// visible sliver so zero-length spans still draw.
func micros(s Span) float64 {
	us := float64(s.Dur.Nanoseconds()) / 1e3
	if us < 0.1 {
		us = 0.1
	}
	return us
}
