package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags iteration over maps whose loop body can leak Go's
// randomized map order into deterministic output — the bug class
// behind the PR 4 Module.Refresh fix, where restoring touched rows in
// map order produced different neighbor-coupling results run to run.
//
// A map range is accepted without a suppression only when its body is
// provably order-insensitive:
//
//   - collect-then-sort: the body only appends to local slices, and
//     every such slice is sorted (sort.* / slices.Sort*) later in the
//     same function before use;
//   - map-to-map: the body only writes map entries or deletes keys —
//     insertion order does not affect a map's contents;
//   - integer accumulation: the body only accumulates into integer
//     lvalues with commutative ops (+=, ++, |=, &=, ^=). Floating-
//     point accumulation stays flagged: float addition is not
//     associative, so summing in map order is not bit-deterministic,
//     and the repo's contract is byte-identical reports.
//
// Conditionals and nested blocks are allowed as long as every leaf
// statement falls in those classes and no condition calls functions.
// Anything else — building report rows, applying flips, merging shard
// state, calling out — needs sorted keys or a reasoned suppression.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "map iteration feeding order-sensitive work without sorted keys",
	Run:  runMapRange,
}

func runMapRange(pass *Pass) {
	pkg := pass.Pkgs[0]
	info := pkg.Info
	inspectFuncs(pkg, func(decl *ast.FuncDecl) {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			c := &rangeClassifier{info: info}
			if !c.orderInsensitive(rs.Body) {
				pass.Reportf(rs.For, "iterating a map (%s) in nondeterministic order; sort the keys first, or suppress with a reason if order cannot reach any output", types.TypeString(t, types.RelativeTo(pkg.Pkg)))
				return true
			}
			// Collect-only bodies are safe exactly when every collected
			// slice is sorted before the function uses it.
			for _, v := range c.appended {
				if !sortedAfter(info, decl.Body, rs.End(), v) {
					pass.Reportf(rs.For, "map keys collected into %s are never sorted in this function; sort before use or suppress with a reason", v.Name())
				}
			}
			return true
		})
	})
}

// rangeClassifier decides whether a loop body is structurally
// order-insensitive, collecting the local slices it appends to.
type rangeClassifier struct {
	info     *types.Info
	appended []*types.Var
}

// orderInsensitive reports whether every leaf statement of the body is
// an allowed order-insensitive form.
func (c *rangeClassifier) orderInsensitive(body *ast.BlockStmt) bool {
	for _, st := range body.List {
		if !c.stmtOK(st) {
			return false
		}
	}
	return true
}

func (c *rangeClassifier) stmtOK(st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.BlockStmt:
		return c.orderInsensitive(s)
	case *ast.IfStmt:
		if s.Init != nil && !c.stmtOK(s.Init) {
			return false
		}
		if hasCall(c.info, s.Cond) {
			return false
		}
		if !c.orderInsensitive(s.Body) {
			return false
		}
		return s.Else == nil || c.stmtOK(s.Else)
	case *ast.BranchStmt:
		// continue/break never leak order on their own.
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK
	case *ast.IncDecStmt:
		return c.intLvalue(s.X) || c.mapIndexLvalue(s.X)
	case *ast.AssignStmt:
		return c.assignOK(s)
	case *ast.ExprStmt:
		// Only delete(m, k) is allowed as a bare call.
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := c.info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
				return true
			}
		}
		return false
	case *ast.DeclStmt:
		// Local declarations are inert; their initializers must be
		// call-free like any other RHS.
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					if hasCall(c.info, v) {
						return false
					}
				}
			}
		}
		return true
	default:
		return false
	}
}

// assignOK accepts the three order-insensitive assignment shapes:
// append-to-local-slice (recorded for the sort check), writes into map
// entries, and commutative integer accumulation.
func (c *rangeClassifier) assignOK(s *ast.AssignStmt) bool {
	// x = append(x, ...) with matching, local, addressable target.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 && (s.Tok == token.ASSIGN || s.Tok == token.DEFINE) {
		if v := appendTarget(c.info, s.Lhs[0], s.Rhs[0]); v != nil {
			c.appended = append(c.appended, v)
			return true
		}
	}
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			if !c.mapIndexLvalue(l) {
				return false
			}
		}
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		if !c.intLvalue(s.Lhs[0]) && !c.mapIndexLvalue(s.Lhs[0]) {
			return false
		}
	default:
		return false
	}
	for _, r := range s.Rhs {
		if hasCall(c.info, r) {
			return false
		}
	}
	return true
}

// mapIndexLvalue reports whether e is m[k] for map-typed m — writing
// entries of another map is insertion-order independent. Integer
// accumulation into a map entry (counts[k] += v) also routes here.
func (c *rangeClassifier) mapIndexLvalue(e ast.Expr) bool {
	ix, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := c.info.TypeOf(ix.X)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// intLvalue reports whether e has integer type; commutative integer
// accumulation is order-insensitive where float accumulation is not.
func (c *rangeClassifier) intLvalue(e ast.Expr) bool {
	t := c.info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// appendTarget matches `v = append(v, ...)` and returns v's object.
func appendTarget(info *types.Info, lhs, rhs ast.Expr) *types.Var {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	if len(call.Args) < 1 {
		return nil
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok || arg0.Name != id.Name {
		return nil
	}
	var obj types.Object
	if def := info.Defs[id]; def != nil {
		obj = def
	} else {
		obj = info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	// Appending the values themselves (not sortable keys) is still
	// fine — the sort requirement applies to whatever was collected.
	return v
}

// hasCall reports whether the expression contains any call that is not
// a type conversion — calls can observe iteration order (logging,
// appending to shared state) so RHS expressions must be call-free.
func hasCall(info *types.Info, e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion, not a call
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "len", "cap", "min", "max", "abs":
					return true
				}
			}
		}
		found = true
		return false
	})
	return found
}

// sortedAfter reports whether v is passed to a recognized sorting
// function somewhere in body after pos — the second half of the
// collect-then-sort idiom.
func sortedAfter(info *types.Info, body *ast.BlockStmt, pos token.Pos, v *types.Var) bool {
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted || n == nil || n.End() < pos {
			return !sorted
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch pkgNameOf(info, sel) {
		case "sort":
			switch sel.Sel.Name {
			case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			default:
				return true
			}
		case "slices":
			switch sel.Sel.Name {
			case "Sort", "SortFunc", "SortStableFunc":
			default:
				return true
			}
		default:
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok && info.Uses[id] == v {
			sorted = true
		}
		return true
	})
	return sorted
}
