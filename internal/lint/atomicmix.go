package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicMix flags struct fields that are accessed through sync/atomic
// functions at one site and by plain load/store at another. A field
// either belongs to the atomic domain or it does not: mixing the two
// is a data race the race detector only catches when both sites
// actually interleave under -race, while the analyzer catches the
// pattern on any tree. The hand-rolled counters in obs and the
// engine's LatencyStats accumulators are exactly the kind of code this
// guards; they use typed atomics (atomic.Uint64 etc.), which make
// plain access impossible by construction and are therefore ignored
// here — the check targets the legacy atomic.AddUint64(&s.f, ...)
// style where nothing stops a bare s.f from creeping in.
//
// Plain accesses inside functions named New* are exempt: initializing
// a field before the value escapes to other goroutines is the standard
// constructor pattern and not a race.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "struct fields accessed both atomically (sync/atomic) and by plain load/store",
	Run:  runAtomicMix,
}

// fieldAccess records where and how a field was touched.
type fieldAccess struct {
	pos      token.Pos
	atomicOp string // sync/atomic function name for atomic accesses
}

func runAtomicMix(pass *Pass) {
	pkg := pass.Pkgs[0]
	info := pkg.Info

	atomicSites := map[*types.Var][]fieldAccess{}
	plainSites := map[*types.Var][]fieldAccess{}
	// Selector expressions consumed as &f arguments of sync/atomic
	// calls, so the plain-access walk can skip them.
	atomicArgs := map[*ast.SelectorExpr]bool{}

	inspectFuncs(pkg, func(decl *ast.FuncDecl) {
		constructor := strings.HasPrefix(decl.Name.Name, "New") || strings.HasPrefix(decl.Name.Name, "new")
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || pkgNameOf(info, fun) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				f := fieldOf(info, sel)
				if f == nil {
					continue
				}
				atomicArgs[sel] = true
				atomicSites[f] = append(atomicSites[f], fieldAccess{pos: sel.Pos(), atomicOp: fun.Sel.Name})
			}
			return true
		})
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicArgs[sel] || constructor {
				return true
			}
			f := fieldOf(info, sel)
			if f == nil {
				return true
			}
			plainSites[f] = append(plainSites[f], fieldAccess{pos: sel.Pos()})
			return true
		})
	})

	fields := make([]*types.Var, 0, len(atomicSites))
	for f := range atomicSites {
		if len(plainSites[f]) > 0 {
			fields = append(fields, f)
		}
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	for _, f := range fields {
		op := atomicSites[f][0].atomicOp
		plains := plainSites[f]
		sort.Slice(plains, func(i, j int) bool { return plains[i].pos < plains[j].pos })
		for _, p := range plains {
			pass.Reportf(p.pos, "field %s is accessed with atomic.%s elsewhere but read/written directly here; every access to an atomic field must go through sync/atomic (or switch the field to atomic.%s)", fieldName(f), op, typedAtomicFor(f))
		}
	}
}

// fieldOf resolves a selector to the struct field it addresses, or nil
// when the selector is not a field access.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// fieldName renders Type.field for diagnostics.
func fieldName(f *types.Var) string {
	name := f.Name()
	if named, ok := fieldOwner(f); ok {
		return named + "." + name
	}
	return name
}

// fieldOwner finds the struct type name declaring f, best-effort.
func fieldOwner(f *types.Var) (string, bool) {
	pkg := f.Pkg()
	if pkg == nil {
		return "", false
	}
	for _, name := range pkg.Scope().Names() {
		tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == f {
				return tn.Name(), true
			}
		}
	}
	return "", false
}

// typedAtomicFor suggests the sync/atomic wrapper type matching the
// field's width.
func typedAtomicFor(f *types.Var) string {
	b, ok := f.Type().Underlying().(*types.Basic)
	if !ok {
		return "Value"
	}
	switch b.Kind() {
	case types.Uint64, types.Uintptr:
		return "Uint64"
	case types.Int64:
		return "Int64"
	case types.Uint32:
		return "Uint32"
	case types.Int32:
		return "Int32"
	case types.Bool:
		return "Bool"
	default:
		return "Value"
	}
}
