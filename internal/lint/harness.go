package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// This file is the fixture-test harness: testdata packages annotate
// offending lines with analysistest-style expectation comments,
//
//	m := map[int]int{}           // no comment: no finding expected
//	for k := range m { use(k) }  // want "map iteration"
//
// and CheckFixture runs the full pipeline (analyzers + suppression
// handling) over the package, failing on any unmatched expectation or
// unexpected finding. Each `// want` takes one or more Go-quoted
// regular expressions, each matched against "analyzer: message" of a
// distinct active diagnostic on that line.

// wantMarker introduces an expectation clause inside a comment.
const wantMarker = "// want "

// expectation is one parsed want clause.
type expectation struct {
	file     string
	line     int
	patterns []*regexp.Regexp
	matched  []bool
}

// FixtureDir resolves the conventional fixture location for a named
// case: testdata/<analyzer>/<case> under the lint package.
func FixtureDir(elem ...string) string {
	return filepath.Join(append([]string{"testdata"}, elem...)...)
}

// CheckFixture loads the package rooted at dir, runs the given
// analyzers through the standard pipeline, and verifies the findings
// against the package's `// want` comments. It returns a list of
// mismatch descriptions — empty means the fixture passed — plus any
// load error. Test wrappers turn mismatches into t.Errorf calls.
func CheckFixture(dir string, analyzers ...*Analyzer) ([]string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	prog, err := Load(abs, []string{abs})
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, pkg := range prog.Pkgs {
		for _, terr := range pkg.Errors {
			problems = append(problems, fmt.Sprintf("type error: %v", terr))
		}
	}
	wants, err := collectWants(prog)
	if err != nil {
		return nil, err
	}
	diags := Active(Run(prog, analyzers))

	for _, d := range diags {
		got := d.Analyzer + ": " + d.Message
		if !matchWant(wants, d, got) {
			problems = append(problems, fmt.Sprintf("%s:%d: unexpected finding: %s", d.File, d.Line, got))
		}
	}
	for _, w := range wants {
		for i, re := range w.patterns {
			if !w.matched[i] {
				problems = append(problems, fmt.Sprintf("%s:%d: expected finding matching %q, got none", w.file, w.line, re))
			}
		}
	}
	return problems, nil
}

// matchWant consumes one unmatched pattern covering the diagnostic.
func matchWant(wants []*expectation, d Diagnostic, got string) bool {
	for _, w := range wants {
		if w.file != d.File || w.line != d.Line {
			continue
		}
		for i, re := range w.patterns {
			if !w.matched[i] && re.MatchString(got) {
				w.matched[i] = true
				return true
			}
		}
	}
	return false
}

// collectWants parses every `// want "re" ["re" ...]` comment.
func collectWants(prog *Program) ([]*expectation, error) {
	var out []*expectation
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					// The marker may open the comment or trail other
					// text — suppression-directive fixtures annotate the
					// directive comment itself (`//lint:ignore ... // want ...`),
					// since a line comment swallows the rest of the line.
					idx := strings.Index(c.Text, wantMarker)
					if idx < 0 {
						continue
					}
					text := c.Text[idx+len(wantMarker):]
					pos := prog.Fset.Position(c.Pos())
					w := &expectation{file: pos.Filename, line: pos.Line}
					for rest := strings.TrimSpace(text); rest != ""; rest = strings.TrimSpace(rest) {
						if rest[0] != '"' {
							return nil, fmt.Errorf("%s:%d: want clause needs quoted regexps, got %q", pos.Filename, pos.Line, rest)
						}
						end := 1
						for end < len(rest) && (rest[end] != '"' || rest[end-1] == '\\') {
							end++
						}
						if end == len(rest) {
							return nil, fmt.Errorf("%s:%d: unterminated want pattern", pos.Filename, pos.Line)
						}
						lit, err := strconv.Unquote(rest[:end+1])
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, rest[:end+1], err)
						}
						re, err := regexp.Compile(lit)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
						}
						w.patterns = append(w.patterns, re)
						rest = rest[end+1:]
					}
					if len(w.patterns) == 0 {
						return nil, fmt.Errorf("%s:%d: empty want clause", pos.Filename, pos.Line)
					}
					w.matched = make([]bool, len(w.patterns))
					out = append(out, w)
				}
			}
		}
	}
	return out, nil
}
