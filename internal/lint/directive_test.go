package lint

import (
	"go/ast"
	"go/token"
	"testing"
)

const testFile = "test.go"

// parseText parses a single comment as if it opened a file, so the
// resulting directive (when recognized) is own-line.
func parseText(t *testing.T, text string) *directive {
	t.Helper()
	fset := token.NewFileSet()
	f := fset.AddFile(testFile, -1, len(text)+1)
	f.SetLinesForContent([]byte(text))
	prog := &Program{Fset: fset}
	pkg := &Package{Src: map[string][]byte{testFile: []byte(text)}}
	return parseDirective(prog, pkg, &ast.Comment{Slash: f.Pos(0), Text: text})
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text     string
		skip     bool // not recognized as ours at all
		analyzer string
		reason   string
	}{
		{text: "// a normal comment", skip: true},
		{text: "//lint:ignoreXXX not the directive", skip: true},
		// Foreign tools' qualified directives pass through untouched.
		{text: "//lint:ignore staticcheck/SA1019 deprecated on purpose", skip: true},
		{text: "//lint:ignore rowpressvet/maprange keys feed a set", analyzer: "rowpressvet/maprange", reason: "keys feed a set"},
		// A nested // (the fixture want marker) ends the directive.
		{text: "//lint:ignore rowpressvet/maprange // want \"x\"", analyzer: "rowpressvet/maprange", reason: ""},
		// Bare names are ours to reject, so typos don't silently
		// disable suppression — collected, flagged later as unqualified.
		{text: "//lint:ignore maprange reason here", analyzer: "maprange", reason: "reason here"},
	}
	for _, c := range cases {
		d := parseText(t, c.text)
		if c.skip {
			if d != nil {
				t.Errorf("%q: parsed %+v, want nil", c.text, d)
			}
			continue
		}
		if d == nil {
			t.Errorf("%q: not recognized as a directive", c.text)
			continue
		}
		if d.analyzer != c.analyzer || d.reason != c.reason {
			t.Errorf("%q: got analyzer=%q reason=%q, want analyzer=%q reason=%q",
				c.text, d.analyzer, d.reason, c.analyzer, c.reason)
		}
		if !d.ownLine {
			t.Errorf("%q: comment at file start should be own-line", c.text)
		}
	}
}

func TestAloneOnLine(t *testing.T) {
	src := []byte("x := 1 //lint:ignore a b\n\t//lint:ignore c d\n")
	trailing := 7 // offset of the first directive, after "x := 1 "
	ownLine := 26 // offset of the second, after the newline and tab
	if aloneOnLine(src, trailing) {
		t.Errorf("trailing directive classified as own-line")
	}
	if !aloneOnLine(src, ownLine) {
		t.Errorf("own-line directive classified as trailing")
	}
}
