// Package lint is rowpressvet's analysis framework: a stdlib-only
// (go/parser + go/ast + go/types) static-analysis suite encoding the
// repository's determinism and concurrency contracts. The repo's core
// invariant — every experiment report is byte-identical at any worker
// count, any cache state, any replay path — is enforced dynamically by
// the golden suite, but golden tests only catch hazards on inputs they
// run; the analyzers here catch whole bug classes (unsorted map
// iteration feeding reports, wall-clock reads in deterministic compute,
// unseeded randomness, unregistered gob payloads, mixed atomic/plain
// field access) at vet time.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis in
// miniature — Analyzer, Pass, Diagnostic, a testdata harness driven by
// `// want "regexp"` comments — but depends only on the standard
// library, because the module carries zero external dependencies and
// must stay that way.
//
// Findings are suppressed line by line with
//
//	//lint:ignore rowpressvet/<analyzer> <reason>
//
// either trailing the offending line or alone on the line above it.
// The reason is mandatory: a reason-less directive is itself a finding,
// as is a stale directive that no longer matches any diagnostic.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// An Analyzer is one named check over loaded packages.
type Analyzer struct {
	// Name is the analyzer's identifier as it appears in diagnostics
	// and suppression directives (rowpressvet/<Name>).
	Name string
	// Doc is a one-line description, shown by rowpressvet -list.
	Doc string
	// Module marks a whole-program analyzer: its Run receives every
	// loaded package in one pass (gobreg correlates registrations and
	// payload producers across packages). Per-package analyzers run
	// once per package.
	Module bool
	// Run performs the analysis, reporting findings through the pass.
	Run func(*Pass)
}

// A Pass carries one analyzer invocation over one package (or, for
// Module analyzers, over every loaded package).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Pkgs holds the packages under analysis: exactly one for
	// per-package analyzers, all loaded packages for Module analyzers.
	Pkgs []*Package

	diags *[]Diagnostic
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned and attributed to its
// analyzer. Suppressed diagnostics are retained (rowpressvet -json
// emits them with "suppressed": true) so suppression density stays
// observable.
type Diagnostic struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	// Reason is the suppression's justification when Suppressed.
	Reason string `json:"reason,omitempty"`
}

// String renders the diagnostic in the canonical file:line: analyzer:
// message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.File, d.Line, d.Analyzer, d.Message)
}

// Analyzers returns the full rowpressvet suite, sorted by name.
func Analyzers() []*Analyzer {
	out := []*Analyzer{
		AtomicMix,
		GobReg,
		MapRange,
		RNGSource,
		WallClock,
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName resolves one analyzer from the suite.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Run executes the analyzers over the loaded program, applies
// suppression directives, and returns every diagnostic — suppressed
// ones included — sorted by position then analyzer. Directive misuse
// (missing reason, unknown analyzer, stale suppression) surfaces as
// diagnostics from the reserved "ignore" analyzer, which cannot itself
// be suppressed.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Module {
			a.Run(&Pass{Analyzer: a, Fset: prog.Fset, Pkgs: prog.Pkgs, diags: &diags})
			continue
		}
		for _, pkg := range prog.Pkgs {
			a.Run(&Pass{Analyzer: a, Fset: prog.Fset, Pkgs: []*Package{pkg}, diags: &diags})
		}
	}
	diags = applySuppressions(prog, analyzers, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// Active filters diags down to the findings that should fail a run:
// everything not suppressed by a reasoned directive.
func Active(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}
