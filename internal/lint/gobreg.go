package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// GobReg is the whole-program payload-registration check. Shard
// payloads cross the engine as `any`; the persistent disk tier
// gob-encodes them, and gob requires every concrete type carried in an
// interface to be registered (engine.RegisterPayloadType, called from
// internal/core/payloads.go). A payload type that is produced by some
// plan but never registered does not fail loudly — the disk tier
// counts an encode skip and that experiment silently degrades to
// memory-only caching, which a warm-start test only catches for the
// experiments it happens to run.
//
// The analyzer therefore computes, across all loaded packages:
//
//   - the registered set: the static types of arguments to any
//     function named RegisterPayloadType;
//   - the produced set: for every composite literal of a struct type
//     named Shard whose Run field is a function literal, the static
//     type of the value returned as the payload. When that type is (or
//     flows through) a generic type parameter — the typedShards/
//     registerKeyed/registerPerModule builder chain — instantiation
//     type arguments are propagated to a fixpoint, so the concrete
//     payload type of each registration call site is recovered.
//
// Every produced concrete type missing from the registered set is one
// finding, reported at the production site that fixed the type.
var GobReg = &Analyzer{
	Name:   "gobreg",
	Doc:    "shard payload types missing gob registration (disk tier degrades silently)",
	Module: true,
	Run:    runGobReg,
}

// payloadSource is one site whose payload type is fixed (concrete).
type payloadSource struct {
	typ types.Type
	pos token.Pos
}

func runGobReg(pass *Pass) {
	registered := map[string]bool{}
	anyRegistration := false

	// payloadParams maps a generic function to the indices of its type
	// parameters that flow into a shard payload.
	payloadParams := map[*types.Func]map[int]bool{}
	var produced []payloadSource

	// Pass 1: registered types, and direct (non-generic) payload
	// producers plus the seed set of generic payload parameters.
	for _, pkg := range pass.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isRegisterPayloadCall(info, call) {
					anyRegistration = true
					if t := info.TypeOf(call.Args[0]); t != nil {
						registered[typeKey(t)] = true
					}
					return true
				}
				lit, fn := shardRunLiteral(info, n)
				if lit == nil {
					return true
				}
				for _, t := range payloadReturnTypes(info, fn) {
					switch owner, idx := typeParamOwner(t); {
					case owner != nil:
						if payloadParams[owner] == nil {
							payloadParams[owner] = map[int]bool{}
						}
						payloadParams[owner][idx] = true
					case !containsTypeParam(t) && !isInterface(t):
						produced = append(produced, payloadSource{typ: t, pos: fn.Pos()})
					}
				}
				return true
			})
		}
	}

	// Nothing registers payloads in the loaded set: the check has no
	// anchor (e.g. linting a subtree without core), so stay silent
	// rather than flagging every producer.
	if !anyRegistration {
		return
	}

	// Pass 2: propagate type arguments through generic instantiations
	// to a fixpoint, then harvest concrete payload types.
	type instSite struct {
		fn   *types.Func
		args *types.TypeList
		pos  token.Pos
	}
	var insts []instSite
	for _, pkg := range pass.Pkgs {
		info := pkg.Info
		ids := make([]*ast.Ident, 0, len(info.Instances))
		for id := range info.Instances {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i].Pos() < ids[j].Pos() })
		for _, id := range ids {
			fn, ok := info.Uses[id].(*types.Func)
			if !ok {
				continue
			}
			insts = append(insts, instSite{fn: fn, args: info.Instances[id].TypeArgs, pos: id.Pos()})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, in := range insts {
			idxs := payloadParams[in.fn]
			if idxs == nil {
				continue
			}
			for _, idx := range sortedInts(idxs) {
				if idx >= in.args.Len() {
					continue
				}
				arg := in.args.At(idx)
				if owner, oidx := typeParamOwner(arg); owner != nil {
					if payloadParams[owner] == nil {
						payloadParams[owner] = map[int]bool{}
					}
					if !payloadParams[owner][oidx] {
						payloadParams[owner][oidx] = true
						changed = true
					}
				}
			}
		}
	}
	for _, in := range insts {
		idxs := payloadParams[in.fn]
		if idxs == nil {
			continue
		}
		for _, idx := range sortedInts(idxs) {
			if idx >= in.args.Len() {
				continue
			}
			arg := in.args.At(idx)
			if containsTypeParam(arg) || isInterface(arg) {
				continue
			}
			produced = append(produced, payloadSource{typ: arg, pos: in.pos})
		}
	}

	// One finding per unregistered type, at its earliest producer.
	first := map[string]payloadSource{}
	for _, p := range produced {
		k := typeKey(p.typ)
		if registered[k] {
			continue
		}
		if prev, ok := first[k]; !ok || p.pos < prev.pos {
			first[k] = p
		}
	}
	keys := make([]string, 0, len(first))
	for k := range first {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p := first[k]
		pass.Reportf(p.pos, "shard payload type %s is not registered with RegisterPayloadType; the disk cache tier will silently skip it (permanent warm-start misses)", k)
	}
}

// sortedInts returns the set's members in ascending order, so the
// fixpoint and harvest loops visit parameter indices deterministically
// (this analyzer is itself subject to the maprange contract).
func sortedInts(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// typeKey canonicalizes a type for cross-universe comparison: packages
// loaded from source and from export data yield distinct *types.Named
// pointers, but identical fully-qualified strings.
func typeKey(t types.Type) string { return types.TypeString(t, nil) }

// isRegisterPayloadCall matches a call to any function named
// RegisterPayloadType with at least one argument.
func isRegisterPayloadCall(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return false
	}
	return name == "RegisterPayloadType"
}

// shardRunLiteral matches a composite literal of a struct type named
// "Shard" whose Run field is a function literal, returning the
// literal and that function.
func shardRunLiteral(info *types.Info, n ast.Node) (*ast.CompositeLit, *ast.FuncLit) {
	lit, ok := n.(*ast.CompositeLit)
	if !ok {
		return nil, nil
	}
	t := info.TypeOf(lit)
	if t == nil {
		return nil, nil
	}
	named, ok := deref(t).(*types.Named)
	if !ok || named.Obj().Name() != "Shard" {
		return nil, nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil, nil
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Run" {
			continue
		}
		if fn, ok := kv.Value.(*ast.FuncLit); ok {
			return lit, fn
		}
	}
	return nil, nil
}

// payloadReturnTypes collects the static type of the first returned
// value of each return statement in the Run literal. A bare
// `return f(...)` forwarding a two-result call yields f's first result
// type — this is how typedShards' `return work(i)` resolves to the
// builder's type parameter.
func payloadReturnTypes(info *types.Info, fn *ast.FuncLit) []types.Type {
	var out []types.Type
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != fn {
			return false // nested literals have their own returns
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 0 {
			return true
		}
		t := info.TypeOf(ret.Results[0])
		if t == nil {
			return true
		}
		if len(ret.Results) == 1 {
			// return f(...) forwarding (T, error): unpack the tuple.
			if tup, ok := t.(*types.Tuple); ok {
				if tup.Len() == 0 {
					return true
				}
				t = tup.At(0).Type()
			}
		}
		out = append(out, t)
		return true
	})
	return out
}

// typeParamOwner returns, when t is exactly a type parameter of a
// generic function, that function and the parameter's index; nil
// otherwise. go/types does not expose the owner directly, so the
// parameter's declaring scope is walked up to the package scope and
// the package's functions are scanned for the one declaring tp.
func typeParamOwner(t types.Type) (*types.Func, int) {
	tp, ok := t.(*types.TypeParam)
	if !ok {
		return nil, 0
	}
	scope := tp.Obj().Parent()
	if scope == nil {
		return nil, 0
	}
	pkgScope := scope
	for pkgScope.Parent() != nil && pkgScope.Parent() != types.Universe {
		pkgScope = pkgScope.Parent()
	}
	for _, name := range pkgScope.Names() {
		fn, ok := pkgScope.Lookup(name).(*types.Func)
		if !ok {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		tps := sig.TypeParams()
		for i := 0; i < tps.Len(); i++ {
			if tps.At(i) == tp {
				return fn, i
			}
		}
	}
	return nil, 0
}

// containsTypeParam reports whether t mentions any type parameter.
func containsTypeParam(t types.Type) bool {
	switch u := t.(type) {
	case *types.TypeParam:
		return true
	case *types.Pointer:
		return containsTypeParam(u.Elem())
	case *types.Slice:
		return containsTypeParam(u.Elem())
	case *types.Array:
		return containsTypeParam(u.Elem())
	case *types.Map:
		return containsTypeParam(u.Key()) || containsTypeParam(u.Elem())
	case *types.Chan:
		return containsTypeParam(u.Elem())
	case *types.Named:
		for i := 0; i < u.TypeArgs().Len(); i++ {
			if containsTypeParam(u.TypeArgs().At(i)) {
				return true
			}
		}
	}
	return false
}

// isInterface reports whether t's underlying type is an interface —
// an `any` payload cannot be audited statically and is skipped.
func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// deref unwraps one pointer level.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
