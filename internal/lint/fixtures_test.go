package lint_test

import (
	"testing"

	"repro/internal/lint"
)

// checkFixture runs analyzers over a testdata package and fails the
// test on any unmatched `// want` expectation or unexpected finding.
func checkFixture(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	problems, err := lint.CheckFixture(dir, analyzers...)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestMapRangeFixture(t *testing.T) {
	checkFixture(t, lint.FixtureDir("maprange", "a"), lint.MapRange)
}

func TestWallClockFixture(t *testing.T) {
	checkFixture(t, lint.FixtureDir("wallclock", "det"), lint.WallClock)
}

// The obs path element exempts a package wholesale: the same calls that
// are findings in det produce none here.
func TestWallClockExemptFixture(t *testing.T) {
	checkFixture(t, lint.FixtureDir("wallclock", "obs"), lint.WallClock)
}

// The ledger path element is exempt the same way — its completion
// timestamps and wall-time measurements are the recorded data. The det
// fixture above keeps proving that non-exempt packages are still
// flagged.
func TestWallClockLedgerExemptFixture(t *testing.T) {
	checkFixture(t, lint.FixtureDir("wallclock", "ledger"), lint.WallClock)
}

// The fabric path element is exempt too: hedge timers, retry backoff,
// and circuit-breaker cooldowns measure real time by design.
func TestWallClockFabricExemptFixture(t *testing.T) {
	checkFixture(t, lint.FixtureDir("wallclock", "fabric"), lint.WallClock)
}

func TestRNGSourceFixture(t *testing.T) {
	checkFixture(t, lint.FixtureDir("rngsource", "a"), lint.RNGSource)
}

func TestGobRegFixture(t *testing.T) {
	checkFixture(t, lint.FixtureDir("gobreg", "bad"), lint.GobReg)
}

// The remote path: a peer gob-encodes shard payloads onto the wire, so
// unregistered peer-side producers are findings, while the
// coordinator-side rewrap returning DecodePayload's `any` stays silent.
func TestGobRegRemoteFixture(t *testing.T) {
	checkFixture(t, lint.FixtureDir("gobreg", "remote"), lint.GobReg)
}

// Without any RegisterPayloadType call in the loaded set the check has
// no anchor and must stay silent.
func TestGobRegNoAnchorFixture(t *testing.T) {
	checkFixture(t, lint.FixtureDir("gobreg", "noanchor"), lint.GobReg)
}

func TestAtomicMixFixture(t *testing.T) {
	checkFixture(t, lint.FixtureDir("atomicmix", "a"), lint.AtomicMix)
}

// The suppression directive is itself under test: valid directives
// silence their target line, reason-less / unknown-analyzer / stale
// ones surface as findings of the reserved "ignore" analyzer.
func TestIgnoreDirectiveFixture(t *testing.T) {
	checkFixture(t, lint.FixtureDir("ignore", "a"), lint.Analyzers()...)
}

// The CI smoke package violates every invariant at once; each analyzer
// must land its finding.
func TestSmokeFixture(t *testing.T) {
	checkFixture(t, lint.FixtureDir("smoke"), lint.Analyzers()...)
}
