package lint

import (
	"go/ast"
	"strconv"
)

// RNGSource flags math/rand (and math/rand/v2) anywhere in the module.
// All randomness must flow from explicit 64-bit seeds through
// stats.RNG (SplitMix64) or the hash-derived samplers in
// internal/stats: math/rand's global generator is process-seeded, and
// even a locally seeded rand.Rand is a second, unaudited seed path
// that silently decouples results from Options.Seed — the experiment
// cache and the golden suite both assume the seed fully determines
// every payload.
var RNGSource = &Analyzer{
	Name: "rngsource",
	Doc:  "math/rand use instead of the seeded stats.RNG",
	Run:  runRNGSource,
}

func runRNGSource(pass *Pass) {
	pkg := pass.Pkgs[0]
	info := pkg.Info
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s: derive randomness from stats.RNG (repro/internal/stats) so Options.Seed fully determines the run", path)
			}
		}
		// Also pin each use site, so the finding lands where the
		// nondeterminism enters even if the import is suppressed.
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch pkgNameOf(info, sel) {
			case "math/rand", "math/rand/v2":
				pass.Reportf(sel.Pos(), "%s.%s is not derived from Options.Seed; use stats.RNG or the stats hash samplers", selQualifier(sel), sel.Sel.Name)
			}
			return true
		})
	}
}

// selQualifier renders the selector's package qualifier as written.
func selQualifier(sel *ast.SelectorExpr) string {
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name
	}
	return "rand"
}
