package lint

import (
	"go/ast"
	"strings"
)

// IgnoreAnalyzer is the reserved analyzer name under which directive
// misuse (missing reason, unknown analyzer, staleness) is reported.
// Its diagnostics are not themselves suppressible: a suppression that
// needs suppressing is a process smell, not a finding to silence.
const IgnoreAnalyzer = "ignore"

// DirectivePrefix introduces a suppression comment:
//
//	//lint:ignore rowpressvet/<analyzer> <reason>
const DirectivePrefix = "//lint:ignore"

// namePrefix qualifies analyzer names in directives, so suppressions
// are unambiguous next to other tools' lint:ignore conventions.
const namePrefix = "rowpressvet/"

// directive is one parsed //lint:ignore comment.
type directive struct {
	analyzer string // analyzer name, without the rowpressvet/ prefix
	reason   string
	file     string
	line     int
	col      int
	// ownLine marks a directive standing alone on its line, which
	// covers the following line; a trailing directive covers its own.
	ownLine bool
	// used flips when the directive suppresses at least one
	// diagnostic; an unused directive is stale and itself a finding.
	used bool
	// bad marks a malformed directive (missing reason or unknown
	// analyzer); bad directives never suppress.
	bad bool
}

// target is the line the directive's suppression applies to.
func (d *directive) target() int {
	if d.ownLine {
		return d.line + 1
	}
	return d.line
}

// collectDirectives parses every //lint:ignore comment in the program.
// Only directives naming rowpressvet analyzers (rowpressvet/<name>)
// are collected; other tools' lint:ignore comments pass through
// untouched.
func collectDirectives(prog *Program, analyzers []*Analyzer, diags *[]Diagnostic) []*directive {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []*directive
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d := parseDirective(prog, pkg, c)
					if d == nil {
						continue
					}
					switch {
					case !strings.HasPrefix(d.analyzer, namePrefix):
						d.bad = true
						*diags = append(*diags, Diagnostic{
							Analyzer: IgnoreAnalyzer, File: d.file, Line: d.line, Col: d.col,
							Message: "suppression must name a qualified analyzer: //lint:ignore rowpressvet/<name> <reason>",
						})
					case !known[strings.TrimPrefix(d.analyzer, namePrefix)]:
						d.bad = true
						*diags = append(*diags, Diagnostic{
							Analyzer: IgnoreAnalyzer, File: d.file, Line: d.line, Col: d.col,
							Message: "suppression names unknown analyzer " + d.analyzer + " (see rowpressvet -list)",
						})
					case d.reason == "":
						d.bad = true
						*diags = append(*diags, Diagnostic{
							Analyzer: IgnoreAnalyzer, File: d.file, Line: d.line, Col: d.col,
							Message: "suppression requires a reason: //lint:ignore " + d.analyzer + " <why this is safe>",
						})
					default:
						d.analyzer = strings.TrimPrefix(d.analyzer, namePrefix)
					}
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// parseDirective recognizes one comment as a rowpressvet suppression
// directive, or returns nil.
func parseDirective(prog *Program, pkg *Package, c *ast.Comment) *directive {
	if !strings.HasPrefix(c.Text, DirectivePrefix) {
		return nil
	}
	rest := strings.TrimPrefix(c.Text, DirectivePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil // e.g. //lint:ignoreXXX — not this directive
	}
	// A nested // ends the directive: the fixture harness appends
	// `// want ...` expectations to the same comment, and reasons never
	// legitimately contain a comment marker.
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.Fields(rest)
	pos := prog.Fset.Position(c.Pos())
	d := &directive{
		file:    pos.Filename,
		line:    pos.Line,
		col:     pos.Column,
		ownLine: aloneOnLine(pkg.Src[pos.Filename], pos.Offset),
	}
	if len(fields) > 0 {
		d.analyzer = fields[0]
	}
	if len(fields) > 1 {
		d.reason = strings.Join(fields[1:], " ")
	}
	// Directives targeting other tools are skipped entirely only when
	// they clearly name a foreign check (contain a slash with a
	// different prefix); a bare name is still ours to reject so typos
	// don't silently disable suppression.
	if strings.Contains(d.analyzer, "/") && !strings.HasPrefix(d.analyzer, namePrefix) {
		return nil
	}
	return d
}

// aloneOnLine reports whether only whitespace precedes the byte at
// offset on its line.
func aloneOnLine(src []byte, offset int) bool {
	if src == nil || offset > len(src) {
		return false
	}
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t':
			continue
		default:
			return false
		}
	}
	return true
}

// applySuppressions matches directives against diagnostics: a
// well-formed directive suppresses same-analyzer diagnostics on its
// target line, and every unmatched directive becomes a staleness
// finding. Directive-misuse diagnostics (the "ignore" analyzer) are
// never suppressed.
func applySuppressions(prog *Program, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	dirs := collectDirectives(prog, analyzers, &diags)
	for i := range diags {
		d := &diags[i]
		if d.Analyzer == IgnoreAnalyzer {
			continue
		}
		for _, dir := range dirs {
			if dir.bad || dir.analyzer != d.Analyzer || dir.file != d.File || dir.target() != d.Line {
				continue
			}
			d.Suppressed = true
			d.Reason = dir.reason
			dir.used = true
		}
	}
	for _, dir := range dirs {
		if dir.bad || dir.used {
			continue
		}
		diags = append(diags, Diagnostic{
			Analyzer: IgnoreAnalyzer, File: dir.file, Line: dir.line, Col: dir.col,
			Message: "stale suppression: no rowpressvet/" + dir.analyzer + " finding on the covered line",
		})
	}
	return diags
}
