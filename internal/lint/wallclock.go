package lint

import (
	"go/ast"
	"strings"
)

// WallClock flags wall-clock reads inside deterministic compute
// packages. Experiment shards must be pure functions of (experiment,
// Options, shard key): a time.Now anywhere in the simulation or merge
// path can leak into a cached payload or a rendered report and break
// byte-identical replay. Timing is the point of the observability and
// serving layers, so obs, engine, serve, the command binaries, and the
// examples are allowlisted wholesale; everything else in the module is
// deterministic compute.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "wall-clock reads (time.Now etc.) in deterministic compute packages",
	Run:  runWallClock,
}

// wallClockExempt lists the path elements whose packages measure real
// time on purpose. A package is exempt when any element of its import
// path matches (so repo layout moves keep the policy).
var wallClockExempt = map[string]bool{
	"obs":      true, // span recorder: timestamps are the product
	"engine":   true, // queue/execute/merge instrumentation
	"serve":    true, // request latency metrics and logging
	"cmd":      true, // CLI progress reporting
	"examples": true, // demo output
	"ledger":   true, // run ledger: completion timestamps and wall/latency measurement are the recorded data
	"fabric":   true, // peer dispatch: hedge timers, retry backoff, and circuit-breaker cooldowns are real time
}

// wallClockFuncs are the time package's ambient-time entry points.
// time.Duration arithmetic and formatting stay allowed everywhere.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

func runWallClock(pass *Pass) {
	pkg := pass.Pkgs[0]
	for _, el := range strings.Split(pkg.ImportPath, "/") {
		if wallClockExempt[el] {
			return
		}
	}
	info := pkg.Info
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkgNameOf(info, sel) != "time" || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock in a deterministic compute package; shard output must depend only on Options — move timing to obs/engine/serve or suppress with a reason", sel.Sel.Name)
			return true
		})
	}
}
