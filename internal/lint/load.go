package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked unit of analysis.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	// Src holds the raw bytes per file name; directive handling uses
	// it to decide whether a comment stands alone on its line.
	Src map[string][]byte
	// Pkg and Info are the type-checker's output. Info is always
	// non-nil; Errors collects type errors (analysis continues on a
	// best-effort basis, but the driver reports them).
	Pkg    *types.Package
	Info   *types.Info
	Errors []error
}

// A Program is one loaded-and-checked set of packages sharing a
// FileSet and importer, so type identities are comparable across
// packages.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	Error      *struct{ Err string }
}

// Load resolves the patterns (import paths, ./... wildcards, or
// directories — absolute or relative to dir) through the go tool and
// type-checks every matched package from source. Dependencies —
// standard library and module-internal alike — are imported from
// compiler export data produced by `go list -export`, so a load costs
// one toolchain invocation plus parsing only the packages under
// analysis. Test files are excluded: the contracts the suite encodes
// bind the shipped code, and test-only wall-clock or map-order use is
// legitimate.
func Load(dir string, patterns []string) (*Program, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("lint: no packages to load")
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.Standard || lp.DepOnly {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		targets = append(targets, lp)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("lint: patterns %v matched no packages", patterns)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})
	prog := &Program{Fset: fset}
	for _, lp := range targets {
		pkg, err := check(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	return prog, nil
}

// goList shells out to `go list -deps -export -json`, the one
// toolchain call behind a load: it enumerates the matched packages,
// their file lists after build-constraint filtering, and compiler
// export data for every transitive dependency.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Standard,DepOnly,Export,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	pkg := &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Src:        make(map[string][]byte, len(lp.GoFiles)),
	}
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		pkg.Src[path] = src
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Instances:  map[*ast.Ident]types.Instance{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	// Check returns the package even when it collected errors; the
	// suite analyzes what it can and the driver surfaces the errors.
	pkg.Pkg, _ = conf.Check(lp.ImportPath, fset, pkg.Files, pkg.Info)
	return pkg, nil
}

// inspectFuncs walks every file of the package, invoking fn for each
// top-level function declaration with a body.
func inspectFuncs(pkg *Package, fn func(decl *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// pkgNameOf resolves the imported package a selector's qualifier
// refers to, e.g. `time` in `time.Now`. Returns "" when the qualifier
// is not a package name.
func pkgNameOf(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}
