// Fixture for the atomicmix analyzer: a field touched through
// sync/atomic at one site and by plain load/store at another is a data
// race the race detector only catches when the sites interleave.
package a

import "sync/atomic"

type counter struct {
	hits  uint64
	total uint64
	name  string
}

func (c *counter) bump() {
	atomic.AddUint64(&c.hits, 1)
}

// Positive: plain read of a field that bump() touches atomically.
func (c *counter) read() uint64 {
	return c.hits // want "field counter.hits is accessed with atomic.AddUint64 elsewhere"
}

// Near miss: total is only ever accessed atomically.
func (c *counter) bumpTotal() uint64 {
	atomic.AddUint64(&c.total, 1)
	return atomic.LoadUint64(&c.total)
}

// Near miss: name never enters the atomic domain, so plain access is
// not mixing anything.
func (c *counter) label() string { return c.name }

// Near miss: constructors initialize fields before the value escapes.
func NewCounter() *counter {
	c := &counter{}
	c.hits = 0
	return c
}
