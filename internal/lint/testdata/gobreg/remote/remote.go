// Fixture for the gobreg analyzer's remote path: in a fabric topology
// the peer gob-encodes the shard payload onto the wire and the
// coordinator decodes it back into its own tiers, so an unregistered
// payload type now breaks remote serving too, not just disk
// warm-starts. The producer-site analysis must still land the finding
// on the peer-side Run literal, and the coordinator-side rewrap — whose
// Run literal returns the decoder's `any` — must not produce a
// spurious second finding (interfaces are unauditable and skipped).
package remote

import "bytes"

type Shard struct {
	Key string
	Run func() (any, error)
}

func RegisterPayloadType(v any) {}

// Wire stand-ins for engine.EncodePayload / engine.DecodePayload.
func EncodePayload(w *bytes.Buffer, v any) error { return nil }

func DecodePayload(r *bytes.Buffer) (any, error) { return nil, nil }

type WireRegistered struct{ N int }

type WireOrphan struct{ S string }

func init() {
	RegisterPayloadType(WireRegistered{})
}

// Near miss: the peer-side producer's payload type is registered, so
// its trip through EncodePayload is safe.
func servedShard() Shard {
	return Shard{Key: "ok", Run: func() (any, error) {
		return WireRegistered{N: 1}, nil
	}}
}

// Positive: a peer-side producer of an unregistered type — the gob
// encode onto the wire would fail at dispatch time.
func orphanServedShard() Shard {
	return Shard{
		Key: "bad",
		Run: func() (any, error) { // want "shard payload type .*WireOrphan is not registered"
			return WireOrphan{S: "x"}, nil
		},
	}
}

// Near miss: the coordinator-side rewrap resolves the shard over the
// wire; its Run literal returns DecodePayload's `any`, which cannot be
// audited statically and must not be flagged.
func remoteShard(body *bytes.Buffer) Shard {
	return Shard{Key: "remote", Run: func() (any, error) {
		return DecodePayload(body)
	}}
}
