// Fixture for the gobreg analyzer: payload types produced by Shard Run
// literals but never passed to RegisterPayloadType. The analyzer
// matches by name — a struct type named Shard with a Run field, a
// function named RegisterPayloadType — so the fixture carries local
// stand-ins for the engine API.
package bad

type Shard struct {
	Key string
	Run func() (any, error)
}

func RegisterPayloadType(v any) {}

type Registered struct{ N int }

type Orphan struct{ S string }

type GenericRegistered struct{ N int }

type GenericOrphan struct{ F float64 }

func init() {
	RegisterPayloadType(Registered{})
	RegisterPayloadType(GenericRegistered{})
}

// Near miss: the direct producer's payload type is registered.
func registeredShard() Shard {
	return Shard{Key: "ok", Run: func() (any, error) {
		return Registered{N: 1}, nil
	}}
}

// Positive: a direct producer of an unregistered type.
func orphanShard() Shard {
	return Shard{
		Key: "bad",
		Run: func() (any, error) { // want "shard payload type .*Orphan is not registered"
			return Orphan{S: "x"}, nil
		},
	}
}

// typedShards mirrors the core builder chain: the Run literal forwards
// work's (T, error), so the payload type is the type parameter and must
// be recovered from each instantiation site.
func typedShards[T any](keys []string, work func(string) (T, error)) []Shard {
	out := make([]Shard, 0, len(keys))
	for _, k := range keys {
		k := k
		out = append(out, Shard{Key: k, Run: func() (any, error) {
			return work(k)
		}})
	}
	return out
}

// Positive: generic instantiation fixing T to an unregistered type.
func buildGenericOrphan() []Shard {
	work := func(string) (GenericOrphan, error) { return GenericOrphan{}, nil }
	return typedShards([]string{"a"}, work) // want "shard payload type .*GenericOrphan is not registered"
}

// Near miss: generic instantiation whose type argument is registered.
func buildGenericRegistered() []Shard {
	work := func(string) (GenericRegistered, error) { return GenericRegistered{}, nil }
	return typedShards([]string{"b"}, work)
}
