// Near-miss fixture for the gobreg analyzer: no RegisterPayloadType
// call exists in the loaded set, so the check has no anchor (a subtree
// lint without core) and must stay silent rather than flag every
// producer.
package noanchor

type Shard struct {
	Key string
	Run func() (any, error)
}

type Payload struct{ N int }

func shard() Shard {
	return Shard{Key: "k", Run: func() (any, error) { return Payload{}, nil }}
}
