// Fixture for the suppression directive itself: well-formed directives
// silence exactly their target line, and malformed or stale ones are
// findings under the reserved "ignore" analyzer.
package a

import (
	"math/rand" //lint:ignore rowpressvet/rngsource fixture: a trailing directive covers its own line
)

// A reasoned own-line directive covers the next line.
func covered() int {
	//lint:ignore rowpressvet/rngsource fixture: an own-line directive covers the next line
	return rand.Intn(6)
}

// A directive without a reason never suppresses: both the directive
// and the underlying finding surface.
func reasonless() int {
	return rand.Int() //lint:ignore rowpressvet/rngsource // want "suppression requires a reason" "rand.Int is not derived"
}

// Unknown analyzer names are rejected so typos cannot silently disable
// a check.
//
//lint:ignore rowpressvet/nosuch misspelled analyzer // want "unknown analyzer rowpressvet/nosuch"
var _ = 0

// Unqualified names are rejected: other tools' bare-name conventions
// must not eat rowpressvet findings.
//
//lint:ignore rngsource missing the rowpressvet prefix // want "must name a qualified analyzer"
var _ = 1

// A directive with nothing to suppress is stale.
//
//lint:ignore rowpressvet/wallclock nothing here reads the clock // want "stale suppression"
var _ = 2
