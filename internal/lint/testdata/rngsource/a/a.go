// Fixture for the rngsource analyzer: math/rand is flagged at the
// import and at every use site; only stats.RNG-derived randomness is
// allowed in the module.
package a

import (
	"math/rand" // want "import of math/rand"
)

// Positive: unseeded package-level generator.
func roll() int {
	return rand.Intn(6) // want "rand.Intn is not derived from Options.Seed"
}

// Near miss: a local value that happens to be named rand is not the
// math/rand package.
type fakeRand struct{}

func (fakeRand) Intn(n int) int { return n - 1 }

func local() int {
	rand := fakeRand{}
	return rand.Intn(6)
}
