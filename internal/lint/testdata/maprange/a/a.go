// Fixture for the maprange analyzer: map iterations whose bodies can
// leak Go's randomized iteration order into output, next to the
// near-miss idioms the analyzer must accept.
package a

import "sort"

func sink(string) {}

// Positive: a call in the body can observe iteration order.
func logsInOrder(m map[string]int) {
	for k := range m { // want "iterating a map"
		sink(k)
	}
}

// Positive: keys are collected but never sorted before the function
// returns them.
func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want "collected into keys are never sorted"
		keys = append(keys, k)
	}
	return keys
}

// Positive: float addition is not associative, so a float sum in map
// order is not bit-deterministic.
func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want "iterating a map"
		total += v
	}
	return total
}

// Near miss: the collect-then-sort idiom (mixGroupNames style) is the
// blessed pattern and must pass.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Near miss: a map-to-map copy is insertion-order independent.
func copyMap(src map[int]int) map[int]int {
	dst := make(map[int]int, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// Near miss: commutative integer accumulation.
func countAll(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Near miss: ranging a slice is not map iteration at all.
func sliceRange(xs []string) {
	for _, x := range xs {
		sink(x)
	}
}
