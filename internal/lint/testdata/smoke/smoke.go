// Package smoke deliberately violates every rowpressvet invariant in
// one file. The CI smoke step runs the driver over this directory and
// asserts a non-zero exit with every analyzer named in the output; the
// fixture test checks the exact findings.
package smoke

import (
	"math/rand" // want "import of math/rand"
	"sync/atomic"
	"time"
)

type Shard struct {
	Key string
	Run func() (any, error)
}

func RegisterPayloadType(v any) {}

type Registered struct{ N int }

type Orphan struct{ S string }

func init() { RegisterPayloadType(Registered{}) }

// gobreg: Orphan is produced but never registered.
func orphanShard() Shard {
	return Shard{Key: "orphan", Run: func() (any, error) { // want "shard payload type .*Orphan is not registered"
		return Orphan{}, nil
	}}
}

// maprange: keys are collected and returned unsorted.
func mapOrder(m map[string]int) []string {
	var keys []string
	for k := range m { // want "collected into keys are never sorted"
		keys = append(keys, k)
	}
	return keys
}

// wallclock: this package has no exempt path element.
func wallClock() time.Duration {
	t0 := time.Now()      // want "time.Now reads the wall clock"
	return time.Since(t0) // want "time.Since reads the wall clock"
}

// rngsource: randomness not derived from Options.Seed.
func unseeded() int {
	return rand.Intn(6) // want "rand.Intn is not derived from Options.Seed"
}

type hits struct{ n uint64 }

// atomicmix: n is atomic in bump but plain in read.
func (h *hits) bump() { atomic.AddUint64(&h.n, 1) }

func (h *hits) read() uint64 {
	return h.n // want "field hits.n is accessed with atomic.AddUint64 elsewhere"
}

// ignore: a reason-less suppression is itself a finding.
//
//lint:ignore rowpressvet/maprange // want "suppression requires a reason"
var _ = 0
