// Fixture for the wallclock analyzer: this package's import path has no
// exempt element, so it counts as deterministic compute.
package det

import "time"

// Positive: ambient clock reads.
func stamp() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

// Near miss: arithmetic on time values passed in is deterministic —
// only the ambient entry points are flagged.
func span(start, end time.Time) time.Duration {
	return end.Sub(start)
}

// Near miss: duration constants and formatting are fine everywhere.
func budget() string {
	return (3 * time.Millisecond).String()
}
