// Near-miss fixture for the wallclock analyzer: the "fabric"
// import-path element exempts this package wholesale — hedge timers,
// retry backoff, and circuit-breaker cooldowns are real-time
// mechanisms, not shard compute — so the same calls that are findings
// in ../det produce none here.
package fabric

import "time"

func hedgeTimer(d time.Duration) <-chan time.Time { return time.After(d) }

func circuitDownUntil(cooldown time.Duration) time.Time { return time.Now().Add(cooldown) }
