// Near-miss fixture for the wallclock analyzer: the "obs" import-path
// element exempts this package wholesale — timestamps are its product —
// so the same calls that are findings in ../det produce none here.
package obs

import "time"

func stamp() time.Time { return time.Now() }

func elapsed(t0 time.Time) time.Duration { return time.Since(t0) }
