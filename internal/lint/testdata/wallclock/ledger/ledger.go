// Near-miss fixture for the wallclock analyzer: the "ledger"
// import-path element exempts this package wholesale — completion
// timestamps and wall-time measurement are the data a run ledger
// records — so the same calls that are findings in ../det produce
// none here.
package ledger

import "time"

func completedAt() time.Time { return time.Now() }

func wall(t0 time.Time) time.Duration { return time.Since(t0) }
