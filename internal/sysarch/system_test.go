package sysarch

import (
	"testing"

	"repro/internal/dram"
)

func newSys(t *testing.T) *System {
	t.Helper()
	geo := dram.Geometry{Banks: 4, RowsPerBank: 4096, RowBytes: 8192}
	sys, err := NewDemoSystem(geo, 0xFACE)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewDemoSystemRejectsNonPow2(t *testing.T) {
	geo := dram.Geometry{Banks: 3, RowsPerBank: 4096, RowBytes: 8192}
	if _, err := NewDemoSystem(geo, 1); err == nil {
		t.Fatal("non-power-of-two banks should fail (address mapping)")
	}
}

func TestAccessBlockRowHitVsMiss(t *testing.T) {
	sys := newSys(t)
	missLat, err := sys.AccessBlock(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	hitLat, err := sys.AccessBlock(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if missLat-hitLat < 20 || missLat-hitLat > 40 {
		t.Errorf("miss-hit latency gap = %d cycles, want ≈%d", missLat-hitLat, RowMissExtraNs*CyclesPerNs)
	}
	if sys.OpenRow(0) != 100 {
		t.Error("open-row policy must keep the row open")
	}
}

func TestAccessBlockConflictClosesRow(t *testing.T) {
	sys := newSys(t)
	if _, err := sys.AccessBlock(0, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AccessBlock(0, 200); err != nil {
		t.Fatal(err)
	}
	if sys.OpenRow(0) != 200 {
		t.Errorf("open row = %d, want 200", sys.OpenRow(0))
	}
}

func TestBanksIndependent(t *testing.T) {
	sys := newSys(t)
	if _, err := sys.AccessBlock(0, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AccessBlock(1, 300); err != nil {
		t.Fatal(err)
	}
	if sys.OpenRow(0) != 100 || sys.OpenRow(1) != 300 {
		t.Error("banks must hold independent open rows")
	}
}

// TestRowOpenTimeReachesModel: holding a row open via consecutive block
// accesses must deliver press exposure proportional to the open time when
// the row finally closes — the mechanism the §6 attack leverages.
func TestRowOpenTimeReachesModel(t *testing.T) {
	sys := newSys(t)
	if err := sys.Mod.InitRow(sys.Now(), 0, 501, 0xFF); err != nil {
		t.Fatal(err)
	}
	// Short open: one access then conflict.
	if _, err := sys.AccessBlock(0, 500); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AccessBlock(0, 900); err != nil {
		t.Fatal(err)
	}
	shortExp := sys.Mod.PendingExposure(0, 501).PressBelow

	// Long open: many accesses keep row 500 open much longer.
	sys2 := newSys(t)
	if err := sys2.Mod.InitRow(sys2.Now(), 0, 501, 0xFF); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := sys2.AccessBlock(0, 500); err != nil {
			t.Fatal(err)
		}
		sys2.Advance(100 * dram.Nanosecond)
	}
	if _, err := sys2.AccessBlock(0, 900); err != nil {
		t.Fatal(err)
	}
	longExp := sys2.Mod.PendingExposure(0, 501).PressBelow
	if longExp <= shortExp {
		t.Errorf("longer row-open time must press harder: %g vs %g", longExp, shortExp)
	}
}

func TestCloseRowIdempotent(t *testing.T) {
	sys := newSys(t)
	if err := sys.CloseRow(0); err != nil {
		t.Fatal("closing an idle bank must be a no-op")
	}
	if _, err := sys.AccessBlock(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := sys.CloseRow(0); err != nil {
		t.Fatal(err)
	}
	if err := sys.CloseRow(0); err != nil {
		t.Fatal(err)
	}
	if sys.OpenRow(0) != -1 {
		t.Error("row should be closed")
	}
}

func TestCloseRowRespectsTRAS(t *testing.T) {
	sys := newSys(t)
	if _, err := sys.AccessBlock(0, 5); err != nil {
		t.Fatal(err)
	}
	// Closing immediately after the activation must wait out tRAS rather
	// than error — verified by it simply succeeding.
	if err := sys.CloseRow(0); err != nil {
		t.Fatalf("tRAS-constrained close failed: %v", err)
	}
}

func TestDemoDIMMParamsValid(t *testing.T) {
	if err := DemoDIMMParams().Validate(); err != nil {
		t.Fatal(err)
	}
}
